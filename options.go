package switchfs

import (
	"fmt"

	"switchfs/internal/env"
)

// config collects the deployment knobs set by Options. Zero fields take the
// paper's evaluation defaults in defaultConfig.
type config struct {
	servers         int
	coresPerServer  int
	clients         int
	switches        int
	dataNodes       int
	dataReplication int
	retryTimeout    env.Duration
}

func defaultConfig() config {
	return config{
		servers:         8,
		coresPerServer:  4,
		clients:         1,
		switches:        1,
		dataNodes:       0,
		dataReplication: 2,
	}
}

func (c config) validate() error {
	if c.retryTimeout < 0 {
		return fmt.Errorf("switchfs: retry timeout must be >= 0, got %v", c.retryTimeout)
	}
	for _, f := range []struct {
		name string
		v    int
		min  int
	}{
		{"servers", c.servers, 1},
		{"cores per server", c.coresPerServer, 1},
		{"clients", c.clients, 1},
		{"switches", c.switches, 1},
		{"data nodes", c.dataNodes, 0},
		{"data replication", c.dataReplication, 1},
	} {
		if f.v < f.min {
			return fmt.Errorf("switchfs: %s must be >= %d, got %d", f.name, f.min, f.v)
		}
	}
	return nil
}

// Option customizes a deployment built by New.
type Option func(*config)

// WithServers sets the metadata server count (default 8, the paper's setup).
func WithServers(n int) Option { return func(c *config) { c.servers = n } }

// WithCoresPerServer models each metadata server's CPU (default 4).
func WithCoresPerServer(n int) Option { return func(c *config) { c.coresPerServer = n } }

// WithClients sets the LibFS pool size (default 1). Sessions bind to clients
// modulo this pool.
func WithClients(n int) Option { return func(c *config) { c.clients = n } }

// WithSwitches range-partitions fingerprints over multiple spine switches
// (§6.4; default 1).
func WithSwitches(n int) Option { return func(c *config) { c.switches = n } }

// WithDataNodes adds data servers for end-to-end workloads (§7.6; default 0).
// File.Read and File.Write are charged against these nodes.
func WithDataNodes(n int) Option { return func(c *config) { c.dataNodes = n } }

// WithDataReplication sets the data-plane replication factor r (default 2,
// capped at the deployed data-node count): a File.Write chunk is
// acknowledged only after its primary data node and r−1 backups applied it,
// so acked content survives any r−1 data-node fail-stops.
func WithDataReplication(r int) Option { return func(c *config) { c.dataReplication = r } }

// WithRetryTimeout bounds client request retransmission (default 2ms of
// virtual time). Data-node accesses scale this same timeout up (20×) so
// queuing behind replicated I/O does not trigger retransmit storms.
func WithRetryTimeout(d env.Duration) Option { return func(c *config) { c.retryTimeout = d } }
