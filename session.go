package switchfs

import (
	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/datanode"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// Session is one client's os-like view of a deployed filesystem. A session
// captures the (process, client) pair so callers never thread an execution
// context through operations: s.Mkdir("/data", 0) reads like package os.
//
// Sessions come in two flavors. FS.RunSession passes fn a session bound to
// fn's process: operations run inline and are cheap. FS.Session returns an
// unbound session whose operations each dispatch a fresh process on the
// client's node and block until it completes — convenient for scripts and
// tools, but every call drives the simulator (or crosses a goroutine
// boundary) on its own.
//
// All single-path operations return *PathError and two-path operations
// return *LinkError, each wrapping one of the package's sentinel errors.
type Session struct {
	fs *FS
	cl *client.Client
	p  *env.Proc // non-nil iff bound (inside RunSession)
}

// ClientID returns the env node id of the session's client (diagnostics).
func (s *Session) ClientID() int { return int(s.cl.ID()) }

// Now returns the current clock reading in nanoseconds — virtual time under
// the simulated environment, wall time under the real one. History
// recorders timestamp operation intervals with it.
func (s *Session) Now() int64 {
	if s.p != nil {
		return int64(s.p.Now())
	}
	return int64(s.fs.c.Env.Now())
}

// run executes fn on the session's process, or dispatches a fresh process
// for unbound sessions.
func (s *Session) run(fn func(p *env.Proc) error) error {
	if s.p != nil {
		return fn(s.p)
	}
	errc := make(chan error, 1)
	s.fs.c.Env.Spawn(s.cl.ID(), func(p *env.Proc) { errc <- fn(p) })
	if sim, ok := s.fs.c.Env.(*env.Sim); ok {
		sim.Run()
		select {
		case err := <-errc:
			return err
		default:
			panic("switchfs: simulation drained before the operation finished (deadlock?)")
		}
	}
	return <-errc
}

// Create makes a regular file.
func (s *Session) Create(path string, perm Perm) error {
	return wrapPath("create", path, s.run(func(p *env.Proc) error {
		return s.cl.Create(p, path, perm)
	}))
}

// Remove unlinks a regular file.
func (s *Session) Remove(path string) error {
	return wrapPath("remove", path, s.run(func(p *env.Proc) error {
		return s.cl.Delete(p, path)
	}))
}

// Mkdir creates a directory.
func (s *Session) Mkdir(path string, perm Perm) error {
	return wrapPath("mkdir", path, s.run(func(p *env.Proc) error {
		return s.cl.Mkdir(p, path, perm)
	}))
}

// Rmdir removes an empty directory.
func (s *Session) Rmdir(path string) error {
	return wrapPath("rmdir", path, s.run(func(p *env.Proc) error {
		return s.cl.Rmdir(p, path)
	}))
}

// Stat reads a file's attributes.
func (s *Session) Stat(path string) (Attr, error) {
	var attr Attr
	err := s.run(func(p *env.Proc) error {
		a, err := s.cl.Stat(p, path)
		attr = a
		return err
	})
	return attr, wrapPath("stat", path, err)
}

// StatDir reads a directory's attributes; Attr.Size is the entry count,
// aggregated from any change-log entries still deferred (§5.2.2).
func (s *Session) StatDir(path string) (Attr, error) {
	var attr Attr
	err := s.run(func(p *env.Proc) error {
		a, err := s.cl.StatDir(p, path)
		attr = a
		return err
	})
	return attr, wrapPath("statdir", path, err)
}

// ReadDir lists a directory.
func (s *Session) ReadDir(path string) ([]DirEntry, error) {
	var entries []DirEntry
	err := s.run(func(p *env.Proc) error {
		es, err := s.cl.ReadDir(p, path)
		entries = es
		return err
	})
	return entries, wrapPath("readdir", path, err)
}

// Chmod updates a file's permissions.
func (s *Session) Chmod(path string, perm Perm) error {
	return wrapPath("chmod", path, s.run(func(p *env.Proc) error {
		return s.cl.Chmod(p, path, perm)
	}))
}

// Rename moves a file or directory.
func (s *Session) Rename(oldpath, newpath string) error {
	return wrapLink("rename", oldpath, newpath, s.run(func(p *env.Proc) error {
		return s.cl.Rename(p, oldpath, newpath)
	}))
}

// Link creates a hard link newpath pointing at oldpath's file (§5.5).
func (s *Session) Link(oldpath, newpath string) error {
	return wrapLink("link", oldpath, newpath, s.run(func(p *env.Proc) error {
		return s.cl.Link(p, oldpath, newpath)
	}))
}

// Open opens a file and returns a handle carrying its attributes and data
// placement. Content operations on the handle route to the deployment's
// data nodes.
func (s *Session) Open(path string) (*File, error) {
	f := &File{s: s, path: path}
	err := s.run(func(p *env.Proc) error {
		a, loc, err := s.cl.Open(p, path)
		f.attr, f.loc = a, loc
		return err
	})
	if err != nil {
		return nil, wrapPath("open", path, err)
	}
	return f, nil
}

// File is an open file handle, in the style of os.File over a distributed
// store: metadata operations go to the file's metadata owner, content
// operations to the data nodes recorded at open time.
type File struct {
	s      *Session
	path   string
	attr   Attr
	loc    []uint32 // data placement returned by open
	closed bool
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.path }

// Attr returns the attributes captured at open time (no round trip).
func (f *File) Attr() Attr { return f.attr }

// Stat re-reads the file's attributes from its metadata owner.
func (f *File) Stat() (Attr, error) {
	if f.closed {
		return Attr{}, wrapPath("stat", f.path, core.ErrClosed)
	}
	a, err := f.s.Stat(f.path)
	if err == nil {
		f.attr = a
	}
	return a, err
}

// Chmod updates the file's permissions.
func (f *File) Chmod(perm Perm) error {
	if f.closed {
		return wrapPath("chmod", f.path, core.ErrClosed)
	}
	return f.s.Chmod(f.path, perm)
}

// Read models reading n bytes of content from the file's data nodes (§7.6).
// Deployments without data nodes complete immediately (metadata-only runs).
func (f *File) Read(n int64) error {
	return f.data("read", core.OpRead, n)
}

// Write models writing n bytes of content to the file's data nodes (§7.6).
// Content is striped in stripeUnit chunks across the DataLoc placement the
// metadata server assigned at create; each chunk is acknowledged by its
// primary data node only after the deployment's replication factor is
// satisfied.
func (f *File) Write(n int64) error {
	return f.data("write", core.OpWrite, n)
}

// stripeUnit is the content stripe size: one chunk per stripeUnit bytes,
// spread round-robin over the file's DataLoc slots (§7.6 files are mostly
// small — one or two stripes).
const stripeUnit int64 = 64 << 10

func (f *File) data(opName string, op core.Op, n int64) error {
	if f.closed {
		return wrapPath(opName, f.path, core.ErrClosed)
	}
	if n < 0 {
		return wrapPath(opName, f.path, core.ErrInvalid)
	}
	nodes := f.s.fs.c.DataNodes
	if len(nodes) == 0 || n == 0 {
		return nil
	}
	loc := f.loc
	if len(loc) == 0 {
		// Pre-v2 inodes (preloaded fixtures) carry no placement; fall back
		// to a stable hash of the path.
		loc = []uint32{uint32(f.shard())}
	}
	file := f.fileKey()
	stripes := int((n + stripeUnit - 1) / stripeUnit)
	return wrapPath(opName, f.path, f.s.run(func(p *env.Proc) error {
		left := n
		for s := 0; s < stripes; s++ {
			bytes := left
			if bytes > stripeUnit {
				bytes = stripeUnit
			}
			left -= bytes
			node := nodes[datanode.StripeSlot(loc, s, len(nodes))]
			chunk := wire.ChunkKey{File: file, Stripe: uint32(s)}
			var err error
			if op == core.OpWrite {
				_, err = f.s.cl.WriteChunk(p, node, chunk, bytes)
			} else {
				_, _, err = f.s.cl.ReadChunk(p, node, chunk)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}))
}

// fileKey is the chunk-key file hash: stable per path.
func (f *File) fileKey() uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(f.path); i++ {
		h = (h ^ uint32(f.path[i])) * 16777619
	}
	return h
}

// shard picks the data node slot: the placement recorded at open when the
// metadata server assigned one, else a stable hash of the path.
func (f *File) shard() int {
	if len(f.loc) > 0 {
		return int(f.loc[0] & 0x7fffffff)
	}
	// Mask to keep the index non-negative on 32-bit ints.
	return int(f.fileKey() & 0x7fffffff)
}

// Close releases the handle at the metadata service. Closing twice returns
// ErrClosed.
func (f *File) Close() error {
	if f.closed {
		return wrapPath("close", f.path, core.ErrClosed)
	}
	f.closed = true
	return wrapPath("close", f.path, f.s.run(func(p *env.Proc) error {
		return f.s.cl.Close(p, f.path)
	}))
}
