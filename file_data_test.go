package switchfs

import (
	"errors"
	"testing"
)

// TestFileShardStability: the data-node pick is a pure function of the
// open-time placement (or path), so repeated opens of the same file route
// content to the same nodes.
func TestFileShardStability(t *testing.T) {
	e := NewSimEnv(21)
	defer e.Shutdown()
	fs, err := New(e, WithServers(4), WithDataNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	fs.RunSession(0, func(s *Session) {
		if err := s.Create("/f", 0); err != nil {
			t.Fatalf("create: %v", err)
		}
		f1, err := s.Open("/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		f2, err := s.Open("/f")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if f1.shard() != f2.shard() {
			t.Errorf("shard unstable across opens: %d vs %d", f1.shard(), f2.shard())
		}
		// The unplaced fallback (no DataLoc) is a stable path hash too.
		g1 := &File{s: s, path: "/somewhere/else"}
		g2 := &File{s: s, path: "/somewhere/else"}
		if g1.shard() != g2.shard() || g1.shard() < 0 {
			t.Errorf("fallback shard unstable or negative: %d vs %d", g1.shard(), g2.shard())
		}
	})
}

// TestFilePlacementFromOpenDataLoc: the metadata server assigns a DataLoc
// stripe window at create; Open returns it and content ops follow it — the
// written chunks land on exactly the data nodes the placement names.
func TestFilePlacementFromOpenDataLoc(t *testing.T) {
	e := NewSimEnv(22)
	defer e.Shutdown()
	fs, err := New(e, WithServers(4), WithDataNodes(8), WithDataReplication(1))
	if err != nil {
		t.Fatal(err)
	}
	c := fs.Cluster()
	fs.RunSession(0, func(s *Session) {
		if err := s.Create("/f", 0); err != nil {
			t.Fatalf("create: %v", err)
		}
		f, err := s.Open("/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if len(f.loc) == 0 {
			t.Fatal("open returned no DataLoc placement")
		}
		// Two stripes: 96 KB spans stripeUnit (64 KB) + remainder.
		if err := f.Write(96 << 10); err != nil {
			t.Fatalf("write: %v", err)
		}
		for s := 0; s < 2; s++ {
			slot := int(f.loc[s%len(f.loc)]) % len(c.DataNodes)
			found := false
			for i, dn := range c.DataServers {
				if dn.Chunks() > 0 && i == slot {
					found = true
				}
				if dn.Chunks() > 0 && i != int(f.loc[0])%len(c.DataNodes) && i != int(f.loc[1%len(f.loc)])%len(c.DataNodes) {
					t.Errorf("chunk landed on node %d, outside the DataLoc placement %v", i, f.loc)
				}
			}
			if !found {
				t.Errorf("stripe %d missing from its placed node %d (loc %v)", s, slot, f.loc)
			}
		}
	})
}

// TestFileDataZeroNodesNoOp: metadata-only deployments complete content
// ops immediately — no data nodes, no round trips, no error.
func TestFileDataZeroNodesNoOp(t *testing.T) {
	e := NewSimEnv(23)
	defer e.Shutdown()
	fs, err := New(e, WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	fs.RunSession(0, func(s *Session) {
		if err := s.Create("/f", 0); err != nil {
			t.Fatalf("create: %v", err)
		}
		f, err := s.Open("/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := f.Write(1 << 20); err != nil {
			t.Errorf("write without data nodes: %v", err)
		}
		if err := f.Read(1 << 20); err != nil {
			t.Errorf("read without data nodes: %v", err)
		}
	})
}

// TestFileDataNegativeSize: n < 0 is ErrInvalid wrapped in a *PathError,
// through the public Session API — and it must not touch the data plane.
func TestFileDataNegativeSize(t *testing.T) {
	e := NewSimEnv(24)
	defer e.Shutdown()
	fs, err := New(e, WithServers(2), WithDataNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	fs.RunSession(0, func(s *Session) {
		if err := s.Create("/f", 0); err != nil {
			t.Fatalf("create: %v", err)
		}
		f, err := s.Open("/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for _, op := range []struct {
			name string
			call func(int64) error
		}{{"write", f.Write}, {"read", f.Read}} {
			err := op.call(-1)
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("%s(-1): err=%v, want ErrInvalid", op.name, err)
			}
			var pe *PathError
			if !errors.As(err, &pe) {
				t.Errorf("%s(-1): error %T is not a *PathError", op.name, err)
			} else if pe.Op != op.name || pe.Path != "/f" {
				t.Errorf("%s(-1): PathError{%s %s}", op.name, pe.Op, pe.Path)
			}
		}
	})
	for i, dn := range fs.Cluster().DataServers {
		if dn.Chunks() != 0 {
			t.Errorf("data node %d holds %d chunks after rejected ops", i, dn.Chunks())
		}
	}
}
