// CNN-training: replays the paper's CV-training end-to-end workload (§7.6) —
// the lifecycle of an ImageNet-class dataset of small files grouped into
// directories: download (create+write), training epochs (open/stat/read),
// and cleanup — against a SwitchFS cluster with data nodes, reporting
// metadata and end-to-end throughput.
package main

import (
	"fmt"
	"log"

	"switchfs"
	"switchfs/internal/workload"
)

func main() {
	const (
		classes     = 100 // directories ("synsets")
		imagesEach  = 64
		inflight    = 128
		opsPerConn  = 60
		imageSizeKB = 128
	)

	sim := switchfs.NewSimEnv(2026)
	defer sim.Shutdown()
	fs, err := switchfs.New(sim,
		switchfs.WithServers(8),
		switchfs.WithClients(8),
		switchfs.WithDataNodes(8))
	if err != nil {
		log.Fatal(err)
	}
	c := fs.Cluster()

	ns := workload.MultiDir(classes, imagesEach)
	ns.Preload(c)
	fmt.Printf("dataset: %d classes × %d images (%d KB each), 8 metadata + 8 data nodes\n\n",
		classes, imagesEach, imageSizeKB)

	for pi, phase := range []struct {
		name string
		mix  workload.Mix
	}{
		{"end-to-end (with data access)", workload.CNNTrainingMix(imageSizeKB << 10)},
		{"metadata only", workload.CNNTrainingMix(0)},
	} {
		res := workload.Run(sim, c, workload.RunCfg{
			Workers:      inflight,
			OpsPerWorker: opsPerConn,
			Clients:      8,
			Seed:         int64(3 + 1000*pi), // distinct namespaces per phase
			Gen:          phase.mix.Gen(ns, false),
		})
		fmt.Printf("%-32s %9.0f ops/s  (%d ops, %d errors)\n",
			phase.name, res.ThroughputOps(), res.Ops, res.Errs)
		for _, op := range []string{"open", "stat", "create"} {
			for o, h := range res.Lat {
				if o.String() == op {
					fmt.Printf("    %-8s %s\n", op, h.Summary())
				}
			}
		}
		fmt.Println()
	}
}
