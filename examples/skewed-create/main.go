// Skewed-create: the paper's headline scenario (§7.2) — many clients
// creating files in ONE shared directory. The run compares SwitchFS against
// the two emulated baselines on identical simulated hardware and prints the
// sustained throughput of each, demonstrating how asynchronous updates plus
// change-log compaction dissolve the directory hotspot.
package main

import (
	"fmt"
	"log"

	"switchfs"
	"switchfs/internal/baseline"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
	"switchfs/internal/workload"
)

func main() {
	const (
		servers  = 8
		inflight = 128
		perOp    = 60
	)
	ns := workload.SingleDir(0)

	run := func(name string, sys fsapi.System, sim *env.Sim) {
		ns.Preload(sys)
		res := workload.Run(sim, sys, workload.RunCfg{
			Workers:      inflight,
			OpsPerWorker: perOp,
			Clients:      8,
			Seed:         7,
			Gen:          ns.FreshFiles(core.OpCreate),
		})
		fmt.Printf("%-18s %9.0f creates/s   mean %6.1fµs   p99 %7.1fµs\n",
			name, res.ThroughputOps(), res.All.Mean()/1e3, res.All.Percentile(0.99)/1e3)
	}

	fmt.Printf("%d concurrent clients creating files in one shared directory\n", inflight)
	fmt.Printf("%d metadata servers × 4 cores\n\n", servers)

	sim := env.NewSim(1)
	fs, err := switchfs.New(sim, switchfs.WithServers(servers), switchfs.WithClients(8))
	if err != nil {
		log.Fatal(err)
	}
	run("SwitchFS", fs.Cluster(), sim)
	sim.Shutdown()

	for _, mode := range []baseline.Mode{baseline.InfiniFS, baseline.CFS} {
		sim := env.NewSim(1)
		run(mode.String(), baseline.New(sim, baseline.Options{
			Mode: mode, Servers: servers, Clients: 8, Costs: env.DefaultCosts(),
		}), sim)
		sim.Shutdown()
	}

	fmt.Println("\nSwitchFS absorbs the hotspot: updates to the shared directory are")
	fmt.Println("logged locally on every server (commuting appends under a shared lock)")
	fmt.Println("and compacted before application, so neither the network round trips")
	fmt.Println("nor the per-directory serialization of the baselines appear on the")
	fmt.Println("critical path.")
}
