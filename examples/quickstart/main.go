// Quickstart: deploy a SwitchFS cluster on the deterministic simulator,
// create a small namespace, and observe the asynchronous-update machinery —
// directory updates commit locally, and directory reads aggregate them.
package main

import (
	"fmt"
	"log"

	"switchfs"
)

func main() {
	env := switchfs.NewSimEnv(42)
	fs, err := switchfs.New(env, switchfs.Config{Servers: 8, Clients: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Shutdown()

	fs.RunClient(0, func(p *switchfs.Proc, c *switchfs.Client) {
		must(c.Mkdir(p, "/projects", 0))
		must(c.Mkdir(p, "/projects/switchfs", 0))
		for i := 0; i < 10; i++ {
			must(c.Create(p, fmt.Sprintf("/projects/switchfs/src%d.go", i), 0o644))
		}

		// The ten creates returned after a single round trip each; their
		// directory updates are sitting in change-logs. This statdir finds
		// the directory "scattered" in the switch's dirty set, aggregates
		// the deferred updates, and returns the up-to-date attributes.
		attr, err := c.StatDir(p, "/projects/switchfs")
		must(err)
		fmt.Printf("statdir /projects/switchfs: %d entries (aggregated), mode %o\n",
			attr.Size, attr.Perm)

		entries, err := c.ReadDir(p, "/projects/switchfs")
		must(err)
		fmt.Printf("readdir: %d entries, first=%s\n", len(entries), entries[0].Name)

		must(c.Rename(p, "/projects/switchfs/src0.go", "/projects/switchfs/main.go"))
		a, err := c.Stat(p, "/projects/switchfs/main.go")
		must(err)
		fmt.Printf("renamed file: type=%v nlink=%d\n", a.Type, a.Nlink)

		must(c.Delete(p, "/projects/switchfs/main.go"))
		attr, _ = c.StatDir(p, "/projects/switchfs")
		fmt.Printf("after delete: %d entries\n", attr.Size)
	})

	// Observe the protocol counters.
	var async, aggs uint64
	for _, s := range fs.Servers() {
		async += s.Stats.AsyncCommits
		aggs += s.Stats.Aggregations
	}
	fmt.Printf("asynchronous commits: %d, aggregations: %d\n", async, aggs)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
