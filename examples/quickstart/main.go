// Quickstart: deploy a SwitchFS cluster on the deterministic simulator,
// create a small namespace through a bound session, and observe the
// asynchronous-update machinery — directory updates commit locally, and
// directory reads aggregate them.
package main

import (
	"errors"
	"fmt"
	"log"

	"switchfs"
)

func main() {
	env := switchfs.NewSimEnv(42)
	fs, err := switchfs.New(env, switchfs.WithServers(8), switchfs.WithClients(1))
	if err != nil {
		log.Fatal(err)
	}
	defer env.Shutdown()

	fs.RunSession(0, func(s *switchfs.Session) {
		must(s.Mkdir("/projects", 0))
		must(s.Mkdir("/projects/switchfs", 0))
		for i := 0; i < 10; i++ {
			must(s.Create(fmt.Sprintf("/projects/switchfs/src%d.go", i), 0o644))
		}

		// The ten creates returned after a single round trip each; their
		// directory updates are sitting in change-logs. This statdir finds
		// the directory "scattered" in the switch's dirty set, aggregates
		// the deferred updates, and returns the up-to-date attributes.
		attr, err := s.StatDir("/projects/switchfs")
		must(err)
		fmt.Printf("statdir /projects/switchfs: %d entries (aggregated), mode %o\n",
			attr.Size, attr.Perm)

		entries, err := s.ReadDir("/projects/switchfs")
		must(err)
		fmt.Printf("readdir: %d entries, first=%s\n", len(entries), entries[0].Name)

		must(s.Rename("/projects/switchfs/src0.go", "/projects/switchfs/main.go"))
		f, err := s.Open("/projects/switchfs/main.go")
		must(err)
		fmt.Printf("renamed file: type=%v nlink=%d\n", f.Attr().Type, f.Attr().Nlink)
		must(f.Close())

		// Errors arrive as *switchfs.PathError wrapping the sentinels.
		if err := s.Create("/projects/switchfs/src1.go", 0o644); errors.Is(err, switchfs.ErrExist) {
			fmt.Printf("duplicate create: %v\n", err)
		}

		must(s.Remove("/projects/switchfs/main.go"))
		attr, _ = s.StatDir("/projects/switchfs")
		fmt.Printf("after remove: %d entries\n", attr.Size)
	})

	// Observe the protocol counters.
	var async, aggs uint64
	for _, srv := range fs.Servers() {
		async += srv.Stats.AsyncCommits
		aggs += srv.Stats.Aggregations
	}
	fmt.Printf("asynchronous commits: %d, aggregations: %d\n", async, aggs)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
