// Crash-recovery: exercises §5.4's fault tolerance end to end — a metadata
// server fail-stops with change-log entries in flight, recovers from its
// WAL, and the namespace remains exactly consistent; then the switch loses
// all dirty-set state and the cluster flushes back to a consistent
// all-normal state.
package main

import (
	"fmt"
	"log"

	"switchfs"
)

func main() {
	env := switchfs.NewSimEnv(7)
	defer env.Shutdown()
	fs, err := switchfs.New(env, switchfs.WithServers(8))
	if err != nil {
		log.Fatal(err)
	}

	// Build a namespace with deferred updates outstanding.
	fs.RunSession(0, func(s *switchfs.Session) {
		must(s.Mkdir("/srv", 0))
		for i := 0; i < 40; i++ {
			must(s.Create(fmt.Sprintf("/srv/log%02d", i), 0))
		}
	})
	fmt.Println("created /srv with 40 files (asynchronous directory updates pending)")

	// Fail-stop one server. Its key-value store, change-logs and
	// invalidation list are volatile and vanish; its WAL survives.
	fs.CrashServer(2)
	fmt.Println("server 2 crashed (volatile state lost)")
	fs.RecoverServer(2)
	env.Run() // drive recovery to completion
	fmt.Println("server 2 recovered: WAL replayed, change-logs re-delivered,",
		"owned directories aggregated, invalidation list cloned")

	fs.RunSession(0, func(s *switchfs.Session) {
		attr, err := s.StatDir("/srv")
		must(err)
		fmt.Printf("post-recovery statdir /srv: %d entries (want 40)\n", attr.Size)
		if attr.Size != 40 {
			log.Fatal("metadata lost!")
		}
		must(s.Create("/srv/after-crash", 0))
	})

	// Now reboot the switch: the whole dirty set disappears.
	fs.CrashSwitch()
	fs.RecoverSwitch()
	env.Run()
	fmt.Println("switch rebooted: dirty set reset, every server flushed its change-logs")

	fs.RunSession(0, func(s *switchfs.Session) {
		attr, err := s.StatDir("/srv")
		must(err)
		fmt.Printf("post-switch-recovery statdir /srv: %d entries (want 41)\n", attr.Size)
		if attr.Size != 41 {
			log.Fatal("inconsistent after switch recovery!")
		}
	})
	fmt.Println("namespace consistent after both failures")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
