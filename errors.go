package switchfs

import "switchfs/internal/core"

// Filesystem sentinel errors (aliases of internal/core's values). Public
// operations never return these bare: they arrive wrapped in a *PathError or
// *LinkError, so match with errors.Is.
var (
	ErrExist    = core.ErrExist
	ErrNotExist = core.ErrNotExist
	ErrNotEmpty = core.ErrNotEmpty
	ErrNotDir   = core.ErrNotDir
	ErrIsDir    = core.ErrIsDir
	ErrInvalid  = core.ErrInvalid
	ErrLoop     = core.ErrLoop
	ErrTimeout  = core.ErrTimeout
	ErrClosed   = core.ErrClosed
)

// PathError records an error and the operation and file path that caused it,
// mirroring io/fs.PathError so session errors read like package os errors.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap exposes the sentinel for errors.Is / errors.As.
func (e *PathError) Unwrap() error { return e.Err }

// LinkError records an error from a two-path operation (rename, link) and
// both paths involved, mirroring os.LinkError.
type LinkError struct {
	Op  string
	Old string
	New string
	Err error
}

func (e *LinkError) Error() string {
	return e.Op + " " + e.Old + " " + e.New + ": " + e.Err.Error()
}

// Unwrap exposes the sentinel for errors.Is / errors.As.
func (e *LinkError) Unwrap() error { return e.Err }

// wrapPath boxes err into a *PathError unless it is nil.
func wrapPath(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &PathError{Op: op, Path: path, Err: err}
}

// wrapLink boxes err into a *LinkError unless it is nil.
func wrapLink(op, oldp, newp string, err error) error {
	if err == nil {
		return nil
	}
	return &LinkError{Op: op, Old: oldp, New: newp, Err: err}
}
