# Developer entry points. `make verify` is the tier-1 gate CI runs.

GO ?= go

.PHONY: verify fmt vet build test bench figures lint race detlint detlint-report determinism-smoke bench-json bench-smoke bench-compare bench-baseline chaos-smoke rebalance-smoke lincheck-smoke lincheck-sweep scale-smoke trace-smoke

verify: fmt vet build test

# lint is the one-command static gate: go vet, staticcheck (when available —
# CI installs it, locally it is optional), and the repo's own determinism
# analyzers (detlint).
lint: vet detlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet + detlint only"; \
	fi

# detlint runs the determinism/protocol analyzer suite (internal/detlint)
# over the whole tree through the vet driver. The build must be clean:
# every diagnostic is either fixed or carries a //detlint:ignore with a
# written reason.
detlint:
	$(GO) build -o bin/detlint ./cmd/detlint
	$(GO) vet -vettool=$(CURDIR)/bin/detlint ./...

# detlint-report prints the suppression inventory — every //detlint:
# directive with its location and written reason — and fails if any
# directive is malformed or reason-less. CI runs it in the detlint job so
# an unjustified suppression cannot land.
detlint-report:
	$(GO) build -o bin/detlint ./cmd/detlint
	./bin/detlint -report .

# determinism-smoke is the end-to-end meta-check behind the static analyzers:
# two same-seed fsbench runs with wall-clock stamping off must serialize to
# byte-identical JSON.
determinism-smoke:
	$(GO) run ./cmd/fsbench -fig 12a -scale tiny -format json -stamp=false -out det1.json
	$(GO) run ./cmd/fsbench -fig 12a -scale tiny -format json -stamp=false -out det2.json
	cmp det1.json det2.json
	@rm -f det1.json det2.json
	@echo "determinism-smoke: byte-identical"

# trace-smoke gates the observability invariant: two same-seed fsbench runs
# with -trace on must write byte-identical trace files AND byte-identical
# bench JSON (which now embeds the per-figure metrics deltas), and the trace
# must parse and pass the span-tree shape check (fsctl trace -validate).
trace-smoke:
	$(GO) run ./cmd/fsbench -fig 12a -scale tiny -format json -stamp=false -trace trace1.json -out tbench1.json
	$(GO) run ./cmd/fsbench -fig 12a -scale tiny -format json -stamp=false -trace trace2.json -out tbench2.json
	cmp trace1.json trace2.json
	cmp tbench1.json tbench2.json
	$(GO) run ./cmd/fsctl trace -validate trace1.json
	@rm -f trace1.json trace2.json tbench1.json tbench2.json
	@echo "trace-smoke: byte-identical and well-shaped"

race:
	$(GO) test -race ./...

# bench-json regenerates the CI smoke artifact locally.
bench-json:
	$(GO) run ./cmd/fsbench -fig 12a,14 -scale tiny -format json -out bench.json
	$(GO) run ./cmd/fsbench -validate bench.json

# bench-smoke mirrors CI's bench-smoke + scale-smoke jobs locally: generate,
# schema-validate, same-seed self-compare (determinism + allocation noise
# bound), then gate everything against the committed baseline trajectory.
bench-smoke:
	$(GO) run ./cmd/fsbench -fig 12a,14,data -scale tiny -format json -out bench.json
	$(GO) run ./cmd/fsbench -validate bench.json
	$(GO) run ./cmd/fsbench -fig 12a,14,data -scale tiny -compare bench.json
	$(MAKE) scale-smoke
	$(MAKE) bench-compare

# scale-smoke runs the tiny two-cell (1e2/1e3-client) scale figure, validates
# the schema, and self-compares a same-seed re-run: rows, counters and the
# allocator columns must reproduce.
scale-smoke:
	$(GO) run ./cmd/fsbench -fig scale -scale tiny -format json -out scale.json
	$(GO) run ./cmd/fsbench -validate scale.json
	$(GO) run ./cmd/fsbench -fig scale -scale tiny -compare scale.json

# bench-compare gates the current tree against the checked-in trajectory
# (bench/baseline.json): simulated-time cells, deterministic counters, table
# shape (added/removed rows), and the bytes/op / allocs/op allocation columns
# must match the committed run, so regressions show up against history, not
# just against a self-compare. Refresh the baseline with bench-baseline when
# a change legitimately moves the numbers (and say why in the commit).
# Both baseline targets run with -trace so the per-figure metrics deltas are
# recorded in (and gated against) the committed trajectory; the trace file
# itself is a byproduct and discarded.
bench-compare:
	$(GO) run ./cmd/fsbench -fig 12a,14,chaos,rebalance,data,lincheck,scale -scale tiny -trace trace-compare.json -compare bench/baseline.json
	@rm -f trace-compare.json

bench-baseline:
	$(GO) run ./cmd/fsbench -fig 12a,14,chaos,rebalance,data,lincheck,scale -scale tiny -trace trace-baseline.json -format json -out bench/baseline.json
	$(GO) run ./cmd/fsbench -validate bench/baseline.json
	@rm -f trace-baseline.json

# chaos-smoke runs the fault-plan availability harness (metadata AND
# data-fault plans — the cluster deploys a replicated data plane) twice with
# one seed: the checker must report zero invariant violations (in particular
# no lost acked content write under <= r-1 data-node failures), and the two
# runs must produce identical rows and op/packet counters (byte-level
# determinism).
chaos-smoke:
	$(GO) run ./cmd/fsbench -fig chaos -scale tiny -seed 7 -format json -out chaos.json
	$(GO) run ./cmd/fsbench -fig chaos -scale tiny -seed 7 -compare chaos.json

# rebalance-smoke runs the live-migration availability harness twice with one
# seed: run 1 fails if any pure-migration window with traffic has zero
# successful ops (stop-the-world regression), if a plan migrates nothing, or
# on any checker violation; run 2 re-generates and diffs cell-by-cell with
# counter checking so any nondeterminism fails too.
rebalance-smoke:
	$(GO) run ./cmd/fsbench -fig rebalance -scale tiny -seed 7 -format json -out rebalance.json
	$(GO) run ./cmd/fsbench -fig rebalance -scale tiny -seed 7 -compare rebalance.json

# lincheck-smoke runs the linearizability + differential-model checker over a
# bounded seed range (sequential diffs vs the baseline, concurrent histories
# fault-free and across the fault-plan catalog) twice with one seed: run 1
# fails on any divergence or non-linearizable history (the figure panics with
# a minimized counterexample), run 2 re-generates and diffs cell-by-cell with
# counter checking so any nondeterminism fails too.
lincheck-smoke:
	$(GO) run ./cmd/fsbench -fig lincheck -scale tiny -seed 7 -format json -out lincheck.json
	$(GO) run ./cmd/fsbench -fig lincheck -scale tiny -seed 7 -compare lincheck.json

# lincheck-sweep is the long-form acceptance sweep: 64 seeds through every
# lincheck test mode (go test entry point).
lincheck-sweep:
	LINCHECK_SEEDS=64 $(GO) test ./internal/lincheck/ -run 'TestSweep' -v

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

figures:
	$(GO) run ./cmd/fsbench -fig all -scale quick
