# Developer entry points. `make verify` is the tier-1 gate CI runs.

GO ?= go

.PHONY: verify fmt vet build test bench figures lint race bench-json

verify: fmt vet build test

# lint runs vet plus staticcheck when available (CI installs it; locally it
# is optional).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

race:
	$(GO) test -race ./...

# bench-json regenerates the CI smoke artifact locally.
bench-json:
	$(GO) run ./cmd/fsbench -fig 12a,14 -scale tiny -format json -out bench.json
	$(GO) run ./cmd/fsbench -validate bench.json

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

figures:
	$(GO) run ./cmd/fsbench -fig all -scale quick
