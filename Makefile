# Developer entry points. `make verify` is the tier-1 gate CI runs.

GO ?= go

.PHONY: verify fmt vet build test bench figures

verify: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

figures:
	$(GO) run ./cmd/fsbench -fig all -scale quick
