package switchfs

import (
	"errors"
	"fmt"
	"testing"
)

// TestSessionTable drives the v2 surface — bound sessions, functional
// options, *File handles, and os-style path errors — through a table of
// scenarios on the deterministic simulator (seed-stable).
func TestSessionTable(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		run  func(t *testing.T, fs *FS, s *Session)
	}{
		{
			name: "lifecycle",
			opts: []Option{WithServers(4), WithClients(2)},
			run: func(t *testing.T, fs *FS, s *Session) {
				if err := s.Mkdir("/a", 0); err != nil {
					t.Errorf("mkdir: %v", err)
					return
				}
				for i := 0; i < 5; i++ {
					if err := s.Create(fmt.Sprintf("/a/f%d", i), 0); err != nil {
						t.Errorf("create: %v", err)
						return
					}
				}
				attr, err := s.StatDir("/a")
				if err != nil || attr.Size != 5 {
					t.Errorf("statdir size=%d err=%v", attr.Size, err)
				}
				es, err := s.ReadDir("/a")
				if err != nil || len(es) != 5 {
					t.Errorf("readdir: %d entries err=%v", len(es), err)
				}
			},
		},
		{
			name: "path-errors",
			opts: []Option{WithServers(4)},
			run: func(t *testing.T, fs *FS, s *Session) {
				if err := s.Mkdir("/e", 0); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := s.Create("/e/f", 0); err != nil {
					t.Fatalf("create: %v", err)
				}
				err := s.Create("/e/f", 0)
				if !errors.Is(err, ErrExist) {
					t.Errorf("duplicate create: want ErrExist, got %v", err)
				}
				var pe *PathError
				if !errors.As(err, &pe) || pe.Op != "create" || pe.Path != "/e/f" {
					t.Errorf("want *PathError{create /e/f}, got %#v", err)
				}
				_, err = s.Stat("/e/missing")
				if !errors.Is(err, ErrNotExist) {
					t.Errorf("stat missing: want ErrNotExist, got %v", err)
				}
				err = s.Rename("/e/missing", "/e/g")
				var le *LinkError
				if !errors.Is(err, ErrNotExist) || !errors.As(err, &le) || le.Op != "rename" {
					t.Errorf("rename missing: want *LinkError{rename}/ErrNotExist, got %v", err)
				}
			},
		},
		{
			name: "file-handle",
			opts: []Option{WithServers(4), WithDataNodes(2)},
			run: func(t *testing.T, fs *FS, s *Session) {
				if err := s.Mkdir("/d", 0); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := s.Create("/d/img", 0o644); err != nil {
					t.Fatalf("create: %v", err)
				}
				f, err := s.Open("/d/img")
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				if f.Name() != "/d/img" || f.Attr().Type != TypeRegular {
					t.Errorf("handle: name=%q attr=%+v", f.Name(), f.Attr())
				}
				if err := f.Write(64 << 10); err != nil {
					t.Errorf("write: %v", err)
				}
				if err := f.Read(64 << 10); err != nil {
					t.Errorf("read: %v", err)
				}
				if _, err := f.Stat(); err != nil {
					t.Errorf("fstat: %v", err)
				}
				if err := f.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
				if err := f.Close(); !errors.Is(err, ErrClosed) {
					t.Errorf("double close: want ErrClosed, got %v", err)
				}
				if err := f.Read(1); !errors.Is(err, ErrClosed) {
					t.Errorf("read after close: want ErrClosed, got %v", err)
				}
				if _, err := s.Open("/d/none"); !errors.Is(err, ErrNotExist) {
					t.Errorf("open missing: want ErrNotExist, got %v", err)
				}
			},
		},
		{
			name: "two-clients",
			opts: []Option{WithServers(4), WithClients(2)},
			run: func(t *testing.T, fs *FS, s *Session) {
				if err := s.Mkdir("/shared", 0); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := s.Create("/shared/x", 0); err != nil {
					t.Fatalf("create: %v", err)
				}
				// The second client observes the first client's namespace.
				fs.RunSession(1, func(s2 *Session) {
					es, err := s2.ReadDir("/shared")
					if err != nil || len(es) != 1 {
						t.Errorf("client 1 readdir: %d entries err=%v", len(es), err)
					}
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewSimEnv(1)
			defer e.Shutdown()
			fs, err := New(e, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			fs.RunSession(0, func(s *Session) { tc.run(t, fs, s) })
		})
	}
}

func TestOptionValidation(t *testing.T) {
	e := NewSimEnv(3)
	defer e.Shutdown()
	if _, err := New(e, WithServers(0)); err == nil {
		t.Error("WithServers(0) accepted")
	}
	if _, err := New(e, WithClients(-1)); err == nil {
		t.Error("WithClients(-1) accepted")
	}
	if _, err := New(e, WithRetryTimeout(-1)); err == nil {
		t.Error("WithRetryTimeout(-1) accepted")
	}
	fs, err := New(e, WithServers(2), WithCoresPerServer(2), WithSwitches(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fs.Cluster().Servers); got != 2 {
		t.Errorf("servers deployed: %d", got)
	}
	if got := len(fs.Cluster().Switches); got != 2 {
		t.Errorf("switches deployed: %d", got)
	}
}

// TestUnboundSession exercises FS.Session: each operation dispatches its own
// process and drives the simulation to completion.
func TestUnboundSession(t *testing.T) {
	e := NewSimEnv(5)
	defer e.Shutdown()
	fs, err := New(e, WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	s := fs.Session(0)
	if err := s.Mkdir("/u", 0); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := s.Create("/u/f", 0); err != nil {
		t.Fatalf("create: %v", err)
	}
	attr, err := s.StatDir("/u")
	if err != nil || attr.Size != 1 {
		t.Errorf("statdir: size=%d err=%v", attr.Size, err)
	}
	if _, err := s.Stat("/u/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat missing: %v", err)
	}
}

func TestSessionCrashRecovery(t *testing.T) {
	e := NewSimEnv(2)
	defer e.Shutdown()
	fs, err := New(e, WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	fs.RunSession(0, func(s *Session) {
		s.Mkdir("/x", 0)
		for i := 0; i < 10; i++ {
			s.Create(fmt.Sprintf("/x/f%d", i), 0)
		}
	})
	fs.CrashServer(1)
	fs.RecoverServer(1)
	e.Run()
	fs.RunSession(0, func(s *Session) {
		attr, err := s.StatDir("/x")
		if err != nil || attr.Size != 10 {
			t.Errorf("after recovery: size=%d err=%v", attr.Size, err)
		}
	})
}

func TestSessionRealEnv(t *testing.T) {
	e := NewRealEnv()
	fs, err := New(e, WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	// RunSession blocks until fn returns under the real environment too.
	var got Attr
	var serr error
	fs.RunSession(0, func(s *Session) {
		if serr = s.Mkdir("/real", 0); serr != nil {
			return
		}
		if serr = s.Create("/real/f", 0); serr != nil {
			return
		}
		got, serr = s.StatDir("/real")
	})
	if serr != nil {
		t.Fatal(serr)
	}
	if got.Size != 1 {
		t.Fatalf("size=%d", got.Size)
	}
	// Unbound sessions block per call on the real runtime.
	s := fs.Session(0)
	if err := s.Create("/real/g", 0); err != nil {
		t.Fatal(err)
	}
	if attr, err := s.StatDir("/real"); err != nil || attr.Size != 2 {
		t.Fatalf("unbound statdir: size=%d err=%v", attr.Size, err)
	}
}
