package switchfs

import (
	"errors"
	"fmt"
	"testing"
)

func TestFacadeLifecycle(t *testing.T) {
	e := NewSimEnv(1)
	defer e.Shutdown()
	fs, err := New(e, Config{Servers: 4, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.RunClient(0, func(p *Proc, c *Client) {
		if err := c.Mkdir(p, "/a", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			if err := c.Create(p, fmt.Sprintf("/a/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		attr, err := c.StatDir(p, "/a")
		if err != nil || attr.Size != 5 {
			t.Errorf("statdir size=%d err=%v", attr.Size, err)
		}
		if err := c.Create(p, "/a/f0", 0); !errors.Is(err, ErrExist) {
			t.Errorf("duplicate create: %v", err)
		}
	})
	// The second client observes the first client's namespace.
	fs.RunClient(1, func(p *Proc, c *Client) {
		es, err := c.ReadDir(p, "/a")
		if err != nil || len(es) != 5 {
			t.Errorf("client 1 readdir: %d entries err=%v", len(es), err)
		}
	})
}

func TestFacadeCrashRecovery(t *testing.T) {
	e := NewSimEnv(2)
	defer e.Shutdown()
	fs, err := New(e, Config{Servers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fs.RunClient(0, func(p *Proc, c *Client) {
		c.Mkdir(p, "/x", 0)
		for i := 0; i < 10; i++ {
			c.Create(p, fmt.Sprintf("/x/f%d", i), 0)
		}
	})
	fs.CrashServer(1)
	fs.RecoverServer(1)
	e.Run()
	fs.RunClient(0, func(p *Proc, c *Client) {
		attr, err := c.StatDir(p, "/x")
		if err != nil || attr.Size != 10 {
			t.Errorf("after recovery: size=%d err=%v", attr.Size, err)
		}
	})
}

func TestFacadeRealEnv(t *testing.T) {
	e := NewRealEnv()
	fs, err := New(e, Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	fs.RunClient(0, func(p *Proc, c *Client) {
		if err := c.Mkdir(p, "/real", 0); err != nil {
			done <- err
			return
		}
		if err := c.Create(p, "/real/f", 0); err != nil {
			done <- err
			return
		}
		attr, err := c.StatDir(p, "/real")
		if err == nil && attr.Size != 1 {
			err = fmt.Errorf("size=%d", attr.Size)
		}
		done <- err
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
