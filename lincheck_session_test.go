package switchfs_test

import (
	"errors"
	"testing"

	"switchfs"
	"switchfs/internal/core"
	"switchfs/internal/lincheck"
)

// TestLincheckThroughSessions drives concurrent programs through the PUBLIC
// Session API (FS.RunSessions), records invocation/response intervals in
// virtual time with the lincheck recorder, and requires the histories to be
// linearizable against the sequential model. This pins the whole stack the
// way applications see it: *PathError/*LinkError unwrapping included.
func TestLincheckThroughSessions(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		const clients = 3
		prog := lincheck.GenProgram(seed, clients, 7)
		sim := switchfs.NewSimEnv(seed)
		fs, err := switchfs.New(sim, switchfs.WithServers(4), switchfs.WithClients(clients))
		if err != nil {
			t.Fatal(err)
		}
		rec := lincheck.NewRecorder()
		fs.RunSessions(clients, func(i int, s *switchfs.Session) {
			for _, op := range prog.Ops[i] {
				t0 := s.Now()
				out := applySession(s, op)
				ev := lincheck.Event{Client: i, Op: op, Out: out, Call: t0, Ret: s.Now()}
				if errors.Is(out.Err, switchfs.ErrTimeout) {
					ev.TimedOut = true
					ev.Out = lincheck.Outcome{Err: core.ErrTimeout}
				}
				rec.Record(ev)
			}
		})
		sim.Shutdown()
		h := rec.History()
		if res := lincheck.Check(h); !res.Ok {
			t.Errorf("seed %d: session history not linearizable; minimized counterexample:\n%s",
				seed, lincheck.Minimize(h))
		}
	}
}

// applySession executes one generated op through a Session, unwrapping the
// os-style error envelopes back to the sentinels the model speaks.
func applySession(s *switchfs.Session, op lincheck.Op) lincheck.Outcome {
	var out lincheck.Outcome
	switch op.Kind {
	case core.OpCreate:
		out.Err = s.Create(op.Path, op.Perm)
	case core.OpMkdir:
		out.Err = s.Mkdir(op.Path, op.Perm)
	case core.OpDelete:
		out.Err = s.Remove(op.Path)
	case core.OpRmdir:
		out.Err = s.Rmdir(op.Path)
	case core.OpStat:
		out.Attr, out.Err = s.Stat(op.Path)
	case core.OpOpen:
		f, err := s.Open(op.Path)
		out.Err = err
		if err == nil {
			out.Attr = f.Attr()
		}
	case core.OpClose:
		// The session surface closes through a handle; a path-addressed
		// close is a stat-shaped probe of the same inode (the checker
		// compares close outcomes by error alone).
		out.Attr, out.Err = s.Stat(op.Path)
	case core.OpChmod:
		out.Err = s.Chmod(op.Path, op.Perm)
	case core.OpStatDir:
		out.Attr, out.Err = s.StatDir(op.Path)
	case core.OpReadDir:
		out.Entries, out.Err = s.ReadDir(op.Path)
	case core.OpRename:
		out.Err = s.Rename(op.Path, op.Path2)
	case core.OpLink:
		out.Err = s.Link(op.Path, op.Path2)
	default:
		out.Err = core.ErrInvalid
	}
	out.Err = unwrapSentinel(out.Err)
	return out
}

// unwrapSentinel strips the *PathError/*LinkError envelope.
func unwrapSentinel(err error) error {
	if err == nil {
		return nil
	}
	var pe *switchfs.PathError
	if errors.As(err, &pe) {
		return pe.Err
	}
	var le *switchfs.LinkError
	if errors.As(err, &le) {
		return le.Err
	}
	return err
}
