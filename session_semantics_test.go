package switchfs

import (
	"errors"
	"testing"
)

// Table-driven error-semantics coverage for the two-path operations and
// chmod through the public Session API: every source/destination combination
// of file, directory, missing and nested paths, each case asserting the
// wrapped sentinel (ErrNotExist/ErrExist/ErrNotDir/ErrIsDir/ErrLoop) and the
// *PathError/*LinkError envelope.

// semanticsFS deploys a small simulated cluster with a fixture namespace:
//
//	/dir            (directory)
//	/dir/file       (file)
//	/dir/sub        (directory)
//	/file           (file)
//	/empty          (empty directory)
func semanticsFS(t *testing.T) *FS {
	t.Helper()
	sim := NewSimEnv(11)
	t.Cleanup(sim.Shutdown)
	fs, err := New(sim, WithServers(4), WithClients(1))
	if err != nil {
		t.Fatal(err)
	}
	fs.RunSession(0, func(s *Session) {
		for _, mk := range []struct {
			dir  bool
			path string
		}{
			{true, "/dir"}, {false, "/dir/file"}, {true, "/dir/sub"},
			{false, "/file"}, {true, "/empty"},
		} {
			var err error
			if mk.dir {
				err = s.Mkdir(mk.path, 0)
			} else {
				err = s.Create(mk.path, 0)
			}
			if err != nil {
				t.Errorf("fixture %s: %v", mk.path, err)
			}
		}
	})
	return fs
}

func TestRenameErrorSemantics(t *testing.T) {
	cases := []struct {
		name     string
		src, dst string
		want     error // nil means success
	}{
		{"file to fresh", "/file", "/fresh", nil},
		{"file to nested fresh", "/dir/file", "/dir/sub/f", nil},
		{"dir to fresh", "/empty", "/moved", nil},
		{"file to itself", "/file", "/file", nil},
		{"dir to itself", "/dir", "/dir", nil},
		{"missing source", "/nope", "/fresh", ErrNotExist},
		{"missing source to itself", "/nope", "/nope", ErrNotExist},
		{"missing nested source", "/dir/nope", "/fresh", ErrNotExist},
		{"source parent missing", "/nope/x", "/fresh", ErrNotExist},
		{"source parent is file", "/file/x", "/fresh", ErrNotDir},
		{"dest exists (file)", "/file", "/dir/file", ErrExist},
		{"dest exists (dir)", "/file", "/empty", ErrExist},
		{"dir onto existing file", "/empty", "/file", ErrExist},
		{"dest parent missing", "/file", "/nope/x", ErrNotExist},
		{"dest parent is file", "/file", "/dir/file/x", ErrNotDir},
		{"dir into own subtree", "/dir", "/dir/sub/d", ErrLoop},
		{"dir directly under itself", "/dir", "/dir/d", ErrLoop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := semanticsFS(t)
			fs.RunSession(0, func(s *Session) {
				err := s.Rename(tc.src, tc.dst)
				if tc.want == nil {
					if err != nil {
						t.Errorf("rename %s -> %s: %v, want success", tc.src, tc.dst, err)
					}
					return
				}
				if !errors.Is(err, tc.want) {
					t.Errorf("rename %s -> %s: %v, want %v", tc.src, tc.dst, err, tc.want)
					return
				}
				var le *LinkError
				if !errors.As(err, &le) || le.Op != "rename" || le.Old != tc.src || le.New != tc.dst {
					t.Errorf("rename error envelope %#v, want *LinkError{rename %s %s}", err, tc.src, tc.dst)
				}
			})
		})
	}
}

func TestRenameMovesSubtree(t *testing.T) {
	fs := semanticsFS(t)
	fs.RunSession(0, func(s *Session) {
		if err := s.Rename("/dir", "/renamed"); err != nil {
			t.Errorf("rename: %v", err)
			return
		}
		if _, err := s.Stat("/renamed/file"); err != nil {
			t.Errorf("child through new path: %v", err)
		}
		if _, err := s.StatDir("/renamed/sub"); err != nil {
			t.Errorf("subdir through new path: %v", err)
		}
		if _, err := s.Stat("/dir/file"); !errors.Is(err, ErrNotExist) {
			t.Errorf("child through old path: %v, want ErrNotExist", err)
		}
		if attr, err := s.StatDir("/renamed"); err != nil || attr.Size != 2 {
			t.Errorf("renamed dir size=%d err=%v, want 2", attr.Size, err)
		}
	})
}

func TestLinkErrorSemantics(t *testing.T) {
	cases := []struct {
		name     string
		src, dst string
		want     error
	}{
		{"file to fresh", "/file", "/l", nil},
		{"nested file to nested fresh", "/dir/file", "/dir/sub/l", nil},
		{"missing source", "/nope", "/l", ErrNotExist},
		{"source parent is file", "/file/x", "/l", ErrNotDir},
		{"directory source", "/dir", "/l", ErrIsDir},
		{"empty dir source", "/empty", "/l", ErrIsDir},
		{"dest exists (file)", "/file", "/dir/file", ErrExist},
		{"dest exists (dir)", "/file", "/empty", ErrExist},
		{"dest equals source", "/file", "/file", ErrExist},
		{"dest parent missing", "/file", "/nope/l", ErrNotExist},
		{"dest parent is file", "/file", "/dir/file/l", ErrNotDir},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := semanticsFS(t)
			fs.RunSession(0, func(s *Session) {
				err := s.Link(tc.src, tc.dst)
				if tc.want == nil {
					if err != nil {
						t.Errorf("link %s -> %s: %v, want success", tc.src, tc.dst, err)
						return
					}
					// Both references resolve and survive the other's removal.
					if _, err := s.Stat(tc.dst); err != nil {
						t.Errorf("stat new link: %v", err)
					}
					if err := s.Remove(tc.src); err != nil {
						t.Errorf("remove source ref: %v", err)
					}
					if _, err := s.Stat(tc.dst); err != nil {
						t.Errorf("link after source removal: %v", err)
					}
					return
				}
				if !errors.Is(err, tc.want) {
					t.Errorf("link %s -> %s: %v, want %v", tc.src, tc.dst, err, tc.want)
					return
				}
				var le *LinkError
				if !errors.As(err, &le) || le.Op != "link" {
					t.Errorf("link error envelope %#v, want *LinkError{link}", err)
				}
			})
		})
	}
}

func TestChmodErrorSemantics(t *testing.T) {
	cases := []struct {
		name string
		path string
		want error
	}{
		{"file", "/file", nil},
		{"nested file", "/dir/file", nil},
		{"directory", "/dir", nil},
		{"missing", "/nope", ErrNotExist},
		{"missing nested", "/dir/nope", ErrNotExist},
		{"parent missing", "/nope/x", ErrNotExist},
		{"parent is file", "/file/x", ErrNotDir},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := semanticsFS(t)
			fs.RunSession(0, func(s *Session) {
				err := s.Chmod(tc.path, 0o600)
				if tc.want == nil {
					if err != nil {
						t.Errorf("chmod %s: %v", tc.path, err)
						return
					}
					attr, serr := s.Stat(tc.path)
					if serr != nil || attr.Perm != 0o600 {
						t.Errorf("chmod %s not visible: perm=%#o err=%v", tc.path, attr.Perm, serr)
					}
					return
				}
				if !errors.Is(err, tc.want) {
					t.Errorf("chmod %s: %v, want %v", tc.path, err, tc.want)
					return
				}
				var pe *PathError
				if !errors.As(err, &pe) || pe.Op != "chmod" || pe.Path != tc.path {
					t.Errorf("chmod error envelope %#v, want *PathError{chmod %s}", err, tc.path)
				}
			})
		})
	}
}
