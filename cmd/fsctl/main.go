// Command fsctl runs an interactive-style script of filesystem operations
// against an in-process SwitchFS cluster on the real (goroutine) runtime —
// a smoke-testing and exploration tool.
//
// Usage:
//
//	fsctl -servers 8 'mkdir /a' 'create /a/f' 'ls /a' 'statdir /a' 'rm /a/f'
//
// Commands: mkdir, rmdir, create, rm, stat, statdir, ls, mv, ln, chmod,
// open, read, write.
//
// The chaos subcommand inspects the fault-injection plan catalog instead of
// running filesystem commands:
//
//	fsctl chaos                 # list built-in plans
//	fsctl chaos server-crash    # pretty-print one plan's event timeline
//	fsctl chaos random -seed 7  # print the seeded random plan
//
// The trace subcommand works with the causal span traces fsbench -trace
// writes (Chrome trace-event JSON, Perfetto-loadable):
//
//	fsctl trace -run -out t.json   # trace a small deterministic sim workload
//	fsctl trace -summary t.json    # critical-path summary of the kept traces
//	fsctl trace -validate t.json   # parse + span-tree invariant check
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"switchfs"
	"switchfs/internal/chaos"
	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/env"
	"switchfs/internal/trace"
)

// chaosCmd serves `fsctl chaos [name] [-seed N]`: listing and timeline
// pretty-printing of the built-in fault plans (authored against the paper's
// 8-server geometry) and the seeded random plan generator. The -seed flag
// is accepted both before the subcommand and after the plan name.
func chaosCmd(args []string, servers, dataNodes int, seed int64) int {
	var name string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		args = args[1:]
	}
	sub := flag.NewFlagSet("fsctl chaos", flag.ContinueOnError)
	subSeed := sub.Int64("seed", seed, "seed for 'chaos random'")
	if err := sub.Parse(args); err != nil {
		return 2
	}
	if sub.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fsctl: unexpected arguments after chaos plan: %v\n", sub.Args())
		return 2
	}
	seed = *subSeed

	g := chaos.DefaultGeometry()
	if servers > 0 {
		g.Servers = servers
	}
	if dataNodes >= 0 {
		g.DataNodes = dataNodes
	}
	if name == "" {
		fmt.Printf("built-in chaos plans (geometry: %d servers, %d clients, %d switches, %d data nodes r=%d):\n",
			g.Servers, g.Clients, g.Switches, g.DataNodes, g.DataReplication)
		for _, p := range chaos.BuiltinPlans(g) {
			fmt.Printf("  %-16s %s (%d events, horizon %.0fms)\n",
				p.Name, p.Desc, len(p.Events), float64(p.Horizon)/1e6)
		}
		fmt.Printf("  %-16s %s\n", "random", "seeded random fault schedule (use -seed N)")
		fmt.Println("\nrun one with: fsbench -fig chaos [-seed N]; print one with: fsctl chaos <name>")
		return 0
	}
	var plan chaos.Plan
	if name == "random" {
		plan = chaos.RandomPlan(seed, g, 8*env.Millisecond)
	} else {
		var ok bool
		plan, ok = chaos.BuiltinPlan(g, name)
		if !ok {
			fmt.Fprintf(os.Stderr, "fsctl: unknown chaos plan %q (run 'fsctl chaos' to list)\n", name)
			return 2
		}
	}
	fmt.Print(plan.Timeline())
	if err := plan.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "fsctl: %v\n", err)
		return 1
	}
	return 0
}

// traceCmd serves `fsctl trace`: generating a small deterministic trace
// (-run), summarizing a trace file's kept ops by critical path (-summary),
// and checking a file's span-tree invariants (-validate).
func traceCmd(args []string) int {
	sub := flag.NewFlagSet("fsctl trace", flag.ContinueOnError)
	run := sub.Bool("run", false, "trace a small deterministic sim workload (mkdir/create/rename across servers)")
	out := sub.String("out", "", "with -run: write the Chrome trace-event JSON here (default stdout)")
	summary := sub.String("summary", "", "summarize a trace file's kept ops by critical path")
	validate := sub.String("validate", "", "parse a trace file and check span-tree invariants")
	seed := sub.Int64("seed", 1, "with -run: simulation seed")
	topN := sub.Int("top", 10, "with -summary: how many ops to show")
	if err := sub.Parse(args); err != nil {
		return 2
	}
	if sub.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fsctl: unexpected arguments: %v\n", sub.Args())
		return 2
	}
	switch {
	case *run:
		return traceRun(*seed, *out)
	case *summary != "":
		spans, err := loadSpans(*summary)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsctl: %v\n", err)
			return 1
		}
		fmt.Print(trace.Summarize(spans, *topN))
		return 0
	case *validate != "":
		spans, err := loadSpans(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsctl: %v\n", err)
			return 1
		}
		if err := trace.Validate(spans); err != nil {
			fmt.Fprintf(os.Stderr, "fsctl: %s: %v\n", *validate, err)
			return 1
		}
		roots := 0
		for _, s := range spans {
			if s.Parent == 0 {
				roots++
			}
		}
		fmt.Printf("%s: valid (%d spans, %d root ops)\n", *validate, len(spans), roots)
		return 0
	default:
		fmt.Fprintln(os.Stderr, "fsctl trace: need one of -run, -summary <file>, -validate <file>")
		return 2
	}
}

func loadSpans(path string) ([]trace.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ParseJSON(f)
}

// traceRun deploys a small simulated cluster with tracing on and drives a
// namespace workload that crosses servers (mkdirs, creates, and renames, so
// the trace shows switch hops, WAL appends and 2PC rounds), then writes the
// trace. Deterministic: same seed, same bytes.
func traceRun(seed int64, out string) int {
	rec := trace.New(trace.Config{Keep: 16})
	sim := env.NewSim(seed)
	c := cluster.New(sim, cluster.Options{
		Servers:        4,
		CoresPerServer: 2,
		Clients:        2,
		Costs:          env.DefaultCosts(),
		Trace:          rec,
	})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for i := 0; i < 8; i++ {
			dir := fmt.Sprintf("/d%d", i)
			check(cl.Mkdir(p, dir, 0))
			for j := 0; j < 4; j++ {
				check(cl.Create(p, fmt.Sprintf("%s/f%d", dir, j), 0))
			}
		}
		// Cross-directory renames: source and destination parents live on
		// different servers, so these run the 2PC path.
		for i := 0; i < 8; i++ {
			check(cl.Rename(p, fmt.Sprintf("/d%d/f0", i), fmt.Sprintf("/d%d/g0", (i+1)%8)))
		}
	})
	sim.Shutdown()

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsctl: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "fsctl: %v\n", err)
		return 1
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "fsctl: wrote %s (%d traces kept)\n", out, len(rec.KeptTraces()))
		fmt.Fprint(os.Stderr, rec.Summary(5))
	}
	return 0
}

// check panics on unexpected workload errors inside traceRun: the tiny
// namespace is conflict-free, so any failure is a harness bug.
func check(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	servers := flag.Int("servers", 4, "metadata server count")
	dataNodes := flag.Int("datanodes", 0, "data node count (open/read/write)")
	seed := flag.Int64("seed", 1, "seed for 'chaos random'")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fsctl: no commands; try 'mkdir /a' 'create /a/f' 'ls /a', or 'fsctl chaos'")
		os.Exit(2)
	}
	if flag.Arg(0) == "trace" {
		os.Exit(traceCmd(flag.Args()[1:]))
	}
	if flag.Arg(0) == "chaos" {
		// The -servers default (4) belongs to the filesystem-command mode;
		// chaos plans default to the paper's geometry unless the flag was
		// given explicitly.
		chaosServers, chaosData := 0, -1
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "servers":
				chaosServers = *servers
			case "datanodes":
				chaosData = *dataNodes
			}
		})
		os.Exit(chaosCmd(flag.Args()[1:], chaosServers, chaosData, *seed))
	}

	e := switchfs.NewRealEnv()
	fs, err := switchfs.New(e,
		switchfs.WithServers(*servers),
		switchfs.WithDataNodes(*dataNodes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsctl:", err)
		os.Exit(1)
	}

	// An unbound session: each command dispatches on the client's node and
	// blocks this goroutine until it completes.
	s := fs.Session(0)
	for _, raw := range flag.Args() {
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		cmd := fields[0]
		arg := func(i int) string {
			if i < len(fields)-1 {
				return fields[i+1]
			}
			return ""
		}
		var err error
		switch cmd {
		case "mkdir":
			err = s.Mkdir(arg(0), 0)
		case "rmdir":
			err = s.Rmdir(arg(0))
		case "create":
			err = s.Create(arg(0), 0)
		case "rm":
			err = s.Remove(arg(0))
		case "stat":
			var a switchfs.Attr
			a, err = s.Stat(arg(0))
			if err == nil {
				fmt.Printf("%s: %v mode=%o size=%d nlink=%d\n",
					arg(0), a.Type, a.Perm, a.Size, a.Nlink)
			}
		case "statdir":
			var a switchfs.Attr
			a, err = s.StatDir(arg(0))
			if err == nil {
				fmt.Printf("%s: dir mode=%o entries=%d\n", arg(0), a.Perm, a.Size)
			}
		case "ls":
			var es []switchfs.DirEntry
			es, err = s.ReadDir(arg(0))
			for _, e := range es {
				fmt.Printf("%v\t%s\n", e.Type, e.Name)
			}
		case "mv":
			err = s.Rename(arg(0), arg(1))
		case "ln":
			err = s.Link(arg(0), arg(1))
		case "chmod":
			err = s.Chmod(arg(0), 0o600)
		case "open":
			var f *switchfs.File
			f, err = s.Open(arg(0))
			if err == nil {
				fmt.Printf("%s: opened, type=%v\n", f.Name(), f.Attr().Type)
				err = f.Close()
			}
		case "read", "write":
			n := int64(4096)
			if v, perr := strconv.ParseInt(arg(1), 10, 64); perr == nil {
				n = v
			}
			var f *switchfs.File
			f, err = s.Open(arg(0))
			if err == nil {
				if cmd == "read" {
					err = f.Read(n)
				} else {
					err = f.Write(n)
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			fmt.Printf("%s: %v\n", raw, err)
		} else if cmd != "stat" && cmd != "statdir" && cmd != "ls" && cmd != "open" {
			fmt.Printf("%s: ok\n", raw)
		}
	}
}
