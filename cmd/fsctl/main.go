// Command fsctl runs an interactive-style script of filesystem operations
// against an in-process SwitchFS cluster on the real (goroutine) runtime —
// a smoke-testing and exploration tool.
//
// Usage:
//
//	fsctl -servers 8 'mkdir /a' 'create /a/f' 'ls /a' 'statdir /a' 'rm /a/f'
//
// Commands: mkdir, rmdir, create, rm, stat, statdir, ls, mv, ln, chmod,
// open, read, write.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"switchfs"
)

func main() {
	servers := flag.Int("servers", 4, "metadata server count")
	dataNodes := flag.Int("datanodes", 0, "data node count (open/read/write)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fsctl: no commands; try 'mkdir /a' 'create /a/f' 'ls /a'")
		os.Exit(2)
	}

	e := switchfs.NewRealEnv()
	fs, err := switchfs.New(e,
		switchfs.WithServers(*servers),
		switchfs.WithDataNodes(*dataNodes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsctl:", err)
		os.Exit(1)
	}

	// An unbound session: each command dispatches on the client's node and
	// blocks this goroutine until it completes.
	s := fs.Session(0)
	for _, raw := range flag.Args() {
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		cmd := fields[0]
		arg := func(i int) string {
			if i < len(fields)-1 {
				return fields[i+1]
			}
			return ""
		}
		var err error
		switch cmd {
		case "mkdir":
			err = s.Mkdir(arg(0), 0)
		case "rmdir":
			err = s.Rmdir(arg(0))
		case "create":
			err = s.Create(arg(0), 0)
		case "rm":
			err = s.Remove(arg(0))
		case "stat":
			var a switchfs.Attr
			a, err = s.Stat(arg(0))
			if err == nil {
				fmt.Printf("%s: %v mode=%o size=%d nlink=%d\n",
					arg(0), a.Type, a.Perm, a.Size, a.Nlink)
			}
		case "statdir":
			var a switchfs.Attr
			a, err = s.StatDir(arg(0))
			if err == nil {
				fmt.Printf("%s: dir mode=%o entries=%d\n", arg(0), a.Perm, a.Size)
			}
		case "ls":
			var es []switchfs.DirEntry
			es, err = s.ReadDir(arg(0))
			for _, e := range es {
				fmt.Printf("%v\t%s\n", e.Type, e.Name)
			}
		case "mv":
			err = s.Rename(arg(0), arg(1))
		case "ln":
			err = s.Link(arg(0), arg(1))
		case "chmod":
			err = s.Chmod(arg(0), 0o600)
		case "open":
			var f *switchfs.File
			f, err = s.Open(arg(0))
			if err == nil {
				fmt.Printf("%s: opened, type=%v\n", f.Name(), f.Attr().Type)
				err = f.Close()
			}
		case "read", "write":
			n := int64(4096)
			if v, perr := strconv.ParseInt(arg(1), 10, 64); perr == nil {
				n = v
			}
			var f *switchfs.File
			f, err = s.Open(arg(0))
			if err == nil {
				if cmd == "read" {
					err = f.Read(n)
				} else {
					err = f.Write(n)
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		default:
			err = fmt.Errorf("unknown command %q", cmd)
		}
		if err != nil {
			fmt.Printf("%s: %v\n", raw, err)
		} else if cmd != "stat" && cmd != "statdir" && cmd != "ls" && cmd != "open" {
			fmt.Printf("%s: ok\n", raw)
		}
	}
}
