// Command fsctl runs an interactive-style script of filesystem operations
// against an in-process SwitchFS cluster on the real (goroutine) runtime —
// a smoke-testing and exploration tool.
//
// Usage:
//
//	fsctl -servers 8 'mkdir /a' 'create /a/f' 'ls /a' 'statdir /a' 'rm /a/f'
//
// Commands: mkdir, rmdir, create, rm, stat, statdir, ls, mv, ln, chmod.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"switchfs"
)

func main() {
	servers := flag.Int("servers", 4, "metadata server count")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fsctl: no commands; try 'mkdir /a' 'create /a/f' 'ls /a'")
		os.Exit(2)
	}

	e := switchfs.NewRealEnv()
	fs, err := switchfs.New(e, switchfs.Config{Servers: *servers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsctl:", err)
		os.Exit(1)
	}

	done := make(chan struct{})
	fs.RunClient(0, func(p *switchfs.Proc, c *switchfs.Client) {
		defer close(done)
		for _, raw := range flag.Args() {
			fields := strings.Fields(raw)
			if len(fields) == 0 {
				continue
			}
			cmd := fields[0]
			arg := func(i int) string {
				if i < len(fields)-1 {
					return fields[i+1]
				}
				return ""
			}
			var err error
			switch cmd {
			case "mkdir":
				err = c.Mkdir(p, arg(0), 0)
			case "rmdir":
				err = c.Rmdir(p, arg(0))
			case "create":
				err = c.Create(p, arg(0), 0)
			case "rm":
				err = c.Delete(p, arg(0))
			case "stat":
				var a switchfs.Attr
				a, err = c.Stat(p, arg(0))
				if err == nil {
					fmt.Printf("%s: %v mode=%o size=%d nlink=%d\n",
						arg(0), a.Type, a.Perm, a.Size, a.Nlink)
				}
			case "statdir":
				var a switchfs.Attr
				a, err = c.StatDir(p, arg(0))
				if err == nil {
					fmt.Printf("%s: dir mode=%o entries=%d\n", arg(0), a.Perm, a.Size)
				}
			case "ls":
				var es []switchfs.DirEntry
				es, err = c.ReadDir(p, arg(0))
				for _, e := range es {
					fmt.Printf("%v\t%s\n", e.Type, e.Name)
				}
			case "mv":
				err = c.Rename(p, arg(0), arg(1))
			case "ln":
				err = c.Link(p, arg(0), arg(1))
			case "chmod":
				err = c.Chmod(p, arg(0), 0o600)
			default:
				err = fmt.Errorf("unknown command %q", cmd)
			}
			if err != nil {
				fmt.Printf("%s: %v\n", raw, err)
			} else if cmd != "stat" && cmd != "statdir" && cmd != "ls" {
				fmt.Printf("%s: ok\n", raw)
			}
		}
	})
	<-done
}
