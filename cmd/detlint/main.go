// Command detlint runs the determinism and protocol-invariant analyzer
// suite (internal/detlint). It is a unitchecker binary: the go command
// drives it with per-package configuration, so it runs as
//
//	go vet -vettool=$(pwd)/bin/detlint ./...
//
// (which is what `make detlint` and the CI detlint job do), and composes
// with the standard vet analyzers' build cache.
//
// `detlint -report [dir]` instead prints the suppression inventory — every
// //detlint: directive in the tree with its location and written reason —
// and exits non-zero if any directive is malformed or reason-less. The CI
// detlint job runs it (`make detlint-report`) so an unjustified suppression
// cannot land. Any other direct invocation prints unitchecker usage.
package main

import (
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"switchfs/internal/detlint"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-report" {
		root := "."
		if len(os.Args) > 2 {
			root = os.Args[2]
		}
		sups, err := detlint.CollectSuppressions(root)
		if err == nil {
			err = detlint.WriteReport(os.Stdout, sups)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	unitchecker.Main(detlint.Analyzers()...)
}
