// Command detlint runs the determinism and protocol-invariant analyzer
// suite (internal/detlint). It is a unitchecker binary: the go command
// drives it with per-package configuration, so it runs as
//
//	go vet -vettool=$(pwd)/bin/detlint ./...
//
// (which is what `make detlint` and the CI detlint job do), and composes
// with the standard vet analyzers' build cache. Invoking it directly prints
// usage; it is not meant to be run standalone.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"switchfs/internal/detlint"
)

func main() {
	unitchecker.Main(detlint.Analyzers()...)
}
