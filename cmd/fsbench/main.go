// Command fsbench regenerates the tables and figures of the SwitchFS paper's
// evaluation on the deterministic simulator.
//
// Usage:
//
//	fsbench -fig all -scale quick
//	fsbench -fig 12a,13,14 -scale paper
//
// Figure ids: 2a 2b 2c 2d 12a 12b 13 14 overflow 15a 15b 16 17 18a 18b 19
// recovery. Scales: tiny, quick, paper (paper takes minutes per figure).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"switchfs/internal/figures"
)

var registry = []struct {
	id string
	fn func(figures.Scale) figures.Table
}{
	{"2a", figures.Fig2a},
	{"2b", figures.Fig2b},
	{"2c", figures.Fig2c},
	{"2d", figures.Fig2d},
	{"12a", figures.Fig12a},
	{"12b", figures.Fig12b},
	{"13", figures.Fig13},
	{"14", figures.Fig14},
	{"overflow", figures.Overflow},
	{"15a", figures.Fig15a},
	{"15b", figures.Fig15b},
	{"16", figures.Fig16},
	{"17", figures.Fig17},
	{"18a", figures.Fig18a},
	{"18b", figures.Fig18b},
	{"19", figures.Fig19},
	{"recovery", figures.Recovery},
}

func main() {
	figFlag := flag.String("fig", "all", "comma-separated figure ids, or 'all'")
	scaleFlag := flag.String("scale", "quick", "tiny | quick | paper")
	flag.Parse()

	var sc figures.Scale
	switch *scaleFlag {
	case "tiny":
		sc = figures.Scale{Dirs: 16, FilesPerDir: 16, Workers: 32, OpsPerWorker: 20,
			ServerCounts: []int{4, 8}, CoreCounts: []int{2, 4}, BurstSizes: []int{10, 200}}
	case "quick":
		sc = figures.Quick()
	case "paper":
		sc = figures.Paper()
	default:
		fmt.Fprintf(os.Stderr, "fsbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	all := *figFlag == "all"
	for _, id := range strings.Split(*figFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, entry := range registry {
		if !all && !want[entry.id] {
			continue
		}
		start := time.Now()
		tab := entry.fn(sc)
		fmt.Println(tab.String())
		fmt.Printf("(generated in %.1fs wall time)\n\n", time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "fsbench: no figure matched %q\n", *figFlag)
		os.Exit(2)
	}
}
