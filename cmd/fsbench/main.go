// Command fsbench regenerates the tables and figures of the SwitchFS paper's
// evaluation on the deterministic simulator.
//
// Usage:
//
//	fsbench -fig all -scale quick
//	fsbench -fig 12a,13,14 -scale paper
//	fsbench -fig 12a,14 -scale tiny -format json -out BENCH_12a_14.json
//	fsbench -fig 12a,14 -scale tiny -compare BENCH_12a_14.json
//	fsbench -fig 12a -scale tiny -trace trace.json
//	fsbench -validate BENCH_12a_14.json
//
// Figure ids: 2a 2b 2c 2d 12a 12b 13 14 overflow 15a 15b 16 17 18a 18b 19
// recovery chaos rebalance data lincheck scale. Scales: tiny, quick, paper
// (paper takes minutes per figure). The chaos figure runs the fault-plan
// availability harness; -seed selects its random plan (and simulation seeds),
// and any checker violation aborts the run non-zero. The rebalance figure
// drives a skewed workload while the hot-directory balancer and a live
// Reconfigure migrate fingerprint groups; a traffic window with zero
// successful ops during pure migration, a plan that moves nothing, or any
// checker violation aborts it. The data figure benchmarks the
// replicated striped data plane and its crash recovery; a lost acknowledged
// content write aborts it the same way. The lincheck figure sweeps seeds
// through the linearizability + differential-model checker (sequential
// diffs against the baseline, concurrent histories fault-free and under
// fault plans); any divergence or non-linearizable history aborts with a
// minimized counterexample trace. The scale figure sweeps open-loop client
// populations against namespace sizes and reports the engine's memory
// prices (namespace bytes/entry, harness bytes/op and allocs/op).
//
// -format json emits the versioned internal/bench schema (figure cells,
// per-row op/packet counters, wall time); -compare re-runs the selected
// figures and diffs them against a previous JSON result, exiting non-zero
// on per-cell regressions; -validate checks a result file against the
// schema without running anything.
//
// -trace=<path> records causal spans (virtual-time, tail-sampled) across
// every figure run and writes a Chrome trace-event JSON file loadable in
// Perfetto; it also attaches per-figure metrics-registry deltas to the
// result. Both are pure functions of the seed: two same-seed runs write
// byte-identical trace files, and -compare gates on metric drift exactly
// like counter drift. Inspect or validate a trace with `fsctl trace`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"switchfs/internal/bench"
	"switchfs/internal/figures"
	"switchfs/internal/metrics"
	"switchfs/internal/stats"
	"switchfs/internal/trace"
)

var registry = []struct {
	id string
	fn func(figures.Scale) figures.Table
}{
	{"2a", figures.Fig2a},
	{"2b", figures.Fig2b},
	{"2c", figures.Fig2c},
	{"2d", figures.Fig2d},
	{"12a", figures.Fig12a},
	{"12b", figures.Fig12b},
	{"13", figures.Fig13},
	{"14", figures.Fig14},
	{"overflow", figures.Overflow},
	{"15a", figures.Fig15a},
	{"15b", figures.Fig15b},
	{"16", figures.Fig16},
	{"17", figures.Fig17},
	{"18a", figures.Fig18a},
	{"18b", figures.Fig18b},
	{"19", figures.Fig19},
	{"recovery", figures.Recovery},
	{"chaos", figures.FigChaos},
	{"rebalance", figures.FigRebalance},
	{"data", figures.FigData},
	{"lincheck", figures.FigLincheck},
	{"scale", figures.FigScale},
}

func usageRegistry(w *os.File) {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	fmt.Fprintf(w, "known figure ids: %s\n", strings.Join(ids, " "))
}

func main() {
	figFlag := flag.String("fig", "all", "comma-separated figure ids, or 'all'")
	scaleFlag := flag.String("scale", "quick", "tiny | quick | paper")
	formatFlag := flag.String("format", "text", "text | json")
	outFlag := flag.String("out", "", "write results to this file (json format)")
	compareFlag := flag.String("compare", "", "diff results against a previous json result file")
	thresholdFlag := flag.Float64("threshold", 10, "regression threshold in percent for -compare")
	memThresholdFlag := flag.Float64("memthreshold", 25, "regression threshold in percent for the bytes/op and allocs/op figure columns in -compare")
	validateFlag := flag.String("validate", "", "validate a json result file against the schema and exit")
	seedFlag := flag.Int64("seed", 1, "seed for the chaos and data figures' plans and simulations")
	stampFlag := flag.Bool("stamp", true, "record wall-clock metadata (CreatedAt, per-figure WallSeconds); -stamp=false zeroes both so same-seed runs are byte-identical")
	traceFlag := flag.String("trace", "", "record causal spans for every figure run and write a Chrome trace-event JSON file here; also attaches per-figure metrics deltas to the result")
	traceKeepFlag := flag.Int("tracekeep", 32, "tail-sampling budget: slowest root ops kept per run (flagged ops kept in addition)")
	flag.Parse()

	if *validateFlag != "" {
		r, err := bench.Load(*validateFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (schema %d, scale %s, %d figures)\n",
			*validateFlag, r.Schema, r.Scale, len(r.Figures))
		return
	}

	var sc figures.Scale
	switch *scaleFlag {
	case "tiny":
		sc = figures.Scale{Dirs: 16, FilesPerDir: 16, Workers: 32, OpsPerWorker: 20,
			ServerCounts: []int{4, 8}, CoreCounts: []int{2, 4}, BurstSizes: []int{10, 200},
			ScaleClients: []int{100, 1000}, ScaleEntries: []int{10_000, 100_000}}
	case "quick":
		sc = figures.Quick()
	case "paper":
		sc = figures.Paper()
	default:
		fmt.Fprintf(os.Stderr, "fsbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *formatFlag != "text" && *formatFlag != "json" {
		fmt.Fprintf(os.Stderr, "fsbench: unknown format %q\n", *formatFlag)
		os.Exit(2)
	}

	// Resolve the figure selection up front: an unknown id is an error (it
	// used to silently run nothing and exit 0).
	known := map[string]bool{}
	for _, e := range registry {
		known[e.id] = true
	}
	want := map[string]bool{}
	all := *figFlag == "all"
	if !all {
		for _, id := range strings.Split(*figFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "fsbench: unknown figure id %q\n", id)
				usageRegistry(os.Stderr)
				os.Exit(2)
			}
			want[id] = true
		}
		if len(want) == 0 {
			fmt.Fprintf(os.Stderr, "fsbench: no figure selected by -fig %q\n", *figFlag)
			usageRegistry(os.Stderr)
			os.Exit(2)
		}
	}

	// Validate flag combinations and the comparison baseline BEFORE the
	// figures run: a paper-scale generation takes minutes per figure, and a
	// late flag error would throw the whole run away.
	if *outFlag != "" && *formatFlag != "json" {
		fmt.Fprintf(os.Stderr, "fsbench: -out requires -format json\n")
		os.Exit(2)
	}
	var baseline *bench.Result
	if *compareFlag != "" {
		var err error
		baseline, err = bench.Load(*compareFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(1)
		}
		if baseline.Scale != *scaleFlag {
			fmt.Fprintf(os.Stderr,
				"fsbench: baseline %s was recorded at -scale %s, this run is -scale %s — comparing different configurations cell-by-cell is meaningless\n",
				*compareFlag, baseline.Scale, *scaleFlag)
			os.Exit(2)
		}
	}

	result := &bench.Result{
		Schema:    bench.SchemaVersion,
		Tool:      "fsbench",
		Scale:     *scaleFlag,
		GoVersion: runtime.Version(),
	}
	if *stampFlag {
		result.CreatedAt = time.Now().UTC().Format(time.RFC3339) //detlint:ignore dettaint -- provenance stamp, only written when -stamp opts out of byte-identical output
	} else {
		// Byte-identical-output mode: allocator readings (figure-internal
		// memory cells and the per-figure bytes/op columns below) are not
		// bit-deterministic, so they are zeroed along with the wall clock.
		figures.SetMemAccounting(false)
	}
	// Observability: one recorder and registry shared across the selected
	// figures. Both are pure functions of the simulation seeds, so the trace
	// file and the per-figure metrics deltas are byte-identical across
	// same-seed runs (trace-smoke gates this in CI).
	var rec *trace.Recorder
	var reg *metrics.Registry
	if *traceFlag != "" {
		rec = trace.New(trace.Config{Keep: *traceKeepFlag})
		reg = metrics.New()
		figures.SetObservability(rec, reg)
	}
	// Bind flag-dependent figures now that flags are parsed; dispatch stays
	// uniform over the registry.
	figFor := func(id string, fn func(figures.Scale) figures.Table) func(figures.Scale) figures.Table {
		switch id {
		case "chaos":
			return func(sc figures.Scale) figures.Table { return figures.FigChaosSeed(sc, *seedFlag) }
		case "rebalance":
			return func(sc figures.Scale) figures.Table { return figures.FigRebalanceSeed(sc, *seedFlag) }
		case "data":
			return func(sc figures.Scale) figures.Table { return figures.FigDataSeed(sc, *seedFlag) }
		case "lincheck":
			return func(sc figures.Scale) figures.Table { return figures.FigLincheckSeed(sc, *seedFlag) }
		case "scale":
			return func(sc figures.Scale) figures.Table { return figures.FigScaleSeed(sc, *seedFlag) }
		}
		return fn
	}
	for _, entry := range registry {
		if !all && !want[entry.id] {
			continue
		}
		start := time.Now()          //detlint:ignore dettaint -- wall-clock telemetry, zeroed below unless -stamp opts out of byte-identical output
		memBefore := stats.ReadMem() //detlint:ignore dettaint -- allocator telemetry, gated to zero by SetMemAccounting/-stamp in deterministic mode
		metBefore := reg.Snapshot()
		tab := figFor(entry.id, entry.fn)(sc)
		memBytes, memAllocs := stats.ReadMem().AllocDelta(memBefore) //detlint:ignore dettaint -- allocator telemetry, gated to zero by SetMemAccounting/-stamp in deterministic mode
		wall := time.Since(start).Seconds()                          //detlint:ignore dettaint -- wall-clock telemetry, zeroed below unless -stamp opts out of byte-identical output
		stampedWall := wall
		if !*stampFlag {
			stampedWall = 0
		}
		if *formatFlag == "text" && *compareFlag == "" {
			fmt.Println(tab.String())
			fmt.Printf("(generated in %.1fs wall time)\n\n", wall)
		}
		fig := bench.Figure{
			ID:          tab.ID,
			Title:       tab.Title,
			Header:      tab.Header,
			Rows:        tab.Rows,
			Counters:    tab.Meta,
			WallSeconds: stampedWall,
			Metrics:     metrics.Delta(metBefore, reg.Snapshot()),
		}
		// Figure-level allocator cost, normalized by the figure's total op
		// count — the CI allocation gate. Zeroed alongside the wall clock so
		// -stamp=false output stays byte-identical across same-seed runs.
		if *stampFlag {
			var ops uint64
			for _, c := range tab.Meta {
				ops += c.Ops
			}
			fig.MemBytesPerOp = stats.PerOp(memBytes, ops)
			fig.MemAllocsPerOp = stats.PerOp(memAllocs, ops)
		}
		result.Figures = append(result.Figures, fig)
	}

	if rec != nil {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "fsbench: wrote trace %s (%d traces kept)\n",
			*traceFlag, len(rec.KeptTraces()))
		fmt.Fprint(os.Stderr, rec.Summary(5))
	}

	if *outFlag != "" {
		// Write the fresh result even when comparing, so refreshing a
		// baseline and gating against the old one are one run.
		if err := bench.Write(*outFlag, result); err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fsbench: wrote %s (%d figures)\n", *outFlag, len(result.Figures))
	}

	if baseline != nil {
		cmp := bench.Compare(baseline, result, bench.CompareOpts{
			ThresholdPct:    *thresholdFlag,
			CheckCounters:   true,
			MemThresholdPct: *memThresholdFlag,
		})
		report(cmp, *thresholdFlag)
		// Counter drift is a determinism/configuration failure, not noise:
		// it must gate exactly like a regression. Shape changes (figures or
		// rows present in only one run) gate the same way — silently skipping
		// them would let a baseline refresh hide a dropped row.
		if len(cmp.Regressions()) > 0 || cmp.ShapeChanges() || len(cmp.Drift) > 0 ||
			len(cmp.MetricsDrift) > 0 {
			os.Exit(1)
		}
		return
	}

	if *formatFlag == "json" && *outFlag == "" {
		data, err := bench.Marshal(result)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
	}
}

// report prints a comparison, regressions first.
func report(cmp *bench.Comparison, threshold float64) {
	for _, id := range cmp.MissingFigures {
		fmt.Printf("MISSING  %s: figure absent from this run\n", id)
	}
	for _, id := range cmp.AddedFigures {
		fmt.Printf("ADDED    %s: figure absent from the baseline\n", id)
	}
	for _, rc := range cmp.RowsRemoved {
		fmt.Printf("ROW-GONE %s[%s]: row %d present only in the baseline\n", rc.Figure, rc.Label, rc.Row)
	}
	for _, rc := range cmp.RowsAdded {
		fmt.Printf("ROW-NEW  %s[%s]: row %d absent from the baseline\n", rc.Figure, rc.Label, rc.Row)
	}
	for _, d := range cmp.Drift {
		fmt.Printf("DRIFT    %s[%s]: counters changed: %s -> %s (non-determinism or config change)\n",
			d.Figure, d.Label, d.Old, d.New)
	}
	for _, d := range cmp.MetricsDrift {
		fmt.Printf("MDRIFT   %s{%s}: metric changed: %d -> %d (non-determinism or config change)\n",
			d.Figure, d.Key, d.Old, d.New)
	}
	regs := 0
	for _, d := range cmp.Deltas {
		if d.Regression {
			fmt.Printf("REGRESS  %s[%s]: %.1f -> %.1f (%+.1f%%, threshold %.0f%%)\n",
				d.Figure, d.Label, d.Old, d.New, d.Pct, threshold)
			regs++
		}
	}
	fmt.Printf("compared: %d cells changed, %d regressions, %d figures missing/added, %d rows removed/added, %d counter drifts, %d metric drifts\n",
		len(cmp.Deltas), regs, len(cmp.MissingFigures)+len(cmp.AddedFigures),
		len(cmp.RowsRemoved)+len(cmp.RowsAdded), len(cmp.Drift), len(cmp.MetricsDrift))
}
