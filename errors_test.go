package switchfs

import (
	"errors"
	"strings"
	"testing"
)

// TestPathErrorWrapping drives real failures through the Session API and
// asserts every error arrives as a *PathError (or *LinkError for two-path
// operations) wrapping the right sentinel — surviving errors.Is and
// errors.As exactly like package os errors.
func TestPathErrorWrapping(t *testing.T) {
	e := NewSimEnv(7)
	defer e.Shutdown()
	fs, err := New(e, WithServers(4), WithClients(1))
	if err != nil {
		t.Fatal(err)
	}
	fs.RunSession(0, func(s *Session) {
		// Not Fatalf: this body runs on a simulator worker goroutine, where
		// FailNow's Goexit would strand the scheduler token and hang Run.
		if err := s.Mkdir("/d", 0); err != nil {
			t.Errorf("setup mkdir: %v", err)
			return
		}
		if err := s.Create("/d/f", 0); err != nil {
			t.Errorf("setup create: %v", err)
			return
		}

		cases := []struct {
			name     string
			op       string // expected PathError.Op / LinkError.Op
			sentinel error
			twoPath  bool
			call     func() error
		}{
			{"stat missing", "stat", ErrNotExist, false,
				func() error { _, err := s.Stat("/d/none"); return err }},
			{"create existing", "create", ErrExist, false,
				func() error { return s.Create("/d/f", 0) }},
			{"mkdir existing", "mkdir", ErrExist, false,
				func() error { return s.Mkdir("/d", 0) }},
			{"rmdir non-empty", "rmdir", ErrNotEmpty, false,
				func() error { return s.Rmdir("/d") }},
			{"rmdir missing", "rmdir", ErrNotExist, false,
				func() error { return s.Rmdir("/nope") }},
			{"remove missing", "remove", ErrNotExist, false,
				func() error { return s.Remove("/d/none") }},
			{"readdir missing", "readdir", ErrNotExist, false,
				func() error { _, err := s.ReadDir("/gone"); return err }},
			{"open missing", "open", ErrNotExist, false,
				func() error { _, err := s.Open("/d/none"); return err }},
			{"rename missing source", "rename", ErrNotExist, true,
				func() error { return s.Rename("/d/none", "/d/elsewhere") }},
			{"link missing source", "link", ErrNotExist, true,
				func() error { return s.Link("/d/none", "/d/l") }},
		}
		for _, tc := range cases {
			err := tc.call()
			if err == nil {
				t.Errorf("%s: expected an error", tc.name)
				continue
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("%s: errors.Is(%v, %v) = false", tc.name, err, tc.sentinel)
			}
			if tc.twoPath {
				var le *LinkError
				if !errors.As(err, &le) {
					t.Errorf("%s: not a *LinkError: %T", tc.name, err)
					continue
				}
				if le.Op != tc.op || le.Old == "" || le.New == "" {
					t.Errorf("%s: LinkError fields = %+v", tc.name, le)
				}
				if !errors.Is(le.Err, tc.sentinel) {
					t.Errorf("%s: unwrapped Err %v is not %v", tc.name, le.Err, tc.sentinel)
				}
				var pe *PathError
				if errors.As(err, &pe) {
					t.Errorf("%s: two-path error matched *PathError too", tc.name)
				}
			} else {
				var pe *PathError
				if !errors.As(err, &pe) {
					t.Errorf("%s: not a *PathError: %T", tc.name, err)
					continue
				}
				if pe.Op != tc.op || pe.Path == "" {
					t.Errorf("%s: PathError fields = %+v", tc.name, pe)
				}
				if !errors.Is(pe.Err, tc.sentinel) {
					t.Errorf("%s: unwrapped Err %v is not %v", tc.name, pe.Err, tc.sentinel)
				}
			}
			if !strings.Contains(err.Error(), tc.op) {
				t.Errorf("%s: Error() = %q, missing op %q", tc.name, err.Error(), tc.op)
			}
		}

		// Success paths must return untyped nil, not a typed nil wrapper.
		if err := s.Chmod("/d/f", 0o600); err != nil {
			t.Errorf("chmod success returned %v", err)
		}
	})
}

// TestSentinelAliases pins the public sentinels to internal/core's values:
// a *PathError built by the session machinery must match the public aliases
// (callers never import internal/core).
func TestSentinelAliases(t *testing.T) {
	pairs := []struct {
		name string
		err  error
	}{
		{"ErrExist", ErrExist},
		{"ErrNotExist", ErrNotExist},
		{"ErrNotEmpty", ErrNotEmpty},
		{"ErrNotDir", ErrNotDir},
		{"ErrIsDir", ErrIsDir},
		{"ErrInvalid", ErrInvalid},
		{"ErrTimeout", ErrTimeout},
		{"ErrClosed", ErrClosed},
	}
	for _, p := range pairs {
		wrapped := &PathError{Op: "op", Path: "/x", Err: p.err}
		if !errors.Is(wrapped, p.err) {
			t.Errorf("%s does not survive PathError wrapping", p.name)
		}
		linked := &LinkError{Op: "op", Old: "/a", New: "/b", Err: p.err}
		if !errors.Is(linked, p.err) {
			t.Errorf("%s does not survive LinkError wrapping", p.name)
		}
	}
}
