package switchfs

import (
	"fmt"
	"testing"

	"switchfs/internal/figures"
)

// One benchmark per table/figure of the paper's evaluation. Each iteration
// regenerates the figure at reduced scale on the deterministic simulator and
// prints the resulting table (use -v or read the log). cmd/fsbench runs the
// same harnesses at paper scale.
//
//	go test -bench=. -benchmem
//	go run ./cmd/fsbench -fig all -scale paper

// benchScale trades fidelity for benchmark runtime.
func benchScale() figures.Scale {
	return figures.Scale{
		Dirs:         32,
		FilesPerDir:  32,
		Workers:      48,
		OpsPerWorker: 25,
		ServerCounts: []int{4, 8, 16},
		CoreCounts:   []int{2, 4, 6},
		BurstSizes:   []int{10, 100, 1000},
	}
}

func benchFigure(b *testing.B, fn func(figures.Scale) figures.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab := fn(benchScale())
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig2a — motivation: stat scaling, shared directory (Fig. 2a).
func BenchmarkFig2a(b *testing.B) { benchFigure(b, figures.Fig2a) }

// BenchmarkFig2b — motivation: stat/create latency breakdown (Fig. 2b).
func BenchmarkFig2b(b *testing.B) { benchFigure(b, figures.Fig2b) }

// BenchmarkFig2c — motivation: create vs servers under contention (Fig. 2c).
func BenchmarkFig2c(b *testing.B) { benchFigure(b, figures.Fig2c) }

// BenchmarkFig2d — motivation: create vs cores under contention (Fig. 2d).
func BenchmarkFig2d(b *testing.B) { benchFigure(b, figures.Fig2d) }

// BenchmarkFig12a — single large directory throughput matrix (Fig. 12a).
func BenchmarkFig12a(b *testing.B) { benchFigure(b, figures.Fig12a) }

// BenchmarkFig12b — multiple directories throughput matrix (Fig. 12b).
func BenchmarkFig12b(b *testing.B) { benchFigure(b, figures.Fig12b) }

// BenchmarkFig13 — single-client operation latency (Fig. 13).
func BenchmarkFig13(b *testing.B) { benchFigure(b, figures.Fig13) }

// BenchmarkFig14 — contribution breakdown Baseline/+Async/+Compaction
// (Fig. 14).
func BenchmarkFig14(b *testing.B) { benchFigure(b, figures.Fig14) }

// BenchmarkOverflow — dirty-set overflow fallback (§7.3.2).
func BenchmarkOverflow(b *testing.B) { benchFigure(b, figures.Overflow) }

// BenchmarkFig15a — switch vs dedicated-server tracker latency (Fig. 15a).
func BenchmarkFig15a(b *testing.B) { benchFigure(b, figures.Fig15a) }

// BenchmarkFig15b — switch vs dedicated-server tracker throughput ceiling
// (Fig. 15b).
func BenchmarkFig15b(b *testing.B) { benchFigure(b, figures.Fig15b) }

// BenchmarkFig16 — owner-server tracking latency distribution (Fig. 16).
func BenchmarkFig16(b *testing.B) { benchFigure(b, figures.Fig16) }

// BenchmarkFig17 — burst tolerance (Fig. 17).
func BenchmarkFig17(b *testing.B) { benchFigure(b, figures.Fig17) }

// BenchmarkFig18a — aggregation overhead vs preceding creates (Fig. 18a).
func BenchmarkFig18a(b *testing.B) { benchFigure(b, figures.Fig18a) }

// BenchmarkFig18b — aggregation overhead vs servers (Fig. 18b).
func BenchmarkFig18b(b *testing.B) { benchFigure(b, figures.Fig18b) }

// BenchmarkFig19 — end-to-end real-world workloads (Fig. 19 / Tab. 5).
func BenchmarkFig19(b *testing.B) { benchFigure(b, figures.Fig19) }

// BenchmarkRecovery — crash recovery time (§7.7).
func BenchmarkRecovery(b *testing.B) { benchFigure(b, figures.Recovery) }

// BenchmarkFigData — striped replicated data plane + recovery (§7.6).
func BenchmarkFigData(b *testing.B) { benchFigure(b, figures.FigData) }

// BenchmarkCreateOps measures simulator efficiency: wall time per simulated
// create on an 8-server cluster (not a paper figure; a harness health
// metric).
func BenchmarkCreateOps(b *testing.B) {
	e := NewSimEnv(1)
	fs, err := New(e, WithServers(8), WithClients(1))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown()
	fs.RunSession(0, func(s *Session) {
		if err := s.Mkdir("/bench", 0); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	n := b.N
	fs.RunSession(0, func(s *Session) {
		for i := 0; i < n; i++ {
			if err := s.Create(fmt.Sprintf("/bench/f%d", i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
