module switchfs

go 1.22.0

// golang.org/x/tools is vendored (vendor/) from the Go distribution's
// cmd/vendor copy: the build must work offline, so the go/analysis subset
// detlint needs is committed rather than fetched.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
