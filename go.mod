module switchfs

go 1.22
