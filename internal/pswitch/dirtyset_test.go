package pswitch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"switchfs/internal/core"
	"switchfs/internal/env"
)

func fp(i uint64) core.Fingerprint {
	return core.FingerprintOf(core.DirID{i, i * 7, i ^ 42, 1}, "d")
}

func TestInsertQueryRemove(t *testing.T) {
	d := NewDirtySet(4, 8)
	f := fp(1)
	if d.Query(f) {
		t.Fatal("empty set claims membership")
	}
	if !d.Insert(f) {
		t.Fatal("insert failed on empty set")
	}
	if !d.Query(f) {
		t.Fatal("query missed inserted fingerprint")
	}
	if d.Occupied() != 1 {
		t.Fatalf("occupied=%d", d.Occupied())
	}
	if !d.Remove(f, 1, 1) {
		t.Fatal("remove missed")
	}
	if d.Query(f) || d.Occupied() != 0 {
		t.Fatal("remove left state behind")
	}
}

func TestInsertIdempotent(t *testing.T) {
	d := NewDirtySet(4, 8)
	f := fp(2)
	for i := 0; i < 5; i++ {
		if !d.Insert(f) {
			t.Fatal("repeated insert failed")
		}
	}
	if d.Occupied() != 1 {
		t.Fatalf("occupied=%d after duplicate inserts, want 1 (Fig. 10 dedup)", d.Occupied())
	}
	d.Remove(f, 1, 1)
	if d.Query(f) {
		t.Fatal("one remove must clear all duplicates")
	}
}

func TestSetAssociativeOverflow(t *testing.T) {
	// Force many distinct tags into one set: capacity is the stage count.
	const stages = 3
	d := NewDirtySet(stages, 4)
	// Find fingerprints sharing a set index with distinct tags.
	var same []core.Fingerprint
	idx := uint32(0)
	for i := uint64(0); len(same) < stages+1; i++ {
		f := fp(i)
		if len(same) == 0 {
			idx = f.Index(4)
			same = append(same, f)
			continue
		}
		if f.Index(4) == idx && f.Tag(4) != same[0].Tag(4) {
			dup := false
			for _, g := range same {
				if g.Tag(4) == f.Tag(4) {
					dup = true
				}
			}
			if !dup {
				same = append(same, f)
			}
		}
	}
	for i := 0; i < stages; i++ {
		if !d.Insert(same[i]) {
			t.Fatalf("insert %d failed below capacity", i)
		}
	}
	if d.Insert(same[stages]) {
		t.Fatal("insert beyond set capacity succeeded")
	}
	// Every resident fingerprint still answers queries.
	for i := 0; i < stages; i++ {
		if !d.Query(same[i]) {
			t.Fatalf("resident fingerprint %d lost", i)
		}
	}
}

func TestRemoveSequenceGuard(t *testing.T) {
	// §5.4.1: a duplicate (stale) remove must not erase fingerprints
	// inserted after the aggregation completed.
	d := NewDirtySet(4, 8)
	f := fp(3)
	d.Insert(f)
	if !d.Remove(f, 42, 7) {
		t.Fatal("first remove rejected")
	}
	d.Insert(f) // a subsequent operation re-dirties the directory
	if d.Remove(f, 42, 7) {
		t.Fatal("stale duplicate remove was processed")
	}
	if !d.Query(f) {
		t.Fatal("stale remove erased a fresh insert")
	}
	if !d.Remove(f, 42, 8) {
		t.Fatal("fresh remove rejected")
	}
	// Independent origins have independent sequence spaces.
	d.Insert(f)
	if !d.Remove(f, 43, 1) {
		t.Fatal("another origin's remove rejected")
	}
}

func TestForceOverflow(t *testing.T) {
	d := NewDirtySet(4, 8)
	d.ForceOverflow = true
	if d.Insert(fp(5)) {
		t.Fatal("forced overflow still inserted")
	}
}

func TestReset(t *testing.T) {
	d := NewDirtySet(4, 8)
	for i := uint64(0); i < 50; i++ {
		d.Insert(fp(i))
	}
	d.Remove(fp(1), 9, 5)
	d.Reset()
	if d.Occupied() != 0 {
		t.Fatalf("occupied=%d after reset", d.Occupied())
	}
	// Sequence state is also reset: an old sequence number works again.
	d.Insert(fp(1))
	if !d.Remove(fp(1), 9, 1) {
		t.Fatal("sequence state survived reset")
	}
}

// TestMembershipModel drives random operations against a reference set.
// Collisions fold distinct fingerprints together, so the model tracks the
// (index, tag) pair — exactly the switch's notion of identity.
func TestMembershipModel(t *testing.T) {
	d := NewDirtySet(DefaultStages, 10)
	type slot struct{ idx, tag uint32 }
	ref := map[slot]bool{}
	rnd := rand.New(rand.NewSource(4))
	seq := uint64(0)
	for i := 0; i < 20000; i++ {
		f := fp(uint64(rnd.Intn(3000)))
		s := slot{f.Index(10), f.Tag(10)}
		switch rnd.Intn(3) {
		case 0:
			if d.Insert(f) {
				ref[s] = true
			}
		case 1:
			seq++
			d.Remove(f, 1, seq)
			delete(ref, s)
		case 2:
			if got := d.Query(f); got != ref[s] {
				t.Fatalf("op %d: Query=%v, model=%v", i, got, ref[s])
			}
		}
	}
}

// Property: inserting any set of fingerprints below per-set capacity keeps
// them all queryable.
func TestInsertQueryProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		d := NewDirtySet(DefaultStages, 12)
		for _, s := range seeds {
			d.Insert(fp(uint64(s)))
		}
		for _, s := range seeds {
			if !d.Query(fp(uint64(s))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityMatchesPaper(t *testing.T) {
	d := NewDirtySet(0, 0) // defaults
	if d.Capacity() != 1310720 {
		t.Fatalf("capacity=%d, want 1,310,720 (§6.3)", d.Capacity())
	}
}

func TestSwitchPacketRouting(t *testing.T) {
	// Integration of the switch model with the env: see cluster tests for
	// full-protocol coverage; here the multi-pipe partitioning is checked.
	sw := New(1, Config{Stages: 4, IndexBits: 8, Pipes: 4})
	seen := map[int]bool{}
	for i := uint64(0); i < 64; i++ {
		f := fp(i)
		pipe := int(uint64(f)>>(core.FingerprintBits-8)) % 4
		seen[pipe] = true
		sw.pipeOf(f).Insert(f)
	}
	if len(seen) < 2 {
		t.Fatal("fingerprints did not spread over pipes")
	}
	if sw.Occupied() != 64 {
		t.Fatalf("occupied=%d, want 64", sw.Occupied())
	}
	sw.Reset()
	if sw.Occupied() != 0 {
		t.Fatal("reset missed a pipe")
	}
}

func TestStatsCounters(t *testing.T) {
	var st Stats
	st.Queries.Add(2)
	st.Inserts.Add(1)
	if st.Queries.Load() != 2 || st.Inserts.Load() != 1 {
		t.Fatal("counter bookkeeping broken")
	}
	_ = env.NodeID(0)
	_ = fmt.Sprint()
}
