// Package pswitch models the programmable switch (paper §6): the parser,
// the fingerprint-prefix router, the in-network dirty set, and the address
// rewriter for overflow fallback. The model reproduces the Tofino pipeline
// semantics the correctness argument relies on — per-stage atomicity and
// ordered execution, hence idempotent and per-fingerprint linearizable
// dirty-set operations (§6.3 "Properties").
package pswitch

import (
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
)

// Default dimensions of the dirty set (§6.3): ten stages of 2^17 32-bit
// registers, 1,310,720 fingerprints, 5 MiB of register memory.
const (
	DefaultStages    = 10
	DefaultIndexBits = 17
)

// DirtySet is the multi-slot hash table of directory fingerprints. Registers
// at the same index across stages form a set (a "way" per stage, like a
// set-associative cache). The zero register value means empty.
type DirtySet struct {
	stages    int
	indexBits uint
	regs      [][]uint32   // [stage][index]
	locks     []sync.Mutex //detlint:ignore rawgo -- models the data-plane register shards; leaf sections that never park (the P4 pipeline has no blocking)

	mu        sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the sequence table; leaf section, never held across a park
	removeSeq map[env.NodeID]uint64
	occupied  int
	// ForceOverflow makes every insert fail — the §7.3.2 experiment.
	ForceOverflow bool
}

// lockShards bounds the per-set lock array; sets map onto shards.
const lockShards = 1024

// NewDirtySet builds a dirty set with the given geometry.
func NewDirtySet(stages int, indexBits uint) *DirtySet {
	if stages <= 0 {
		stages = DefaultStages
	}
	if indexBits == 0 || indexBits > 24 {
		indexBits = DefaultIndexBits
	}
	d := &DirtySet{
		stages:    stages,
		indexBits: indexBits,
		regs:      make([][]uint32, stages),
		locks:     make([]sync.Mutex, lockShards), //detlint:ignore rawgo -- allocation of the register-shard guards suppressed above
		removeSeq: make(map[env.NodeID]uint64),
	}
	for i := range d.regs {
		d.regs[i] = make([]uint32, 1<<indexBits)
	}
	return d
}

// Capacity returns the total number of register slots.
func (d *DirtySet) Capacity() int { return d.stages * (1 << d.indexBits) }

// Occupied returns the number of live fingerprints.
func (d *DirtySet) Occupied() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.occupied
}

//detlint:ignore rawgo -- hands back the register-shard guard suppressed above
func (d *DirtySet) set(fp core.Fingerprint) (idx uint32, tag uint32, lock *sync.Mutex) {
	idx = fp.Index(d.indexBits)
	tag = fp.Tag(d.indexBits)
	lock = &d.locks[idx%lockShards]
	return
}

// Query reports whether fp is in the set: the OR of per-stage register
// queries (§6.3).
func (d *DirtySet) Query(fp core.Fingerprint) bool {
	idx, tag, l := d.set(fp)
	l.Lock()
	defer l.Unlock()
	for s := 0; s < d.stages; s++ {
		if d.regs[s][idx] == tag {
			return true
		}
	}
	return false
}

// Insert adds fp. Stages perform conditional inserts until one succeeds (the
// register is empty or already holds the tag); the remaining stages perform
// conditional removes so no duplicate tags survive (Fig. 10). It returns
// false on overflow: every stage of the set holds a different tag.
func (d *DirtySet) Insert(fp core.Fingerprint) bool {
	if d.ForceOverflow {
		return false
	}
	idx, tag, l := d.set(fp)
	l.Lock()
	defer l.Unlock()
	inserted := false
	fresh := false
	for s := 0; s < d.stages; s++ {
		r := &d.regs[s][idx]
		if !inserted {
			// conditional insert: succeeds when empty or equal.
			if *r == 0 {
				*r = tag
				inserted = true
				fresh = true
			} else if *r == tag {
				inserted = true
			}
		} else if *r == tag {
			// conditional remove of duplicates in later stages.
			*r = 0
			d.mu.Lock()
			d.occupied--
			d.mu.Unlock()
		}
	}
	if fresh {
		d.mu.Lock()
		d.occupied++
		d.mu.Unlock()
	}
	return inserted
}

// Remove deletes fp if the remove's sequence number exceeds every previously
// processed remove from the same origin — the duplicate-remove guard of
// §5.4.1. A zero origin bypasses the guard (administrative resets).
func (d *DirtySet) Remove(fp core.Fingerprint, origin env.NodeID, seq uint64) bool {
	if origin != 0 {
		d.mu.Lock()
		if seq <= d.removeSeq[origin] {
			d.mu.Unlock()
			return false
		}
		d.removeSeq[origin] = seq
		d.mu.Unlock()
	}
	idx, tag, l := d.set(fp)
	l.Lock()
	defer l.Unlock()
	removed := false
	for s := 0; s < d.stages; s++ {
		if d.regs[s][idx] == tag {
			d.regs[s][idx] = 0
			removed = true
			d.mu.Lock()
			d.occupied--
			d.mu.Unlock()
		}
	}
	return removed
}

// Reset clears all registers and sequence state (switch crash/reboot,
// §5.4.2).
func (d *DirtySet) Reset() {
	for i := range d.locks {
		d.locks[i].Lock()
	}
	d.mu.Lock()
	for s := range d.regs {
		clear(d.regs[s])
	}
	d.occupied = 0
	d.removeSeq = make(map[env.NodeID]uint64)
	d.mu.Unlock()
	for i := range d.locks {
		d.locks[i].Unlock()
	}
}
