package pswitch

import (
	"sync/atomic"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/trace"
	"switchfs/internal/wire"
)

// Config parameterizes a switch instance.
type Config struct {
	// Stages and IndexBits set the dirty-set geometry (§6.3).
	Stages    int
	IndexBits uint
	// Pipes is the number of egress pipes; pipes share nothing and each
	// owns the fingerprints of one prefix range (§6.2). Packets whose
	// fingerprint lives on a different pipe than their ingress port are
	// mirrored, paying MirrorDelay.
	Pipes       int
	MirrorDelay env.Duration
	// PipeDelay is the pipeline traversal time for packets carrying a
	// dirty-set operation.
	PipeDelay env.Duration
	// Servers is the multicast domain: every metadata server's address.
	Servers []env.NodeID
	// Trace records pipeline-traversal spans (nil: tracing off).
	Trace *trace.Recorder
}

// Stats counts data-plane activity.
type Stats struct {
	Queries   atomic.Uint64
	Inserts   atomic.Uint64
	Overflows atomic.Uint64
	Removes   atomic.Uint64
	StaleRem  atomic.Uint64
	Forwarded atomic.Uint64
}

// Switch is the programmable-switch model: it parses dirty-set headers,
// executes the register operations, and routes/multicasts/rewrites packets
// (Fig. 8). Attach its Handler to an env node.
type Switch struct {
	ID    env.NodeID
	cfg   Config
	pipes []*DirtySet
	Stats Stats
	// extraDelay is added to every dirty-set pipeline traversal — the gray
	// failure of a congested or degraded switch pipe (fault injection).
	extraDelay env.Duration
}

// New builds a switch.
func New(id env.NodeID, cfg Config) *Switch {
	if cfg.Pipes <= 0 {
		cfg.Pipes = 1
	}
	s := &Switch{ID: id, cfg: cfg}
	for i := 0; i < cfg.Pipes; i++ {
		s.pipes = append(s.pipes, NewDirtySet(cfg.Stages, cfg.IndexBits))
	}
	return s
}

// SetServers replaces the multicast domain (cluster reconfiguration; the
// control plane updates the multicast group, no data-plane change — §5.5).
func (s *Switch) SetServers(ids []env.NodeID) {
	s.cfg.Servers = append([]env.NodeID(nil), ids...)
}

// SetExtraDelay adds d to every dirty-set pipeline traversal (gray failure:
// a slowed pipe). Zero restores nominal speed.
func (s *Switch) SetExtraDelay(d env.Duration) { s.extraDelay = d }

// ExtraDelay reports the current gray-failure slowdown.
func (s *Switch) ExtraDelay() env.Duration { return s.extraDelay }

// ForceOverflow makes every insert fail on all pipes (§7.3.2).
func (s *Switch) ForceOverflow(v bool) {
	for _, p := range s.pipes {
		p.ForceOverflow = v
	}
}

// Reset clears all dirty-set state (switch reboot, §5.4.2).
func (s *Switch) Reset() {
	for _, p := range s.pipes {
		p.Reset()
	}
}

// Occupied sums live fingerprints across pipes.
func (s *Switch) Occupied() int {
	n := 0
	for _, p := range s.pipes {
		n += p.Occupied()
	}
	return n
}

// pipeOf selects the egress pipe owning fp (prefix partitioning).
func (s *Switch) pipeOf(fp core.Fingerprint) *DirtySet {
	if len(s.pipes) == 1 {
		return s.pipes[0]
	}
	i := int(uint64(fp)>>(core.FingerprintBits-8)) % len(s.pipes)
	return s.pipes[i]
}

// Handler processes one packet; register it as the switch node's env
// handler. The pipeline delay models the ASIC traversal; the switch never
// queues (line rate, §2.2) — that is precisely its advantage over the
// dedicated-server tracker of §7.3.3.
func (s *Switch) Handler(p *env.Proc, from env.NodeID, msg any) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		return // not a SwitchFS packet; a real switch would L2-forward it
	}
	if pkt.DS == nil || pkt.DS.Op == wire.DSNone {
		// Regular packet: route by destination MAC. The packet may be
		// retransmitted by its sender, so it is forwarded untouched — no
		// span context is grafted on.
		s.Stats.Forwarded.Add(1)
		p.Send(pkt.Dst, pkt)
		return
	}
	sp := s.cfg.Trace.StartSpan(p, pkt.Trace, dsSpanName(pkt.DS.Op), "switch")
	defer sp.End()
	p.Sleep(s.cfg.PipeDelay + s.extraDelay)
	ds := s.pipeOf(pkt.DS.FP)
	if len(s.pipes) > 1 && s.cfg.MirrorDelay > 0 {
		// Cross-pipe access mirrors the packet to the owning pipe (§6.2).
		if int(from)%len(s.pipes) != int(uint64(pkt.DS.FP)>>(core.FingerprintBits-8))%len(s.pipes) {
			p.Sleep(s.cfg.MirrorDelay)
		}
	}
	switch pkt.DS.Op {
	case wire.DSQuery:
		s.Stats.Queries.Add(1)
		ret := ds.Query(pkt.DS.FP)
		// Forward a copy: the RET field is written into the packet, and the
		// original may be retransmitted by its sender. Packet and header
		// are carved from one allocation — this runs once per directory
		// read on the hot path.
		out := &queryReply{pkt: *pkt, hdr: *pkt.DS}
		out.hdr.Ret = ret
		out.pkt.DS = &out.hdr
		out.pkt.Trace = sp.Ctx()
		p.Send(pkt.Dst, &out.pkt)

	case wire.DSInsert:
		s.Stats.Inserts.Add(1)
		cn, _ := pkt.Body.(*wire.CommitNotice)
		if ds.Insert(pkt.DS.FP) {
			// Success: multicast completion to the client and unlock signal
			// to the origin server (Fig. 4, 7a/7b).
			if cn != nil {
				p.Send(cn.Client, &wire.Packet{Dst: cn.Client, Origin: s.ID,
					Trace: sp.Ctx(), Body: cn.Resp})
				p.Send(pkt.Origin, &wire.Packet{Dst: pkt.Origin, Origin: s.ID,
					Trace: sp.Ctx(), Body: &wire.CommitAck{CommitID: cn.CommitID}})
			}
			return
		}
		// Overflow: the address rewriter sends the packet to the alternative
		// destination — the parent directory's owner — for synchronous
		// fallback (§6.2 "Address rewriter").
		s.Stats.Overflows.Add(1)
		out := *pkt
		out.Dst = pkt.DS.AltDst
		out.Trace = sp.Ctx()
		p.Send(out.Dst, &out)

	case wire.DSRemove:
		s.Stats.Removes.Add(1)
		if !ds.Remove(pkt.DS.FP, pkt.Origin, pkt.DS.Seq) {
			s.Stales(pkt)
		}
		// Multicast the aggregation fetch to every other metadata server
		// (§5.2.2 step 5). Stale removes still multicast: the owner is
		// waiting for replies, and re-fetching is idempotent.
		for _, srv := range s.cfg.Servers {
			if srv == pkt.Origin {
				continue
			}
			p.Send(srv, &wire.Packet{Dst: srv, Origin: pkt.Origin,
				Trace: sp.Ctx(), Body: pkt.Body})
		}
	}
}

// dsSpanName names the pipeline span for a dirty-set opcode.
func dsSpanName(op wire.DSOp) string {
	switch op {
	case wire.DSQuery:
		return "ds:query"
	case wire.DSInsert:
		return "ds:insert"
	case wire.DSRemove:
		return "ds:remove"
	}
	return "ds:other"
}

// queryReply bundles a forwarded query packet with its rewritten dirty-set
// header so the copy costs one allocation, not two.
type queryReply struct {
	pkt wire.Packet
	hdr wire.DSHeader
}

// Stales counts removes rejected by the sequence guard.
func (s *Switch) Stales(*wire.Packet) { s.Stats.StaleRem.Add(1) }
