package ring

import (
	"testing"

	"switchfs/internal/core"
	"switchfs/internal/env"
)

func nodeOf(slot uint32) env.NodeID { return 100 + env.NodeID(slot) }

func fpOf(i int) core.Fingerprint {
	return core.FingerprintOf(core.RootDirID, string(rune('a'+i%26))+string(rune('0'+i%10)))
}

// Version must start positive, increase by one on every mutation, and never
// move on pure reads.
func TestVersionMonotonicity(t *testing.T) {
	r := New([]uint32{0, 1, 2, 3}, 0, nodeOf)
	v := r.Version()
	if v == 0 {
		t.Fatal("version must start positive")
	}
	fp := fpOf(0)
	r.SetOverride(fp, 2)
	if got := r.Version(); got != v+1 {
		t.Fatalf("SetOverride: version %d, want %d", got, v+1)
	}
	// Re-pinning to the owner it already resolves to still bumps.
	r.SetOverride(fp, r.OwnerOf(fp))
	if got := r.Version(); got != v+2 {
		t.Fatalf("re-SetOverride: version %d, want %d", got, v+2)
	}
	r.ClearOverride(fp)
	if got := r.Version(); got != v+3 {
		t.Fatalf("ClearOverride: version %d, want %d", got, v+3)
	}
	// Clearing a pin that does not exist is a no-op.
	r.ClearOverride(fp)
	if got := r.Version(); got != v+3 {
		t.Fatalf("no-op ClearOverride bumped: version %d, want %d", got, v+3)
	}
	r.Reset([]uint32{0, 1})
	if got := r.Version(); got != v+4 {
		t.Fatalf("Reset: version %d, want %d", got, v+4)
	}
	// Reads never bump.
	_ = r.OwnerOf(fp)
	_ = r.Overrides()
	_ = r.Slots()
	if got := r.Version(); got != v+4 {
		t.Fatalf("reads bumped version to %d", got)
	}
}

// An override takes precedence over the consistent-hash owner, only for its
// own fingerprint, and Reset drops it.
func TestOverridePrecedence(t *testing.T) {
	r := New([]uint32{0, 1, 2, 3}, 0, nodeOf)
	fp := fpOf(1)
	base := r.OwnerOf(fp)
	target := (base + 1) % 4
	r.SetOverride(fp, target)
	if got := r.OwnerOf(fp); got != target {
		t.Fatalf("override ignored: owner %d, want %d", got, target)
	}
	if got := r.OwnerNode(fp); got != nodeOf(target) {
		t.Fatalf("OwnerNode %d, want %d", got, nodeOf(target))
	}
	// Other fingerprints are unaffected.
	for i := 2; i < 40; i++ {
		o := fpOf(i)
		if o == fp {
			continue
		}
		r2 := New([]uint32{0, 1, 2, 3}, 0, nodeOf)
		if r.OwnerOf(o) != r2.OwnerOf(o) {
			t.Fatalf("override leaked onto fingerprint %v", o)
		}
	}
	ovs := r.Overrides()
	if len(ovs) != 1 || ovs[0].FP != fp || ovs[0].Slot != target {
		t.Fatalf("Overrides() = %v, want [{%v %d}]", ovs, fp, target)
	}
	r.ClearOverride(fp)
	if got := r.OwnerOf(fp); got != base {
		t.Fatalf("after clear: owner %d, want base %d", got, base)
	}
	r.SetOverride(fp, target)
	r.Reset([]uint32{0, 1, 2, 3})
	if got := r.OwnerOf(fp); got != base {
		t.Fatalf("Reset kept override: owner %d, want %d", got, base)
	}
	if len(r.Overrides()) != 0 {
		t.Fatal("Reset kept override entries")
	}
}

// Equal inputs must produce identical placement — across instances and
// across slot-order permutations (the base ring sorts its member set).
func TestDeterministicPlacement(t *testing.T) {
	a := New([]uint32{0, 1, 2, 3}, 0, nodeOf)
	b := New([]uint32{3, 2, 1, 0}, 0, nodeOf)
	for i := 0; i < 200; i++ {
		fp := fpOf(i)
		if a.OwnerOf(fp) != b.OwnerOf(fp) {
			t.Fatalf("placement differs for fingerprint %v", fp)
		}
	}
	// Overrides applied in any order yield the same sorted listing.
	a.SetOverride(fpOf(3), 1)
	a.SetOverride(fpOf(1), 2)
	b.SetOverride(fpOf(1), 2)
	b.SetOverride(fpOf(3), 1)
	ao, bo := a.Overrides(), b.Overrides()
	if len(ao) != len(bo) {
		t.Fatalf("override counts differ: %d vs %d", len(ao), len(bo))
	}
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("override listing differs at %d: %v vs %v", i, ao[i], bo[i])
		}
	}
}

// The ring agrees with the raw consistent-hash base when no overrides are
// pinned (clients and servers constructed from the same slots agree).
func TestAgreesWithPlacementBase(t *testing.T) {
	slots := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	r := New(slots, 0, nodeOf)
	p := core.NewPlacement(slots, 0)
	for i := 0; i < 200; i++ {
		fp := fpOf(i)
		if r.OwnerOf(fp) != p.OwnerOfFingerprint(fp) {
			t.Fatalf("ring disagrees with base placement for %v", fp)
		}
	}
}
