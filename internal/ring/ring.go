// Package ring is the versioned placement ring consulted by clients,
// servers, and the cluster control plane. It layers two mechanisms over the
// consistent-hash base (core.Placement):
//
//   - explicit per-fingerprint overrides, so a single hot directory group can
//     be migrated to a chosen slot without perturbing anything else, and
//   - a monotonically increasing version, bumped on every placement change,
//     so a re-routed operation can be attributed to the ring state it ran
//     under (figures report the version timeline during rebalance).
//
// The ring is the unit of agreement during staged rebalance: the control
// plane installs an override in the same atomic event that gates the
// destination, in-flight operations against the moving group observe the
// ownership check fail with ErrRetry, and the client re-resolves under the
// bumped version. Reconfigure is the bulk case: overrides drain group by
// group until a Reset lands the base ring on the new member set.
package ring

import (
	"fmt"
	"sort"
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
)

// Ring is a versioned placement: consistent-hash base + per-fingerprint
// overrides. All methods are cheap and never park, so a read-modify sequence
// inside one simulator event is atomic with respect to traffic.
type Ring struct {
	mu        sync.Mutex //detlint:ignore rawgo -- Real-mode guard; leaf sections, never held across a park (uncontended under Sim)
	placement *core.Placement
	overrides map[core.Fingerprint]uint32
	version   uint64
	nodeOf    func(uint32) env.NodeID
}

// Override is one pinned fingerprint-group placement.
type Override struct {
	FP   core.Fingerprint
	Slot uint32
}

// New builds a ring over the given slots. nodeOf maps a placement slot to
// the owning server's NodeID (the cluster's address layout); vnodes <= 0
// selects core.DefaultVNodes.
func New(slots []uint32, vnodes int, nodeOf func(uint32) env.NodeID) *Ring {
	return &Ring{
		placement: core.NewPlacement(slots, vnodes),
		overrides: make(map[core.Fingerprint]uint32),
		version:   1,
		nodeOf:    nodeOf,
	}
}

// Version returns the current ring version. It increases by exactly one on
// every SetOverride/ClearOverride/Reset, never decreases, and starts at 1.
func (r *Ring) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// OwnerOf returns the slot owning fingerprint group fp: the override if one
// is pinned, the consistent-hash owner otherwise.
func (r *Ring) OwnerOf(fp core.Fingerprint) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot, ok := r.overrides[fp]; ok {
		return slot
	}
	return r.placement.OwnerOfFingerprint(fp)
}

// OwnerNode returns the NodeID owning fingerprint group fp.
func (r *Ring) OwnerNode(fp core.Fingerprint) env.NodeID {
	return r.nodeOf(r.OwnerOf(fp))
}

// OwnerOfFile returns the slot owning the object addressed by (pid, name) —
// files and directories both route by fingerprint (P/C separation), so this
// is OwnerOf of the key's fingerprint. Test and tooling convenience.
func (r *Ring) OwnerOfFile(pid core.DirID, name string) uint32 {
	return r.OwnerOf(core.FingerprintOf(pid, name))
}

// NodeOf maps a placement slot to its NodeID.
func (r *Ring) NodeOf(slot uint32) env.NodeID { return r.nodeOf(slot) }

// SetOverride pins fingerprint group fp to slot and bumps the version.
// Installing the override a group already resolves to still bumps the
// version — the caller is staging a migration and relies on the bump.
func (r *Ring) SetOverride(fp core.Fingerprint, slot uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.overrides[fp] = slot
	r.version++
}

// ClearOverride removes fp's pin (a no-op without one does not bump).
func (r *Ring) ClearOverride(fp core.Fingerprint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.overrides[fp]; !ok {
		return
	}
	delete(r.overrides, fp)
	r.version++
}

// Reset replaces the base member set, drops every override, and bumps the
// version (bulk reconfiguration: by the time the control plane resets, every
// group has been migrated to its target owner, so the overrides are spent).
func (r *Ring) Reset(slots []uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placement.Reset(slots)
	r.overrides = make(map[core.Fingerprint]uint32)
	r.version++
}

// Overrides returns the pinned placements sorted by fingerprint —
// deterministic iteration for control-plane scans and figures.
func (r *Ring) Overrides() []Override {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Override, 0, len(r.overrides))
	for fp, slot := range r.overrides {
		out = append(out, Override{FP: fp, Slot: slot})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FP < out[j].FP })
	return out
}

// Slots returns the base member set in ascending order (overrides excluded:
// an override pins a group to a member, it does not add members).
func (r *Ring) Slots() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.placement.Servers()
}

// NumSlots returns the base member count.
func (r *Ring) NumSlots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.placement.NumServers()
}

// String summarizes the ring for diagnostics.
func (r *Ring) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("ring{v%d, %d slots, %d overrides}",
		r.version, r.placement.NumServers(), len(r.overrides))
}
