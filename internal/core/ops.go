package core

// Op enumerates metadata operations. The paper classifies them by the number
// of inodes they touch (§5.2): double-inode ops update the target object and
// its parent directory and are the ones SwitchFS makes asynchronous.
type Op uint8

const (
	// OpCreate creates a regular file (double-inode).
	OpCreate Op = iota + 1
	// OpDelete unlinks a regular file (double-inode).
	OpDelete
	// OpMkdir creates a directory (double-inode).
	OpMkdir
	// OpRmdir removes an empty directory (double-inode, plus aggregation).
	OpRmdir
	// OpStat reads a file inode (single-inode).
	OpStat
	// OpStatDir reads directory attributes (single-inode, directory read).
	OpStatDir
	// OpReadDir lists a directory (single-inode, directory read).
	OpReadDir
	// OpOpen opens a file (single-inode).
	OpOpen
	// OpClose closes a file (single-inode).
	OpClose
	// OpLookup resolves one path component to directory metadata.
	OpLookup
	// OpChmod updates permissions (single-inode on the target; directory
	// chmod additionally broadcasts invalidation).
	OpChmod
	// OpRename moves a file or directory (up to four inodes, 2PC).
	OpRename
	// OpLink creates a hard link (2PC across reference and attributes).
	OpLink
	// OpRead reads file data from a data node (end-to-end workloads).
	OpRead
	// OpWrite writes file data to a data node (end-to-end workloads).
	OpWrite
)

var opNames = [...]string{
	OpCreate:  "create",
	OpDelete:  "delete",
	OpMkdir:   "mkdir",
	OpRmdir:   "rmdir",
	OpStat:    "stat",
	OpStatDir: "statdir",
	OpReadDir: "readdir",
	OpOpen:    "open",
	OpClose:   "close",
	OpLookup:  "lookup",
	OpChmod:   "chmod",
	OpRename:  "rename",
	OpLink:    "link",
	OpRead:    "read",
	OpWrite:   "write",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// DoubleInode reports whether the operation updates both a target object and
// its parent directory — the class SwitchFS executes asynchronously (§5.2.1).
func (o Op) DoubleInode() bool {
	switch o {
	case OpCreate, OpDelete, OpMkdir, OpRmdir:
		return true
	}
	return false
}

// DirRead reports whether the operation reads directory attributes or entry
// lists and therefore must observe (and possibly aggregate) pending
// asynchronous updates (§5.2.2).
func (o Op) DirRead() bool { return o == OpStatDir || o == OpReadDir }

// UpdatesDir reports whether the operation logically modifies its parent
// directory's metadata (Tab. 2 "Dir. Update" class).
func (o Op) UpdatesDir() bool {
	return o.DoubleInode() || o == OpRename
}
