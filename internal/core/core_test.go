package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDGenUniqueness(t *testing.T) {
	g1 := NewIDGen(1)
	g2 := NewIDGen(2)
	seen := map[DirID]bool{}
	for i := 0; i < 10000; i++ {
		for _, g := range []*IDGen{g1, g2} {
			id := g.Next()
			if seen[id] {
				t.Fatalf("duplicate id %v", id)
			}
			seen[id] = true
		}
	}
}

func TestDirIDRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		id := DirID{a, b, c, d}
		return DirIDFromBytes(id.AppendBinary(nil)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintWidth(t *testing.T) {
	g := NewIDGen(7)
	for i := 0; i < 1000; i++ {
		fp := FingerprintOf(g.Next(), fmt.Sprintf("n%d", i))
		if uint64(fp) >= 1<<FingerprintBits {
			t.Fatalf("fingerprint %x exceeds %d bits", uint64(fp), FingerprintBits)
		}
	}
}

func TestFingerprintZeroReserved(t *testing.T) {
	// Fingerprint 0 is the protocol's "no group" sentinel: a hash landing on
	// it (any multiple of 2^49) must fold away rather than mint a real group
	// that would silently skip migration admission.
	if fp := fingerprintOfHash(0); fp != 1 {
		t.Fatalf("fingerprintOfHash(0) = %d, want 1", fp)
	}
	if fp := fingerprintOfHash(1 << FingerprintBits); fp != 1 {
		t.Fatalf("hash with all-zero low bits folded to %d, want 1", fp)
	}
	if fp := fingerprintOfHash(42); fp != 42 {
		t.Fatalf("fingerprintOfHash(42) = %d, want 42", fp)
	}
}

func TestFingerprintIndexTagRoundTrip(t *testing.T) {
	// index and tag partition the fingerprint bits (modulo the zero-tag
	// reservation).
	f := func(raw uint64) bool {
		fp := Fingerprint(raw & (1<<FingerprintBits - 1))
		idx := fp.Index(17)
		tag := fp.Tag(17)
		if idx >= 1<<17 {
			return false
		}
		if tag == 0 {
			return false // zero is reserved
		}
		want := uint32(uint64(fp) & (1<<32 - 1))
		if want == 0 {
			want = 1
		}
		return tag == want && idx == uint32(uint64(fp)>>32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintDistribution(t *testing.T) {
	// Set indexes must spread uniformly: with 64k fingerprints over 2^10
	// buckets no bucket should be more than 3× the mean.
	g := NewIDGen(3)
	counts := make([]int, 1<<10)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		fp := FingerprintOf(g.Next(), "x")
		counts[fp.Index(10)]++
	}
	mean := n / len(counts)
	for b, c := range counts {
		if c > 3*mean {
			t.Fatalf("bucket %d holds %d (mean %d)", b, c, mean)
		}
	}
}

func TestKeyEncodeDecode(t *testing.T) {
	f := func(a, b uint64, name string) bool {
		if len(name) > 64 {
			name = name[:64]
		}
		k := Key{PID: DirID{a, b, a ^ b, 1}, Name: name}
		got, err := DecodeKey(k.Encode())
		return err == nil && got == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyAndEntryTablesDisjoint(t *testing.T) {
	// The regression this guards: the inode of (pid, name) and a dentry of
	// directory pid with the same name must never share a storage key.
	id := DirID{1, 2, 3, 4}
	inodeKey := Key{PID: id, Name: "child"}.Encode()
	dentryKey := append(EntryPrefix(id), "child"...)
	if bytes.Equal(inodeKey, dentryKey) {
		t.Fatal("inode and dentry keys collide")
	}
	if _, err := DecodeKey(dentryKey); err == nil {
		t.Fatal("dentry key decoded as an inode key")
	}
}

func TestEntryPrefixCoversOnlyChildren(t *testing.T) {
	a := DirID{1, 0, 0, 1}
	b := DirID{1, 0, 0, 2}
	ka := append(EntryPrefix(a), "x"...)
	if bytes.HasPrefix(ka, EntryPrefix(b)) {
		t.Fatal("entry prefixes of different directories overlap")
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"/", "[]", false},
		{"/a/b/c", "[a b c]", false},
		{"/a//b/", "[a b]", false},
		{"/a/./b", "[a b]", false},
		{"/a/b/../c", "[a c]", false},
		{"/..", "", true},
		{"relative", "", true},
		{"", "", true},
	}
	for _, c := range cases {
		got, err := SplitPath(c.in)
		if c.err {
			if err == nil {
				t.Errorf("SplitPath(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitPath(%q): %v", c.in, err)
			continue
		}
		if fmt.Sprint(got) != c.want {
			t.Errorf("SplitPath(%q) = %v, want %s", c.in, got, c.want)
		}
	}
}

func TestValidateName(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", string(make([]byte, 300))} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"a", "file.txt", "x y", "ünïcode"} {
		if err := ValidateName(good); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}

func TestInodeRoundTrip(t *testing.T) {
	in := &Inode{
		Attr: Attr{Type: TypeDir, Perm: 0o751, UID: 3, GID: 9, Size: 42,
			Atime: 1, Mtime: 2, Ctime: 3, Nlink: 2},
		ID:      DirID{9, 8, 7, 6},
		File:    FileID(77),
		DataLoc: []uint32{1, 2, 3},
	}
	got, err := DecodeInode(EncodeInode(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Attr != in.Attr || got.ID != in.ID || got.File != in.File {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
	if len(got.DataLoc) != 3 || got.DataLoc[2] != 3 {
		t.Fatalf("data locations %v", got.DataLoc)
	}
}

func TestInodeDecodeRejectsShort(t *testing.T) {
	if _, err := DecodeInode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestDirEntryRoundTrip(t *testing.T) {
	e := DirEntry{Name: "f", Type: TypeRegular, Perm: 0o640}
	got, err := DecodeDirEntry("f", EncodeDirEntry(e))
	if err != nil || got != e {
		t.Fatalf("got %+v err=%v", got, err)
	}
}

func TestErrnoRoundTrip(t *testing.T) {
	for _, e := range []error{ErrExist, ErrNotExist, ErrNotEmpty, ErrNotDir,
		ErrIsDir, ErrInvalid, ErrStaleCache, ErrRetry, ErrUnavailable, ErrLoop} {
		if got := ErrnoOf(e).Err(); !errors.Is(got, e) {
			t.Errorf("errno round trip of %v gave %v", e, got)
		}
	}
	if ErrnoOf(nil) != ErrnoOK || ErrnoOK.Err() != nil {
		t.Error("nil error round trip failed")
	}
}

func TestPlacementDeterministicAndComplete(t *testing.T) {
	p1 := NewPlacement([]uint32{0, 1, 2, 3}, 0)
	p2 := NewPlacement([]uint32{3, 2, 1, 0}, 0) // order-insensitive
	g := NewIDGen(5)
	for i := 0; i < 2000; i++ {
		k := Key{PID: g.Next(), Name: "f"}
		if p1.OwnerOfKey(k, false) != p2.OwnerOfKey(k, false) {
			t.Fatal("placement depends on server-list order")
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	p := NewPlacement([]uint32{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	counts := map[uint32]int{}
	g := NewIDGen(6)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.OwnerOfFile(g.Next(), "f")]++
	}
	for s, c := range counts {
		if c < n/8/3 || c > n/8*3 {
			t.Fatalf("server %d owns %d of %d (poor balance)", s, c, n)
		}
	}
}

func TestPlacementFingerprintGroupInvariant(t *testing.T) {
	// Every directory in a fingerprint group must land on one server: the
	// file and fingerprint routes must agree.
	p := NewPlacement([]uint32{0, 1, 2, 3}, 0)
	g := NewIDGen(7)
	for i := 0; i < 2000; i++ {
		pid := g.Next()
		name := fmt.Sprintf("d%d", i)
		fp := FingerprintOf(pid, name)
		if p.OwnerOfDir(pid, name) != p.OwnerOfFingerprint(fp) {
			t.Fatal("directory placement disagrees with fingerprint placement")
		}
		if p.OwnerOfFile(pid, name) != p.OwnerOfFingerprint(fp) {
			t.Fatal("file placement disagrees with fingerprint placement")
		}
	}
}

func TestPlacementMinimalMovementOnReset(t *testing.T) {
	p := NewPlacement([]uint32{0, 1, 2, 3}, 0)
	g := NewIDGen(8)
	type obj struct{ k Key }
	var objs []obj
	before := map[int]uint32{}
	for i := 0; i < 5000; i++ {
		k := Key{PID: g.Next(), Name: "f"}
		objs = append(objs, obj{k})
		before[i] = p.OwnerOfKey(k, false)
	}
	p.Reset([]uint32{0, 1, 2, 3, 4}) // add one server
	moved := 0
	for i, o := range objs {
		if p.OwnerOfKey(o.k, false) != before[i] {
			moved++
		}
	}
	// Consistent hashing: roughly 1/5 of keys move; far less than 1/2.
	if moved > len(objs)/2 {
		t.Fatalf("%d of %d keys moved after adding one server", moved, len(objs))
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new server")
	}
}

// --- change-log and compaction ------------------------------------------------

func TestChangeLogAppendAckThrough(t *testing.T) {
	var l ChangeLog
	for i := 1; i <= 5; i++ {
		l.Append(LogEntry{ID: uint64(i), Op: OpCreate, Name: fmt.Sprintf("f%d", i)})
	}
	if l.Len() != 5 || l.Bytes() == 0 {
		t.Fatalf("len=%d bytes=%d", l.Len(), l.Bytes())
	}
	l.AckThrough(3)
	if l.Len() != 2 {
		t.Fatalf("after ack len=%d", l.Len())
	}
	snap := l.Snapshot()
	if snap[0].ID != 4 || snap[1].ID != 5 {
		t.Fatalf("snapshot %v", snap)
	}
	l.AckThrough(100)
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Fatalf("after full ack len=%d bytes=%d", l.Len(), l.Bytes())
	}
}

func TestAckThroughOutOfOrderIDs(t *testing.T) {
	var l ChangeLog
	// Concurrent appenders can interleave id assignment and queue order.
	for _, id := range []uint64{2, 1, 4, 3} {
		l.Append(LogEntry{ID: id, Op: OpCreate, Name: fmt.Sprintf("n%d", id)})
	}
	l.AckThrough(2)
	for _, e := range l.Snapshot() {
		if e.ID <= 2 {
			t.Fatalf("entry %d survived AckThrough(2)", e.ID)
		}
	}
	if l.Len() != 2 {
		t.Fatalf("len=%d", l.Len())
	}
}

func TestCompactNetAndMax(t *testing.T) {
	entries := []LogEntry{
		{ID: 1, Time: 10, Op: OpCreate, Name: "a", Type: TypeRegular},
		{ID: 2, Time: 30, Op: OpCreate, Name: "b", Type: TypeRegular},
		{ID: 3, Time: 20, Op: OpDelete, Name: "a"},
		{ID: 4, Time: 25, Op: OpMkdir, Name: "d", Type: TypeDir},
	}
	c := Compact(entries)
	// a cancels (create+delete), b and d remain: net +2.
	if c.NetEntries != 2 {
		t.Errorf("NetEntries=%d, want 2", c.NetEntries)
	}
	if c.MaxTime != 30 || c.MaxID != 4 || c.Count != 4 {
		t.Errorf("MaxTime=%d MaxID=%d Count=%d", c.MaxTime, c.MaxID, c.Count)
	}
	// Final ops: a→removed, b→put, d→put.
	final := map[string]bool{}
	for _, op := range c.Ops {
		final[op.Name] = op.Put
	}
	if final["a"] || !final["b"] || !final["d"] {
		t.Errorf("ops %v", c.Ops)
	}
}

// TestCompactEquivalence is the core §5.3 property: applying the compacted
// update yields the same directory state as applying the raw entries in FIFO
// order, for any FIFO-legal entry sequence.
func TestCompactEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		// Generate a FIFO-legal sequence: per name, create/delete alternate
		// starting from "absent".
		names := []string{"a", "b", "c", "d"}
		present := map[string]bool{}
		var entries []LogEntry
		for i := 0; i < 20; i++ {
			n := names[rnd.Intn(len(names))]
			var op Op
			if present[n] {
				op = OpDelete
				present[n] = false
			} else {
				op = OpCreate
				present[n] = true
			}
			entries = append(entries, LogEntry{
				ID: uint64(i + 1), Time: int64(rnd.Intn(100)), Op: op, Name: n,
				Type: TypeRegular,
			})
		}

		// Reference: apply raw entries in order.
		refList := map[string]bool{}
		refSize := int64(0)
		refTime := int64(0)
		for _, e := range entries {
			switch e.Op {
			case OpCreate:
				refList[e.Name] = true
				refSize++
			case OpDelete:
				delete(refList, e.Name)
				refSize--
			}
			if e.Time > refTime {
				refTime = e.Time
			}
		}

		// Compacted: attribute merge + final op per name.
		c := Compact(entries)
		gotList := map[string]bool{}
		for _, op := range c.Ops {
			if op.Put {
				gotList[op.Name] = true
			} else {
				delete(gotList, op.Name)
			}
		}
		var attr Attr
		c.ApplyToAttr(&attr, 0)
		if attr.Size != refSize && !(refSize < 0 && attr.Size == 0) {
			t.Fatalf("trial %d: size %d, want %d", trial, attr.Size, refSize)
		}
		if attr.Mtime != refTime {
			t.Fatalf("trial %d: mtime %d, want %d", trial, attr.Mtime, refTime)
		}
		if fmt.Sprint(gotList) != fmt.Sprint(refList) {
			t.Fatalf("trial %d: list %v, want %v", trial, gotList, refList)
		}
	}
}

func TestApplyToAttrClampsSize(t *testing.T) {
	c := Compacted{NetEntries: -5}
	a := Attr{Size: 2}
	c.ApplyToAttr(&a, 0)
	if a.Size != 0 {
		t.Fatalf("size=%d, want clamped 0", a.Size)
	}
}

func TestOpClassification(t *testing.T) {
	for _, op := range []Op{OpCreate, OpDelete, OpMkdir, OpRmdir} {
		if !op.DoubleInode() || !op.UpdatesDir() {
			t.Errorf("%v misclassified", op)
		}
	}
	for _, op := range []Op{OpStat, OpOpen, OpClose, OpStatDir, OpReadDir} {
		if op.DoubleInode() {
			t.Errorf("%v wrongly double-inode", op)
		}
	}
	if !OpStatDir.DirRead() || !OpReadDir.DirRead() || OpStat.DirRead() {
		t.Error("DirRead misclassification")
	}
	if !OpRename.UpdatesDir() {
		t.Error("rename must update directories")
	}
}
