package core

import "errors"

// Filesystem errors surfaced by the public API. They mirror the POSIX errno
// values the paper's operations return (e.g. rmdir on a non-empty directory
// fails with ENOTEMPTY, §5.2.3).
var (
	// ErrExist: the target name already exists (EEXIST).
	ErrExist = errors.New("file exists")
	// ErrNotExist: no such file or directory (ENOENT).
	ErrNotExist = errors.New("no such file or directory")
	// ErrNotEmpty: directory not empty (ENOTEMPTY).
	ErrNotEmpty = errors.New("directory not empty")
	// ErrNotDir: a path component is not a directory (ENOTDIR).
	ErrNotDir = errors.New("not a directory")
	// ErrIsDir: the operation requires a non-directory (EISDIR).
	ErrIsDir = errors.New("is a directory")
	// ErrInvalid: malformed argument (EINVAL).
	ErrInvalid = errors.New("invalid argument")
	// ErrStaleCache: the client's cached directory metadata was invalidated
	// (lazy invalidation, §5.2); the client must refresh and retry. Never
	// surfaced to applications.
	ErrStaleCache = errors.New("stale client metadata cache")
	// ErrRetry: internal transient condition (lock conflict during 2PC,
	// in-flight reconfiguration); the client library retries transparently.
	ErrRetry = errors.New("transient conflict, retry")
	// ErrUnavailable: the contacted server is recovering or stopped.
	ErrUnavailable = errors.New("server unavailable")
	// ErrLoop: the rename would make two directories each other's ancestor
	// (orphaned loop, §5.2).
	ErrLoop = errors.New("rename would create a directory loop")
	// ErrTimeout: the operation exceeded its retry budget.
	ErrTimeout = errors.New("operation timed out")
	// ErrClosed: the operation used an already-closed file handle (EBADF).
	// Client-side only; never crosses the wire.
	ErrClosed = errors.New("file already closed")
)

// Errno is the compact wire representation of the error set above.
type Errno uint8

// Wire error codes. ErrOK marks success.
const (
	ErrnoOK Errno = iota
	ErrnoExist
	ErrnoNotExist
	ErrnoNotEmpty
	ErrnoNotDir
	ErrnoIsDir
	ErrnoInvalid
	ErrnoStaleCache
	ErrnoRetry
	ErrnoUnavailable
	ErrnoLoop
)

var errnoToErr = [...]error{
	ErrnoOK:          nil,
	ErrnoExist:       ErrExist,
	ErrnoNotExist:    ErrNotExist,
	ErrnoNotEmpty:    ErrNotEmpty,
	ErrnoNotDir:      ErrNotDir,
	ErrnoIsDir:       ErrIsDir,
	ErrnoInvalid:     ErrInvalid,
	ErrnoStaleCache:  ErrStaleCache,
	ErrnoRetry:       ErrRetry,
	ErrnoUnavailable: ErrUnavailable,
	ErrnoLoop:        ErrLoop,
}

// Err converts a wire code back into the canonical error value.
func (e Errno) Err() error {
	if int(e) < len(errnoToErr) {
		return errnoToErr[e]
	}
	return ErrInvalid
}

// ErrnoOf maps an error to its wire code. Unknown errors map to ErrnoInvalid;
// handlers only return errors from the set above.
func ErrnoOf(err error) Errno {
	switch {
	case err == nil:
		return ErrnoOK
	case errors.Is(err, ErrExist):
		return ErrnoExist
	case errors.Is(err, ErrNotExist):
		return ErrnoNotExist
	case errors.Is(err, ErrNotEmpty):
		return ErrnoNotEmpty
	case errors.Is(err, ErrNotDir):
		return ErrnoNotDir
	case errors.Is(err, ErrIsDir):
		return ErrnoIsDir
	case errors.Is(err, ErrStaleCache):
		return ErrnoStaleCache
	case errors.Is(err, ErrRetry):
		return ErrnoRetry
	case errors.Is(err, ErrUnavailable):
		return ErrnoUnavailable
	case errors.Is(err, ErrLoop):
		return ErrnoLoop
	default:
		return ErrnoInvalid
	}
}
