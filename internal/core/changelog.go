package core

import "fmt"

// LogEntry is one committed-but-not-yet-applied asynchronous directory
// update (§5.3, Fig. 7): the timestamp, operation type, and component name.
// Entries live in a per-server, per-directory FIFO queue; FIFO order is what
// preserves the commit order of dependent updates to the same name (create
// then delete of one file are always logged by the same server because both
// hash to the file's owner).
type LogEntry struct {
	// ID is the logging server's commit sequence number for this entry.
	// Within one (server, directory) change-log IDs strictly increase; the
	// directory's owner uses them to apply each entry exactly once even when
	// crash recovery re-sends entries (§A.1 "Idempotence of recovery").
	ID uint64
	// Time is the commit timestamp (virtual ns); timestamp merges keep the
	// maximum (§5.3 action type (b)).
	Time int64
	// Op is one of OpCreate, OpDelete, OpMkdir, OpRmdir.
	Op Op
	// Name is the directory entry affected.
	Name string
	// Type and Perm describe the entry for insertions.
	Type FileType
	Perm Perm
}

// ChangeLog is the FIFO queue of deferred updates to one remote directory,
// held by the server that executed the local halves of the operations.
// ChangeLog is not self-synchronized: the owning server guards it with the
// per-directory change-log lock required by the protocol (§5.2.1 step 2).
type ChangeLog struct {
	entries []LogEntry
	// bytes approximates the wire size of pending entries, for the
	// fill-an-MTU proactive push trigger (§5.3).
	bytes int
}

// entryWireBytes approximates one entry's size in a change-log push packet.
func entryWireBytes(e LogEntry) int { return 8 + 8 + 1 + 1 + 2 + 2 + len(e.Name) }

// Append adds a committed update to the tail of the queue.
func (l *ChangeLog) Append(e LogEntry) {
	l.entries = append(l.entries, e)
	l.bytes += entryWireBytes(e)
}

// Len returns the number of pending entries.
func (l *ChangeLog) Len() int { return len(l.entries) }

// Bytes returns the approximate wire size of pending entries.
func (l *ChangeLog) Bytes() int { return l.bytes }

// Snapshot returns the pending entries without draining them; used when
// sending entries to the owner while they must remain re-sendable until the
// owner's acknowledgment arrives (§5.2.2 steps 6–9).
func (l *ChangeLog) Snapshot() []LogEntry {
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// AckThrough drops every entry with ID ≤ id — called when the directory owner
// acknowledges application, after the entries were marked "applied" in the
// local WAL. The whole queue is filtered (not just a prefix): concurrent
// appenders of different names may interleave ID assignment and queue order.
func (l *ChangeLog) AckThrough(id uint64) {
	kept := l.entries[:0]
	for _, e := range l.entries {
		if e.ID <= id {
			l.bytes -= entryWireBytes(e)
			continue
		}
		kept = append(kept, e)
	}
	l.entries = kept
	if len(l.entries) == 0 {
		l.entries = nil
	}
}

// EntryOp is a compacted entry-list mutation: the final fate of one name.
type EntryOp struct {
	Name string
	Put  bool // true: insert/overwrite dentry; false: remove dentry
	Type FileType
	Perm Perm
}

// Compacted is the result of change-log compaction (§5.3): commuting
// attribute deltas merged into one update, and entry-list operations folded
// per name. Applying a Compacted update to the directory inode is equivalent
// to applying the original entries in FIFO order — see Compact.
type Compacted struct {
	// MaxTime is the largest commit timestamp among the entries; the
	// directory's mtime/ctime advance to it (timestamps are overwrite-max).
	MaxTime int64
	// NetEntries is the net change to the directory's entry count (its Size
	// attribute): +1 per create/mkdir, −1 per delete/rmdir.
	NetEntries int64
	// Ops holds one operation per distinct name, in first-touch order.
	// Creates cancelled by later deletes of the same name disappear.
	Ops []EntryOp
	// MaxID is the largest entry ID covered, acknowledged back to the
	// logging server.
	MaxID uint64
	// Count is the number of raw entries compacted.
	Count int
}

// Compact folds a FIFO slice of change-log entries into a Compacted update.
//
// Correctness argument (paper §5.3): (a) size deltas commute — summation;
// (b) timestamps are overwrite-largest — max; (c) insert/remove of different
// names commute, while repeated insert/remove of the same name must respect
// FIFO order — folding to the *last* operation per name is equivalent because
// dentry insertion is a blind overwrite and removal a blind delete, so the
// final state only depends on the final operation.
func Compact(entries []LogEntry) Compacted {
	c := Compacted{Count: len(entries)}
	if len(entries) == 0 {
		return c
	}
	last := make(map[string]int, len(entries)) // name → index into c.Ops
	for _, e := range entries {
		if e.Time > c.MaxTime {
			c.MaxTime = e.Time
		}
		if e.ID > c.MaxID {
			c.MaxID = e.ID
		}
		op := EntryOp{Name: e.Name, Type: e.Type, Perm: e.Perm}
		switch e.Op {
		case OpCreate, OpMkdir:
			c.NetEntries++
			op.Put = true
		case OpDelete, OpRmdir:
			c.NetEntries--
			op.Put = false
		default:
			panic(fmt.Sprintf("core: op %v cannot appear in a change-log", e.Op))
		}
		if i, ok := last[e.Name]; ok {
			c.Ops[i] = op
		} else {
			last[e.Name] = len(c.Ops)
			c.Ops = append(c.Ops, op)
		}
	}
	// A create later cancelled by a delete leaves a remove for a dentry that
	// never reached the owner; the remove is harmless (blind delete) but we
	// can prune pure create+delete pairs: they are detectable as !Put ops
	// whose net contribution already cancelled. We keep them — pruning would
	// require knowing prior presence at the owner, which only the owner has.
	return c
}

// ApplyToAttr merges the compacted attribute update into a directory inode's
// attributes: entry-count delta and overwrite-max timestamps. Entry-list
// mutations are applied separately by the owner against its dentry records.
func (c Compacted) ApplyToAttr(a *Attr, now int64) {
	a.Size += c.NetEntries
	if a.Size < 0 {
		a.Size = 0
	}
	if c.MaxTime > a.Mtime {
		a.Mtime = c.MaxTime
	}
	if c.MaxTime > a.Ctime {
		a.Ctime = c.MaxTime
	}
	_ = now
}
