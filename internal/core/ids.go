// Package core defines the protocol-level types of SwitchFS: directory
// identifiers, fingerprints, the metadata schema (inodes, dentries, keys),
// directory states, change-logs with compaction, and metadata placement.
//
// These types are shared by the SwitchFS servers, clients, the programmable
// switch model, and the emulated baseline systems, so that all systems under
// comparison use the same storage and networking framework (as in the paper's
// evaluation setup, §7.1).
package core

import (
	"encoding/binary"
	"fmt"
)

// DirID is the 256-bit unique identifier assigned to every directory upon
// creation (paper §4.3, Tab. 3). File inodes are addressed by (parent DirID,
// name) and do not carry their own DirID; regular files with hard links use a
// FileID (see hardlink support in §5.5).
type DirID [4]uint64

// RootDirID is the well-known identifier of the filesystem root "/".
// The root directory always exists and is never removed.
var RootDirID = DirID{0, 0, 0, 1}

// IsZero reports whether d is the all-zero (invalid) identifier.
func (d DirID) IsZero() bool { return d[0] == 0 && d[1] == 0 && d[2] == 0 && d[3] == 0 }

// String renders the identifier as fixed-width hex, for logs and errors.
func (d DirID) String() string {
	return fmt.Sprintf("%016x%016x%016x%016x", d[0], d[1], d[2], d[3])
}

// AppendBinary appends the 32-byte big-endian encoding of d to b.
func (d DirID) AppendBinary(b []byte) []byte {
	for i := 0; i < 4; i++ {
		b = binary.BigEndian.AppendUint64(b, d[i])
	}
	return b
}

// DirIDFromBytes decodes a 32-byte big-endian DirID. It panics if b is short;
// callers validate lengths at the wire boundary.
func DirIDFromBytes(b []byte) DirID {
	var d DirID
	for i := 0; i < 4; i++ {
		d[i] = binary.BigEndian.Uint64(b[i*8:])
	}
	return d
}

// IDGen deterministically generates unique 256-bit directory identifiers.
// Each metadata server owns one generator seeded with its node id, so ids
// allocated by different servers never collide. IDGen is not safe for
// concurrent use; servers serialize allocation under their directory locks.
type IDGen struct {
	node uint64
	seq  uint64
}

// NewIDGen returns a generator whose ids embed the given node number.
func NewIDGen(node uint64) *IDGen { return &IDGen{node: node} }

// Next returns a fresh DirID. Ids are unique per (node, seq) and whitened
// with splitmix64 so that their bits are uniformly distributed — DirIDs feed
// the fingerprint hash and the placement hash.
func (g *IDGen) Next() DirID {
	g.seq++
	s := g.seq
	return DirID{
		splitmix64(g.node*0x9E3779B97F4A7C15 + 0x1234),
		splitmix64(s),
		splitmix64(g.node ^ (s << 32)),
		g.node<<48 | (s & 0xFFFFFFFFFFFF),
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator; a strong, cheap
// 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// FingerprintBits is the width of the on-switch directory fingerprint
// (paper §4.3): it must fit the switch register layout of a 17-bit set index
// plus a 32-bit tag.
const FingerprintBits = 49

// Fingerprint identifies a directory inside the switch. Multiple directories
// may share a fingerprint (a "fingerprint group"); SwitchFS places all
// directories of a group on the same server so aggregation of the group is a
// single-server affair (§5.1 "Transition granularity").
type Fingerprint uint64

// FingerprintOf hashes (pid, name) into the 49-bit fingerprint space.
// Fingerprint 0 is reserved as the protocol's "no group" sentinel (scan
// admission opt-out, dentry transaction ops that ride with their directory's
// inode op), so a computed zero folds to 1 — legal for the same reason Tag
// folds: fingerprint collisions only make directories share a group, never a
// correctness violation.
func FingerprintOf(pid DirID, name string) Fingerprint {
	return fingerprintOfHash(hash64Dir(pid, name))
}

func fingerprintOfHash(h uint64) Fingerprint {
	fp := Fingerprint(h & (1<<FingerprintBits - 1))
	if fp == 0 {
		return 1
	}
	return fp
}

// Index returns the set index (upper 17 bits of the fingerprint) used to pick
// the register set inside the switch's dirty set (§6.3).
func (f Fingerprint) Index(indexBits uint) uint32 {
	return uint32(uint64(f) >> (FingerprintBits - indexBits))
}

// Tag returns the register tag (remaining low bits). Tag zero is reserved as
// the empty-register marker; a computed zero maps to 1. This folds two
// fingerprints together, which is legal: fingerprint collisions only cause
// directories to share a group, never a correctness violation.
func (f Fingerprint) Tag(indexBits uint) uint32 {
	t := uint32(uint64(f) & (1<<(FingerprintBits-indexBits) - 1))
	if t == 0 {
		t = 1
	}
	return t
}

// hash64Dir is a deterministic 64-bit hash of a (DirID, name) pair (FNV-1a
// over the id words and the name bytes, then strengthened with splitmix64).
// Determinism matters: placement must agree across clients, servers, and
// across process restarts.
func hash64Dir(pid DirID, name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range pid {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return splitmix64(h)
}

// Hash64 exposes the schema hash for placement decisions.
func Hash64(pid DirID, name string) uint64 { return hash64Dir(pid, name) }

// FileID identifies the attribute object of a regular file when hard links
// are enabled (§5.5): references (pid,name) point at a FileID-addressed
// attribute record that carries the link count.
type FileID uint64
