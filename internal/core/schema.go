package core

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// FileType distinguishes the kinds of metadata objects in the namespace.
type FileType uint8

const (
	// TypeRegular is an ordinary file.
	TypeRegular FileType = iota + 1
	// TypeDir is a directory.
	TypeDir
	// TypeSymlink is a symbolic link.
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileType(%d)", uint8(t))
	}
}

// Perm is a POSIX permission/mode word.
type Perm uint16

// DefaultFilePerm and DefaultDirPerm are used when a caller does not specify
// a mode.
const (
	DefaultFilePerm Perm = 0o644
	DefaultDirPerm  Perm = 0o755
)

// Attr is the attribute block shared by files and directories (Tab. 3).
// Timestamps are virtual-clock nanoseconds; the environment supplies them.
type Attr struct {
	Type  FileType
	Perm  Perm
	UID   uint32
	GID   uint32
	Size  int64 // bytes for files; entry count for directories
	Atime int64
	Mtime int64
	Ctime int64
	Nlink uint32
}

// Inode is a metadata object stored in the key-value store. Directories carry
// their 256-bit ID; regular files carry a FileID only when they participate
// in hard links.
type Inode struct {
	Attr
	// ID is the directory identifier; zero for non-directories.
	ID DirID
	// File is the file attribute-object id (hard-link support); zero when
	// the file has a single reference stored inline.
	File FileID
	// DataLoc names the data servers holding the file content; metadata-only
	// workloads leave it empty.
	DataLoc []uint32
}

// DirEntry is one entry of a directory's entry list, stored as its own
// key-value pair colocated with the directory inode (Tab. 3).
type DirEntry struct {
	Name string
	Type FileType
	Perm Perm
}

// Key addresses a metadata object: the concatenation of the parent
// directory's id and the component name (§4.3).
type Key struct {
	PID  DirID
	Name string
}

func (k Key) String() string { return k.PID.String()[:8] + "…/" + k.Name }

// Storage-table tags. Inodes and directory entries are distinct tables in
// the metadata store (Tab. 3); the tag byte keeps their keyspaces disjoint —
// the inode of /a/b (keyed by parent id + "b") and root's dentry "b" (keyed
// by directory id + "b") must never collide.
const (
	tagInode byte = 'i'
	tagEntry byte = 'e'
)

// Encode renders the inode-table key: tag, parent id, separator, name.
// Lexicographic order groups a parent's inode keys together.
func (k Key) Encode() []byte {
	b := make([]byte, 0, 1+32+1+len(k.Name))
	b = append(b, tagInode)
	b = k.PID.AppendBinary(b)
	b = append(b, '/')
	b = append(b, k.Name...)
	return b
}

// DecodeKey parses an inode-table key encoded by Key.Encode. Keys from other
// tables return an error.
func DecodeKey(b []byte) (Key, error) {
	if len(b) < 34 || b[0] != tagInode || b[33] != '/' {
		return Key{}, fmt.Errorf("core: not an inode key (%d bytes)", len(b))
	}
	return Key{PID: DirIDFromBytes(b[1:33]), Name: string(b[34:])}, nil
}

// EntryPrefix is the entry-table scan prefix selecting every dentry of
// directory id. Dentries are stored on the same server as the directory's
// inode (Tab. 3).
func EntryPrefix(id DirID) []byte {
	b := make([]byte, 0, 34)
	b = append(b, tagEntry)
	b = id.AppendBinary(b)
	return append(b, '/')
}

// Fingerprint of the directory identified by key (pid,name): used both by
// clients (to stamp requests) and servers (to stamp dirty-set updates).
func (k Key) Fingerprint() Fingerprint { return FingerprintOf(k.PID, k.Name) }

// DirRef fully identifies a directory to the protocol: its 256-bit id (which
// addresses the entry list), the key of its own inode (which addresses its
// attributes on the owner server), and its fingerprint (which addresses its
// state in the switch). Clients learn DirRefs during path resolution and pass
// them in requests so servers never resolve paths themselves.
type DirRef struct {
	ID  DirID
	Key Key
	FP  Fingerprint
}

// RootRef is the DirRef of "/": its inode is stored under the zero parent
// with an empty name.
func RootRef() DirRef {
	k := Key{PID: DirID{}, Name: ""}
	return DirRef{ID: RootDirID, Key: k, FP: k.Fingerprint()}
}

// ValidateName rejects component names the namespace cannot store.
func ValidateName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("%w: empty name", ErrInvalid)
	case name == "." || name == "..":
		return fmt.Errorf("%w: reserved name %q", ErrInvalid, name)
	case strings.ContainsRune(name, '/'):
		return fmt.Errorf("%w: name %q contains '/'", ErrInvalid, name)
	case len(name) > MaxNameLen:
		return fmt.Errorf("%w: name longer than %d bytes", ErrInvalid, MaxNameLen)
	}
	return nil
}

// MaxNameLen bounds a single path component, as in POSIX NAME_MAX.
const MaxNameLen = 255

// SplitPath normalizes an absolute slash-separated path into its components.
// The empty list denotes the root directory.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: path %q is not absolute", ErrInvalid, path)
	}
	raw := strings.Split(path, "/")
	comps := make([]string, 0, len(raw))
	for _, c := range raw {
		switch c {
		case "", ".":
			continue
		case "..":
			if len(comps) == 0 {
				return nil, fmt.Errorf("%w: path %q escapes root", ErrInvalid, path)
			}
			comps = comps[:len(comps)-1]
		default:
			if err := ValidateName(c); err != nil {
				return nil, err
			}
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// EncodeInode serializes an inode for storage in the KV store and the WAL.
func EncodeInode(in *Inode) []byte {
	b := make([]byte, 0, 96)
	b = append(b, byte(in.Type))
	b = binary.BigEndian.AppendUint16(b, uint16(in.Perm))
	b = binary.BigEndian.AppendUint32(b, in.UID)
	b = binary.BigEndian.AppendUint32(b, in.GID)
	b = binary.BigEndian.AppendUint64(b, uint64(in.Size))
	b = binary.BigEndian.AppendUint64(b, uint64(in.Atime))
	b = binary.BigEndian.AppendUint64(b, uint64(in.Mtime))
	b = binary.BigEndian.AppendUint64(b, uint64(in.Ctime))
	b = binary.BigEndian.AppendUint32(b, in.Nlink)
	b = in.ID.AppendBinary(b)
	b = binary.BigEndian.AppendUint64(b, uint64(in.File))
	b = binary.BigEndian.AppendUint16(b, uint16(len(in.DataLoc)))
	for _, d := range in.DataLoc {
		b = binary.BigEndian.AppendUint32(b, d)
	}
	return b
}

// DecodeInode parses the output of EncodeInode.
func DecodeInode(b []byte) (*Inode, error) {
	const fixed = 1 + 2 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 32 + 8 + 2
	if len(b) < fixed {
		return nil, fmt.Errorf("core: inode record too short (%d bytes)", len(b))
	}
	in := &Inode{}
	in.Type = FileType(b[0])
	in.Perm = Perm(binary.BigEndian.Uint16(b[1:]))
	in.UID = binary.BigEndian.Uint32(b[3:])
	in.GID = binary.BigEndian.Uint32(b[7:])
	in.Size = int64(binary.BigEndian.Uint64(b[11:]))
	in.Atime = int64(binary.BigEndian.Uint64(b[19:]))
	in.Mtime = int64(binary.BigEndian.Uint64(b[27:]))
	in.Ctime = int64(binary.BigEndian.Uint64(b[35:]))
	in.Nlink = binary.BigEndian.Uint32(b[43:])
	in.ID = DirIDFromBytes(b[47:])
	in.File = FileID(binary.BigEndian.Uint64(b[79:]))
	n := int(binary.BigEndian.Uint16(b[87:]))
	if len(b) < fixed+4*n {
		return nil, fmt.Errorf("core: inode record truncated data locations")
	}
	if n > 0 {
		in.DataLoc = make([]uint32, n)
		for i := 0; i < n; i++ {
			in.DataLoc[i] = binary.BigEndian.Uint32(b[fixed+4*i:])
		}
	}
	return in, nil
}

// EncodeDirEntry serializes a dentry value (the key carries the name; the
// value stores type and permissions, per Tab. 3).
func EncodeDirEntry(e DirEntry) []byte {
	b := make([]byte, 0, 3)
	b = append(b, byte(e.Type))
	b = binary.BigEndian.AppendUint16(b, uint16(e.Perm))
	return b
}

// DecodeDirEntry parses the output of EncodeDirEntry; the caller supplies the
// name recovered from the key.
func DecodeDirEntry(name string, b []byte) (DirEntry, error) {
	if len(b) < 3 {
		return DirEntry{}, fmt.Errorf("core: dentry record too short")
	}
	return DirEntry{Name: name, Type: FileType(b[0]), Perm: Perm(binary.BigEndian.Uint16(b[1:]))}, nil
}
