package core

import (
	"fmt"
	"sort"
)

// Placement maps metadata objects to servers with consistent hashing (§5.5).
// SwitchFS uses P/C separation: file and directory inodes are partitioned by
// hashing their (pid, name) key. Directories are placed by *fingerprint*, so
// an entire fingerprint group lands on one server — the invariant that keeps
// aggregation a single-destination protocol (§4.3).
//
// The ring lives on clients and servers; the switch routes only by
// fingerprint prefix and never consults it, which is why reconfiguration
// needs no switch changes (§5.5).
type Placement struct {
	vnodes  int
	servers []uint32 // sorted, the current member set
	ring    []ringPoint
}

type ringPoint struct {
	hash   uint64
	server uint32
}

// DefaultVNodes is the number of virtual nodes per server on the ring; high
// enough that per-file hashing balances within a few percent.
const DefaultVNodes = 128

// NewPlacement builds a ring over the given server ids.
func NewPlacement(servers []uint32, vnodes int) *Placement {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	p := &Placement{vnodes: vnodes}
	p.Reset(servers)
	return p
}

// Reset replaces the member set (cluster reconfiguration).
func (p *Placement) Reset(servers []uint32) {
	p.servers = append([]uint32(nil), servers...)
	sort.Slice(p.servers, func(i, j int) bool { return p.servers[i] < p.servers[j] })
	p.ring = p.ring[:0]
	for _, s := range p.servers {
		for v := 0; v < p.vnodes; v++ {
			h := splitmix64(uint64(s)<<32 | uint64(v) | 0xA5A5<<48)
			p.ring = append(p.ring, ringPoint{hash: h, server: s})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
}

// Servers returns the current member set in ascending order.
func (p *Placement) Servers() []uint32 { return append([]uint32(nil), p.servers...) }

// NumServers returns the member count.
func (p *Placement) NumServers() int { return len(p.servers) }

// locate finds the first ring point at or after h, wrapping.
func (p *Placement) locate(h uint64) uint32 {
	if len(p.ring) == 0 {
		panic("core: placement has no servers")
	}
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0
	}
	return p.ring[i].server
}

// OwnerOfFile returns the server owning the inode addressed by (pid, name) —
// per-file hashing (P/C separation). Files route through the fingerprint hash
// exactly like directories, so a file and a directory competing for the same
// (pid, name) land on the same server and the existence check is local.
func (p *Placement) OwnerOfFile(pid DirID, name string) uint32 {
	return p.OwnerOfFingerprint(FingerprintOf(pid, name))
}

// OwnerOfFingerprint returns the server owning every directory whose
// fingerprint is fp. Directory inodes (and their entry lists) are placed by
// fingerprint so that all members of a fingerprint group colocate.
func (p *Placement) OwnerOfFingerprint(fp Fingerprint) uint32 {
	return p.locate(splitmix64(uint64(fp) | 1<<62))
}

// OwnerOfDir places the directory identified by (pid, name): shorthand for
// OwnerOfFingerprint(FingerprintOf(pid, name)).
func (p *Placement) OwnerOfDir(pid DirID, name string) uint32 {
	return p.OwnerOfFingerprint(FingerprintOf(pid, name))
}

// OwnerOfKey routes by object type: directories by fingerprint, files by key
// hash.
func (p *Placement) OwnerOfKey(k Key, isDir bool) uint32 {
	if isDir {
		return p.OwnerOfDir(k.PID, k.Name)
	}
	return p.OwnerOfFile(k.PID, k.Name)
}

// GroupPlacement is the P/C-grouping ring used by Emulated-InfiniFS and
// IndexFS: every child inode and dentry of a directory is colocated with the
// directory (per-directory hashing), while directory inodes themselves are
// spread by their own key.
type GroupPlacement struct{ Placement }

// NewGroupPlacement builds the grouping variant over the same ring machinery.
func NewGroupPlacement(servers []uint32, vnodes int) *GroupPlacement {
	return &GroupPlacement{Placement: *NewPlacement(servers, vnodes)}
}

// OwnerOfChild places a child (file inode or dentry) of directory pid: it
// always lands on the directory's server — the source of the large-directory
// hotspot (§2.1).
func (g *GroupPlacement) OwnerOfChild(pid DirID) uint32 {
	return g.locate(splitmix64(pid[3] ^ pid[0]))
}

// String summarizes the ring for diagnostics.
func (p *Placement) String() string {
	return fmt.Sprintf("placement{%d servers × %d vnodes}", len(p.servers), p.vnodes)
}
