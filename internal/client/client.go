// Package client implements LibFS, the SwitchFS user-space client library
// (paper §4.2): path resolution over a directory-metadata cache with lazy
// invalidation, request routing by consistent hashing, switch-mediated
// directory reads, and UDP-style retransmission.
package client

import (
	"errors"
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/ring"
	"switchfs/internal/server"
	"switchfs/internal/trace"
	"switchfs/internal/wire"
)

// Config parameterizes a client.
type Config struct {
	ID env.NodeID
	// Ring is the shared versioned placement ring; a control-plane override
	// (directory migration) re-routes this client's next attempt without any
	// client-side notification — the ErrRetry from the old owner re-resolves
	// against the updated ring.
	Ring      *ring.Ring
	SwitchFor func(core.Fingerprint) env.NodeID
	// Coordinator handles rename and link.
	Coordinator env.NodeID
	Tracker     server.TrackerMode
	Costs       env.Costs
	// RetryTimeout and MaxRetries bound request retransmission.
	RetryTimeout env.Duration
	MaxRetries   int
	// DataRetryTimeout and DataMaxRetries bound data-node retransmission.
	// Zero values derive from RetryTimeout: data accesses queue behind
	// hundreds of microseconds of I/O plus a replication round, so the
	// data timeout scales the configured metadata timeout up rather than
	// ignoring it.
	DataRetryTimeout env.Duration
	DataMaxRetries   int
	// Trace records causal spans for this client's operations (nil: off).
	// Each op entry point opens a root span; retransmission rounds and
	// lookups nest under it, and the op's TraceCtx travels in every packet
	// the op sends. Ops that fail or exhaust their retries are flagged so
	// tail sampling always keeps them.
	Trace *trace.Recorder
}

// Client is one LibFS instance bound to an env node.
type Client struct {
	cfg  Config
	env  env.Env
	node *env.Node

	mu        sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the name cache; leaf section, never held across a park
	cache     map[string]cachedDir
	byID      map[core.DirID][]string
	invalSeen map[env.NodeID]uint64
	rpcSeq    uint64
	pending   map[uint64]*env.Future

	// Stats observable by harnesses.
	Lookups    uint64
	CacheHits  uint64
	Retries    uint64
	StaleRetry uint64
}

type cachedDir struct {
	ref  core.DirRef
	attr core.Attr
}

// New builds a client and registers its node. Clients have unlimited cores:
// client CPU is never the bottleneck in the paper's evaluation.
func New(e env.Env, cfg Config) *Client {
	if cfg.RetryTimeout == 0 {
		cfg.RetryTimeout = 2 * env.Millisecond
	}
	if cfg.MaxRetries == 0 {
		// Must outlast the worst-case server-side stall: an aggregation
		// participant holds a change-log lock for up to 100 retransmission
		// rounds before giving up (§5.4.1 recovery interplay).
		cfg.MaxRetries = 250
	}
	if cfg.DataRetryTimeout == 0 {
		cfg.DataRetryTimeout = 20 * cfg.RetryTimeout
	}
	if cfg.DataMaxRetries == 0 {
		cfg.DataMaxRetries = 8
	}
	// Maps are allocated lazily at their first write: nil-map reads are
	// valid Go, and at million-client scale an idle session's four empty
	// maps (cache, byID, invalSeen, pending) would dominate its footprint.
	c := &Client{cfg: cfg, env: e}
	c.node = e.AddNode(cfg.ID, env.NodeConfig{Handler: c.handle})
	return c
}

// ID returns the client's node id.
func (c *Client) ID() env.NodeID { return c.cfg.ID }

// handle completes pending calls with arriving responses.
func (c *Client) handle(p *env.Proc, from env.NodeID, msg any) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		return
	}
	rpc, rc := respInfo(pkt.Body)
	if rc != nil {
		c.applyInval(from, rc)
	}
	c.mu.Lock()
	fut := c.pending[rpc]
	c.mu.Unlock()
	if fut != nil {
		fut.Complete(pkt.Body)
	}
}

// respInfo extracts the rpc id and common fields from any response body.
func respInfo(m wire.Msg) (uint64, *wire.RespCommon) {
	switch b := m.(type) {
	case *wire.LookupResp:
		return b.RPC, &b.RespCommon
	case *wire.MutateResp:
		return b.RPC, &b.RespCommon
	case *wire.FileResp:
		return b.RPC, &b.RespCommon
	case *wire.DirReadResp:
		return b.RPC, &b.RespCommon
	case *wire.RenameResp:
		return b.RPC, &b.RespCommon
	case *wire.LinkResp:
		return b.RPC, &b.RespCommon
	case *wire.DataResp:
		return b.RPC, &b.RespCommon
	default:
		return 0, nil
	}
}

// applyInval drops cache entries named by piggybacked invalidation records
// (lazy invalidation, §5.2).
func (c *Client) applyInval(from env.NodeID, rc *wire.RespCommon) {
	if len(rc.Inval) == 0 {
		c.mu.Lock()
		c.noteInvalSeq(from, rc.InvalSeqHigh)
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	for _, e := range rc.Inval {
		for _, path := range c.byID[e.Dir] {
			delete(c.cache, path)
		}
		delete(c.byID, e.Dir)
	}
	c.noteInvalSeq(from, rc.InvalSeqHigh)
	c.mu.Unlock()
}

// noteInvalSeq records the highest invalidation sequence seen from a server,
// allocating the map on first write (callers hold c.mu).
func (c *Client) noteInvalSeq(from env.NodeID, seq uint64) {
	if seq > c.invalSeen[from] {
		if c.invalSeen == nil {
			c.invalSeen = make(map[env.NodeID]uint64)
		}
		c.invalSeen[from] = seq
	}
}

// invalidatePrefix drops every cached path at or under the given path
// (stale-cache retry). Matching is component-wise: invalidating /a drops
// /a and /a/b but not /ab — a raw string-prefix match would erase an
// unrelated sibling's cache entries.
func (c *Client) invalidatePrefix(prefix string) {
	c.mu.Lock()
	for path, e := range c.cache {
		if !underPath(path, prefix) {
			continue
		}
		delete(c.cache, path)
		paths := c.byID[e.ref.ID]
		for i, q := range paths {
			if q == path {
				c.byID[e.ref.ID] = append(paths[:i], paths[i+1:]...)
				break
			}
		}
		if len(c.byID[e.ref.ID]) == 0 {
			delete(c.byID, e.ref.ID)
		}
	}
	c.mu.Unlock()
}

// underPath reports whether path equals prefix or lies beneath it as a
// directory component (prefix "/" covers everything).
func underPath(path, prefix string) bool {
	for len(prefix) > 1 && prefix[len(prefix)-1] == '/' {
		prefix = prefix[:len(prefix)-1]
	}
	if prefix == "/" || path == prefix {
		return true
	}
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}

// ownerOfFP maps a fingerprint to its owner server node under the current
// ring (migration overrides included).
func (c *Client) ownerOfFP(fp core.Fingerprint) env.NodeID {
	return c.cfg.Ring.OwnerNode(fp)
}

// call sends one request and waits for its response, retransmitting on
// timeout. resent reports whether any retransmission happened (at-least-once
// semantics for mutations).
func (c *Client) call(p *env.Proc, dst env.NodeID, pkt *wire.Packet, rpc uint64) (wire.Msg, bool, error) {
	fut := env.NewFuture()
	c.mu.Lock()
	if c.pending == nil {
		c.pending = make(map[uint64]*env.Future)
	}
	c.pending[rpc] = fut
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, rpc)
		c.mu.Unlock()
	}()
	// Every (re)transmission carries the SAME context — the op span that is
	// ambient here — so a resent RPC joins its original trace and the
	// server-side spans of every delivery parent into one tree.
	pkt.Trace = p.TraceCtx()
	resent := false
	for try := 0; try < c.cfg.MaxRetries; try++ {
		att := c.cfg.Trace.Start(p, "attempt", "client")
		p.Send(dst, pkt)
		v, ok := fut.WaitTimeout(p, c.cfg.RetryTimeout)
		att.End()
		if ok {
			return v.(wire.Msg), resent, nil
		}
		resent = true
		c.Retries++
	}
	c.cfg.Trace.Flag(pkt.Trace.TraceID, "rpc-timeout")
	return nil, resent, core.ErrTimeout
}

// op opens a client root span for one operation entry point (nil-safe).
func (c *Client) op(p *env.Proc, name string) *trace.Handle {
	return c.cfg.Trace.StartAuto(p, "op:"+name, "client")
}

// endOp closes an op span, flagging the trace when the op failed so tail
// sampling always keeps errored ops for forensics.
func (c *Client) endOp(sp *trace.Handle, err error) {
	if err != nil {
		c.cfg.Trace.Flag(sp.TraceID(), "client-error")
	}
	sp.End()
}

// nextRPC allocates a request id.
func (c *Client) nextRPC() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rpcSeq++
	return c.rpcSeq
}

// reqCommon stamps the shared request fields.
func (c *Client) reqCommon(rpc uint64, dst env.NodeID, ancestors []core.DirID) wire.ReqCommon {
	c.mu.Lock()
	seen := c.invalSeen[dst]
	c.mu.Unlock()
	return wire.ReqCommon{RPC: rpc, Client: c.cfg.ID, InvalSeq: seen, Ancestors: ancestors}
}

// resolved is the output of path resolution for one target.
type resolved struct {
	parent    core.DirRef
	name      string
	ancestors []core.DirID
	path      string
}

// resolve walks the path's directories through the cache (§5.2.1 step 1),
// issuing lookups on misses. It returns the parent DirRef and the leaf name.
func (c *Client) resolve(p *env.Proc, path string) (resolved, error) {
	comps, err := core.SplitPath(path)
	if err != nil {
		return resolved{}, err
	}
	if len(comps) == 0 {
		return resolved{}, core.ErrInvalid
	}
	cur := core.RootRef()
	ancestors := []core.DirID{cur.ID}
	walked := ""
	for _, comp := range comps[:len(comps)-1] {
		walked += "/" + comp
		p.Compute(c.cfg.Costs.CacheLookup)
		c.mu.Lock()
		e, hit := c.cache[walked]
		c.mu.Unlock()
		if hit {
			c.CacheHits++
			cur = e.ref
			ancestors = append(ancestors, cur.ID)
			continue
		}
		ref, attr, err := c.lookupOne(p, cur, comp, ancestors)
		if err != nil {
			return resolved{}, err
		}
		c.mu.Lock()
		if c.cache == nil {
			c.cache = make(map[string]cachedDir)
			c.byID = make(map[core.DirID][]string)
		}
		c.cache[walked] = cachedDir{ref: ref, attr: attr}
		c.byID[ref.ID] = append(c.byID[ref.ID], walked)
		c.mu.Unlock()
		cur = ref
		ancestors = append(ancestors, cur.ID)
	}
	return resolved{parent: cur, name: comps[len(comps)-1], ancestors: ancestors, path: path}, nil
}

// lookupOne fetches one directory's metadata from its owner.
func (c *Client) lookupOne(p *env.Proc, parent core.DirRef, name string, ancestors []core.DirID) (core.DirRef, core.Attr, error) {
	c.Lookups++
	sp := c.cfg.Trace.Start(p, "lookup", "client")
	defer sp.End()
	key := core.Key{PID: parent.ID, Name: name}
	fp := key.Fingerprint()
	dst := c.ownerOfFP(fp)
	rpc := c.nextRPC()
	req := &wire.LookupReq{ReqCommon: c.reqCommon(rpc, dst, ancestors), Parent: parent.ID, Name: name}
	v, _, err := c.call(p, dst, &wire.Packet{Dst: dst, Origin: c.cfg.ID, Body: req}, rpc)
	if err != nil {
		return core.DirRef{}, core.Attr{}, err
	}
	resp := v.(*wire.LookupResp)
	if resp.Err != core.ErrnoOK {
		return core.DirRef{}, core.Attr{}, resp.Err.Err()
	}
	return core.DirRef{ID: resp.Dir, Key: key, FP: fp}, resp.Attr, nil
}

// withResolution runs fn with a resolved path, transparently refreshing the
// cache and retrying when a server reports the client's cached components
// stale (§5.2.1 "If invalid, ... invalidate stale cache entries and retry").
func (c *Client) withResolution(p *env.Proc, path string, fn func(r resolved) error) error {
	for attempt := 0; ; attempt++ {
		r, err := c.resolve(p, path)
		if err == nil {
			err = fn(r)
		}
		if errors.Is(err, core.ErrStaleCache) || errors.Is(err, core.ErrRetry) {
			if attempt >= 16 {
				return core.ErrTimeout
			}
			c.StaleRetry++
			c.invalidatePrefix("/")
			continue
		}
		return err
	}
}
