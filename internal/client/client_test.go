package client

import (
	"testing"

	"switchfs/internal/core"
)

// mkClient builds a bare client with a seeded cache (no environment needed:
// invalidation is pure map surgery).
func mkClient(paths ...string) *Client {
	c := &Client{
		cache: make(map[string]cachedDir),
		byID:  make(map[core.DirID][]string),
	}
	for i, p := range paths {
		ref := core.DirRef{ID: core.DirID{0, 0, 0, uint64(i + 1)}}
		c.cache[p] = cachedDir{ref: ref}
		c.byID[ref.ID] = append(c.byID[ref.ID], p)
	}
	return c
}

// TestInvalidatePrefixComponentWise: invalidating /a must drop /a and its
// descendants but NOT the sibling /ab — the old raw string-prefix match
// erased unrelated entries sharing a name prefix.
func TestInvalidatePrefixComponentWise(t *testing.T) {
	c := mkClient("/a", "/a/x", "/a/x/y", "/ab", "/ab/z", "/b")
	c.invalidatePrefix("/a")
	for _, gone := range []string{"/a", "/a/x", "/a/x/y"} {
		if _, ok := c.cache[gone]; ok {
			t.Errorf("%s survived invalidatePrefix(/a)", gone)
		}
	}
	for _, kept := range []string{"/ab", "/ab/z", "/b"} {
		if _, ok := c.cache[kept]; !ok {
			t.Errorf("%s was dropped by invalidatePrefix(/a) — raw prefix match", kept)
		}
	}
}

// TestInvalidatePrefixRoot: "/" (the stale-cache full flush) clears
// everything.
func TestInvalidatePrefixRoot(t *testing.T) {
	c := mkClient("/a", "/ab", "/b/c")
	c.invalidatePrefix("/")
	if len(c.cache) != 0 {
		t.Errorf("%d cache entries survived a root invalidation", len(c.cache))
	}
	if len(c.byID) != 0 {
		t.Errorf("%d byID entries survived a root invalidation", len(c.byID))
	}
}

// TestInvalidatePrefixKeepsByIDConsistent: every dropped path leaves byID,
// emptied id buckets are deleted, and surviving aliases (hard-linked or
// renamed directories cached under two paths) stay indexed.
func TestInvalidatePrefixKeepsByIDConsistent(t *testing.T) {
	c := mkClient("/a/x", "/b")
	// Alias /keep/x to the same directory id as /a/x.
	ref := c.cache["/a/x"].ref
	c.cache["/keep/x"] = cachedDir{ref: ref}
	c.byID[ref.ID] = append(c.byID[ref.ID], "/keep/x")

	c.invalidatePrefix("/a")
	paths := c.byID[ref.ID]
	if len(paths) != 1 || paths[0] != "/keep/x" {
		t.Errorf("byID[%v]=%v, want just /keep/x", ref.ID, paths)
	}
	bID := c.cache["/b"].ref.ID
	c.invalidatePrefix("/b")
	if _, ok := c.byID[bID]; ok {
		t.Errorf("emptied byID bucket for /b survived")
	}
}

// TestUnderPath pins the component-matching rule.
func TestUnderPath(t *testing.T) {
	cases := []struct {
		path, prefix string
		want         bool
	}{
		{"/a", "/a", true},
		{"/a/b", "/a", true},
		{"/ab", "/a", false},
		{"/ab/c", "/a", false},
		{"/a", "/a/", true},
		{"/a/b", "/", true},
		{"/a", "/a/b", false},
	}
	for _, cse := range cases {
		if got := underPath(cse.path, cse.prefix); got != cse.want {
			t.Errorf("underPath(%q, %q)=%v, want %v", cse.path, cse.prefix, got, cse.want)
		}
	}
}
