package client

import (
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/server"
	"switchfs/internal/wire"
)

// The public operation set. Every operation runs on a Proc (blocking until
// completion) and returns POSIX-style errors from internal/core.

// mutate drives the shared client half of create/delete/mkdir/rmdir.
func (c *Client) mutate(p *env.Proc, op core.Op, path string, perm core.Perm) (core.DirID, error) {
	out, _, err := c.mutateR(p, op, path, perm)
	return out, err
}

// mutateR is mutate, additionally reporting whether the final request round
// was retransmitted. A retried mutation is at-least-once: if a server crash
// discarded the RPC dedup cache between tries, the retry re-executes and the
// operation can observe its own earlier effect (EEXIST for create, ENOENT
// for delete) — fault harnesses need the flag to classify those outcomes.
func (c *Client) mutateR(p *env.Proc, op core.Op, path string, perm core.Perm) (core.DirID, bool, error) {
	sp := c.op(p, op.String())
	var out core.DirID
	var resent bool
	err := c.withResolution(p, path, func(r resolved) error {
		p.Compute(c.cfg.Costs.ClientOp)
		key := core.Key{PID: r.parent.ID, Name: r.name}
		dst := c.ownerOfFP(key.Fingerprint())
		rpc := c.nextRPC()
		req := &wire.MutateReq{
			ReqCommon: c.reqCommon(rpc, dst, r.ancestors),
			Op:        op,
			Parent:    r.parent,
			Name:      r.name,
			Perm:      perm,
		}
		v, re, err := c.call(p, dst, &wire.Packet{Dst: dst, Origin: c.cfg.ID, Body: req}, rpc)
		resent = resent || re
		if err != nil {
			return err
		}
		// Exactly-once across retransmission comes from the server-side
		// (client, RPC) dedup cache: a retried request replays the original
		// outcome rather than re-executing (§5.4.1). Only a server crash
		// that loses the cache can surface an operation's own earlier
		// effect as EEXIST/ENOENT.
		resp := v.(*wire.MutateResp)
		out = resp.Dir
		return resp.Err.Err()
	})
	c.endOp(sp, err)
	return out, resent, err
}

// CreateR is Create, reporting whether any retransmission happened.
func (c *Client) CreateR(p *env.Proc, path string, perm core.Perm) (bool, error) {
	_, resent, err := c.mutateR(p, core.OpCreate, path, perm)
	return resent, err
}

// DeleteR is Delete, reporting whether any retransmission happened.
func (c *Client) DeleteR(p *env.Proc, path string) (bool, error) {
	_, resent, err := c.mutateR(p, core.OpDelete, path, 0)
	return resent, err
}

// MkdirR is Mkdir, reporting whether any retransmission happened.
func (c *Client) MkdirR(p *env.Proc, path string, perm core.Perm) (bool, error) {
	_, resent, err := c.mutateR(p, core.OpMkdir, path, perm)
	return resent, err
}

// RmdirR is Rmdir, reporting whether any retransmission happened.
func (c *Client) RmdirR(p *env.Proc, path string) (bool, error) {
	_, resent, err := c.mutateR(p, core.OpRmdir, path, 0)
	if err == nil {
		c.invalidatePrefix(path)
	}
	return resent, err
}

// Create makes a regular file.
func (c *Client) Create(p *env.Proc, path string, perm core.Perm) error {
	_, err := c.mutate(p, core.OpCreate, path, perm)
	return err
}

// Delete unlinks a regular file.
func (c *Client) Delete(p *env.Proc, path string) error {
	_, err := c.mutate(p, core.OpDelete, path, 0)
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(p *env.Proc, path string, perm core.Perm) error {
	_, err := c.mutate(p, core.OpMkdir, path, perm)
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(p *env.Proc, path string) error {
	_, err := c.RmdirR(p, path)
	return err
}

// fileOp drives stat/open/close/chmod, reporting whether the final request
// round was retransmitted (chmod is a mutation; fault harnesses need the
// at-least-once flag).
func (c *Client) fileOp(p *env.Proc, op core.Op, path string, perm core.Perm) (core.Attr, []uint32, bool, error) {
	sp := c.op(p, op.String())
	var attr core.Attr
	var loc []uint32
	var resent bool
	err := c.withResolution(p, path, func(r resolved) error {
		p.Compute(c.cfg.Costs.ClientOp)
		key := core.Key{PID: r.parent.ID, Name: r.name}
		dst := c.ownerOfFP(key.Fingerprint())
		rpc := c.nextRPC()
		req := &wire.FileReq{
			ReqCommon: c.reqCommon(rpc, dst, r.ancestors),
			Op:        op,
			Parent:    r.parent,
			Name:      r.name,
			Perm:      perm,
		}
		v, re, err := c.call(p, dst, &wire.Packet{Dst: dst, Origin: c.cfg.ID, Body: req}, rpc)
		resent = resent || re
		if err != nil {
			return err
		}
		resp := v.(*wire.FileResp)
		attr = resp.Attr
		loc = resp.DataLoc
		return resp.Err.Err()
	})
	c.endOp(sp, err)
	return attr, loc, resent, err
}

// Stat reads a file's attributes.
func (c *Client) Stat(p *env.Proc, path string) (core.Attr, error) {
	a, _, _, err := c.fileOp(p, core.OpStat, path, 0)
	return a, err
}

// Open opens a file and returns its attributes and data locations.
func (c *Client) Open(p *env.Proc, path string) (core.Attr, []uint32, error) {
	a, loc, _, err := c.fileOp(p, core.OpOpen, path, 0)
	return a, loc, err
}

// Close closes a file.
func (c *Client) Close(p *env.Proc, path string) error {
	_, _, _, err := c.fileOp(p, core.OpClose, path, 0)
	return err
}

// Chmod updates a file's permissions.
func (c *Client) Chmod(p *env.Proc, path string, perm core.Perm) error {
	_, err := c.ChmodR(p, path, perm)
	return err
}

// ChmodR is Chmod, reporting whether any retransmission happened.
func (c *Client) ChmodR(p *env.Proc, path string, perm core.Perm) (bool, error) {
	_, _, resent, err := c.fileOp(p, core.OpChmod, path, perm)
	return resent, err
}

// dirRead drives statdir/readdir (§5.2.2): the request carries a dirty-set
// query through the switch so the owner learns the directory state with zero
// extra round trips.
func (c *Client) dirRead(p *env.Proc, op core.Op, path string) (core.Attr, []core.DirEntry, error) {
	sp := c.op(p, op.String())
	var attr core.Attr
	var entries []core.DirEntry
	if comps, err := core.SplitPath(path); err == nil && len(comps) == 0 {
		// The root directory needs no resolution.
		a, es, err := c.dirReadRef(p, op, core.RootRef(), nil)
		c.endOp(sp, err)
		return a, es, err
	}
	err := c.withResolution(p, path, func(r resolved) error {
		key := core.Key{PID: r.parent.ID, Name: r.name}
		// The DirRef's ID is resolved by the owner via its inode; the client
		// needs key and fingerprint for routing. A cached entry supplies the
		// ID when available.
		ref := core.DirRef{Key: key, FP: key.Fingerprint()}
		c.mu.Lock()
		if e, ok := c.cache[path]; ok {
			ref.ID = e.ref.ID
		}
		c.mu.Unlock()
		a, es, err := c.dirReadRef(p, op, ref, r.ancestors)
		attr, entries = a, es
		return err
	})
	c.endOp(sp, err)
	return attr, entries, err
}

// dirReadRef sends a directory read for an already-known DirRef, routing it
// through the switch for the dirty-set query unless the owner-tracker
// variant is active.
func (c *Client) dirReadRef(p *env.Proc, op core.Op, ref core.DirRef, ancestors []core.DirID) (core.Attr, []core.DirEntry, error) {
	p.Compute(c.cfg.Costs.ClientOp)
	owner := c.ownerOfFP(ref.FP)
	rpc := c.nextRPC()
	req := &wire.DirReadReq{
		ReqCommon: c.reqCommon(rpc, owner, ancestors),
		Op:        op,
		Dir:       ref,
	}
	pkt := &wire.Packet{Dst: owner, Origin: c.cfg.ID, Body: req}
	dst := owner
	if c.cfg.Tracker != server.TrackerOwner {
		pkt.DS = &wire.DSHeader{Op: wire.DSQuery, FP: ref.FP}
		dst = c.cfg.SwitchFor(ref.FP)
	}
	v, _, err := c.call(p, dst, pkt, rpc)
	if err != nil {
		return core.Attr{}, nil, err
	}
	resp := v.(*wire.DirReadResp)
	return resp.Attr, resp.Entries, resp.Err.Err()
}

// StatDir reads a directory's attributes.
func (c *Client) StatDir(p *env.Proc, path string) (core.Attr, error) {
	a, _, err := c.dirRead(p, core.OpStatDir, path)
	return a, err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(p *env.Proc, path string) ([]core.DirEntry, error) {
	_, es, err := c.dirRead(p, core.OpReadDir, path)
	return es, err
}

// twoPath drives rename and link through the coordinator, reporting whether
// the final request round was retransmitted (at-least-once ambiguity for the
// fault harnesses, like mutateR).
func (c *Client) twoPath(p *env.Proc, op core.Op, src, dst string) (bool, error) {
	sp := c.op(p, op.String())
	var resent bool
	err := c.withResolution(p, src, func(rs resolved) error {
		return c.withResolution(p, dst, func(rd resolved) error {
			p.Compute(c.cfg.Costs.ClientOp)
			anc := append(append([]core.DirID(nil), rs.ancestors...), rd.ancestors...)
			rpc := c.nextRPC()
			coord := c.cfg.Coordinator
			var body wire.Msg
			if op == core.OpRename {
				body = &wire.RenameReq{
					ReqCommon: c.reqCommon(rpc, coord, anc),
					SrcParent: rs.parent, SrcName: rs.name,
					DstParent: rd.parent, DstName: rd.name,
				}
			} else {
				body = &wire.LinkReq{
					ReqCommon: c.reqCommon(rpc, coord, anc),
					SrcParent: rs.parent, SrcName: rs.name,
					DstParent: rd.parent, DstName: rd.name,
				}
			}
			v, re, err := c.call(p, coord, &wire.Packet{Dst: coord, Origin: c.cfg.ID, Body: body}, rpc)
			resent = resent || re
			if err != nil {
				return err
			}
			rrpc, rc := respInfo(v)
			_ = rrpc
			if rc == nil {
				return core.ErrInvalid
			}
			return rc.Err.Err()
		})
	})
	c.endOp(sp, err)
	return resent, err
}

// Rename moves a file or directory.
func (c *Client) Rename(p *env.Proc, src, dst string) error {
	_, err := c.RenameR(p, src, dst)
	return err
}

// RenameR is Rename, reporting whether any retransmission happened.
func (c *Client) RenameR(p *env.Proc, src, dst string) (bool, error) {
	resent, err := c.twoPath(p, core.OpRename, src, dst)
	if err == nil {
		c.invalidatePrefix(src)
	}
	return resent, err
}

// Link creates a hard link dst pointing at src's file (§5.5).
func (c *Client) Link(p *env.Proc, src, dst string) error {
	_, err := c.LinkR(p, src, dst)
	return err
}

// LinkR is Link, reporting whether any retransmission happened.
func (c *Client) LinkR(p *env.Proc, src, dst string) (bool, error) {
	return c.twoPath(p, core.OpLink, src, dst)
}

// dataCall performs one data-node round trip. Data accesses queue behind
// hundreds of microseconds of I/O (plus a replication round), so the
// timeout scales from the session's configured retry policy instead of the
// raw metadata RPC timeout — retransmitting at metadata pace would trigger
// retransmit storms against a busy data node.
func (c *Client) dataCall(p *env.Proc, node env.NodeID, op core.Op, chunk wire.ChunkKey, bytes int64) (*wire.DataResp, error) {
	sp := c.op(p, op.String())
	rpc := c.nextRPC()
	req := &wire.DataReq{ReqCommon: c.reqCommon(rpc, node, nil), Op: op, Chunk: chunk, Bytes: bytes}
	fut := env.NewFuture()
	c.mu.Lock()
	if c.pending == nil {
		c.pending = make(map[uint64]*env.Future)
	}
	c.pending[rpc] = fut
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, rpc)
		c.mu.Unlock()
	}()
	// One packet, stamped once: retransmissions must join the original trace.
	pkt := &wire.Packet{Dst: node, Origin: c.cfg.ID, Body: req, Trace: p.TraceCtx()}
	for try := 0; try < c.cfg.DataMaxRetries; try++ {
		att := c.cfg.Trace.Start(p, "attempt", "client")
		p.Send(node, pkt)
		v, ok := fut.WaitTimeout(p, c.cfg.DataRetryTimeout)
		att.End()
		if ok {
			resp := v.(*wire.DataResp)
			err := resp.Err.Err()
			c.endOp(sp, err)
			return resp, err
		}
		c.Retries++
	}
	c.cfg.Trace.Flag(pkt.Trace.TraceID, "data-timeout")
	c.endOp(sp, core.ErrTimeout)
	return nil, core.ErrTimeout
}

// WriteChunk writes one content chunk to its primary data node. The ack —
// carrying the primary-assigned version — arrives only after the chunk is
// applied on the full replica set (§7.6 durability discipline).
func (c *Client) WriteChunk(p *env.Proc, node env.NodeID, chunk wire.ChunkKey, bytes int64) (uint64, error) {
	resp, err := c.dataCall(p, node, core.OpWrite, chunk, bytes)
	if err != nil {
		return 0, err
	}
	return resp.Ver, nil
}

// ReadChunk reads one content chunk from its primary data node, returning
// the stored version and length (version 0: never written — the empty
// read).
func (c *Client) ReadChunk(p *env.Proc, node env.NodeID, chunk wire.ChunkKey) (uint64, int64, error) {
	resp, err := c.dataCall(p, node, core.OpRead, chunk, 0)
	if err != nil {
		return 0, 0, err
	}
	return resp.Ver, resp.Bytes, nil
}

// Data performs a data-node read or write of one chunk (legacy
// shard-addressed surface of the end-to-end workloads, §7.6).
func (c *Client) Data(p *env.Proc, node env.NodeID, op core.Op, chunk wire.ChunkKey, bytes int64) error {
	_, err := c.dataCall(p, node, op, chunk, bytes)
	return err
}
