// Package wire defines the SwitchFS packet format (paper §6.1): an optional
// dirty-set operation header parsed by the programmable switch, followed by a
// DFS request or response processed by servers. Packets travel as Go values
// over the env network (the switch model parses the header fields exactly as
// the P4 parser would); the UDP daemons serialize them with the codec in
// marshal.go.
package wire

import (
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// DSOp selects the dirty-set operation encapsulated in a packet (§6.3).
type DSOp uint8

// Dirty-set operations.
const (
	// DSNone marks a regular packet (no dirty-set header); the switch
	// forwards it by destination MAC only.
	DSNone DSOp = iota
	// DSQuery asks whether the fingerprint is in the set; the switch writes
	// the answer into RET and forwards the packet to its destination.
	DSQuery
	// DSInsert adds the fingerprint; on success the switch multicasts the
	// packet to the client and the origin server, on overflow it rewrites
	// the destination to AltDst for synchronous fallback (§5.2.1).
	DSInsert
	// DSRemove deletes the fingerprint and multicasts the packet body to
	// every metadata server except the origin (aggregation fetch, §5.2.2).
	DSRemove
)

// DSHeader is the dirty-set operation header (Fig. 9: OP, RET, SEQ /
// alternative MAC, fingerprint).
type DSHeader struct {
	Op DSOp
	FP core.Fingerprint
	// Seq deduplicates retransmitted removes: the switch tracks the highest
	// Seq per origin and ignores stale removes (§5.4.1).
	Seq uint64
	// Ret carries the query result (or insert success) back in the packet.
	Ret bool
	// AltDst is the fallback L2 address used when an insert overflows.
	AltDst env.NodeID
}

// Packet is one SwitchFS datagram.
type Packet struct {
	// DS is the optional dirty-set header.
	DS *DSHeader
	// Dst is the final destination the switch forwards to (for DSQuery) —
	// the "router by MAC" path. Multicast destinations for DSInsert and
	// DSRemove are derived from the body and switch configuration.
	Dst env.NodeID
	// Origin is the node that built the packet.
	Origin env.NodeID
	// Trace is the causal tracing context the packet carries: the span the
	// sender was executing under when it built the packet. Receivers open
	// their handler spans as children of it, which is what links one client
	// op's hops — client, switch pipes, servers, WAL, data nodes — into a
	// single span tree. Zero when tracing is off or the work is untraced;
	// retransmissions reuse the packet and therefore the SAME context, so a
	// resent RPC joins its original trace instead of orphaning spans.
	Trace env.TraceCtx
	// Body is the DFS request/response.
	Body Msg
}

// Msg is implemented by every request/response body.
type Msg interface{ msg() }

// ReqCommon carries the fields every client request shares.
type ReqCommon struct {
	// RPC matches responses to requests and deduplicates retransmissions:
	// servers remember recently-executed (client, RPC) pairs.
	RPC uint64
	// Client is the reply address.
	Client env.NodeID
	// InvalSeq is the highest invalidation-list sequence number (per
	// contacted server) the client has consumed; the response piggybacks
	// newer entries (lazy invalidation, §5.2).
	InvalSeq uint64
	// Ancestors are the directory ids of every cached path component used
	// to route this request; the server validates them against its
	// invalidation list (§5.2.1 step 3).
	Ancestors []core.DirID
}

// RespCommon carries the fields every response shares.
type RespCommon struct {
	RPC uint64
	Err core.Errno
	// Inval are invalidation-list entries newer than the request's
	// InvalSeq; the client drops the named directories from its cache.
	Inval []InvalEntry
	// InvalSeqHigh is the server's current invalidation sequence.
	InvalSeqHigh uint64
}

// InvalEntry names a directory whose client-side cache entries are stale.
type InvalEntry struct {
	Seq uint64
	Dir core.DirID
}

// --- Path resolution -------------------------------------------------------

// LookupReq resolves one path component to directory metadata (cache miss
// path of §5.2.1 step 1).
type LookupReq struct {
	ReqCommon
	Parent core.DirID
	Name   string
}

// LookupResp returns the directory's metadata.
type LookupResp struct {
	RespCommon
	Dir  core.DirID
	Attr core.Attr
}

// --- Double-inode operations ------------------------------------------------

// MutateReq covers create, delete, mkdir, rmdir: the asynchronous
// double-inode operations (§5.2.1, §5.2.3). The request is addressed to the
// owner of the *target* inode.
type MutateReq struct {
	ReqCommon
	Op     core.Op
	Parent core.DirRef // the directory receiving the deferred update
	Name   string
	Perm   core.Perm
}

// MutateResp completes a double-inode operation. For asynchronous commits it
// is forwarded to the client by the switch (multicast leg 7a of Fig. 4).
type MutateResp struct {
	RespCommon
	// Dir is the id of a newly created directory (mkdir).
	Dir core.DirID
}

// --- Single-inode operations -------------------------------------------------

// FileReq covers stat, open, close, chmod on regular files — synchronous
// single-inode operations.
type FileReq struct {
	ReqCommon
	Op     core.Op
	Parent core.DirRef
	Name   string
	Perm   core.Perm // chmod
}

// FileResp returns file metadata.
type FileResp struct {
	RespCommon
	Attr    core.Attr
	DataLoc []uint32
}

// DirReadReq covers statdir and readdir (§5.2.2). It travels through the
// switch with a DSQuery header so the server learns the directory state
// without an extra round trip.
type DirReadReq struct {
	ReqCommon
	Op  core.Op
	Dir core.DirRef
}

// DirReadResp returns directory attributes and, for readdir, the entry list.
type DirReadResp struct {
	RespCommon
	Attr    core.Attr
	Entries []core.DirEntry
}

// --- Switch-mediated commit -----------------------------------------------

// CommitNotice is the body of a DSInsert packet. On success the switch
// multicasts it: the client leg completes the operation; the origin leg
// releases the server's locks (Fig. 4 steps 7a/7b). On overflow the switch
// rewrites the destination to the parent directory owner's address, which
// applies Update synchronously (§5.2.1 "If the insertion fails").
type CommitNotice struct {
	// Resp is delivered to the client on success.
	Resp *MutateResp
	// Client is the completion destination.
	Client env.NodeID
	// CommitID identifies the waiting commit context on the origin server.
	CommitID uint64
	// Update carries the directory's pending change-log for the synchronous
	// fallback path: flushing the whole log (not just the newest entry)
	// preserves per-name FIFO order and entry-count accounting.
	Update DirLog
	// MarkOnly is the owner-tracker variant (Fig. 16): the owner records
	// the directory as dirty instead of applying Update.
	MarkOnly bool
}

// CommitAck tells the origin server that commit CommitID finished its
// switch leg (success multicast or fallback application) and locks may be
// released. Applied reports the fallback path, in which case the origin marks
// the change-log entry applied instead of keeping it pending.
type CommitAck struct {
	CommitID uint64
	Applied  bool
}

// SyncApplyResp is unused on the fast path; the fallback owner acks with
// CommitAck and answers the client with Resp directly.

// --- Aggregation -------------------------------------------------------------

// AggFetch is the body of a DSRemove packet: the switch multicasts it to
// every other metadata server, asking for all change-log entries of the
// fingerprint group (§5.2.2 step 5).
type AggFetch struct {
	AggID uint64
	FP    core.Fingerprint
	Owner env.NodeID
	// Rmdir marks rmdir-triggered aggregations: receivers additionally
	// append the directory to their invalidation lists before replying
	// (§5.2.3 step 5).
	Rmdir bool
	Dir   core.DirID
}

// DirLog is one directory's pending entries in an aggregation reply or a
// proactive push.
type DirLog struct {
	Dir     core.DirRef
	Entries []core.LogEntry
}

// AggEntries is a server's reply to AggFetch: every pending change-log entry
// it holds for the fingerprint group.
type AggEntries struct {
	AggID uint64
	FP    core.Fingerprint
	From  env.NodeID
	Logs  []DirLog
}

// AggAck is the owner's multicast acknowledgment: senders mark the entries
// (up to MaxID per directory) applied in their WALs and drop them from their
// change-logs (§5.2.2 steps 9a/9b).
type AggAck struct {
	AggID uint64
	FP    core.Fingerprint
	// MaxIDs holds, per directory id, the largest entry ID applied.
	MaxIDs map[core.DirID]uint64
}

// --- Proactive aggregation ----------------------------------------------------

// ChangePush proactively ships a change-log to the directory owner when it
// fills an MTU or goes idle (§5.3). The owner buffers the entries and starts
// its quiesce timer.
type ChangePush struct {
	From env.NodeID
	Log  DirLog
	// Final marks pushes sent during server shutdown/recovery flushes.
	Final bool
}

// ChangePushAck lets the pushing server mark entries applied.
type ChangePushAck struct {
	Dir   core.DirID
	MaxID uint64
}

// --- Invalidation ---------------------------------------------------------

// InvalBroadcast tells every server to append directories to its
// invalidation list (rmdir, directory rename, chmod — §5.2).
type InvalBroadcast struct {
	From env.NodeID
	Dirs []core.DirID
}

// InvalAck acknowledges an invalidation broadcast.
type InvalAck struct {
	From env.NodeID
}

// --- Rename / hard links (2PC) ----------------------------------------------

// TxnOp is a participant-side action in a distributed transaction.
type TxnOp struct {
	// Kind selects the mutation.
	Kind TxnKind
	Key  core.Key
	// Inode is the value for puts.
	Inode []byte
	// Dir and Entry adjust a directory's attributes/entry list.
	Dir   core.DirRef
	Entry core.LogEntry
}

// TxnKind enumerates transaction mutations.
type TxnKind uint8

// Transaction mutation kinds.
const (
	// TxnPutInode writes an inode record.
	TxnPutInode TxnKind = iota + 1
	// TxnDelInode deletes an inode record.
	TxnDelInode
	// TxnDirUpdate applies a directory update (dentry + attrs) directly.
	TxnDirUpdate
	// TxnAdjustNlink adds Delta to a file attribute object's link count and
	// deletes it at zero.
	TxnAdjustNlink
	// TxnPutDentry writes one entry-list record of directory Dir (entry-list
	// migration during directory rename).
	TxnPutDentry
	// TxnDelDentries drops the whole entry list of directory Dir.
	TxnDelDentries
)

// ReadInodeReq reads a raw inode record (coordinator-side resolution during
// rename/link).
type ReadInodeReq struct {
	Ctl  uint64
	From env.NodeID
	Key  core.Key
}

// ReadInodeResp returns the record.
type ReadInodeResp struct {
	Ctl uint64
	Err core.Errno
	Raw []byte
}

// ScanDirReq reads a directory's entry list (entry-list migration). FP is the
// fingerprint of the directory's own key — the owner validates it against the
// ring so a scan routed under a stale placement retries instead of returning
// a partial (or vanished) entry list.
type ScanDirReq struct {
	Ctl  uint64
	From env.NodeID
	Dir  core.DirID
	FP   core.Fingerprint
}

// ScanDirResp returns the entries.
type ScanDirResp struct {
	Ctl     uint64
	Err     core.Errno
	Entries []core.DirEntry
}

// AggNowReq asks a directory owner to aggregate a fingerprint group now
// (directory rename pre-aggregation, §5.2).
type AggNowReq struct {
	Ctl  uint64
	From env.NodeID
	FP   core.Fingerprint
}

// AggNowResp confirms the aggregation ran. Incomplete reports that a peer
// stayed unreachable past the retry budget, so the aggregated state may
// miss its acknowledged entries (the caller must not build on it).
type AggNowResp struct {
	Ctl        uint64
	Incomplete bool
}

// TxnPrepare asks a participant to lock and validate its ops.
type TxnPrepare struct {
	Txn   uint64
	From  env.NodeID
	Ops   []TxnOp
	Check []TxnCheck
}

// TxnCheck is a validation predicate evaluated under the participant's locks.
type TxnCheck struct {
	Key core.Key
	// MustExist / MustNotExist validate presence.
	MustExist    bool
	MustNotExist bool
	// IsDir, when MustExist, additionally validates the object type.
	IsDir bool
}

// TxnVote is the participant's prepare answer.
type TxnVote struct {
	Txn  uint64
	From env.NodeID
	Err  core.Errno
}

// TxnDecision commits or aborts.
type TxnDecision struct {
	Txn    uint64
	Commit bool
}

// TxnDone acknowledges a decision.
type TxnDone struct {
	Txn  uint64
	From env.NodeID
}

// TxnStatusReq asks the coordinator for a prepared transaction's outcome —
// the participant-side termination protocol. A participant left in doubt
// (prepared, locks held, no decision) polls the coordinator; an incarnation
// with no record of the transaction answers abort (presumed abort).
type TxnStatusReq struct {
	Ctl  uint64
	From env.NodeID
	Txn  uint64
}

// TxnStatusResp carries the coordinator's answer. Pending means this
// incarnation is still deciding — keep waiting. Otherwise Commit is the
// decision (false for both aborted and unknown transactions).
type TxnStatusResp struct {
	Ctl     uint64
	Txn     uint64
	Commit  bool
	Pending bool
}

// RenameReq is routed to the rename coordinator (§5.2 "Rename").
type RenameReq struct {
	ReqCommon
	SrcParent core.DirRef
	SrcName   string
	DstParent core.DirRef
	DstName   string
}

// RenameResp completes a rename.
type RenameResp struct {
	RespCommon
}

// LinkReq creates a hard link (§5.5).
type LinkReq struct {
	ReqCommon
	SrcParent core.DirRef
	SrcName   string
	DstParent core.DirRef
	DstName   string
}

// LinkResp completes a link.
type LinkResp struct {
	RespCommon
}

// --- Recovery ----------------------------------------------------------------

// CloneInvalReq asks a peer for its invalidation list (server recovery,
// §5.4.2).
type CloneInvalReq struct {
	Ctl  uint64
	From env.NodeID
}

// CloneInvalResp returns the peer's invalidation list.
type CloneInvalResp struct {
	Ctl     uint64
	From    env.NodeID
	Seq     uint64
	Entries []InvalEntry
}

// FlushAllReq orders a server to aggregate every directory it owns (switch
// recovery and reconfiguration, §5.4.2/§5.5).
type FlushAllReq struct {
	Ctl uint64
}

// FlushAllResp confirms all aggregations completed.
type FlushAllResp struct {
	Ctl  uint64
	From env.NodeID
}

// --- Data access (end-to-end workloads, §7.6) -------------------------------

// ChunkKey names one stripe of one file's content on the data plane. File is
// the client-stable file hash (or the workload shard); Stripe indexes the
// stripe within the file. Striping spreads a file's chunks across data nodes
// via the DataLoc slots the metadata server assigns at create.
type ChunkKey struct {
	File   uint32
	Stripe uint32
}

// DataReq reads or writes one content chunk on its primary data node. The
// addressed node IS the chunk's primary; its backups are the next
// placement slots in ring order. Writes are acknowledged only after the
// replication factor is satisfied (primary + r−1 backups applied).
type DataReq struct {
	ReqCommon
	Op    core.Op // OpRead or OpWrite
	Chunk ChunkKey
	Bytes int64
}

// DataResp completes a data access. Ver is the chunk version the primary
// assigned (write) or currently stores (read; 0 for never-written chunks —
// the empty-file read). Bytes echoes the stored length on reads.
type DataResp struct {
	RespCommon
	Ver   uint64
	Bytes int64
}

// DataRepReq is the primary→backup replication leg of a chunk write: the
// backup applies the record iff Ver is newer than its copy (idempotent, so
// duplicated or reordered replication packets are harmless) and always acks.
type DataRepReq struct {
	// Seq matches acks to the primary's pending replication round.
	Seq  uint64
	From env.NodeID
	// Primary is the chunk's primary placement slot — recorded with the
	// replica so recovery can tell which node's stripes a record belongs to.
	Primary uint32
	Chunk   ChunkKey
	Ver     uint64
	Bytes   int64
}

// DataRepAck confirms one backup applied (or already held) a replicated
// chunk version.
type DataRepAck struct {
	Seq  uint64
	From env.NodeID
}

// ChunkRec is one chunk record in a recovery pull response.
type ChunkRec struct {
	Chunk   ChunkKey
	Ver     uint64
	Bytes   int64
	Primary uint32
}

// DataPullReq asks a peer data node for every chunk record whose replica
// set includes the requesting node's slot (re-replication after a
// fail-stop: the restarted node's volatile store is empty).
type DataPullReq struct {
	Ctl  uint64
	From env.NodeID
	// Slot is the requester's placement slot.
	Slot uint32
}

// DataPullResp returns the matching chunk records, sorted by chunk key so
// recovery is deterministic.
type DataPullResp struct {
	Ctl    uint64
	From   env.NodeID
	Chunks []ChunkRec
}

func (*LookupReq) msg()      {}
func (*LookupResp) msg()     {}
func (*MutateReq) msg()      {}
func (*MutateResp) msg()     {}
func (*FileReq) msg()        {}
func (*FileResp) msg()       {}
func (*DirReadReq) msg()     {}
func (*DirReadResp) msg()    {}
func (*CommitNotice) msg()   {}
func (*CommitAck) msg()      {}
func (*AggFetch) msg()       {}
func (*AggEntries) msg()     {}
func (*AggAck) msg()         {}
func (*ChangePush) msg()     {}
func (*ChangePushAck) msg()  {}
func (*InvalBroadcast) msg() {}
func (*InvalAck) msg()       {}
func (*TxnPrepare) msg()     {}
func (*TxnVote) msg()        {}
func (*TxnDecision) msg()    {}
func (*TxnDone) msg()        {}
func (*TxnStatusReq) msg()   {}
func (*TxnStatusResp) msg()  {}
func (*RenameReq) msg()      {}
func (*RenameResp) msg()     {}
func (*LinkReq) msg()        {}
func (*LinkResp) msg()       {}
func (*CloneInvalReq) msg()  {}
func (*CloneInvalResp) msg() {}
func (*FlushAllReq) msg()    {}
func (*FlushAllResp) msg()   {}
func (*ReadInodeReq) msg()   {}
func (*ReadInodeResp) msg()  {}
func (*ScanDirReq) msg()     {}
func (*ScanDirResp) msg()    {}
func (*AggNowReq) msg()      {}
func (*AggNowResp) msg()     {}
func (*DataReq) msg()        {}
func (*DataResp) msg()       {}
func (*DataRepReq) msg()     {}
func (*DataRepAck) msg()     {}
func (*DataPullReq) msg()    {}
func (*DataPullResp) msg()   {}
