package kv_test

// Tests for the sharded + interned representation behind the Store API:
// group-shard routing, name/value interning, ordered merges across the
// conforming/fallback split, and the O(1) group CountPrefix.

import (
	"bytes"
	"fmt"
	"testing"

	"switchfs/internal/core"
	"switchfs/internal/kv"
)

// dirID returns a distinct 32-byte directory id.
func dirID(i byte) core.DirID {
	var id core.DirID
	id[0] = uint64(i)
	return id
}

// schemaKey builds a conforming tag+id+'/'+name key.
func schemaKey(tag byte, id core.DirID, name string) []byte {
	k := make([]byte, 0, 34+len(name))
	k = append(k, tag)
	k = id.AppendBinary(k)
	k = append(k, '/')
	return append(k, name...)
}

// TestShardedOrdering interleaves conforming keys from several groups with
// non-conforming fallback keys and checks that full scans and ranges still
// come back in global byte order.
func TestShardedOrdering(t *testing.T) {
	s := kv.New()
	var want [][]byte
	// Fallback keys that sort before ('A'...), between ('e'-tag groups vs
	// 'i'-tag groups), and after ('z'...) the schema groups. One is exactly
	// 34 bytes without the '/' so it exercises the near-conforming shape.
	fallback := [][]byte{
		[]byte("A-first"),
		[]byte("f-between-tags"),
		[]byte("z-last"),
		bytes.Repeat([]byte{'f'}, 34),
	}
	for _, k := range fallback {
		s.Put(k, []byte("fb"))
		want = append(want, k)
	}
	for _, tag := range []byte{'e', 'i'} {
		for _, d := range []byte{1, 3, 2} {
			for _, name := range []string{"b", "a", "c/nested", ""} {
				k := schemaKey(tag, dirID(d), name)
				s.Put(k, []byte{tag, d})
				want = append(want, k)
			}
		}
	}
	sortByteSlices(want)

	var got [][]byte
	s.Scan(nil, func(k, _ []byte) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("key %d: got %q want %q", i, got[i], want[i])
		}
	}

	// Range over a window that starts inside one group and ends inside
	// another must honor the same global order.
	lo, hi := want[3], want[len(want)-3]
	var ranged [][]byte
	s.Range(lo, hi, func(k, _ []byte) bool {
		ranged = append(ranged, append([]byte(nil), k...))
		return true
	})
	wantRange := want[3 : len(want)-3]
	if len(ranged) != len(wantRange) {
		t.Fatalf("range returned %d keys, want %d", len(ranged), len(wantRange))
	}
	for i := range wantRange {
		if !bytes.Equal(ranged[i], wantRange[i]) {
			t.Fatalf("range key %d: got %q want %q", i, ranged[i], wantRange[i])
		}
	}
}

// TestSameNameAcrossGroups stores the same component name under many
// directories — the interned-name case — and checks the values stay
// distinct per key.
func TestSameNameAcrossGroups(t *testing.T) {
	s := kv.New()
	const groups = 64
	for d := 0; d < groups; d++ {
		k := schemaKey('i', dirID(byte(d)), "shared-name")
		s.Put(k, []byte(fmt.Sprintf("val-%d", d)))
	}
	if s.Len() != groups {
		t.Fatalf("Len = %d, want %d", s.Len(), groups)
	}
	for d := 0; d < groups; d++ {
		v, ok := s.Get(schemaKey('i', dirID(byte(d)), "shared-name"))
		if !ok || string(v) != fmt.Sprintf("val-%d", d) {
			t.Fatalf("group %d: got %q ok=%v", d, v, ok)
		}
	}
}

// TestValueInterningShares checks that equal small values stored under
// different keys alias the same backing array through GetView, and that
// overwriting one key does not disturb the other.
func TestValueInterningShares(t *testing.T) {
	s := kv.New()
	val := []byte("identical-small-record")
	k1 := schemaKey('i', dirID(1), "a")
	k2 := schemaKey('i', dirID(2), "b")
	s.Put(k1, val)
	s.Put(k2, val)

	v1, ok1 := s.GetView(k1)
	v2, ok2 := s.GetView(k2)
	if !ok1 || !ok2 {
		t.Fatal("missing keys")
	}
	if &v1[0] != &v2[0] {
		t.Error("equal small values should share one backing array")
	}
	// The stored value must be a copy, not an alias of the caller's slice.
	val[0] = 'X'
	if v, _ := s.Get(k1); v[0] == 'X' {
		t.Error("store aliases the caller's value slice")
	}

	// Overwriting k1 must leave k2 intact (values are replaced, never
	// mutated in place).
	s.Put(k1, []byte("changed"))
	if v, _ := s.Get(k2); string(v) != "identical-small-record" {
		t.Errorf("overwrite of k1 disturbed k2: %q", v)
	}
}

// TestLargeValuesNotShared checks values above the interning bound are
// independent copies.
func TestLargeValuesNotShared(t *testing.T) {
	s := kv.New()
	val := bytes.Repeat([]byte{7}, 4096)
	k1, k2 := []byte("big/one"), []byte("big/two")
	s.Put(k1, val)
	s.Put(k2, val)
	v1, _ := s.GetView(k1)
	v2, _ := s.GetView(k2)
	if &v1[0] == &v2[0] {
		t.Error("large values must not be interned")
	}
}

// TestGetViewNoCopy pins the GetView contract on the sharded store: the view
// aliases store memory (same backing array across two calls) while Get
// returns a fresh copy each time.
func TestGetViewNoCopy(t *testing.T) {
	s := kv.New()
	k := schemaKey('i', dirID(9), "node")
	s.Put(k, []byte("payload"))
	v1, _ := s.GetView(k)
	v2, _ := s.GetView(k)
	if &v1[0] != &v2[0] {
		t.Error("GetView should return the stored slice, not a copy")
	}
	c1, _ := s.Get(k)
	c2, _ := s.Get(k)
	if &c1[0] == &c2[0] {
		t.Error("Get should return a fresh copy")
	}
}

// TestGroupCountPrefix checks the O(1) whole-group count agrees with a
// counting scan as entries come and go.
func TestGroupCountPrefix(t *testing.T) {
	s := kv.New()
	id := dirID(5)
	prefix := core.EntryPrefix(id)
	if got := s.CountPrefix(prefix); got != 0 {
		t.Fatalf("empty group count = %d", got)
	}
	for i := 0; i < 10; i++ {
		s.Put(schemaKey('e', id, fmt.Sprintf("f%d", i)), []byte{1})
	}
	// Same names in another group must not leak into the count.
	for i := 0; i < 7; i++ {
		s.Put(schemaKey('e', dirID(6), fmt.Sprintf("f%d", i)), []byte{1})
	}
	if got := s.CountPrefix(prefix); got != 10 {
		t.Fatalf("group count = %d, want 10", got)
	}
	scanned := 0
	s.Scan(prefix, func(_, _ []byte) bool { scanned++; return true })
	if scanned != 10 {
		t.Fatalf("scan count = %d, want 10", scanned)
	}
	for i := 0; i < 10; i++ {
		s.Delete(schemaKey('e', id, fmt.Sprintf("f%d", i)))
	}
	if got := s.CountPrefix(prefix); got != 0 {
		t.Fatalf("drained group count = %d", got)
	}
}

// TestScanAfterDeleteAndReinsert mutates a group between ordered reads so
// the lazily rebuilt suffix index is exercised.
func TestScanAfterDeleteAndReinsert(t *testing.T) {
	s := kv.New()
	id := dirID(8)
	for _, n := range []string{"a", "b", "c", "d"} {
		s.Put(schemaKey('e', id, n), []byte(n))
	}
	collect := func() string {
		out := ""
		s.Scan(core.EntryPrefix(id), func(k, _ []byte) bool {
			out += string(k[34:]) + ","
			return true
		})
		return out
	}
	if got := collect(); got != "a,b,c,d," {
		t.Fatalf("initial order %q", got)
	}
	s.Delete(schemaKey('e', id, "b"))
	if got := collect(); got != "a,c,d," {
		t.Fatalf("after delete %q", got)
	}
	s.Put(schemaKey('e', id, "ba"), []byte("x"))
	if got := collect(); got != "a,ba,c,d," {
		t.Fatalf("after reinsert %q", got)
	}
}

// TestScanPrefixInsideGroup scans with a prefix longer than the group prefix
// (group + name prefix) and checks only matching suffixes come back.
func TestScanPrefixInsideGroup(t *testing.T) {
	s := kv.New()
	id := dirID(2)
	for _, n := range []string{"ab", "abc", "abd", "b", "aa"} {
		s.Put(schemaKey('e', id, n), []byte(n))
	}
	var got []string
	s.Scan(schemaKey('e', id, "ab"), func(k, v []byte) bool {
		got = append(got, string(v))
		return true
	})
	want := []string{"ab", "abc", "abd"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func sortByteSlices(b [][]byte) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && bytes.Compare(b[j], b[j-1]) < 0; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}
