// Package kv implements the ordered in-memory key-value store backing each
// metadata server — the stand-in for RocksDB in async-write mode (paper
// §7.1). Keys follow the metadata schema of Tab. 3 (a one-byte table tag, a
// 32-byte directory id, a '/' separator, and a component name), so the store
// shards by that 34-byte group prefix: each directory's records live in
// their own small map, component names are interned once per server instead
// of once per dentry per map, and small values (dentry records, identical
// preloaded inodes) are deduplicated. Ordered prefix scans — directory entry
// lists enumerate children with one scan — are served from per-shard sorted
// indexes rebuilt lazily after mutations. Keys outside the schema shape
// (tests, baseline directory records) fall back to a flat shard that merges
// into scans in global byte order, so the external contract is unchanged: a
// byte-ordered map with prefix scans.
package kv

import (
	"bytes"
	"sort"
	"strings"
	"sync"
)

// groupLen is the length of the schema's group prefix: tag byte + 32-byte
// directory id + '/'.
const groupLen = 34

// Value-interning bounds: values no longer than internValMax bytes are
// deduplicated through a table capped at internValCap distinct values (the
// cap stops a stream of unique values from doubling its own footprint).
const (
	internValMax = 128
	internValCap = 1 << 16
)

// conforming reports whether key has the tag+id+'/' group shape. A key
// matching this shape always lives in its group shard, and a key that does
// not can never match a conforming prefix, so the two populations partition
// cleanly.
func conforming(key []byte) bool {
	return len(key) >= groupLen && key[groupLen-1] == '/'
}

// shard holds one group's records: suffix (component name) → value. order is
// the sorted live suffix list backing scans; it is dropped on structural
// changes and rebuilt on the next ordered read.
type shard struct {
	m     map[string][]byte
	order []string
}

func newShard() *shard { return &shard{m: make(map[string][]byte)} }

// ensureOrder returns the sorted suffix list, rebuilding it if a mutation
// invalidated it. The map iteration feeds a sort, so the randomized order
// never escapes.
func (sh *shard) ensureOrder() []string {
	if sh.order == nil {
		order := make([]string, 0, len(sh.m))
		for name := range sh.m {
			order = append(order, name)
		}
		sort.Strings(order)
		sh.order = order
	}
	return sh.order
}

// Store is a sorted key-value map safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	shards map[string]*shard
	// fallback holds non-conforming keys (full key as the suffix).
	fallback *shard
	// prefixes is the sorted shard-prefix list; nil after a shard is added.
	prefixes []string
	// names interns suffixes: a component name is stored once per server no
	// matter how many directories (or tables) repeat it. The table is
	// append-only — deleting every key carrying a name does not free it —
	// which is the right trade for a metadata server whose working set of
	// names recurs.
	names map[string]string
	// vals interns small values (≤ internValMax bytes, ≤ internValCap
	// distinct): dentry records and freshly-created inodes repeat a handful
	// of byte patterns across millions of keys.
	vals map[string][]byte
	n    int
}

// New creates an empty store.
func New() *Store {
	return &Store{
		shards:   make(map[string]*shard),
		fallback: newShard(),
		names:    make(map[string]string),
		vals:     make(map[string][]byte),
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// intern returns the canonical string for b, adding it to the name table on
// first sight.
func (s *Store) intern(b []byte) string {
	if v, ok := s.names[string(b)]; ok {
		return v
	}
	v := string(b)
	s.names[v] = v
	return v
}

// internVal returns a stored copy of val, deduplicated when small. Stored
// values are never mutated in place (Put installs a fresh value), so sharing
// one slice across keys is safe.
func (s *Store) internVal(val []byte) []byte {
	if len(val) == 0 {
		return nil
	}
	if len(val) <= internValMax {
		if v, ok := s.vals[string(val)]; ok {
			return v
		}
		v := append([]byte(nil), val...)
		if len(s.vals) < internValCap {
			s.vals[string(v)] = v
		}
		return v
	}
	return append([]byte(nil), val...)
}

// lookup finds the shard and suffix for key without allocating. A nil shard
// means the key cannot be present.
func (s *Store) lookup(key []byte) (*shard, []byte) {
	if conforming(key) {
		return s.shards[string(key[:groupLen])], key[groupLen:]
	}
	return s.fallback, key
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh, suffix := s.lookup(key)
	if sh == nil {
		return nil, false
	}
	v, ok := sh.m[string(suffix)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// GetView returns the value stored under key without copying. The returned
// slice aliases store memory — possibly shared with other keys holding an
// equal small value: the caller must not mutate it and must not retain it
// across a Put/Delete of the same key — decode immediately.
func (s *Store) GetView(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh, suffix := s.lookup(key)
	if sh == nil {
		return nil, false
	}
	v, ok := sh.m[string(suffix)]
	return v, ok
}

// Has reports key presence without copying the value.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh, suffix := s.lookup(key)
	if sh == nil {
		return false
	}
	_, ok := sh.m[string(suffix)]
	return ok
}

// Put stores a copy of val under key, overwriting any previous value. It
// reports whether the key was newly inserted.
func (s *Store) Put(key, val []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sh *shard
	var suffix []byte
	if conforming(key) {
		sh = s.shards[string(key[:groupLen])]
		if sh == nil {
			sh = newShard()
			s.shards[string(key[:groupLen])] = sh
			s.prefixes = nil
		}
		suffix = key[groupLen:]
	} else {
		sh, suffix = s.fallback, key
	}
	name := s.intern(suffix)
	_, existed := sh.m[name]
	sh.m[name] = s.internVal(val)
	if !existed {
		sh.order = nil
		s.n++
	}
	return !existed
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, suffix := s.lookup(key)
	if sh == nil {
		return false
	}
	if _, ok := sh.m[string(suffix)]; !ok {
		return false
	}
	delete(sh.m, string(suffix))
	sh.order = nil
	s.n--
	return true
}

// Scan calls fn for every live (key, value) with the given prefix, in key
// order, until fn returns false. The callback receives scratch key storage
// and internal value slices valid only for the duration of the call: it must
// not retain or mutate them.
func (s *Store) Scan(prefix []byte, fn func(key, val []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.scanLocked(prefix, fn)
}

func (s *Store) scanLocked(prefix []byte, fn func(key, val []byte) bool) {
	if len(prefix) >= groupLen && prefix[groupLen-1] == '/' {
		// A conforming prefix selects exactly one shard (non-conforming keys
		// can never match it).
		sh := s.shards[string(prefix[:groupLen])]
		if sh == nil {
			return
		}
		rest := string(prefix[groupLen:])
		order := sh.ensureOrder()
		start := sort.SearchStrings(order, rest)
		buf := make([]byte, 0, groupLen+64)
		buf = append(buf, prefix[:groupLen]...)
		for _, name := range order[start:] {
			if !strings.HasPrefix(name, rest) {
				return
			}
			buf = append(buf[:groupLen], name...)
			if !fn(buf, sh.m[name]) {
				return
			}
		}
		return
	}
	s.iterateLocked(prefix, prefixSuccessor(prefix), fn)
}

// CountPrefix returns the number of keys with the given prefix. Counting a
// whole group — the directory-emptiness check — is O(1).
func (s *Store) CountPrefix(prefix []byte) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(prefix) == groupLen && prefix[groupLen-1] == '/' {
		if sh := s.shards[string(prefix)]; sh != nil {
			return len(sh.m)
		}
		return 0
	}
	c := 0
	s.scanLocked(prefix, func(_, _ []byte) bool { c++; return true })
	return c
}

// Range calls fn for every live pair in [lo, hi) in key order until fn
// returns false. A nil hi means "to the end". Key/value slices follow the
// Scan contract.
func (s *Store) Range(lo, hi []byte, fn func(key, val []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.iterateLocked(lo, hi, fn)
}

// Clear drops every key (crash simulation: a server's volatile state is
// lost).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = make(map[string]*shard)
	s.fallback = newShard()
	s.prefixes = nil
	s.names = make(map[string]string)
	s.vals = make(map[string][]byte)
	s.n = 0
}

// ensurePrefixes returns the sorted shard-prefix list (map iteration feeds a
// sort; the randomized order never escapes).
func (s *Store) ensurePrefixes() []string {
	if s.prefixes == nil {
		ps := make([]string, 0, len(s.shards))
		for p := range s.shards {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		s.prefixes = ps
	}
	return s.prefixes
}

// cmpSB compares a string with a byte slice lexicographically without
// allocating.
func cmpSB(a string, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// prefixSuccessor returns the smallest byte string greater than every string
// starting with prefix, or nil when no bound exists.
func prefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			end := append([]byte(nil), prefix[:i+1]...)
			end[i]++
			return end
		}
	}
	return nil
}

// iterateLocked walks [lo, hi) in global byte order: group shards in prefix
// order (each in suffix order) merged two ways with the fallback shard.
// Distinct group prefixes have equal length, so prefix order totally orders
// the shards' disjoint key ranges; only the fallback interleaves.
func (s *Store) iterateLocked(lo, hi []byte, fn func(key, val []byte) bool) {
	fb := s.fallback.ensureOrder()
	fi := 0
	if len(lo) > 0 {
		fi = sort.Search(len(fb), func(i int) bool { return cmpSB(fb[i], lo) >= 0 })
	}
	buf := make([]byte, 0, 128)
	// drainFallback emits fallback keys below limit (nil: no limit) and
	// below hi; it reports whether iteration should continue.
	drainFallback := func(limit []byte) bool {
		for fi < len(fb) {
			k := fb[fi]
			if limit != nil && cmpSB(k, limit) >= 0 {
				return true
			}
			if hi != nil && cmpSB(k, hi) >= 0 {
				fi = len(fb)
				return true
			}
			buf = append(buf[:0], k...)
			fi++
			if !fn(buf, s.fallback.m[k]) {
				return false
			}
		}
		return true
	}
	key := make([]byte, 0, 128)
	for _, p := range s.ensurePrefixes() {
		if hi != nil && cmpSB(p, hi) >= 0 {
			break
		}
		sh := s.shards[p]
		if len(sh.m) == 0 {
			continue
		}
		start := 0
		if len(lo) > 0 {
			switch {
			case len(lo) >= groupLen && string(lo[:groupLen]) == p:
				// lo falls inside this shard: binary-search the suffixes.
				start = sort.SearchStrings(sh.ensureOrder(), string(lo[groupLen:]))
			case cmpSB(p, lo) < 0:
				// Every key extends p; lo is not an extension of p and sorts
				// above it, so the whole shard precedes lo.
				continue
			}
		}
		order := sh.ensureOrder()
		for _, name := range order[start:] {
			key = append(append(key[:0], p...), name...)
			if hi != nil && bytes.Compare(key, hi) >= 0 {
				drainFallback(nil)
				return
			}
			if !drainFallback(key) {
				return
			}
			if !fn(key, sh.m[name]) {
				return
			}
		}
	}
	drainFallback(nil)
}
