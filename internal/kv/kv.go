// Package kv implements the ordered in-memory key-value store backing each
// metadata server — the stand-in for RocksDB in async-write mode (paper
// §7.1). It is a concurrent skiplist with byte-ordered keys and prefix scans;
// directory entry lists rely on the ordering to enumerate children with one
// scan (schema of Tab. 3).
package kv

import (
	"bytes"
	"math/rand"
	"sync"
)

const maxLevel = 20

type node struct {
	key  []byte
	val  []byte
	next []*node
	dead bool // tombstone under delete; removed from index immediately
}

// Store is a sorted key-value map safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	head *node
	rnd  *rand.Rand
	n    int
	// height is the tallest live tower; searches skip the empty levels
	// above it instead of walking all maxLevel lists every probe.
	height int
}

// New creates an empty store. The level generator is seeded deterministically
// so simulated runs are reproducible.
func New() *Store {
	return &Store{
		head: &node{next: make([]*node, maxLevel)},
		rnd:  rand.New(rand.NewSource(0x5FD1)),
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// randLevel picks a tower height with P(level ≥ k) = 4^-k.
func (s *Store) randLevel() int {
	lvl := 1
	for lvl < maxLevel && s.rnd.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findPred fills pred[i] with the rightmost node at level i whose key is
// strictly less than key, for i below the store's current height. Caller
// holds at least the read lock.
func (s *Store) findPred(key []byte, pred *[maxLevel]*node) *node {
	x := s.head
	top := s.height
	if top == 0 {
		top = 1
	}
	for i := top - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		pred[i] = x
	}
	return x.next[0]
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pred [maxLevel]*node
	n := s.findPred(key, &pred)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false
	}
	return append([]byte(nil), n.val...), true
}

// GetView returns the value stored under key without copying. The returned
// slice aliases store memory: the caller must not mutate it and must not
// retain it across a Put/Delete of the same key — decode immediately.
func (s *Store) GetView(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pred [maxLevel]*node
	n := s.findPred(key, &pred)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false
	}
	return n.val, true
}

// Has reports key presence without copying the value.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pred [maxLevel]*node
	n := s.findPred(key, &pred)
	return n != nil && bytes.Equal(n.key, key)
}

// Put stores a copy of val under a copy of key, overwriting any previous
// value. It reports whether the key was newly inserted.
func (s *Store) Put(key, val []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pred [maxLevel]*node
	n := s.findPred(key, &pred)
	if n != nil && bytes.Equal(n.key, key) {
		n.val = append([]byte(nil), val...)
		return false
	}
	lvl := s.randLevel()
	nn := &node{
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), val...),
		next: make([]*node, lvl),
	}
	for lvl > s.height {
		pred[s.height] = s.head
		s.height++
	}
	for i := 0; i < lvl; i++ {
		nn.next[i] = pred[i].next[i]
		pred[i].next[i] = nn
	}
	s.n++
	return true
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pred [maxLevel]*node
	n := s.findPred(key, &pred)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if pred[i].next[i] == n {
			pred[i].next[i] = n.next[i]
		}
	}
	n.dead = true
	s.n--
	return true
}

// Scan calls fn for every live (key, value) with the given prefix, in key
// order, until fn returns false. The callback receives the store's internal
// slices and must not retain or mutate them.
func (s *Store) Scan(prefix []byte, fn func(key, val []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pred [maxLevel]*node
	n := s.findPred(prefix, &pred)
	for n != nil && bytes.HasPrefix(n.key, prefix) {
		if !fn(n.key, n.val) {
			return
		}
		n = n.next[0]
	}
}

// CountPrefix returns the number of keys with the given prefix.
func (s *Store) CountPrefix(prefix []byte) int {
	c := 0
	s.Scan(prefix, func(_, _ []byte) bool { c++; return true })
	return c
}

// Range calls fn for every live pair in [lo, hi) in key order until fn
// returns false. A nil hi means "to the end".
func (s *Store) Range(lo, hi []byte, fn func(key, val []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pred [maxLevel]*node
	n := s.findPred(lo, &pred)
	for n != nil && (hi == nil || bytes.Compare(n.key, hi) < 0) {
		if !fn(n.key, n.val) {
			return
		}
		n = n.next[0]
	}
}

// Clear drops every key (crash simulation: a server's volatile state is
// lost).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.head = &node{next: make([]*node, maxLevel)}
	s.n = 0
	s.height = 0
}
