package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("empty store returned a value")
	}
	if !s.Put([]byte("a"), []byte("1")) {
		t.Fatal("first Put not reported as insert")
	}
	if s.Put([]byte("a"), []byte("2")) {
		t.Fatal("overwrite reported as insert")
	}
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "2" {
		t.Fatalf("got %q %v", v, ok)
	}
	if !s.Delete([]byte("a")) {
		t.Fatal("Delete missed existing key")
	}
	if s.Delete([]byte("a")) {
		t.Fatal("Delete of absent key reported true")
	}
	if s.Len() != 0 {
		t.Fatalf("Len=%d, want 0", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put([]byte("k"), []byte("abc"))
	v, _ := s.Get([]byte("k"))
	v[0] = 'X'
	v2, _ := s.Get([]byte("k"))
	if string(v2) != "abc" {
		t.Fatalf("internal value mutated: %q", v2)
	}
}

func TestScanOrderAndPrefix(t *testing.T) {
	s := New()
	keys := []string{"dir/b", "dir/a", "dir/c", "other/x", "dir2/z"}
	for _, k := range keys {
		s.Put([]byte(k), []byte(k))
	}
	var got []string
	s.Scan([]byte("dir/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"dir/a", "dir/b", "dir/c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan got %v, want %v", got, want)
	}
	if n := s.CountPrefix([]byte("dir/")); n != 3 {
		t.Fatalf("CountPrefix=%d", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), nil)
	}
	n := 0
	s.Scan([]byte("k"), func(k, v []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestRange(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), nil)
	}
	var got []string
	s.Range([]byte("k03"), []byte("k07"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 4 || got[0] != "k03" || got[3] != "k06" {
		t.Fatalf("range got %v", got)
	}
}

func TestClear(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), nil)
	}
	s.Clear()
	if s.Len() != 0 || s.Has([]byte("k1")) {
		t.Fatal("Clear left data behind")
	}
}

// TestMatchesReferenceModel drives random ops against the skiplist and a
// plain map and compares every observation.
func TestMatchesReferenceModel(t *testing.T) {
	s := New()
	ref := map[string]string{}
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%03d", rnd.Intn(500))
		switch rnd.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			ins := s.Put([]byte(k), []byte(v))
			_, had := ref[k]
			if ins == had {
				t.Fatalf("Put(%q) insert=%v but had=%v", k, ins, had)
			}
			ref[k] = v
		case 2:
			del := s.Delete([]byte(k))
			_, had := ref[k]
			if del != had {
				t.Fatalf("Delete(%q)=%v but had=%v", k, del, had)
			}
			delete(ref, k)
		case 3:
			v, ok := s.Get([]byte(k))
			rv, rok := ref[k]
			if ok != rok || (ok && string(v) != rv) {
				t.Fatalf("Get(%q)=%q,%v want %q,%v", k, v, ok, rv, rok)
			}
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len=%d, ref=%d", s.Len(), len(ref))
	}
	// Full scan must be sorted and match the reference exactly.
	var keys []string
	s.Scan(nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Fatal("scan not sorted")
	}
	if len(keys) != len(ref) {
		t.Fatalf("scan saw %d keys, ref has %d", len(keys), len(ref))
	}
}

// Property: for any key set, scanning with any prefix returns exactly the
// sorted subset carrying that prefix.
func TestScanPrefixProperty(t *testing.T) {
	f := func(keys [][]byte, prefix []byte) bool {
		if len(prefix) > 4 {
			prefix = prefix[:4]
		}
		s := New()
		set := map[string]bool{}
		for _, k := range keys {
			s.Put(k, nil)
			set[string(k)] = true
		}
		var want []string
		for k := range set {
			if bytes.HasPrefix([]byte(k), prefix) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		var got []string
		s.Scan(prefix, func(k, _ []byte) bool {
			got = append(got, string(k))
			return true
		})
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("g%d-%d", g, i%100))
				switch i % 3 {
				case 0:
					s.Put(k, k)
				case 1:
					s.Get(k)
				case 2:
					s.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkPut(b *testing.B) {
	s := New()
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(keys[i%len(keys)], keys[i%len(keys)])
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%04d", i))
		s.Put(keys[i], keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(keys[i%len(keys)])
	}
}
