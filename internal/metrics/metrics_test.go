package metrics

import (
	"reflect"
	"testing"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Inc("y")
	r.SetGauge("g", 5)
	r.Observe("h", 1)
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot: %v", snap)
	}
}

func TestSnapshotAndDelta(t *testing.T) {
	r := New()
	r.Add("server.0.ops", 10)
	r.SetGauge("dirty.entries", 3)
	before := r.Snapshot()
	r.Add("server.0.ops", 5)
	r.Inc("server.1.ops")
	d := Delta(before, r.Snapshot())
	// The unchanged gauge subtracts to zero and is dropped from the delta.
	want := map[string]uint64{"server.0.ops": 5, "server.1.ops": 1}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("delta %v, want %v", d, want)
	}
}

func TestHistogramSnapshotKeys(t *testing.T) {
	r := New()
	for i := 1; i <= 100; i++ {
		r.Observe("lat", float64(i))
	}
	snap := r.Snapshot()
	if snap["lat.n"] != 100 || snap["lat.p50"] != 50 || snap["lat.p99"] != 99 {
		t.Fatalf("histogram snapshot %v", snap)
	}
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("names %v", names)
	}
}
