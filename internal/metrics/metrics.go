// Package metrics is a small deterministic metrics registry: named counters,
// gauges, and virtual-time histograms. Everything it stores derives from
// virtual time and deterministic protocol counters, so snapshots are a pure
// function of the simulation seed and can be carried into bench rows and
// compared byte-for-byte across runs.
//
// The registry is collection-oriented, not hot-path-oriented: subsystems
// keep their own cheap structured counters (server.Stats, datanode.Stats,
// switch tallies) and pour them into a Registry at snapshot points
// (figures.runOn, fsctl trace). Per-directory tallies — the hotspot signal
// the auto-rebalance roadmap item needs — are the one exception: servers
// feed them during the run, keyed by directory, and FillFrom-style dumps
// surface the hottest entries.
//
// A nil *Registry is a valid disabled registry: every method no-ops.
package metrics

import (
	"sort"
	"sync"

	"switchfs/internal/stats"
)

// Registry holds named metrics.
type Registry struct {
	mu       sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the metric tables; leaf section, never held across a park
	counters map[string]uint64
	gauges   map[string]uint64
	hists    map[string]*stats.Hist
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]uint64),
		hists:    make(map[string]*stats.Hist),
	}
}

// Add increments a counter.
func (r *Registry) Add(name string, delta uint64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments a counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// SetGauge records a point-in-time value (last write wins).
func (r *Registry) SetGauge(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe adds a sample (virtual nanoseconds, typically) to a histogram.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &stats.Hist{}
		r.hists[name] = h
	}
	h.Add(v)
	r.mu.Unlock()
}

// Snapshot flattens the registry into one name→value map: counters and
// gauges as-is, histograms as <name>.n / <name>.p50 / <name>.p99 (sample
// values truncated to uint64). The map is a copy.
func (r *Registry) Snapshot() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters)+len(r.gauges)+3*len(r.hists))
	for k, v := range r.counters {
		out[k] = v
	}
	for k, v := range r.gauges {
		out[k] = v
	}
	for k, h := range r.hists {
		if h.N() == 0 {
			continue
		}
		out[k+".n"] = uint64(h.N())
		out[k+".p50"] = uint64(h.Percentile(0.5))
		out[k+".p99"] = uint64(h.Percentile(0.99))
	}
	return out
}

// Delta returns after-minus-before for every key of after, dropping zeros.
// Non-monotonic keys (gauges, percentiles) fall back to their after value
// when subtraction would underflow. Used to attribute one shared registry's
// growth to the figure that ran in between snapshots.
func Delta(before, after map[string]uint64) map[string]uint64 {
	if len(after) == 0 {
		return nil
	}
	out := make(map[string]uint64)
	for k, v := range after {
		if b, ok := before[k]; ok && b <= v {
			v -= b
		}
		if v != 0 {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Names returns every metric name in the registry, sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
