package workload

import (
	"fmt"

	"switchfs/internal/env"
	"switchfs/internal/fsapi"
	"switchfs/internal/stats"
)

// OpenCfg configures an open-loop run: a population of sessions that each
// issue one operation, think for Think of virtual time, and repeat. Unlike
// the closed loop (Run), a session costs no goroutine while thinking — its
// continuation is parked on the simulator's event queue (env.SpawnAfter) —
// so the population can scale to millions while the worker pool stays at the
// in-flight level (roughly Sessions × service-time / Think).
type OpenCfg struct {
	// Sessions is the live client-session population.
	Sessions int
	// OpsPerSession bounds each session's operation count.
	OpsPerSession int
	// Clients is the client-node pool sessions are spread over.
	Clients int
	// Think is the virtual idle time between a session's operations. Session
	// starts are staggered across one think window so arrivals spread evenly.
	Think env.Duration
	// Seed makes generation deterministic.
	Seed int64
	Gen  Gen
}

// OpenResult aggregates an open-loop run.
type OpenResult struct {
	Ops  int
	Errs int
	// Elapsed is first-issue to last-completion; Drained additionally covers
	// deferred background work (change-log pushes and aggregations).
	Elapsed env.Duration
	Drained env.Duration
	// Lat holds operation latencies in nanoseconds.
	Lat *stats.Hist
	// Workers is the peak pooled-worker count — the simulator's witness that
	// idle sessions were not holding goroutine stacks.
	Workers int
}

// ThroughputOps returns sustained ops/second of virtual time over the
// drained window.
func (r OpenResult) ThroughputOps() float64 {
	d := r.Drained
	if d < r.Elapsed {
		d = r.Elapsed
	}
	if d <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(d) / 1e9)
}

// RunOpen executes an open-loop workload to completion on the simulator. The
// caller owns cluster construction and preloading. The system must expose
// client node ids (ClientID) so session continuations can be scheduled on
// their owning nodes.
func RunOpen(sim *env.Sim, sys fsapi.System, cfg OpenCfg) OpenResult {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Think <= 0 {
		cfg.Think = env.Millisecond
	}
	type nodeIDer interface {
		ClientID(i int) env.NodeID
	}
	ni, ok := sys.(nodeIDer)
	if !ok {
		panic("workload: system does not expose ClientID")
	}
	res := OpenResult{Lat: &stats.Hist{}}
	start := sim.Now()
	var end, drainedAt env.Time
	done := 0
	allDone := env.NewFuture()
	for w := 0; w < cfg.Sessions; w++ {
		w := w
		ci := w % cfg.Clients
		fs := sys.ClientFS(ci)
		node := ni.ClientID(ci)
		rnd := newRand(cfg.Seed + int64(w)*7919)
		i := 0
		var step func(p *env.Proc)
		step = func(p *env.Proc) {
			call := cfg.Gen(rnd, w, i)
			t0 := p.Now()
			err := Apply(p, fs, call)
			res.Lat.Add(float64(p.Now() - t0))
			res.Ops++
			if err != nil {
				res.Errs++
			}
			i++
			if i < cfg.OpsPerSession {
				sim.SpawnAfter(node, cfg.Think, step)
				return
			}
			done++
			if t := p.Now(); t > end {
				end = t
			}
			if done == cfg.Sessions {
				allDone.Complete(nil)
			}
		}
		sim.SpawnAfter(node, env.Duration(w)*cfg.Think/env.Duration(cfg.Sessions), step)
	}
	spawnOn(sim, sys, 0, func(p *env.Proc) {
		allDone.Wait(p)
		sys.Drain(p)
		drainedAt = p.Now()
	})
	sim.Run()
	if done != cfg.Sessions {
		panic(fmt.Sprintf("workload: only %d/%d sessions finished (simulation deadlock?)", done, cfg.Sessions))
	}
	res.Elapsed = end - start
	res.Drained = drainedAt - start
	res.Workers = sim.WorkerCount() //detlint:ignore dettaint -- pool high-water is a pure function of the seed under the token-passing scheduler (trace-smoke gates it)
	return res
}
