package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"switchfs/internal/core"
)

// MixEntry weights one operation class in a trace-derived mix.
type MixEntry struct {
	Op     core.Op
	Weight float64
	// Data attaches a data-node access of this size to the op (§7.6 replays
	// with data access enabled).
	Data      int64
	DataWrite bool
}

// Mix is a weighted operation mix.
type Mix []MixEntry

// PanguMix reproduces the operation ratios of Alibaba's deployed PanguFS
// traces (Tab. 2 / Tab. 5 "Data Center Services"): 52.6% open/close, 12.4%
// stat, 9.58% create, 11.9% delete, 9.3% file rename, 0.1% chmod, 3.9%
// readdir, 0.2% statdir. Data access is omitted, as in the paper.
func PanguMix() Mix {
	return Mix{
		{Op: core.OpOpen, Weight: 26.3},
		{Op: core.OpClose, Weight: 26.3},
		{Op: core.OpStat, Weight: 12.4},
		{Op: core.OpCreate, Weight: 9.58},
		{Op: core.OpDelete, Weight: 11.9},
		{Op: core.OpRename, Weight: 9.3},
		{Op: core.OpChmod, Weight: 0.1},
		{Op: core.OpReadDir, Weight: 3.9},
		{Op: core.OpStatDir, Weight: 0.2},
	}
}

// CNNTrainingMix reproduces the CV-training trace ratios (Tab. 5): the
// lifecycle of an ImageNet-class dataset of ~small files grouped into 1000
// directories — download (create+write), access (open/stat/read), removal.
func CNNTrainingMix(fileBytes int64) Mix {
	return Mix{
		{Op: core.OpOpen, Weight: 21.4},
		{Op: core.OpClose, Weight: 21.4},
		{Op: core.OpStat, Weight: 21.4},
		{Op: core.OpRead, Weight: 14.2, Data: fileBytes},
		{Op: core.OpWrite, Weight: 7.1, Data: fileBytes, DataWrite: true},
		{Op: core.OpCreate, Weight: 7.1},
		{Op: core.OpDelete, Weight: 7.1},
		{Op: core.OpMkdir, Weight: 0.1},
		{Op: core.OpRmdir, Weight: 0.1},
		{Op: core.OpStatDir, Weight: 0.1},
		{Op: core.OpReadDir, Weight: 0.1},
	}
}

// ThumbnailMix reproduces the thumbnail-generation trace (Tab. 5): reading
// ~1M images and creating thumbnails.
func ThumbnailMix(fileBytes int64) Mix {
	return Mix{
		{Op: core.OpOpen, Weight: 21.95},
		{Op: core.OpClose, Weight: 21.95},
		{Op: core.OpStat, Weight: 21.9},
		{Op: core.OpRead, Weight: 12.2, Data: fileBytes},
		{Op: core.OpWrite, Weight: 10.9, Data: fileBytes, DataWrite: true},
		{Op: core.OpCreate, Weight: 10.9},
		{Op: core.OpMkdir, Weight: 0.1},
		{Op: core.OpStatDir, Weight: 0.05},
		{Op: core.OpReadDir, Weight: 0.05},
	}
}

// mixWorkerState tracks per-worker created names so deletes and renames
// target files that exist.
type mixWorkerState struct {
	created []string
	seq     int
}

// Gen compiles the mix into a generator over the namespace. With skew, 80%
// of operations target 20% of the directories (§7.6).
func (m Mix) Gen(ns Namespace, skew bool) Gen {
	total := 0.0
	for _, e := range m {
		total += e.Weight
	}
	var mu sync.Mutex
	states := make(map[int]*mixWorkerState)
	stateOf := func(w int) *mixWorkerState {
		mu.Lock()
		defer mu.Unlock()
		st := states[w]
		if st == nil {
			st = &mixWorkerState{}
			states[w] = st
		}
		return st
	}
	return func(rnd *rand.Rand, w, i int) OpCall {
		st := stateOf(w)
		x := rnd.Float64() * total
		var e MixEntry
		for _, cand := range m {
			if x < cand.Weight {
				e = cand
				break
			}
			x -= cand.Weight
		}
		if e.Op == 0 {
			e = m[0]
		}
		dir := ns.Dirs[rnd.Intn(len(ns.Dirs))]
		if skew {
			dir = ns.zipfDir(rnd)
		}
		switch e.Op {
		case core.OpCreate, core.OpMkdir:
			st.seq++
			path := fmt.Sprintf("%s/w%d-m%d", dir, w, st.seq)
			if e.Op == core.OpCreate {
				st.created = append(st.created, path)
			}
			return OpCall{Op: e.Op, Path: path, Data: e.Data, DataWrite: true}
		case core.OpDelete:
			if n := len(st.created); n > 0 {
				path := st.created[n-1]
				st.created = st.created[:n-1]
				return OpCall{Op: core.OpDelete, Path: path}
			}
			// Nothing of ours to delete yet: create instead (trace replay
			// warms up the same way).
			st.seq++
			path := fmt.Sprintf("%s/w%d-m%d", dir, w, st.seq)
			st.created = append(st.created, path)
			return OpCall{Op: core.OpCreate, Path: path}
		case core.OpRmdir:
			st.seq++
			// mkdir+rmdir pairs keep the namespace stable.
			return OpCall{Op: core.OpMkdir, Path: fmt.Sprintf("%s/d-w%d-m%d", dir, w, st.seq)}
		case core.OpRename:
			if n := len(st.created); n > 0 {
				src := st.created[n-1]
				st.seq++
				dst := fmt.Sprintf("%s/w%d-r%d", dir, w, st.seq)
				st.created[n-1] = dst
				return OpCall{Op: core.OpRename, Path: src, Path2: dst}
			}
			st.seq++
			path := fmt.Sprintf("%s/w%d-m%d", dir, w, st.seq)
			st.created = append(st.created, path)
			return OpCall{Op: core.OpCreate, Path: path}
		case core.OpStatDir, core.OpReadDir:
			return OpCall{Op: e.Op, Path: dir}
		case core.OpRead, core.OpWrite:
			return OpCall{Op: e.Op, Path: dir, Data: e.Data, Shard: rnd.Intn(64)}
		default: // stat/open/close/chmod target existing files
			f := rnd.Intn(maxInt(ns.FilesPerDir, 1))
			return OpCall{Op: e.Op, Path: fmt.Sprintf("%s/f%d", dir, f),
				Data: e.Data, DataWrite: e.DataWrite, Shard: rnd.Intn(64)}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
