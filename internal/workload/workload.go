// Package workload generates the namespaces, operation mixes, skew patterns
// and bursts of the paper's evaluation (§7), and drives them against any
// system implementing fsapi.System under the simulated environment.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
	"switchfs/internal/stats"
)

// OpCall is one generated operation.
type OpCall struct {
	Op    core.Op
	Path  string
	Path2 string // rename destination
	// Data, when nonzero, follows the metadata op with a data access of this
	// many bytes (end-to-end workloads, §7.6).
	Data      int64
	DataWrite bool
	// Shard spreads data accesses over the data nodes.
	Shard int
}

// Gen produces the i-th operation of a worker.
type Gen func(rnd *rand.Rand, worker, i int) OpCall

// smSource is a splitmix64 rand.Source64: statistically strong for workload
// draws and ~free to seed, unlike the default source's 607-word warm-up
// (which dominated the profile of figure harnesses that stand up thousands
// of short-lived workers).
type smSource struct{ s uint64 }

func (g *smSource) Uint64() uint64 {
	g.s += 0x9E3779B97F4A7C15
	x := g.s
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
func (g *smSource) Int63() int64    { return int64(g.Uint64() >> 1) }
func (g *smSource) Seed(seed int64) { g.s = uint64(seed) }

// newRand builds a worker's deterministic generator.
func newRand(seed int64) *rand.Rand { return rand.New(&smSource{s: uint64(seed)}) }

// pathf assembles "<dir>/<parts...>" without fmt: path generation runs once
// per simulated operation and sat high in the allocation profile.
func pathf(dir string, parts ...any) string {
	b := make([]byte, 0, len(dir)+24)
	b = append(b, dir...)
	b = append(b, '/')
	for _, part := range parts {
		switch v := part.(type) {
		case string:
			b = append(b, v...)
		case int:
			b = strconv.AppendInt(b, int64(v), 10)
		}
	}
	return string(b)
}

// RunCfg configures a closed-loop run.
type RunCfg struct {
	// Workers is the number of concurrent in-flight requests (the paper
	// stresses servers with up to 512).
	Workers int
	// OpsPerWorker bounds each worker's operation count.
	OpsPerWorker int
	// Clients is the client-node pool to spread workers over.
	Clients int
	// Seed makes generation deterministic.
	Seed int64
	Gen  Gen
}

// Result aggregates a run.
type Result struct {
	Ops  int
	Errs int
	// Elapsed is the closed-loop window (first issue to last completion);
	// Drained additionally covers background work the operations deferred
	// (change-log pushes and aggregations). Sustained throughput uses
	// Drained: deferred work is still work the servers must absorb.
	Elapsed env.Duration
	Drained env.Duration
	// Lat holds per-op-class latency histograms (nanoseconds).
	Lat map[core.Op]*stats.Hist
	// All merges every class.
	All *stats.Hist
}

// ThroughputOps returns sustained ops/second of virtual time: completed
// operations over the drained window, so systems cannot look fast by letting
// deferred work pile up unapplied.
func (r Result) ThroughputOps() float64 {
	d := r.Drained
	if d < r.Elapsed {
		d = r.Elapsed
	}
	if d <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(d) / 1e9)
}

// PeakOps returns ops/second over the closed-loop window only.
func (r Result) PeakOps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Elapsed) / 1e9)
}

// Run executes the workload to completion on the simulator and returns
// aggregate results. The caller owns cluster construction and preloading.
func Run(sim *env.Sim, sys fsapi.System, cfg RunCfg) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	res := Result{Lat: make(map[core.Op]*stats.Hist), All: &stats.Hist{}}
	start := sim.Now()
	var end, drainedAt env.Time
	done := 0
	allDone := env.NewFuture()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		fs := sys.ClientFS(w % cfg.Clients)
		rnd := newRand(cfg.Seed + int64(w)*7919)
		// Spawn on the owning client's node: the adapter knows its node via
		// the FS implementation; workers piggyback on client node ids by
		// running on the simulator's registered nodes through the FS calls.
		spawnOn(sim, sys, w%cfg.Clients, func(p *env.Proc) {
			for i := 0; i < cfg.OpsPerWorker; i++ {
				call := cfg.Gen(rnd, w, i)
				t0 := p.Now()
				err := Apply(p, fs, call)
				dt := float64(p.Now() - t0)
				h := res.Lat[call.Op]
				if h == nil {
					h = &stats.Hist{}
					res.Lat[call.Op] = h
				}
				h.Add(dt)
				res.All.Add(dt)
				res.Ops++
				if err != nil {
					res.Errs++
				}
			}
			done++
			if t := p.Now(); t > end {
				end = t
			}
			if done == cfg.Workers {
				allDone.Complete(nil)
			}
		})
	}
	// The drainer immediately flushes deferred work when the load ends, so
	// the sustained window excludes timer dead-air but includes the backlog.
	spawnOn(sim, sys, 0, func(p *env.Proc) {
		allDone.Wait(p)
		sys.Drain(p)
		drainedAt = p.Now()
	})
	sim.Run()
	if done != cfg.Workers {
		panic(fmt.Sprintf("workload: only %d/%d workers finished (simulation deadlock?)", done, cfg.Workers))
	}
	res.Elapsed = end - start
	res.Drained = drainedAt - start
	return res
}

// Apply executes one OpCall against an FS.
func Apply(p *env.Proc, fs fsapi.FS, call OpCall) error {
	var err error
	switch call.Op {
	case core.OpCreate:
		err = fs.Create(p, call.Path)
	case core.OpDelete:
		err = fs.Delete(p, call.Path)
	case core.OpMkdir:
		err = fs.Mkdir(p, call.Path)
	case core.OpRmdir:
		err = fs.Rmdir(p, call.Path)
	case core.OpStat:
		_, err = fs.Stat(p, call.Path)
	case core.OpOpen:
		_, err = fs.Open(p, call.Path)
	case core.OpClose:
		err = fs.Close(p, call.Path)
	case core.OpChmod:
		err = fs.Chmod(p, call.Path, 0o644)
	case core.OpStatDir:
		_, err = fs.StatDir(p, call.Path)
	case core.OpReadDir:
		_, err = fs.ReadDir(p, call.Path)
	case core.OpRename:
		err = fs.Rename(p, call.Path, call.Path2)
	case core.OpLink:
		err = fs.Link(p, call.Path, call.Path2)
	case core.OpRead:
		if call.Data > 0 {
			err = fs.Data(p, call.Shard, false, call.Data)
		}
	case core.OpWrite:
		if call.Data > 0 {
			err = fs.Data(p, call.Shard, true, call.Data)
		}
	default:
		err = core.ErrInvalid
	}
	if call.Data > 0 && call.Op != core.OpRead && call.Op != core.OpWrite {
		if derr := fs.Data(p, call.Shard, call.DataWrite, call.Data); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// Program materializes the deterministic operation lists Run would issue:
// one per worker, drawn with the same per-worker seeding (seed + w*7919).
// Checking harnesses replay programs op by op (recording each result)
// instead of running the closed loop; the same gen and seed always produce
// the same program. Stateful generators (Mix.Gen) accumulate per-worker
// state across draws — pass a freshly-built gen, not one that has already
// been sampled.
func Program(gen Gen, seed int64, workers, opsPerWorker int) [][]OpCall {
	prog := make([][]OpCall, workers)
	for w := range prog {
		rnd := newRand(seed + int64(w)*7919)
		ops := make([]OpCall, opsPerWorker)
		for i := range ops {
			ops[i] = gen(rnd, w, i)
		}
		prog[w] = ops
	}
	return prog
}

// spawnOn starts a worker process on client i's env node. Cluster adapters
// register client nodes; we locate them via the system-specific hook.
func spawnOn(sim *env.Sim, sys fsapi.System, i int, fn func(p *env.Proc)) {
	type spawner interface {
		SpawnClient(i int, fn func(p *env.Proc))
	}
	if sp, ok := sys.(spawner); ok {
		sp.SpawnClient(i, fn)
		return
	}
	panic("workload: system does not expose SpawnClient")
}

// --- namespaces ---------------------------------------------------------------

// Namespace describes the preloaded directory tree.
type Namespace struct {
	Dirs        []string
	FilesPerDir int
}

// SingleDir is the "a single very large directory" namespace (§7.2.1): files
// in one shared directory.
func SingleDir(files int) Namespace {
	return Namespace{Dirs: []string{"/shared"}, FilesPerDir: files}
}

// MultiDir is the "multiple directories" namespace: files uniformly spread
// over n directories.
func MultiDir(n, filesPerDir int) Namespace {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("/dir%04d", i)
	}
	return Namespace{Dirs: dirs, FilesPerDir: filesPerDir}
}

// Preload installs the namespace into a system.
func (ns Namespace) Preload(sys fsapi.System) {
	sys.Preload(ns.Dirs, ns.FilesPerDir)
}

// UniformFiles generates op over uniformly random existing files.
func (ns Namespace) UniformFiles(op core.Op) Gen {
	return func(rnd *rand.Rand, w, i int) OpCall {
		d := ns.Dirs[rnd.Intn(len(ns.Dirs))]
		f := rnd.Intn(ns.FilesPerDir)
		return OpCall{Op: op, Path: pathf(d, "f", f)}
	}
}

// FreshFiles generates create (or delete of previously created) paths with
// per-worker-unique names, spread uniformly over the namespace's directories.
func (ns Namespace) FreshFiles(op core.Op) Gen {
	return func(rnd *rand.Rand, w, i int) OpCall {
		d := ns.Dirs[rnd.Intn(len(ns.Dirs))]
		return OpCall{Op: op, Path: pathf(d, "w", w, "-n", i)}
	}
}

// CreateThenDelete alternates create and delete of per-worker names so the
// namespace does not grow (used for sustained delete throughput).
func (ns Namespace) CreateThenDelete() Gen {
	return func(rnd *rand.Rand, w, i int) OpCall {
		d := ns.Dirs[w%len(ns.Dirs)]
		path := pathf(d, "w", w, "-n", i/2)
		if i%2 == 0 {
			return OpCall{Op: core.OpCreate, Path: path}
		}
		return OpCall{Op: core.OpDelete, Path: path}
	}
}

// FreshDirs generates mkdir (or rmdir alternation) of per-worker names.
func (ns Namespace) FreshDirs(op core.Op) Gen {
	return func(rnd *rand.Rand, w, i int) OpCall {
		d := ns.Dirs[rnd.Intn(len(ns.Dirs))]
		return OpCall{Op: op, Path: pathf(d, "sub-w", w, "-n", i)}
	}
}

// MkdirThenRmdir alternates mkdir/rmdir so directories do not accumulate.
func (ns Namespace) MkdirThenRmdir() Gen {
	return func(rnd *rand.Rand, w, i int) OpCall {
		d := ns.Dirs[w%len(ns.Dirs)]
		path := pathf(d, "sub-w", w, "-n", i/2)
		if i%2 == 0 {
			return OpCall{Op: core.OpMkdir, Path: path}
		}
		return OpCall{Op: core.OpRmdir, Path: path}
	}
}

// StatDirs generates statdir over the namespace's directories.
func (ns Namespace) StatDirs() Gen {
	return func(rnd *rand.Rand, w, i int) OpCall {
		return OpCall{Op: core.OpStatDir, Path: ns.Dirs[rnd.Intn(len(ns.Dirs))]}
	}
}

// Bursts generates runs of `burst` creates in one directory before moving to
// the next — the temporal-load-imbalance model of §7.4. The whole client
// population (workers in-flight requests) advances through a shared burst
// sequence, so a burst larger than the in-flight level concentrates every
// outstanding request on one directory at a time.
func (ns Namespace) Bursts(burst, workers int) Gen {
	if workers <= 0 {
		workers = 1
	}
	return func(rnd *rand.Rand, w, i int) OpCall {
		global := i*workers + w
		dirIdx := (global / burst) % len(ns.Dirs)
		return OpCall{Op: core.OpCreate, Path: pathf(ns.Dirs[dirIdx], "b-w", w, "-n", i)}
	}
}

// Zipfian picks directories with an 80/20-style skew (§7.6: 80% of the
// operations in 20% of the directories).
func (ns Namespace) zipfDir(rnd *rand.Rand) string {
	if rnd.Float64() < 0.8 {
		hot := len(ns.Dirs) / 5
		if hot == 0 {
			hot = 1
		}
		return ns.Dirs[rnd.Intn(hot)]
	}
	return ns.Dirs[rnd.Intn(len(ns.Dirs))]
}
