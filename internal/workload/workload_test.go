package workload

import (
	"math/rand"
	"strings"
	"testing"

	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/stats"
)

func TestNamespaces(t *testing.T) {
	ns := MultiDir(4, 10)
	if len(ns.Dirs) != 4 || ns.Dirs[0] != "/dir0000" {
		t.Fatalf("dirs %v", ns.Dirs)
	}
	one := SingleDir(100)
	if len(one.Dirs) != 1 || one.FilesPerDir != 100 {
		t.Fatalf("single dir: %+v", one)
	}
}

func TestUniformFilesTargetsExisting(t *testing.T) {
	ns := MultiDir(4, 8)
	gen := ns.UniformFiles(core.OpStat)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		call := gen(rnd, 0, i)
		if call.Op != core.OpStat {
			t.Fatalf("op %v", call.Op)
		}
		if !strings.HasPrefix(call.Path, "/dir") || !strings.Contains(call.Path, "/f") {
			t.Fatalf("path %q", call.Path)
		}
	}
}

func TestFreshFilesUnique(t *testing.T) {
	ns := MultiDir(2, 1)
	gen := ns.FreshFiles(core.OpCreate)
	rnd := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for w := 0; w < 3; w++ {
		for i := 0; i < 50; i++ {
			p := gen(rnd, w, i).Path
			if seen[p] {
				t.Fatalf("duplicate fresh path %q", p)
			}
			seen[p] = true
		}
	}
}

func TestCreateThenDeletePairs(t *testing.T) {
	ns := MultiDir(2, 1)
	gen := ns.CreateThenDelete()
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i += 2 {
		c := gen(rnd, 1, i)
		d := gen(rnd, 1, i+1)
		if c.Op != core.OpCreate || d.Op != core.OpDelete || c.Path != d.Path {
			t.Fatalf("pair mismatch: %+v %+v", c, d)
		}
	}
}

func TestBurstsConcentrate(t *testing.T) {
	ns := MultiDir(8, 1)
	const workers = 16
	gen := ns.Bursts(64, workers)
	rnd := rand.New(rand.NewSource(1))
	// Within one burst window every worker targets the same directory.
	dirOf := func(path string) string { return path[:strings.LastIndex(path, "/")] }
	d0 := dirOf(gen(rnd, 0, 0).Path)
	for w := 1; w < workers; w++ {
		if d := dirOf(gen(rnd, w, 0).Path); d != d0 {
			t.Fatalf("burst not concentrated: worker %d in %s, worker 0 in %s", w, d, d0)
		}
	}
	// Later windows move on (worker 0 at i=4 → global op 64, next window).
	if d := dirOf(gen(rnd, 0, 4).Path); d == d0 {
		t.Fatal("burst never advanced to the next directory")
	}
}

func TestMixRatios(t *testing.T) {
	ns := MultiDir(8, 16)
	gen := PanguMix().Gen(ns, false)
	rnd := rand.New(rand.NewSource(2))
	counts := map[core.Op]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[gen(rnd, 0, i).Op]++
	}
	frac := func(op core.Op) float64 { return float64(counts[op]) / n }
	// open+close ≈ 52.6%; create+delete+rename ≈ 30.8% (deletes/renames can
	// degrade to creates during warm-up, so compare the sum).
	if f := frac(core.OpOpen) + frac(core.OpClose); f < 0.45 || f > 0.60 {
		t.Errorf("open+close fraction %.3f", f)
	}
	if f := frac(core.OpCreate) + frac(core.OpDelete) + frac(core.OpRename); f < 0.24 || f > 0.38 {
		t.Errorf("update fraction %.3f", f)
	}
	if counts[core.OpReadDir] == 0 || counts[core.OpStat] == 0 {
		t.Error("mix missing readdir/stat")
	}
}

// TestProgramDeterministic pins Program: the same gen shape and seed always
// materialize identical per-worker op lists (the replay contract of the
// checking harnesses), and they match what Run's workers would draw.
func TestProgramDeterministic(t *testing.T) {
	ns := MultiDir(4, 8)
	mixes := map[string]func() Gen{
		"pangu":     func() Gen { return PanguMix().Gen(ns, false) },
		"cnn":       func() Gen { return CNNTrainingMix(4096).Gen(ns, false) },
		"thumbnail": func() Gen { return ThumbnailMix(4096).Gen(ns, false) },
		"uniform":   func() Gen { return ns.UniformFiles(core.OpStat) },
	}
	for name, mk := range mixes {
		// Stateful mix gens must be rebuilt per materialization; identical
		// fresh gens must agree draw for draw.
		a := Program(mk(), 11, 3, 50)
		b := Program(mk(), 11, 3, 50)
		if len(a) != 3 || len(a[0]) != 50 {
			t.Fatalf("%s: program shape %dx%d", name, len(a), len(a[0]))
		}
		for w := range a {
			for i := range a[w] {
				if a[w][i] != b[w][i] {
					t.Fatalf("%s: worker %d op %d differs: %+v vs %+v",
						name, w, i, a[w][i], b[w][i])
				}
			}
		}
		c := Program(mk(), 12, 3, 50)
		same := true
		for w := range a {
			for i := range a[w] {
				if a[w][i] != c[w][i] {
					same = false
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical programs", name)
		}
	}
}

// mixFractions draws n ops from a fresh gen and returns per-op fractions.
func mixFractions(gen Gen, n int) map[core.Op]float64 {
	rnd := rand.New(rand.NewSource(2))
	counts := map[core.Op]int{}
	for i := 0; i < n; i++ {
		counts[gen(rnd, 0, i).Op]++
	}
	out := make(map[core.Op]float64, len(counts))
	for op, c := range counts {
		out[op] = float64(c) / float64(n)
	}
	return out
}

// TestCNNTrainingMixRatios sanity-checks the CV-training trace shape:
// open/close/stat dominate, data accesses carry the configured size.
func TestCNNTrainingMixRatios(t *testing.T) {
	ns := MultiDir(8, 16)
	frac := mixFractions(CNNTrainingMix(4096).Gen(ns, false), 20000)
	if f := frac[core.OpOpen] + frac[core.OpClose] + frac[core.OpStat]; f < 0.55 || f > 0.75 {
		t.Errorf("open+close+stat fraction %.3f, want ~0.64", f)
	}
	if f := frac[core.OpRead]; f < 0.10 || f > 0.19 {
		t.Errorf("read fraction %.3f, want ~0.142", f)
	}
	if f := frac[core.OpWrite]; f < 0.04 || f > 0.11 {
		t.Errorf("write fraction %.3f, want ~0.071", f)
	}
	// Data sizes ride on the data-class draws.
	gen := CNNTrainingMix(4096).Gen(ns, false)
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		call := gen(rnd, 0, i)
		if (call.Op == core.OpRead || call.Op == core.OpWrite) && call.Data != 4096 {
			t.Fatalf("data op with %d bytes, want 4096", call.Data)
		}
	}
}

// TestThumbnailMixRatios sanity-checks the thumbnail-generation trace shape.
func TestThumbnailMixRatios(t *testing.T) {
	ns := MultiDir(8, 16)
	frac := mixFractions(ThumbnailMix(8192).Gen(ns, false), 20000)
	if f := frac[core.OpOpen] + frac[core.OpClose] + frac[core.OpStat]; f < 0.57 || f > 0.75 {
		t.Errorf("open+close+stat fraction %.3f, want ~0.66", f)
	}
	if f := frac[core.OpCreate]; f < 0.07 || f > 0.16 {
		t.Errorf("create fraction %.3f, want ~0.11", f)
	}
	if f := frac[core.OpRead]; f < 0.08 || f > 0.17 {
		t.Errorf("read fraction %.3f, want ~0.122", f)
	}
	if frac[core.OpRmdir] != 0 {
		t.Error("thumbnail mix has no rmdir class")
	}
}

func TestMixDeleteTargetsOwnCreates(t *testing.T) {
	ns := MultiDir(2, 4)
	gen := CNNTrainingMix(0).Gen(ns, false)
	rnd := rand.New(rand.NewSource(3))
	created := map[string]bool{}
	for i := 0; i < 5000; i++ {
		call := gen(rnd, 0, i)
		switch call.Op {
		case core.OpCreate:
			created[call.Path] = true
		case core.OpDelete:
			if !created[call.Path] {
				t.Fatalf("delete of never-created path %q", call.Path)
			}
			delete(created, call.Path)
		}
	}
}

func TestSkewConcentrates(t *testing.T) {
	ns := MultiDir(10, 4)
	gen := PanguMix().Gen(ns, true)
	rnd := rand.New(rand.NewSource(4))
	hot := 0
	total := 0
	for i := 0; i < 10000; i++ {
		call := gen(rnd, 0, i)
		if !strings.HasPrefix(call.Path, "/dir") {
			continue
		}
		total++
		// hottest 20%: dirs 0 and 1 of 10
		if strings.HasPrefix(call.Path, "/dir0000") || strings.HasPrefix(call.Path, "/dir0001") {
			hot++
		}
	}
	if f := float64(hot) / float64(total); f < 0.6 {
		t.Errorf("hot-directory fraction %.2f, want ≥ 0.6 (80/20 skew)", f)
	}
}

func TestRunCollectsLatencies(t *testing.T) {
	sim := env.NewSim(5)
	defer sim.Shutdown()
	c := cluster.New(sim, cluster.Options{Servers: 4, Clients: 2,
		Costs: env.DefaultCosts(), SwitchIndexBits: 10})
	ns := MultiDir(4, 8)
	ns.Preload(c)
	res := Run(sim, c, RunCfg{
		Workers:      8,
		OpsPerWorker: 10,
		Clients:      2,
		Seed:         1,
		Gen:          ns.UniformFiles(core.OpStat),
	})
	if res.Ops != 80 || res.Errs != 0 {
		t.Fatalf("ops=%d errs=%d", res.Ops, res.Errs)
	}
	if res.All.N() != 80 {
		t.Fatalf("latency samples %d", res.All.N())
	}
	if res.ThroughputOps() <= 0 || res.Elapsed <= 0 {
		t.Fatal("throughput/elapsed not recorded")
	}
	if res.Drained < res.Elapsed {
		t.Fatalf("drained %d < elapsed %d", res.Drained, res.Elapsed)
	}
	if res.Lat[core.OpStat] == nil || res.Lat[core.OpStat].N() != 80 {
		t.Fatal("per-op histogram missing")
	}
}

func TestHistPercentiles(t *testing.T) {
	var h stats.Hist
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Percentile(0.5) != 50 || h.Percentile(0.99) != 99 || h.Max() != 100 {
		t.Fatalf("p50=%v p99=%v max=%v", h.Percentile(0.5), h.Percentile(0.99), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean=%v", h.Mean())
	}
	var h2 stats.Hist
	h2.Add(1000)
	h.Merge(&h2)
	if h.Max() != 1000 || h.N() != 101 {
		t.Fatal("merge failed")
	}
}
