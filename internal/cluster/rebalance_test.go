package cluster

import (
	"errors"
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// Tests for live fingerprint-group migration (balance.go) and the staged
// Reconfigure built on it: a hot directory moves under skewed load without
// the namespace going unavailable, a group straddled by a prepared-but-
// undecided 2PC transaction defers its migration until the transaction
// terminates, and the stop-the-world reconfiguration bug class stays retired
// (ops issued during a grow never fail, only retry).

// skewedNames returns n distinct root-child names whose fingerprint groups
// the initial ring places on the given slot.
func skewedNames(c *Cluster, slot uint32, tag string, n int) []string {
	var out []string
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("%s%d", tag, i)
		if c.Ring.OwnerOfFile(core.RootDirID, name) == slot {
			out = append(out, name)
		}
	}
	return out
}

// TestMigrateFPMovesGroup migrates one directory group between live servers
// and verifies the store handoff is complete: inodes, entry lists and
// reachability through the normal client path (the ring override reroutes).
func TestMigrateFPMovesGroup(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	dir := "/" + skewedNames(c, 0, "d", 1)[0]
	fp := core.FingerprintOf(core.RootDirID, dir[1:])
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, dir, 0); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := cl.Create(p, fmt.Sprintf("%s/f%d", dir, i), 0); err != nil {
				t.Fatalf("create: %v", err)
			}
		}
	})

	var migErr error
	s.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		migErr = c.MigrateFP(p, fp, 2)
	})
	s.Run()
	if migErr != nil {
		t.Fatalf("migrate: %v", migErr)
	}
	if got := c.Ring.OwnerOf(fp); got != 2 {
		t.Fatalf("ring owner after migration: %d, want 2", got)
	}
	if c.Moves() != 1 {
		t.Fatalf("moves=%d, want 1", c.Moves())
	}
	stored := func(i int) bool {
		for _, g := range c.Servers[i].StoredFingerprints() {
			if g == fp {
				return true
			}
		}
		return false
	}
	if stored(0) || !stored(2) {
		t.Fatalf("group placement after migration: src-has=%v dst-has=%v", stored(0), stored(2))
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, dir)
		if err != nil {
			t.Fatalf("statdir after migration: %v", err)
		}
		if attr.Size != 3 {
			t.Errorf("statdir size after migration: %d, want 3", attr.Size)
		}
		es, err := cl.ReadDir(p, dir)
		if err != nil || len(es) != 3 {
			t.Errorf("readdir after migration: %d entries, err %v", len(es), err)
		}
		if err := cl.Create(p, dir+"/f3", 0); err != nil {
			t.Errorf("create in migrated dir: %v", err)
		}
	})
}

// TestHotDirectoryMovesUnderSkew drives a skewed workload — every hot
// directory's group starts on server 0 — while the balancer runs, and
// verifies the heat actually moves: at least one group migrates, the hot
// groups end up spread over more than one slot, and the namespace stays
// exact throughout (no op lost or double-applied shows up as a wrong entry
// list or size afterwards).
func TestHotDirectoryMovesUnderSkew(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 2})
	names := skewedNames(c, 0, "h", 4)
	fps := make([]core.Fingerprint, len(names))
	for i, name := range names {
		fps[i] = core.FingerprintOf(core.RootDirID, name)
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, name := range names {
			if err := cl.Mkdir(p, "/"+name, 0); err != nil {
				t.Fatalf("mkdir /%s: %v", name, err)
			}
			if err := cl.Create(p, "/"+name+"/child", 0); err != nil {
				t.Fatalf("create child: %v", err)
			}
		}
	})

	end := s.Now() + 4*env.Millisecond
	var opErrs int
	for w := 0; w < 2; w++ {
		cl := c.Client(w)
		w := w
		s.Spawn(cl.ID(), func(p *env.Proc) {
			for i := 0; p.Now() < end; i++ {
				dir := "/" + names[(i+w)%len(names)]
				if _, err := cl.StatDir(p, dir); err != nil {
					opErrs++
				}
				if _, err := cl.ReadDir(p, dir); err != nil {
					opErrs++
				}
			}
		})
	}
	s.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		for i := 0; i < 6 && p.Now() < end; i++ {
			p.Sleep(500 * env.Microsecond)
			c.RebalanceOnce(p)
		}
	})
	s.Run()

	if opErrs > 0 {
		t.Errorf("%d operations failed during rebalance (skewed load must only retry, not fail)", opErrs)
	}
	if c.Moves() == 0 {
		t.Fatal("balancer moved nothing under a 4-directory hot spot")
	}
	owners := map[uint32]bool{}
	for _, fp := range fps {
		owners[c.Ring.OwnerOf(fp)] = true
	}
	if len(owners) < 2 {
		t.Errorf("hot groups still all on one slot after %d moves", c.Moves())
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, name := range names {
			attr, err := cl.StatDir(p, "/"+name)
			if err != nil || attr.Size != 1 {
				t.Errorf("statdir /%s after rebalance: size=%d err=%v, want 1 entry", name, attr.Size, err)
			}
			if _, err := cl.Stat(p, "/"+name+"/child"); err != nil {
				t.Errorf("stat /%s/child after rebalance: %v", name, err)
			}
		}
	})
}

// TestMigrationDefersToPreparedTxn pins the migration/2PC interlock: a
// fingerprint group touched by a prepared-but-undecided transaction must not
// migrate until the transaction terminates — otherwise the decision would
// apply its ops to a store that no longer owns the keys, half-applying the
// rename. Decisions are suppressed so the participant sits prepared; a
// migration of the destination group starts inside that window, and must
// land only after the termination protocol resolves the transaction.
func TestMigrationDefersToPreparedTxn(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	part := int(c.Ring.OwnerOfFile(core.RootDirID, dst[1:]))
	fp := core.FingerprintOf(core.RootDirID, dst[1:])
	target := uint32((part + 1) % 4)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Fatalf("create %s: %v", src, err)
		}
	})

	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		if pkt, ok := msg.(*wire.Packet); ok {
			if _, isDec := pkt.Body.(*wire.TxnDecision); isDec {
				return env.Drop
			}
		}
		return env.Pass
	}
	// 600µs after the rename starts: the vote has left (~0.3ms) but the
	// participant's termination monitor has not yet resolved the transaction
	// (~1.1ms) — the prepared-but-undecided window.
	var prepared bool
	var migErr error
	migDone := false
	s.After(600*env.Microsecond, func() {
		prepared = !c.Servers[part].FPQuiescent(fp)
		s.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
			migErr = c.MigrateFP(p, fp, target)
			migDone = true
		})
	})
	s.After(4*env.Millisecond, func() { s.Net().Filter = nil })
	var renErr error
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		renErr = cl.Rename(p, src, dst)
	})

	if !prepared {
		t.Fatal("destination group was quiescent inside the in-doubt window; the scenario exercised nothing")
	}
	if !migDone || migErr != nil {
		t.Fatalf("migration across the prepared window: done=%v err=%v", migDone, migErr)
	}
	if c.Ring.OwnerOf(fp) != target {
		t.Fatalf("ring owner=%d, want %d", c.Ring.OwnerOf(fp), target)
	}
	// The committed rename's effects must live on the migration target: a
	// migration that jumped the prepared window leaves the destination inode
	// stranded on the old owner (or lost), breaking atomicity.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if renErr != nil {
			t.Errorf("rename: %v", renErr)
		}
		if _, err := cl.Stat(p, dst); err != nil {
			t.Errorf("stat %s after rename+migration: %v", dst, err)
		}
		if _, err := cl.Stat(p, src); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("stat %s after rename: %v, want ErrNotExist", src, err)
		}
	})
	found := false
	for _, g := range c.Servers[int(target)].StoredFingerprints() {
		if g == fp {
			found = true
		}
	}
	if !found {
		t.Error("migrated group absent from the target server's store")
	}
}

// TestMigrationDefersToCrashedPreparedTxn pins the durable half of the
// migration/2PC interlock: prepared-but-undecided state survives a fail-stop
// in the source's WAL (recTxnPrepare), so a group touched by one must not be
// copied from a crashed source either — recovery re-registers the
// transaction and the commit decision applies its ops to the source store.
// Before the fix, the down-source fast path copied and evicted the group
// pre-decision; the recovered source then applied the rename's effects to
// the evicted, no-longer-owner store and the destination never saw them.
// The migration must instead wait out the crash and land only after the
// recovered participant's termination protocol resolves the transaction.
func TestMigrationDefersToCrashedPreparedTxn(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	part := int(c.Ring.OwnerOfFile(core.RootDirID, dst[1:]))
	fp := core.FingerprintOf(core.RootDirID, dst[1:])
	target := uint32((part + 1) % 4)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Fatalf("create %s: %v", src, err)
		}
	})

	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		if pkt, ok := msg.(*wire.Packet); ok {
			if _, isDec := pkt.Body.(*wire.TxnDecision); isDec {
				return env.Drop
			}
		}
		return env.Pass
	}
	// 600µs in: the participant's vote has left but no decision can arrive —
	// crash it inside the prepared-but-undecided window, with the prepared
	// state only in its WAL.
	var prepared bool
	var migErr error
	migDone := false
	s.After(600*env.Microsecond, func() {
		prepared = !c.Servers[part].FPQuiescent(fp)
		c.CrashServer(part)
		s.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
			migErr = c.MigrateFP(p, fp, target)
			migDone = true
		})
	})
	// While the source is down with an in-doubt transaction, the group must
	// not have moved.
	var movedWhileDown bool
	s.After(3*env.Millisecond, func() {
		movedWhileDown = migDone
	})
	s.After(4*env.Millisecond, func() {
		s.Net().Filter = nil
		c.RecoverServer(part)
	})
	var renErr error
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		renErr = cl.Rename(p, src, dst)
	})

	if !prepared {
		t.Fatal("destination group was quiescent at crash time; the scenario exercised nothing")
	}
	if movedWhileDown {
		t.Fatal("group migrated away from a crashed source with a prepared-but-undecided transaction in its WAL")
	}
	if !migDone || migErr != nil {
		t.Fatalf("migration after recovery: done=%v err=%v", migDone, migErr)
	}
	if c.Ring.OwnerOf(fp) != target {
		t.Fatalf("ring owner=%d, want %d", c.Ring.OwnerOf(fp), target)
	}
	// The rename committed (the coordinator's decision is durable); its
	// effects must have been applied at the recovered source and travelled
	// with the copy — a migration that jumped the crash window strands them.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if renErr != nil {
			t.Errorf("rename: %v", renErr)
		}
		if _, err := cl.Stat(p, dst); err != nil {
			t.Errorf("stat %s after crash+recover+migration: %v", dst, err)
		}
		if _, err := cl.Stat(p, src); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("stat %s after rename: %v, want ErrNotExist", src, err)
		}
	})
	found := false
	for _, g := range c.Servers[int(target)].StoredFingerprints() {
		if g == fp {
			found = true
		}
	}
	if !found {
		t.Error("migrated group absent from the target server's store")
	}
}

// TestReconfigureUnderLoad grows the cluster while closed-loop clients keep
// mutating: the staged migration must leave every operation either succeeded
// or transparently retried (the stop-the-world class would surface here as
// timeouts), and the namespace must be exact on the grown cluster.
func TestReconfigureUnderLoad(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 2})
	dirs := []string{"/ra", "/rb"}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, d := range dirs {
			if err := cl.Mkdir(p, d, 0); err != nil {
				t.Fatalf("mkdir %s: %v", d, err)
			}
		}
	})

	var recErr error
	perDir := 12
	for w := 0; w < 2; w++ {
		cl := c.Client(w)
		dir := dirs[w]
		s.Spawn(cl.ID(), func(p *env.Proc) {
			for i := 0; i < perDir; i++ {
				if err := cl.Create(p, fmt.Sprintf("%s/f%d", dir, i), 0); err != nil && recErr == nil {
					recErr = fmt.Errorf("create %s/f%d: %w", dir, i, err)
				}
				p.Sleep(300 * env.Microsecond)
			}
		})
	}
	s.After(500*env.Microsecond, func() { c.Reconfigure(6) })
	s.Run()
	if recErr != nil {
		t.Fatalf("operation failed during live reconfiguration: %v", recErr)
	}
	if len(c.Servers) != 6 {
		t.Fatalf("cluster has %d servers after grow, want 6", len(c.Servers))
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, d := range dirs {
			attr, err := cl.StatDir(p, d)
			if err != nil || attr.Size != int64(perDir) {
				t.Errorf("statdir %s after grow: size=%d err=%v, want %d", d, attr.Size, err, perDir)
			}
			for i := 0; i < perDir; i++ {
				if _, err := cl.Stat(p, fmt.Sprintf("%s/f%d", d, i)); err != nil {
					t.Errorf("stat %s/f%d after grow: %v", d, i, err)
				}
			}
		}
	})
}
