package cluster

import (
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/env"
)

// Tests for fault orchestration racing reconfiguration and for the per-link
// fault rules feeding the chaos subsystem (internal/chaos).

// TestCrashRecoveryDuringReconfigure races a server fail-stop and its
// recovery against an in-flight Reconfigure: the reconfiguration must
// neither deadlock nor lose migrated entries, and the recovered server must
// rejoin the grown cluster consistently.
func TestCrashRecoveryDuringReconfigure(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 40; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
	})

	// Crash strikes first; the reconfiguration starts while the victim is
	// down; recovery lands while the reconfiguration is still in flight
	// (its quiesce/flush phase waits out the victim's push retries).
	var recFut *env.Future
	c.CrashServer(2)
	fut := c.Reconfigure(6)
	s.After(500*env.Microsecond, func() { recFut = c.RecoverServer(2) })
	s.Run()

	if v, ok := fut.Peek(); !ok {
		t.Fatal("reconfiguration did not complete (deadlock?)")
	} else if err, isErr := v.(error); isErr {
		t.Fatalf("reconfigure: %v", err)
	}
	if recFut == nil {
		t.Fatal("recovery never started")
	}
	if v, ok := recFut.Peek(); !ok {
		t.Fatal("recovery did not complete (deadlock?)")
	} else if err, isErr := v.(error); isErr {
		t.Fatalf("recover: %v", err)
	}
	if len(c.Servers) != 6 {
		t.Fatalf("cluster has %d servers, want 6", len(c.Servers))
	}

	// No migrated (or recovered) entry may be lost, and the grown cluster
	// must serve fresh writes.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 40 {
			t.Errorf("statdir after race: size=%d err=%v, want 40", attr.Size, err)
			return
		}
		for i := 0; i < 40; i++ {
			if _, err := cl.Stat(p, fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("stat f%d lost across reconfigure+crash: %v", i, err)
				return
			}
		}
		for i := 0; i < 10; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/post%d", i), 0); err != nil {
				t.Errorf("create after race: %v", err)
				return
			}
		}
		attr, err = cl.StatDir(p, "/d")
		if err != nil || attr.Size != 50 {
			t.Errorf("final size=%d err=%v, want 50", attr.Size, err)
		}
	})
}

// TestReconfigureWhileServerStaysDown covers the other interleaving: the
// victim recovers only after the reconfiguration completed. Its WAL-rebuilt
// change-logs must re-deliver under the new ring.
func TestReconfigureWhileServerStaysDown(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 30; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
	})
	c.CrashServer(1)
	fut := c.Reconfigure(6)
	s.Run()
	if _, ok := fut.Peek(); !ok {
		t.Fatal("reconfiguration did not complete with a server down")
	}
	rec := c.RecoverServer(1)
	s.Run()
	if v, ok := rec.Peek(); !ok {
		t.Fatal("late recovery did not complete")
	} else if err, isErr := v.(error); isErr {
		t.Fatalf("recover: %v", err)
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 30 {
			t.Errorf("size=%d err=%v, want 30", attr.Size, err)
		}
		for i := 0; i < 30; i++ {
			if _, err := cl.Stat(p, fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("stat f%d: %v", i, err)
				return
			}
		}
	})
}

// TestLinkRuleDupReorderPreservesDedup installs per-link duplication and
// reorder rules on every client↔server link and checks the RPC dedup layer
// still yields exactly-once effects — the per-link generalization of the
// global DupProb tests above.
func TestLinkRuleDupReorderPreservesDedup(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	rule := env.LinkRule{Dup: 0.3, Jitter: 4 * env.Microsecond}
	for i := 0; i < 4; i++ {
		s.Net().SetLink(c.ClientID(0), c.ServerID(i), rule)
		s.Net().SetLink(c.ServerID(i), c.ClientID(0), rule)
	}
	baselinePkts := s.Delivered
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/d", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			if i%3 == 0 {
				if err := cl.Delete(p, fmt.Sprintf("/d/f%d", i)); err != nil {
					t.Errorf("delete %d: %v", i, err)
					return
				}
			}
		}
		attr, err := cl.StatDir(p, "/d")
		want := int64(30 - 10)
		if err != nil || attr.Size != want {
			t.Errorf("size=%d err=%v, want %d (duplication re-executed a mutation)", attr.Size, err, want)
		}
		es, err := cl.ReadDir(p, "/d")
		if err != nil || int64(len(es)) != want {
			t.Errorf("readdir %d entries err=%v, want %d", len(es), err, want)
		}
	})
	if s.Delivered == baselinePkts {
		t.Fatal("no traffic flowed")
	}
	// The rules must have actually duplicated traffic: compare against a
	// clean run of the identical workload.
	clean := env.NewSim(3)
	t.Cleanup(clean.Shutdown)
	cc := New(clean, Options{Servers: 4, Clients: 1, SwitchIndexBits: 8})
	cc.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 30; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
			if i%3 == 0 {
				cl.Delete(p, fmt.Sprintf("/d/f%d", i))
			}
		}
		cl.StatDir(p, "/d")
		cl.ReadDir(p, "/d")
	})
	if s.Delivered <= clean.Delivered {
		t.Errorf("dup rules delivered %d packets, clean run %d — duplication never happened",
			s.Delivered, clean.Delivered)
	}
}
