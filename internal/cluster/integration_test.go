package cluster

import (
	"errors"
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// sim builds a small deterministic cluster for protocol tests.
func sim(t *testing.T, opts Options) (*env.Sim, *Cluster) {
	t.Helper()
	s := env.NewSim(7)
	if opts.SwitchIndexBits == 0 {
		opts.SwitchIndexBits = 8 // small dirty set is plenty for tests
	}
	c := New(s, opts)
	t.Cleanup(s.Shutdown)
	return s, c
}

func TestCreateStatDelete(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/a", 0); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := cl.Create(p, "/a/b", 0); err != nil {
			t.Errorf("create: %v", err)
		}
		attr, err := cl.Stat(p, "/a/b")
		if err != nil {
			t.Errorf("stat: %v", err)
		}
		if attr.Type != core.TypeRegular {
			t.Errorf("stat type = %v", attr.Type)
		}
		if err := cl.Create(p, "/a/b", 0); !errors.Is(err, core.ErrExist) {
			t.Errorf("duplicate create: %v", err)
		}
		if err := cl.Delete(p, "/a/b"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, err := cl.Stat(p, "/a/b"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("stat after delete: %v", err)
		}
	})
}

func TestStatDirSeesAsyncUpdates(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/dir", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			if err := cl.Create(p, fmt.Sprintf("/dir/f%d", i), 0); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		// The creates deferred their directory updates; statdir must trigger
		// aggregation and observe all ten entries — durable visibility.
		attr, err := cl.StatDir(p, "/dir")
		if err != nil {
			t.Errorf("statdir: %v", err)
			return
		}
		if attr.Size != 10 {
			t.Errorf("statdir size = %d, want 10", attr.Size)
		}
		entries, err := cl.ReadDir(p, "/dir")
		if err != nil {
			t.Errorf("readdir: %v", err)
			return
		}
		if len(entries) != 10 {
			t.Errorf("readdir returned %d entries, want 10", len(entries))
		}
	})
}

func TestReaddirAfterDeletes(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 6; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
		for i := 0; i < 3; i++ {
			if err := cl.Delete(p, fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 3 {
			t.Errorf("statdir: size=%d err=%v, want 3", attr.Size, err)
			return
		}
		es, _ := cl.ReadDir(p, "/d")
		if len(es) != 3 {
			t.Errorf("readdir %d entries, want 3", len(es))
			return
		}
	})
}

func TestCreateDeleteSameNameFIFO(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		// create+delete pairs of the same name must cancel exactly.
		for i := 0; i < 5; i++ {
			if err := cl.Create(p, "/d/x", 0); err != nil {
				t.Errorf("create #%d: %v", i, err)
				return
			}
			if err := cl.Delete(p, "/d/x"); err != nil {
				t.Errorf("delete #%d: %v", i, err)
				return
			}
		}
		if err := cl.Create(p, "/d/x", 0); err != nil {
			t.Errorf("final create: %v", err)
			return
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 1 {
			t.Errorf("statdir size=%d err=%v, want 1", attr.Size, err)
			return
		}
		es, _ := cl.ReadDir(p, "/d")
		if len(es) != 1 || es[0].Name != "x" {
			t.Errorf("readdir: %v", es)
			return
		}
	})
}

func TestMkdirRmdir(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/p", 0); err != nil {
			t.Errorf("mkdir /p: %v", err)
			return
		}
		if err := cl.Mkdir(p, "/p/q", 0); err != nil {
			t.Errorf("mkdir /p/q: %v", err)
			return
		}
		if err := cl.Create(p, "/p/q/file", 0); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := cl.Rmdir(p, "/p/q"); !errors.Is(err, core.ErrNotEmpty) {
			t.Errorf("rmdir non-empty: %v, want ENOTEMPTY", err)
			return
		}
		if err := cl.Delete(p, "/p/q/file"); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if err := cl.Rmdir(p, "/p/q"); err != nil {
			t.Errorf("rmdir: %v", err)
			return
		}
		if _, err := cl.StatDir(p, "/p/q"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("statdir after rmdir: %v", err)
			return
		}
		attr, err := cl.StatDir(p, "/p")
		if err != nil || attr.Size != 0 {
			t.Errorf("parent size=%d err=%v, want 0", attr.Size, err)
			return
		}
	})
}

func TestDeepPaths(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		path := ""
		for i := 0; i < 8; i++ {
			path += fmt.Sprintf("/d%d", i)
			if err := cl.Mkdir(p, path, 0); err != nil {
				t.Errorf("mkdir %s: %v", path, err)
				return
			}
		}
		if err := cl.Create(p, path+"/leaf", 0); err != nil {
			t.Errorf("create leaf: %v", err)
			return
		}
		if _, err := cl.Stat(p, path+"/leaf"); err != nil {
			t.Errorf("stat leaf: %v", err)
			return
		}
	})
}

func TestConcurrentCreatesOneDirectory(t *testing.T) {
	s, c := sim(t, Options{Servers: 8, Clients: 4})
	done := 0
	const perClient = 25
	for i := 0; i < 4; i++ {
		i := i
		cl := c.Client(i)
		s.Spawn(cl.ID(), func(p *env.Proc) {
			if i == 0 {
				if err := cl.Mkdir(p, "/shared", 0); err != nil {
					t.Errorf("mkdir: %v", err)
				}
			} else {
				// Wait for the directory to exist.
				for {
					if _, err := cl.StatDir(p, "/shared"); err == nil {
						break
					}
					p.Sleep(50 * env.Microsecond)
				}
			}
			for j := 0; j < perClient; j++ {
				if err := cl.Create(p, fmt.Sprintf("/shared/c%d-f%d", i, j), 0); err != nil {
					t.Errorf("create c%d f%d: %v", i, j, err)
				}
			}
			done++
		})
	}
	s.Run()
	if done != 4 {
		t.Errorf("only %d clients finished", done)
		return
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/shared")
		if err != nil {
			t.Errorf("statdir: %v", err)
			return
		}
		if attr.Size != 4*perClient {
			t.Errorf("size=%d, want %d", attr.Size, 4*perClient)
			return
		}
		es, _ := cl.ReadDir(p, "/shared")
		if len(es) != 4*perClient {
			t.Errorf("readdir %d, want %d", len(es), 4*perClient)
			return
		}
	})
}

func TestPreloadVisible(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	pl := NewPreload(c)
	pl.Files("/data/set1", "img", 100)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/data/set1")
		if err != nil || attr.Size != 100 {
			t.Errorf("statdir: size=%d err=%v", attr.Size, err)
			return
		}
		if _, err := cl.Stat(p, "/data/set1/img42"); err != nil {
			t.Errorf("stat preloaded file: %v", err)
			return
		}
		if err := cl.Create(p, "/data/set1/img42", 0); !errors.Is(err, core.ErrExist) {
			t.Errorf("create over preloaded: %v", err)
			return
		}
	})
}
