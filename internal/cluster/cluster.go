// Package cluster assembles SwitchFS deployments over an environment:
// metadata servers, programmable switches (or tracker variants), clients and
// data nodes — plus the fault and reconfiguration orchestration used by the
// recovery experiments (§5.4, §5.5, §7.7).
package cluster

import (
	"fmt"

	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/datanode"
	"switchfs/internal/env"
	"switchfs/internal/metrics"
	"switchfs/internal/pswitch"
	"switchfs/internal/ring"
	"switchfs/internal/server"
	"switchfs/internal/trace"
	"switchfs/internal/wal"
)

// Node id layout (the "MAC addresses" of the L2 network).
const (
	switchBase  env.NodeID = 1
	trackerNode env.NodeID = 90
	serverBase  env.NodeID = 100
	clientBase  env.NodeID = 10000
	dataBase    env.NodeID = 20000
)

// Options configures a cluster.
type Options struct {
	Servers        int
	CoresPerServer int
	Clients        int
	DataNodes      int
	// DataReplication is the data-plane replication factor r: a chunk is
	// acked only after its primary and r−1 backups applied (default 2,
	// capped at DataNodes).
	DataReplication int
	// Switches > 1 range-partitions fingerprints over spine switches (§6.4).
	Switches int
	Costs    env.Costs
	Tracker  server.TrackerMode
	// TrackerCores sizes the dedicated-server tracker (Fig. 15: 12 cores).
	TrackerCores int
	// TrackerOpCost is the dedicated tracker's per-packet CPU time.
	TrackerOpCost env.Duration
	// Async and Compaction gate the §7.3.1 contribution-breakdown modes;
	// both default to true (full SwitchFS).
	Async      bool
	Compaction bool
	// ForceOverflow makes every dirty-set insert fail (§7.3.2).
	ForceOverflow bool
	// Switch geometry; zero means paper defaults (10 × 2^17).
	SwitchStages    int
	SwitchIndexBits uint
	// Protocol tunables forwarded to servers.
	PushEntries  int
	PushIdle     env.Duration
	OwnerQuiesce env.Duration
	RetryTimeout env.Duration
	// ClientMaxRetries bounds client request retransmission (zero keeps the
	// client default). Fault harnesses shrink it so operations give up —
	// and become observably ambiguous — inside a plan's horizon.
	ClientMaxRetries int
	// Trace, when non-nil, records causal spans across every component
	// (clients, switches, servers, data nodes).
	Trace *trace.Recorder
}

// Defaults fills zero fields with the paper's evaluation setup (§7.1): eight
// four-core servers, one switch.
func (o *Options) Defaults() {
	if o.Servers == 0 {
		o.Servers = 8
	}
	if o.CoresPerServer == 0 {
		o.CoresPerServer = 4
	}
	if o.Clients == 0 {
		o.Clients = 1
	}
	if o.Switches == 0 {
		o.Switches = 1
	}
	if o.TrackerCores == 0 {
		o.TrackerCores = 12
	}
	if o.TrackerOpCost == 0 {
		o.TrackerOpCost = 1 * env.Microsecond
	}
	if o.DataReplication == 0 {
		o.DataReplication = 2
	}
	if o.DataNodes > 0 && o.DataReplication > o.DataNodes {
		o.DataReplication = o.DataNodes
	}
}

// Cluster is a wired deployment.
type Cluster struct {
	Env  env.Env
	Opts Options
	// Ring is the shared versioned placement ring every server and client
	// consults; migration and reconfiguration drive it (overrides, resets).
	Ring      *ring.Ring
	Servers   []*server.Server
	Switches  []*pswitch.Switch
	Clients   []*client.Client
	DataNodes []env.NodeID
	// DataServers are the data-plane nodes behind the DataNodes ids.
	DataServers []*datanode.Server
	wals        []wal.Log
	// dataDown counts data nodes currently fail-stopped (a recovering node
	// counts until its re-replication pull completes): while dataDown >= r,
	// a chunk's whole replica set may be gone at once.
	dataDown int
	// reconfiguring marks an in-flight Reconfigure; a concurrently
	// recovering server must not resume serving until it finishes.
	reconfiguring bool
	// maxServers is the widest the server set has ever been: metrics and
	// PerServerOps emit this many slot-indexed rows so a shrink zeroes a
	// removed slot's row instead of silently dropping it (-compare would
	// report ROW-GONE where an explicit zero is the truthful shape).
	maxServers int
	// moves counts completed directory migrations (rebalance + reconfigure).
	moves uint64
}

// ServerOf maps a placement slot to a node id.
func ServerOf(slot uint32) env.NodeID { return serverBase + env.NodeID(slot) }

// New builds a cluster. Pass Async/Compaction explicitly via NewWithModes for
// the breakdown experiments; New enables the full design.
func New(e env.Env, opts Options) *Cluster {
	opts.Async = true
	opts.Compaction = true
	return NewWithModes(e, opts)
}

// NewWithModes builds a cluster honoring opts.Async and opts.Compaction.
func NewWithModes(e env.Env, opts Options) *Cluster {
	opts.Defaults()
	c := &Cluster{Env: e, Opts: opts}

	slots := make([]uint32, opts.Servers)
	for i := range slots {
		slots[i] = uint32(i)
	}
	c.Ring = ring.New(slots, 0, ServerOf)
	c.maxServers = opts.Servers

	peers := make([]env.NodeID, opts.Servers)
	for i := range peers {
		peers[i] = ServerOf(uint32(i))
	}

	// Switches (or the dedicated tracker server).
	var switchFor func(core.Fingerprint) env.NodeID
	switch opts.Tracker {
	case server.TrackerServer:
		sw := pswitch.New(trackerNode, pswitch.Config{
			Stages:    opts.SwitchStages,
			IndexBits: opts.SwitchIndexBits,
			Servers:   peers,
			Trace:     opts.Trace,
		})
		if opts.ForceOverflow {
			sw.ForceOverflow(true)
		}
		c.Switches = []*pswitch.Switch{sw}
		// The dedicated server pays CPU per packet and has finite cores —
		// the throughput ceiling of Fig. 15(b).
		e.AddNode(trackerNode, env.NodeConfig{
			Cores: opts.TrackerCores,
			Handler: func(p *env.Proc, from env.NodeID, msg any) {
				p.Compute(opts.TrackerOpCost)
				sw.Handler(p, from, msg)
			},
		})
		switchFor = func(core.Fingerprint) env.NodeID { return trackerNode }
	case server.TrackerOwner:
		switchFor = func(fp core.Fingerprint) env.NodeID {
			return c.Ring.OwnerNode(fp)
		}
	default:
		for i := 0; i < opts.Switches; i++ {
			id := switchBase + env.NodeID(i)
			sw := pswitch.New(id, pswitch.Config{
				Stages:    opts.SwitchStages,
				IndexBits: opts.SwitchIndexBits,
				Pipes:     1,
				PipeDelay: opts.Costs.SwitchPipe,
				Servers:   peers,
				Trace:     opts.Trace,
			})
			if opts.ForceOverflow {
				sw.ForceOverflow(true)
			}
			c.Switches = append(c.Switches, sw)
			e.AddNode(id, env.NodeConfig{Handler: sw.Handler})
		}
		n := len(c.Switches)
		switchFor = func(fp core.Fingerprint) env.NodeID {
			// Range partitioning by fingerprint prefix (§6.4).
			i := int(uint64(fp)>>(core.FingerprintBits-8)) % n
			return c.Switches[i].ID
		}
	}

	// Metadata servers.
	for i := 0; i < opts.Servers; i++ {
		w := wal.NewMem()
		c.wals = append(c.wals, w)
		srv := server.New(e, server.Config{
			ID:           ServerOf(uint32(i)),
			Cores:        opts.CoresPerServer,
			Costs:        opts.Costs,
			Ring:         c.Ring,
			Peers:        peers,
			SwitchFor:    switchFor,
			Coordinator:  ServerOf(0),
			WAL:          w,
			Tracker:      opts.Tracker,
			DataNodes:    opts.DataNodes,
			Async:        opts.Async,
			Compaction:   opts.Compaction,
			PushEntries:  opts.PushEntries,
			PushIdle:     opts.PushIdle,
			OwnerQuiesce: opts.OwnerQuiesce,
			RetryTimeout: opts.RetryTimeout,
			Trace:        opts.Trace,
		})
		c.Servers = append(c.Servers, srv)
	}

	// Clients.
	for i := 0; i < opts.Clients; i++ {
		cl := client.New(e, client.Config{
			ID:           clientBase + env.NodeID(i),
			Ring:         c.Ring,
			SwitchFor:    switchFor,
			Coordinator:  ServerOf(0),
			Tracker:      opts.Tracker,
			Costs:        opts.Costs,
			RetryTimeout: opts.RetryTimeout,
			MaxRetries:   opts.ClientMaxRetries,
			Trace:        opts.Trace,
		})
		c.Clients = append(c.Clients, cl)
	}

	// Data nodes (end-to-end workloads, §7.6): real replicated chunk
	// servers, not cost-burning stubs — writes are acked only after the
	// replication factor is satisfied, and retransmissions are deduped.
	for i := 0; i < opts.DataNodes; i++ {
		id := DataNodeOf(i)
		c.DataNodes = append(c.DataNodes, id)
		c.DataServers = append(c.DataServers, datanode.New(e, dataNodeConfigOf(c, i)))
	}
	return c
}

// DataNodeOf maps a data placement slot to a node id.
func DataNodeOf(slot int) env.NodeID { return dataBase + env.NodeID(slot) }

// dataNodeConfigOf builds data node i's config.
func dataNodeConfigOf(c *Cluster, i int) datanode.Config {
	return datanode.Config{
		ID:           DataNodeOf(i),
		Slot:         i,
		Nodes:        c.Opts.DataNodes,
		Replication:  c.Opts.DataReplication,
		Cores:        4,
		Costs:        c.Opts.Costs,
		NodeOf:       DataNodeOf,
		RetryTimeout: c.Opts.RetryTimeout,
		Trace:        c.Opts.Trace,
	}
}

// Client returns the i-th client (mod the pool).
func (c *Cluster) Client(i int) *client.Client { return c.Clients[i%len(c.Clients)] }

// ServerID returns server i's node id.
func (c *Cluster) ServerID(i int) env.NodeID { return c.Servers[i].ID() }

// ClientID returns client i's node id (mod the pool).
func (c *Cluster) ClientID(i int) env.NodeID { return c.Client(i).ID() }

// SwitchID returns switch i's node id.
func (c *Cluster) SwitchID(i int) env.NodeID { return c.Switches[i].ID }

// SetServerCores degrades (or restores) server i's usable core count in
// place — the gray failure of §5.4-style partial degradation, where a node
// answers but slowly. Pass srv.Cores() to restore.
func (c *Cluster) SetServerCores(i, cores int) { c.Servers[i].SetCores(cores) }

// SlowSwitch adds d of extra pipeline delay to switch i (gray failure:
// a congested pipe). Zero restores nominal speed.
func (c *Cluster) SlowSwitch(i int, d env.Duration) { c.Switches[i].SetExtraDelay(d) }

// PerServerOps returns each metadata server's executed-op count, indexed by
// server number. The sum is deterministic under Sim; figures carry it as a
// load-balance signal. The slice length is the widest the server set has
// ever been: a slot removed by a shrink keeps its row at zero, so bench
// tables keep a stable shape across reconfigurations.
func (c *Cluster) PerServerOps() []uint64 {
	out := make([]uint64, c.maxServers)
	for i, s := range c.Servers {
		out[i] = s.Stats.Ops
	}
	return out
}

// metricsTopDirs bounds the per-directory tallies exported per server: only
// the hottest K directories become metric keys, keeping snapshots small and
// schema-stable no matter how wide the namespace grew.
const metricsTopDirs = 4

// FillMetrics pours the cluster's per-node counters into reg. Keys are
// stable strings (`server.<i>.ops`, `switch.<i>.queries`, ...) so two
// same-seed runs produce identical snapshots; per-directory tallies are
// exported rank-keyed (hottest first) and capped at metricsTopDirs entries.
func (c *Cluster) FillMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	// Slot-indexed over the widest-ever server set: a shrink leaves the
	// removed slot's counters at explicit zeros rather than dropping the
	// rows (-compare's shape gate reads a missing key as ROW-GONE).
	for i := 0; i < c.maxServers; i++ {
		pre := fmt.Sprintf("server.%d.", i)
		var st server.Stats
		var dirs []server.DirOp
		if i < len(c.Servers) {
			st = c.Servers[i].Stats
			dirs = c.Servers[i].DirOps()
		}
		reg.Add(pre+"ops", st.Ops)
		reg.Add(pre+"async_commits", st.AsyncCommits)
		reg.Add(pre+"sync_commits", st.SyncCommits)
		reg.Add(pre+"fallbacks", st.Fallbacks)
		reg.Add(pre+"aggregations", st.Aggregations)
		reg.Add(pre+"agg_entries", st.AggEntries)
		reg.Add(pre+"pushes", st.Pushes)
		reg.Add(pre+"retries", st.Retries)
		for rank, d := range dirs {
			if rank >= metricsTopDirs {
				break
			}
			reg.Add(fmt.Sprintf("%sdir.%d.ops", pre, rank), d.N)
		}
	}
	for i, sw := range c.Switches {
		pre := fmt.Sprintf("switch.%d.", i)
		reg.Add(pre+"queries", sw.Stats.Queries.Load())
		reg.Add(pre+"inserts", sw.Stats.Inserts.Load())
		reg.Add(pre+"removes", sw.Stats.Removes.Load())
		reg.Add(pre+"overflows", sw.Stats.Overflows.Load())
		reg.Add(pre+"forwarded", sw.Stats.Forwarded.Load())
	}
	for i, d := range c.DataServers {
		pre := fmt.Sprintf("data.%d.", i)
		reg.Add(pre+"reads", d.Stats.Reads)
		reg.Add(pre+"writes", d.Stats.Writes)
		reg.Add(pre+"replicated", d.Stats.Replicated)
		reg.Add(pre+"retries", d.Stats.Retries)
	}
}

// Run spawns fn on client i's node and, under Sim, drives the simulation
// until fn completes. Under Real it blocks on a channel.
func (c *Cluster) Run(i int, fn func(p *env.Proc, cl *client.Client)) {
	cl := c.Client(i)
	done := false
	c.Env.Spawn(cl.ID(), func(p *env.Proc) {
		fn(p, cl)
		done = true
	})
	if s, ok := c.Env.(*env.Sim); ok {
		s.Run()
		if !done {
			panic("cluster: simulation drained before the client finished (deadlock?)")
		}
	}
}

// RunNoDrain spawns fn on client i's node and, under Sim, stops the
// simulation as soon as fn completes — pending proactive-aggregation timers
// stay queued instead of draining. Fault-injection harnesses use this to
// crash components while deferred updates are still outstanding.
func (c *Cluster) RunNoDrain(i int, fn func(p *env.Proc, cl *client.Client)) {
	cl := c.Client(i)
	s, isSim := c.Env.(*env.Sim)
	c.Env.Spawn(cl.ID(), func(p *env.Proc) {
		fn(p, cl)
		if isSim {
			s.Stop()
		}
	})
	if isSim {
		s.Run()
	}
}

// CrashServer fail-stops server i (volatile state lost, WAL survives).
func (c *Cluster) CrashServer(i int) { c.Servers[i].Crash() }

// RecoverServer restarts server i from its WAL and runs §5.4.2 recovery on a
// process; it reports the virtual time the recovery took via the returned
// future (completed with env.Duration).
//
// The restart is sequenced against reconfiguration from inside the spawned
// process: a recovery landing mid-Reconfigure waits the reconfiguration out
// before building the new incarnation. Swapping c.Servers[i] any earlier
// would let step 3 migrate from a freshly-constructed, not-yet-replayed
// (empty) store; and the restart-then-replay sequence runs without a park,
// so a reconfiguration can never observe the swapped-but-unreplayed server.
func (c *Cluster) RecoverServer(i int) *env.Future {
	old := c.Servers[i]
	fut := env.NewFuture()
	c.Env.Spawn(old.ID(), func(p *env.Proc) {
		for c.reconfiguring {
			p.Sleep(100 * env.Microsecond)
		}
		if i >= len(c.Servers) {
			// A concurrent shrink removed this slot; the server has no seat
			// to rejoin (its migrated records live on the surviving ring).
			fut.Complete(fmt.Errorf("cluster: server %d was removed by reconfiguration", i))
			return
		}
		start := p.Now()
		cfg := serverConfigOf(c, i)
		srv := server.Restart(c.Env, cfg, old.WAL())
		c.Servers[i] = srv
		if err := srv.Recover(p); err != nil {
			fut.Complete(err)
			return
		}
		if c.reconfiguring {
			// A reconfiguration started while recovery ran; joining it
			// serving would expose half-migrated state. Step 4 resumes
			// everyone (its drain waited for this recovery to finish).
			srv.SetServing(false)
		}
		fut.Complete(p.Now() - start)
	})
	return fut
}

// serverConfigOf rebuilds the config used at construction time.
func serverConfigOf(c *Cluster, i int) server.Config {
	peers := make([]env.NodeID, c.Opts.Servers)
	for j := range peers {
		peers[j] = ServerOf(uint32(j))
	}
	var switchFor func(core.Fingerprint) env.NodeID
	switch c.Opts.Tracker {
	case server.TrackerServer:
		switchFor = func(core.Fingerprint) env.NodeID { return trackerNode }
	case server.TrackerOwner:
		switchFor = func(fp core.Fingerprint) env.NodeID {
			return c.Ring.OwnerNode(fp)
		}
	default:
		n := len(c.Switches)
		switchFor = func(fp core.Fingerprint) env.NodeID {
			i := int(uint64(fp)>>(core.FingerprintBits-8)) % n
			return c.Switches[i].ID
		}
	}
	return server.Config{
		ID:           ServerOf(uint32(i)),
		Cores:        c.Opts.CoresPerServer,
		Costs:        c.Opts.Costs,
		Ring:         c.Ring,
		Peers:        peers,
		SwitchFor:    switchFor,
		Coordinator:  ServerOf(0),
		Tracker:      c.Opts.Tracker,
		DataNodes:    c.Opts.DataNodes,
		Async:        c.Opts.Async,
		Compaction:   c.Opts.Compaction,
		PushEntries:  c.Opts.PushEntries,
		PushIdle:     c.Opts.PushIdle,
		OwnerQuiesce: c.Opts.OwnerQuiesce,
		RetryTimeout: c.Opts.RetryTimeout,
		Trace:        c.Opts.Trace,
	}
}

// CrashDataNode fail-stops data node i: the volatile chunk store is lost
// with the incarnation; surviving replicas carry the durability.
func (c *Cluster) CrashDataNode(i int) {
	c.DataServers[i].Crash()
	c.dataDown++
}

// RecoverDataNode restarts data node i with an empty store and
// re-replicates its stripes from the surviving peers before it serves
// again. The returned future completes with the virtual duration (or an
// error). The node counts as down until the pull completes; a recovery
// whose pull reaches no peer fails and re-fail-stops the node, so a later
// attempt (the chaos harness retries after healing) can succeed instead of
// serving an empty store.
func (c *Cluster) RecoverDataNode(i int) *env.Future {
	fut := env.NewFuture()
	id := c.DataServers[i].ID()
	c.Env.Spawn(id, func(p *env.Proc) {
		start := p.Now()
		srv := datanode.Restart(c.Env, dataNodeConfigOf(c, i))
		c.DataServers[i] = srv
		if err := srv.Recover(p); err != nil {
			srv.Crash() // stay fail-stopped (and still counted down)
			fut.Complete(err)
			return
		}
		c.dataDown--
		fut.Complete(p.Now() - start)
	})
	return fut
}

// DataNodesDown reports how many data nodes are currently fail-stopped or
// still re-replicating. A caller watching durability compares it against
// Opts.DataReplication: at >= r concurrent failures a chunk's whole
// replica set may have been wiped.
func (c *Cluster) DataNodesDown() int { return c.dataDown }

// CrashSwitch reboots the switches (§5.4.2 "Switch failure"): all dirty-set
// state clears and the switch drops off the network until RecoverSwitch
// completes — while it reboots, nothing it tracks or forwards flows, so
// reads cannot observe the momentarily-inconsistent empty dirty set.
func (c *Cluster) CrashSwitch() {
	for _, sw := range c.Switches {
		sw.Reset()
		if n := c.Env.Node(sw.ID); n != nil {
			n.SetDown(true)
		}
	}
}

// RecoverSwitch restores consistency after a switch reboot: every server
// flushes its change-logs so all directories return to normal state,
// matching the empty dirty set; only then does the switch rejoin the
// network. The returned future completes with the virtual duration.
func (c *Cluster) RecoverSwitch() *env.Future {
	fut := env.NewFuture()
	c.Env.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		start := p.Now()
		// Flush sequentially from an orchestration process; servers stop
		// serving while flushing.
		for i := 0; i < len(c.Servers); i++ {
			srv := c.Servers[i]
			sub := env.NewFuture()
			c.Env.Spawn(srv.ID(), func(sp *env.Proc) {
				srv.FlushAll(sp)
				if c.reconfiguring {
					// FlushAll re-enables serving; a concurrent Reconfigure
					// is quiescing the cluster and must stay in control of
					// when servers resume (its step 4).
					srv.SetServing(false)
				}
				sub.Complete(nil)
			})
			sub.Wait(p)
		}
		for _, sw := range c.Switches {
			if n := c.Env.Node(sw.ID); n != nil {
				n.SetDown(false)
			}
		}
		fut.Complete(p.Now() - start)
	})
	return fut
}

// String summarizes the deployment.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{%d servers × %d cores, %d switches, %d clients}",
		c.Opts.Servers, c.Opts.CoresPerServer, len(c.Switches), len(c.Clients))
}
