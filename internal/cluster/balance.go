package cluster

import (
	"fmt"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/server"
)

// Live fingerprint-group migration and the hot-directory balancer (§5.5
// elastic resharding). Unlike the historical stop-the-world Reconfigure, a
// migration here moves ONE group through the servers' gate-and-drain protocol
// while the rest of the cluster keeps serving:
//
//  1. the destination installs an arrival gate (BlockFP) and the ring pins
//     the group there (SetOverride) — both in one simulator event, so no
//     request can route to the destination before the gate exists;
//  2. the source stops admitting new requests the instant the override lands
//     (its ownership check fails → ErrRetry → clients re-resolve), while
//     requests admitted earlier drain under their busy references;
//  3. once the source is FPQuiescent the copy+evict runs in one event;
//  4. UnblockFP releases the gate and the destination serves.

const (
	// migratePollStep is the quiescence poll interval.
	migratePollStep = 100 * env.Microsecond
	// migrateBudget bounds the drain wait. It must outlast the slowest thing
	// a busy reference can cover: a prepared transaction's termination
	// protocol against a live coordinator (a few retry timeouts) and an
	// aggregation that gives up on an unreachable peer (maxAggRetries ×
	// RetryTimeout ≈ 200ms at defaults).
	migrateBudget = 250 * env.Millisecond
	// rebalanceMinGap is the absolute op-count spread below which the
	// balancer does not act (noise floor).
	rebalanceMinGap = 16
)

// MigrateFP moves one fingerprint group to dstSlot through the gate-and-drain
// protocol, without quiescing anything else. Returns nil when the group
// landed (or already lives there); on a drain timeout the override rolls back
// and the source keeps serving the group.
func (c *Cluster) MigrateFP(p *env.Proc, fp core.Fingerprint, dstSlot uint32) error {
	srcSlot := c.Ring.OwnerOf(fp)
	if srcSlot == dstSlot {
		return nil
	}
	if int(dstSlot) >= len(c.Servers) || int(srcSlot) >= len(c.Servers) {
		return fmt.Errorf("cluster: migrate %v: slot out of range (src %d, dst %d)",
			fp, srcSlot, dstSlot)
	}
	dst := c.Servers[int(dstSlot)]

	// Gate first, then pin — same event: a request racing the override can
	// reach the destination only after the gate exists.
	dst.BlockFP(fp)
	c.Ring.SetOverride(fp, dstSlot)

	deadline := p.Now() + migrateBudget
	for {
		// Re-fetch the source each iteration: a concurrent RecoverServer
		// swaps in a fresh incarnation under the same slot.
		src := c.Servers[int(srcSlot)]
		if src.Node().Down() {
			// Fail-stopped source: its volatile references died with the
			// incarnation and its store mirrors the WAL — with one durable
			// exception. A prepared-but-undecided 2PC record (recTxnPrepare)
			// survives the crash: recovery re-registers it and the decision
			// later applies its ops to THIS store, so copying the group out
			// now would strand the committed effects on the evicted copy
			// while the destination never sees them. Such a group is not
			// quiescent until the source recovers and the transaction
			// resolves — keep polling (a concurrent RecoverServer swaps in
			// the fresh incarnation) and let the deadline roll the override
			// back if recovery never comes.
			if !src.PreparedTxnOnFPInWAL(fp) {
				// No prepared state straddles the group: copy directly; the
				// eviction below lands in its (surviving) WAL, so a later
				// recovery replays the group and then drops it instead of
				// resurrecting a stale copy.
				copyGroup(src, dst, fp)
				c.moves++
				src.EvictMigrated(fp)
				dst.UnblockFP(fp)
				return nil
			}
		} else if src.FPQuiescent(fp) {
			// Poll, copy and evict share this event — atomic with respect to
			// traffic, so the quiescence answer cannot go stale under it.
			copyGroup(src, dst, fp)
			c.moves++
			src.EvictMigrated(fp)
			dst.UnblockFP(fp)
			return nil
		}
		if p.Now() >= deadline {
			// Drain wedged (e.g. a prepared transaction blocked on a crashed,
			// unrecovered coordinator). Roll the override back and release
			// the gate; waiters re-check ownership and route to the source.
			c.Ring.ClearOverride(fp)
			dst.UnblockFP(fp)
			return fmt.Errorf("cluster: migrate %v: source %d never quiesced", fp, srcSlot)
		}
		p.Sleep(migratePollStep)
	}
}

// copyGroup copies one fingerprint group — inodes, and for directories their
// entry lists and exactly-once watermarks — into dst's store, WAL-logged on
// the receiving side. Runs in one event (no parks). Returns records copied.
func copyGroup(src, dst *server.Server, fp core.Fingerprint) int {
	type rec struct {
		key core.Key
		in  *core.Inode
	}
	var inodes []rec
	src.KV().Scan(nil, func(k, v []byte) bool {
		key, err := core.DecodeKey(k)
		if err != nil {
			return true // dentries move with their directory below
		}
		if key.Fingerprint() != fp {
			return true
		}
		in, err := core.DecodeInode(v)
		if err != nil {
			return true
		}
		inodes = append(inodes, rec{key: key, in: in})
		return true
	})
	moved := 0
	for _, r := range inodes {
		dst.InjectInode(r.key, r.in, true)
		moved++
		if r.in.Type == core.TypeDir {
			// Watermarks first: sources may re-push entries the old owner
			// already applied, and only the watermark deduplicates them.
			for _, m := range src.AppliedMarks(r.in.ID) {
				dst.InjectAppliedMark(m.Src, r.in.ID, m.ID, true)
			}
			prefix := core.EntryPrefix(r.in.ID)
			var dents []core.DirEntry
			src.KV().Scan(prefix, func(k, v []byte) bool {
				name := string(k[len(prefix):])
				if de, err := core.DecodeDirEntry(name, v); err == nil {
					dents = append(dents, de)
				}
				return true
			})
			for _, de := range dents {
				dst.InjectDentry(r.in.ID, de, true)
				moved++
			}
		}
	}
	return moved
}

// Moves reports completed group migrations (rebalance + reconfigure).
func (c *Cluster) Moves() uint64 { return c.moves }

// RebalanceOnce runs one balancer pass: read each server's per-group op
// tallies, and if the spread between the most- and least-loaded live servers
// is large enough, migrate the hottest group whose move strictly shrinks the
// spread. Tallies reset after the pass so the next decision measures load
// since this one, not history. Returns the number of groups moved (0 or 1).
func (c *Cluster) RebalanceOnce(p *env.Proc) int {
	type load struct {
		slot int
		ops  uint64
		fps  []server.FPOp
	}
	var live []load
	for i, srv := range c.Servers {
		if srv.Node().Down() || !srv.Serving() {
			continue
		}
		fps := srv.FPOps()
		var sum uint64
		for _, f := range fps {
			sum += f.N
		}
		live = append(live, load{slot: i, ops: sum, fps: fps})
	}
	if len(live) < 2 {
		return 0
	}
	src, dstIdx := 0, 0
	for i, l := range live {
		if l.ops > live[src].ops {
			src = i
		}
		if l.ops < live[dstIdx].ops {
			dstIdx = i
		}
	}
	maxLoad, minLoad := live[src].ops, live[dstIdx].ops
	moved := 0
	if maxLoad >= 2*minLoad && maxLoad-minLoad >= rebalanceMinGap {
		// Hottest group on the overloaded server that (a) the ring still
		// routes there and (b) whose move strictly improves the spread — a
		// group as hot as the whole imbalance would just carry the hot spot
		// to the destination.
		for _, f := range live[src].fps {
			if f.N == 0 || minLoad+f.N >= maxLoad {
				continue
			}
			if int(c.Ring.OwnerOf(f.FP)) != live[src].slot {
				continue
			}
			if c.MigrateFP(p, f.FP, uint32(live[dstIdx].slot)) == nil {
				moved = 1
			}
			break
		}
	}
	for _, l := range live {
		c.Servers[l.slot].ResetFPOps()
	}
	return moved
}

// Rebalance runs one balancer pass from an orchestration process. The future
// completes with the virtual duration of the pass.
func (c *Cluster) Rebalance() *env.Future {
	fut := env.NewFuture()
	c.Env.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		start := p.Now()
		c.RebalanceOnce(p)
		fut.Complete(p.Now() - start)
	})
	return fut
}
