package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/env"
	"switchfs/internal/trace"
	"switchfs/internal/wire"
)

// Integration tests for causal tracing: spans recorded across clients,
// switches, servers and the 2PC machinery must form one well-shaped tree per
// client op, even under retransmissions and coordinator crashes.

// traceSim is sim() with a recorder wired through every component.
func traceSim(t *testing.T, opts Options, keep int) (*env.Sim, *Cluster, *trace.Recorder) {
	t.Helper()
	rec := trace.New(trace.Config{Keep: keep})
	opts.Trace = rec
	s, c := sim(t, opts)
	return s, c, rec
}

// assertWellShaped validates the span set and checks every kept trace has
// exactly one root span.
func assertWellShaped(t *testing.T, rec *trace.Recorder) []trace.Span {
	t.Helper()
	spans := rec.Spans()
	if err := trace.Validate(spans); err != nil {
		t.Fatalf("trace validation: %v", err)
	}
	roots := map[uint64]int{}
	for _, s := range spans {
		if s.Parent == 0 {
			roots[s.Trace]++
		}
	}
	for id, n := range roots {
		if n != 1 {
			t.Errorf("trace %d has %d root spans, want 1", id, n)
		}
	}
	return spans
}

// TestTraceRetransmissionJoinsOriginalTrace runs a workload under packet
// loss: resent RPCs must join their op's original trace (the packet is
// stamped once, before the retry loop), so a lossy run yields traces with
// multiple attempt spans under one parent — never orphan spans or extra
// roots.
func TestTraceRetransmissionJoinsOriginalTrace(t *testing.T) {
	s, c, rec := traceSim(t, Options{Servers: 4, Clients: 1}, 64)
	s.Net().DropProb = 0.1
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/d", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
	})
	if c.Clients[0].Retries == 0 {
		t.Fatal("no retransmissions happened; the loss rate is too low to exercise the path")
	}
	spans := assertWellShaped(t, rec)
	// Some op must show >1 attempt under the same parent: the retry joined
	// the original trace instead of opening a new one.
	attempts := map[[2]uint64]int{} // (trace, parent) -> attempt count
	for _, sp := range spans {
		if sp.Name == "attempt" {
			attempts[[2]uint64{sp.Trace, sp.Parent}]++
		}
	}
	multi := 0
	for _, n := range attempts {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("retries happened but no trace holds multiple attempt spans under one parent")
	}
}

// TestTraceRenameSpanTree performs cross-server renames and asserts the kept
// rename trace covers the full causal chain in one tree: client attempt,
// server handler, 2PC prepare/decision, and the participants' WAL appends.
func TestTraceRenameSpanTree(t *testing.T) {
	_, c, rec := traceSim(t, Options{Servers: 4, Clients: 1}, 64)
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := cl.Rename(p, src, dst); err != nil {
			t.Errorf("rename: %v", err)
		}
	})
	spans := assertWellShaped(t, rec)
	byTrace := map[uint64]map[string]bool{}
	var renameTrace uint64
	for _, sp := range spans {
		m := byTrace[sp.Trace]
		if m == nil {
			m = map[string]bool{}
			byTrace[sp.Trace] = m
		}
		m[sp.Cat+":"+sp.Name] = true
		if sp.Parent == 0 && sp.Name == "op:rename" {
			renameTrace = sp.Trace
		}
	}
	if renameTrace == 0 {
		t.Fatal("no kept trace rooted at op:rename")
	}
	got := byTrace[renameTrace]
	for _, want := range []string{
		"client:attempt",         // client RPC try
		"server:rename",          // coordinator handler
		"server:txn:run",         // transaction driver
		"server:txn:prepare",     // prepare round
		"server:wal:txn-prepare", // participant's prepared-state append
		"server:txn:decision",    // decision round
		"server:wal:txn-commit",  // coordinator's commit record
	} {
		if !got[want] {
			t.Errorf("rename trace misses span %q (has %v)", want, keysOf(got))
		}
	}
	// A create elsewhere in the run must show the switch hop.
	foundSwitch := false
	for _, m := range byTrace {
		if m["switch:ds:insert"] || m["switch:ds:query"] {
			foundSwitch = true
			break
		}
	}
	if !foundSwitch {
		t.Error("no kept trace contains a switch span; dirty-set hops are untraced")
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceCoordinatorCrashNoDoubleCount reruns the redriven-commit scenario
// (coordinator crashes after participants applied, recovery re-drives the
// WAL-logged decision) with tracing on: the replay runs on spawned procs
// with no ambient context, so kept traces must stay well-shaped and no trace
// may hold more than one commit-record span.
func TestTraceCoordinatorCrashNoDoubleCount(t *testing.T) {
	s, c, rec := traceSim(t, Options{Servers: 4, Clients: 1,
		RetryTimeout: 200 * env.Microsecond}, 64)
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create %s: %v", src, err)
		}
	})
	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		if pkt, ok := msg.(*wire.Packet); ok {
			if _, isDone := pkt.Body.(*wire.TxnDone); isDone {
				return env.Drop
			}
		}
		return env.Pass
	}
	s.After(5*env.Millisecond, func() { c.CrashServer(0) })
	s.After(10*env.Millisecond, func() { s.Net().Filter = nil })
	s.After(11*env.Millisecond, func() { c.RecoverServer(0) })
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		_ = cl.Rename(p, src, dst)
	})

	spans := assertWellShaped(t, rec)
	commits := map[uint64]int{}
	for _, sp := range spans {
		if sp.Name == "wal:txn-commit" {
			commits[sp.Trace]++
		}
	}
	for id, n := range commits {
		if n > 1 {
			t.Errorf("trace %d holds %d wal:txn-commit spans; the redrive double-counted", id, n)
		}
	}
}

// TestTraceDeterministicAcrossRuns asserts the headline invariant at the
// cluster level: two same-seed runs export byte-identical trace files.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	gen := func() string {
		rec := trace.New(trace.Config{Keep: 16})
		s := env.NewSim(11)
		defer s.Shutdown()
		c := New(s, Options{Servers: 4, Clients: 1, SwitchIndexBits: 8, Trace: rec})
		s.Net().DropProb = 0.05
		c.Run(0, func(p *env.Proc, cl *client.Client) {
			cl.Mkdir(p, "/d", 0)
			for i := 0; i < 20; i++ {
				cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
			}
		})
		var buf bytes.Buffer
		if err := rec.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.String()
	}
	if a, b := gen(), gen(); a != b {
		t.Fatal("same-seed cluster runs exported different trace bytes")
	}
}
