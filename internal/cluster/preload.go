package cluster

import (
	"fmt"
	"strconv"

	"switchfs/internal/core"
	"switchfs/internal/server"
)

// Preload injects a namespace directly into the servers' stores, bypassing
// the protocol — the fixture loader benchmarks use to stand up the paper's
// 10-million-file datasets without paying 10 million simulated creates.
// Directories and files are placed exactly where the protocol would put
// them, with consistent entry lists and sizes.
type Preload struct {
	c     *Cluster
	idgen *core.IDGen
	dirs  map[string]core.DirRef
	// LogWAL makes injected records WAL-backed so they survive simulated
	// crashes (the §7.7 recovery experiments need a WAL-resident dataset).
	LogWAL bool
}

// NewPreload starts a preload session.
func NewPreload(c *Cluster) *Preload {
	return &Preload{
		c:     c,
		idgen: core.NewIDGen(0xBEEF),
		dirs:  map[string]core.DirRef{"/": core.RootRef()},
	}
}

func (pl *Preload) serverFor(fp core.Fingerprint) *server.Server {
	slot := pl.c.Ring.OwnerOf(fp)
	return pl.c.Servers[int(slot)]
}

// Dir ensures a directory path exists, creating ancestors as needed, and
// returns its ref.
func (pl *Preload) Dir(path string) core.DirRef {
	if ref, ok := pl.dirs[path]; ok {
		return ref
	}
	comps, err := core.SplitPath(path)
	if err != nil {
		panic(fmt.Sprintf("preload: bad path %q: %v", path, err))
	}
	cur := core.RootRef()
	walked := ""
	for _, comp := range comps {
		walked += "/" + comp
		if ref, ok := pl.dirs[walked]; ok {
			cur = ref
			continue
		}
		key := core.Key{PID: cur.ID, Name: comp}
		ref := core.DirRef{ID: pl.idgen.Next(), Key: key, FP: key.Fingerprint()}
		in := &core.Inode{
			Attr: core.Attr{Type: core.TypeDir, Perm: core.DefaultDirPerm, Nlink: 2},
			ID:   ref.ID,
		}
		owner := pl.serverFor(ref.FP)
		owner.InjectInode(key, in, pl.LogWAL)
		// Parent's dentry + size live with the parent.
		pp := pl.serverFor(cur.FP)
		pp.InjectDentry(cur.ID, core.DirEntry{Name: comp, Type: core.TypeDir, Perm: core.DefaultDirPerm}, pl.LogWAL)
		pl.bumpSize(cur, +1)
		pl.dirs[walked] = ref
		cur = ref
	}
	return cur
}

// Files adds n regular files named prefix0..prefix(n-1) to a directory.
// This is the hot path of large-namespace fixtures (the scale figure injects
// tens of millions of files), so names are assembled with an append buffer
// instead of fmt and the identical per-file inode is built once.
func (pl *Preload) Files(dir string, prefix string, n int) {
	ref := pl.Dir(dir)
	owner := pl.serverFor(ref.FP)
	in := &core.Inode{Attr: core.Attr{Type: core.TypeRegular, Perm: core.DefaultFilePerm, Nlink: 1}}
	buf := make([]byte, 0, len(prefix)+20)
	buf = append(buf, prefix...)
	for i := 0; i < n; i++ {
		name := string(strconv.AppendInt(buf[:len(prefix)], int64(i), 10))
		key := core.Key{PID: ref.ID, Name: name}
		pl.serverFor(key.Fingerprint()).InjectInode(key, in, pl.LogWAL)
		owner.InjectDentry(ref.ID, core.DirEntry{Name: name, Type: core.TypeRegular, Perm: core.DefaultFilePerm}, pl.LogWAL)
	}
	pl.bumpSize(ref, int64(n))
}

// bumpSize adjusts a directory inode's entry count in place.
func (pl *Preload) bumpSize(ref core.DirRef, delta int64) {
	owner := pl.serverFor(ref.FP)
	raw, ok := owner.KV().Get(ref.Key.Encode())
	if !ok {
		return
	}
	in, err := core.DecodeInode(raw)
	if err != nil {
		return
	}
	in.Size += delta
	owner.KV().Put(ref.Key.Encode(), core.EncodeInode(in))
}
