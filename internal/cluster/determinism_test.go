package cluster

import (
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/env"
)

// trackerOwnerTrace runs a TrackerOwner workload whose statdir aggregation
// fans fetches out to the expected peer set, and returns the observable
// signature of the run: the final virtual time plus every server's counters.
func trackerOwnerTrace(seed int64) string {
	s := env.NewSim(seed)
	defer s.Shutdown()
	// Asymmetric per-link delays make the fan-out order observable: with
	// symmetric links the completion time is the max over interchangeable
	// peers, which permuting the per-send jitter draws cannot change.
	for i := env.NodeID(100); i < 104; i++ {
		for j := env.NodeID(100); j < 104; j++ {
			if i != j {
				s.Net().SetLink(i, j, env.LinkRule{Delay: env.Duration(i*7+j) * 50 * env.Nanosecond})
			}
		}
	}
	c := New(s, Options{Servers: 4, Clients: 1, Tracker: 2 /* TrackerOwner */, SwitchIndexBits: 8})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 16; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
		cl.StatDir(p, "/d")
		for i := 0; i < 16; i++ {
			cl.Stat(p, fmt.Sprintf("/d/f%d", i))
		}
		cl.StatDir(p, "/d")
	})
	out := fmt.Sprintf("now=%d", s.Now())
	for i, srv := range c.Servers {
		out += fmt.Sprintf(" s%d=%+v", i, srv.Stats)
	}
	return out
}

// TestTrackerOwnerDeterminism pins the PR6 aggregation fix: the owner-tracker
// fetch multicast used to walk ctx.expect in map order, and each send draws
// latency jitter from the seeded RNG, so two same-seed runs could order the
// draws differently and diverge. The multicast now iterates sortedNodeIDs;
// two fresh simulations of the same seed must agree exactly.
func TestTrackerOwnerDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 999} {
		a := trackerOwnerTrace(seed)
		b := trackerOwnerTrace(seed)
		if a != b {
			t.Errorf("seed %d: two runs diverged:\n  run1: %s\n  run2: %s", seed, a, b)
		}
	}
}
