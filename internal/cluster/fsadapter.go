package cluster

import (
	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
	"switchfs/internal/wire"
)

// fsAdapter exposes a SwitchFS client through the fsapi surface shared with
// the baselines.
type fsAdapter struct {
	c  *Cluster
	cl *client.Client
}

var _ fsapi.FS = (*fsAdapter)(nil)

// ClientFS implements fsapi.System.
func (c *Cluster) ClientFS(i int) fsapi.FS { return &fsAdapter{c: c, cl: c.Client(i)} }

// Name implements fsapi.System.
func (c *Cluster) Name() string { return "SwitchFS" }

// Preload implements fsapi.System.
func (c *Cluster) Preload(dirs []string, filesPerDir int) {
	pl := NewPreload(c)
	for _, d := range dirs {
		if filesPerDir > 0 {
			pl.Files(d, "f", filesPerDir)
		} else {
			pl.Dir(d)
		}
	}
}

func (a *fsAdapter) Create(p *env.Proc, path string) error { return a.cl.Create(p, path, 0) }
func (a *fsAdapter) Delete(p *env.Proc, path string) error { return a.cl.Delete(p, path) }
func (a *fsAdapter) Mkdir(p *env.Proc, path string) error  { return a.cl.Mkdir(p, path, 0) }
func (a *fsAdapter) Rmdir(p *env.Proc, path string) error  { return a.cl.Rmdir(p, path) }

func (a *fsAdapter) Stat(p *env.Proc, path string) (core.Attr, error) {
	return a.cl.Stat(p, path)
}

func (a *fsAdapter) Open(p *env.Proc, path string) (core.Attr, error) {
	attr, _, err := a.cl.Open(p, path)
	return attr, err
}

func (a *fsAdapter) Close(p *env.Proc, path string) error { return a.cl.Close(p, path) }

func (a *fsAdapter) Chmod(p *env.Proc, path string, perm core.Perm) error {
	return a.cl.Chmod(p, path, perm)
}

func (a *fsAdapter) StatDir(p *env.Proc, path string) (core.Attr, error) {
	return a.cl.StatDir(p, path)
}

func (a *fsAdapter) ReadDir(p *env.Proc, path string) ([]core.DirEntry, error) {
	return a.cl.ReadDir(p, path)
}

func (a *fsAdapter) Rename(p *env.Proc, src, dst string) error { return a.cl.Rename(p, src, dst) }

func (a *fsAdapter) Link(p *env.Proc, src, dst string) error { return a.cl.Link(p, src, dst) }

func (a *fsAdapter) Data(p *env.Proc, shard int, write bool, bytes int64) error {
	if len(a.c.DataNodes) == 0 {
		return nil
	}
	op := core.OpRead
	if write {
		op = core.OpWrite
	}
	chunk := wire.ChunkKey{File: uint32(shard)}
	return a.cl.Data(p, a.c.DataNodes[shard%len(a.c.DataNodes)], op, chunk, bytes)
}

var _ fsapi.System = (*Cluster)(nil)
var _ wire.Msg = (*wire.DataReq)(nil)

// SpawnClient runs fn as a process on client i's node (workload workers).
func (c *Cluster) SpawnClient(i int, fn func(p *env.Proc)) {
	c.Env.Spawn(c.Client(i).ID(), fn)
}

// Drain implements fsapi.System: every server flushes its change-logs to the
// owners, applying all deferred updates now instead of on the proactive
// timers. Throughput accounting charges this work to the run that deferred
// it.
func (c *Cluster) Drain(p *env.Proc) {
	futs := make([]*env.Future, len(c.Servers))
	for i, srv := range c.Servers {
		srv := srv
		fut := env.NewFuture()
		futs[i] = fut
		c.Env.Spawn(srv.ID(), func(sp *env.Proc) {
			srv.FlushAll(sp)
			fut.Complete(nil)
		})
	}
	for _, fut := range futs {
		fut.Wait(p)
	}
}
