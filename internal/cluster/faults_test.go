package cluster

import (
	"errors"
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// Tests of the fault-tolerance machinery: UDP loss/duplication (§5.4.1),
// dirty-set overflow fallback (§5.2.1/§6.2), server and switch crash
// recovery (§5.4.2), and the consistency arguments of §A.1/§A.2.

func TestPacketLossTolerated(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	s.Net().DropProb = 0.05 // every message class must survive 5% loss
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/d", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil {
			t.Errorf("statdir: %v", err)
			return
		}
		if attr.Size != 30 {
			t.Errorf("size=%d, want 30 (loss broke exactly-once)", attr.Size)
		}
	})
}

func TestPacketDuplicationTolerated(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	s.Net().DupProb = 0.2
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/d", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 30 {
			t.Errorf("size=%d err=%v, want 30 (duplication double-applied)", attr.Size, err)
		}
	})
}

func TestLossAndDuplicationHeavy(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	s.Net().DropProb = 0.1
	s.Net().DupProb = 0.1
	s.Net().Jitter = 3 * env.Microsecond // heavy reordering
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 20; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if i%3 == 0 {
				if err := cl.Delete(p, fmt.Sprintf("/d/f%d", i)); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
		attr, err := cl.StatDir(p, "/d")
		want := int64(20 - 7)
		if err != nil || attr.Size != want {
			t.Errorf("size=%d err=%v, want %d", attr.Size, err, want)
		}
	})
}

func TestDirtySetOverflowFallback(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1, ForceOverflow: true})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/d", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		// With every insert falling back, updates are applied synchronously:
		// statdir must see them without any aggregation.
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 10 {
			t.Errorf("size=%d err=%v, want 10", attr.Size, err)
		}
	})
	if c.Switches[0].Stats.Overflows.Load() == 0 {
		t.Error("no overflow was exercised")
	}
	for _, srv := range c.Servers {
		if srv.Stats.Fallbacks > 0 {
			return
		}
	}
	t.Error("no server took the fallback path")
}

func TestServerCrashRecovery(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 20; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
	})
	// Crash server 1 with pending change-log entries, then recover it.
	c.CrashServer(1)
	fut := c.RecoverServer(1)
	s.Run()
	if !fut.Done() {
		t.Fatal("recovery did not complete")
	}
	// All metadata must be intact and reads must see every update.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 20 {
			t.Errorf("after recovery: size=%d err=%v, want 20", attr.Size, err)
			return
		}
		for i := 0; i < 20; i++ {
			if _, err := cl.Stat(p, fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("stat f%d after recovery: %v", i, err)
				return
			}
		}
		// The recovered server must serve new operations.
		if err := cl.Create(p, "/d/after-crash", 0); err != nil {
			t.Errorf("create after recovery: %v", err)
		}
	})
}

func TestSwitchCrashRecovery(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 15; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
	})
	// Reboot the switch: all dirty-set state is lost. Recovery flushes all
	// change-logs so the empty dirty set is consistent (§5.4.2).
	c.CrashSwitch()
	fut := c.RecoverSwitch()
	s.Run()
	if !fut.Done() {
		t.Fatal("switch recovery did not complete")
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		// The directory reads normal (fingerprint absent) yet must reflect
		// every pre-crash update.
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 15 {
			t.Errorf("size=%d err=%v, want 15", attr.Size, err)
			return
		}
		if err := cl.Create(p, "/d/post", 0); err != nil {
			t.Errorf("create after switch recovery: %v", err)
			return
		}
		attr, err = cl.StatDir(p, "/d")
		if err != nil || attr.Size != 16 {
			t.Errorf("post-recovery updates: size=%d err=%v, want 16", attr.Size, err)
		}
	})
}

func TestRenameFile(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/a", 0)
		cl.Mkdir(p, "/b", 0)
		cl.Create(p, "/a/f", 0)
		if err := cl.Rename(p, "/a/f", "/b/g"); err != nil {
			t.Errorf("rename: %v", err)
			return
		}
		if _, err := cl.Stat(p, "/a/f"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("src still visible: %v", err)
		}
		if _, err := cl.Stat(p, "/b/g"); err != nil {
			t.Errorf("dst missing: %v", err)
		}
		a, err := cl.StatDir(p, "/a")
		if err != nil || a.Size != 0 {
			t.Errorf("src parent size=%d err=%v", a.Size, err)
		}
		b, err := cl.StatDir(p, "/b")
		if err != nil || b.Size != 1 {
			t.Errorf("dst parent size=%d err=%v", b.Size, err)
		}
	})
}

func TestRenameDirectoryMigratesEntries(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/a", 0)
		cl.Mkdir(p, "/a/sub", 0)
		for i := 0; i < 5; i++ {
			cl.Create(p, fmt.Sprintf("/a/sub/f%d", i), 0)
		}
		if err := cl.Rename(p, "/a/sub", "/moved"); err != nil {
			t.Errorf("rename dir: %v", err)
			return
		}
		es, err := cl.ReadDir(p, "/moved")
		if err != nil {
			t.Errorf("readdir moved: %v", err)
			return
		}
		if len(es) != 5 {
			t.Errorf("moved dir has %d entries, want 5", len(es))
		}
		if _, err := cl.Stat(p, "/moved/f3"); err != nil {
			t.Errorf("stat moved child: %v", err)
		}
		if _, err := cl.StatDir(p, "/a/sub"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("old dir still visible: %v", err)
		}
	})
}

func TestRenameLoopRejected(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/x", 0)
		cl.Mkdir(p, "/x/y", 0)
		if err := cl.Rename(p, "/x", "/x/y/z"); !errors.Is(err, core.ErrLoop) {
			t.Errorf("loop rename: %v, want ErrLoop", err)
		}
	})
}

func TestRenameDstExists(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/a", 0)
		cl.Create(p, "/a/f", 0)
		cl.Create(p, "/a/g", 0)
		if err := cl.Rename(p, "/a/f", "/a/g"); !errors.Is(err, core.ErrExist) {
			t.Errorf("rename onto existing: %v, want EEXIST", err)
		}
		// Failed rename must leave both files intact (2PC abort).
		if _, err := cl.Stat(p, "/a/f"); err != nil {
			t.Errorf("src gone after aborted rename: %v", err)
		}
	})
}

func TestHardLink(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/a", 0)
		cl.Create(p, "/a/orig", 0)
		if err := cl.Link(p, "/a/orig", "/a/lnk"); err != nil {
			t.Errorf("link: %v", err)
			return
		}
		if _, err := cl.Stat(p, "/a/lnk"); err != nil {
			t.Errorf("stat link: %v", err)
		}
		attr, err := cl.StatDir(p, "/a")
		if err != nil || attr.Size != 2 {
			t.Errorf("dir size=%d err=%v, want 2", attr.Size, err)
		}
		// Deleting one reference keeps the other alive.
		if err := cl.Delete(p, "/a/orig"); err != nil {
			t.Errorf("delete orig: %v", err)
		}
		if _, err := cl.Stat(p, "/a/lnk"); err != nil {
			t.Errorf("stat link after delete: %v", err)
		}
		if err := cl.Delete(p, "/a/lnk"); err != nil {
			t.Errorf("delete lnk: %v", err)
		}
	})
}

func TestChmodAndPermPropagation(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/a", 0)
		cl.Create(p, "/a/f", 0o640)
		if err := cl.Chmod(p, "/a/f", 0o400); err != nil {
			t.Errorf("chmod: %v", err)
			return
		}
		attr, err := cl.Stat(p, "/a/f")
		if err != nil || attr.Perm != 0o400 {
			t.Errorf("perm=%o err=%v, want 400", attr.Perm, err)
		}
	})
}

func TestProactiveAggregationDrainsLogs(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, PushEntries: 5,
		PushIdle: 100 * env.Microsecond, OwnerQuiesce: 150 * env.Microsecond})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 23; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
		// Wait well past the push-idle and owner-quiesce windows.
		p.Sleep(5 * env.Millisecond)
	})
	// The proactive path must have pushed and aggregated: the fingerprint is
	// gone from the dirty set without any client read.
	if occ := c.Switches[0].Occupied(); occ != 0 {
		t.Errorf("dirty set still holds %d fingerprints after quiesce", occ)
	}
	pushes := uint64(0)
	for _, srv := range c.Servers {
		pushes += srv.Stats.Pushes
	}
	if pushes == 0 {
		t.Error("no proactive pushes happened")
	}
	_ = s
	// And a subsequent statdir sees everything without aggregation cost.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 23 {
			t.Errorf("size=%d err=%v, want 23", attr.Size, err)
		}
	})
}

func TestTrackerOwnerMode(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1, Tracker: 2 /* TrackerOwner */})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 8; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 8 {
			t.Errorf("size=%d err=%v, want 8", attr.Size, err)
		}
	})
}

func TestTrackerServerMode(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1, Tracker: 1 /* TrackerServer */})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 8; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 8 {
			t.Errorf("size=%d err=%v, want 8", attr.Size, err)
		}
	})
}

func TestMultiSwitchDeployment(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1, Switches: 4})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for d := 0; d < 8; d++ {
			dir := fmt.Sprintf("/d%d", d)
			if err := cl.Mkdir(p, dir, 0); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < 4; i++ {
				cl.Create(p, fmt.Sprintf("%s/f%d", dir, i), 0)
			}
			attr, err := cl.StatDir(p, dir)
			if err != nil || attr.Size != 4 {
				t.Errorf("%s: size=%d err=%v", dir, attr.Size, err)
				return
			}
		}
	})
	// Traffic must actually spread across switches.
	busy := 0
	for _, sw := range c.Switches {
		if sw.Stats.Inserts.Load() > 0 || sw.Stats.Queries.Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of %d switches saw dirty-set traffic", busy, len(c.Switches))
	}
}

func TestBaselineSyncMode(t *testing.T) {
	s := env.NewSim(7)
	t.Cleanup(s.Shutdown)
	opts := Options{Servers: 4, Clients: 1, SwitchIndexBits: 8}
	opts.Async = false
	opts.Compaction = false
	c := NewWithModes(s, opts)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 10; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/f%d", i), 0); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 10 {
			t.Errorf("size=%d err=%v, want 10", attr.Size, err)
		}
	})
	for _, srv := range c.Servers {
		if srv.Stats.AsyncCommits > 0 {
			t.Error("baseline mode performed async commits")
		}
	}
}

// TestTargetedRemoveDuplication replays the §5.4.1 hazard: a duplicated
// dirty-set remove must not erase fingerprints inserted after the
// aggregation completed (the sequence-number guard).
func TestTargetedRemoveDuplication(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		if pkt, ok := msg.(*wire.Packet); ok && pkt.DS != nil && pkt.DS.Op == wire.DSRemove {
			return env.Dup // duplicate every remove
		}
		return env.Pass
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for round := 0; round < 5; round++ {
			for i := 0; i < 4; i++ {
				cl.Create(p, fmt.Sprintf("/d/r%d-f%d", round, i), 0)
			}
			attr, err := cl.StatDir(p, "/d") // aggregation sends a remove
			if err != nil {
				t.Errorf("statdir: %v", err)
				return
			}
			want := int64(4 * (round + 1))
			if attr.Size != want {
				t.Errorf("round %d: size=%d, want %d", round, attr.Size, want)
				return
			}
		}
	})
	if st := c.Switches[0].Stats.StaleRem.Load(); st == 0 {
		t.Error("duplicated removes were never rejected by the sequence guard")
	}
}

func TestReconfigureAddServers(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 30; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
	})
	fut := c.Reconfigure(8)
	s.Run()
	if v, ok := fut.Peek(); !ok {
		t.Fatal("reconfiguration did not complete")
	} else if err, isErr := v.(error); isErr {
		t.Fatal(err)
	}
	if len(c.Servers) != 8 {
		t.Fatalf("cluster has %d servers", len(c.Servers))
	}
	// All metadata must survive the migration, and new writes must land on
	// the grown cluster.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 30 {
			t.Errorf("statdir after grow: size=%d err=%v, want 30", attr.Size, err)
			return
		}
		for i := 0; i < 30; i++ {
			if _, err := cl.Stat(p, fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("stat f%d after grow: %v", i, err)
				return
			}
		}
		for i := 0; i < 10; i++ {
			if err := cl.Create(p, fmt.Sprintf("/d/post%d", i), 0); err != nil {
				t.Errorf("create after grow: %v", err)
				return
			}
		}
		attr, err = cl.StatDir(p, "/d")
		if err != nil || attr.Size != 40 {
			t.Errorf("final size=%d err=%v, want 40", attr.Size, err)
		}
	})
	// The new servers actually own data.
	owned := 0
	for i := 4; i < 8; i++ {
		if c.Servers[i].KV().Len() > 0 {
			owned++
		}
	}
	if owned == 0 {
		t.Error("no metadata migrated to the new servers")
	}
}

func TestReconfigureShrink(t *testing.T) {
	s, c := sim(t, Options{Servers: 6, Clients: 1})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/d", 0)
		for i := 0; i < 20; i++ {
			cl.Create(p, fmt.Sprintf("/d/f%d", i), 0)
		}
	})
	fut := c.Reconfigure(4)
	s.Run()
	if _, ok := fut.Peek(); !ok {
		t.Fatal("shrink did not complete")
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/d")
		if err != nil || attr.Size != 20 {
			t.Errorf("after shrink: size=%d err=%v", attr.Size, err)
		}
		if _, err := cl.Stat(p, "/d/f11"); err != nil {
			t.Errorf("stat after shrink: %v", err)
		}
	})
}

func TestClientCacheAvoidsLookups(t *testing.T) {
	_, c := sim(t, Options{Servers: 4, Clients: 1})
	cl := c.Client(0)
	c.Run(0, func(p *env.Proc, cc *client.Client) {
		cc.Mkdir(p, "/warm", 0)
		for i := 0; i < 20; i++ {
			cc.Create(p, fmt.Sprintf("/warm/f%d", i), 0)
		}
	})
	lookups := cl.Lookups
	c.Run(0, func(p *env.Proc, cc *client.Client) {
		for i := 0; i < 20; i++ {
			cc.Stat(p, fmt.Sprintf("/warm/f%d", i))
		}
	})
	if cl.Lookups != lookups {
		t.Errorf("warm-cache stats issued %d lookups", cl.Lookups-lookups)
	}
	if cl.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestLazyInvalidationAcrossClients(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 2})
	// Client 0 builds and caches a path; client 1 removes the directory;
	// client 0's next use must observe the removal via lazy invalidation.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		cl.Mkdir(p, "/volatile", 0)
		cl.Create(p, "/volatile/f", 0)
		if _, err := cl.Stat(p, "/volatile/f"); err != nil {
			t.Errorf("warm stat: %v", err)
		}
	})
	c.Run(1, func(p *env.Proc, cl *client.Client) {
		if err := cl.Delete(p, "/volatile/f"); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if err := cl.Rmdir(p, "/volatile"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
	})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		// The cached /volatile entry is stale; the create must fail cleanly
		// with ENOENT after cache refresh, not corrupt anything.
		err := cl.Create(p, "/volatile/g", 0)
		if !errors.Is(err, core.ErrNotExist) && !errors.Is(err, core.ErrTimeout) {
			t.Errorf("create under removed dir: %v", err)
		}
	})
	_ = s
}

func TestReadDirConsistentWithStatDirUnderChurn(t *testing.T) {
	// Property-style check: after any interleaving of creates/deletes, the
	// entry-list length equals the directory size — durable visibility plus
	// exact compaction accounting.
	s, c := sim(t, Options{Servers: 8, Clients: 4})
	c.Run(0, func(p *env.Proc, cl *client.Client) { cl.Mkdir(p, "/churn", 0) })
	for w := 0; w < 4; w++ {
		w := w
		cl := c.Client(w)
		s.Spawn(cl.ID(), func(p *env.Proc) {
			for i := 0; i < 30; i++ {
				f := fmt.Sprintf("/churn/w%d-%d", w, i%7)
				if i%3 != 2 {
					cl.Create(p, f, 0)
				} else {
					cl.Delete(p, f)
				}
				if i%11 == 10 {
					cl.StatDir(p, "/churn")
				}
			}
		})
	}
	s.Run()
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/churn")
		if err != nil {
			t.Errorf("statdir: %v", err)
			return
		}
		es, err := cl.ReadDir(p, "/churn")
		if err != nil {
			t.Errorf("readdir: %v", err)
			return
		}
		if int64(len(es)) != attr.Size {
			t.Errorf("entry list %d entries vs size %d", len(es), attr.Size)
		}
		// Cross-check against per-file stats.
		live := 0
		for w := 0; w < 4; w++ {
			for n := 0; n < 7; n++ {
				if _, err := cl.Stat(p, fmt.Sprintf("/churn/w%d-%d", w, n)); err == nil {
					live++
				}
			}
		}
		if live != len(es) {
			t.Errorf("%d live inodes vs %d entries", live, len(es))
		}
	})
}
