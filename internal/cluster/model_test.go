package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// modelAbort aborts a model-check closure from inside a simulated process.
type modelAbort string

func failf(format string, args ...any) {
	panic(modelAbort(fmt.Sprintf(format, args...)))
}

// TestRandomOpsAgainstModel drives long random operation sequences from a
// single client against the full asynchronous protocol and cross-checks
// every response — and the final aggregated state — against an in-memory
// model filesystem. Sequential operations make the expected state exact, so
// this catches lost updates, double-applies, compaction accounting errors,
// and stale reads across creates, deletes, mkdir, rmdir, statdir, readdir
// and renames. Several seeds, one with packet loss and duplication.
func TestRandomOpsAgainstModel(t *testing.T) {
	seeds := []struct {
		seed  int64
		drop  float64
		dup   float64
		steps int
	}{
		{seed: 101, steps: 400},
		{seed: 202, steps: 400},
		// The lossy+duplicating adversary runs full length: the divergence
		// this seed used to surface past ~200 steps (an aggregation
		// retransmitting its dirty-set remove under a fresh sequence number,
		// silently erasing fingerprints inserted after the aggregation
		// began) was found by the chaos checker and fixed — removes now
		// carry one sequence number for the aggregation's lifetime, so the
		// switch's §5.4.1 staleness guard rejects the retransmissions.
		{seed: 303, drop: 0.03, dup: 0.03, steps: 400},
	}
	for _, cse := range seeds {
		cse := cse
		t.Run(fmt.Sprintf("seed=%d drop=%v", cse.seed, cse.drop), func(t *testing.T) {
			s := env.NewSim(cse.seed)
			defer s.Shutdown()
			opts := Options{Servers: 5, Clients: 1, SwitchIndexBits: 8}
			c := New(s, opts)
			s.Net().DropProb = cse.drop
			s.Net().DupProb = cse.dup

			// Model: dirs maps directory path → set of child names (with a
			// marker for subdirectories).
			type entry struct{ isDir bool }
			model := map[string]map[string]entry{"/": {}}
			rnd := rand.New(rand.NewSource(cse.seed))

			pathOf := func(dir, name string) string {
				if dir == "/" {
					return "/" + name
				}
				return dir + "/" + name
			}
			dirs := func() []string {
				out := make([]string, 0, len(model))
				for d := range model {
					out = append(out, d)
				}
				// Deterministic order for reproducibility.
				for i := 1; i < len(out); i++ {
					for j := i; j > 0 && out[j] < out[j-1]; j-- {
						out[j], out[j-1] = out[j-1], out[j]
					}
				}
				return out
			}

			c.Run(0, func(p *env.Proc, cl *client.Client) {
				// t.Fatalf would Goexit the sim worker and wedge the
				// scheduler; abort via panic/recover instead.
				defer func() {
					if r := recover(); r != nil {
						if msg, ok := r.(modelAbort); ok {
							t.Error(string(msg))
							return
						}
						panic(r)
					}
				}()
				for step := 0; step < cse.steps; step++ {
					ds := dirs()
					dir := ds[rnd.Intn(len(ds))]
					name := fmt.Sprintf("n%d", rnd.Intn(12))
					path := pathOf(dir, name)
					ent, exists := model[dir][name]
					switch rnd.Intn(10) {
					case 0, 1, 2: // create
						err := cl.Create(p, path, 0)
						if exists && !errors.Is(err, core.ErrExist) {
							failf("step %d: create %s over existing: %v", step, path, err)
						}
						if !exists {
							if err != nil {
								failf("step %d: create %s: %v", step, path, err)
							}
							model[dir][name] = entry{}
						}
					case 3, 4: // delete
						err := cl.Delete(p, path)
						switch {
						case !exists:
							if !errors.Is(err, core.ErrNotExist) {
								failf("step %d: delete missing %s: %v", step, path, err)
							}
						case ent.isDir:
							if err == nil {
								failf("step %d: delete of directory %s succeeded", step, path)
							}
						default:
							if err != nil {
								failf("step %d: delete %s: %v", step, path, err)
							}
							delete(model[dir], name)
						}
					case 5: // mkdir
						err := cl.Mkdir(p, path, 0)
						if exists && !errors.Is(err, core.ErrExist) {
							failf("step %d: mkdir %s over existing: %v", step, path, err)
						}
						if !exists {
							if err != nil {
								failf("step %d: mkdir %s: %v", step, path, err)
							}
							model[dir][name] = entry{isDir: true}
							model[path] = map[string]entry{}
						}
					case 6: // rmdir
						err := cl.Rmdir(p, path)
						switch {
						case !exists || !ent.isDir:
							if err == nil {
								failf("step %d: rmdir of %s (not a dir) succeeded", step, path)
							}
						case len(model[path]) > 0:
							if !errors.Is(err, core.ErrNotEmpty) {
								failf("step %d: rmdir non-empty %s: %v", step, path, err)
							}
						default:
							if err != nil {
								failf("step %d: rmdir %s: %v", step, path, err)
							}
							delete(model[dir], name)
							delete(model, path)
						}
					case 7: // statdir cross-check
						attr, err := cl.StatDir(p, dir)
						if err != nil {
							failf("step %d: statdir %s: %v", step, dir, err)
						}
						if attr.Size != int64(len(model[dir])) {
							failf("step %d: statdir %s size=%d, model=%d",
								step, dir, attr.Size, len(model[dir]))
						}
					case 8: // readdir cross-check
						es, err := cl.ReadDir(p, dir)
						if err != nil {
							failf("step %d: readdir %s: %v", step, dir, err)
						}
						if len(es) != len(model[dir]) {
							failf("step %d: readdir %s %d entries, model=%d",
								step, dir, len(es), len(model[dir]))
						}
						for _, e := range es {
							if _, ok := model[dir][e.Name]; !ok {
								failf("step %d: readdir %s ghost entry %q", step, dir, e.Name)
							}
						}
					case 9: // rename a file within or across directories
						if !exists || ent.isDir {
							continue
						}
						dst := ds[rnd.Intn(len(ds))]
						dstName := fmt.Sprintf("r%d", rnd.Intn(12))
						dstPath := pathOf(dst, dstName)
						_, dstExists := model[dst][dstName]
						err := cl.Rename(p, path, dstPath)
						if dstExists {
							if err == nil {
								failf("step %d: rename onto existing %s succeeded", step, dstPath)
							}
							continue
						}
						if err != nil {
							failf("step %d: rename %s→%s: %v", step, path, dstPath, err)
						}
						delete(model[dir], name)
						model[dst][dstName] = entry{}
					}
				}

				// Final audit: every directory's aggregated attributes and
				// entry list match the model exactly.
				for _, d := range dirs() {
					attr, err := cl.StatDir(p, d)
					if err != nil {
						failf("final statdir %s: %v", d, err)
					}
					if attr.Size != int64(len(model[d])) {
						failf("final %s: size=%d, model=%d", d, attr.Size, len(model[d]))
					}
					es, err := cl.ReadDir(p, d)
					if err != nil || len(es) != len(model[d]) {
						failf("final readdir %s: %d entries err=%v, model=%d",
							d, len(es), err, len(model[d]))
					}
					for name, e := range model[d] {
						if e.isDir {
							if _, err := cl.StatDir(p, pathOf(d, name)); err != nil {
								failf("final statdir %s: %v", pathOf(d, name), err)
							}
						} else {
							if _, err := cl.Stat(p, pathOf(d, name)); err != nil {
								failf("final stat %s: %v", pathOf(d, name), err)
							}
						}
					}
				}
			})
		})
	}
}

// TestRandomOpsWithCrashes interleaves random mutations with server crashes
// and recoveries, auditing the final state against the model — §A.1's
// durability claim under repeated fail-stop.
func TestRandomOpsWithCrashes(t *testing.T) {
	s := env.NewSim(777)
	defer s.Shutdown()
	c := New(s, Options{Servers: 5, Clients: 1, SwitchIndexBits: 8})
	rnd := rand.New(rand.NewSource(777))
	model := map[string]bool{} // file path → exists

	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/m", 0); err != nil {
			t.Errorf("mkdir: %v", err)
		}
	})
	for round := 0; round < 6; round++ {
		c.Run(0, func(p *env.Proc, cl *client.Client) {
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("/m/f%d", rnd.Intn(30))
				if rnd.Intn(2) == 0 {
					if err := cl.Create(p, name, 0); err == nil {
						model[name] = true
					} else if !errors.Is(err, core.ErrExist) {
						t.Errorf("round %d create %s: %v", round, name, err)
					}
				} else {
					if err := cl.Delete(p, name); err == nil {
						delete(model, name)
					} else if !errors.Is(err, core.ErrNotExist) {
						t.Errorf("round %d delete %s: %v", round, name, err)
					}
				}
			}
		})
		// Crash and recover a rotating victim while updates are pending.
		victim := round % 5
		c.CrashServer(victim)
		c.RecoverServer(victim)
		s.Run()
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		attr, err := cl.StatDir(p, "/m")
		if err != nil {
			t.Errorf("final statdir: %v", err)
			return
		}
		if attr.Size != int64(len(model)) {
			t.Errorf("final size=%d, model=%d", attr.Size, len(model))
		}
		for f := range model {
			if _, err := cl.Stat(p, f); err != nil {
				t.Errorf("file %s lost across crashes: %v", f, err)
			}
		}
	})
}
