package cluster

import (
	"errors"
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// Regression tests for the 2PC lock-leak class the lincheck work closed:
// a prepared participant holds its key locks until it learns the outcome,
// so (a) a prepare phase that gives up must drive an explicit abort, (b)
// decisions must retransmit until every participant acked, and (c) a
// coordinator crash must leave participants a way to terminate (status
// query against the WAL-backed decision record, presumed abort otherwise).
// Before the fix, a lost vote wedged the transaction's keys forever: every
// later operation on them — including plain stats, which share the inode
// locks — timed out.

// remoteFileName returns root-child names whose inode owner is NOT server 0
// (the coordinator), so transaction votes must cross the network.
func remoteFileName(c *Cluster, tag string, skip int) string {
	n := 0
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", tag, i)
		if c.Ring.OwnerOfFile(core.RootDirID, name) != 0 {
			if n == skip {
				return "/" + name
			}
			n++
		}
	}
}

// dropVotes installs a network filter losing every transaction vote sent to
// the coordinator — the prepared-participant-in-doubt scenario.
func dropVotes(s *env.Sim) {
	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		pkt, ok := msg.(*wire.Packet)
		if !ok {
			return env.Pass
		}
		if _, isVote := pkt.Body.(*wire.TxnVote); isVote {
			return env.Drop
		}
		return env.Pass
	}
}

func wantNoTimeout(t *testing.T, what string, err error) bool {
	t.Helper()
	if errors.Is(err, core.ErrTimeout) {
		t.Errorf("%s timed out: a 2PC participant is still holding its key locks", what)
		return false
	}
	return true
}

// TestRenamePrepareGiveUpReleasesLocks loses every vote until the prepare
// phase exhausts its budget: the coordinator must drive an explicit abort so
// the prepared participants release their locks, and once the fault clears
// the same rename must go through.
func TestRenamePrepareGiveUpReleasesLocks(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create %s: %v", src, err)
		}
	})
	dropVotes(s)
	s.After(30*env.Millisecond, func() { s.Net().Filter = nil })
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		// The first attempts fail while votes are lost; the client retries
		// through the transparent ErrRetry path and succeeds after the heal.
		err := cl.Rename(p, src, dst)
		if !wantNoTimeout(t, "rename", err) {
			return
		}
		if err != nil {
			t.Errorf("rename after heal: %v", err)
			return
		}
		// The transaction keys must be free: reads share the inode locks.
		_, err = cl.Stat(p, dst)
		if !wantNoTimeout(t, "stat dst", err) {
			return
		}
		if err != nil {
			t.Errorf("stat %s: %v", dst, err)
			return
		}
		if _, err = cl.Stat(p, src); !errors.Is(err, core.ErrNotExist) {
			if wantNoTimeout(t, "stat src", err) {
				t.Errorf("stat %s after rename: %v, want ErrNotExist", src, err)
			}
		}
	})
}

// TestCoordinatorCrashResolvesInDoubtTxn crashes the coordinator while a
// participant sits prepared with its vote lost. The participant's
// termination protocol must resolve the transaction against the recovered
// coordinator (presumed abort — no commit record survived), releasing the
// locks; rename must stay atomic: exactly one of src/dst exists afterwards.
func TestCoordinatorCrashResolvesInDoubtTxn(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create %s: %v", src, err)
		}
	})
	dropVotes(s)
	s.After(5*env.Millisecond, func() { c.CrashServer(0) })
	s.After(10*env.Millisecond, func() { c.RecoverServer(0) })
	s.After(12*env.Millisecond, func() { s.Net().Filter = nil })
	var renameErr error
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		renameErr = cl.Rename(p, src, dst)
	})
	// The rename itself may have succeeded (a post-recovery retry) or given
	// up; what must hold afterwards is liveness on the keys and atomicity.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		_, serr := cl.Stat(p, src)
		_, derr := cl.Stat(p, dst)
		if !wantNoTimeout(t, "stat src", serr) || !wantNoTimeout(t, "stat dst", derr) {
			return
		}
		srcThere := serr == nil
		dstThere := derr == nil
		if srcThere == dstThere {
			t.Errorf("rename atomicity broken after coordinator crash: src=%v dst=%v (rename err: %v)",
				serr, derr, renameErr)
		}
	})
}

// TestCoordinatorCrashRedrivesCommit loses every decision ack so the
// participants apply a committed rename but the coordinator never collects
// the acks, then crashes it. The recovered incarnation must re-drive the
// WAL-logged commit decision: the rename stays fully applied, and the
// commit record retires (marked applied) instead of replaying forever.
func TestCoordinatorCrashRedrivesCommit(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create %s: %v", src, err)
		}
	})
	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		if pkt, ok := msg.(*wire.Packet); ok {
			if _, isDone := pkt.Body.(*wire.TxnDone); isDone {
				return env.Drop
			}
		}
		return env.Pass
	}
	s.After(5*env.Millisecond, func() { c.CrashServer(0) })
	s.After(10*env.Millisecond, func() { s.Net().Filter = nil })
	s.After(11*env.Millisecond, func() { c.RecoverServer(0) })
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		// The client may observe success, the resent ENOENT of its own
		// committed rename, or a timeout — all at-least-once realities.
		_ = cl.Rename(p, src, dst)
	})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if _, err := cl.Stat(p, dst); err != nil {
			if wantNoTimeout(t, "stat dst", err) {
				t.Errorf("committed rename lost after coordinator crash: stat %s: %v", dst, err)
			}
			return
		}
		if _, err := cl.Stat(p, src); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("stat %s after committed rename: %v, want ErrNotExist", src, err)
		}
	})
	// The re-driven decision must have retired its WAL record.
	if pending := c.Servers[0].PendingTxnCommitRecords(); pending != 0 {
		t.Errorf("%d unacknowledged commit-decision records survive recovery; redrive did not retire them", pending)
	}
}

// TestParticipantCrashPreservesPreparedCommit crashes a PARTICIPANT after
// it voted but before any decision reaches it, with decisions suppressed so
// the transaction commits on its vote while it is down. The restarted
// incarnation must rebuild the prepared ops from its WAL and APPLY the
// commit — before the fix it acked the re-driven decision vacuously and the
// rename ended half-applied (source deleted, destination never created).
func TestParticipantCrashPreservesPreparedCommit(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	// The destination inode's owner is the participant that must apply the
	// TxnPutInode; crash that one.
	dstOwner := int(c.Ring.OwnerOfFile(core.RootDirID, dst[1:]))
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create %s: %v", src, err)
		}
	})
	s.Net().Filter = func(from, to env.NodeID, msg any) env.Verdict {
		if pkt, ok := msg.(*wire.Packet); ok {
			if _, isDec := pkt.Body.(*wire.TxnDecision); isDec {
				return env.Drop
			}
		}
		return env.Pass
	}
	// The crash must land inside the in-doubt window: after the vote left
	// (~0.3ms: one prepare round trip) but before the participant's
	// termination monitor first polls (prepare + 4×RetryTimeout ≈ 1.1ms)
	// would resolve the transaction while it is still alive.
	s.After(600*env.Microsecond, func() { c.CrashServer(dstOwner) })
	s.After(8*env.Millisecond, func() { c.RecoverServer(dstOwner) })
	s.After(10*env.Millisecond, func() { s.Net().Filter = nil })
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		// The client outcome may be success or an at-least-once artifact;
		// the committed transaction's effects are what must survive.
		_ = cl.Rename(p, src, dst)
	})
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		_, derr := cl.Stat(p, dst)
		_, serr := cl.Stat(p, src)
		if !wantNoTimeout(t, "stat dst", derr) || !wantNoTimeout(t, "stat src", serr) {
			return
		}
		if derr != nil {
			t.Errorf("committed rename lost its destination after participant crash: %v (src: %v)",
				derr, serr)
		}
		if !errors.Is(serr, core.ErrNotExist) {
			t.Errorf("stat %s after committed rename: %v, want ErrNotExist", src, serr)
		}
	})
}

// TestLinkVotesLostReleasesLocks runs the same give-up scenario through the
// link transaction path.
func TestLinkVotesLostReleasesLocks(t *testing.T) {
	s, c := sim(t, Options{Servers: 4, Clients: 1, RetryTimeout: 200 * env.Microsecond})
	src := remoteFileName(c, "s", 0)
	dst := remoteFileName(c, "d", 0)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Create(p, src, 0); err != nil {
			t.Errorf("create %s: %v", src, err)
		}
	})
	dropVotes(s)
	s.After(30*env.Millisecond, func() { s.Net().Filter = nil })
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		err := cl.Link(p, src, dst)
		if !wantNoTimeout(t, "link", err) {
			return
		}
		if err != nil {
			t.Errorf("link after heal: %v", err)
			return
		}
		for _, path := range []string{src, dst} {
			if _, err := cl.Stat(p, path); err != nil {
				if wantNoTimeout(t, "stat "+path, err) {
					t.Errorf("stat %s after link: %v", path, err)
				}
				return
			}
		}
	})
}
