package cluster

import (
	"fmt"

	"switchfs/internal/env"
	"switchfs/internal/ring"
	"switchfs/internal/server"
	"switchfs/internal/wal"
)

// reconfigPasses bounds the live convergence loop before Reconfigure falls
// back to briefly quiescing the stragglers (continuous load can keep landing
// new records on a to-be-removed slot faster than a pass retires them).
const reconfigPasses = 20

// Reconfigure grows (or shrinks) the metadata cluster as a bulk case of the
// staged gate-and-drain migration (§5.5/§A.3) — the historical stop-the-world
// procedure (quiesce everyone, flush, remap, move, resume) is retired:
//
//  1. new servers (on grow) join serving immediately; every server and switch
//     learns the union peer set;
//  2. a convergence loop diffs each server's stored fingerprints against the
//     target placement and migrates each mismatched group through MigrateFP —
//     one group at a time, the rest of the cluster serving throughout;
//  3. a pass that finds nothing to move runs without parking, so the ring's
//     base placement flips to the target (Ring.Reset, clearing the
//     per-group overrides that accumulated) in the same simulator event —
//     no request can observe the flip half-applied;
//  4. on shrink, each removed server then stops serving, drains its in-flight
//     aggregations (bounded by the aggregation give-up budget, re-checking
//     liveness — a fail-stopped server has nothing left to drain), pushes its
//     remaining change-log entries to their owners, and retires.
//
// If the convergence loop exhausts its passes (adversarial load), the
// stragglers are retired under a brief quiesce — the window covers only the
// leftover groups, not the migration itself. If even the quiesced passes
// cannot converge (a group wedged behind an unresolvable prepared
// transaction), the reconfiguration aborts with an error through the future
// instead of finalizing against a placement that was never installed.
//
// The returned future completes with the virtual duration. Servers
// fail-stopping mid-reconfiguration are tolerated: MigrateFP copies from a
// down server's store (which mirrors the WAL it will replay, provided no
// prepared-but-undecided transaction straddles the group — such groups wait
// for the source to recover) and completes the eviction in that WAL, so the
// recovered incarnation does not resurrect migrated groups; RecoverServer
// defers its swap until the reconfiguration ends.
func (c *Cluster) Reconfigure(newServers int) *env.Future {
	fut := env.NewFuture()
	if newServers < 1 {
		fut.Complete(fmt.Errorf("cluster: cannot reconfigure to %d servers", newServers))
		return fut
	}
	c.Env.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		start := p.Now()
		c.reconfiguring = true
		old := len(c.Servers)

		slots := make([]uint32, newServers)
		finalPeers := make([]env.NodeID, newServers)
		for i := range slots {
			slots[i] = uint32(i)
			finalPeers[i] = ServerOf(uint32(i))
		}
		// Union peer set for the transition: every server that may hold
		// change-log entries or receive migrated groups stays addressable.
		union := old
		if newServers > union {
			union = newServers
		}
		unionPeers := make([]env.NodeID, union)
		for i := range unionPeers {
			unionPeers[i] = ServerOf(uint32(i))
		}

		// New servers join serving immediately (their stores fill through
		// migration; requests for not-yet-moved groups park on the arrival
		// gates or retry against the source).
		if newServers > old {
			c.Opts.Servers = newServers
			for i := old; i < newServers; i++ {
				w := wal.NewMem()
				c.wals = append(c.wals, w)
				cfg := serverConfigOf(c, i)
				cfg.WAL = w
				c.Servers = append(c.Servers, server.New(c.Env, cfg))
			}
			if newServers > c.maxServers {
				c.maxServers = newServers
			}
		}
		for i := 0; i < old && i < len(c.Servers); i++ {
			c.Servers[i].SetPeers(unionPeers)
		}
		for _, sw := range c.Switches {
			sw.SetServers(unionPeers)
		}

		// Convergence: migrate every group whose target owner differs, one at
		// a time, while the cluster serves.
		target := ring.New(slots, 0, ServerOf)
		converged := false
		for pass := 0; pass < reconfigPasses; pass++ {
			if c.convergePass(p, target) {
				converged = true
				break
			}
			p.Sleep(migratePollStep)
		}
		if !converged {
			// Adversarial load kept creating records on moving slots faster
			// than passes retired them. Quiesce briefly and retire the tail.
			for _, srv := range c.Servers {
				srv.SetServing(false)
			}
			for i := 0; i < len(c.Servers); i++ {
				if !c.Servers[i].Node().Down() {
					c.Servers[i].DrainAggs(p)
				}
			}
			for pass := 0; pass < reconfigPasses; pass++ {
				if c.convergePass(p, target) {
					converged = true
					break
				}
				p.Sleep(migratePollStep)
			}
			for _, srv := range c.Servers {
				srv.SetServing(true)
			}
		}
		if !converged {
			// Even quiesced, some group never migrated — e.g. wedged behind a
			// prepared transaction whose coordinator is crashed, the blocking
			// case MigrateFP's drain deadline surfaces. Finalizing anyway
			// would crash removed servers and truncate c.Servers while the
			// un-reset base placement keeps routing the stragglers to
			// now-dead slots. Abort instead: every server keeps serving under
			// the union peer set, the accumulated overrides keep every
			// already-moved group reachable, and the caller can reconfigure
			// again once the wedge resolves.
			c.reconfiguring = false
			fut.Complete(fmt.Errorf(
				"cluster: reconfigure to %d servers: convergence stalled (groups wedged behind unresolved transactions)",
				newServers))
			return
		}
		// convergePass returned true from a park-free sweep that also Reset
		// the ring in the same event — the base placement is now the target.

		// Shrink finalization: retire the removed servers.
		if newServers < old {
			removed := c.Servers[newServers:]
			for _, srv := range removed {
				srv.SetServing(false)
			}
			// Survivors stop multicasting to the leaving peers before those
			// crash, so no aggregation fetch waits on a permanently-dead peer.
			for i := 0; i < newServers; i++ {
				c.Servers[i].SetPeers(finalPeers)
			}
			for _, sw := range c.Switches {
				sw.SetServers(finalPeers)
			}
			for _, srv := range removed {
				if srv.Node().Down() {
					continue // nothing volatile left; its groups already moved
				}
				// Satellite of the old step 1b: the drain re-checks liveness
				// and is bounded by the aggregation give-up budget instead of
				// busy-waiting on a server that may never quiesce.
				srv.DrainAggs(p)
				// Remaining change-log entries must reach their owners now —
				// no recovery will ever replay this WAL.
				srv.FlushAll(p)
				srv.Crash()
			}
			c.Servers = c.Servers[:newServers]
			c.Opts.Servers = newServers
		} else {
			for i := range c.Servers {
				c.Servers[i].SetPeers(finalPeers)
			}
			for _, sw := range c.Switches {
				sw.SetServers(finalPeers)
			}
		}

		c.reconfiguring = false
		fut.Complete(p.Now() - start)
	})
	return fut
}

// convergePass sweeps every server's stored fingerprints against the target
// placement and migrates each group the current ring still routes to a
// mismatched slot. A pass that finds nothing to move runs without parking and
// flips the ring's base placement to the target in the same event (clearing
// the accumulated overrides, whose destinations equal the target owners by
// construction — the mapping of every existing group is unchanged by the
// flip). Reports whether the flip happened.
func (c *Cluster) convergePass(p *env.Proc, target *ring.Ring) bool {
	pending := 0
	for i := 0; i < len(c.Servers); i++ {
		for _, fp := range c.Servers[i].StoredFingerprints() {
			if c.Ring.OwnerOf(fp) != uint32(i) {
				// Not the current owner — the owning slot's sweep moves it
				// (or it is an unreachable stale copy awaiting eviction).
				continue
			}
			want := target.OwnerOf(fp)
			if want == uint32(i) {
				continue
			}
			pending++
			if err := c.MigrateFP(p, fp, want); err != nil {
				// Leave it for the next pass (e.g. a prepared transaction
				// still terminating).
				continue
			}
		}
	}
	if pending == 0 {
		c.Ring.Reset(target.Slots())
		return true
	}
	return false
}
