package cluster

import (
	"fmt"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/server"
	"switchfs/internal/wal"
)

// Reconfigure grows (or shrinks) the metadata cluster following §5.5/§A.3's
// stop-the-world procedure:
//
//  1. every server stops serving and flushes its change-logs (all
//     directories return to normal state);
//  2. the consistent-hashing ring is remapped — no switch change is needed,
//     the hash function lives on clients and servers;
//  3. metadata whose owner changed migrates to its new server (inodes with
//     their entry lists), WAL-logged on the receiving side;
//  4. servers resume.
//
// The returned future completes with the virtual duration of the
// reconfiguration. The paper's per-step coordinator WAL and two-phase commit
// make each step idempotent under crashes; this implementation performs the
// steps from an orchestration process and asserts quiescence instead (the
// §A.3 crash-during-reconfiguration matrix is out of scope for the model).
func (c *Cluster) Reconfigure(newServers int) *env.Future {
	fut := env.NewFuture()
	if newServers < 1 {
		fut.Complete(fmt.Errorf("cluster: cannot reconfigure to %d servers", newServers))
		return fut
	}
	c.Env.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		start := p.Now()

		// Step 1: quiesce and flush.
		for _, srv := range c.Servers {
			srv.SetServing(false)
		}
		for _, srv := range c.Servers {
			srv := srv
			sub := env.NewFuture()
			c.Env.Spawn(srv.ID(), func(sp *env.Proc) {
				srv.FlushAll(sp)
				srv.SetServing(false) // FlushAll re-enables; stay quiesced
				sub.Complete(nil)
			})
			sub.Wait(p)
		}

		// Step 2: remap the ring and the switch multicast domain.
		old := c.Servers
		slots := make([]uint32, newServers)
		peers := make([]env.NodeID, newServers)
		for i := range slots {
			slots[i] = uint32(i)
			peers[i] = ServerOf(uint32(i))
		}
		c.Placement.Reset(slots)
		for _, sw := range c.Switches {
			sw.SetServers(peers)
		}
		c.Opts.Servers = newServers

		// New servers join (their configs see the new ring).
		for i := len(old); i < newServers; i++ {
			w := wal.NewMem()
			c.wals = append(c.wals, w)
			cfg := serverConfigOf(c, i)
			cfg.WAL = w
			srv := server.New(c.Env, cfg)
			srv.SetServing(false)
			c.Servers = append(c.Servers, srv)
		}
		// Surviving servers must address the new peer set.
		for i, srv := range old {
			if i < newServers {
				srv.SetPeers(peers)
			}
		}

		// Step 3: migrate metadata whose owner changed.
		moved := 0
		for i, srv := range old {
			if i >= newServers {
				// Removed server: everything it owns moves out.
				moved += c.migrateFrom(srv)
				srv.Crash()
				continue
			}
			moved += c.migrateFrom(srv)
		}
		if len(old) > newServers {
			c.Servers = c.Servers[:newServers]
		}

		// Step 4: resume.
		for _, srv := range c.Servers {
			srv.SetServing(true)
		}
		_ = moved
		fut.Complete(p.Now() - start)
	})
	return fut
}

// migrateFrom moves every record on srv whose new owner differs. The
// stop-the-world quiesce makes direct store-to-store movement safe; the
// receiving server WAL-logs each record so migrations survive later crashes.
func (c *Cluster) migrateFrom(srv *server.Server) int {
	type rec struct {
		key core.Key
		in  *core.Inode
	}
	var inodes []rec
	srv.KV().Scan(nil, func(k, v []byte) bool {
		key, err := core.DecodeKey(k)
		if err != nil {
			return true // dentries move with their directory below
		}
		in, err := core.DecodeInode(v)
		if err != nil {
			return true
		}
		inodes = append(inodes, rec{key: key, in: in})
		return true
	})
	moved := 0
	for _, r := range inodes {
		slot := c.Placement.OwnerOfFingerprint(r.key.Fingerprint())
		dst := c.Servers[int(slot)]
		if dst == srv {
			continue
		}
		dst.InjectInode(r.key, r.in, true)
		srv.KV().Delete(r.key.Encode())
		moved++
		if r.in.Type == core.TypeDir {
			// The entry list lives with the directory inode.
			prefix := core.EntryPrefix(r.in.ID)
			type dent struct {
				k []byte
				e core.DirEntry
			}
			var dents []dent
			srv.KV().Scan(prefix, func(k, v []byte) bool {
				name := string(k[len(prefix):])
				if de, err := core.DecodeDirEntry(name, v); err == nil {
					dents = append(dents, dent{k: append([]byte(nil), k...), e: de})
				}
				return true
			})
			for _, d := range dents {
				dst.InjectDentry(r.in.ID, d.e, true)
				srv.KV().Delete(d.k)
				moved++
			}
		}
	}
	return moved
}
