package cluster

import (
	"fmt"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/server"
	"switchfs/internal/wal"
)

// Reconfigure grows (or shrinks) the metadata cluster following §5.5/§A.3's
// stop-the-world procedure:
//
//  1. every server stops serving and flushes its change-logs (all
//     directories return to normal state);
//  2. the consistent-hashing ring is remapped — no switch change is needed,
//     the hash function lives on clients and servers;
//  3. metadata whose owner changed migrates to its new server (inodes with
//     their entry lists), WAL-logged on the receiving side;
//  4. servers resume.
//
// The returned future completes with the virtual duration of the
// reconfiguration. The paper's per-step coordinator WAL and two-phase commit
// make each step idempotent under crashes; this implementation performs the
// steps from an orchestration process and tolerates servers fail-stopping
// (and recovering) while the reconfiguration is in flight:
//
//   - a server that is down at flush time is skipped — its rebuilt
//     change-logs are re-pushed by §5.4.2 recovery, which routes them by the
//     live (post-remap) ring;
//   - migration reads each server object's store directly, which works for
//     crashed objects too (their KV mirrors the WAL the restarted server
//     will replay; the stale local copies it resurrects are unreachable
//     under the new ring);
//   - a server whose recovery completes mid-reconfiguration is re-quiesced
//     by RecoverServer (the reconfiguring flag) so it cannot serve reads of
//     half-migrated state; step 4 resumes it with everyone else.
func (c *Cluster) Reconfigure(newServers int) *env.Future {
	fut := env.NewFuture()
	if newServers < 1 {
		fut.Complete(fmt.Errorf("cluster: cannot reconfigure to %d servers", newServers))
		return fut
	}
	c.Env.Spawn(c.Servers[0].ID(), func(p *env.Proc) {
		start := p.Now()
		c.reconfiguring = true

		// Step 1: quiesce and flush. Indexing c.Servers live (not a snapshot)
		// picks up objects replaced by a concurrent RecoverServer.
		for _, srv := range c.Servers {
			srv.SetServing(false)
		}
		for i := 0; i < len(c.Servers); i++ {
			srv := c.Servers[i]
			if srv.Node().Down() {
				continue // recovery re-pushes its change-logs later
			}
			sub := env.NewFuture()
			c.Env.Spawn(srv.ID(), func(sp *env.Proc) {
				srv.FlushAll(sp)
				srv.SetServing(false) // FlushAll re-enables; stay quiesced
				sub.Complete(nil)
			})
			sub.Wait(p)
		}

		// Step 1b: drain in-flight aggregations. An aggregation completing
		// after the remap would apply its collected change-log entries (and
		// ack the contributing peers, who then trim) at a server that no
		// longer owns the directory — losing the updates to an unreachable
		// replica. Quiescing stops new aggregations; this waits out the ones
		// already running (bounded: their fetch retries give up after
		// maxAggRetries even if a peer stays down).
		for i := 0; i < len(c.Servers); i++ {
			for !c.Servers[i].Node().Down() && !c.Servers[i].AggsQuiescent() {
				p.Sleep(100 * env.Microsecond)
			}
		}

		// Step 2: remap the ring and the switch multicast domain.
		old := len(c.Servers)
		slots := make([]uint32, newServers)
		peers := make([]env.NodeID, newServers)
		for i := range slots {
			slots[i] = uint32(i)
			peers[i] = ServerOf(uint32(i))
		}
		c.Placement.Reset(slots)
		for _, sw := range c.Switches {
			sw.SetServers(peers)
		}
		c.Opts.Servers = newServers

		// New servers join (their configs see the new ring).
		for i := old; i < newServers; i++ {
			w := wal.NewMem()
			c.wals = append(c.wals, w)
			cfg := serverConfigOf(c, i)
			cfg.WAL = w
			srv := server.New(c.Env, cfg)
			srv.SetServing(false)
			c.Servers = append(c.Servers, srv)
		}
		// Surviving servers must address the new peer set.
		for i := 0; i < old && i < newServers; i++ {
			c.Servers[i].SetPeers(peers)
		}

		// Step 3: migrate metadata whose owner changed.
		moved := 0
		var removed []*server.Server
		for i := 0; i < old; i++ {
			srv := c.Servers[i]
			moved += c.migrateFrom(srv)
			if i >= newServers {
				removed = append(removed, srv)
			}
		}
		if old > newServers {
			c.Servers = c.Servers[:newServers]
		}
		for _, srv := range removed {
			srv.Crash()
		}

		// Step 4: resume. The flag flips in the same event (no park between),
		// so a concurrent recovery observes either reconfiguring-and-quiesce
		// or the final serving state, never a half-resumed cluster.
		for _, srv := range c.Servers {
			srv.SetServing(true)
		}
		c.reconfiguring = false
		_ = moved
		fut.Complete(p.Now() - start)
	})
	return fut
}

// migrateFrom moves every record on srv whose new owner differs. The
// stop-the-world quiesce makes direct store-to-store movement safe; the
// receiving server WAL-logs each record so migrations survive later crashes.
func (c *Cluster) migrateFrom(srv *server.Server) int {
	type rec struct {
		key core.Key
		in  *core.Inode
	}
	var inodes []rec
	srv.KV().Scan(nil, func(k, v []byte) bool {
		key, err := core.DecodeKey(k)
		if err != nil {
			return true // dentries move with their directory below
		}
		in, err := core.DecodeInode(v)
		if err != nil {
			return true
		}
		inodes = append(inodes, rec{key: key, in: in})
		return true
	})
	moved := 0
	for _, r := range inodes {
		slot := c.Placement.OwnerOfFingerprint(r.key.Fingerprint())
		dst := c.Servers[int(slot)]
		if dst == srv {
			continue
		}
		dst.InjectInode(r.key, r.in, true)
		srv.KV().Delete(r.key.Encode())
		moved++
		if r.in.Type == core.TypeDir {
			// The directory's exactly-once watermarks move with it: sources
			// may re-push entries the old owner already applied (their acks
			// were lost to a crash), and only the watermark lets the new
			// owner deduplicate them.
			for _, m := range srv.AppliedMarks(r.in.ID) {
				dst.InjectAppliedMark(m.Src, r.in.ID, m.ID, true)
			}
			// The entry list lives with the directory inode.
			prefix := core.EntryPrefix(r.in.ID)
			type dent struct {
				k []byte
				e core.DirEntry
			}
			var dents []dent
			srv.KV().Scan(prefix, func(k, v []byte) bool {
				name := string(k[len(prefix):])
				if de, err := core.DecodeDirEntry(name, v); err == nil {
					dents = append(dents, dent{k: append([]byte(nil), k...), e: de})
				}
				return true
			})
			for _, d := range dents {
				dst.InjectDentry(r.in.ID, d.e, true)
				srv.KV().Delete(d.k)
				moved++
			}
		}
	}
	return moved
}
