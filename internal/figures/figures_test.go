package figures

import (
	"strconv"
	"strings"
	"testing"
)

// tiny keeps figure tests fast; shape assertions still hold at this scale.
func tiny() Scale {
	return Scale{
		Dirs:         16,
		FilesPerDir:  16,
		Workers:      32,
		OpsPerWorker: 20,
		ServerCounts: []int{4, 8},
		CoreCounts:   []int{2, 4},
		BurstSizes:   []int{10, 200},
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestFig2aShape(t *testing.T) {
	tab := Fig2a(tiny())
	t.Log("\n" + tab.String())
	// E-CFS (col 2) must scale with servers; E-InfiniFS (col 1) must not.
	if cfsGrowth := cell(t, tab, 1, 2) / cell(t, tab, 0, 2); cfsGrowth < 1.4 {
		t.Errorf("E-CFS stat did not scale: growth %.2f", cfsGrowth)
	}
	if infGrowth := cell(t, tab, 1, 1) / cell(t, tab, 0, 1); infGrowth > 1.3 {
		t.Errorf("E-InfiniFS stat unexpectedly scaled: growth %.2f", infGrowth)
	}
	// E-CFS must beat E-InfiniFS at the top scale.
	if cell(t, tab, 1, 2) <= cell(t, tab, 1, 1) {
		t.Error("E-CFS did not outperform E-InfiniFS on balanced stat")
	}
}

func TestFig2bShape(t *testing.T) {
	tab := Fig2b(tiny())
	t.Log("\n" + tab.String())
	// create (row 1): E-CFS pays cross-server coordination over E-InfiniFS.
	if cell(t, tab, 1, 2) <= cell(t, tab, 1, 1) {
		t.Error("E-CFS create latency not higher than E-InfiniFS")
	}
}

func TestFig2cdShape(t *testing.T) {
	c := Fig2c(tiny())
	t.Log("\n" + c.String())
	// Neither baseline scales with servers under a shared directory.
	for col := 1; col <= 2; col++ {
		if g := cell(t, c, 1, col) / cell(t, c, 0, col); g > 1.5 {
			t.Errorf("%s col %d scaled %.2f× with servers under contention", c.ID, col, g)
		}
	}
	d := Fig2d(tiny())
	t.Log("\n" + d.String())
	for col := 1; col <= 2; col++ {
		if g := cell(t, d, 1, col) / cell(t, d, 0, col); g > 1.5 {
			t.Errorf("%s col %d scaled %.2f× with cores under contention", d.ID, col, g)
		}
	}
}

func TestFig12aShape(t *testing.T) {
	tab := Fig12a(tiny())
	t.Log("\n" + tab.String())
	// Row layout: op × servers; cols: Ceph, E-InfiniFS, E-CFS, SwitchFS.
	// create at the largest server count: SwitchFS wins, CephFS loses.
	row := 1 // create, servers=8
	if cell(t, tab, row, 5) <= cell(t, tab, row, 4) {
		t.Error("SwitchFS create did not beat E-CFS in the single large directory")
	}
	if cell(t, tab, row, 2) >= cell(t, tab, row, 5)/2 {
		t.Error("CephFS unexpectedly competitive")
	}
	// SwitchFS create scales with servers (sub-linearly at tiny scale: the
	// sustained window charges the owner's apply pipeline — see
	// EXPERIMENTS.md).
	if g := cell(t, tab, 1, 5) / cell(t, tab, 0, 5); g < 1.15 {
		t.Errorf("SwitchFS create growth %.2f with servers", g)
	}
}

func TestFig13Shape(t *testing.T) {
	tab := Fig13(tiny())
	t.Log("\n" + tab.String())
	find := func(op string) int {
		for i, r := range tab.Rows {
			if r[0] == op {
				return i
			}
		}
		t.Fatalf("row %q missing", op)
		return -1
	}
	// SwitchFS create latency below both emulated baselines.
	cr := find("create")
	if sf := cell(t, tab, cr, 5); sf >= cell(t, tab, cr, 3) || sf >= cell(t, tab, cr, 4) {
		t.Error("SwitchFS create latency not the lowest among emulated systems")
	}
	// SwitchFS statdir latency above E-InfiniFS (the paper's 28.6% penalty).
	sd := find("statdir")
	if cell(t, tab, sd, 5) <= cell(t, tab, sd, 3) {
		t.Error("SwitchFS statdir latency unexpectedly below E-InfiniFS")
	}
	// CephFS is slowest everywhere.
	for _, r := range []int{cr, sd} {
		if cell(t, tab, r, 1) < cell(t, tab, r, 5) {
			t.Error("CephFS latency below SwitchFS")
		}
	}
}

func TestFig14Shape(t *testing.T) {
	tab := Fig14(tiny())
	t.Log("\n" + tab.String())
	// Rows: Baseline×cores, +Async×cores, +Compaction×cores.
	n := len(tiny().CoreCounts)
	baseThr := cell(t, tab, n-1, 2)
	asyncThr := cell(t, tab, 2*n-1, 2)
	compThr := cell(t, tab, 3*n-1, 2)
	baseLat := cell(t, tab, n-1, 3)
	asyncLat := cell(t, tab, 2*n-1, 3)
	if asyncLat >= baseLat {
		t.Errorf("+Async latency %.1f not below Baseline %.1f", asyncLat, baseLat)
	}
	if compThr <= asyncThr || compThr <= baseThr {
		t.Errorf("+Compaction throughput %.1f not the highest (base %.1f, async %.1f)",
			compThr, baseThr, asyncThr)
	}
	// +Compaction scales with cores; Baseline does not.
	if g := cell(t, tab, 3*n-1, 2) / cell(t, tab, 2*n, 2); g < 1.2 {
		t.Errorf("+Compaction did not scale with cores: %.2f", g)
	}
}

func TestOverflowShape(t *testing.T) {
	tab := Overflow(tiny())
	t.Log("\n" + tab.String())
	if cell(t, tab, 1, 1) >= cell(t, tab, 0, 1) {
		t.Error("forced overflow did not reduce throughput")
	}
	if cell(t, tab, 1, 2) <= cell(t, tab, 0, 2) {
		t.Error("forced overflow did not raise latency")
	}
}

func TestFig15Shape(t *testing.T) {
	a := Fig15a(tiny())
	t.Log("\n" + a.String())
	for r := range a.Rows {
		if cell(t, a, r, 2) <= cell(t, a, r, 1) {
			t.Errorf("%s: dedicated server not slower for %s", a.ID, a.Rows[r][0])
		}
	}
	b := Fig15b(tiny())
	t.Log("\n" + b.String())
	last := len(b.Rows) - 1
	if cell(t, b, last, 1) <= cell(t, b, last, 2) {
		t.Error("switch tracking did not outscale the dedicated server")
	}
}

func TestFig16Shape(t *testing.T) {
	tab := Fig16(tiny())
	t.Log("\n" + tab.String())
	// Heavy load: the owner-tracking variant's p99 exceeds SwitchFS's.
	if cell(t, tab, 3, 6) <= cell(t, tab, 2, 6) {
		t.Error("owner tracking p99 not above SwitchFS under heavy load")
	}
}

func TestFig17Shape(t *testing.T) {
	tab := Fig17(tiny())
	t.Log("\n" + tab.String())
	// With 32 in-flight: baselines drop from burst 10 to the large burst;
	// SwitchFS stays within 40%.
	small, large := 0, 1
	for col, name := range []string{"", "", "E-InfiniFS", "E-CFS", "SwitchFS"} {
		if col < 2 {
			continue
		}
		drop := cell(t, tab, large, col) / cell(t, tab, small, col)
		if col < 4 && drop > 0.75 {
			t.Errorf("%s kept %.0f%% of throughput under bursts; expected collapse", name, drop*100)
		}
		if col == 4 && drop < 0.6 {
			t.Errorf("SwitchFS kept only %.0f%% of throughput under bursts", drop*100)
		}
	}
}

func TestFig18Shape(t *testing.T) {
	a := Fig18a(tiny())
	t.Log("\n" + a.String())
	// statdir latency grows with preceding creates, then converges: the
	// K=1000 value must be below K=100 × 20 (bounded by proactive pushes).
	if cell(t, a, 1, 1) <= cell(t, a, 0, 1) {
		t.Error("statdir latency did not grow with pending creates")
	}
	if cell(t, a, 3, 1) > cell(t, a, 2, 1)*20 {
		t.Error("statdir latency did not converge (proactive pushes broken?)")
	}
	b := Fig18b(tiny())
	t.Log("\n" + b.String())
}

func TestFig19Shape(t *testing.T) {
	tab := Fig19(tiny())
	t.Log("\n" + tab.String())
	for r := range tab.Rows {
		sf := cell(t, tab, r, 4)
		ceph := cell(t, tab, r, 1)
		if sf <= ceph {
			t.Errorf("row %d: SwitchFS %.1f not above CephFS %.1f", r, sf, ceph)
		}
	}
	// Synthetic skewed: SwitchFS above E-InfiniFS.
	if cell(t, tab, 0, 4) <= cell(t, tab, 0, 2) {
		t.Error("SwitchFS not above E-InfiniFS on the skewed synthetic workload")
	}
}

func TestRecoveryTable(t *testing.T) {
	tab := Recovery(tiny())
	t.Log("\n" + tab.String())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Recovery time grows with state volume.
	if cell(t, tab, 1, 2) <= cell(t, tab, 0, 2) {
		t.Error("server recovery time did not grow with files")
	}
	for _, r := range tab.Rows {
		if !strings.Contains(r[0], "crash") {
			t.Errorf("unexpected scenario %q", r[0])
		}
	}
}

func TestFig12bShape(t *testing.T) {
	tab := Fig12b(tiny())
	t.Log("\n" + tab.String())
	// Columns: op, servers, Ceph, IndexFS, E-InfiniFS, E-CFS, SwitchFS.
	// create at 8 servers (row 1): SwitchFS and E-InfiniFS beat E-CFS
	// (grouping/async avoid the cross-server transaction).
	if cell(t, tab, 1, 6) <= cell(t, tab, 1, 5) {
		t.Error("SwitchFS create not above E-CFS over multiple directories")
	}
	if cell(t, tab, 1, 6) <= cell(t, tab, 1, 4) {
		t.Error("SwitchFS create not above E-InfiniFS over multiple directories")
	}
	// The paper's E-InfiniFS > E-CFS create gap needs enough directories
	// that the run is per-op-cost-bound rather than per-directory-bound; at
	// tiny scale both baselines sit on the same directory-serialization
	// ceiling, so only a no-worse check is meaningful here.
	if cell(t, tab, 1, 4) < cell(t, tab, 1, 5)*0.9 {
		t.Error("E-InfiniFS create clearly below E-CFS over multiple directories")
	}
	// mkdir (rows 4-5): SwitchFS beats every baseline (async vs 2PC).
	mk := 2*len(tiny().ServerCounts) + 1
	for col := 2; col <= 5; col++ {
		if tab.Rows[mk][col] == "-" {
			continue
		}
		if cell(t, tab, mk, 6) <= cell(t, tab, mk, col) {
			t.Errorf("SwitchFS mkdir not above column %d", col)
		}
	}
	// CephFS trails everywhere.
	if cell(t, tab, 1, 2) >= cell(t, tab, 1, 6)/10 {
		t.Error("CephFS unexpectedly competitive")
	}
}
