package figures

import (
	"testing"

	"switchfs/internal/core"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// TestSmokeThroughput sanity-checks the harness plumbing: SwitchFS must beat
// Emulated-CFS on contended creates (the paper's headline), and every system
// must complete without errors.
func TestSmokeThroughput(t *testing.T) {
	ns := workload.SingleDir(16)
	results := map[sysKind]float64{}
	for _, k := range []sysKind{sysSwitchFS, sysInfiniFS, sysCFS} {
		var sim, sys, done = deploy(1, k, 8, 4, 4, 0, nil)
		if k == sysSwitchFS {
			sim.Shutdown()
			sim, sys, done = deploySwitchFS(1, 8, 4, 4, 0)
		}
		ns.Preload(sys)
		var rc stats.Counters
		res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), 64, 30, 4, &rc)
		done()
		if res.Errs > 0 {
			t.Fatalf("%v: %d errors", k, res.Errs)
		}
		if rc.Ops == 0 || rc.PacketsDelivered == 0 {
			t.Fatalf("%v: empty row counters (%s)", k, rc)
		}
		results[k] = res.ThroughputOps()
		t.Logf("%v: %.0f ops/s, %s", k, res.ThroughputOps(), res.All.Summary())
	}
	if results[sysSwitchFS] <= results[sysCFS] {
		t.Errorf("SwitchFS (%.0f) did not beat E-CFS (%.0f) on contended creates",
			results[sysSwitchFS], results[sysCFS])
	}
}
