package figures

import (
	"fmt"
	"testing"

	"switchfs/internal/core"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// TestSmokeThroughput sanity-checks the harness plumbing: SwitchFS must beat
// Emulated-CFS on contended creates (the paper's headline), and every system
// must complete without errors.
func TestSmokeThroughput(t *testing.T) {
	ns := workload.SingleDir(16)
	results := map[sysKind]float64{}
	for _, k := range []sysKind{sysSwitchFS, sysInfiniFS, sysCFS} {
		var sim, sys, done = deploy(1, k, 8, 4, 4, 0, nil)
		if k == sysSwitchFS {
			sim.Shutdown()
			sim, sys, done = deploySwitchFS(1, 8, 4, 4, 0)
		}
		ns.Preload(sys)
		var rc stats.Counters
		res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), 64, 30, 4, &rc)
		done()
		if res.Errs > 0 {
			t.Fatalf("%v: %d errors", k, res.Errs)
		}
		if rc.Ops == 0 || rc.PacketsDelivered == 0 {
			t.Fatalf("%v: empty row counters (%s)", k, rc)
		}
		results[k] = res.ThroughputOps()
		t.Logf("%v: %.0f ops/s, %s", k, res.ThroughputOps(), res.All.Summary())
	}
	if results[sysSwitchFS] <= results[sysCFS] {
		t.Errorf("SwitchFS (%.0f) did not beat E-CFS (%.0f) on contended creates",
			results[sysSwitchFS], results[sysCFS])
	}
}

// TestFigChaosShape runs the chaos figure at a reduced scale: one row per
// (plan, window), availability cells parseable, counters aligned — and, by
// virtue of FigChaosSeed panicking on checker violations, a full invariant
// pass over every built-in fault plan.
func TestFigChaosShape(t *testing.T) {
	sc := Scale{Dirs: 8, FilesPerDir: 8, Workers: 32, OpsPerWorker: 10,
		ServerCounts: []int{4}, CoreCounts: []int{2}, BurstSizes: []int{10}}
	tab := FigChaos(sc)
	if tab.ID != "chaos" {
		t.Fatalf("id=%q", tab.ID)
	}
	if len(tab.Rows) == 0 || len(tab.Rows)%8 != 0 {
		t.Fatalf("%d rows, want a multiple of 8 windows", len(tab.Rows))
	}
	if len(tab.Meta) != len(tab.Rows) {
		t.Fatalf("%d counter rows for %d rows", len(tab.Meta), len(tab.Rows))
	}
	totalOps := uint64(0)
	for _, c := range tab.Meta {
		totalOps += c.Ops
	}
	if totalOps == 0 {
		t.Fatal("chaos harness completed no operations")
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
}

// TestFigLincheckShape runs the lincheck figure at a reduced scale: one row
// per mode (differential, concurrent, one per fault plan), each with a zero
// violation cell — the figure panics on any divergence or non-linearizable
// history, so completing at all is the correctness pass.
func TestFigLincheckShape(t *testing.T) {
	sc := Scale{Dirs: 8, FilesPerDir: 8, Workers: 16, OpsPerWorker: 10,
		ServerCounts: []int{4}, CoreCounts: []int{2}, BurstSizes: []int{10}}
	tab := FigLincheck(sc)
	if tab.ID != "lincheck" {
		t.Fatalf("id=%q", tab.ID)
	}
	// two differential modes + concurrent + 7 plan rows (incl. the
	// reconfig-crash and rebalance-crash migration plans).
	if len(tab.Rows) != 10 {
		t.Fatalf("%d rows, want 10 modes", len(tab.Rows))
	}
	if len(tab.Meta) != len(tab.Rows) {
		t.Fatalf("%d counter rows for %d rows", len(tab.Meta), len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		if row[len(row)-1] != "0" {
			t.Fatalf("mode %s reports violations: %v", row[0], row)
		}
	}
	for _, c := range tab.Meta {
		if c.Ops == 0 || c.PacketsDelivered == 0 {
			t.Fatalf("mode with zero ops/packets: %+v", tab.Meta)
		}
	}
}

// TestFigRebalanceShape runs the rebalance figure at a reduced scale: one
// row per (plan, window) plus a Σ row per plan — and, because
// FigRebalanceSeed panics on a zero-availability traffic window during pure
// migration, on a plan that moves nothing, and on any checker violation,
// completing at all is the live-migration availability pass.
func TestFigRebalanceShape(t *testing.T) {
	sc := Scale{Dirs: 8, FilesPerDir: 8, Workers: 32, OpsPerWorker: 10,
		ServerCounts: []int{4}, CoreCounts: []int{2}, BurstSizes: []int{10}}
	tab := FigRebalance(sc)
	if tab.ID != "rebalance" {
		t.Fatalf("id=%q", tab.ID)
	}
	// 8 windows + one Σ row per plan.
	if len(tab.Rows) == 0 || len(tab.Rows)%9 != 0 {
		t.Fatalf("%d rows, want a multiple of 9 (8 windows + Σ)", len(tab.Rows))
	}
	if len(tab.Meta) != len(tab.Rows) {
		t.Fatalf("%d counter rows for %d rows", len(tab.Meta), len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		if row[1] == "Σ" && (row[len(row)-1] == "0" || row[len(row)-1] == "") {
			t.Fatalf("plan %s migrated no groups: %v", row[0], row)
		}
	}
}

// TestFigDataShape runs the data-plane figure at a reduced scale: one row
// per (nodes, replication) config plus the recovery row, and — because
// FigData panics on a lost acknowledged content write — a durability pass
// over the crash/re-replication cycle.
func TestFigDataShape(t *testing.T) {
	sc := Scale{Dirs: 8, FilesPerDir: 8, Workers: 32, OpsPerWorker: 10,
		ServerCounts: []int{4}, CoreCounts: []int{2}, BurstSizes: []int{10}}
	tab := FigData(sc)
	if tab.ID != "data" {
		t.Fatalf("id=%q", tab.ID)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 5 throughput configs + 1 recovery row", len(tab.Rows))
	}
	if len(tab.Meta) != len(tab.Rows) {
		t.Fatalf("%d counter rows for %d rows", len(tab.Meta), len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		if tab.Meta[i].IsZero() {
			t.Errorf("row %d has empty counters", i)
		}
	}
	// Replication must cost writes something: r=1 strictly beats r=2 at the
	// same node count.
	var r1, r2 float64
	fmt.Sscanf(tab.Rows[1][3], "%f", &r1) // 4 nodes r=1
	fmt.Sscanf(tab.Rows[2][3], "%f", &r2) // 4 nodes r=2
	if r1 <= r2 {
		t.Errorf("r=1 write throughput %.1f not above r=2's %.1f — replication is free?", r1, r2)
	}
}

// TestFigScaleShape runs the scale figure over a small two-cell sweep: one
// row per (clients, entries) pair, rectangular rows, live counters, a
// worker-pool high-water mark far below the session population (idle
// sessions are queued events, not goroutines), and memory cells present
// exactly when accounting is on.
func TestFigScaleShape(t *testing.T) {
	sc := Scale{ScaleClients: []int{50, 500}, ScaleEntries: []int{2000, 20000}}
	tab := FigScale(sc)
	if tab.ID != "scale" {
		t.Fatalf("id=%q", tab.ID)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want one per sweep cell", len(tab.Rows))
	}
	if len(tab.Meta) != len(tab.Rows) {
		t.Fatalf("%d counter rows for %d rows", len(tab.Meta), len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
		if tab.Meta[i].IsZero() {
			t.Errorf("row %d has empty counters", i)
		}
		if tab.Meta[i].Errs != 0 {
			t.Errorf("row %d reports %d errors", i, tab.Meta[i].Errs)
		}
	}
	var workers int
	fmt.Sscanf(tab.Rows[1][4], "%d", &workers)
	if workers <= 0 || workers > 100 {
		t.Errorf("worker pool %d for 500 sessions — idle sessions are holding goroutines", workers)
	}
	var bytesOp float64
	fmt.Sscanf(tab.Rows[1][6], "%f", &bytesOp)
	if bytesOp <= 0 {
		t.Errorf("bytes/op cell %q not populated with accounting on", tab.Rows[1][6])
	}

	// With accounting off, the allocator cells render as zero (the
	// byte-identical determinism mode).
	SetMemAccounting(false)
	defer SetMemAccounting(true)
	tab = FigScale(Scale{ScaleClients: []int{50}, ScaleEntries: []int{2000}})
	for _, col := range []int{5, 6, 7} {
		var v float64
		fmt.Sscanf(tab.Rows[0][col], "%f", &v)
		if v != 0 {
			t.Errorf("accounting off but column %d = %q", col, tab.Rows[0][col])
		}
	}
}
