package figures

import (
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/server"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// Fig15a reproduces Fig. 15(a): single-client create and statdir latency
// when directory state is tracked by the programmable switch versus a
// dedicated DPDK server. Shape: the dedicated server adds an RTT's worth of
// latency to both paths.
func Fig15a(sc Scale) Table {
	t := Table{ID: "Fig15a", Title: "switch vs dedicated-server tracker: latency (µs)",
		Header: []string{"op", "PSwitch", "DPDK server"}}
	ns := workload.MultiDir(sc.Dirs, sc.FilesPerDir)
	for _, op := range []core.Op{core.OpCreate, core.OpStatDir} {
		row := []string{op.String()}
		var rc stats.Counters
		for _, tracker := range []server.TrackerMode{server.TrackerSwitch, server.TrackerServer} {
			sim, sys, done := deploy(11, sysSwitchFS, 8, 4, 1, 0, func(o *cluster.Options) {
				o.Async = true
				o.Compaction = true
				o.Tracker = tracker
			})
			ns.Preload(sys)
			res := runOn(sim, sys, ns, genFor(ns, op), 1, sc.OpsPerWorker*2, 1, &rc)
			done()
			row = append(row, us(res.All.Mean()))
		}
		t.AddRow(rc, row)
	}
	return t
}

// Fig15b reproduces Fig. 15(b): statdir throughput over many directories as
// metadata servers scale, switch vs dedicated server. Shape: the switch
// scales linearly with the cluster, the dedicated server hits its CPU
// ceiling (§7.3.3: ~11 Mops/s with 12 cores).
func Fig15b(sc Scale) Table {
	t := Table{ID: "Fig15b", Title: "statdir throughput (Mops/s) vs servers",
		Header: []string{"servers", "PSwitch", "DPDK server"}}
	ns := workload.MultiDir(sc.Dirs*4, 1)
	for _, n := range sc.ServerCounts {
		row := []string{itoa(n)}
		var rc stats.Counters
		for _, tracker := range []server.TrackerMode{server.TrackerSwitch, server.TrackerServer} {
			sim, sys, done := deploy(12, sysSwitchFS, n, 12, 16, 0, func(o *cluster.Options) {
				o.Async = true
				o.Compaction = true
				o.Tracker = tracker
			})
			ns.Preload(sys)
			res := runOn(sim, sys, ns, ns.StatDirs(), sc.Workers*4, sc.OpsPerWorker, 16, &rc)
			done()
			row = append(row, mops(res.ThroughputOps()))
		}
		t.AddRow(rc, row)
	}
	return t
}

// Fig16 reproduces Fig. 16: the latency distribution of create when
// directory states are tracked on owner servers instead of the switch, under
// medium and heavy offered load. Shape: the extra server on the update path
// queues, amplifying tail latency, especially under load.
func Fig16(sc Scale) Table {
	t := Table{ID: "Fig16", Title: "create latency under load: switch vs owner-server tracking (µs)",
		Header: []string{"load", "variant", "p25", "p50", "p75", "p90", "p99", "mean"}}
	ns := workload.MultiDir(sc.Dirs, sc.FilesPerDir)
	loads := []struct {
		name    string
		workers int
	}{
		{"medium", sc.Workers / 2},
		{"heavy", sc.Workers * 2},
	}
	for _, load := range loads {
		for _, tracker := range []server.TrackerMode{server.TrackerSwitch, server.TrackerOwner} {
			name := "SwitchFS"
			if tracker == server.TrackerOwner {
				name = "SwitchFS-Variant"
			}
			var rc stats.Counters
			sim, sys, done := deploy(13, sysSwitchFS, 8, 4, 8, 0, func(o *cluster.Options) {
				o.Async = true
				o.Compaction = true
				o.Tracker = tracker
			})
			ns.Preload(sys)
			res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), load.workers, sc.OpsPerWorker, 8, &rc)
			done()
			t.AddRow(rc, []string{
				load.name, name,
				us(res.All.Percentile(0.25)), us(res.All.Percentile(0.50)),
				us(res.All.Percentile(0.75)), us(res.All.Percentile(0.90)),
				us(res.All.Percentile(0.99)), us(res.All.Mean()),
			})
		}
	}
	return t
}
