package figures

import (
	"fmt"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// Fig17 reproduces Fig. 17: create throughput under operation bursts —
// groups of successive creates in the same directory, modeling temporal load
// imbalance (§7.4). Two in-flight levels (32 and 256). Shape: the baselines
// degrade as bursts grow (the burst's directory serializes), SwitchFS stays
// flat (bursts are absorbed by the change-logs).
func Fig17(sc Scale) Table {
	t := Table{ID: "Fig17", Title: "create throughput under bursts (Kops/s)",
		Header: []string{"in-flight", "burst", "Emulated-InfiniFS", "Emulated-CFS", "SwitchFS"}}
	ns := workload.MultiDir(sc.Dirs, 1)
	for _, inflight := range []int{32, 256} {
		for _, burst := range sc.BurstSizes {
			row := []string{itoa(inflight), itoa(burst)}
			var rc stats.Counters
			for _, k := range []sysKind{sysInfiniFS, sysCFS, sysSwitchFS} {
				sim, sys, done := deploy(14, k, 8, 4, 8, 0, nil)
				if k == sysSwitchFS {
					done()
					sim, sys, done = deploySwitchFS(14, 8, 4, 8, 0)
				}
				ns.Preload(sys)
				res := runOn(sim, sys, ns, ns.Bursts(burst, inflight), inflight, sc.OpsPerWorker, 8, &rc)
				done()
				row = append(row, kops(res.ThroughputOps()))
			}
			t.AddRow(rc, row)
		}
	}
	return t
}

// Fig18a reproduces Fig. 18(a): latency of statdir issued after a run of K
// creates in the directory — the aggregation stall. Shape: latency grows
// with K and converges once proactive pushes bound the per-server pending
// entries (§7.5: ~29 entries per server).
func Fig18a(sc Scale) Table {
	t := Table{ID: "Fig18a", Title: "statdir latency after K preceding creates (µs), 8 servers",
		Header: []string{"K creates", "statdir µs"}}
	for _, k := range []int{1, 10, 100, 1000} {
		lat, rc := statdirAfterCreates(15, 8, k)
		t.AddRow(rc, []string{itoa(k), us(lat)})
	}
	return t
}

// Fig18b reproduces Fig. 18(b): statdir latency after 100 creates as servers
// scale. Shape: more servers keep more pending entries below the push
// threshold, so the read aggregates more — latency grows with the cluster.
func Fig18b(sc Scale) Table {
	t := Table{ID: "Fig18b", Title: "statdir latency after 100 creates (µs) vs servers",
		Header: []string{"servers", "statdir µs"}}
	for _, n := range sc.ServerCounts {
		lat, rc := statdirAfterCreates(16, n, 100)
		t.AddRow(rc, []string{itoa(n), us(lat)})
	}
	return t
}

// statdirAfterCreates measures one statdir following k creates, averaged
// over several rounds in distinct directories.
func statdirAfterCreates(seed int64, servers, k int) (float64, stats.Counters) {
	sim, sys, done := deploySwitchFS(seed, servers, 4, 1, 0)
	defer done()
	const rounds = 5
	dirs := make([]string, rounds)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("/agg%d", i)
	}
	sys.Preload(dirs, 0)
	var total float64
	ops := 0
	runClient(sim, sys, func(p *env.Proc, fs fsapi.FS) {
		for r := 0; r < rounds; r++ {
			for i := 0; i < k; i++ {
				fs.Create(p, fmt.Sprintf("%s/f%d", dirs[r], i))
			}
			t0 := p.Now()
			_, _ = fs.StatDir(p, dirs[r])
			total += float64(p.Now() - t0)
			ops += k + 1
		}
	})
	rc := stats.Counters{Ops: uint64(ops), PacketsDelivered: sim.Delivered, PacketsDropped: sim.Dropped}
	return total / rounds, rc
}

// runClient runs fn on client 0 and drives the simulation to completion.
func runClient(sim *env.Sim, sys fsapi.System, fn func(p *env.Proc, fs fsapi.FS)) {
	type spawner interface {
		SpawnClient(i int, fn func(p *env.Proc))
	}
	fs := sys.ClientFS(0)
	sys.(spawner).SpawnClient(0, func(p *env.Proc) { fn(p, fs) })
	sim.Run()
}

var _ = core.OpStatDir
