package figures

import (
	"fmt"

	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// Fig19 reproduces Fig. 19 / Tab. 5: end-to-end throughput under real-world
// workloads — the synthetic PanguFS mix (80% of operations in 20% of the
// directories), the CNN-training trace, and the thumbnail trace, the latter
// two with data access against data nodes. Shapes: SwitchFS leads; CephFS
// trails by orders of magnitude; E-InfiniFS and E-CFS land between.
func Fig19(sc Scale) Table {
	t := Table{ID: "Fig19", Title: "end-to-end workloads: throughput (Kops/s)",
		Header: []string{"workload", "CephFS", "Emulated-InfiniFS", "Emulated-CFS", "SwitchFS"}}
	cases := []struct {
		name string
		mix  workload.Mix
		skew bool
		data bool
	}{
		{"Synthetic (Pangu, skewed)", workload.PanguMix(), true, false},
		{"CNN Training", workload.CNNTrainingMix(128 << 10), false, true},
		{"Thumbnail", workload.ThumbnailMix(128 << 10), false, true},
		{"CNN Training (metadata)", workload.CNNTrainingMix(0), false, false},
		{"Thumbnail (metadata)", workload.ThumbnailMix(0), false, false},
	}
	ns := workload.MultiDir(sc.Dirs, sc.FilesPerDir)
	for _, cse := range cases {
		row := []string{cse.name}
		var rc stats.Counters
		for _, k := range []sysKind{sysCeph, sysInfiniFS, sysCFS, sysSwitchFS} {
			dataNodes := 0
			if cse.data {
				dataNodes = 8
			}
			sim, sys, done := deploy(17, k, 8, 4, 8, dataNodes, nil)
			if k == sysSwitchFS {
				done()
				sim, sys, done = deploySwitchFS(17, 8, 4, 8, dataNodes)
			}
			ns.Preload(sys)
			workers := sc.Workers * 4 // §7.6: 256 in-flight requests
			if k == sysCeph {
				workers = sc.Workers
			}
			res := runOn(sim, sys, ns, cse.mix.Gen(ns, cse.skew), workers, sc.OpsPerWorker, 8, &rc)
			done()
			row = append(row, kops(res.ThroughputOps()))
		}
		t.AddRow(rc, row)
	}
	return t
}

// Recovery reproduces §7.7: time to recover a crashed server (WAL replay +
// re-aggregation + invalidation-list clone) and to restore consistency after
// a switch reboot (flush every change-log). Recovery time is proportional to
// the volume of WAL-resident state.
func Recovery(sc Scale) Table {
	t := Table{ID: "Recovery", Title: "crash recovery time (virtual ms)",
		Header: []string{"scenario", "files", "recovery ms"}}
	for _, files := range []int{sc.Dirs * sc.FilesPerDir / 4, sc.Dirs * sc.FilesPerDir} {
		d, rc := recoverServerTime(18, files, sc.Dirs)
		t.AddRow(rc, []string{"server crash", itoa(files), fmt.Sprintf("%.3f", float64(d)/1e6)})
	}
	for _, files := range []int{sc.Dirs * sc.FilesPerDir / 4, sc.Dirs * sc.FilesPerDir} {
		d, rc := recoverSwitchTime(19, files, sc.Dirs)
		t.AddRow(rc, []string{"switch crash", itoa(files), fmt.Sprintf("%.3f", float64(d)/1e6)})
	}
	return t
}
