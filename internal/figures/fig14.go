package figures

import (
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// Fig14 reproduces Fig. 14: the contribution breakdown. File creates in a
// single shared directory, eight servers; Baseline (synchronous updates),
// +Async (asynchronous updates, entry-by-entry application), +Compaction
// (the full design). Shapes: +Async cuts latency but not throughput (the
// aggregation applies updates serially at the owner); +Compaction lifts
// throughput and scales with cores per server.
func Fig14(sc Scale) Table {
	t := Table{ID: "Fig14", Title: "contribution breakdown: create in one directory",
		Header: []string{"config", "cores", "Kops/s", "mean µs", "p99 µs"}}
	ns := workload.SingleDir(sc.FilesPerDir)
	configs := []struct {
		name        string
		async, comp bool
	}{
		{"Baseline", false, false},
		{"+Async", true, false},
		{"+Compaction", true, true},
	}
	for _, cfg := range configs {
		for _, cores := range sc.CoreCounts {
			var rc stats.Counters
			sim, sys, done := deploy(9, sysSwitchFS, 8, cores, 8, 0, func(o *cluster.Options) {
				o.Async = cfg.async
				o.Compaction = cfg.comp
			})
			ns.Preload(sys)
			res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), sc.Workers, sc.OpsPerWorker, 8, &rc)
			done()
			t.AddRow(rc, []string{
				cfg.name, itoa(cores), kops(res.ThroughputOps()),
				us(res.All.Mean()), us(res.All.Percentile(0.99)),
			})
		}
	}
	return t
}

// Overflow reproduces §7.3.2: create throughput and latency when every
// dirty-set insert is forced to fail, falling back to synchronous updates.
// Shape: throughput collapses toward Baseline and latency rises.
func Overflow(sc Scale) Table {
	t := Table{ID: "Overflow", Title: "dirty-set overflow fallback: create in one directory",
		Header: []string{"config", "Kops/s", "mean µs"}}
	ns := workload.SingleDir(sc.FilesPerDir)
	for _, forced := range []bool{false, true} {
		var rc stats.Counters
		sim, sys, done := deploy(10, sysSwitchFS, 8, 4, 8, 0, func(o *cluster.Options) {
			o.Async = true
			o.Compaction = true
			o.ForceOverflow = forced
		})
		ns.Preload(sys)
		res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), sc.Workers, sc.OpsPerWorker, 8, &rc)
		done()
		name := "inserts succeed"
		if forced {
			name = "inserts overflow"
		}
		t.AddRow(rc, []string{name, kops(res.ThroughputOps()), us(res.All.Mean())})
	}
	return t
}
