package figures

import (
	"strconv"

	"switchfs/internal/core"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// Fig2a reproduces Fig. 2(a): throughput of stat on uniformly random files
// in one shared directory, E-InfiniFS vs E-CFS, as servers scale. The paper's
// shape: E-CFS scales linearly (per-file hashing balances load), E-InfiniFS
// stays flat (every file inode lives on the shared directory's server).
func Fig2a(sc Scale) Table {
	t := Table{ID: "Fig2a", Title: "stat throughput in a shared directory (Mops/s)",
		Header: []string{"servers", "Emulated-InfiniFS", "Emulated-CFS"}}
	ns := workload.SingleDir(sc.FilesPerDir * sc.Dirs)
	for _, n := range sc.ServerCounts {
		row := []string{itoa(n)}
		var rc stats.Counters
		for _, k := range []sysKind{sysInfiniFS, sysCFS} {
			sim, sys, done := deploy(2, k, n, 4, 8, 0, nil)
			ns.Preload(sys)
			res := runOn(sim, sys, ns, ns.UniformFiles(core.OpStat), sc.Workers*8, sc.OpsPerWorker/2+1, 8, &rc)
			done()
			row = append(row, mops(res.ThroughputOps()))
		}
		t.AddRow(rc, row)
	}
	return t
}

// Fig2b reproduces Fig. 2(b): single-client latency of stat and create on
// E-InfiniFS ("InfiniFS") and E-CFS ("CFS-KV"). Shape: stat latencies are
// close; E-CFS's create pays the cross-server transaction.
func Fig2b(sc Scale) Table {
	t := Table{ID: "Fig2b", Title: "operation latency (µs), single client, 8 servers",
		Header: []string{"op", "Emulated-InfiniFS", "Emulated-CFS"}}
	ns := workload.MultiDir(sc.Dirs, sc.FilesPerDir)
	for _, op := range []core.Op{core.OpStat, core.OpCreate} {
		row := []string{op.String()}
		var rc stats.Counters
		for _, k := range []sysKind{sysInfiniFS, sysCFS} {
			sim, sys, done := deploy(3, k, 8, 4, 1, 0, nil)
			ns.Preload(sys)
			res := runOn(sim, sys, ns, genFor(ns, op), 1, sc.OpsPerWorker*4, 1, &rc)
			done()
			row = append(row, us(res.All.Mean()))
		}
		t.AddRow(rc, row)
	}
	return t
}

// Fig2c reproduces Fig. 2(c): throughput of create in one shared directory
// as servers scale. Shape: neither baseline scales — the parent directory
// serializes the updates (§3.2 Challenge #2).
func Fig2c(sc Scale) Table {
	t := Table{ID: "Fig2c", Title: "create throughput in a shared directory (Kops/s) vs servers",
		Header: []string{"servers", "Emulated-InfiniFS", "Emulated-CFS"}}
	ns := workload.SingleDir(sc.FilesPerDir)
	for _, n := range sc.ServerCounts {
		row := []string{itoa(n)}
		var rc stats.Counters
		for _, k := range []sysKind{sysInfiniFS, sysCFS} {
			sim, sys, done := deploy(4, k, n, 4, 8, 0, nil)
			ns.Preload(sys)
			res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), sc.Workers, sc.OpsPerWorker, 8, &rc)
			done()
			row = append(row, kops(res.ThroughputOps()))
		}
		t.AddRow(rc, row)
	}
	return t
}

// Fig2d reproduces Fig. 2(d): create throughput in a shared directory as the
// cores per server scale (8 servers). Shape: flat — intra-server parallelism
// is wasted on a serialized directory.
func Fig2d(sc Scale) Table {
	t := Table{ID: "Fig2d", Title: "create throughput in a shared directory (Kops/s) vs cores/server",
		Header: []string{"cores", "Emulated-InfiniFS", "Emulated-CFS"}}
	ns := workload.SingleDir(sc.FilesPerDir)
	for _, cores := range sc.CoreCounts {
		row := []string{itoa(cores)}
		var rc stats.Counters
		for _, k := range []sysKind{sysInfiniFS, sysCFS} {
			sim, sys, done := deploy(5, k, 8, cores, 8, 0, nil)
			ns.Preload(sys)
			res := runOn(sim, sys, ns, ns.FreshFiles(core.OpCreate), sc.Workers, sc.OpsPerWorker, 8, &rc)
			done()
			row = append(row, kops(res.ThroughputOps()))
		}
		t.AddRow(rc, row)
	}
	return t
}

func itoa(v int) string { return strconv.Itoa(v) }
