package figures

import (
	"fmt"

	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/env"
	"switchfs/internal/stats"
)

// recoverServerTime preloads a WAL-backed namespace, runs protocol traffic so
// change-logs hold pending entries, crashes one server, and measures §5.4.2
// recovery: WAL replay, change-log re-delivery, aggregation of owned
// directories, invalidation-list clone.
func recoverServerTime(seed int64, files, dirs int) (env.Duration, stats.Counters) {
	sim := env.NewSim(seed)
	defer sim.Shutdown()
	c := cluster.New(sim, cluster.Options{Servers: 8, Clients: 1, SwitchIndexBits: 14,
		Costs: env.DefaultCosts(),
		// Proactive aggregation is parked so pending updates survive until
		// the crash — the recovery has real change-logs to re-deliver.
		PushEntries: 1 << 30, PushIdle: env.Second, OwnerQuiesce: env.Second})
	pl := cluster.NewPreload(c)
	pl.LogWAL = true
	perDir := files / dirs
	if perDir < 1 {
		perDir = 1
	}
	for d := 0; d < dirs; d++ {
		pl.Files(fmt.Sprintf("/w%04d", d), "f", perDir)
	}
	// Pending asynchronous updates at crash time (stop before the proactive
	// timers drain them).
	c.RunNoDrain(0, func(p *env.Proc, cl *client.Client) {
		for d := 0; d < dirs; d += 7 {
			cl.Create(p, fmt.Sprintf("/w%04d/pending", d), 0)
		}
	})
	c.CrashServer(1)
	fut := c.RecoverServer(1)
	sim.Run()
	v, ok := fut.Peek()
	if !ok {
		panic("figures: server recovery did not complete")
	}
	if err, isErr := v.(error); isErr {
		panic(err)
	}
	return v.(env.Duration), stats.Counters{PacketsDelivered: sim.Delivered, PacketsDropped: sim.Dropped}
}

// recoverSwitchTime measures restoring consistency after a switch reboot:
// every server flushes its change-logs so all directories return to normal
// state, matching the reset dirty set.
func recoverSwitchTime(seed int64, files, dirs int) (env.Duration, stats.Counters) {
	sim := env.NewSim(seed)
	defer sim.Shutdown()
	c := cluster.New(sim, cluster.Options{Servers: 8, Clients: 1, SwitchIndexBits: 14,
		Costs:       env.DefaultCosts(),
		PushEntries: 1 << 30, PushIdle: env.Second, OwnerQuiesce: env.Second})
	pl := cluster.NewPreload(c)
	perDir := files / dirs
	if perDir < 1 {
		perDir = 1
	}
	for d := 0; d < dirs; d++ {
		pl.Files(fmt.Sprintf("/w%04d", d), "f", perDir)
	}
	c.RunNoDrain(0, func(p *env.Proc, cl *client.Client) {
		for d := 0; d < dirs; d++ {
			for i := 0; i < 4; i++ {
				cl.Create(p, fmt.Sprintf("/w%04d/pending%d", d, i), 0)
			}
		}
	})
	c.CrashSwitch()
	fut := c.RecoverSwitch()
	sim.Run()
	v, ok := fut.Peek()
	if !ok {
		panic("figures: switch recovery did not complete")
	}
	return v.(env.Duration), stats.Counters{PacketsDelivered: sim.Delivered, PacketsDropped: sim.Dropped}
}
