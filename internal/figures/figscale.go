package figures

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// memAccounting gates the allocator-derived cells (namespace bytes/entry,
// run bytes/op and allocs/op). The figure tables themselves are derived from
// virtual time and deterministic counters; the memory cells read the host
// allocator, which is not bit-deterministic, so byte-identical-output runs
// (determinism smoke) turn them off via SetMemAccounting.
var memAccounting = true

// SetMemAccounting enables or disables the allocator-derived cells; when off
// they render as 0.
func SetMemAccounting(on bool) { memAccounting = on }

// MemAccounting reports the current setting.
func MemAccounting() bool { return memAccounting }

// FigScale is the million-client scale figure (ROADMAP north star): an
// open-loop sweep of client-session population × namespace size on one
// SwitchFS deployment, reporting sustained throughput, p99 latency, the
// simulator's goroutine-pool high-water mark, and the engine's memory
// prices — namespace bytes per preloaded entry and harness bytes/allocs per
// operation. Sessions run open-loop (workload.RunOpen): an idle session is a
// queued event, not a parked goroutine, which is what lets the population
// reach the upper cells.
func FigScale(sc Scale) Table { return FigScaleSeed(sc, 1) }

// FigScaleSeed is FigScale with an explicit simulation seed.
func FigScaleSeed(sc Scale, seed int64) Table {
	t := Table{
		ID:    "scale",
		Title: "client/namespace scale: open-loop sessions, compact namespace (Kops/s)",
		Header: []string{
			"clients", "entries", "Kops/s", "p99 µs", "workers",
			"ns B/entry", "bytes/op", "allocs/op",
		},
	}
	clients, entries := sc.ScaleClients, sc.ScaleEntries
	if len(clients) == 0 || len(clients) != len(entries) {
		clients = []int{100, 1000}
		entries = []int{10_000, 100_000}
	}
	for i := range clients {
		row, rc := scaleCell(seed, clients[i], entries[i])
		t.AddRow(rc, row)
	}
	return t
}

// scaleCell runs one (clients, entries) cell on a fresh deployment.
func scaleCell(seed int64, clients, entries int) ([]string, stats.Counters) {
	const (
		servers       = 8
		cores         = 4
		opsPerSession = 4
	)
	// Think time scales with the population so the offered load stays around
	// 0.5 Mops/s — comfortably under the 8-server capacity. The figure
	// measures how cheaply the engine holds sessions and namespace, not
	// saturation (Fig. 12 covers that); an overloaded open loop would just
	// measure queueing collapse.
	think := env.Duration(clients) * 2 * env.Microsecond
	if think < 10*env.Millisecond {
		think = 10 * env.Millisecond
	}
	filesPerDir := 1000
	dirs := entries / filesPerDir
	if dirs < 1 {
		dirs, filesPerDir = 1, entries
	}

	sim, sys, shutdown := deploySwitchFS(seed, servers, cores, clients, 0)
	defer shutdown()
	ns := workload.MultiDir(dirs, filesPerDir)

	// Namespace footprint: live-heap growth across the preload, after forced
	// collections on both sides so transient garbage is not billed.
	var nsBytesPerEntry float64
	if memAccounting {
		runtime.GC()
		before := stats.ReadMem() //detlint:ignore dettaint -- allocator cells are telemetry, gated off by SetMemAccounting in byte-identical mode
		ns.Preload(sys)
		runtime.GC()
		after := stats.ReadMem() //detlint:ignore dettaint -- allocator cells are telemetry, gated off by SetMemAccounting in byte-identical mode
		if after.HeapAlloc > before.HeapAlloc {
			nsBytesPerEntry = float64(after.HeapAlloc-before.HeapAlloc) / float64(entries)
		}
	} else {
		ns.Preload(sys)
	}

	before := stats.ReadMem() //detlint:ignore dettaint -- allocator cells are telemetry, gated off by SetMemAccounting in byte-identical mode
	res := workload.RunOpen(sim, sys, workload.OpenCfg{
		Sessions:      clients,
		OpsPerSession: opsPerSession,
		Clients:       clients,
		Think:         think,
		Seed:          seed,
		Gen:           scaleMix(ns),
	})
	var bytesOp, allocsOp float64
	if memAccounting {
		db, da := stats.ReadMem().AllocDelta(before) //detlint:ignore dettaint -- allocator cells are telemetry, gated off by SetMemAccounting in byte-identical mode
		bytesOp = stats.PerOp(db, uint64(res.Ops))
		allocsOp = stats.PerOp(da, uint64(res.Ops))
	}
	rc := stats.Counters{
		Ops:              uint64(res.Ops),
		Errs:             uint64(res.Errs),
		PacketsDelivered: sim.Delivered,
		PacketsDropped:   sim.Dropped,
	}
	row := []string{
		strconv.Itoa(clients),
		strconv.Itoa(entries),
		kops(res.ThroughputOps()),
		us(res.Lat.Percentile(0.99)),
		strconv.Itoa(res.Workers),
		fmt.Sprintf("%.1f", nsBytesPerEntry),
		fmt.Sprintf("%.1f", bytesOp),
		fmt.Sprintf("%.2f", allocsOp),
	}
	return row, rc
}

// scaleMix is the cell workload: 70% stat, 20% create (per-session fresh
// names), 10% statdir — a metadata-read-heavy mix with enough mutation to
// exercise the invalidation path at scale.
func scaleMix(ns workload.Namespace) workload.Gen {
	stat := ns.UniformFiles(core.OpStat)
	create := ns.FreshFiles(core.OpCreate)
	statdir := ns.StatDirs()
	return func(rnd *rand.Rand, w, i int) workload.OpCall {
		switch r := rnd.Float64(); {
		case r < 0.7:
			return stat(rnd, w, i)
		case r < 0.9:
			return create(rnd, w, i)
		default:
			return statdir(rnd, w, i)
		}
	}
}
