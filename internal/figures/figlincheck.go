package figures

import (
	"fmt"
	"strings"

	"switchfs/internal/lincheck"
	"switchfs/internal/stats"
)

// FigLincheck is the linearizability + differential-model checking figure:
// a seed sweep of (1) sequential differential programs diffed across the
// reference model, SwitchFS and the baseline, (2) concurrent multi-client
// histories on a healthy cluster, and (3) concurrent histories across the
// fault-plan catalog (chaos plan reuse), each searched WGL-style for a legal
// linearization. One row per mode; any divergence or non-linearizable
// history panics with the minimized counterexample — like FigChaos, this
// figure doubles as a correctness gate.
func FigLincheck(sc Scale) Table { return FigLincheckSeed(sc, 1) }

// FigLincheckSeed is FigLincheck starting the sweep at an explicit seed
// (`fsbench -fig lincheck -seed N` sweeps scenario space).
func FigLincheckSeed(sc Scale, seed int64) Table {
	t := Table{
		ID:    "lincheck",
		Title: "Linearizability and differential-model checking (seed sweep)",
		Header: []string{
			"mode", "seeds", "histories", "ops", "ambiguous", "violations",
		},
	}

	// Seed budget per mode scales with the configured load (tiny 4, quick 8,
	// paper 32).
	seeds := int64(sc.Workers / 8)
	if seeds < 2 {
		seeds = 2
	}
	if seeds > 32 {
		seeds = 32
	}

	var failures []string
	row := func(mode string, histories, ops, ambiguous, violations int, packets uint64) {
		t.AddRow(stats.Counters{Ops: uint64(ops), PacketsDelivered: packets}, []string{
			mode,
			fmt.Sprintf("%d", seeds),
			fmt.Sprintf("%d", histories),
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", ambiguous),
			fmt.Sprintf("%d", violations),
		})
	}

	// Mode 1: sequential differential programs — the adversarial small-pool
	// generator and the PanguMix-derived trace shape.
	diffMode := func(mode string, program func(s int64) []lincheck.Op) {
		ops, violations := 0, 0
		var packets uint64
		for s := seed; s < seed+seeds; s++ {
			rep := lincheck.RunDiff(s, program(s))
			ops += rep.Ops
			packets += rep.Packets
			if rep.Failed() {
				violations += len(rep.Divergences)
				for _, d := range rep.Divergences {
					failures = append(failures, fmt.Sprintf("%s seed %d: %s", mode, s, d))
				}
			}
		}
		row(mode, int(seeds), ops, 0, violations, packets)
	}
	diffMode("differential", func(s int64) []lincheck.Op {
		return lincheck.GenProgram(s, 3, 40).Flatten()
	})
	diffMode("differential-mix", func(s int64) []lincheck.Op {
		return lincheck.MixProgram(s, 60)
	})

	// Mode 2: concurrent histories, fault-free.
	runConcurrent := func(mode string, plan func(int64) (string, *lincheck.Report)) {
		histories, ops, ambiguous, violations := 0, 0, 0, 0
		var packets uint64
		for s := seed; s < seed+seeds; s++ {
			name, rep := plan(s)
			histories++
			ops += len(rep.Run.History)
			packets += rep.Run.Packets
			for _, e := range rep.Run.History {
				if e.TimedOut {
					ambiguous++
				}
			}
			if rep.Failed() {
				violations++
				failures = append(failures, fmt.Sprintf("%s seed %d: issues=%v linearizable=%v",
					name, s, rep.Run.Issues, rep.Check.Ok))
				if rep.Counterexample != nil {
					failures = append(failures, "minimized counterexample:\n"+rep.Counterexample.String())
				}
			}
		}
		row(mode, histories, ops, ambiguous, violations, packets)
	}
	runConcurrent("concurrent", func(s int64) (string, *lincheck.Report) {
		return "concurrent", lincheck.CheckConcurrent(s, lincheck.GenProgram(s, 4, 7), nil)
	})

	// Mode 3: concurrent histories across the fault-plan catalog. Rows are
	// labeled by catalog position (the random plan's own name embeds the
	// seed, which would defeat cross-run row comparison).
	planNames := []string{"server-crash", "switch-reboot", "flaky-links", "reconfig-crash",
		"coordinator-crash", "rebalance-crash", "random"}
	if got := len(lincheck.Plans(seed)); got != len(planNames) {
		panic(fmt.Sprintf("figures: lincheck plan catalog has %d plans, labels cover %d", got, len(planNames)))
	}
	for i, pname := range planNames {
		i := i
		runConcurrent("plan:"+pname, func(s int64) (string, *lincheck.Report) {
			plan := lincheck.Plans(s)[i]
			return "plan:" + plan.Name, lincheck.CheckConcurrent(s, lincheck.GenProgram(s, 3, 6), &plan)
		})
	}

	if len(failures) > 0 {
		panic(fmt.Sprintf("figures: lincheck reported %d failures:\n  %s",
			len(failures), strings.Join(failures, "\n  ")))
	}
	return t
}
