package figures

import (
	"fmt"
	"strings"

	"switchfs/internal/chaos"
	"switchfs/internal/cluster"
	"switchfs/internal/env"
	"switchfs/internal/stats"
)

// FigRebalance is the elastic-resharding figure (§5.5): a skewed workload
// concentrates every worker directory's fingerprint group on one server,
// and the hot-directory balancer (plus a live Reconfigure) migrates groups
// away through the gate-and-drain protocol while the load keeps running.
// Each row is one availability/p99 window; the per-plan Σ row totals the
// run and reports the groups migrated. The figure is also the
// no-stop-the-world gate: in the plans without a crash, a window with
// traffic but zero successful operations fails the run — migration must
// never make the namespace unavailable — and a plan that migrates nothing
// fails too (the scenario would not be testing rebalance at all).
func FigRebalance(sc Scale) Table { return FigRebalanceSeed(sc, 1) }

// FigRebalanceSeed is FigRebalance with an explicit seed
// (`fsbench -fig rebalance -seed N`).
func FigRebalanceSeed(sc Scale, seed int64) Table {
	t := Table{
		ID:    "rebalance",
		Title: "Availability and p99 latency during live rebalance and reconfiguration (skewed load)",
		Header: []string{
			"plan", "win", "t(ms)", "ok ops", "timeouts", "avail(%)", "p99(µs)", "moves",
		},
	}

	servers := sc.ServerCounts[0]
	workers := sc.Workers / 8
	if workers < 4 {
		workers = 4
	}
	if workers > 16 {
		workers = 16
	}
	const hot = 0 // the slot every worker directory starts on

	ms := env.Millisecond
	passes := func(at ...env.Duration) []chaos.Event {
		evs := make([]chaos.Event, len(at))
		for i, a := range at {
			evs[i] = chaos.RebalancePass(a)
		}
		return evs
	}
	type scenario struct {
		plan chaos.Plan
		// crashes marks plans whose fault schedule can legitimately zero a
		// window (a fail-stopped server under skewed load); the never-zero
		// availability gate applies only to the pure-migration plans.
		crashes bool
	}
	scenarios := []scenario{
		{
			plan: chaos.Plan{
				Name:    "rebalance-steady",
				Desc:    "hot-directory balancer passes under skewed load, no faults",
				Horizon: 8 * ms,
				Events:  passes(1*ms, 2*ms, 3*ms, 4*ms, 5*ms, 6*ms),
			},
		},
		{
			plan: chaos.Plan{
				Name:    "rebalance-crash",
				Desc:    "balancer passes racing a crash of the hot server",
				Horizon: 10 * ms,
				Events: append(passes(1*ms, 2*ms, 4*ms, 5*ms, 7*ms, 8*ms),
					chaos.CrashServer(2500*env.Microsecond, hot),
					chaos.RecoverServer(6*ms, hot)),
			},
			crashes: true,
		},
		{
			plan: chaos.Plan{
				Name:    "reconfig-live",
				Desc:    "grow the cluster under skewed load — staged migration, no quiesce",
				Horizon: 10 * ms,
				Events:  []chaos.Event{chaos.Reconfigure(1*ms, servers+2)},
			},
		},
	}

	var failures []string
	for _, s := range scenarios {
		plan := s.plan
		sim := env.NewSim(seed)
		c := cluster.New(sim, cluster.Options{
			Servers: servers, Clients: 2, Switches: 1,
			SwitchIndexBits: 12, Costs: env.DefaultCosts(),
		})
		rep := chaos.Run(sim, c, plan, chaos.Options{
			Workers: workers, Seed: seed, Skewed: true, SkewServer: hot,
		})
		totOk, totErrs := 0, 0
		for w, row := range rep.Rows {
			totOk += row.Ok
			totErrs += row.Errs
			avail := 100.0
			if row.Ok+row.Errs > 0 {
				avail = 100 * float64(row.Ok) / float64(row.Ok+row.Errs)
			}
			if !s.crashes && row.Ok+row.Errs > 0 && row.Ok == 0 {
				failures = append(failures, fmt.Sprintf(
					"%s: window %d had traffic but zero successful ops — migration stalled the namespace",
					plan.Name, w))
			}
			t.AddRow(row.Counters, []string{
				plan.Name,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.1f", float64(row.Start)/1e6),
				fmt.Sprintf("%d", row.Ok),
				fmt.Sprintf("%d", row.Errs),
				fmt.Sprintf("%.1f", avail),
				us(rep.Rows[w].P99),
				"",
			})
		}
		avail := 100.0
		if totOk+totErrs > 0 {
			avail = 100 * float64(totOk) / float64(totOk+totErrs)
		}
		// The Σ row's counters carry the final per-server op distribution —
		// the deterministic load-spread signal the baseline gate pins.
		t.AddRow(stats.Counters{
			Ops: uint64(totOk + totErrs), Errs: uint64(totErrs),
			PerServerOps: c.PerServerOps(),
		}, []string{
			plan.Name, "Σ", "-",
			fmt.Sprintf("%d", totOk),
			fmt.Sprintf("%d", totErrs),
			fmt.Sprintf("%.1f", avail),
			"-",
			fmt.Sprintf("%d", c.Moves()),
		})
		if c.Moves() == 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: zero groups migrated — the scenario exercised nothing", plan.Name))
		}
		for _, v := range rep.Checker.Violations() {
			failures = append(failures, fmt.Sprintf("%s: %s", plan.Name, v))
		}
		for _, iss := range rep.Issues {
			failures = append(failures, fmt.Sprintf("%s: %s", plan.Name, iss))
		}
		sim.Shutdown()
	}
	if len(failures) > 0 {
		panic(fmt.Sprintf("figures: rebalance gate reported %d failures:\n  %s",
			len(failures), strings.Join(failures, "\n  ")))
	}
	return t
}
