package figures

import (
	"fmt"

	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/datanode"
	"switchfs/internal/env"
	"switchfs/internal/stats"
	"switchfs/internal/wire"
)

// FigData is the data-plane figure family (§7.6): striped chunk throughput
// across data-node counts and replication factors, plus a fail-stop
// recovery timeline (crash one data node under load, re-replicate its
// stripes, verify no acknowledged write was lost). Placement comes from the
// metadata path end to end — files are created and opened through the
// normal protocol and chunks are striped over the DataLoc slots Open
// returned, exactly as File.Write does.
func FigData(sc Scale) Table { return FigDataSeed(sc, 1) }

// FigDataSeed is FigData with an explicit simulation seed.
func FigDataSeed(sc Scale, seed int64) Table {
	t := Table{
		ID:    "data",
		Title: "striped data plane: replicated chunk throughput and recovery (§7.6)",
		Header: []string{
			"config", "writes", "reads", "wr Kops/s", "rd Kops/s", "recovery ms", "repulled",
		},
	}
	workers := sc.Workers / 8
	if workers < 4 {
		workers = 4
	}
	if workers > 16 {
		workers = 16
	}
	ops := sc.OpsPerWorker

	for _, cfg := range []struct{ nodes, r int }{
		{2, 2}, {4, 1}, {4, 2}, {4, 3}, {8, 2},
	} {
		wr, rd, nw, nr, rc := dataThroughput(seed, cfg.nodes, cfg.r, workers, ops)
		t.AddRow(rc, []string{
			fmt.Sprintf("%d nodes r=%d", cfg.nodes, cfg.r),
			fmt.Sprintf("%d", nw), fmt.Sprintf("%d", nr),
			kops(wr), kops(rd), "-", "-",
		})
	}

	recMs, repulled, rc := dataRecovery(seed, 4, 2, workers, ops)
	t.AddRow(rc, []string{
		"4 nodes r=2 crash+recover", "-", "-", "-", "-",
		fmt.Sprintf("%.3f", recMs), fmt.Sprintf("%d", repulled),
	})
	return t
}

// dataDeploy stands up a cluster with a data plane and one opened file per
// worker, returning each worker's chunk-file hash and DataLoc placement.
func dataDeploy(seed int64, nodes, r, workers int) (*env.Sim, *cluster.Cluster, [][]uint32) {
	sim := env.NewSim(seed)
	c := cluster.New(sim, cluster.Options{
		Servers: 4, Clients: 4, DataNodes: nodes, DataReplication: r,
		SwitchIndexBits: 12, Costs: env.DefaultCosts(),
	})
	locs := make([][]uint32, workers)
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/data", 0); err != nil {
			panic(fmt.Sprintf("figures: data mkdir: %v", err))
		}
		for w := 0; w < workers; w++ {
			path := fmt.Sprintf("/data/f%03d", w)
			if err := cl.Create(p, path, 0); err != nil {
				panic(fmt.Sprintf("figures: data create: %v", err))
			}
			_, loc, err := cl.Open(p, path)
			if err != nil || len(loc) == 0 {
				panic(fmt.Sprintf("figures: open %s returned loc=%v err=%v", path, loc, err))
			}
			locs[w] = loc
		}
	})
	return sim, c, locs
}

// chunkTarget maps worker w's stripe s onto (chunk, primary node) via the
// file's DataLoc placement — datanode.StripeSlot, the rule File.Write uses.
func chunkTarget(c *cluster.Cluster, locs [][]uint32, w, s int) (wire.ChunkKey, env.NodeID) {
	chunk := wire.ChunkKey{File: uint32(w), Stripe: uint32(s)}
	node := c.DataNodes[datanode.StripeSlot(locs[w], s, len(c.DataNodes))]
	return chunk, node
}

// dataThroughput drives closed-loop chunk writes, then reads, and reports
// both throughputs (ops/s of virtual time) and the op/packet tally.
func dataThroughput(seed int64, nodes, r, workers, ops int) (wr, rd float64, nw, nr int, rc stats.Counters) {
	sim, c, locs := dataDeploy(seed, nodes, r, workers)
	defer sim.Shutdown()

	phase := func(write bool) (float64, int) {
		t0 := sim.Now()
		end := t0
		total := 0
		for w := 0; w < workers; w++ {
			w := w
			cl := c.Client(w)
			sim.Spawn(cl.ID(), func(p *env.Proc) {
				for j := 0; j < ops; j++ {
					chunk, node := chunkTarget(c, locs, w, j%4)
					var err error
					if write {
						_, err = cl.WriteChunk(p, node, chunk, 4096)
					} else {
						_, _, err = cl.ReadChunk(p, node, chunk)
					}
					if err != nil {
						panic(fmt.Sprintf("figures: data %v op failed: %v", write, err))
					}
					total++
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		sim.Run()
		// The makespan ends when the last worker finishes: the queue also
		// drains each final RPC's (cancelled) retransmission timer, which
		// would otherwise bill 20× the retry timeout to the phase.
		dur := end - t0
		if dur <= 0 {
			return 0, total
		}
		return float64(total) / (float64(dur) / 1e9), total
	}
	wr, nw = phase(true)
	rd, nr = phase(false)
	rc = stats.Counters{
		Ops:              uint64(nw + nr),
		PacketsDelivered: sim.Delivered,
		PacketsDropped:   sim.Dropped,
	}
	return wr, rd, nw, nr, rc
}

// dataRecovery writes a chunk population, fail-stops one data node, runs
// §7.6-style recovery (restart + re-replication pull), and verifies every
// acknowledged version is still readable — a lost acked content write
// fails the figure loudly. It reports the recovery's virtual duration and
// the number of records re-replicated.
func dataRecovery(seed int64, nodes, r, workers, ops int) (recMs float64, repulled uint64, rc stats.Counters) {
	sim, c, locs := dataDeploy(seed, nodes, r, workers)
	defer sim.Shutdown()

	acked := make(map[wire.ChunkKey]uint64)
	for w := 0; w < workers; w++ {
		w := w
		cl := c.Client(w)
		sim.Spawn(cl.ID(), func(p *env.Proc) {
			for j := 0; j < ops; j++ {
				chunk, node := chunkTarget(c, locs, w, j%4)
				ver, err := cl.WriteChunk(p, node, chunk, 4096)
				if err != nil {
					panic(fmt.Sprintf("figures: data recovery write: %v", err))
				}
				acked[chunk] = ver
			}
		})
	}
	sim.Run()

	crash := 1 % nodes
	c.CrashDataNode(crash)
	fut := c.RecoverDataNode(crash)
	sim.Run()
	v, ok := fut.Peek()
	if !ok {
		panic("figures: data-node recovery did not complete")
	}
	if err, isErr := v.(error); isErr {
		panic(err)
	}
	recMs = float64(v.(env.Duration)) / 1e6
	repulled = c.DataServers[crash].Stats.PulledChunks

	// Post-recovery audit through the normal read path.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for w := 0; w < workers; w++ {
			for s := 0; s < 4 && s < ops; s++ {
				chunk, node := chunkTarget(c, locs, w, s)
				ver, _, err := cl.ReadChunk(p, node, chunk)
				if err != nil {
					panic(fmt.Sprintf("figures: post-recovery read: %v", err))
				}
				if want := acked[chunk]; ver != want {
					panic(fmt.Sprintf("figures: lost acked content write: chunk %v version %d, acked %d",
						chunk, ver, want))
				}
			}
		}
	})
	rc = stats.Counters{
		Ops:              uint64(workers * ops),
		PacketsDelivered: sim.Delivered,
		PacketsDropped:   sim.Dropped,
	}
	return recMs, repulled, rc
}
