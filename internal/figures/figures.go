// Package figures regenerates every table and figure of the paper's
// evaluation (§3.2 motivation and §7). Each function stands up the systems
// under comparison on a fresh deterministic simulation, preloads the
// workload's namespace, drives the closed-loop load, and returns a printable
// table. EXPERIMENTS.md records the paper-vs-measured comparison for each.
package figures

import (
	"fmt"
	"strings"

	"switchfs/internal/baseline"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// Scale sizes an experiment. Quick keeps `go test -bench` fast; Paper
// approaches the paper's population sizes (minutes per figure).
type Scale struct {
	Dirs         int
	FilesPerDir  int
	Workers      int
	OpsPerWorker int
	ServerCounts []int
	CoreCounts   []int
	BurstSizes   []int
	// ScaleClients / ScaleEntries are the scale figure's sweep: parallel
	// lists of open-loop session population and preloaded namespace size.
	// Empty (or mismatched) lists fall back to the tiny two-cell sweep.
	ScaleClients []int
	ScaleEntries []int
}

// Quick is the reduced scale used by the bench targets.
func Quick() Scale {
	return Scale{
		Dirs:         64,
		FilesPerDir:  64,
		Workers:      64,
		OpsPerWorker: 40,
		ServerCounts: []int{4, 8, 16},
		CoreCounts:   []int{2, 4, 6},
		BurstSizes:   []int{10, 50, 1000},
		// The 1e5-client / 1e7-entry cell is the acceptance bar for the
		// scale work: it must finish in CI-smoke-feasible time.
		ScaleClients: []int{100, 1000, 10_000, 100_000},
		ScaleEntries: []int{10_000, 100_000, 1_000_000, 10_000_000},
	}
}

// Paper approaches the paper's configuration (§7.1).
func Paper() Scale {
	return Scale{
		Dirs:         1024,
		FilesPerDir:  256,
		Workers:      256,
		OpsPerWorker: 120,
		ServerCounts: []int{4, 8, 12, 16},
		CoreCounts:   []int{2, 3, 4, 5, 6},
		BurstSizes:   []int{10, 20, 50, 100, 1000},
		ScaleClients: []int{100, 1000, 10_000, 100_000, 1_000_000},
		ScaleEntries: []int{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000},
	}
}

// Table is a printable result grid. Meta carries one deterministic counter
// set per row (operation and packet counts summed over the row's runs) for
// cross-run sanity checks; it is emitted by the JSON bench format and
// checked by bench comparisons, not printed in the text rendering.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Meta   []stats.Counters
}

// AddRow appends a row and its counters in lockstep.
func (t *Table) AddRow(c stats.Counters, cells []string) {
	t.Rows = append(t.Rows, cells)
	t.Meta = append(t.Meta, c)
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// sysKind names a system under comparison.
type sysKind int

const (
	sysSwitchFS sysKind = iota
	sysInfiniFS
	sysCFS
	sysCeph
	sysIndexFS
)

func (k sysKind) String() string {
	switch k {
	case sysSwitchFS:
		return "SwitchFS"
	case sysInfiniFS:
		return "Emulated-InfiniFS"
	case sysCFS:
		return "Emulated-CFS"
	case sysCeph:
		return "CephFS"
	default:
		return "IndexFS"
	}
}

// deploy stands up one system on a fresh simulation.
func deploy(seed int64, k sysKind, servers, cores, clients, dataNodes int,
	tweak func(*cluster.Options)) (*env.Sim, fsapi.System, func()) {

	sim := env.NewSim(seed)
	costs := env.DefaultCosts()
	switch k {
	case sysSwitchFS:
		opts := cluster.Options{
			Servers:         servers,
			CoresPerServer:  cores,
			Clients:         clients,
			DataNodes:       dataNodes,
			Costs:           costs,
			SwitchIndexBits: 14,
		}
		if tweak != nil {
			tweak(&opts)
		}
		opts.Trace = obsTrace
		var c *cluster.Cluster
		if opts.Async || opts.Compaction {
			c = cluster.NewWithModes(sim, opts)
		} else if tweak == nil {
			c = cluster.New(sim, opts)
		} else {
			c = cluster.NewWithModes(sim, opts)
		}
		// Teardown snapshots the cluster's counters into the shared metrics
		// registry (no-op when observability is off).
		return sim, c, func() {
			c.FillMetrics(obsMetrics)
			sim.Shutdown()
		}
	default:
		mode := map[sysKind]baseline.Mode{
			sysInfiniFS: baseline.InfiniFS,
			sysCFS:      baseline.CFS,
			sysCeph:     baseline.Ceph,
			sysIndexFS:  baseline.IndexFS,
		}[k]
		c := baseline.New(sim, baseline.Options{
			Mode:           mode,
			Servers:        servers,
			CoresPerServer: cores,
			Clients:        clients,
			DataNodes:      dataNodes,
			Costs:          costs,
		})
		return sim, c, sim.Shutdown
	}
}

// deploySwitchFS is deploy with full SwitchFS defaults.
func deploySwitchFS(seed int64, servers, cores, clients, dataNodes int) (*env.Sim, fsapi.System, func()) {
	return deploy(seed, sysSwitchFS, servers, cores, clients, dataNodes, func(o *cluster.Options) {
		o.Async = true
		o.Compaction = true
	})
}

// kops formats ops/s as Kops/s.
func kops(v float64) string { return fmt.Sprintf("%.1f", v/1e3) }

// mops formats ops/s as Mops/s.
func mops(v float64) string { return fmt.Sprintf("%.3f", v/1e6) }

// us formats nanoseconds as microseconds.
func us(v float64) string { return fmt.Sprintf("%.1f", v/1e3) }

// runOn executes a generator against a deployed system, folding the run's
// operation and packet counts into the row tally.
func runOn(sim *env.Sim, sys fsapi.System, ns workload.Namespace, gen workload.Gen,
	workers, ops, clients int, tally *stats.Counters) workload.Result {
	res := workload.Run(sim, sys, workload.RunCfg{
		Workers:      workers,
		OpsPerWorker: ops,
		Clients:      clients,
		Seed:         1,
		Gen:          gen,
	})
	if tally != nil {
		add := stats.Counters{
			Ops:              uint64(res.Ops),
			Errs:             uint64(res.Errs),
			PacketsDelivered: sim.Delivered,
			PacketsDropped:   sim.Dropped,
		}
		// Systems reporting per-server tallies (SwitchFS and the emulated
		// baselines both do) contribute the load-balance signal.
		if po, ok := sys.(interface{ PerServerOps() []uint64 }); ok {
			add.PerServerOps = po.PerServerOps()
		}
		tally.Add(add)
	}
	return res
}

// genFor builds the per-op generator used by the Fig. 12 matrix.
func genFor(ns workload.Namespace, op core.Op) workload.Gen {
	switch op {
	case core.OpCreate:
		return ns.FreshFiles(core.OpCreate)
	case core.OpDelete:
		return ns.CreateThenDelete()
	case core.OpMkdir:
		return ns.FreshDirs(core.OpMkdir)
	case core.OpRmdir:
		return ns.MkdirThenRmdir()
	case core.OpStat:
		return ns.UniformFiles(core.OpStat)
	case core.OpStatDir:
		return ns.StatDirs()
	default:
		return ns.UniformFiles(op)
	}
}
