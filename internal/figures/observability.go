// Observability hooks: an optional trace recorder and metrics registry that
// every subsequently deployed SwitchFS cluster feeds. Package-level like
// memAccounting because the figure functions construct their own clusters
// internally; fsbench installs the pair before running figures and collects
// the trace file / metric snapshots after.
package figures

import (
	"switchfs/internal/metrics"
	"switchfs/internal/trace"
)

var (
	obsTrace   *trace.Recorder
	obsMetrics *metrics.Registry
)

// SetObservability installs the trace recorder and metrics registry deployed
// clusters record into. Either may be nil (disabled); pass nil, nil to turn
// observability back off. Not safe to flip while a figure is running.
func SetObservability(rec *trace.Recorder, reg *metrics.Registry) {
	obsTrace = rec
	obsMetrics = reg
}
