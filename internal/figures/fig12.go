package figures

import (
	"switchfs/internal/core"
	"switchfs/internal/stats"
	"switchfs/internal/workload"
)

// fig12Systems is the comparison set of §7.2.
var fig12Systems = []sysKind{sysCeph, sysIndexFS, sysInfiniFS, sysCFS, sysSwitchFS}

// fig12Ops are the six per-op panels of Fig. 12.
var fig12Ops = []core.Op{core.OpCreate, core.OpDelete, core.OpMkdir, core.OpRmdir, core.OpStat, core.OpStatDir}

// Fig12a reproduces Fig. 12(a): peak throughput of each metadata operation
// in a single very large directory as servers scale. Shapes: SwitchFS scales
// for the double-inode ops (fine-grained partitioning + async updates +
// compaction); E-CFS barely scales (per-directory serialization); E-InfiniFS
// is bound by the directory's single server; CephFS stays under 100 Kops/s.
// IndexFS's single-large-directory results are omitted like the paper's
// (its implementation "consistently crashes").
func Fig12a(sc Scale) Table {
	t := Table{ID: "Fig12a", Title: "single large directory: throughput (Kops/s)",
		Header: []string{"op", "servers", "CephFS", "Emulated-InfiniFS", "Emulated-CFS", "SwitchFS"}}
	systems := []sysKind{sysCeph, sysInfiniFS, sysCFS, sysSwitchFS}
	ns := workload.SingleDir(sc.FilesPerDir * 4)
	for _, op := range fig12Ops {
		for _, n := range sc.ServerCounts {
			row := []string{op.String(), itoa(n)}
			var rc stats.Counters
			for _, k := range systems {
				sim, sys, done := deploy(6, k, n, 4, 8, 0, nil)
				if k == sysSwitchFS {
					done()
					sim, sys, done = deploySwitchFS(6, n, 4, 8, 0)
				}
				ns.Preload(sys)
				workers := sc.Workers * 4 // expose server-side scaling limits
				if k == sysCeph {
					workers = sc.Workers / 2 // the heavy stack needs no extra pressure
				}
				res := runOn(sim, sys, ns, genFor(ns, op), workers, sc.OpsPerWorker, 8, &rc)
				done()
				row = append(row, kops(res.ThroughputOps()))
			}
			t.AddRow(rc, row)
		}
	}
	return t
}

// Fig12b reproduces Fig. 12(b): the same matrix over many directories —
// little contention, so every system runs at its per-op efficiency. Shapes:
// SwitchFS and E-InfiniFS lead on create/delete (local execution), SwitchFS
// leads on mkdir (async beats the baselines' distributed transactions),
// stat and statdir scale for every fine-partitioned system.
func Fig12b(sc Scale) Table {
	t := Table{ID: "Fig12b", Title: "multiple directories: throughput (Kops/s)",
		Header: []string{"op", "servers", "CephFS", "IndexFS", "Emulated-InfiniFS", "Emulated-CFS", "SwitchFS"}}
	ns := workload.MultiDir(sc.Dirs, sc.FilesPerDir)
	for _, op := range fig12Ops {
		for _, n := range sc.ServerCounts {
			row := []string{op.String(), itoa(n)}
			var rc stats.Counters
			for _, k := range fig12Systems {
				if k == sysIndexFS && op == core.OpRmdir {
					row = append(row, "-") // incomplete in IndexFS (§7.2.1)
					continue
				}
				sim, sys, done := deploy(7, k, n, 4, 8, 0, nil)
				if k == sysSwitchFS {
					done()
					sim, sys, done = deploySwitchFS(7, n, 4, 8, 0)
				}
				ns.Preload(sys)
				workers := sc.Workers
				if k == sysCeph {
					workers = sc.Workers / 2
				}
				res := runOn(sim, sys, ns, genFor(ns, op), workers, sc.OpsPerWorker, 8, &rc)
				done()
				row = append(row, kops(res.ThroughputOps()))
			}
			t.AddRow(rc, row)
		}
	}
	return t
}

// Fig13 reproduces Fig. 13: average operation latency with a single
// sequential client on 8 servers. Shapes: SwitchFS cuts the double-inode
// latencies (single server + single round trip); its statdir is modestly
// higher than the baselines' (the extra correctness checks); CephFS is two
// orders of magnitude slower.
func Fig13(sc Scale) Table {
	t := Table{ID: "Fig13", Title: "operation latency (µs), single client, 8 servers",
		Header: []string{"op", "CephFS", "IndexFS", "Emulated-InfiniFS", "Emulated-CFS", "SwitchFS"}}
	ns := workload.MultiDir(sc.Dirs, sc.FilesPerDir)
	ops := []core.Op{core.OpStat, core.OpStatDir, core.OpCreate, core.OpMkdir, core.OpDelete, core.OpRmdir}
	for _, op := range ops {
		row := []string{op.String()}
		var rc stats.Counters
		for _, k := range fig12Systems {
			if k == sysIndexFS && op == core.OpRmdir {
				row = append(row, "-")
				continue
			}
			sim, sys, done := deploy(8, k, 8, 4, 1, 0, nil)
			if k == sysSwitchFS {
				done()
				sim, sys, done = deploySwitchFS(8, 8, 4, 1, 0)
			}
			ns.Preload(sys)
			res := runOn(sim, sys, ns, genFor(ns, op), 1, sc.OpsPerWorker*2, 1, &rc)
			done()
			row = append(row, us(res.All.Mean()))
		}
		t.AddRow(rc, row)
	}
	return t
}
