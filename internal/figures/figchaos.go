package figures

import (
	"fmt"
	"strings"

	"switchfs/internal/chaos"
	"switchfs/internal/cluster"
	"switchfs/internal/env"
)

// FigChaos is the availability figure family: for every built-in fault plan
// (plus one seeded random plan) it drives a closed-loop workload across the
// fault schedule and reports an availability + tail-latency timeline, one
// row per time window. The model-based chaos.Checker replays every completed
// operation against the namespace oracle; any invariant violation fails the
// figure loudly — this figure doubles as the repo's availability gate.
func FigChaos(sc Scale) Table { return FigChaosSeed(sc, 1) }

// FigChaosSeed is FigChaos with an explicit seed for the random plan and
// the simulations (`fsbench -fig chaos -seed N` sweeps scenario space).
func FigChaosSeed(sc Scale, seed int64) Table {
	t := Table{
		ID:    "chaos",
		Title: "Availability and p99 latency under fault plans (chaos harness)",
		Header: []string{
			"plan", "win", "t(ms)", "ok ops", "timeouts", "avail(%)", "p99(µs)",
		},
	}

	g := chaos.Geometry{Servers: sc.ServerCounts[0], Clients: 2, Switches: 1,
		DataNodes: 4, DataReplication: 2}
	workers := sc.Workers / 8
	if workers < 4 {
		workers = 4
	}
	if workers > 16 {
		workers = 16
	}
	plans := chaos.BuiltinPlans(g)
	plans = append(plans, chaos.RandomPlan(seed, g, 8*env.Millisecond))

	var failures []string
	for _, plan := range plans {
		sim := env.NewSim(seed)
		c := cluster.New(sim, cluster.Options{
			Servers: g.Servers, Clients: g.Clients, Switches: g.Switches,
			DataNodes: g.DataNodes, DataReplication: g.DataReplication,
			SwitchIndexBits: 12, Costs: env.DefaultCosts(),
		})
		rep := chaos.Run(sim, c, plan, chaos.Options{Workers: workers, Seed: seed})
		for w, row := range rep.Rows {
			avail := 100.0
			if row.Ok+row.Errs > 0 {
				avail = 100 * float64(row.Ok) / float64(row.Ok+row.Errs)
			}
			t.AddRow(row.Counters, []string{
				plan.Name,
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.1f", float64(row.Start)/1e6),
				fmt.Sprintf("%d", row.Ok),
				fmt.Sprintf("%d", row.Errs),
				fmt.Sprintf("%.1f", avail),
				us(rep.Rows[w].P99),
			})
		}
		for _, v := range rep.Checker.Violations() {
			failures = append(failures, fmt.Sprintf("%s: %s", plan.Name, v))
		}
		for _, iss := range rep.Issues {
			failures = append(failures, fmt.Sprintf("%s: %s", plan.Name, iss))
		}
		sim.Shutdown()
	}
	if len(failures) > 0 {
		panic(fmt.Sprintf("figures: chaos checker reported %d violations:\n  %s",
			len(failures), strings.Join(failures, "\n  ")))
	}
	return t
}
