package stats

import (
	"math"
	"testing"
)

func TestCountersAddAndEqual(t *testing.T) {
	var a Counters
	a.Add(Counters{Ops: 3, PerServerOps: []uint64{1, 2}})
	a.Add(Counters{Ops: 2, Errs: 1, PerServerOps: []uint64{0, 1, 5}})
	want := Counters{Ops: 5, Errs: 1, PerServerOps: []uint64{1, 3, 5}}
	if !a.Equal(want) {
		t.Fatalf("got %+v, want %+v", a, want)
	}
	// nil, empty and zero-padded per-server slices compare equal: rows from
	// producers predating the field must match rows reporting zeros.
	if !(Counters{Ops: 1}).Equal(Counters{Ops: 1, PerServerOps: []uint64{0, 0}}) {
		t.Error("zero-filled PerServerOps must equal nil")
	}
	if (Counters{Ops: 1}).Equal(Counters{Ops: 1, PerServerOps: []uint64{0, 7}}) {
		t.Error("non-zero PerServerOps must not equal nil")
	}
	if !(Counters{}).IsZero() || (Counters{PerServerOps: []uint64{1}}).IsZero() {
		t.Error("IsZero misclassified")
	}
}

func TestCountersSubPerServer(t *testing.T) {
	cum := Counters{Ops: 10, PerServerOps: []uint64{6, 4}}
	prev := Counters{Ops: 4, PerServerOps: []uint64{3, 1}}
	d := cum.Sub(prev)
	if d.Ops != 6 || d.PerServerOps[0] != 3 || d.PerServerOps[1] != 3 {
		t.Fatalf("delta %+v", d)
	}
}

func TestHistExactBelowCap(t *testing.T) {
	var h Hist
	n := 1000 // well below HistCap: every sample retained, percentiles exact
	for i := 1; i <= n; i++ {
		h.Add(float64(i))
	}
	if h.N() != n || h.Retained() != n {
		t.Fatalf("n=%d retained=%d, want %d exact", h.N(), h.Retained(), n)
	}
	if got := h.Mean(); math.Abs(got-float64(n+1)/2) > 1e-9 {
		t.Errorf("mean=%v, want %v", got, float64(n+1)/2)
	}
	if got := h.Percentile(0.5); got != 500 {
		t.Errorf("p50=%v, want 500 (nearest-rank, exact below cap)", got)
	}
	if got := h.Percentile(0.99); got != 990 {
		t.Errorf("p99=%v, want 990", got)
	}
	if got := h.Max(); got != float64(n) {
		t.Errorf("max=%v, want %v", got, float64(n))
	}
}

func TestHistReservoirBoundedAndDeterministic(t *testing.T) {
	run := func() *Hist {
		h := &Hist{}
		for i := 0; i < HistCap+10_000; i++ {
			h.Add(float64(i % 7919))
		}
		return h
	}
	a, b := run(), run()
	if a.Retained() != HistCap {
		t.Fatalf("retained %d, want cap %d", a.Retained(), HistCap)
	}
	if a.N() != HistCap+10_000 {
		t.Fatalf("N=%d, want exact count %d", a.N(), HistCap+10_000)
	}
	if a.Mean() != b.Mean() || a.Percentile(0.5) != b.Percentile(0.5) ||
		a.Percentile(0.99) != b.Percentile(0.99) {
		t.Fatal("two identical runs retained different reservoirs (nondeterministic sampling)")
	}
}

func TestHistMergeKeepsExactCountAndSum(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Add(1)
		b.Add(3)
	}
	a.Merge(&b)
	if a.N() != 200 {
		t.Fatalf("merged N=%d, want 200", a.N())
	}
	if got := a.Mean(); got != 2 {
		t.Fatalf("merged mean=%v, want 2", got)
	}
}
