// Package stats provides the latency histograms and throughput accounting
// used by the figure harnesses.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counters are the deterministic sanity counters carried by every figure
// row: operation and packet counts summed over the row's simulation runs.
// Two runs of the same figure at the same scale and seed must produce
// identical counters — bench comparisons (internal/bench) use them to
// detect configuration drift before comparing performance cells.
type Counters struct {
	// Ops and Errs are completed workload operations and their failures.
	Ops  uint64 `json:"ops"`
	Errs uint64 `json:"errs"`
	// PacketsDelivered / PacketsDropped are simulator network totals
	// (delivery includes every protocol hop, not just client RPCs).
	PacketsDelivered uint64 `json:"packets_delivered"`
	PacketsDropped   uint64 `json:"packets_dropped"`
}

// Add folds another counter set into c.
func (c *Counters) Add(o Counters) {
	c.Ops += o.Ops
	c.Errs += o.Errs
	c.PacketsDelivered += o.PacketsDelivered
	c.PacketsDropped += o.PacketsDropped
}

// Sub returns c - o component-wise: the delta between two cumulative
// snapshots (timeline windows bucket a run's counters this way).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Ops:              c.Ops - o.Ops,
		Errs:             c.Errs - o.Errs,
		PacketsDelivered: c.PacketsDelivered - o.PacketsDelivered,
		PacketsDropped:   c.PacketsDropped - o.PacketsDropped,
	}
}

// IsZero reports an all-zero counter set (a row with no tallied runs).
func (c Counters) IsZero() bool {
	return c == Counters{}
}

// String renders the counters compactly for table footers and logs.
func (c Counters) String() string {
	return fmt.Sprintf("ops=%d errs=%d pkts=%d dropped=%d",
		c.Ops, c.Errs, c.PacketsDelivered, c.PacketsDropped)
}

// Hist is a latency recorder with exact percentiles (samples are retained;
// figure runs record at most a few hundred thousand points).
type Hist struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one sample.
func (h *Hist) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// N returns the sample count.
func (h *Hist) N() int { return len(h.samples) }

// Mean returns the average, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Percentile returns the q-quantile (q in [0,1]) by nearest-rank.
func (h *Hist) Percentile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	i := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(h.samples) {
		i = len(h.samples) - 1
	}
	return h.samples[i]
}

// Max returns the largest sample.
func (h *Hist) Max() float64 { return h.Percentile(1) }

// Merge folds another histogram into this one.
func (h *Hist) Merge(o *Hist) {
	h.samples = append(h.samples, o.samples...)
	h.sum += o.sum
	h.sorted = false
}

// Summary renders mean/p50/p90/p99 in microseconds for latency histograms
// holding nanosecond samples.
func (h *Hist) Summary() string {
	const us = 1000.0
	return fmt.Sprintf("mean=%.1fµs p50=%.1fµs p90=%.1fµs p99=%.1fµs (n=%d)",
		h.Mean()/us, h.Percentile(0.50)/us, h.Percentile(0.90)/us, h.Percentile(0.99)/us, h.N())
}
