// Package stats provides the latency histograms and throughput accounting
// used by the figure harnesses.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counters are the deterministic sanity counters carried by every figure
// row: operation and packet counts summed over the row's simulation runs.
// Two runs of the same figure at the same scale and seed must produce
// identical counters — bench comparisons (internal/bench) use them to
// detect configuration drift before comparing performance cells.
type Counters struct {
	// Ops and Errs are completed workload operations and their failures.
	Ops  uint64 `json:"ops"`
	Errs uint64 `json:"errs"`
	// PacketsDelivered / PacketsDropped are simulator network totals
	// (delivery includes every protocol hop, not just client RPCs).
	PacketsDelivered uint64 `json:"packets_delivered"`
	PacketsDropped   uint64 `json:"packets_dropped"`
	// PerServerOps tallies server-side operation handling by server slot
	// (index i = the deployment's i-th metadata server). It is the hotspot
	// signal load-aware rebalancing needs: a skewed workload shows up as a
	// skewed slice. Rows from systems that do not report per-server tallies
	// leave it nil; nil and empty compare equal.
	PerServerOps []uint64 `json:"per_server_ops,omitempty"`
}

// Add folds another counter set into c.
func (c *Counters) Add(o Counters) {
	c.Ops += o.Ops
	c.Errs += o.Errs
	c.PacketsDelivered += o.PacketsDelivered
	c.PacketsDropped += o.PacketsDropped
	if len(o.PerServerOps) > len(c.PerServerOps) {
		grown := make([]uint64, len(o.PerServerOps))
		copy(grown, c.PerServerOps)
		c.PerServerOps = grown
	}
	for i, v := range o.PerServerOps {
		c.PerServerOps[i] += v
	}
}

// Sub returns c - o component-wise: the delta between two cumulative
// snapshots (timeline windows bucket a run's counters this way).
func (c Counters) Sub(o Counters) Counters {
	out := Counters{
		Ops:              c.Ops - o.Ops,
		Errs:             c.Errs - o.Errs,
		PacketsDelivered: c.PacketsDelivered - o.PacketsDelivered,
		PacketsDropped:   c.PacketsDropped - o.PacketsDropped,
	}
	if len(c.PerServerOps) > 0 {
		out.PerServerOps = make([]uint64, len(c.PerServerOps))
		copy(out.PerServerOps, c.PerServerOps)
		for i, v := range o.PerServerOps {
			if i < len(out.PerServerOps) {
				out.PerServerOps[i] -= v
			}
		}
	}
	return out
}

// Equal reports component-wise equality. PerServerOps compares with
// zero-fill: nil, empty, and all-zero slices are equivalent, so rows
// predating the field match rows that report zeros.
func (c Counters) Equal(o Counters) bool {
	if c.Ops != o.Ops || c.Errs != o.Errs ||
		c.PacketsDelivered != o.PacketsDelivered || c.PacketsDropped != o.PacketsDropped {
		return false
	}
	n := len(c.PerServerOps)
	if len(o.PerServerOps) > n {
		n = len(o.PerServerOps)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(c.PerServerOps) {
			a = c.PerServerOps[i]
		}
		if i < len(o.PerServerOps) {
			b = o.PerServerOps[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// IsZero reports an all-zero counter set (a row with no tallied runs).
func (c Counters) IsZero() bool {
	return c.Equal(Counters{})
}

// String renders the counters compactly for table footers and logs.
func (c Counters) String() string {
	return fmt.Sprintf("ops=%d errs=%d pkts=%d dropped=%d",
		c.Ops, c.Errs, c.PacketsDelivered, c.PacketsDropped)
}

// HistCap bounds the samples a Hist retains. Below the cap every sample is
// kept and percentiles are exact; beyond it a deterministic reservoir
// (Algorithm R driven by a fixed-seed LCG — no process randomness, so two
// same-seed runs retain identical samples) keeps a uniform subset, while
// N, Mean and the sum stay exact. 64Ki float64s is 512KiB per histogram —
// what lets the 10⁶-session scale figure record per-op latencies without
// O(ops) memory.
const HistCap = 65536

// Hist is a latency recorder: exact counts and mean always, exact
// percentiles up to HistCap samples, reservoir-estimated beyond.
type Hist struct {
	samples []float64
	sum     float64
	n       uint64
	lcg     uint64
	sorted  bool
}

// Add records one sample.
func (h *Hist) Add(v float64) {
	h.sum += v
	h.addSample(v)
}

// addSample inserts into the bounded reservoir and bumps n, leaving sum to
// the caller (Merge re-feeds retained samples whose sum is already folded).
func (h *Hist) addSample(v float64) {
	h.n++
	if len(h.samples) < HistCap {
		h.samples = append(h.samples, v)
		h.sorted = false
		return
	}
	// Algorithm R: replace a uniformly chosen slot with probability cap/n.
	h.lcg = h.lcg*6364136223846793005 + 1442695040888963407
	if j := h.lcg % h.n; j < HistCap {
		h.samples[j] = v
		h.sorted = false
	}
}

// N returns the exact sample count (including reservoir-discarded samples).
func (h *Hist) N() int { return int(h.n) }

// Retained returns how many samples the reservoir currently holds.
func (h *Hist) Retained() int { return len(h.samples) }

// Mean returns the exact average, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile returns the q-quantile (q in [0,1]) by nearest-rank over the
// retained samples (exact below HistCap).
func (h *Hist) Percentile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	i := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(h.samples) {
		i = len(h.samples) - 1
	}
	return h.samples[i]
}

// Max returns the largest retained sample.
func (h *Hist) Max() float64 { return h.Percentile(1) }

// Merge folds another histogram into this one: retained samples feed the
// reservoir; count and sum stay exact even when o itself was capped.
func (h *Hist) Merge(o *Hist) {
	for _, v := range o.samples {
		h.addSample(v)
	}
	// addSample counted the retained samples; account for the ones o's own
	// reservoir discarded so N stays exact, and fold the exact sum.
	h.n += o.n - uint64(len(o.samples))
	h.sum += o.sum
}

// Summary renders mean/p50/p90/p99 in microseconds for latency histograms
// holding nanosecond samples.
func (h *Hist) Summary() string {
	const us = 1000.0
	return fmt.Sprintf("mean=%.1fµs p50=%.1fµs p90=%.1fµs p99=%.1fµs (n=%d)",
		h.Mean()/us, h.Percentile(0.50)/us, h.Percentile(0.90)/us, h.Percentile(0.99)/us, h.N())
}
