package stats

import "testing"

func TestAllocDelta(t *testing.T) {
	before := ReadMem()
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	bytes, allocs := ReadMem().AllocDelta(before)
	if bytes < 64*4096 {
		t.Fatalf("AllocDelta bytes = %d, want >= %d", bytes, 64*4096)
	}
	if allocs < 64 {
		t.Fatalf("AllocDelta allocs = %d, want >= 64", allocs)
	}
	_ = sink
}

func TestAllocDeltaMonotonicAcrossGC(t *testing.T) {
	// TotalAlloc/Mallocs are cumulative, so a later snapshot never charges
	// negatively even if a collection ran in between.
	a := ReadMem()
	b := ReadMem()
	bytes, allocs := b.AllocDelta(a)
	if bytes > 1<<30 || allocs > 1<<20 {
		t.Fatalf("implausible idle delta: bytes=%d allocs=%d (underflow?)", bytes, allocs)
	}
}

func TestPerOp(t *testing.T) {
	if got := PerOp(100, 0); got != 0 {
		t.Fatalf("PerOp(100, 0) = %v, want 0", got)
	}
	if got := PerOp(100, 8); got != 12.5 {
		t.Fatalf("PerOp(100, 8) = %v, want 12.5", got)
	}
}
