package stats

import "runtime"

// MemSnapshot is a point-in-time allocator reading used to charge memory to
// a phase of a run. TotalAlloc and Mallocs are cumulative and monotonic, so
// deltas between two snapshots are meaningful even across garbage
// collections; HeapAlloc is the live-heap size for footprint measurements
// (take it after a forced GC for a stable reading).
type MemSnapshot struct {
	TotalAlloc uint64
	Mallocs    uint64
	HeapAlloc  uint64
}

// ReadMem captures the current allocator state.
func ReadMem() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{TotalAlloc: ms.TotalAlloc, Mallocs: ms.Mallocs, HeapAlloc: ms.HeapAlloc}
}

// AllocDelta returns the bytes and allocation count charged since the
// earlier snapshot.
func (m MemSnapshot) AllocDelta(since MemSnapshot) (bytes, allocs uint64) {
	return m.TotalAlloc - since.TotalAlloc, m.Mallocs - since.Mallocs
}

// PerOp divides a total by an operation count, returning 0 for an idle run.
func PerOp(total, ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(total) / float64(ops)
}
