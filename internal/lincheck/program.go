package lincheck

import (
	"fmt"
	"math/rand"
	"sort"

	"switchfs/internal/core"
	"switchfs/internal/workload"
)

// Program is a deterministic multi-client operation schedule: Ops[c] is
// client c's sequential op list. All clients draw from one small shared path
// pool, so creates, deletes, renames and reads collide on the same names —
// the workload-mix idea of internal/workload, compressed until every
// interleaving is interesting.
type Program struct {
	Ops [][]Op
	// Paths is the sorted distinct path universe (the audit read set).
	Paths []string
}

// opWeight mirrors a mix entry: an op kind and its draw weight.
type opWeight struct {
	kind   core.Op
	weight int
}

// programMix is the adversarial op mix: mutation-heavy, with every two-path
// and directory op represented (PanguMix-style shape, compressed onto a tiny
// namespace).
var programMix = []opWeight{
	{core.OpCreate, 16},
	{core.OpMkdir, 14},
	{core.OpDelete, 10},
	{core.OpRmdir, 8},
	{core.OpStat, 8},
	{core.OpOpen, 3},
	{core.OpClose, 2},
	{core.OpChmod, 6},
	{core.OpStatDir, 5},
	{core.OpReadDir, 7},
	{core.OpRename, 12},
	{core.OpLink, 7},
}

// chmodPerms is the perm pool for chmod draws (create/mkdir use the server
// defaults so sequential systems with and without create-perm plumbing stay
// comparable).
var chmodPerms = []core.Perm{0o600, 0o640, 0o700, 0o755}

// GenProgram builds the deterministic program for a seed: `clients`
// sequential lists of `opsPerClient` ops over a pool of ~10 colliding paths
// up to three components deep. The same seed always yields the same program.
func GenProgram(seed int64, clients, opsPerClient int) Program {
	rnd := rand.New(rand.NewSource(seed*0x9E3779B9 + 1))

	// Path pool: two root names, each with nested children — collisions by
	// construction, nesting so resolution errors (ENOTDIR/ENOENT on
	// intermediate components) and directory renames are reachable.
	pool := []string{
		"/a", "/b",
		"/a/x", "/a/y", "/b/x",
		"/a/x/t", "/a/x/u", "/b/x/t",
	}
	// Two seed-dependent extras keep different seeds exploring different
	// shapes without growing the audit set.
	extras := []string{"/c", "/a/z", "/b/y", "/c/x", "/a/y/t", "/b/x/u"}
	for _, i := range rnd.Perm(len(extras))[:2] {
		pool = append(pool, extras[i])
	}

	total := 0
	for _, w := range programMix {
		total += w.weight
	}
	pick := func() core.Op {
		x := rnd.Intn(total)
		for _, w := range programMix {
			if x < w.weight {
				return w.kind
			}
			x -= w.weight
		}
		return core.OpStat
	}
	path := func() string { return pool[rnd.Intn(len(pool))] }

	prog := Program{Ops: make([][]Op, clients)}
	for c := 0; c < clients; c++ {
		ops := make([]Op, opsPerClient)
		for i := range ops {
			op := Op{Kind: pick(), Path: path()}
			switch op.Kind {
			case core.OpRename, core.OpLink:
				op.Path2 = path()
			case core.OpChmod:
				op.Perm = chmodPerms[rnd.Intn(len(chmodPerms))]
			case core.OpStatDir, core.OpReadDir:
				if rnd.Intn(6) == 0 {
					op.Path = "/" // root reads exercise the no-resolution path
				}
			}
			ops[i] = op
		}
		prog.Ops[c] = ops
	}

	seen := map[string]bool{}
	for _, ops := range prog.Ops {
		for _, op := range ops {
			if op.Path != "/" && op.Path != "" {
				seen[op.Path] = true
			}
			if op.Path2 != "" {
				seen[op.Path2] = true
			}
		}
	}
	for p := range seen {
		prog.Paths = append(prog.Paths, p)
	}
	sort.Strings(prog.Paths)
	return prog
}

// MixProgram compiles a PanguMix-shaped sequential program through
// workload.Program — the trace-derived op ratios of the paper's evaluation,
// materialized deterministically over a small namespace. The namespace is
// built through the normal op stream (a mkdir/create prefix), so the same
// list replays identically against the model, SwitchFS, and the baseline
// with no preload side channel. Data accesses are dropped: the content
// plane has its own oracle (the chaos data checker).
func MixProgram(seed int64, n int) []Op {
	ns := workload.MultiDir(2, 4)
	var ops []Op
	for _, d := range ns.Dirs {
		ops = append(ops, Op{Kind: core.OpMkdir, Path: d})
		for i := 0; i < ns.FilesPerDir; i++ {
			ops = append(ops, Op{Kind: core.OpCreate, Path: fmt.Sprintf("%s/f%d", d, i)})
		}
	}
	for _, call := range workload.Program(workload.PanguMix().Gen(ns, false), seed, 1, n)[0] {
		if call.Op == core.OpRead || call.Op == core.OpWrite {
			continue
		}
		op := Op{Kind: call.Op, Path: call.Path, Path2: call.Path2}
		if call.Op == core.OpChmod {
			op.Perm = 0o644 // the mode workload.Apply uses
		}
		ops = append(ops, op)
	}
	return ops
}

// Flatten interleaves the program round-robin into one sequential op list
// (the differential harness executes programs single-client).
func (p Program) Flatten() []Op {
	var out []Op
	for i := 0; ; i++ {
		hit := false
		for _, ops := range p.Ops {
			if i < len(ops) {
				out = append(out, ops[i])
				hit = true
			}
		}
		if !hit {
			return out
		}
	}
}
