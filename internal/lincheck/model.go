package lincheck

import (
	"fmt"
	"sort"
	"strings"

	"switchfs/internal/core"
)

// Model is the pure sequential reference implementation of the fsapi surface
// (plus hard links). It mirrors the observable semantics of the public
// Session API exactly — error sentinels, their precedence, and what each
// read returns — as implemented by internal/server and internal/client:
//
//   - path resolution fails with ErrNotExist for a missing intermediate
//     component and ErrNotDir for a non-directory one, before the target is
//     ever considered (client lookup, §5.2.1);
//   - create/mkdir over any existing name is ErrExist; delete of a directory
//     is ErrIsDir; rmdir of a non-directory is ErrNotDir, of a non-empty
//     directory ErrNotEmpty;
//   - rename checks, in server order: source existence (ErrNotExist), the
//     self-rename no-op, the orphaned-loop guard for directories (ErrLoop),
//     then destination non-existence (ErrExist);
//   - link rejects directories with ErrIsDir and an existing destination
//     with ErrExist; a link is observably an independent reference (chmod on
//     one name never affects the other — servers store per-reference perms);
//   - operations addressing the root itself are ErrInvalid, except
//     statdir/readdir which resolve "/" directly.
//
// Directory Attr.Size is the live entry count, the aggregated value StatDir
// returns after deferred updates apply.
type Model struct {
	root *mnode
	// brokenRename deliberately corrupts rename semantics (destination
	// overwrite instead of ErrExist) for the checker's mutation self-test.
	brokenRename bool
}

// mnode is one namespace object. Files carry only perm; directories carry
// children.
type mnode struct {
	typ  core.FileType
	perm core.Perm
	kids map[string]*mnode
}

// NewModel builds an empty namespace.
func NewModel() *Model {
	return &Model{root: &mnode{typ: core.TypeDir, perm: core.DefaultDirPerm,
		kids: map[string]*mnode{}}}
}

// NewBrokenRenameModel builds a model whose rename semantics are wrong on
// purpose (destination overwrite). The mutation test proves the checker
// catches it with a minimized counterexample.
func NewBrokenRenameModel() *Model {
	m := NewModel()
	m.brokenRename = true
	return m
}

// Clone deep-copies the model (the linearizability search branches).
func (m *Model) Clone() *Model {
	return &Model{root: cloneNode(m.root), brokenRename: m.brokenRename}
}

func cloneNode(n *mnode) *mnode {
	c := &mnode{typ: n.typ, perm: n.perm}
	if n.kids != nil {
		c.kids = make(map[string]*mnode, len(n.kids))
		for name, kid := range n.kids {
			c.kids[name] = cloneNode(kid)
		}
	}
	return c
}

// Key returns a canonical serialization of the namespace, used to memoize
// the linearizability search.
func (m *Model) Key() string {
	var b strings.Builder
	writeKey(&b, m.root)
	return b.String()
}

func writeKey(b *strings.Builder, n *mnode) {
	fmt.Fprintf(b, "%d:%o", n.typ, n.perm)
	if n.typ != core.TypeDir {
		return
	}
	b.WriteByte('{')
	for _, name := range sortedNames(n.kids) {
		b.WriteString(name)
		b.WriteByte('=')
		writeKey(b, n.kids[name])
		b.WriteByte(';')
	}
	b.WriteByte('}')
}

func sortedNames(kids map[string]*mnode) []string {
	names := make([]string, 0, len(kids))
	for name := range kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// walk resolves a path's parent chain. It returns the parent node, the leaf
// name, and the chain of directory nodes walked (root first, parent last) —
// the model twin of the client's ancestor list.
func (m *Model) walk(path string) (*mnode, string, []*mnode, error) {
	comps, err := core.SplitPath(path)
	if err != nil {
		return nil, "", nil, err
	}
	if len(comps) == 0 {
		return nil, "", nil, core.ErrInvalid
	}
	cur := m.root
	chain := []*mnode{cur}
	for _, comp := range comps[:len(comps)-1] {
		kid := cur.kids[comp]
		if kid == nil {
			return nil, "", nil, core.ErrNotExist
		}
		if kid.typ != core.TypeDir {
			return nil, "", nil, core.ErrNotDir
		}
		cur = kid
		chain = append(chain, cur)
	}
	return cur, comps[len(comps)-1], chain, nil
}

// walkDir resolves a whole path to a directory node (statdir/readdir); "/"
// resolves to the root.
func (m *Model) walkDir(path string) (*mnode, error) {
	comps, err := core.SplitPath(path)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return m.root, nil
	}
	parent, name, _, err := m.walk(path)
	if err != nil {
		return nil, err
	}
	kid := parent.kids[name]
	if kid == nil {
		return nil, core.ErrNotExist
	}
	if kid.typ != core.TypeDir {
		return nil, core.ErrNotDir
	}
	return kid, nil
}

func fail(err error) Outcome { return Outcome{Err: err} }

// Apply executes one operation against the model, mutating it on success.
func (m *Model) Apply(op Op) Outcome {
	switch op.Kind {
	case core.OpCreate, core.OpMkdir:
		parent, name, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		if parent.kids[name] != nil {
			return fail(core.ErrExist)
		}
		n := &mnode{typ: core.TypeRegular, perm: op.Perm}
		if op.Kind == core.OpMkdir {
			n.typ = core.TypeDir
			n.kids = map[string]*mnode{}
			if n.perm == 0 {
				n.perm = core.DefaultDirPerm
			}
		} else if n.perm == 0 {
			n.perm = core.DefaultFilePerm
		}
		parent.kids[name] = n
		return Outcome{}

	case core.OpDelete:
		parent, name, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		n := parent.kids[name]
		if n == nil {
			return fail(core.ErrNotExist)
		}
		if n.typ == core.TypeDir {
			return fail(core.ErrIsDir)
		}
		delete(parent.kids, name)
		return Outcome{}

	case core.OpRmdir:
		parent, name, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		n := parent.kids[name]
		if n == nil {
			return fail(core.ErrNotExist)
		}
		if n.typ != core.TypeDir {
			return fail(core.ErrNotDir)
		}
		if len(n.kids) > 0 {
			return fail(core.ErrNotEmpty)
		}
		delete(parent.kids, name)
		return Outcome{}

	case core.OpStat, core.OpOpen, core.OpClose:
		parent, name, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		n := parent.kids[name]
		if n == nil {
			return fail(core.ErrNotExist)
		}
		return Outcome{Attr: m.attrOf(n)}

	case core.OpChmod:
		parent, name, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		n := parent.kids[name]
		if n == nil {
			return fail(core.ErrNotExist)
		}
		n.perm = op.Perm
		return Outcome{Attr: m.attrOf(n)}

	case core.OpStatDir:
		dir, err := m.walkDir(op.Path)
		if err != nil {
			return fail(err)
		}
		return Outcome{Attr: m.attrOf(dir)}

	case core.OpReadDir:
		dir, err := m.walkDir(op.Path)
		if err != nil {
			return fail(err)
		}
		entries := make([]core.DirEntry, 0, len(dir.kids))
		for _, name := range sortedNames(dir.kids) {
			kid := dir.kids[name]
			entries = append(entries, core.DirEntry{Name: name, Type: kid.typ, Perm: kid.perm})
		}
		return Outcome{Attr: m.attrOf(dir), Entries: entries}

	case core.OpRename:
		sp, sname, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		dp, dname, dchain, err := m.walk(op.Path2)
		if err != nil {
			return fail(err)
		}
		src := sp.kids[sname]
		if src == nil {
			return fail(core.ErrNotExist)
		}
		if sp == dp && sname == dname {
			return Outcome{} // rename to itself: no-op
		}
		if src.typ == core.TypeDir {
			// Orphaned-loop guard: the destination's parent chain must not
			// pass through the directory being moved (§5.2).
			for _, anc := range dchain {
				if anc == src {
					return fail(core.ErrLoop)
				}
			}
		}
		if dp.kids[dname] != nil && !m.brokenRename {
			return fail(core.ErrExist)
		}
		delete(sp.kids, sname)
		dp.kids[dname] = src
		return Outcome{}

	case core.OpLink:
		sp, sname, _, err := m.walk(op.Path)
		if err != nil {
			return fail(err)
		}
		dp, dname, _, err := m.walk(op.Path2)
		if err != nil {
			return fail(err)
		}
		src := sp.kids[sname]
		if src == nil {
			return fail(core.ErrNotExist)
		}
		if src.typ == core.TypeDir {
			return fail(core.ErrIsDir)
		}
		if dp.kids[dname] != nil {
			return fail(core.ErrExist)
		}
		// Observably an independent reference: same type and current perm,
		// diverging freely afterwards (servers store per-reference perms).
		dp.kids[dname] = &mnode{typ: src.typ, perm: src.perm}
		return Outcome{}

	case core.OpRead, core.OpWrite:
		// Content ops have no namespace effect; the data plane has its own
		// oracle (chaos data checker).
		return Outcome{}

	default:
		return fail(core.ErrInvalid)
	}
}

// attrOf projects the observable attribute fields. Nlink mirrors the
// servers' reference inodes (always 1 for files, 2 for directories).
func (m *Model) attrOf(n *mnode) core.Attr {
	a := core.Attr{Type: n.typ, Perm: n.perm, Nlink: 1}
	if n.typ == core.TypeDir {
		a.Nlink = 2
		a.Size = int64(len(n.kids))
	}
	return a
}

// Tree renders the namespace canonically for final-state diffing: one line
// per object, sorted by path.
func (m *Model) Tree(withPerms bool) string {
	var b strings.Builder
	dumpTree(&b, m.root, "", withPerms)
	return b.String()
}

func dumpTree(b *strings.Builder, n *mnode, path string, withPerms bool) {
	if path == "" {
		fmt.Fprintf(b, "/ dir size=%d\n", len(n.kids))
	}
	for _, name := range sortedNames(n.kids) {
		kid := n.kids[name]
		p := path + "/" + name
		if kid.typ == core.TypeDir {
			fmt.Fprintf(b, "%s dir size=%d", p, len(kid.kids))
		} else {
			fmt.Fprintf(b, "%s %s", p, kid.typ)
		}
		if withPerms {
			fmt.Fprintf(b, " perm=%#o", kid.perm)
		}
		b.WriteByte('\n')
		if kid.typ == core.TypeDir {
			dumpTree(b, kid, p, withPerms)
		}
	}
}
