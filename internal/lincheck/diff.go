package lincheck

import (
	"fmt"
	"strings"

	"switchfs/internal/baseline"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
)

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	// Ops is the number of program operations executed on each system.
	Ops int
	// Divergences lists per-op result mismatches and final-tree mismatches
	// (empty on agreement). Capped; Truncated reports whether more existed.
	Divergences []string
	Truncated   bool
	// Packets sums delivered packets over both system runs (figure
	// counters).
	Packets uint64
}

// Failed reports whether any system disagreed.
func (d *DiffReport) Failed() bool { return len(d.Divergences) > 0 }

const maxDivergences = 12

func (d *DiffReport) divergef(format string, args ...any) {
	if len(d.Divergences) >= maxDivergences {
		d.Truncated = true
		return
	}
	d.Divergences = append(d.Divergences, fmt.Sprintf(format, args...))
}

// applyFS executes one op through the shared fsapi surface (no perm on
// create/mkdir — both systems take their defaults, as the generator
// guarantees).
func applyFS(p *env.Proc, fs fsapi.FS, op Op) Outcome {
	var out Outcome
	switch op.Kind {
	case core.OpCreate:
		out.Err = fs.Create(p, op.Path)
	case core.OpMkdir:
		out.Err = fs.Mkdir(p, op.Path)
	case core.OpDelete:
		out.Err = fs.Delete(p, op.Path)
	case core.OpRmdir:
		out.Err = fs.Rmdir(p, op.Path)
	case core.OpStat:
		out.Attr, out.Err = fs.Stat(p, op.Path)
	case core.OpOpen:
		out.Attr, out.Err = fs.Open(p, op.Path)
	case core.OpClose:
		out.Err = fs.Close(p, op.Path)
	case core.OpChmod:
		out.Err = fs.Chmod(p, op.Path, op.Perm)
	case core.OpStatDir:
		out.Attr, out.Err = fs.StatDir(p, op.Path)
	case core.OpReadDir:
		var es []core.DirEntry
		es, out.Err = fs.ReadDir(p, op.Path)
		if out.Err == nil {
			out.Entries = sortEntries(es)
		}
	case core.OpRename:
		out.Err = fs.Rename(p, op.Path, op.Path2)
	case core.OpLink:
		out.Err = fs.Link(p, op.Path, op.Path2)
	default:
		out.Err = core.ErrInvalid
	}
	return out
}

// diffOutcome compares two observations of the same op; strict additionally
// compares permissions (the baseline stores none — relaxed mode checks the
// shape every system shares: errors, types, entry lists, directory sizes).
func diffOutcome(op Op, a, b Outcome, strict bool) string {
	if !sameErr(a.Err, b.Err) {
		return fmt.Sprintf("error %v vs %v", a.Err, b.Err)
	}
	if a.Err != nil {
		return ""
	}
	switch op.Kind {
	case core.OpStat, core.OpOpen:
		if a.Attr.Type != b.Attr.Type {
			return fmt.Sprintf("type %s vs %s", a.Attr.Type, b.Attr.Type)
		}
		if strict && a.Attr.Perm != b.Attr.Perm {
			return fmt.Sprintf("perm %#o vs %#o", a.Attr.Perm, b.Attr.Perm)
		}
	case core.OpStatDir:
		if a.Attr.Size != b.Attr.Size {
			return fmt.Sprintf("size %d vs %d", a.Attr.Size, b.Attr.Size)
		}
		if strict && a.Attr.Perm != b.Attr.Perm {
			return fmt.Sprintf("perm %#o vs %#o", a.Attr.Perm, b.Attr.Perm)
		}
	case core.OpReadDir:
		sa, sb := entryNames(a.Entries), entryNames(b.Entries)
		if sa != sb {
			return fmt.Sprintf("entries [%s] vs [%s]", sa, sb)
		}
	}
	return ""
}

func entryNames(es []core.DirEntry) string {
	parts := make([]string, len(es))
	for i, e := range sortEntries(es) {
		parts[i] = fmt.Sprintf("%s(%s)", e.Name, e.Type)
	}
	return strings.Join(parts, " ")
}

// RunDiff executes one deterministic sequential program against the Model,
// SwitchFS, and the baseline (Emulated-InfiniFS), diffing every per-op
// result and the final namespace trees. SwitchFS is held to the model with
// permissions; the baseline to the shared shape.
func RunDiff(seed int64, ops []Op) *DiffReport {
	return DiffWithModel(NewModel(), seed, ops)
}

// DiffWithModel is RunDiff with a caller-supplied model — the mutation tests
// pass a deliberately-broken one to prove divergence detection works.
func DiffWithModel(m *Model, seed int64, ops []Op) *DiffReport {
	rep := &DiffReport{Ops: len(ops)}

	// Model.
	mouts := make([]Outcome, len(ops))
	for i, op := range ops {
		mouts[i] = m.Apply(op)
	}

	// SwitchFS.
	souts, stree, spkts, sok := runSequential(seed, ops, func(sim *env.Sim) fsapi.System {
		return cluster.New(sim, cluster.Options{
			Servers: 4, Clients: 1, Switches: 1,
			SwitchIndexBits: 12, Costs: env.DefaultCosts(),
		})
	}, true)
	rep.Packets += spkts
	if !sok {
		rep.divergef("SwitchFS: program wedged before completion")
		return rep
	}

	// Baseline.
	bouts, btree, bpkts, bok := runSequential(seed, ops, func(sim *env.Sim) fsapi.System {
		return baseline.New(sim, baseline.Options{
			Mode: baseline.InfiniFS, Servers: 4, Clients: 1,
			Costs: env.DefaultCosts(),
		})
	}, false)
	rep.Packets += bpkts
	if !bok {
		rep.divergef("baseline: program wedged before completion")
		return rep
	}

	for i, op := range ops {
		if d := diffOutcome(op, mouts[i], souts[i], true); d != "" {
			rep.divergef("op %d %s: model vs SwitchFS: %s (model %s, SwitchFS %s)",
				i, op, d, mouts[i], souts[i])
		}
		if d := diffOutcome(op, mouts[i], bouts[i], false); d != "" {
			rep.divergef("op %d %s: model vs baseline: %s (model %s, baseline %s)",
				i, op, d, mouts[i], bouts[i])
		}
	}
	if want := m.Tree(true); want != stree {
		rep.divergef("final tree: model vs SwitchFS:\n--- model ---\n%s--- SwitchFS ---\n%s",
			want, stree)
	}
	if want := m.Tree(false); want != btree {
		rep.divergef("final tree: model vs baseline:\n--- model ---\n%s--- baseline ---\n%s",
			want, btree)
	}
	return rep
}

// runSequential executes the program single-client on a fresh deployment
// and walks the final tree.
func runSequential(seed int64, ops []Op, deploy func(*env.Sim) fsapi.System,
	withPerms bool) (outs []Outcome, tree string, packets uint64, ok bool) {

	sim := env.NewSim(seed)
	defer sim.Shutdown()
	sys := deploy(sim)
	fs := sys.ClientFS(0)
	outs = make([]Outcome, len(ops))
	type spawner interface {
		SpawnClient(i int, fn func(p *env.Proc))
	}
	sys.(spawner).SpawnClient(0, func(p *env.Proc) {
		for i, op := range ops {
			outs[i] = applyFS(p, fs, op)
		}
		tree = walkTree(p, fs, withPerms)
		ok = true
	})
	sim.Run()
	return outs, tree, sim.Delivered, ok
}

// walkTree renders a deployed system's namespace in Model.Tree's canonical
// format: recursive readdir from the root, statdir for directory sizes, stat
// for file permissions (strict mode).
func walkTree(p *env.Proc, fs fsapi.FS, withPerms bool) string {
	var b strings.Builder
	rootAttr, err := fs.StatDir(p, "/")
	if err != nil {
		return fmt.Sprintf("/ !statdir: %v\n", err)
	}
	fmt.Fprintf(&b, "/ dir size=%d\n", rootAttr.Size)
	var rec func(dir string)
	rec = func(dir string) {
		arg := dir
		if arg == "" {
			arg = "/"
		}
		es, err := fs.ReadDir(p, arg)
		if err != nil {
			fmt.Fprintf(&b, "%s !readdir: %v\n", arg, err)
			return
		}
		for _, e := range sortEntries(es) {
			path := dir + "/" + e.Name
			if e.Type == core.TypeDir {
				a, err := fs.StatDir(p, path)
				if err != nil {
					fmt.Fprintf(&b, "%s !statdir: %v\n", path, err)
					continue
				}
				fmt.Fprintf(&b, "%s dir size=%d", path, a.Size)
				if withPerms {
					fmt.Fprintf(&b, " perm=%#o", a.Perm)
				}
				b.WriteByte('\n')
				rec(path)
			} else {
				fmt.Fprintf(&b, "%s %s", path, e.Type)
				if withPerms {
					a, err := fs.Stat(p, path)
					if err != nil {
						fmt.Fprintf(&b, " !stat: %v\n", err)
						continue
					}
					fmt.Fprintf(&b, " perm=%#o", a.Perm)
				}
				b.WriteByte('\n')
			}
		}
	}
	rec("")
	return b.String()
}
