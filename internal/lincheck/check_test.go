package lincheck

import (
	"testing"

	"switchfs/internal/core"
)

// ev builds a completed event.
func ev(client int, o Op, out Outcome, call, ret int64) Event {
	return Event{Client: client, Op: o, Out: out, Call: call, Ret: ret}
}

func okOut() Outcome                { return Outcome{} }
func errOut(sentinel error) Outcome { return Outcome{Err: sentinel} }

func TestCheckSequentialLegal(t *testing.T) {
	h := History{
		ev(0, op(core.OpMkdir, "/d"), okOut(), 0, 10),
		ev(0, op(core.OpCreate, "/d/f"), okOut(), 20, 30),
		ev(0, op(core.OpStat, "/d/f"),
			Outcome{Attr: core.Attr{Type: core.TypeRegular, Perm: core.DefaultFilePerm, Nlink: 1}}, 40, 50),
		ev(0, op(core.OpCreate, "/d/f"), errOut(core.ErrExist), 60, 70),
	}
	if r := Check(h); !r.Ok || r.Undecided {
		t.Fatalf("legal sequential history rejected: %+v", r)
	}
}

func TestCheckLostWrite(t *testing.T) {
	// A create acked before a stat was invoked; the stat misses it. No
	// linearization explains that.
	h := History{
		ev(0, op(core.OpCreate, "/f"), okOut(), 0, 10),
		ev(1, op(core.OpStat, "/f"), errOut(core.ErrNotExist), 20, 30),
	}
	if r := Check(h); r.Ok {
		t.Fatal("lost acknowledged write not detected")
	}
}

func TestCheckResurrection(t *testing.T) {
	h := History{
		ev(0, op(core.OpCreate, "/f"), okOut(), 0, 10),
		ev(0, op(core.OpDelete, "/f"), okOut(), 20, 30),
		ev(1, op(core.OpReadDir, "/"),
			Outcome{Entries: []core.DirEntry{{Name: "f", Type: core.TypeRegular}}}, 40, 50),
	}
	if r := Check(h); r.Ok {
		t.Fatal("resurrection in readdir not detected")
	}
}

func TestCheckConcurrentReorderingAllowed(t *testing.T) {
	// Two concurrent ops may linearize in either order: the stat overlapping
	// the create may legally miss it.
	h := History{
		ev(0, op(core.OpCreate, "/f"), okOut(), 0, 30),
		ev(1, op(core.OpStat, "/f"), errOut(core.ErrNotExist), 10, 20),
	}
	if r := Check(h); !r.Ok {
		t.Fatal("legal concurrent reordering rejected")
	}
}

func TestCheckTimeoutMayApplyLateOrNever(t *testing.T) {
	// A timed-out create may apply after later reads (ghost execution)...
	timedOut := Event{Client: 0, Op: op(core.OpCreate, "/f"),
		Out: errOut(core.ErrTimeout), Call: 0, Ret: 10, TimedOut: true}
	h := History{
		timedOut,
		ev(1, op(core.OpStat, "/f"), errOut(core.ErrNotExist), 20, 30),
		ev(1, op(core.OpStat, "/f"),
			Outcome{Attr: core.Attr{Type: core.TypeRegular, Perm: core.DefaultFilePerm}}, 40, 50),
	}
	if r := Check(h); !r.Ok {
		t.Fatal("late ghost application rejected")
	}
	// ...or never apply at all.
	h2 := History{
		timedOut,
		ev(1, op(core.OpStat, "/f"), errOut(core.ErrNotExist), 20, 30),
	}
	if r := Check(h2); !r.Ok {
		t.Fatal("never-applied timeout rejected")
	}
	// ...or even apply twice across an intervening acknowledged delete (a
	// retransmission re-executing after a dedup-cache loss).
	h3 := History{
		timedOut,
		ev(1, op(core.OpStat, "/f"),
			Outcome{Attr: core.Attr{Type: core.TypeRegular, Perm: core.DefaultFilePerm}}, 20, 30),
		ev(1, op(core.OpDelete, "/f"), okOut(), 40, 50),
		ev(1, op(core.OpStat, "/f"),
			Outcome{Attr: core.Attr{Type: core.TypeRegular, Perm: core.DefaultFilePerm}}, 60, 70),
	}
	if r := Check(h3); !r.Ok {
		t.Fatal("double ghost application rejected")
	}
}

func TestCheckResentOwnEffect(t *testing.T) {
	// A resent create reporting EEXIST with nobody else around must be its
	// own earlier execution: accepted only because of the resent flag.
	resent := Event{Client: 0, Op: op(core.OpCreate, "/f"),
		Out: errOut(core.ErrExist), Call: 0, Ret: 10, Resent: true}
	h := History{
		resent,
		ev(1, op(core.OpStat, "/f"),
			Outcome{Attr: core.Attr{Type: core.TypeRegular, Perm: core.DefaultFilePerm}}, 20, 30),
	}
	if r := Check(h); !r.Ok {
		t.Fatal("resent create's own-effect EEXIST rejected")
	}
	// Without the flag the same history is a genuine violation.
	plain := resent
	plain.Resent = false
	h[0] = plain
	if r := Check(h); r.Ok {
		t.Fatal("unexplained EEXIST accepted without the resent flag")
	}
}

// TestCheckSameInstantProgramOrder pins the per-client program-order gate:
// back-to-back operations of one client can share a virtual-time instant
// (Ret(prev) == Call(next)), and interval order alone would read them as
// concurrent — letting a lost acknowledged write linearize its reader
// before its writer.
func TestCheckSameInstantProgramOrder(t *testing.T) {
	h := History{
		ev(0, op(core.OpCreate, "/f"), okOut(), 0, 10),
		ev(0, op(core.OpStat, "/f"), errOut(core.ErrNotExist), 10, 20), // Call == prev Ret
	}
	if r := Check(h); r.Ok {
		t.Fatal("same-client reorder across a shared instant accepted (program order lost)")
	}
	// Different clients at the same instants ARE concurrent: legal.
	h[1].Client = 1
	if r := Check(h); !r.Ok {
		t.Fatal("cross-client concurrency at a shared instant rejected")
	}
}

func TestCheckStatDirSizeBounds(t *testing.T) {
	h := History{
		ev(0, op(core.OpMkdir, "/d"), okOut(), 0, 10),
		ev(0, op(core.OpCreate, "/d/f"), okOut(), 20, 30),
		ev(1, op(core.OpStatDir, "/d"),
			Outcome{Attr: core.Attr{Type: core.TypeDir, Perm: core.DefaultDirPerm, Size: 2}}, 40, 50),
	}
	if r := Check(h); r.Ok {
		t.Fatal("impossible directory size accepted")
	}
}

// TestMutationBrokenRename proves end to end that the checker and the
// differential harness detect deliberately-broken rename semantics and
// minimize the counterexample (the ISSUE's seeded mutation requirement).
func TestMutationBrokenRename(t *testing.T) {
	// Hand history: a rename over an existing destination reported EEXIST —
	// legal for the real semantics, impossible for the broken model.
	h := History{
		ev(0, op(core.OpCreate, "/a"), okOut(), 0, 10),
		ev(1, op(core.OpCreate, "/b"), okOut(), 0, 12),
		ev(0, op2(core.OpRename, "/a", "/b"), errOut(core.ErrExist), 20, 30),
	}
	if r := Check(h); !r.Ok {
		t.Fatal("correct model rejected a legal rename history")
	}
	broken := func(sub History) CheckResult { return CheckAgainst(NewBrokenRenameModel(), sub) }
	if r := broken(h); r.Ok {
		t.Fatal("broken rename model not detected")
	}
	min := MinimizeAgainst(broken, h)
	if len(min) == 0 || len(min) > 2 {
		t.Fatalf("counterexample not minimized: %d events\n%s", len(min), min)
	}
	found := false
	for _, e := range min {
		if e.Op.Kind == core.OpRename {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimized counterexample lost the rename:\n%s", min)
	}

	// Against the real system: some seed's differential program must expose
	// the broken model too.
	detected := false
	for seed := int64(1); seed <= 16 && !detected; seed++ {
		prog := GenProgram(seed, 3, 40)
		detected = DiffWithModel(NewBrokenRenameModel(), seed, prog.Flatten()).Failed()
	}
	if !detected {
		t.Fatal("differential harness never exposed the broken rename model over 16 seeds")
	}
}

func TestMinimizePreservesViolation(t *testing.T) {
	// Pad a lost-write violation with unrelated noise; Minimize must strip
	// the noise and keep a failing core.
	h := History{
		ev(0, op(core.OpMkdir, "/d"), okOut(), 0, 5),
		ev(0, op(core.OpCreate, "/d/x"), okOut(), 10, 15),
		ev(0, op(core.OpCreate, "/f"), okOut(), 20, 25),
		ev(1, op(core.OpStatDir, "/d"),
			Outcome{Attr: core.Attr{Type: core.TypeDir, Perm: core.DefaultDirPerm, Size: 1}}, 30, 35),
		ev(1, op(core.OpStat, "/f"), errOut(core.ErrNotExist), 40, 45),
	}
	if r := Check(h); r.Ok {
		t.Fatal("padded history unexpectedly linearizable")
	}
	min := Minimize(h)
	if r := Check(min); r.Ok {
		t.Fatal("minimized history no longer fails")
	}
	// Minimization may legally shrink past the "intended" core to any
	// smaller failing subset (dropping a causal write turns its read into
	// the violation); what matters is that the result is tiny and fails.
	if len(min) > 2 {
		t.Fatalf("minimization left %d events:\n%s", len(min), min)
	}
}

func TestHistoryOverLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history did not panic")
		}
	}()
	h := make(History, maxHistory+1)
	for i := range h {
		h[i] = ev(0, op(core.OpStat, "/x"), errOut(core.ErrNotExist), int64(i*10), int64(i*10+5))
	}
	Check(h)
}
