package lincheck

import (
	"errors"
	"testing"

	"switchfs/internal/core"
)

// mk shorthand for ops in tests.
func op(kind core.Op, path string) Op                { return Op{Kind: kind, Path: path} }
func op2(kind core.Op, src, dst string) Op           { return Op{Kind: kind, Path: src, Path2: dst} }
func opPerm(kind core.Op, p string, pm core.Perm) Op { return Op{Kind: kind, Path: p, Perm: pm} }

func wantErr(t *testing.T, out Outcome, sentinel error) {
	t.Helper()
	if !errors.Is(out.Err, sentinel) {
		t.Fatalf("got %v, want %v", out.Err, sentinel)
	}
}

func wantOK(t *testing.T, out Outcome) {
	t.Helper()
	if out.Err != nil {
		t.Fatalf("unexpected error %v", out.Err)
	}
}

func TestModelErrorSemantics(t *testing.T) {
	m := NewModel()
	wantOK(t, m.Apply(op(core.OpMkdir, "/d")))
	wantErr(t, m.Apply(op(core.OpMkdir, "/d")), core.ErrExist)
	wantOK(t, m.Apply(op(core.OpCreate, "/d/f")))
	wantErr(t, m.Apply(op(core.OpCreate, "/d/f")), core.ErrExist)
	wantErr(t, m.Apply(op(core.OpCreate, "/missing/f")), core.ErrNotExist)
	wantErr(t, m.Apply(op(core.OpCreate, "/d/f/x")), core.ErrNotDir)
	wantErr(t, m.Apply(op(core.OpDelete, "/d")), core.ErrIsDir)
	wantErr(t, m.Apply(op(core.OpRmdir, "/d/f")), core.ErrNotDir)
	wantErr(t, m.Apply(op(core.OpRmdir, "/d")), core.ErrNotEmpty)
	wantErr(t, m.Apply(op(core.OpRmdir, "/nope")), core.ErrNotExist)
	wantErr(t, m.Apply(op(core.OpStat, "/nope")), core.ErrNotExist)
	wantErr(t, m.Apply(op(core.OpCreate, "/")), core.ErrInvalid)
	wantErr(t, m.Apply(op(core.OpStatDir, "/d/f")), core.ErrNotDir)

	// Root reads work without resolution.
	out := m.Apply(op(core.OpReadDir, "/"))
	wantOK(t, out)
	if len(out.Entries) != 1 || out.Entries[0].Name != "d" {
		t.Fatalf("root entries %v", out.Entries)
	}
	out = m.Apply(op(core.OpStatDir, "/d"))
	wantOK(t, out)
	if out.Attr.Size != 1 {
		t.Fatalf("statdir size %d, want 1", out.Attr.Size)
	}

	wantOK(t, m.Apply(op(core.OpDelete, "/d/f")))
	wantOK(t, m.Apply(op(core.OpRmdir, "/d")))
}

func TestModelRenameSemantics(t *testing.T) {
	m := NewModel()
	wantOK(t, m.Apply(op(core.OpMkdir, "/d")))
	wantOK(t, m.Apply(op(core.OpCreate, "/d/f")))
	wantOK(t, m.Apply(op(core.OpCreate, "/g")))

	// Missing source, even onto itself.
	wantErr(t, m.Apply(op2(core.OpRename, "/nope", "/x")), core.ErrNotExist)
	wantErr(t, m.Apply(op2(core.OpRename, "/nope", "/nope")), core.ErrNotExist)
	// Self-rename of an existing file is a no-op.
	wantOK(t, m.Apply(op2(core.OpRename, "/g", "/g")))
	// Existing destination.
	wantErr(t, m.Apply(op2(core.OpRename, "/g", "/d/f")), core.ErrExist)
	wantErr(t, m.Apply(op2(core.OpRename, "/g", "/d")), core.ErrExist)
	// Directory into its own subtree.
	wantErr(t, m.Apply(op2(core.OpRename, "/d", "/d/sub")), core.ErrLoop)
	// Destination parent missing / not a directory.
	wantErr(t, m.Apply(op2(core.OpRename, "/g", "/nope/x")), core.ErrNotExist)
	wantErr(t, m.Apply(op2(core.OpRename, "/g", "/d/f/x")), core.ErrNotDir)

	// A directory rename moves its children.
	wantOK(t, m.Apply(op2(core.OpRename, "/d", "/e")))
	wantOK(t, m.Apply(op(core.OpStat, "/e/f")))
	wantErr(t, m.Apply(op(core.OpStat, "/d/f")), core.ErrNotExist)
}

func TestModelLinkSemantics(t *testing.T) {
	m := NewModel()
	wantOK(t, m.Apply(op(core.OpMkdir, "/d")))
	wantOK(t, m.Apply(opPerm(core.OpCreate, "/d/f", 0)))

	wantErr(t, m.Apply(op2(core.OpLink, "/nope", "/l")), core.ErrNotExist)
	wantErr(t, m.Apply(op2(core.OpLink, "/d", "/l")), core.ErrIsDir)
	wantOK(t, m.Apply(op2(core.OpLink, "/d/f", "/l")))
	wantErr(t, m.Apply(op2(core.OpLink, "/d/f", "/l")), core.ErrExist)
	wantErr(t, m.Apply(op2(core.OpLink, "/d/f", "/d/f")), core.ErrExist)

	// References are observably independent: chmod on one name does not
	// affect the other (servers store per-reference perms).
	wantOK(t, m.Apply(opPerm(core.OpChmod, "/l", 0o600)))
	a := m.Apply(op(core.OpStat, "/d/f"))
	wantOK(t, a)
	if a.Attr.Perm != core.DefaultFilePerm {
		t.Fatalf("source perm %#o changed by link chmod", a.Attr.Perm)
	}
	l := m.Apply(op(core.OpStat, "/l"))
	wantOK(t, l)
	if l.Attr.Perm != 0o600 {
		t.Fatalf("link perm %#o, want 0o600", l.Attr.Perm)
	}

	// Deleting one reference leaves the other.
	wantOK(t, m.Apply(op(core.OpDelete, "/d/f")))
	wantOK(t, m.Apply(op(core.OpStat, "/l")))
}

func TestModelCloneIsolation(t *testing.T) {
	m := NewModel()
	wantOK(t, m.Apply(op(core.OpMkdir, "/d")))
	c := m.Clone()
	wantOK(t, c.Apply(op(core.OpCreate, "/d/f")))
	if out := m.Apply(op(core.OpStat, "/d/f")); !errors.Is(out.Err, core.ErrNotExist) {
		t.Fatal("clone mutation leaked into the original")
	}
	if m.Key() == c.Key() {
		t.Fatal("keys of diverged models match")
	}
}
