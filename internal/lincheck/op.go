// Package lincheck checks SwitchFS's full metadata API for linearizability
// and for agreement with the in-repo baseline implementation.
//
// Three pieces compose:
//
//   - Model, a pure sequential reference implementation of the fsapi surface
//     (plus hard links) with the exact error semantics of the public Session
//     API — ErrNotExist/ErrExist/ErrNotDir/ErrIsDir/ErrNotEmpty/ErrInvalid/
//     ErrLoop, in the order the servers check them;
//   - a history recorder that logs each operation's invocation/response
//     interval in virtual time, tolerant of the at-least-once ambiguity of
//     UDP RPC (a timed-out mutation may apply late or never; a retransmitted
//     one may observe its own earlier effect) — the same taint discipline as
//     the chaos checker, in interval form;
//   - Check, a WGL/porcupine-style linearizability search over recorded
//     concurrent histories, with Minimize shrinking any counterexample to a
//     small printable trace.
//
// Programs are generated deterministically from a seed (GenProgram), run
// concurrently against SwitchFS — fault-free or under chaos plans
// (RunConcurrent) — and sequentially against SwitchFS, the baseline, and the
// model at once (RunDiff), diffing per-op results and final namespace trees.
package lincheck

import (
	"fmt"
	"sort"
	"strings"

	"switchfs/internal/core"
	"switchfs/internal/env"
)

// Op is one generated operation.
type Op struct {
	Kind core.Op
	Path string
	// Path2 is the rename/link destination.
	Path2 string
	// Perm parameterizes create/mkdir/chmod (zero means the server default
	// for create/mkdir, and literal zero for chmod, matching the servers).
	Perm core.Perm
}

func (o Op) String() string {
	switch o.Kind {
	case core.OpRename, core.OpLink:
		return fmt.Sprintf("%s %s -> %s", o.Kind, o.Path, o.Path2)
	case core.OpCreate, core.OpMkdir, core.OpChmod:
		return fmt.Sprintf("%s %s %#o", o.Kind, o.Path, o.Perm)
	default:
		return fmt.Sprintf("%s %s", o.Kind, o.Path)
	}
}

// Outcome is an operation's observed (or modeled) result. Only the fields
// meaningful for the op kind are set: Attr for stat/open/close/statdir,
// Entries for readdir.
type Outcome struct {
	Err     error
	Attr    core.Attr
	Entries []core.DirEntry
}

func (o Outcome) String() string {
	if o.Err != nil {
		return o.Err.Error()
	}
	var b strings.Builder
	b.WriteString("ok")
	if o.Attr.Type != 0 {
		fmt.Fprintf(&b, " %s perm=%#o size=%d", o.Attr.Type, o.Attr.Perm, o.Attr.Size)
	}
	if o.Entries != nil {
		names := make([]string, len(o.Entries))
		for i, e := range o.Entries {
			names[i] = fmt.Sprintf("%s(%s)", e.Name, e.Type)
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(names, " "))
	}
	return b.String()
}

// sortEntries canonicalizes a listing (servers scan in key order, which is
// name order, but the model and diff comparisons never rely on it).
func sortEntries(es []core.DirEntry) []core.DirEntry {
	out := append([]core.DirEntry(nil), es...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Event is one completed operation of a concurrent history.
type Event struct {
	// Client identifies the issuing session (audit reads use a fresh id).
	Client int
	Op     Op
	Out    Outcome
	// Call and Ret are the invocation/response instants in virtual time.
	Call, Ret env.Time
	// TimedOut marks an ambiguous operation: the client gave up, but the
	// request (or a retransmission still queued) may execute at any later
	// point — or never. The checker linearizes it anywhere after Call or
	// drops it entirely.
	TimedOut bool
	// Resent marks a retransmitted mutation: if a server crash discarded the
	// RPC dedup cache between tries, the retry re-executed and may have
	// observed the operation's own earlier effect (EEXIST from its own
	// create, ENOENT from its own delete/rename). The checker then accepts
	// the success interpretation too.
	Resent bool
}

func (e Event) String() string {
	who := fmt.Sprintf("c%d", e.Client)
	if e.Client < 0 {
		who = "ghost"
	}
	ret := fmt.Sprintf("%8d", e.Ret)
	flag := ""
	if e.TimedOut {
		ret = "       ∞"
		flag = "  (timed out: may apply late, twice, or never)"
	} else if e.Resent {
		flag = "  (resent)"
	}
	return fmt.Sprintf("%-5s [%8d, %s] %-28s = %s%s", who, e.Call, ret, e.Op, e.Out, flag)
}

// History is a recorded concurrent execution, in completion order.
type History []Event

func (h History) String() string {
	var b strings.Builder
	for i, e := range h {
		fmt.Fprintf(&b, "%3d: %s\n", i, e.String())
	}
	return b.String()
}

// Recorder accumulates events. Under the simulator exactly one process runs
// at a time, so appends are totally ordered and deterministic.
type Recorder struct {
	events History
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one completed operation.
func (r *Recorder) Record(ev Event) { r.events = append(r.events, ev) }

// History returns the recorded events.
func (r *Recorder) History() History { return r.events }

// errno compresses an error to a comparable code. Timeouts must be filtered
// by the caller first (core.ErrnoOf folds unknown errors to ErrnoInvalid).
func errno(err error) core.Errno { return core.ErrnoOf(err) }

// sameErr reports whether two non-timeout errors are the same sentinel.
func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return errno(a) == errno(b)
}
