package lincheck

// Minimize shrinks a non-linearizable history to a small subhistory that
// still fails the check: repeatedly drop events whose removal preserves the
// violation, to fixpoint. Any divergence report prints the minimized trace,
// so the failing interleaving is readable instead of buried in a full run.
func Minimize(h History) History {
	return MinimizeAgainst(func(sub History) CheckResult { return Check(sub) }, h)
}

// MinimizeAgainst is Minimize with a caller-supplied check (seeded or
// deliberately-broken models).
func MinimizeAgainst(check func(History) CheckResult, h History) History {
	cur := append(History(nil), h...)
	// Coarse passes first (drop halves, then quarters, ...), then single
	// events — ddmin-shaped, with the greedy tail guaranteeing a 1-minimal
	// result.
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := append(append(History(nil), cur[:start]...), cur[start+chunk:]...)
			if r := check(cand); !r.Ok && !r.Undecided {
				cur = cand
				continue // same start now covers the next chunk
			}
			start += chunk
		}
	}
	return cur
}
