package lincheck

import (
	"errors"
	"fmt"

	"switchfs/internal/chaos"
	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// Geometry is the deployment the concurrent runners stand up (the plan
// catalog is authored against it).
var Geometry = chaos.Geometry{Servers: 4, Clients: 3, Switches: 1}

// Plans is the fault catalog of a lincheck sweep: the §5.4 recovery stories
// reused from chaos.BuiltinPlans (including reconfig-crash — live bulk
// migration racing a server crash), a deliberate crash of the rename/link
// coordinator (server 0 — the scenario that exercises the 2PC termination
// protocol), a rebalance-racing-crash plan (balancer passes migrating
// groups through gate-and-drain while a server fail-stops — no op may be
// lost or double-applied across a migration), and the seed's random plan.
func Plans(seed int64) []chaos.Plan {
	var plans []chaos.Plan
	for _, name := range []string{"server-crash", "switch-reboot", "flaky-links", "reconfig-crash"} {
		p, ok := chaos.BuiltinPlan(Geometry, name)
		if !ok {
			panic("lincheck: missing builtin plan " + name)
		}
		plans = append(plans, p)
	}
	ms := env.Millisecond
	plans = append(plans, chaos.Plan{
		Name:    "coordinator-crash",
		Desc:    "fail-stop the rename/link coordinator mid-plan (2PC termination)",
		Horizon: 8 * ms,
		Events: []chaos.Event{
			chaos.CrashServer(1*ms, 0),
			chaos.RecoverServer(4*ms, 0),
		},
	})
	plans = append(plans, chaos.Plan{
		Name:    "rebalance-crash",
		Desc:    "balancer passes migrating groups while a server fail-stops (§5.5)",
		Horizon: 10 * ms,
		Events: []chaos.Event{
			chaos.RebalancePass(1 * ms),
			chaos.RebalancePass(2 * ms),
			chaos.CrashServer(2500*env.Microsecond, 1),
			chaos.RebalancePass(4 * ms),
			chaos.RecoverServer(6*ms, 1),
			chaos.RebalancePass(7 * ms),
		},
	})
	return append(plans, chaos.RandomPlan(seed, Geometry, 8*ms))
}

// RunResult is a recorded concurrent execution.
type RunResult struct {
	History History
	// Issues are harness-level failures outside the checker: clients whose
	// operations never returned (a wedged protocol path), recoveries that
	// did not complete, unclean plans.
	Issues []string
	// Packets is the run's delivered-packet count (figure counters).
	Packets uint64
}

// ambiguousErr classifies client-visible errors whose effect is unknown:
// the operation (or a retransmission still queued server-side) may land
// late, land twice, or never have executed.
func ambiguousErr(err error) bool {
	return errors.Is(err, core.ErrTimeout) ||
		errors.Is(err, core.ErrUnavailable) ||
		errors.Is(err, core.ErrRetry) ||
		errors.Is(err, core.ErrStaleCache)
}

// applyClient executes one op through the raw client (the session surface
// with resent reporting), returning the observation.
func applyClient(p *env.Proc, cl *client.Client, op Op) (Outcome, bool) {
	var out Outcome
	var resent bool
	switch op.Kind {
	case core.OpCreate:
		resent, out.Err = cl.CreateR(p, op.Path, op.Perm)
	case core.OpMkdir:
		resent, out.Err = cl.MkdirR(p, op.Path, op.Perm)
	case core.OpDelete:
		resent, out.Err = cl.DeleteR(p, op.Path)
	case core.OpRmdir:
		resent, out.Err = cl.RmdirR(p, op.Path)
	case core.OpStat:
		out.Attr, out.Err = cl.Stat(p, op.Path)
	case core.OpOpen:
		out.Attr, _, out.Err = cl.Open(p, op.Path)
	case core.OpClose:
		out.Err = cl.Close(p, op.Path)
	case core.OpChmod:
		resent, out.Err = cl.ChmodR(p, op.Path, op.Perm)
	case core.OpStatDir:
		out.Attr, out.Err = cl.StatDir(p, op.Path)
	case core.OpReadDir:
		var es []core.DirEntry
		es, out.Err = cl.ReadDir(p, op.Path)
		if out.Err == nil {
			out.Entries = sortEntries(es)
		}
	case core.OpRename:
		resent, out.Err = cl.RenameR(p, op.Path, op.Path2)
	case core.OpLink:
		resent, out.Err = cl.LinkR(p, op.Path, op.Path2)
	default:
		out.Err = core.ErrInvalid
	}
	return out, resent
}

// RunConcurrent executes the program's clients concurrently against a fresh
// SwitchFS deployment — fault-free, or across a chaos plan — then heals,
// recovers, and appends a sequential post-run audit (stat + readdir over the
// whole path universe) to the history. Same seed, program and plan always
// produce an identical history.
func RunConcurrent(seed int64, prog Program, plan *chaos.Plan) RunResult {
	sim := env.NewSim(seed)
	defer sim.Shutdown()
	opts := cluster.Options{
		Servers:         4,
		Clients:         len(prog.Ops),
		Switches:        1,
		SwitchIndexBits: 12,
		Costs:           env.DefaultCosts(),
	}
	if plan != nil {
		// Shrink the retry budget so gave-up operations — the ambiguity the
		// checker models — happen inside the plan's horizon.
		opts.RetryTimeout = 500 * env.Microsecond
		opts.ClientMaxRetries = 6
	}
	c := cluster.New(sim, opts)

	var res RunResult
	rec := NewRecorder()
	finished := make([]bool, len(prog.Ops))
	for w := range prog.Ops {
		w := w
		ops := prog.Ops[w]
		cl := c.Client(w)
		var spread env.Duration
		if plan != nil && len(ops) > 0 {
			// Pace the program across the horizon so faults land between
			// (and inside) operations instead of after the last one.
			spread = plan.Horizon / env.Duration(len(ops)+1)
		}
		sim.Spawn(cl.ID(), func(p *env.Proc) {
			for _, op := range ops {
				if spread > 0 {
					p.Sleep(spread)
				}
				t0 := p.Now()
				out, resent := applyClient(p, cl, op)
				ev := Event{Client: w, Op: op, Out: out, Call: t0, Ret: p.Now(), Resent: resent}
				if ambiguousErr(out.Err) {
					ev.TimedOut = true
					ev.Out = Outcome{Err: core.ErrTimeout}
				}
				rec.Record(ev)
			}
			finished[w] = true
		})
	}
	var inj *chaos.Injector
	if plan != nil {
		inj = chaos.Apply(sim, c, *plan)
	}
	sim.Run()
	if inj != nil {
		res.Issues = append(res.Issues, inj.HealAndRecover(sim)...)
	}
	for w, ok := range finished {
		if !ok {
			res.Issues = append(res.Issues,
				fmt.Sprintf("client %d never completed its program (wedged operation)", w))
		}
	}

	// Post-run audit: with the cluster healed and recovered, read the whole
	// universe back sequentially. Lost acknowledged writes, resurrections
	// and wrong trees all surface here as non-linearizable observations.
	auditDone := false
	auditClient := len(prog.Ops)
	cl := c.Client(0)
	sim.Spawn(cl.ID(), func(p *env.Proc) {
		paths := append([]string{"/"}, prog.Paths...)
		for _, path := range paths {
			for _, kind := range []core.Op{core.OpStat, core.OpReadDir} {
				if path == "/" && kind == core.OpStat {
					kind = core.OpStatDir // the root has no parent to stat through
				}
				op := Op{Kind: kind, Path: path}
				t0 := p.Now()
				out, _ := applyClient(p, cl, op)
				ev := Event{Client: auditClient, Op: op, Out: out, Call: t0, Ret: p.Now()}
				if ambiguousErr(out.Err) {
					ev.TimedOut = true
					ev.Out = Outcome{Err: core.ErrTimeout}
				}
				rec.Record(ev)
			}
		}
		auditDone = true
	})
	sim.Run()
	if !auditDone {
		res.Issues = append(res.Issues, "post-run audit never completed (wedged read path)")
	}
	res.History = rec.History()
	res.Packets = sim.Delivered
	return res
}

// Report is the outcome of one checked concurrent run.
type Report struct {
	Run   RunResult
	Check CheckResult
	// Counterexample is the minimized failing subhistory (nil when clean).
	Counterexample History
}

// Failed reports whether the run violated linearizability or wedged.
func (r *Report) Failed() bool {
	return !r.Check.Ok || len(r.Run.Issues) > 0
}

// CheckConcurrent runs the program, searches the history, and minimizes any
// counterexample.
func CheckConcurrent(seed int64, prog Program, plan *chaos.Plan) *Report {
	rep := &Report{Run: RunConcurrent(seed, prog, plan)}
	rep.Check = Check(rep.Run.History)
	if !rep.Check.Ok {
		rep.Counterexample = Minimize(rep.Run.History)
	}
	return rep
}
