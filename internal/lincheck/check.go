package lincheck

import (
	"fmt"
	"math"

	"switchfs/internal/core"
	"switchfs/internal/env"
)

// CheckResult is the outcome of a linearizability search.
type CheckResult struct {
	// Ok reports that a legal linearization exists.
	Ok bool
	// Undecided reports that the search budget ran out before an answer —
	// callers must treat this as "no violation found", never as a violation.
	Undecided bool
	// Linearization holds the witness order (indices into the history) when
	// Ok.
	Linearization []int
	// States counts search states visited (diagnostics).
	States int
}

// maxHistory bounds a history for the bitmask-based search.
const maxHistory = 64

// searchBudget bounds visited states; generated histories stay far below it.
const searchBudget = 4 << 20

// Check runs the WGL/porcupine-style linearizability search: does some
// total order of the history's operations (a) respect real time — an
// operation that returned before another was invoked comes first — and (b)
// replay legally against the sequential Model?
//
// At-least-once ambiguity is modeled exactly like the chaos checker's taint,
// in interval form:
//
//   - a timed-out operation has an open interval: it may linearize at any
//     point after its invocation (the request or a queued retransmission
//     executing late) or never (the request was lost) — both branches are
//     searched;
//   - a retransmitted mutation reporting EEXIST/ENOENT may instead have
//     succeeded on its first execution and observed its own effect on the
//     retry (a server crash discarded the dedup cache), so the success
//     interpretation is searched too.
func Check(h History) CheckResult {
	return CheckAgainst(NewModel(), h)
}

// CheckAgainst is Check with a caller-supplied starting model (seeded
// namespaces, or the deliberately-broken models of the mutation tests).
func CheckAgainst(m *Model, h History) CheckResult {
	h = expandGhosts(h)
	if len(h) > maxHistory {
		panic(fmt.Sprintf("lincheck: history of %d events exceeds the %d-event search limit",
			len(h), maxHistory))
	}
	c := &searcher{
		evs:    h,
		rets:   make([]env.Time, len(h)),
		pred:   make([]int, len(h)),
		memo:   make(map[string]struct{}),
		budget: searchBudget,
	}
	// pred[i] is the latest earlier event of the same client that gates i:
	// client programs are sequential, so i can never linearize before it.
	// Interval timestamps alone cannot encode this — back-to-back ops can
	// share an instant (Ret(prev) == Call(next)) and would read as
	// concurrent. Timed-out ops don't gate their successors (the client
	// moved on; the ghost effect floats free), and ghosts (client -1) are
	// unordered copies.
	last := map[int]int{}
	for i, e := range h {
		c.rets[i] = e.Ret
		if e.TimedOut {
			c.rets[i] = math.MaxInt64
		}
		c.pred[i] = -1
		if e.Client >= 0 {
			if j, ok := last[e.Client]; ok {
				c.pred[i] = j
			}
			if !e.TimedOut {
				last[e.Client] = i
			}
		}
	}
	ok := c.dfs(0, m)
	res := CheckResult{Ok: ok, States: searchBudget - c.budget}
	if ok {
		res.Linearization = append([]int(nil), c.order...)
	} else if c.exhausted {
		res.Undecided = true
		res.Ok = true // no violation demonstrated
	}
	return res
}

type searcher struct {
	evs       History
	rets      []env.Time
	pred      []int // same-client program-order gate, -1 when none
	memo      map[string]struct{}
	budget    int
	exhausted bool
	order     []int
}

func (c *searcher) dfs(mask uint64, m *Model) bool {
	if mask == uint64(1)<<len(c.evs)-1 {
		return true
	}
	if c.budget <= 0 {
		c.exhausted = true
		return false
	}
	c.budget--
	key := fmt.Sprintf("%x|%s", mask, m.Key())
	if _, seen := c.memo[key]; seen {
		return false
	}

	// An operation may linearize next iff nothing unlinearized returned
	// strictly before it was invoked.
	minRet := env.Time(math.MaxInt64)
	for i := range c.evs {
		if mask&(1<<i) == 0 && c.rets[i] < minRet {
			minRet = c.rets[i]
		}
	}
	for i := range c.evs {
		if mask&(1<<i) != 0 || c.evs[i].Call > minRet {
			continue
		}
		if j := c.pred[i]; j >= 0 && mask&(1<<j) == 0 {
			continue // an earlier op of the same client is still unlinearized
		}
		e := c.evs[i]
		bit := uint64(1) << i
		try := func(nm *Model) bool {
			c.order = append(c.order, i)
			if c.dfs(mask|bit, nm) {
				return true
			}
			c.order = c.order[:len(c.order)-1]
			return false
		}
		if e.TimedOut {
			// Branch 1: the request never executed.
			if try(m) {
				return true
			}
			// Branch 2: it executed here (result unobserved).
			m2 := m.Clone()
			m2.Apply(e.Op)
			if try(m2) {
				return true
			}
			continue
		}
		m2 := m.Clone()
		if outcomeMatches(e.Op, e.Out, m2.Apply(e.Op)) && try(m2) {
			return true
		}
		if e.Resent && resentAmbiguous(e) {
			// The error may be the retry observing the first execution's own
			// effect: linearize the op here as a success.
			m3 := m.Clone()
			if m3.Apply(e.Op).Err == nil && try(m3) {
				return true
			}
		}
	}
	c.memo[key] = struct{}{}
	return false
}

// expandGhosts adds one skippable ghost copy of every timed-out mutation:
// at-least-once delivery means a retransmission can re-execute after a
// server crash discarded the dedup cache, so a gave-up create/delete/rename
// can apply twice — e.g. a ghost create re-appearing after another client's
// acknowledged delete. One extra copy models the double execution; further
// copies are theoretically possible but require each re-execution to be
// separately observed between cache losses.
func expandGhosts(h History) History {
	var ghosts History
	for _, e := range h {
		if e.TimedOut && isMutation(e.Op.Kind) {
			g := e
			g.Client = -1
			ghosts = append(ghosts, g)
		}
	}
	if len(ghosts) == 0 {
		return h
	}
	return append(append(History(nil), h...), ghosts...)
}

func isMutation(k core.Op) bool {
	switch k {
	case core.OpCreate, core.OpMkdir, core.OpDelete, core.OpRmdir,
		core.OpRename, core.OpLink, core.OpChmod:
		return true
	}
	return false
}

// resentAmbiguous reports whether a retransmitted mutation's error can mask
// an earlier successful execution (a server crash discarded the dedup
// cache, the retry re-executed against the changed namespace). Any error
// qualifies, not just the op's own-effect signature: a resent link can see
// ENOENT after another client deleted the source its first execution
// succeeded from, a resent rename EEXIST after the source was recreated,
// a resent rmdir ENOTEMPTY after the removed directory was rebuilt — in
// every case the first execution's success is a legal interpretation.
func resentAmbiguous(e Event) bool {
	return isMutation(e.Op.Kind) && e.Out.Err != nil
}

// outcomeMatches compares an observed outcome with the model's, field by
// meaningful field:
//
//   - stat/open compare type and perm but not size — a plain stat of a
//     directory reads the inode without aggregating, so its size may
//     legitimately lag deferred updates (§5.2.2 aggregates on statdir only);
//   - statdir compares type, perm and the aggregated entry count;
//   - readdir compares entry names and types; dentry perms are snapshots
//     from creation time (chmod updates the inode, not the dentry) and are
//     not modeled;
//   - everything else compares the error alone.
func outcomeMatches(op Op, observed, modeled Outcome) bool {
	if !sameErr(observed.Err, modeled.Err) {
		return false
	}
	if observed.Err != nil {
		return true
	}
	switch op.Kind {
	case core.OpStat, core.OpOpen:
		return observed.Attr.Type == modeled.Attr.Type &&
			observed.Attr.Perm == modeled.Attr.Perm
	case core.OpStatDir:
		return observed.Attr.Type == modeled.Attr.Type &&
			observed.Attr.Perm == modeled.Attr.Perm &&
			observed.Attr.Size == modeled.Attr.Size
	case core.OpReadDir:
		obs, mod := sortEntries(observed.Entries), sortEntries(modeled.Entries)
		if len(obs) != len(mod) {
			return false
		}
		for i := range obs {
			if obs[i].Name != mod[i].Name || obs[i].Type != mod[i].Type {
				return false
			}
		}
		return true
	default:
		return true
	}
}
