package lincheck

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"switchfs/internal/chaos"
	"switchfs/internal/core"
)

// sweepSeeds returns the seed budget: 4 under -short, 12 by default, and
// whatever LINCHECK_SEEDS says (the acceptance sweep exports
// LINCHECK_SEEDS=64).
func sweepSeeds(t *testing.T) int64 {
	if s := os.Getenv("LINCHECK_SEEDS"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad LINCHECK_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

func reportFailure(t *testing.T, what string, seed int64, rep *Report) {
	t.Helper()
	t.Errorf("%s seed %d failed: issues=%v linearizable=%v undecided=%v",
		what, seed, rep.Run.Issues, rep.Check.Ok, rep.Check.Undecided)
	if rep.Counterexample != nil {
		t.Errorf("minimized counterexample (%d events):\n%s",
			len(rep.Counterexample), rep.Counterexample)
	}
}

// TestSweepFaultFree checks concurrent histories on a healthy cluster.
func TestSweepFaultFree(t *testing.T) {
	for seed := int64(1); seed <= sweepSeeds(t); seed++ {
		prog := GenProgram(seed, 4, 7)
		if rep := CheckConcurrent(seed, prog, nil); rep.Failed() {
			reportFailure(t, "fault-free", seed, rep)
		}
	}
}

// TestSweepFaulty checks concurrent histories across the plan catalog.
func TestSweepFaulty(t *testing.T) {
	for seed := int64(1); seed <= sweepSeeds(t); seed++ {
		prog := GenProgram(seed, 3, 6)
		for _, plan := range Plans(seed) {
			if rep := CheckConcurrent(seed, prog, &plan); rep.Failed() {
				reportFailure(t, "plan "+plan.Name, seed, rep)
			}
		}
	}
}

// TestSweepDifferential diffs model, SwitchFS and baseline over sequential
// programs: the adversarial small-pool generator and the PanguMix-derived
// trace shape (workload.Program).
func TestSweepDifferential(t *testing.T) {
	for seed := int64(1); seed <= sweepSeeds(t); seed++ {
		for name, ops := range map[string][]Op{
			"pool": GenProgram(seed, 3, 40).Flatten(),
			"mix":  MixProgram(seed, 60),
		} {
			if rep := RunDiff(seed, ops); rep.Failed() {
				t.Errorf("differential %s seed %d: %d divergences", name, seed, len(rep.Divergences))
				for _, d := range rep.Divergences {
					t.Errorf("  %s", d)
				}
			}
		}
	}
}

// TestRunConcurrentDeterministic pins the recorder: one seed, two runs,
// byte-identical histories.
func TestRunConcurrentDeterministic(t *testing.T) {
	prog := GenProgram(3, 3, 6)
	plan, _ := chaos.BuiltinPlan(Geometry, "server-crash")
	a := RunConcurrent(3, prog, &plan)
	b := RunConcurrent(3, prog, &plan)
	if a.History.String() != b.History.String() {
		t.Fatalf("same seed produced different histories:\n--- a ---\n%s--- b ---\n%s",
			a.History, b.History)
	}
	if fmt.Sprint(a.Issues) != fmt.Sprint(b.Issues) || a.Packets != b.Packets {
		t.Fatalf("same seed produced different issues/counters: %v/%d vs %v/%d",
			a.Issues, a.Packets, b.Issues, b.Packets)
	}
}

// TestGenProgramDeterministic pins the generator.
func TestGenProgramDeterministic(t *testing.T) {
	a, b := GenProgram(7, 3, 20), GenProgram(7, 3, 20)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different programs")
	}
	if fmt.Sprint(a) == fmt.Sprint(GenProgram(8, 3, 20)) {
		t.Fatal("different seeds produced identical programs")
	}
	if len(a.Paths) == 0 || len(a.Paths) > 12 {
		t.Fatalf("path universe %d outside the audit budget", len(a.Paths))
	}
}

// TestRegressionRenamedDirChangeLog pins the phantom-dentry bug the first
// differential sweep found (seed 15): a deferred update committed through a
// directory's post-rename path landed in a change-log still keyed to the
// directory's old fingerprint, so the new owner's aggregations never
// collected it — readdir listed a deleted entry forever and statdir
// overcounted. Fixed by re-keying the change-log on the first
// current-ancestry request after the rename (server.rekeyClog).
func TestRegressionRenamedDirChangeLog(t *testing.T) {
	ops := []Op{
		{Kind: core.OpMkdir, Path: "/a"},
		{Kind: core.OpCreate, Path: "/a/x"},
		{Kind: core.OpRename, Path: "/a", Path2: "/b"},
		{Kind: core.OpDelete, Path: "/b/x"},
	}
	if rep := RunDiff(15, ops); rep.Failed() {
		t.Fatalf("renamed-directory change-log regression:\n%s", rep.Divergences)
	}
	// The same shape through rmdir: the emptied dir must be removable.
	ops = append(ops, Op{Kind: core.OpRmdir, Path: "/b"})
	if rep := RunDiff(15, ops); rep.Failed() {
		t.Fatalf("rmdir after renamed-directory delete:\n%s", rep.Divergences)
	}
}
