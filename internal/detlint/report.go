package detlint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Suppression is one //detlint: directive found in the tree: a diagnostic
// suppression (ignore) or an invariant annotation (wal-before-send,
// lock-escapes, dedup-check). The inventory makes the suite's escape hatches
// reviewable in one place — every hole in the net, with its written reason.
type Suppression struct {
	File      string
	Line      int
	Kind      string   // ignore, wal-before-send, lock-escapes, dedup-check
	Analyzers []string // ignore: the analyzers it silences
	Reason    string
	Malformed string // non-empty: why the directive is invalid
}

// needsReason reports whether this directive kind must justify itself.
func (s Suppression) needsReason() bool {
	return s.Kind == directiveIgnore || s.Kind == directiveLockEscape
}

// CollectSuppressions parses every non-test .go file under root and returns
// the directive inventory, sorted by file and line. vendor/, testdata/, bin/
// and hidden directories are skipped: vendored and fixture directives are not
// this repository's policy surface.
func CollectSuppressions(root string) ([]Suppression, error) {
	var out []Suppression
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") ||
				name == "vendor" || name == "testdata" || name == "bin") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || isTestFile(name) {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("detlint report: %w", perr)
		}
		rel := path
		if r, rerr := filepath.Rel(root, path); rerr == nil {
			rel = r
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if s, ok := parseSuppression(c.Text); ok {
					s.File, s.Line = rel, fset.Position(c.Pos()).Line
					out = append(out, s)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// parseSuppression classifies one comment as a detlint directive.
func parseSuppression(text string) (Suppression, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Suppression{}, false
	}
	if rest, ok := cutDirective(text, directiveIgnore); ok {
		d := parseIgnore(token.NoPos, rest)
		return Suppression{Kind: directiveIgnore, Analyzers: d.analyzers,
			Reason: d.reason, Malformed: d.malformed}, true
	}
	if rest, ok := cutDirective(text, directiveWalSend); ok {
		d := parseWalSend(token.NoPos, rest)
		reason := d.record
		if len(d.via) > 0 {
			reason += " via=" + strings.Join(d.via, ",")
		}
		return Suppression{Kind: directiveWalSend, Reason: reason, Malformed: d.bad}, true
	}
	if rest, ok := cutDirective(text, directiveLockEscape); ok {
		s := Suppression{Kind: directiveLockEscape, Reason: directiveArg(rest)}
		if s.Reason == "" {
			s.Malformed = "missing reason"
		}
		return s, true
	}
	if rest, ok := cutDirective(text, directiveDedupCheck); ok {
		s := Suppression{Kind: directiveDedupCheck}
		if directiveArg(rest) != "" {
			s.Malformed = "takes no arguments"
		}
		return s, true
	}
	name := text[len(directivePrefix):]
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return Suppression{Kind: name, Malformed: "unknown directive"}, true
}

// WriteReport prints the inventory, one directive per line, and returns an
// error when any directive is malformed or a suppression carries no written
// reason — the CI report step fails on that error, so a reason-less
// suppression cannot land.
func WriteReport(w io.Writer, sups []Suppression) error {
	bad := 0
	for _, s := range sups {
		detail := s.Reason
		if s.Kind == directiveIgnore {
			detail = "[" + strings.Join(s.Analyzers, ",") + "] " + s.Reason
		}
		if s.Malformed != "" {
			detail += " !! " + s.Malformed
			bad++
		}
		fmt.Fprintf(w, "%-15s %s:%d: %s\n", s.Kind, s.File, s.Line, strings.TrimSpace(detail))
	}
	fmt.Fprintf(w, "%d detlint directives\n", len(sups))
	if bad > 0 {
		return fmt.Errorf("detlint report: %d malformed or reason-less directive(s)", bad)
	}
	return nil
}
