// Package detlint is a go/analysis suite that proves, at compile time, the
// determinism and protocol invariants the repo's empirical harnesses (bench
// -compare, chaos-smoke, lincheck-smoke) can only probe after the fact:
//
//   - maprange: map iteration order must not leak into packet emission,
//     escaping slices, or last-writer-wins state (the PR 5 change-log bug
//     class).
//   - wallclock: simulator-visible packages take time and randomness from
//     the env runtime, never from the wall clock or global math/rand.
//   - rawgo: simulator-scheduled packages use env.Proc and the env blocking
//     primitives, never raw goroutines, channels or sync parks.
//   - walorder: annotated protocol decisions are WAL-logged before any
//     packet carrying them leaves (the PR 3/5 2PC bug class).
//   - lockpair: sim locks are released on every return path, or the
//     function declares the handoff (the PR 5 2PC lock-leak class).
//   - sendalias: packets are never written after they crossed Send (the
//     PR 8 copy-before-stamp class).
//   - idempotent: mutating handlers for retransmittable RPCs consult the
//     dedup cache before their first side effect (the PR 2/4 class).
//   - dettaint: nondeterminism sources (wall clock, pool internals,
//     map-order slices) never reach packets, WAL records or bench rows —
//     maprange generalized across functions and packages via facts.
//   - detdirective: the suite's own suppressions carry written reasons.
//
// The suite runs through cmd/detlint under `go vet -vettool` (make detlint,
// CI job detlint). Policy — which packages each analyzer governs and which
// files are exempt — lives in detlint.json; per-site exceptions use
// `//detlint:ignore <analyzer> -- <reason>`, and a missing reason is itself
// a diagnostic. See DESIGN.md "Determinism lint".
package detlint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Maprange,
		Wallclock,
		Rawgo,
		Walorder,
		Lockpair,
		Sendalias,
		Idempotent,
		Dettaint,
		Detdirective,
	}
}
