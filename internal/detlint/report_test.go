package detlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestReportInventory(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": `package a

//detlint:ignore maprange -- keys are re-sorted downstream
var x int

// f hands its lock to the caller.
//
//detlint:lock-escapes the lock transfers to the caller
func f() {}
`,
		"a/a_test.go": `package a

//detlint:ignore maprange
var y int
`,
		"vendor/v/v.go": `package v

//detlint:ignore rawgo
var z int
`,
	})
	sups, err := CollectSuppressions(root)
	if err != nil {
		t.Fatal(err)
	}
	// The reason-less directives in a_test.go and vendor/ are out of scope:
	// analyzers never see test files, and vendored policy is not ours.
	if len(sups) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(sups), sups)
	}
	var b strings.Builder
	if err := WriteReport(&b, sups); err != nil {
		t.Fatalf("well-formed inventory rejected: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"ignore", "a/a.go:3", "[maprange] keys are re-sorted downstream",
		"lock-escapes", "a/a.go:8", "the lock transfers to the caller",
		"2 detlint directives",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportRejectsReasonless(t *testing.T) {
	root := writeTree(t, map[string]string{
		"b/b.go": `package b

//detlint:ignore maprange
var x int
`,
	})
	sups, err := CollectSuppressions(root)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, sups); err == nil {
		t.Fatalf("reason-less suppression accepted:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "missing reason") {
		t.Errorf("report does not name the problem:\n%s", b.String())
	}
}

func TestReportOverRepo(t *testing.T) {
	// The real tree's inventory must stay clean: this is the same gate CI
	// runs via `detlint -report`.
	sups, err := CollectSuppressions("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) == 0 {
		t.Fatal("no directives found walking the repo — wrong root?")
	}
	var b strings.Builder
	if err := WriteReport(&b, sups); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
}
