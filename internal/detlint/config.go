package detlint

import (
	_ "embed"
	"encoding/json"
	"flag"
	"fmt"
	"strings"
)

//go:embed detlint.json
var configJSON []byte

// Config is the compiled-in analyzer configuration (detlint.json). Each
// analyzer exposes flags that override the relevant fields, so one-off runs
// (and the testdata suites) can retarget the suite without editing the file.
type Config struct {
	// EnvPackage is the import path of the dual-mode runtime. Methods named
	// Send, Spawn and After on types of this package are the packet-emission
	// and scheduling roots the maprange and walorder analyzers trace.
	EnvPackage string `json:"envPackage"`
	// WalPackage is the import path of the write-ahead log; method Append on
	// its types is the durability root the walorder analyzer traces.
	WalPackage string `json:"walPackage"`
	// WirePackage is the import path of the wire message package; its types
	// are the packet values the sendalias analyzer tracks across Send, and
	// ReqCommon embedded in a request marks it retransmittable (idempotent).
	WirePackage string `json:"wirePackage"`
	// KvPackage is the import path of the key-value store; its Put/Delete
	// methods are state mutations for the idempotent analyzer.
	KvPackage string `json:"kvPackage"`
	// TaintPackages are the packages the dettaint analyzer governs: the sim
	// packages plus the bench/figure pipeline the rows flow through.
	TaintPackages []string `json:"taintPackages"`
	// TaintSources are the nondeterminism source functions ("time.Now",
	// "switchfs/internal/env.Sim.WorkerCount").
	TaintSources []string `json:"taintSources"`
	// TaintSinkTypes are the row/result types nondeterminism must not reach
	// ("switchfs/internal/bench.Figure").
	TaintSinkTypes []string `json:"taintSinkTypes"`
	// SimPackages are the packages whose code is executed under the
	// deterministic simulator (maprange, wallclock).
	SimPackages []string `json:"simPackages"`
	// RawgoPackages are the packages that must use env.Proc/env primitives
	// instead of raw goroutines, channels and sync types (rawgo).
	RawgoPackages []string `json:"rawgoPackages"`
	// WallclockAllowFiles are file suffixes exempt from the wallclock
	// analyzer (the Real runtime's own implementation).
	WallclockAllowFiles []string `json:"wallclockAllowFiles"`
}

func loadConfig() Config {
	var c Config
	if err := json.Unmarshal(configJSON, &c); err != nil {
		panic(fmt.Sprintf("detlint: embedded detlint.json is invalid: %v", err))
	}
	return c
}

// conf is the process-wide configuration; analyzer flags mutate the fields
// they name before the first Run.
var conf = loadConfig()

// listFlag adapts a []string config field to a comma-separated flag value.
type listFlag struct{ p *[]string }

func (f listFlag) String() string {
	if f.p == nil {
		return ""
	}
	return strings.Join(*f.p, ",")
}

func (f listFlag) Set(s string) error {
	if s == "" {
		*f.p = nil
		return nil
	}
	*f.p = strings.Split(s, ",")
	return nil
}

func addListFlag(fs *flag.FlagSet, p *[]string, name, usage string) {
	fs.Var(listFlag{p}, name, usage)
}

// pkgMatch reports whether path is one of the configured package paths.
func pkgMatch(paths []string, path string) bool {
	for _, p := range paths {
		if path == p {
			return true
		}
	}
	return false
}

// fileAllowed reports whether filename matches one of the configured
// allowlist suffixes.
func fileAllowed(allow []string, filename string) bool {
	for _, suf := range allow {
		if strings.HasSuffix(filename, suf) {
			return true
		}
	}
	return false
}

// isTestFile reports whether filename is a Go test file. The determinism
// invariants govern protocol code; tests drive both runtime modes and
// legitimately use goroutines, wall-clock timeouts and unordered iteration.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
