package detlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// Walorder checks WAL-before-send discipline on annotated functions:
//
//	//detlint:wal-before-send <record> [via=<fn>[,<fn>...]]
//
// On the annotated function's control-flow graph, a WAL append of <record>
// (directly, or through a helper like mustAppend, or through a callee that
// unconditionally appends it, like recordCommit) must dominate every packet
// emission — every call that transitively reaches env.Proc.Send. With via=,
// only calls to the named emitters are checked, which pins the protocol-
// decision packets (TxnDecision, CommitNotice) while leaving request/retry
// traffic to its own annotations. A send reachable from the function entry
// without passing an append is a diagnostic: that is exactly the "decision
// emitted before it was logged" bug class a crash turns into divergence.
//
// Emissions that are legitimately unlogged (presumed-abort votes, error
// replies) carry //detlint:ignore walorder with the protocol argument.
var Walorder = &analysis.Analyzer{
	Name:     "walorder",
	Doc:      "check that annotated functions append to the WAL before emitting packets",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      runWalorder,
}

func init() {
	Walorder.Flags.StringVar(&conf.WalPackage, "wal", conf.WalPackage,
		"import path of the write-ahead log package")
	Walorder.Flags.StringVar(&conf.EnvPackage, "env", conf.EnvPackage,
		"import path of the dual-mode runtime package")
}

func runWalorder(pass *analysis.Pass) (any, error) {
	files := filesOf(pass)
	r := newReporter(pass)
	g := newSendGraph(pass, files)
	ap := newAppendGraph(pass, files)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, dir := range funcWalSendDirectives(fn) {
				if dir.bad != "" {
					continue // detdirective reports the parse problem
				}
				checkWalOrder(pass, r, g, ap, cfgs.FuncDecl(fn), fn, dir)
			}
		}
	}
	return nil, nil
}

// appendGraph classifies the package's functions by WAL-append behaviour.
type appendGraph struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// appendsParam holds helpers whose WAL append takes the record kind from
	// one of their own parameters (mustAppend): a call site passing a record
	// constant is then an append point for that record.
	appendsParam map[*types.Func]bool
	// appendsConst maps a function to the record constants it appends
	// unconditionally-enough for lint purposes (anywhere in its body).
	appendsConst map[*types.Func]map[string]bool
}

func newAppendGraph(pass *analysis.Pass, files []*ast.File) *appendGraph {
	ap := &appendGraph{
		pass:         pass,
		decls:        make(map[*types.Func]*ast.FuncDecl),
		appendsParam: make(map[*types.Func]bool),
		appendsConst: make(map[*types.Func]map[string]bool),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					ap.decls[obj] = fd
				}
			}
		}
	}
	// Base: direct wal.Append calls, splitting on whether the kind argument
	// is a constant or a parameter of the enclosing function.
	for obj, fd := range ap.decls {
		params := paramObjs(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := ap.walAppendKindArg(call)
			if !ok {
				return true
			}
			if name, isConst := constIdentName(pass, kind); isConst {
				ap.addConst(obj, name)
			} else if id, isIdent := kind.(*ast.Ident); isIdent && params[pass.TypesInfo.Uses[id]] {
				ap.appendsParam[obj] = true
			}
			return true
		})
	}
	// Fixpoint: calling an appendsParam helper with a record constant, or an
	// appendsConst function, propagates the record upward.
	for changed := true; changed; {
		changed = false
		for obj, fd := range ap.decls {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, rec := range ap.callAppends(call) {
					if !ap.appendsConst[obj][rec] {
						ap.addConst(obj, rec)
						changed = true
					}
				}
				return true
			})
		}
	}
	return ap
}

func (ap *appendGraph) addConst(obj *types.Func, rec string) {
	m := ap.appendsConst[obj]
	if m == nil {
		m = make(map[string]bool)
		ap.appendsConst[obj] = m
	}
	m[rec] = true
}

// walAppendKindArg returns the record-kind argument when call is
// walPackage's Append method.
func (ap *appendGraph) walAppendKindArg(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return nil, false
	}
	obj, ok := ap.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != conf.WalPackage || obj.Name() != "Append" {
		return nil, false
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil, false
	}
	return call.Args[0], true
}

// callAppends returns the record constants this call appends: a direct wal
// Append with a constant kind, a call to an appendsParam helper passing a
// record constant, or a call to a function already classified appendsConst.
func (ap *appendGraph) callAppends(call *ast.CallExpr) []string {
	var out []string
	if kind, ok := ap.walAppendKindArg(call); ok {
		if name, isConst := constIdentName(ap.pass, kind); isConst {
			out = append(out, name)
		}
		return out
	}
	callee := calleeFunc(ap.pass, call)
	if callee == nil {
		return nil
	}
	if ap.appendsParam[callee] {
		for _, arg := range call.Args {
			if name, isConst := constIdentName(ap.pass, arg); isConst {
				out = append(out, name)
			}
		}
	}
	for rec := range ap.appendsConst[callee] {
		out = append(out, rec)
	}
	return out
}

// appendsRecord reports whether call is an append point for record rec.
func (ap *appendGraph) appendsRecord(call *ast.CallExpr, rec string) bool {
	for _, r := range ap.callAppends(call) {
		if r == rec {
			return true
		}
	}
	return false
}

func paramObjs(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if o := pass.TypesInfo.Defs[name]; o != nil {
				out[o] = true
			}
		}
	}
	return out
}

func constIdentName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isConst := pass.TypesInfo.Uses[id].(*types.Const); !isConst {
		return "", false
	}
	return id.Name, true
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeName returns the syntactic name a call invokes (for via= matching):
// the method or function identifier, covering closures bound to locals.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// checkWalOrder verifies one annotation on one function.
func checkWalOrder(pass *analysis.Pass, r *reporter, g *sendGraph, ap *appendGraph,
	graph *cfg.CFG, fn *ast.FuncDecl, dir walSendDirective) {

	via := make(map[string]bool)
	viaSeen := make(map[string]bool)
	for _, v := range dir.via {
		via[v] = true
	}

	// Collect the relevant calls at the top level of the function: calls
	// inside nested function literals run on their own schedule (often a
	// retry loop or a deferred cleanup) and are outside this function's CFG,
	// so they get their own annotation if they need one. Deferred calls run
	// at return, after every append on the path, and are skipped too.
	type callSite struct {
		call     *ast.CallExpr
		isAppend bool
		isSend   bool
	}
	var sites []callSite
	haveAppend := false
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, true)
				return false
			case *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if inLit {
					return true
				}
				cs := callSite{call: m}
				if ap.appendsRecord(m, dir.record) {
					cs.isAppend = true
					haveAppend = true
				}
				if len(via) > 0 {
					if name := calleeName(m); via[name] {
						viaSeen[name] = true
						cs.isSend = true
					}
				} else if g.callEmits(m) {
					cs.isSend = true
				}
				if cs.isAppend || cs.isSend {
					sites = append(sites, cs)
				}
			}
			return true
		})
	}
	walk(fn.Body, false)

	// Annotation-level problems anchor on the function name: the directive
	// comment line cannot carry a trailing suppression, the declaration can.
	if !haveAppend {
		r.reportf(fn.Name.Pos(), "wal-before-send: %s never appends WAL record %s (directly or via a helper)", fn.Name.Name, dir.record)
		return
	}
	for v := range via {
		if !viaSeen[v] {
			r.reportf(fn.Name.Pos(), "wal-before-send: via target %q is never called in %s", v, fn.Name.Name)
		}
	}

	// Locate each site's basic block, then find the blocks reachable from
	// entry without passing an append point.
	blockOf := make(map[*ast.CallExpr]*cfg.Block)
	appendPos := make(map[*cfg.Block][]token.Pos)
	for _, b := range graph.Blocks {
		for _, n := range b.Nodes {
			for _, cs := range sites {
				if n.Pos() <= cs.call.Pos() && cs.call.End() <= n.End() {
					blockOf[cs.call] = b
					if cs.isAppend {
						appendPos[b] = append(appendPos[b], cs.call.Pos())
					}
				}
			}
		}
	}

	reachableNoAppend := make(map[*cfg.Block]bool)
	if len(graph.Blocks) > 0 {
		work := []*cfg.Block{graph.Blocks[0]}
		reachableNoAppend[graph.Blocks[0]] = true
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			if len(appendPos[b]) > 0 {
				continue // paths through b pass an append before leaving it
			}
			for _, s := range b.Succs {
				if !reachableNoAppend[s] {
					reachableNoAppend[s] = true
					work = append(work, s)
				}
			}
		}
	}

	for _, cs := range sites {
		if !cs.isSend || cs.isAppend {
			continue
		}
		b, ok := blockOf[cs.call]
		if !ok {
			// Not in the CFG (unreachable code); nothing to prove.
			continue
		}
		if !reachableNoAppend[b] {
			continue // every path here already appended
		}
		dominated := false
		for _, p := range appendPos[b] {
			if p < cs.call.Pos() {
				dominated = true
				break
			}
		}
		if !dominated {
			r.reportf(cs.call.Pos(),
				"packet emission reachable before the %s WAL append: a crash between this send and the append makes the receiver act on a decision the restarted server never re-derives (wal-before-send on %s)",
				dir.record, fn.Name.Name)
		}
	}
}
