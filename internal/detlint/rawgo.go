package detlint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Rawgo forbids raw concurrency — `go` statements, channel types and
// operations, select, and the blocking sync primitives — in packages the
// simulator schedules. Protocol code runs on env.Proc under a token-passing
// scheduler with exactly one runnable process; a raw goroutine escapes the
// scheduler (its interleaving is the Go runtime's choice, not the seed's),
// and a channel or sync.Mutex park would wedge the token. The replacements
// are env.Proc.Spawn, env.Future, env.Mutex, env.Cond and env.Semaphore,
// which behave identically under Sim and Real.
//
// sync/atomic stays legal: atomic loads/stores don't park and don't
// reorder observable protocol events. sync.Mutex fields that guard short
// in-memory sections and are provably never held across a park may be
// suppressed per declaration with //detlint:ignore rawgo and a reason.
var Rawgo = &analysis.Analyzer{
	Name:     "rawgo",
	Doc:      "forbid raw goroutines, channels and sync primitives in simulator-scheduled packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRawgo,
}

func init() {
	addListFlag(&Rawgo.Flags, &conf.RawgoPackages, "packages",
		"comma-separated import paths the analyzer governs")
}

// forbiddenSyncTypes are the sync types that can park a goroutine (or, for
// WaitGroup, block on runtime-scheduled completion order).
var forbiddenSyncTypes = map[string]string{
	"Mutex":     "env.Mutex",
	"RWMutex":   "env.RWMutex",
	"WaitGroup": "env.Future per child (or a counting env.Semaphore)",
	"Cond":      "env.Cond",
}

func runRawgo(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.RawgoPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	r := newReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodes := []ast.Node{
		(*ast.GoStmt)(nil),
		(*ast.SendStmt)(nil),
		(*ast.UnaryExpr)(nil),
		(*ast.SelectStmt)(nil),
		(*ast.ChanType)(nil),
		(*ast.SelectorExpr)(nil),
		(*ast.RangeStmt)(nil),
	}
	ins.Preorder(nodes, func(n ast.Node) {
		if isTestFile(pass.Fset.Position(n.Pos()).Filename) {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			r.reportf(n.Pos(), "go statement in a simulator-scheduled package: raw goroutines escape the token-passing scheduler; use env.Proc.Spawn")
		case *ast.SendStmt:
			r.reportf(n.Pos(), "channel send in a simulator-scheduled package: channel parks wedge the single-runnable-proc invariant; use env.Future or env.Semaphore")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				r.reportf(n.Pos(), "channel receive in a simulator-scheduled package: channel parks wedge the single-runnable-proc invariant; use env.Future")
			}
		case *ast.SelectStmt:
			r.reportf(n.Pos(), "select in a simulator-scheduled package: the runtime's case choice is nondeterministic; use env.Future.WaitTimeout")
		case *ast.ChanType:
			r.reportf(n.Pos(), "channel type in a simulator-scheduled package: use env.Future or env.Semaphore")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					r.reportf(n.Pos(), "range over channel in a simulator-scheduled package: use env.Future")
				}
			}
		case *ast.SelectorExpr:
			checkSyncMention(pass, r, n)
		}
	})
	return nil, nil
}

// checkSyncMention reports uses of the forbidden sync types and their
// methods. Type mentions (fields, vars, params) are the primary report site
// so one declaration carries one diagnostic (and one suppression governs the
// whole field); method calls on an already-suppressed field are not
// re-reported, since the selector there resolves to the method, not the
// type — we only flag the type name selector `sync.X`.
func checkSyncMention(pass *analysis.Pass, r *reporter, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return
	}
	if repl, bad := forbiddenSyncTypes[obj.Name()]; bad {
		r.reportf(sel.Pos(), "sync.%s in a simulator-scheduled package parks outside the token-passing scheduler; use %s", obj.Name(), repl)
	}
}
