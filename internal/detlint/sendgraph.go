package detlint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// The maprange and walorder analyzers both need to know which calls emit
// packets. The roots are the runtime's own emission and scheduling methods
// (env.Proc.Send, env.Proc.Spawn, env.Env.Spawn, env.Env.After); sendGraph
// closes them over the package's static call graph so wrappers like
// server.reply count too.

// emissionMethods are the env-package method names treated as roots.
var emissionMethods = map[string]bool{
	"Send":  true,
	"Spawn": true,
	"After": true,
}

// sendGraph classifies the functions of one package by whether they
// (transitively, within the package) emit packets.
type sendGraph struct {
	pass *analysis.Pass
	// decls maps each package-level function or method to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// sendish holds functions that transitively reach an emission root.
	sendish map[*types.Func]bool
	// sendishClosure holds local variables bound to function literals that
	// transitively reach an emission root (e.g. `fail := func(...) {...}`
	// closures that reply to the client).
	sendishClosure map[*types.Var]bool
}

func newSendGraph(pass *analysis.Pass, files []*ast.File) *sendGraph {
	g := &sendGraph{
		pass:           pass,
		decls:          make(map[*types.Func]*ast.FuncDecl),
		sendish:        make(map[*types.Func]bool),
		sendishClosure: make(map[*types.Var]bool),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					g.decls[obj] = fd
				}
			}
		}
	}
	// Fixpoint: a function is sendish if its body contains an emission root
	// call or a call to a sendish same-package function.
	for changed := true; changed; {
		changed = false
		for obj, fd := range g.decls {
			if g.sendish[obj] {
				continue
			}
			if g.bodyEmits(fd.Body) {
				g.sendish[obj] = true
				changed = true
			}
		}
	}
	// Closures: one pass after the function fixpoint (closures calling other
	// sendish closures are rare enough to leave to the next fixpoint round).
	for changed := true; changed; {
		changed = false
		for _, fd := range g.decls {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, rhs := range as.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(as.Lhs) {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := g.objOf(id).(*types.Var)
					if !ok || g.sendishClosure[v] {
						continue
					}
					if g.bodyEmits(lit.Body) {
						g.sendishClosure[v] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return g
}

func (g *sendGraph) objOf(id *ast.Ident) types.Object {
	if o := g.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return g.pass.TypesInfo.Uses[id]
}

// bodyEmits reports whether any call in body (including nested function
// literals) is an emission per the current sendish sets.
func (g *sendGraph) bodyEmits(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && g.callEmits(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// callEmits reports whether one call expression emits: an env emission root,
// a sendish same-package function, or a sendish closure variable.
func (g *sendGraph) callEmits(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if isEmissionRoot(obj) || g.sendish[obj] {
				return true
			}
		}
	case *ast.Ident:
		switch obj := g.objOf(fun).(type) {
		case *types.Func:
			if isEmissionRoot(obj) || g.sendish[obj] {
				return true
			}
		case *types.Var:
			if g.sendishClosure[obj] {
				return true
			}
		}
	}
	return false
}

// isEmissionRoot reports whether obj is one of the env runtime's emission or
// scheduling methods.
func isEmissionRoot(obj *types.Func) bool {
	return obj.Pkg() != nil &&
		obj.Pkg().Path() == conf.EnvPackage &&
		emissionMethods[obj.Name()] &&
		obj.Type().(*types.Signature).Recv() != nil
}
