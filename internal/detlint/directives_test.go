package detlint

import "testing"

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		rest      string
		analyzers int
		malformed bool
	}{
		{"rawgo -- guarded, never parks", 1, false},
		{"maprange,walorder -- sorted upstream", 2, false},
		{"rawgo", 1, true},              // no reason
		{"rawgo --", 1, true},           // empty reason
		{"-- some reason", 0, true},     // no analyzer
		{"nosuch -- a reason", 1, true}, // unknown analyzer
		{"rawgo --- odd", 1, false},     // "--- odd" still cuts at "--", reason "- odd"
	}
	for _, c := range cases {
		d := parseIgnore(0, c.rest)
		if got := len(d.analyzers); got != c.analyzers {
			t.Errorf("parseIgnore(%q): %d analyzers, want %d", c.rest, got, c.analyzers)
		}
		if got := d.malformed != ""; got != c.malformed {
			t.Errorf("parseIgnore(%q): malformed=%q, want malformed=%v", c.rest, d.malformed, c.malformed)
		}
	}
}

func TestParseWalSend(t *testing.T) {
	d := parseWalSend(0, "recTxnCommit via=driveDecision,reply")
	if d.bad != "" || d.record != "recTxnCommit" || len(d.via) != 2 {
		t.Errorf("parseWalSend: got %+v", d)
	}
	if d := parseWalSend(0, ""); d.bad == "" {
		t.Error("parseWalSend(empty): expected a parse problem")
	}
	if d := parseWalSend(0, "recX frobnicate=1"); d.bad == "" {
		t.Error("parseWalSend(bad arg): expected a parse problem")
	}
}

func TestCutDirective(t *testing.T) {
	if rest, ok := cutDirective("//detlint:ignore rawgo -- x", "ignore"); !ok || rest != "rawgo -- x" {
		t.Errorf("cutDirective: got %q, %v", rest, ok)
	}
	if _, ok := cutDirective("//detlint:ignorex", "ignore"); ok {
		t.Error("cutDirective: ignorex must not match ignore")
	}
	if _, ok := cutDirective("// detlint:ignore x -- y", "ignore"); ok {
		t.Error("cutDirective: spaced comment is not a directive")
	}
}
