// Package server exercises detdirective: the suite's own directives must be
// well-formed, and a suppression without a written reason is a diagnostic.
// The `want` markers ride inside the directive comments themselves, which is
// why some expectations also match the resulting parse errors.
package server

//detlint:ignore rawgo // want `malformed //detlint:ignore: missing reason`
var a int

//detlint:ignore nosuch -- covered elsewhere // want `unknown analyzer "nosuch"`
var b int

//detlint:ignore -- lazy // want `no analyzer named`
var c int

//detlint:frobnicate now // want `unknown detlint directive "frobnicate"`
var d int

func placed() {
	//detlint:wal-before-send recX // want `unrecognized argument` `must be in a function declaration's doc comment`
	_ = 0
}

// wellFormed carries valid directives: no diagnostics.
//
//detlint:wal-before-send recX via=reply
func wellFormed() {
	//detlint:ignore maprange,walorder -- a written reason satisfies the policy
	_ = 0
}

//detlint:lock-escapes // want `malformed //detlint:lock-escapes: missing reason` `must be in a function declaration's doc comment`
var e int

//detlint:dedup-check with args // want `malformed //detlint:dedup-check: takes no arguments` `must be in a function declaration's doc comment`
var g int

// escapes hands its locks to the prepared-transaction record.
//
//detlint:lock-escapes locks transfer to the prepared-txn record
func escapes() {}

// checker consults the at-least-once dedup cache.
//
//detlint:dedup-check
func checker() {}

func misplacedDedup() {
	//detlint:dedup-check // want `must be in a function declaration's doc comment`
	_ = 0
}
