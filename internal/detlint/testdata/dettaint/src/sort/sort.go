// Package sort is a stub of the standard library package: a sort call on an
// order-tainted slice cures the taint.
package sort

func Strings(x []string)                    {}
func Slice(x any, less func(i, j int) bool) {}
