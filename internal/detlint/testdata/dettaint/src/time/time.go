// Package time is a stub of the standard library package: Now/Since are
// configured nondeterminism sources.
package time

// Time is a stub instant.
type Time struct{ ns int64 }

func (t Time) Unix() int64 { return t.ns }

func Now() Time { return Time{} }
