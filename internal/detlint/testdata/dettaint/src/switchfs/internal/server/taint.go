// Package server exercises dettaint: nondeterminism sources (wall clock,
// pool internals, map-order slices — including ones built by helpers in
// other packages, via taintedResult facts) must not reach packet emissions
// or bench rows unless sorted or declared deterministic at the source.
package server

import (
	"sort"
	"time"

	"switchfs/internal/bench"
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// sendWorkers leaks pool internals into a packet payload.
func sendWorkers(p *env.Proc, sim *env.Sim) {
	n := sim.WorkerCount()
	p.Send(1, n) // want `WorkerCount.* flows into a packet emission`
}

// sendWorkersDeclared declares the value deterministic at the source: the
// taint stops there.
func sendWorkersDeclared(p *env.Proc, sim *env.Sim) {
	n := sim.WorkerCount() //detlint:ignore dettaint -- pool high-water is deterministic under the token-passing scheduler
	p.Send(1, n)
}

// sendNames lets a cross-package order-tainted slice reach a send: maprange
// generalized beyond one function body.
func sendNames(p *env.Proc, m map[string]int) {
	names := core.Names(m)
	p.Send(1, names) // want `map-iteration order via Names.* flows into a packet emission`
}

// sendSorted sorts on the caller side before sending: clean.
func sendSorted(p *env.Proc, m map[string]int) {
	names := core.Names(m)
	sort.Strings(names)
	p.Send(1, names)
}

// sendPresorted uses the helper that sorted for us: clean.
func sendPresorted(p *env.Proc, m map[string]int) {
	p.Send(1, core.Sorted(m))
}

// sendCount sends only the length, which is order-independent: clean.
func sendCount(p *env.Proc, m map[string]int) {
	names := core.Names(m)
	p.Send(1, len(names))
}

// stampFigure writes the wall clock into a bench field.
func stampFigure(fig *bench.Figure) {
	fig.WallSeconds = float64(time.Now().Unix()) // want `stored into a bench/figure field`
}

// buildResult stores pool internals into a result literal.
func buildResult(sim *env.Sim) bench.Result {
	return bench.Result{Workers: sim.WorkerCount()} // want `stored into a bench/figure literal`
}

// localNames is the single-function shape: an unsorted map snapshot sent
// from the same body (what maprange already catches; dettaint agrees).
func localNames(p *env.Proc, m map[string]int) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	p.Send(1, out) // want `map-iteration order.* flows into a packet emission`
}
