// Package env stubs the runtime for the dettaint testdata: Proc.Send is the
// emission sink and Sim.WorkerCount the configured pool-internals source.
package env

// Proc is a stub of the simulator process handle.
type Proc struct{}

func (p *Proc) Send(to uint32, msg any) {}

// Sim is a stub of the simulation handle.
type Sim struct{}

// WorkerCount is the pool high-water mark: scheduler-internal, configured
// as a nondeterminism source.
func (s *Sim) WorkerCount() int { return 0 }
