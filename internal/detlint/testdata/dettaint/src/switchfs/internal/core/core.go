// Package core provides the cross-package half of the dettaint suite: a
// helper that returns a map snapshot in iteration order exports a
// taintedResult fact, and one that sorts before returning stays clean.
package core

import "sort"

// Names returns the map's keys in iteration order: order-tainted, callers
// must sort before the value reaches a sink.
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sorted returns the keys sorted: the sort cures the order taint, so no
// fact is exported.
func Sorted(m map[string]int) []string {
	out := Names(m)
	sort.Strings(out)
	return out
}
