// Package bench stubs the bench schema: Figure and Result are configured
// sink types — nondeterminism must not land in their fields.
package bench

// Figure is a stub figure.
type Figure struct {
	Rows        [][]string
	WallSeconds float64
}

// Result is a stub per-run result.
type Result struct {
	Workers   int
	CreatedAt int64
}
