// Package wal stubs the write-ahead log for the detlint testdata: walorder
// keys on the Append method of this import path.
package wal

// LSN is a log sequence number.
type LSN uint64

// Log is a stub log.
type Log struct{}

func (l *Log) Append(kind uint8, payload []byte) (LSN, error) { return 0, nil }
func (l *Log) MarkApplied(lsn LSN) error                      { return nil }
