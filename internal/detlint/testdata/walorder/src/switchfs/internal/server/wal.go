package server

import (
	"switchfs/internal/env"
	"switchfs/internal/wal"
)

const (
	recCommit uint8 = iota + 1
	recDecide
)

type Server struct {
	p *env.Proc
	w *wal.Log
}

func (s *Server) reply(to env.NodeID, msg any) { s.p.Send(to, msg) }

// mustAppend takes the record kind from a parameter: a call site passing a
// record constant is an append point for that record (appendsParam).
func mustAppend(l *wal.Log, kind uint8, payload []byte) wal.LSN {
	lsn, _ := l.Append(kind, payload)
	return lsn
}

// recordDecide unconditionally appends recDecide: call sites count as append
// points through the appendsConst fixpoint.
func (s *Server) recordDecide() {
	mustAppend(s.w, recDecide, nil)
}

// goodDecide appends before the send — the straight-line pass case.
//
//detlint:wal-before-send recDecide
func (s *Server) goodDecide(to env.NodeID) {
	mustAppend(s.w, recDecide, nil)
	s.reply(to, "decide")
}

// badDecide emits first: the exact crash-divergence bug class.
//
//detlint:wal-before-send recDecide
func (s *Server) badDecide(to env.NodeID) {
	s.reply(to, "decide") // want `packet emission reachable before the recDecide WAL append`
	mustAppend(s.w, recDecide, nil)
}

// branchDecide appends on only one branch: the merge point is reachable from
// entry without passing an append.
//
//detlint:wal-before-send recDecide
func (s *Server) branchDecide(to env.NodeID, fast bool) {
	if !fast {
		mustAppend(s.w, recDecide, nil)
	}
	s.reply(to, "decide") // want `packet emission reachable before the recDecide WAL append`
}

// bothBranches appends on every path — one arm through the recordDecide
// helper, which the appendsConst fixpoint must classify.
//
//detlint:wal-before-send recDecide
func (s *Server) bothBranches(to env.NodeID, fast bool) {
	if fast {
		mustAppend(s.w, recDecide, nil)
	} else {
		s.recordDecide()
	}
	s.reply(to, "decide")
}

// viaScoped pins only the named emitter: the request Send before the append
// is deliberately out of scope, the via= reply after it is dominated.
//
//detlint:wal-before-send recCommit via=reply
func (s *Server) viaScoped(to env.NodeID) {
	s.p.Send(to, "request")
	mustAppend(s.w, recCommit, nil)
	s.reply(to, "commit")
}

// noAppend annotates a record the function never appends.
//
//detlint:wal-before-send recCommit
func (s *Server) noAppend(to env.NodeID) { // want `never appends WAL record recCommit`
	s.reply(to, "oops")
}

// missingVia names an emitter that is never called.
//
//detlint:wal-before-send recCommit via=nosuch
func (s *Server) missingVia(to env.NodeID) { // want `via target "nosuch" is never called`
	mustAppend(s.w, recCommit, nil)
	s.reply(to, "x")
}

// litExcluded: sends inside function literals run on their own schedule and
// are outside this function's CFG, so the early closure body is not flagged.
//
//detlint:wal-before-send recDecide
func (s *Server) litExcluded(to env.NodeID) {
	fail := func() { s.p.Send(to, "error") }
	_ = fail
	mustAppend(s.w, recDecide, nil)
	s.reply(to, "decide")
}

// deferExcluded: deferred sends run at return, after every append on the
// path, and are skipped.
//
//detlint:wal-before-send recDecide
func (s *Server) deferExcluded(to env.NodeID) {
	defer s.reply(to, "done")
	mustAppend(s.w, recDecide, nil)
	s.reply(to, "decide")
}

// abortPath carries the presumed-abort suppression idiom.
//
//detlint:wal-before-send recDecide
func (s *Server) abortPath(to env.NodeID, ok bool) {
	if !ok {
		//detlint:ignore walorder -- presumed abort: an incarnation with no record answers abort, the same outcome
		s.reply(to, "abort")
		return
	}
	mustAppend(s.w, recDecide, nil)
	s.reply(to, "decide")
}
