// Package sort is a stub of the standard library package for the detlint
// testdata: maprange's sorted-snapshot exemption keys on calls into it.
package sort

func Slice(x any, less func(i, j int) bool) {}
func Ints(x []int)                          {}
