package server

import (
	"sort"

	"switchfs/internal/env"
)

type clog struct{ owner env.NodeID }

type Server struct {
	p     *env.Proc
	clogs map[uint64]*clog
	peers map[env.NodeID]bool
}

// reply is a same-package wrapper around the emission root; the send graph
// must close over it.
func (s *Server) reply(to env.NodeID, msg any) { s.p.Send(to, msg) }

// flushAll is the PR5 bug shape: iterating the change-log table and emitting
// one packet per entry leaks the per-process randomized map order into the
// message sequence (and into the per-send RNG draws).
func (s *Server) flushAll() {
	for _, c := range s.clogs {
		s.p.Send(c.owner, "flush") // want `packet emission inside range over map`
	}
}

// notifyPeers emits through the wrapper — still flagged.
func (s *Server) notifyPeers() {
	for n := range s.peers {
		s.reply(n, "hello") // want `packet emission inside range over map`
	}
}

// closureLeak emits through a closure bound to a local — still flagged.
func (s *Server) closureLeak() {
	fail := func(n env.NodeID) { s.p.Send(n, "x") }
	for n := range s.peers {
		fail(n) // want `packet emission inside range over map`
	}
}

// sortedClogs is the approved idiom: snapshot, sort after the loop, iterate
// the slice. The append is exempt because the function sorts it.
func (s *Server) sortedClogs() []uint64 {
	ids := make([]uint64, 0, len(s.clogs))
	for id := range s.clogs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// flushSorted iterates the sorted snapshot — a slice range, not governed.
func (s *Server) flushSorted() {
	for _, id := range s.sortedClogs() {
		s.p.Send(s.clogs[id].owner, "flush")
	}
}

// keysUnsorted lets the map-ordered slice escape without a sort.
func (s *Server) keysUnsorted() []uint64 {
	var ids []uint64
	for id := range s.clogs {
		ids = append(ids, id) // want `append to ids inside range over map without a sort`
	}
	return ids
}

// total is commutative accumulation: op-assign is order-insensitive.
func (s *Server) total() int {
	n := 0
	for _, c := range s.clogs {
		n += int(c.owner)
	}
	return n
}

// anyPeer is last-writer-wins: the surviving value follows iteration order.
func (s *Server) anyPeer() env.NodeID {
	var last env.NodeID
	for n := range s.peers {
		last = n // want `order-dependent write to last inside range over map`
	}
	return last
}

// invert stores keyed by the loop variables: per-entry, deterministic.
func invert(m map[uint64]env.NodeID) map[env.NodeID]uint64 {
	out := make(map[env.NodeID]uint64)
	for k, v := range m {
		out[v] = k
	}
	return out
}

// firstWins stores to a loop-independent key: last writer wins in map order.
func firstWins(m map[uint64]env.NodeID, sink map[string]env.NodeID) {
	for _, v := range m {
		sink["winner"] = v // want `order-dependent store inside range over map`
	}
}

// prune deletes from the ranged map and per-entry from another — both fine.
func prune(m map[uint64]bool, other map[uint64]bool) {
	for k, ok := range m {
		if !ok {
			delete(m, k)
		}
		delete(other, k)
	}
}

// dropOne deletes a loop-independent key: which iteration wins is random.
func dropOne(m map[uint64]bool, other map[uint64]bool) {
	for range m {
		delete(other, 7) // want `delete with loop-independent key inside range over map`
	}
}

// loggedBroadcast shows a justified suppression: the reporter must honor it.
func (s *Server) loggedBroadcast() {
	for n := range s.peers {
		//detlint:ignore maprange -- debug-only dump, never runs under the simulator
		s.p.Send(n, "dbg")
	}
}
