// Package env stubs the dual-mode runtime for the detlint testdata: just
// enough surface for the analyzers' emission-root detection (Proc.Send,
// Proc.Spawn, Env.After). The import path mirrors the real runtime so the
// suite's embedded config applies unchanged.
package env

// NodeID identifies a simulated node.
type NodeID uint32

// Proc is a stub of the simulator process handle.
type Proc struct{}

func (p *Proc) Send(to NodeID, msg any)           {}
func (p *Proc) Spawn(name string, fn func(*Proc)) {}
func (p *Proc) Compute(cost int64)                {}

// Env is a stub of the runtime handle.
type Env struct{}

func (e *Env) After(delay int64, fn func(*Proc)) {}
