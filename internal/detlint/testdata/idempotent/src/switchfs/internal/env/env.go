// Package env stubs the dual-mode runtime for the idempotent testdata: the
// send graph's emission roots are the Send/Spawn methods at this path.
package env

// NodeID identifies a simulated node.
type NodeID uint32

// Proc is a stub of the simulator process handle.
type Proc struct{}

func (p *Proc) Send(to NodeID, msg any)           {}
func (p *Proc) Spawn(name string, fn func(*Proc)) {}
