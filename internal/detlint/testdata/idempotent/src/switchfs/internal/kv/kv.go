// Package kv stubs the key-value store: Put/Delete are state mutations for
// the idempotent analyzer's effect lattice.
package kv

// Store is a stub store.
type Store struct{}

func (s *Store) Get(key []byte) ([]byte, bool) { return nil, false }
func (s *Store) Put(key, val []byte) bool      { return false }
func (s *Store) Delete(key []byte) bool        { return false }
