// Package wire stubs the message package for the idempotent testdata: a
// request struct embedding ReqCommon is retransmittable, and handlers for
// it must consult the dedup cache before their first side effect.
package wire

// ReqCommon carries the fields every retransmittable client request shares.
type ReqCommon struct {
	RPC    uint64
	Client uint32
}

// MutateReq is a stub mutating request.
type MutateReq struct {
	ReqCommon
	Name string
}

// StatReq is a stub read-only request.
type StatReq struct {
	ReqCommon
	Name string
}

// MutateResp is a stub response body.
type MutateResp struct{ OK bool }
