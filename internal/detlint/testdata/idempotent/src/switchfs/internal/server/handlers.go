// Package server exercises idempotent: a handler for a retransmittable RPC
// (request embeds wire.ReqCommon) that mutates state must consult the dedup
// cache — a //detlint:dedup-check helper — before its first side effect.
// The canonical positive case is the PR 4 shape: a duplicate request
// re-executing the mutation after the first execution already replied.
package server

import (
	"switchfs/internal/env"
	"switchfs/internal/kv"
	"switchfs/internal/wal"
	"switchfs/internal/wire"
)

const recInode = uint8(1)

type Server struct {
	wal   *wal.Log
	kv    *kv.Store
	dedup map[uint64]*wire.MutateResp
	store map[string]int
	tally map[string]int
}

// replayIfDuplicate replies the cached response for a duplicate RPC.
//
//detlint:dedup-check
func (s *Server) replayIfDuplicate(p *env.Proc, rc *wire.ReqCommon) bool {
	if resp, ok := s.dedup[rc.RPC]; ok {
		p.Send(env.NodeID(rc.Client), resp)
		return true
	}
	return false
}

// handleMutate checks before any effect: clean.
func (s *Server) handleMutate(p *env.Proc, req *wire.MutateReq) {
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	s.wal.Append(recInode, nil)
	s.kv.Put([]byte(req.Name), nil)
	p.Send(env.NodeID(req.Client), &wire.MutateResp{OK: true})
}

// handleChmod appends to the WAL before the check: a retransmitted chmod
// re-executes the append (the PR 4 re-execution shape).
func (s *Server) handleChmod(p *env.Proc, req *wire.MutateReq) {
	s.wal.Append(recInode, nil) // want `side effect reachable before the dedup-cache check`
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	p.Send(env.NodeID(req.Client), &wire.MutateResp{OK: true})
}

// handleWrite mutates receiver state and never consults the cache at all.
func (s *Server) handleWrite(p *env.Proc, req *wire.MutateReq) { // want `never consults the dedup cache`
	s.store[req.Name] = 1
	p.Send(env.NodeID(req.Client), &wire.MutateResp{OK: true})
}

// handleStat is read-only — replying twice with the same answer is harmless
// — and the commutative tally does not make it mutating: clean, no check
// required.
func (s *Server) handleStat(p *env.Proc, req *wire.StatReq) {
	s.tally[req.Name]++
	p.Send(env.NodeID(req.Client), &wire.MutateResp{OK: true})
}

// handleLink reaches its mutation through a helper: the effect lattice sees
// through commit.
func (s *Server) handleLink(p *env.Proc, req *wire.MutateReq) {
	s.commit(req.Name) // want `side effect reachable before the dedup-cache check`
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	p.Send(env.NodeID(req.Client), &wire.MutateResp{OK: true})
}

func (s *Server) commit(name string) {
	s.store[name] = 1
}
