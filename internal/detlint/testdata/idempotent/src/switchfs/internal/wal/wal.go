// Package wal stubs the write-ahead log: Append is a state mutation for the
// idempotent analyzer's effect lattice.
package wal

// LSN is a log sequence number.
type LSN uint64

// Log is a stub log.
type Log struct{}

func (l *Log) Append(kind uint8, payload []byte) (LSN, error) { return 0, nil }
