// Package wire stubs the message package for the sendalias testdata: any
// type declared at this import path is a wire value the analyzer tracks
// across Send.
package wire

// DSHeader is a stub in-packet header.
type DSHeader struct {
	Ret uint32
}

// Packet is the stub wire packet.
type Packet struct {
	Dst   uint32
	Seq   uint64
	Trace uint64
	DS    *DSHeader
}

// Msg is the stub message interface.
type Msg interface{ msg() }

// MutateResp is a stub response body.
type MutateResp struct {
	Seq uint64
}

func (*MutateResp) msg() {}
