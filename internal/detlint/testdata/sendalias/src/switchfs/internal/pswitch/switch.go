// Package pswitch exercises sendalias: once a packet has crossed Send it is
// owned by the simulator (the switch may forward it, a retransmission may
// re-deliver it), so writing to it afterwards is the PR 8 copy-before-stamp
// bug class. The discipline is out := *pkt; mutate out; send &out.
package pswitch

import (
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// forwardThenStamp mutates the packet after forwarding it.
func forwardThenStamp(p *env.Proc, pkt *wire.Packet) {
	p.Send(pkt.Dst, pkt)
	pkt.Trace = 7 // want `write to a packet that was already passed to Send`
}

// copyThenStamp follows the discipline: clean.
func copyThenStamp(p *env.Proc, pkt *wire.Packet) {
	out := *pkt
	out.Trace = 7
	p.Send(out.Dst, &out)
}

// retryMutate stamps the packet between retransmissions: the receiver of
// the first delivery and the in-flight second copy diverge (PR 2 shape).
func retryMutate(p *env.Proc, pkt *wire.Packet, tries int) {
	for i := 0; i < tries; i++ {
		p.Send(pkt.Dst, pkt)
		pkt.Seq++ // want `write to a packet that was already passed to Send`
	}
}

// retryResend builds once and resends unchanged (the asyncCommit shape):
// clean across the back edge.
func retryResend(p *env.Proc, dst uint32, tries int) {
	pkt := &wire.Packet{Dst: dst}
	for i := 0; i < tries; i++ {
		p.Send(pkt.Dst, pkt)
	}
}

// rebind replaces the whole variable with a fresh packet: the mark clears.
func rebind(p *env.Proc, pkt *wire.Packet) {
	p.Send(pkt.Dst, pkt)
	pkt = &wire.Packet{Dst: 1}
	pkt.Seq = 1
	p.Send(pkt.Dst, pkt)
}

// queryReply is the DSQuery reply buffer: the wire value lives inside a
// switch-local struct, so marking follows the argument's wire type.
type queryReply struct {
	pkt wire.Packet
	hdr wire.DSHeader
}

// aliasThroughStruct stamps before the send (clean) and then writes the
// embedded packet after it left (diagnostic).
func aliasThroughStruct(p *env.Proc, in *wire.Packet) {
	out := queryReply{pkt: *in, hdr: *in.DS}
	out.hdr.Ret = 1
	p.Send(out.pkt.Dst, &out.pkt)
	out.pkt.Trace = 9 // want `write to a packet that was already passed to Send`
}

// reply is a sendish wrapper: passing a packet to it marks the packet just
// like a direct Send.
func reply(p *env.Proc, pkt *wire.Packet) {
	p.Send(pkt.Dst, pkt)
}

// viaWrapper mutates after the wrapper sent the packet.
func viaWrapper(p *env.Proc, pkt *wire.Packet) {
	reply(p, pkt)
	pkt.Seq = 2 // want `write to a packet that was already passed to Send`
}
