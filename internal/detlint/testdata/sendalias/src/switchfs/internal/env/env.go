// Package env stubs the dual-mode runtime for the sendalias testdata: the
// analyzer's emission roots are the Send/Spawn methods at this import path.
package env

// Proc is a stub of the simulator process handle. Send's destination is a
// bare uint32 so the suite's packets can use their Dst field directly.
type Proc struct{}

func (p *Proc) Send(to uint32, msg any)           {}
func (p *Proc) Spawn(name string, fn func(*Proc)) {}
