package server

import (
	"sync"
	"sync/atomic"
)

type waiter struct {
	mu sync.Mutex     // want `sync.Mutex in a simulator-scheduled package`
	wg sync.WaitGroup // want `sync.WaitGroup in a simulator-scheduled package`
}

type table struct {
	lk sync.RWMutex // want `sync.RWMutex in a simulator-scheduled package`
}

var cv sync.Cond // want `sync.Cond in a simulator-scheduled package`

func spawnRaw(f func()) {
	go f() // want `go statement in a simulator-scheduled package`
}

func chanOps(c chan int) int { // want `channel type in a simulator-scheduled package`
	c <- 1     // want `channel send in a simulator-scheduled package`
	return <-c // want `channel receive in a simulator-scheduled package`
}

func selectOn(c chan int) { // want `channel type in a simulator-scheduled package`
	select { // want `select in a simulator-scheduled package`
	case <-c: // want `channel receive in a simulator-scheduled package`
	}
}

func drain(c chan int) int { // want `channel type in a simulator-scheduled package`
	n := 0
	for v := range c { // want `range over channel in a simulator-scheduled package`
		n += v
	}
	return n
}

// cache carries the documented suppression idiom: a Real-mode guard that is
// provably never held across a park, suppressed at the declaration with a
// written reason. Methods on the suppressed field are not re-reported.
type cache struct {
	mu sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the map below; leaf section, never held across a park
	m  map[string]int
}

func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// bump uses sync/atomic, which stays legal: no park, no observable ordering.
var hits int64

func bump() { atomic.AddInt64(&hits, 1) }
