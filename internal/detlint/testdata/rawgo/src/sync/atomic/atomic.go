// Package atomic is a stub of the standard library package for the detlint
// testdata: rawgo deliberately leaves it legal.
package atomic

func AddInt64(p *int64, delta int64) int64 { return 0 }
func LoadInt64(p *int64) int64             { return 0 }
