// Package sync is a stub of the standard library package for the detlint
// testdata: rawgo flags the blocking types by package path and name.
package sync

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{}

func (w *WaitGroup) Add(n int) {}
func (w *WaitGroup) Done()     {}
func (w *WaitGroup) Wait()     {}

type Cond struct{}

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
