// Package server exercises lockpair: every sim lock acquired must be
// released on every return path, through a defer, a branch, a releasing
// closure or a releasing helper — or the function declares the handoff with
// //detlint:lock-escapes. The canonical positive case is the PR 5 2PC shape:
// a prepare handler that gives up (duplicate, ancestor conflict) and returns
// with the key locks still held.
package server

import "switchfs/internal/env"

// keyLock mirrors the 2PC per-key lock record in internal/server/txn.go.
type keyLock struct {
	lock env.Mutex
}

type Server struct {
	renameMu env.Mutex
	statesMu env.RWMutex
}

func work() {}

// deferred releases through a defer: clean.
func (s *Server) deferred(p *env.Proc) {
	s.renameMu.Lock(p)
	defer s.renameMu.Unlock()
	work()
}

// branches releases explicitly on both paths: clean.
func (s *Server) branches(p *env.Proc, ok bool) {
	s.renameMu.Lock(p)
	if ok {
		s.renameMu.Unlock()
		return
	}
	work()
	s.renameMu.Unlock()
}

// prepareGiveUp is the PR 5 lock-leak shape: the duplicate-prepare branch
// returns without releasing the key lock it just took, wedging every later
// transaction on that key.
func (s *Server) prepareGiveUp(p *env.Proc, kl *keyLock, dup bool) {
	kl.lock.Lock(p) // want `still held on a return path`
	if dup {
		return // gave up without abort
	}
	work()
	kl.lock.Unlock()
}

// acquireLeak leaks a semaphore slot on the failure path.
func (s *Server) acquireLeak(p *env.Proc, sem *env.Semaphore, fail bool) bool {
	sem.Acquire(p) // want `still held on a return path`
	if fail {
		return false
	}
	sem.Release()
	return true
}

// mixedMode takes the lock in a branch-selected mode and releases in the
// same shape: Lock/RLock and Unlock/RUnlock pair as one class, so the
// path-insensitive check stays clean.
func (s *Server) mixedMode(p *env.Proc, write bool) {
	if write {
		s.statesMu.Lock(p)
	} else {
		s.statesMu.RLock(p)
	}
	work()
	if write {
		s.statesMu.Unlock()
	} else {
		s.statesMu.RUnlock()
	}
}

// closureRelease releases through a local closure on the failure path (the
// doMutate fail-closure pattern): clean.
func (s *Server) closureRelease(p *env.Proc, kl *keyLock, bad bool) {
	kl.lock.Lock(p)
	fail := func() {
		kl.lock.Unlock()
	}
	if bad {
		fail()
		return
	}
	work()
	kl.lock.Unlock()
}

// helperRelease hands the lock to a same-package helper that releases its
// parameter (the syncCommit pattern): clean.
func (s *Server) helperRelease(p *env.Proc, kl *keyLock) {
	kl.lock.Lock(p)
	finish(kl)
}

func finish(kl *keyLock) {
	work()
	kl.lock.Unlock()
}

// lockAll pairs acquire and release inside the loop body: clean.
func (s *Server) lockAll(p *env.Proc, keys []*keyLock) {
	for _, l := range keys {
		l.lock.Lock(p)
		work()
		l.lock.Unlock()
	}
}

// lockTxnKeys intentionally returns holding every key lock: the locks
// transfer to the prepared-transaction record and are released by the
// decision handler. The annotation declares the handoff.
//
//detlint:lock-escapes locks transfer to the prepared-txn record; handleTxnDecision releases them
func (s *Server) lockTxnKeys(p *env.Proc, keys []*keyLock) {
	for _, l := range keys {
		l.lock.Lock(p)
	}
}

// spawnLeak acquires inside a spawned process body and never releases: the
// literal has its own pairing obligation.
func (s *Server) spawnLeak(p *env.Proc) {
	p.Spawn("w", func(q *env.Proc) {
		s.renameMu.Lock(q) // want `still held on a return path`
	})
}

// suppressed documents an intentional cross-process unlock at the site.
func (s *Server) suppressed(p *env.Proc, parked bool) {
	s.renameMu.Lock(p) //detlint:ignore lockpair -- the ack handler running on another process unlocks after the commit ack
	if parked {
		return
	}
	s.renameMu.Unlock()
}
