// Package env stubs the dual-mode runtime for the lockpair testdata: the
// analyzer keys on the Lock/RLock/Acquire and Unlock/RUnlock/Release methods
// of the Mutex, RWMutex and Semaphore types at this import path.
package env

// NodeID identifies a simulated node.
type NodeID uint32

// Proc is a stub of the simulator process handle.
type Proc struct{}

func (p *Proc) Send(to NodeID, msg any)           {}
func (p *Proc) Spawn(name string, fn func(*Proc)) {}

// Mutex is a stub of the FIFO-handoff sim mutex.
type Mutex struct{}

func (m *Mutex) Lock(p *Proc)         {}
func (m *Mutex) TryLock(p *Proc) bool { return true }
func (m *Mutex) Unlock()              {}

// RWMutex is a stub of the sim reader-writer lock.
type RWMutex struct{}

func (m *RWMutex) Lock(p *Proc)  {}
func (m *RWMutex) RLock(p *Proc) {}
func (m *RWMutex) Unlock()       {}
func (m *RWMutex) RUnlock()      {}

// Semaphore is a stub of the sim counting semaphore.
type Semaphore struct{}

func (s *Semaphore) Acquire(p *Proc) {}
func (s *Semaphore) Release()        {}
