package server

import (
	"math/rand"
	"time"
)

func badNow() time.Time {
	return time.Now() // want `time.Now in a simulator-visible package`
}

func badSleep() {
	time.Sleep(1) // want `time.Sleep in a simulator-visible package`
}

func badSince(t time.Time) int64 {
	return int64(time.Since(t)) // want `time.Since in a simulator-visible package`
}

func badRand() int {
	return rand.Intn(10) // want `math/rand.Intn in a simulator-visible package`
}

// badMention passes the function as a value — mentioning it is enough.
func badMention(deadline func(func() time.Time)) {
	deadline(time.Now) // want `time.Now in a simulator-visible package`
}

// goodSeeded draws from an explicitly seeded generator: methods are legal.
func goodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// goodArith uses Time methods on values handed in by the runtime.
func goodArith(a, b time.Time) time.Duration { return a.Sub(b) }

// suppressedNow shows a justified suppression: the reporter must honor it.
func suppressedNow() time.Time {
	//detlint:ignore wallclock -- startup banner only, before the simulation begins
	return time.Now()
}
