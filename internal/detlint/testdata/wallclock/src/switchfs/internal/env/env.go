// Package env mirrors the dual-mode runtime's import path so the embedded
// wallclock allowlist (internal/env/real.go) is exercised as configured.
package env

// Clock is a stub of the runtime's time source.
type Clock struct{ now int64 }
