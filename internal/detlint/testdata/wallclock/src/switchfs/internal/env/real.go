package env

import "time"

// real.go matches the wallclockAllowFiles suffix: the Real runtime is the
// one place wall-clock reads are legal, so nothing below is a diagnostic.

func realNow() time.Time { return time.Now() }

func realSleep(d time.Duration) { time.Sleep(d) }
