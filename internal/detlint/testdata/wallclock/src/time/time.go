// Package time is a stub of the standard library package for the detlint
// testdata: wallclock matches functions by package path and name only.
package time

// Duration is a stub duration.
type Duration int64

// Time is a stub instant.
type Time struct{ ns int64 }

func (t Time) Sub(u Time) Duration { return Duration(t.ns - u.ns) }

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Sleep(d Duration)      {}
