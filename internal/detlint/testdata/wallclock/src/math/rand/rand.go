// Package rand is a stub of the standard library package for the detlint
// testdata: the package-global convenience functions are the banned surface,
// the seeded constructors and *Rand methods are the replacement.
package rand

type Source struct{}

type Rand struct{}

func New(src *Source) *Rand        { return &Rand{} }
func NewSource(seed int64) *Source { return &Source{} }

func (r *Rand) Intn(n int) int { return 0 }

func Intn(n int) int   { return 0 }
func Int() int         { return 0 }
func Float64() float64 { return 0 }
