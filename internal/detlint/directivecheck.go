package detlint

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Detdirective validates the suite's own directives in every package:
// suppressions must name known analyzers and carry a written reason, and
// wal-before-send annotations must be well-formed and sit on a function
// declaration. A suppression that cannot justify itself is a diagnostic —
// the suppression policy is part of the invariant.
var Detdirective = &analysis.Analyzer{
	Name: "detdirective",
	Doc:  "validate //detlint: directives (ignore reasons, annotation placement)",
	Run:  runDetdirective,
}

func runDetdirective(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	for _, f := range filesOf(pass) {
		// Doc comments attached to function declarations are legal homes
		// for wal-before-send; remember their comment groups.
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkDirectiveComment(r, c, funcDocs[cg])
			}
		}
	}
	return nil, nil
}

func checkDirectiveComment(r *reporter, c *ast.Comment, inFuncDoc bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return
	}
	if rest, ok := cutDirective(c.Text, directiveIgnore); ok {
		if d := parseIgnore(c.Pos(), rest); d.malformed != "" {
			r.reportf(c.Pos(), "malformed //detlint:ignore: %s", d.malformed)
		}
		return
	}
	if rest, ok := cutDirective(c.Text, directiveWalSend); ok {
		d := parseWalSend(c.Pos(), rest)
		if d.bad != "" {
			r.reportf(c.Pos(), "malformed //detlint:wal-before-send: %s", d.bad)
		}
		if !inFuncDoc {
			r.reportf(c.Pos(), "//detlint:wal-before-send must be in a function declaration's doc comment")
		}
		return
	}
	if reason, ok := cutDirective(c.Text, directiveLockEscape); ok {
		if directiveArg(reason) == "" {
			r.reportf(c.Pos(), "malformed //detlint:lock-escapes: missing reason (want `//detlint:lock-escapes <reason>`)")
		}
		if !inFuncDoc {
			r.reportf(c.Pos(), "//detlint:lock-escapes must be in a function declaration's doc comment")
		}
		return
	}
	if rest, ok := cutDirective(c.Text, directiveDedupCheck); ok {
		if directiveArg(rest) != "" {
			r.reportf(c.Pos(), "malformed //detlint:dedup-check: takes no arguments")
		}
		if !inFuncDoc {
			r.reportf(c.Pos(), "//detlint:dedup-check must be in a function declaration's doc comment")
		}
		return
	}
	name := c.Text[len(directivePrefix):]
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	r.reportf(c.Pos(), "unknown detlint directive %q (known: ignore, wal-before-send, lock-escapes, dedup-check)", name)
}
