package detlint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Dettaint tracks nondeterminism from its sources into the artifacts that
// must be seed-stable: packet payloads, WAL records, and bench rows. The
// sources are configured in detlint.json (taintSources) — wall-clock reads,
// scheduler internals like env.Sim.WorkerCount, allocator probes like
// stats.ReadMem — plus slices built in map-iteration order, which
// generalizes maprange across function and package boundaries: a helper
// that returns an unsorted map snapshot exports a fact, and a caller in any
// governed package that lets that value reach a sink is diagnosed, unless
// it sorts the slice first (the caller-side sortedClogs idiom).
//
// Propagation is a per-function fixpoint over assignments, coarse at struct
// granularity (tainting res.Workers taints res). Returning a tainted value
// exports a taintedResult object fact, so the taint crosses packages under
// `go vet` without whole-program analysis.
//
// A //detlint:ignore dettaint on the source line declares the value
// deterministic (with the written reason) and stops propagation there —
// e.g. WorkerCount under the token-passing scheduler, or CreatedAt stamps
// that -stamp=false zeroes before comparison.
var Dettaint = &analysis.Analyzer{
	Name:      "dettaint",
	Doc:       "track nondeterminism sources into packet payloads, WAL records and bench rows",
	FactTypes: []analysis.Fact{(*taintedResult)(nil)},
	Run:       runDettaint,
}

func init() {
	addListFlag(&Dettaint.Flags, &conf.TaintPackages, "pkgs",
		"packages governed by the dettaint analyzer")
	addListFlag(&Dettaint.Flags, &conf.TaintSources, "sources",
		"nondeterminism source functions (pkg.Func or pkg.Type.Method)")
	addListFlag(&Dettaint.Flags, &conf.TaintSinkTypes, "sinks",
		"sink types for nondeterministic values (pkg.Type)")
}

// taintedResult is the cross-package fact: the function's return value
// derives from the named nondeterminism source.
type taintedResult struct {
	Reason string
}

func (*taintedResult) AFact()           {}
func (f *taintedResult) String() string { return "taintedResult(" + f.Reason + ")" }

// reasonMapOrder marks order taint, the one flavour a sort cures.
const reasonMapOrder = "map-iteration order"

// funcKeys returns the config-matching names for a function object:
// "pkg.Func" and, for methods, "pkg.Recv.Method".
func funcKeys(obj *types.Func) []string {
	if obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	keys := []string{path + "." + obj.Name()}
	if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
		if name := recvTypeName(sig); name != "" {
			keys = append(keys, path+"."+name+"."+obj.Name())
		}
	}
	return keys
}

// sourceReason returns the matching taintSources entry for a callee.
func sourceReason(obj *types.Func) (string, bool) {
	for _, k := range funcKeys(obj) {
		for _, s := range conf.TaintSources {
			if k == s {
				return s, true
			}
		}
	}
	return "", false
}

// isSinkType reports whether t (sans pointer) is a configured sink type.
func isSinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil {
		return false
	}
	key := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	for _, s := range conf.TaintSinkTypes {
		if key == s {
			return true
		}
	}
	return false
}

func runDettaint(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.TaintPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	files := filesOf(pass)
	r := newReporter(pass)
	g := newSendGraph(pass, files)
	ap := newAppendGraph(pass, files)

	var fns []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, isFn := d.(*ast.FuncDecl); isFn && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}
	// Phase 1: propagate facts to a fixpoint, so same-package helpers are
	// classified whatever their declaration order. Phase 2 reports.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if checkTaint(pass, r, g, ap, fn, false) {
				changed = true
			}
		}
	}
	for _, fn := range fns {
		checkTaint(pass, r, g, ap, fn, true)
	}
	return nil, nil
}

// taintState maps objects to the reason they are tainted.
type taintState map[types.Object]string

// checkTaint runs source → propagation → sink over one declaration
// (closures included: captured locals share the object space). With report
// unset it only computes and exports facts; it returns whether a new fact
// was exported.
func checkTaint(pass *analysis.Pass, r *reporter, g *sendGraph, ap *appendGraph,
	fn *ast.FuncDecl, report bool) bool {

	tainted := make(taintState)

	// sourceCallReason classifies a call as a taint source: a configured
	// nondeterminism function or a callee with an exported taintedResult
	// fact. A dettaint suppression on the call's line declares the value
	// deterministic and stops propagation.
	sourceCallReason := func(call *ast.CallExpr) (string, bool) {
		callee := calleeFunc(pass, call)
		if callee == nil {
			return "", false
		}
		reason, isSource := sourceReason(callee)
		if !isSource {
			var fact taintedResult
			if !pass.ImportObjectFact(callee, &fact) {
				return "", false
			}
			reason = fact.Reason + " via " + callee.Name()
		}
		if r.idx.suppressed("dettaint", call.Pos()) {
			return "", false
		}
		return reason, true
	}

	// exprTaint reports whether an expression carries taint. len/cap of a
	// tainted collection are deterministic and stay clean.
	var exprTaint func(e ast.Expr) (string, bool)
	exprTaint = func(e ast.Expr) (string, bool) {
		reason, found := "", false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isBuiltinCall(pass, n, "len") || isBuiltinCall(pass, n, "cap") {
					return false
				}
				if why, isSource := sourceCallReason(n); isSource {
					reason, found = why, true
					return false
				}
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil {
					obj = pass.TypesInfo.Defs[n]
				}
				if why, isTainted := tainted[obj]; isTainted {
					reason, found = why, true
					return false
				}
			}
			return true
		})
		return reason, found
	}

	taintLHS := func(lhs ast.Expr, reason string) bool {
		var obj types.Object
		if id, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
			obj = pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
		} else if v := baseVarOf(pass, lhs); v != nil {
			obj = v // coarse: res.Workers = … taints res
		}
		if obj == nil || tainted[obj] != "" {
			return false
		}
		tainted[obj] = reason
		return true
	}

	// Fixpoint: sources and assignments, including order taint from slices
	// appended in map-iteration order without a sort after the loop.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var why string
					var isTainted bool
					if len(n.Rhs) == len(n.Lhs) {
						why, isTainted = exprTaint(n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						why, isTainted = exprTaint(n.Rhs[0])
					}
					if isTainted && taintLHS(lhs, why) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if why, isTainted := exprTaint(v); isTainted {
						for _, name := range n.Names {
							if taintLHS(name, why) {
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if why, isTainted := exprTaint(n.X); isTainted {
					for _, lv := range []ast.Expr{n.Key, n.Value} {
						if lv != nil && taintLHS(lv, why) {
							changed = true
						}
					}
				}
				if _, isMap := typeUnder(pass.TypesInfo.TypeOf(n.X)).(*types.Map); isMap {
					if markMapOrderAppends(pass, r, fn, n, tainted) {
						changed = true
					}
				}
			}
			return true
		})
	}

	// A sort call cures order taint (only): drop those objects.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !isFn || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
				o := pass.TypesInfo.Uses[id]
				if why, isTainted := tainted[o]; isTainted && isOrderReason(why) {
					delete(tainted, o)
				}
			}
		}
		return true
	})

	// Facts: a tainted return makes the taint visible to callers in other
	// packages (closure returns belong to the closure, not the function).
	newFact := false
	if fnObj, isObj := pass.TypesInfo.Defs[fn.Name].(*types.Func); isObj &&
		fn.Type.Results != nil && len(tainted) > 0 {
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					if why, isTainted := exprTaint(res); isTainted {
						var have taintedResult
						if !pass.ImportObjectFact(fnObj, &have) {
							pass.ExportObjectFact(fnObj, &taintedResult{Reason: why})
							newFact = true
						}
						return false
					}
				}
			}
			return true
		})
	}
	// Sinks still need a pass even with no tainted variable: a source call
	// can feed a sink expression directly (bench.Result{Workers: src()}).
	if !report {
		return newFact
	}

	// Sinks.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sink := ""
			if g.callEmits(n) {
				sink = "a packet emission"
			} else if _, isAppend := ap.walAppendKindArg(n); isAppend {
				sink = "a WAL record"
			} else if callee := calleeFunc(pass, n); callee != nil && ap.appendsParam[callee] {
				sink = "a WAL record"
			} else if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel &&
				isSinkType(pass.TypesInfo.TypeOf(sel.X)) {
				sink = "a bench/figure row"
			}
			if sink == "" {
				return true
			}
			for _, arg := range n.Args {
				if why, isTainted := exprTaint(arg); isTainted {
					r.reportf(arg.Pos(),
						"nondeterministic value (%s) flows into %s: same-seed runs diverge; sort or gate it, or declare it deterministic with //detlint:ignore dettaint at the source",
						why, sink)
					break
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !sinkFieldWrite(pass, lhs) {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				if why, isTainted := exprTaint(rhs); isTainted {
					r.reportf(lhs.Pos(),
						"nondeterministic value (%s) stored into a bench/figure field: same-seed runs diverge; gate it or declare it deterministic with //detlint:ignore dettaint at the source",
						why)
				}
			}
		case *ast.CompositeLit:
			if !isSinkType(pass.TypesInfo.TypeOf(n)) {
				return true
			}
			for _, elt := range n.Elts {
				if why, isTainted := exprTaint(elt); isTainted {
					r.reportf(elt.Pos(),
						"nondeterministic value (%s) stored into a bench/figure literal: same-seed runs diverge; gate it or declare it deterministic with //detlint:ignore dettaint at the source",
						why)
				}
			}
		}
		return true
	})

	return newFact
}

// isOrderReason reports whether a taint reason is (transitively) order
// taint, which sorting cures.
func isOrderReason(why string) bool {
	return len(why) >= len(reasonMapOrder) && why[:len(reasonMapOrder)] == reasonMapOrder
}

// markMapOrderAppends taints slices appended to inside a map-range body
// without a sort after the loop (the cross-function half of maprange).
func markMapOrderAppends(pass *analysis.Pass, r *reporter, fn *ast.FuncDecl,
	rng *ast.RangeStmt, tainted taintState) bool {

	changed := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || i >= len(as.Rhs) {
				continue
			}
			call, isCall := as.Rhs[i].(*ast.CallExpr)
			if !isCall || !isBuiltinCall(pass, call, "append") {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				obj = pass.TypesInfo.Defs[id]
			}
			// Only slices that outlive the loop carry the order out.
			if obj == nil || obj.Pos() >= rng.Pos() || tainted[obj] != "" {
				continue
			}
			if sortedAfterLoop(pass, fn, rng, obj) {
				continue
			}
			if r.idx.suppressed("dettaint", rng.Pos()) || r.idx.suppressed("dettaint", id.Pos()) {
				continue
			}
			tainted[obj] = reasonMapOrder
			changed = true
		}
		return true
	})
	return changed
}

// sinkFieldWrite reports whether lhs writes a field of a sink-typed value
// (fig.WallSeconds = …, res.Rows[i] = …).
func sinkFieldWrite(pass *analysis.Pass, lhs ast.Expr) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if isSinkType(pass.TypesInfo.TypeOf(x.X)) {
				return true
			}
			lhs = x.X
		case *ast.IndexExpr:
			if isSinkType(pass.TypesInfo.TypeOf(x.X)) {
				return true
			}
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}
