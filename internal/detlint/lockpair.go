package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// Lockpair checks, on every function's control-flow graph, that a sim lock
// acquired in the function — env.Mutex.Lock, env.RWMutex.Lock/RLock,
// env.Semaphore.Acquire, including the 2PC per-key locks in
// internal/server/txn.go (they are env.Mutex fields) — is released on every
// path that returns. A path from the acquire to a return statement that
// passes no matching release is the PR 5 bug class: a prepare handler that
// gives up (dedup miss, ancestor check, crash-injection branch) while still
// holding key locks wedges every later transaction on those keys, and under
// the simulator nothing ever times it out.
//
// Releases are recognised in four shapes:
//
//   - a direct call: kl.Unlock(), st.mu.RUnlock(), cores.Release()
//   - a deferred call: defer kl.Unlock() (counted where the defer runs)
//   - a same-package helper that releases one of its parameters or its
//     receiver (transitively): syncCommit(p, req, parentLog, …, kl, …)
//   - a local closure that releases captured locks: fail := func(){kl.Unlock()}
//
// Lock/RLock and Unlock/RUnlock on the same lock object are treated as one
// class: which mode a branch took is path-sensitive, pairing is not.
//
// Functions that intentionally hand a held lock to another process or return
// it to the caller (lockTxnKeys, env.Cond.Wait) declare it:
//
//	//detlint:lock-escapes <reason>
//
// in the function's doc comment; the reason is mandatory (detdirective).
var Lockpair = &analysis.Analyzer{
	Name:     "lockpair",
	Doc:      "check that sim locks are released on every return path",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      runLockpair,
}

func init() {
	addListFlag(&Lockpair.Flags, &conf.SimPackages, "pkgs",
		"packages governed by the lockpair analyzer")
}

// envAcquireMethods / envReleaseMethods are the env lock-class method names.
var (
	envAcquireMethods = map[string]bool{"Lock": true, "RLock": true, "Acquire": true}
	envReleaseMethods = map[string]bool{"Unlock": true, "RUnlock": true, "Release": true}
	envLockTypes      = map[string]bool{"Mutex": true, "RWMutex": true, "Semaphore": true}
)

// envLockCall classifies call as an acquire or release of an env lock and
// returns the receiver expression (the lock).
func envLockCall(pass *analysis.Pass, call *ast.CallExpr) (lock ast.Expr, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != conf.EnvPackage {
		return nil, false, false
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !envLockTypes[recvTypeName(sig)] {
		return nil, false, false
	}
	switch {
	case envAcquireMethods[obj.Name()]:
		return sel.X, true, true
	case envReleaseMethods[obj.Name()]:
		return sel.X, false, true
	}
	return nil, false, false
}

// recvTypeName returns the name of a method's receiver type, sans pointer.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name()
	}
	return ""
}

// lockRef names a lock by the variable it is reachable from plus the selector
// path to it: kl → (kl, ""); parentLog.lock → (parentLog, ".lock");
// s.locks[h] → (s, ".locks.[]"). Index expressions collapse to one key per
// base — coarse, but pairing is per-object anyway and the roots in tree are
// plain selector chains.
type lockRef struct {
	root types.Object
	path string
}

// lockRefOf resolves expr to a lockRef. Unkeyable expressions (call results
// used inline, channel receives) return ok=false and are not checked.
func lockRefOf(pass *analysis.Pass, expr ast.Expr) (lockRef, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if v, isVar := obj.(*types.Var); isVar {
			return lockRef{root: v}, true
		}
	case *ast.SelectorExpr:
		// Package-qualified variable: pkg.Var.
		if x, isIdent := ast.Unparen(e.X).(*ast.Ident); isIdent {
			if _, isPkg := pass.TypesInfo.Uses[x].(*types.PkgName); isPkg {
				if v, isVar := pass.TypesInfo.Uses[e.Sel].(*types.Var); isVar {
					return lockRef{root: v}, true
				}
				return lockRef{}, false
			}
		}
		base, ok := lockRefOf(pass, e.X)
		if !ok {
			return lockRef{}, false
		}
		return lockRef{root: base.root, path: base.path + "." + e.Sel.Name}, true
	case *ast.IndexExpr:
		base, ok := lockRefOf(pass, e.X)
		if !ok {
			return lockRef{}, false
		}
		return lockRef{root: base.root, path: base.path + ".[]"}, true
	case *ast.StarExpr:
		return lockRefOf(pass, e.X)
	}
	return lockRef{}, false
}

// releaseEvent is one point in a function body that releases locks. Exact
// events release one lockRef; prefix events (helper calls handed a struct
// containing locks) release every lock reachable from the ref.
type releaseEvent struct {
	pos    token.Pos
	ref    lockRef
	prefix bool
}

func (ev releaseEvent) matches(ref lockRef) bool {
	if ev.ref.root != ref.root {
		return false
	}
	if ev.prefix {
		return strings.HasPrefix(ref.path, ev.ref.path)
	}
	return ev.ref.path == ref.path
}

// releaseGraph classifies same-package functions by which of their parameters
// (receiver = index -1) they transitively release a lock through.
type releaseGraph struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// releasesParam maps a function to parameter indices from which a lock
	// release is reachable. The receiver is index -1.
	releasesParam map[*types.Func]map[int]bool
}

func newReleaseGraph(pass *analysis.Pass, files []*ast.File) *releaseGraph {
	rg := &releaseGraph{
		pass:          pass,
		decls:         make(map[*types.Func]*ast.FuncDecl),
		releasesParam: make(map[*types.Func]map[int]bool),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, isFn := d.(*ast.FuncDecl); isFn && fd.Body != nil {
				if obj, isObj := pass.TypesInfo.Defs[fd.Name].(*types.Func); isObj {
					rg.decls[obj] = fd
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range rg.decls {
			idx := rg.paramIndex(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				for _, ref := range rg.callReleaseRoots(call) {
					if i, isParam := idx[ref.root]; isParam && !rg.releasesParam[obj][i] {
						rg.add(obj, i)
						changed = true
					}
				}
				return true
			})
		}
	}
	return rg
}

func (rg *releaseGraph) add(obj *types.Func, i int) {
	m := rg.releasesParam[obj]
	if m == nil {
		m = make(map[int]bool)
		rg.releasesParam[obj] = m
	}
	m[i] = true
}

// paramIndex maps a declaration's parameter objects to their index, with the
// receiver at -1.
func (rg *releaseGraph) paramIndex(fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if o := rg.pass.TypesInfo.Defs[name]; o != nil {
					out[o] = -1
				}
			}
		}
	}
	if fd.Type.Params == nil {
		return out
	}
	i := 0
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if o := rg.pass.TypesInfo.Defs[name]; o != nil {
				out[o] = i
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return out
}

// callReleaseRoots returns the lockRefs this call releases something under: a
// direct env release yields the lock itself; a call to a classified helper
// yields the argument (or receiver) it releases through.
func (rg *releaseGraph) callReleaseRoots(call *ast.CallExpr) []lockRef {
	if lock, acquire, isLock := envLockCall(rg.pass, call); isLock && !acquire {
		if ref, ok := lockRefOf(rg.pass, lock); ok {
			return []lockRef{ref}
		}
		return nil
	}
	return helperReleaseRefs(rg, call)
}

func runLockpair(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.SimPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	files := filesOf(pass)
	r := newReporter(pass)
	rg := newReleaseGraph(pass, files)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, f := range files {
		for _, d := range f.Decls {
			fn, isFn := d.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			if _, escapes := funcLockEscapes(fn); escapes {
				continue
			}
			checkLockPairing(pass, r, rg, cfgs.FuncDecl(fn), fn.Body, fn.Name.Name)
			// Function literals have their own CFG and their own pairing
			// obligation (spawned process bodies, retry loops).
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, isLit := n.(*ast.FuncLit); isLit {
					if g := cfgs.FuncLit(lit); g != nil {
						checkLockPairing(pass, r, rg, g, lit.Body, "function literal")
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkLockPairing verifies one function body against its CFG.
func checkLockPairing(pass *analysis.Pass, r *reporter, rg *releaseGraph,
	graph *cfg.CFG, body *ast.BlockStmt, name string) {

	type acquireSite struct {
		call *ast.CallExpr
		ref  lockRef
	}
	var acquires []acquireSite
	var releases []releaseEvent

	// closureReleases maps local closure variables to the lockRefs their
	// bodies release (captured locks): a call to the variable is a release
	// event for each (the doMutate fail-closure pattern).
	closureReleases := make(map[types.Object][]lockRef)

	// Walk the top level of the body: nested literals are separate CFGs and
	// are checked on their own (their captured acquires/releases belong to
	// their own pairing obligation or their callers' event stream).
	var walk func(n ast.Node, deferred bool)
	collectCall := func(call *ast.CallExpr, pos token.Pos) {
		if lock, acquire, isLock := envLockCall(pass, call); isLock {
			ref, keyable := lockRefOf(pass, lock)
			if !keyable {
				return
			}
			if acquire {
				acquires = append(acquires, acquireSite{call: call, ref: ref})
			} else {
				releases = append(releases, releaseEvent{pos: pos, ref: ref})
			}
			return
		}
		if fun, isIdent := call.Fun.(*ast.Ident); isIdent {
			if obj := pass.TypesInfo.Uses[fun]; obj != nil {
				for _, ref := range closureReleases[obj] {
					releases = append(releases, releaseEvent{pos: pos, ref: ref})
				}
			}
		}
		for _, ref := range helperReleaseRefs(rg, call) {
			releases = append(releases, releaseEvent{pos: pos, ref: ref, prefix: true})
		}
	}
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// The deferred call runs at every return; for pairing it is a
				// release from its registration point onward.
				walk(m.Call, true)
				return false
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					lit, isLit := rhs.(*ast.FuncLit)
					if !isLit || i >= len(m.Lhs) {
						continue
					}
					id, isIdent := m.Lhs[i].(*ast.Ident)
					if !isIdent {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj == nil {
						continue
					}
					ast.Inspect(lit.Body, func(k ast.Node) bool {
						if k, isCall := k.(*ast.CallExpr); isCall {
							if lock, acquire, isLock := envLockCall(pass, k); isLock && !acquire {
								if ref, keyable := lockRefOf(pass, lock); keyable {
									closureReleases[obj] = append(closureReleases[obj], ref)
								}
							}
						}
						return true
					})
				}
				return true
			case *ast.CallExpr:
				collectCall(m, m.Pos())
				return true
			}
			return true
		})
	}
	walk(body, false)

	if len(acquires) == 0 {
		return
	}

	// Map acquire calls and release events to their basic blocks.
	acquireBlock := make(map[*ast.CallExpr]*cfg.Block)
	releaseIn := make(map[*cfg.Block][]releaseEvent)
	for _, b := range graph.Blocks {
		for _, n := range b.Nodes {
			for _, a := range acquires {
				if n.Pos() <= a.call.Pos() && a.call.End() <= n.End() {
					acquireBlock[a.call] = b
				}
			}
			for _, ev := range releases {
				if n.Pos() <= ev.pos && ev.pos < n.End() {
					releaseIn[b] = append(releaseIn[b], ev)
				}
			}
		}
	}

	blockReleases := func(b *cfg.Block, ref lockRef, after token.Pos) bool {
		for _, ev := range releaseIn[b] {
			if ev.pos > after && ev.matches(ref) {
				return true
			}
		}
		return false
	}

	for _, a := range acquires {
		b, located := acquireBlock[a.call]
		if !located {
			continue // unreachable code
		}
		// Straight-line tail of the acquire's own block.
		if blockReleases(b, a.ref, a.call.Pos()) {
			continue
		}
		// BFS: find a return reachable without passing a release.
		var leak *cfg.Block
		seen := map[*cfg.Block]bool{b: true}
		work := []*cfg.Block{b}
		if len(b.Succs) == 0 && b.Return() != nil {
			leak = b
		}
		for len(work) > 0 && leak == nil {
			cur := work[0]
			work = work[1:]
			for _, s := range cur.Succs {
				if seen[s] {
					continue
				}
				seen[s] = true
				if blockReleases(s, a.ref, token.NoPos) {
					continue // paths through s release before leaving it
				}
				if len(s.Succs) == 0 {
					if s.Return() != nil {
						leak = s
						break
					}
					continue // panic/no-return exit: not a pairing leak
				}
				work = append(work, s)
			}
		}
		if leak != nil {
			r.reportf(a.call.Pos(),
				"lock acquired here is still held on a return path of %s: release it on every path or annotate the function //detlint:lock-escapes <reason> (PR 5 2PC lock-leak class)",
				name)
		}
	}
}

// helperReleaseRefs returns prefix release refs for a call to a classified
// releasing helper (receiver at index -1).
func helperReleaseRefs(rg *releaseGraph, call *ast.CallExpr) []lockRef {
	callee := calleeFunc(rg.pass, call)
	if callee == nil {
		return nil
	}
	var out []lockRef
	for i := range rg.releasesParam[callee] {
		var arg ast.Expr
		if i == -1 {
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				arg = sel.X
			}
		} else if i < len(call.Args) {
			arg = call.Args[i]
		}
		if arg == nil {
			continue
		}
		if ref, ok := lockRefOf(rg.pass, arg); ok {
			out = append(out, ref)
		}
	}
	return out
}
