package detlint

import (
	"testing"

	"switchfs/internal/detlint/dtest"
)

// Each suite analyzes a GOPATH-style tree under testdata/<analyzer>/src with
// stub env/wal/stdlib packages whose import paths match the embedded config,
// so the analyzers run exactly as they do over the real tree.

func TestMaprange(t *testing.T) {
	dtest.Run(t, "testdata/maprange", Maprange, "switchfs/internal/server")
}

func TestWallclock(t *testing.T) {
	dtest.Run(t, "testdata/wallclock", Wallclock, "switchfs/internal/server")
	// The Real runtime's own file is allowlisted by config, not comments.
	dtest.Run(t, "testdata/wallclock", Wallclock, "switchfs/internal/env")
}

func TestRawgo(t *testing.T) {
	dtest.Run(t, "testdata/rawgo", Rawgo, "switchfs/internal/server")
}

func TestWalorder(t *testing.T) {
	dtest.Run(t, "testdata/walorder", Walorder, "switchfs/internal/server")
}

func TestLockpair(t *testing.T) {
	dtest.Run(t, "testdata/lockpair", Lockpair, "switchfs/internal/server")
}

func TestSendalias(t *testing.T) {
	dtest.Run(t, "testdata/sendalias", Sendalias, "switchfs/internal/pswitch")
}

func TestIdempotent(t *testing.T) {
	dtest.Run(t, "testdata/idempotent", Idempotent, "switchfs/internal/server")
}

func TestDettaint(t *testing.T) {
	dtest.Run(t, "testdata/dettaint", Dettaint, "switchfs/internal/server")
}

func TestDetdirective(t *testing.T) {
	dtest.Run(t, "testdata/detdirective", Detdirective, "switchfs/internal/server")
}
