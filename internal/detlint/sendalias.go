package detlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// Sendalias flags writes to a wire-typed value after it has been passed to a
// packet emission (env.Proc.Send directly, or any sendish wrapper per the
// send graph). Once a *wire.Packet crosses Send, the simulator owns it: the
// switch may still be forwarding it, a retransmission loop may re-deliver
// it, and the trace recorder has stamped it. Mutating it afterwards is the
// PR 8 copy-before-stamp bug class — the in-flight copy and the sender's
// copy silently diverge, and which one the receiver sees depends on delivery
// order. The fix is always the same: copy the packet (out := *pkt) and
// mutate the copy.
//
// The analysis is a forward may-analysis per function body: an emitting call
// marks the base variable of every wire-typed argument (wire.Packet,
// wire.Msg, or any type declared in the wire package — &out.pkt marks out
// even when out's own type lives elsewhere); a later write through a marked
// variable is a diagnostic; rebinding the whole variable clears the mark.
// Block states iterate to fixpoint, so a retry loop that stamps the packet
// between sends is caught across the back edge while build-once-resend
// loops (asyncCommit, ctlCall) stay clean.
var Sendalias = &analysis.Analyzer{
	Name:     "sendalias",
	Doc:      "flag writes to a wire packet after it was passed to Send",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      runSendalias,
}

func init() {
	Sendalias.Flags.StringVar(&conf.WirePackage, "wire", conf.WirePackage,
		"import path of the wire message package")
}

func runSendalias(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.SimPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	files := filesOf(pass)
	r := newReporter(pass)
	g := newSendGraph(pass, files)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, f := range files {
		for _, d := range f.Decls {
			fn, isFn := d.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			checkSendAlias(pass, r, g, cfgs.FuncDecl(fn))
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, isLit := n.(*ast.FuncLit); isLit {
					if graph := cfgs.FuncLit(lit); graph != nil {
						checkSendAlias(pass, r, g, graph)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// isWireType reports whether t is declared in (or points to a type declared
// in) the configured wire package.
func isWireType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == conf.WirePackage
}

// sentState is the per-block may-analysis state: variables holding (or
// containing) a wire value that has crossed an emission call.
type sentState map[*types.Var]bool

func (s sentState) clone() sentState {
	out := make(sentState, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

func (s sentState) equal(o sentState) bool {
	if len(s) != len(o) {
		return false
	}
	for v := range s {
		if !o[v] {
			return false
		}
	}
	return true
}

// baseVarOf returns the variable an lvalue or argument expression is rooted
// at: &out.pkt → out, pkt.Trace → pkt, locks[i].msg → locks.
func baseVarOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if v, isVar := obj.(*types.Var); isVar {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// A package-qualified name roots at the named var itself.
			if id, isIdent := ast.Unparen(x.X).(*ast.Ident); isIdent {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					if v, isVar := pass.TypesInfo.Uses[x.Sel].(*types.Var); isVar {
						return v
					}
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// checkSendAlias runs the dataflow over one CFG. The first fixpoint rounds
// only propagate; a final pass over stable states reports.
func checkSendAlias(pass *analysis.Pass, r *reporter, g *sendGraph, graph *cfg.CFG) {
	if len(graph.Blocks) == 0 {
		return
	}

	// transfer applies one block's nodes to state; when report is set, writes
	// through marked variables are diagnosed.
	reported := make(map[token.Pos]bool)
	var applyNode func(n ast.Node, state sentState, report bool)
	markWrite := func(lhs ast.Expr, state sentState, report bool) {
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[target]
			if obj == nil {
				obj = pass.TypesInfo.Defs[target]
			}
			if v, isVar := obj.(*types.Var); isVar {
				delete(state, v) // whole-variable rebinding: fresh value
			}
		default:
			if v := baseVarOf(pass, lhs); v != nil && state[v] {
				if report && !reported[lhs.Pos()] {
					reported[lhs.Pos()] = true
					r.reportf(lhs.Pos(),
						"write to a packet that was already passed to Send: the in-flight copy and this one diverge; copy before mutating (out := *pkt) — PR 8 copy-before-stamp class")
				}
			}
		}
	}
	applyNode = func(n ast.Node, state sentState, report bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate CFG, separate obligation
			case *ast.AssignStmt:
				for _, rhs := range m.Rhs {
					applyNode(rhs, state, report)
				}
				for _, lhs := range m.Lhs {
					markWrite(lhs, state, report)
				}
				return false
			case *ast.IncDecStmt:
				markWrite(m.X, state, report)
				return false
			case *ast.CallExpr:
				for _, arg := range m.Args {
					applyNode(arg, state, report)
				}
				if g.callEmits(m) {
					for _, arg := range m.Args {
						if isWireType(pass.TypesInfo.TypeOf(arg)) {
							if v := baseVarOf(pass, arg); v != nil {
								state[v] = true
							}
						}
					}
				}
				return false
			}
			return true
		})
	}

	in := make(map[*cfg.Block]sentState)
	for _, b := range graph.Blocks {
		in[b] = sentState{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range graph.Blocks {
			state := in[b].clone()
			for _, n := range b.Nodes {
				applyNode(n, state, false)
			}
			for _, s := range b.Succs {
				merged := in[s].clone()
				for v := range state {
					merged[v] = true
				}
				if !merged.equal(in[s]) {
					in[s] = merged
					changed = true
				}
			}
		}
	}
	for _, b := range graph.Blocks {
		state := in[b].clone()
		for _, n := range b.Nodes {
			applyNode(n, state, true)
		}
	}
}
