package detlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Maprange flags `for … range` over a map whose loop body has effects that
// observe the iteration order: packet emission (directly or through a
// wrapper), appends to a slice that outlives the loop without a sort, and
// last-writer-wins stores to state declared outside the loop. Go randomizes
// map iteration order per process, so any of these leaks the order into
// behaviour two runs of the simulator must agree on byte for byte.
//
// Order-insensitive bodies pass: commutative accumulation (`n += v`, `n++`),
// writes keyed by the loop variables (`out[k] = f(v)`), deletes keyed by the
// loop variables, and append-then-sort snapshots (the sortedClogs idiom —
// the append is exempt when the enclosing function sorts the slice after
// the loop).
var Maprange = &analysis.Analyzer{
	Name:     "maprange",
	Doc:      "flag map iteration whose body observes the (randomized) iteration order",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMaprange,
}

func init() {
	addListFlag(&Maprange.Flags, &conf.SimPackages, "packages",
		"comma-separated import paths the analyzer governs")
	Maprange.Flags.StringVar(&conf.EnvPackage, "env", conf.EnvPackage,
		"import path of the dual-mode runtime package")
}

func runMaprange(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.SimPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	files := filesOf(pass)
	r := newReporter(pass)
	g := newSendGraph(pass, files)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rng := n.(*ast.RangeStmt)
		if isTestFile(pass.Fset.Position(rng.Pos()).Filename) {
			return false
		}
		if _, ok := typeUnder(pass.TypesInfo.TypeOf(rng.X)).(*types.Map); !ok {
			return true
		}
		var fn *ast.FuncDecl
		for _, s := range stack {
			if fd, ok := s.(*ast.FuncDecl); ok {
				fn = fd
			}
		}
		checkMapRange(pass, r, g, fn, rng)
		return true
	})
	return nil, nil
}

// typeUnder unwraps aliases and named types.
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func checkMapRange(pass *analysis.Pass, r *reporter, g *sendGraph, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	// loopLocal reports whether expr mentions any identifier declared inside
	// the range statement (the loop variables or body locals) — such a
	// reference makes a write per-iteration-keyed rather than last-writer-
	// wins, and a delete per-entry rather than global.
	loopLocal := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil && rng.Pos() <= obj.Pos() && obj.Pos() < rng.End() {
				found = true
			}
			return !found
		})
		return found
	}
	declaredOutside := func(id *ast.Ident) (types.Object, bool) {
		obj := info.Uses[id]
		if obj == nil {
			return nil, false
		}
		if obj.Pos() == token.NoPos || (rng.Pos() <= obj.Pos() && obj.Pos() < rng.End()) {
			return obj, false
		}
		// Package-level and closed-over objects both count as escaping.
		return obj, true
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if g.callEmits(st) {
				r.reportf(st.Pos(), "packet emission inside range over map: iteration order is randomized per process and leaks into the message sequence; iterate a sorted snapshot instead (e.g. the sortedClogs idiom)")
				return true
			}
			if isBuiltinCall(pass, st, "delete") && len(st.Args) == 2 {
				// delete keyed by a loop-derived value clears per-entry
				// state; any other delete mutates shared maps in map order.
				if !loopLocal(st.Args[1]) && !sameExpr(pass, st.Args[0], rng.X) {
					r.reportf(st.Pos(), "delete with loop-independent key inside range over map: the surviving entry depends on iteration order")
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN {
				// := declares loop locals; op-assign (+=, |=, …) is
				// commutative accumulation and order-insensitive.
				return true
			}
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if i < len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				checkMapRangeStore(pass, r, fn, rng, lhs, rhs, loopLocal, declaredOutside)
			}
		}
		return true
	})
}

// checkMapRangeStore vets one `lhs = rhs` inside a map-range body.
func checkMapRangeStore(pass *analysis.Pass, r *reporter, fn *ast.FuncDecl, rng *ast.RangeStmt,
	lhs, rhs ast.Expr, loopLocal func(ast.Expr) bool, declaredOutside func(*ast.Ident) (types.Object, bool)) {

	if id, ok := lhs.(*ast.Ident); ok {
		obj, outside := declaredOutside(id)
		if !outside {
			return
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(pass, call, "append") {
			if sortedAfterLoop(pass, fn, rng, obj) {
				return
			}
			r.reportf(lhs.Pos(), "append to %s inside range over map without a sort after the loop: element order follows the randomized iteration order; sort the slice before it escapes (sortedClogs idiom)", id.Name)
			return
		}
		r.reportf(lhs.Pos(), "order-dependent write to %s inside range over map: the surviving value depends on the randomized iteration order", id.Name)
		return
	}
	// Indexed and field stores are per-entry (deterministic) when the target
	// is keyed by a loop-derived value; otherwise the last writer wins in
	// map order.
	if loopLocal(lhs) {
		return
	}
	r.reportf(lhs.Pos(), "order-dependent store inside range over map: the target is not keyed by the loop variables, so the surviving value depends on iteration order")
}

// isBuiltinCall reports whether call invokes the named builtin (the
// type-checker records builtins in Uses as *types.Builtin).
func isBuiltinCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin || pass.TypesInfo.Uses[id] == nil
}

// sortedAfterLoop reports whether fn sorts obj (a slice) after the range
// statement: a call to sort.* or slices.Sort* with obj as an argument whose
// position follows the loop. This is what makes the sorted-snapshot helpers
// (sortedClogs and friends) pass without annotations.
func sortedAfterLoop(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		if p := fnObj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// sameExpr reports whether two expressions statically denote the same
// variable (ident or selector chain resolving to the same objects).
func sameExpr(pass *analysis.Pass, a, b ast.Expr) bool {
	oa, ok1 := exprObj(pass, a)
	ob, ok2 := exprObj(pass, b)
	return ok1 && ok2 && oa == ob
}

func exprObj(pass *analysis.Pass, e ast.Expr) (types.Object, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Uses[e]; o != nil {
			return o, true
		}
	case *ast.SelectorExpr:
		if o := pass.TypesInfo.Uses[e.Sel]; o != nil {
			return o, true
		}
	case *ast.ParenExpr:
		return exprObj(pass, e.X)
	}
	return nil, false
}
