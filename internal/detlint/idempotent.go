package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// Idempotent checks that RPC handlers for retransmittable requests consult
// their dedup cache before the first side effect. The client resends every
// request until acked, so a handler reached twice must not re-execute: the
// PR 2/4 bug class was exactly a duplicate request re-appending WAL records
// and re-writing chunk state after the first execution already replied.
//
// A handler is a function named handle* taking a request struct that embeds
// wire.ReqCommon (the retransmittable-request marker). If the handler
// transitively reaches a state mutation — a WAL append, a kv Put/Delete, or
// a plain store into a map reachable from its receiver or parameters
// (commutative `m[k]++` tallies are exempt) — then on its CFG every side
// effect (mutation or packet emission) must be dominated by a call to a
// function annotated:
//
//	//detlint:dedup-check
//
// in its doc comment (replayIfDuplicate, begin). Read-only handlers are
// exempt: replying twice with the same answer is harmless. A violation
// reports the first effect reachable from entry without passing a check.
var Idempotent = &analysis.Analyzer{
	Name:     "idempotent",
	Doc:      "check that mutating RPC handlers consult the dedup cache before their first side effect",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      runIdempotent,
}

func init() {
	Idempotent.Flags.StringVar(&conf.KvPackage, "kv", conf.KvPackage,
		"import path of the key-value store package")
}

// kvWriteMethods are the mutating methods of the kv package's store.
var kvWriteMethods = map[string]bool{"Put": true, "Delete": true}

// isKvWrite reports whether call mutates a kv-package store.
func isKvWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != conf.KvPackage {
		return false
	}
	sig, isSig := obj.Type().(*types.Signature)
	return isSig && sig.Recv() != nil && kvWriteMethods[obj.Name()]
}

// effectGraph classifies a package's functions by whether they (transitively)
// mutate durable or protocol-visible state. Dedup-check functions are left
// out of the lattice: their cache bookkeeping is the mechanism, not an
// effect.
type effectGraph struct {
	pass  *analysis.Pass
	ap    *appendGraph
	decls map[*types.Func]*ast.FuncDecl
	// dedupCheck holds the //detlint:dedup-check annotated functions.
	dedupCheck map[*types.Func]bool
	// mutates holds functions that transitively reach a WAL append, kv
	// write, or a non-commutative store into receiver/parameter state.
	mutates map[*types.Func]bool
}

func newEffectGraph(pass *analysis.Pass, files []*ast.File, ap *appendGraph) *effectGraph {
	eg := &effectGraph{
		pass:       pass,
		ap:         ap,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		dedupCheck: make(map[*types.Func]bool),
		mutates:    make(map[*types.Func]bool),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, isFn := d.(*ast.FuncDecl)
			if !isFn || fd.Body == nil {
				continue
			}
			obj, isObj := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !isObj {
				continue
			}
			eg.decls[obj] = fd
			if funcIsDedupCheck(fd) {
				eg.dedupCheck[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range eg.decls {
			if eg.mutates[obj] || eg.dedupCheck[obj] {
				continue
			}
			own := ownedRoots(pass, fd)
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if eg.nodeMutates(n, own) {
					found = true
					return false
				}
				return true
			})
			if found {
				eg.mutates[obj] = true
				changed = true
			}
		}
	}
	return eg
}

// ownedRoots returns the objects a function's state is rooted at: its
// receiver and parameters.
func ownedRoots(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := paramObjs(pass, fd)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if o := pass.TypesInfo.Defs[name]; o != nil {
					out[o] = true
				}
			}
		}
	}
	return out
}

// nodeMutates reports whether one AST node is a state mutation for the
// effect lattice.
func (eg *effectGraph) nodeMutates(n ast.Node, own map[types.Object]bool) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Plain stores into owned maps; `m[k] += x` style accumulation is a
		// commutative tally, not protocol state.
		if n.Tok != token.ASSIGN {
			return false
		}
		for _, lhs := range n.Lhs {
			if eg.ownedMapIndex(lhs, own) {
				return true
			}
		}
	case *ast.CallExpr:
		if isBuiltinCall(eg.pass, n, "delete") && len(n.Args) > 0 {
			if v := baseVarOf(eg.pass, n.Args[0]); v != nil && own[v] {
				return true
			}
			return false
		}
		if isKvWrite(eg.pass, n) {
			return true
		}
		if len(eg.ap.callAppends(n)) > 0 || eg.callsAppendHelper(n) {
			return true
		}
		if callee := calleeFunc(eg.pass, n); callee != nil {
			if eg.mutates[callee] && !eg.dedupCheck[callee] {
				return true
			}
		}
	}
	return false
}

// ownedMapIndex reports whether lhs is an index store into a map rooted at
// an owned object.
func (eg *effectGraph) ownedMapIndex(lhs ast.Expr, own map[types.Object]bool) bool {
	ix, isIndex := ast.Unparen(lhs).(*ast.IndexExpr)
	if !isIndex {
		return false
	}
	if _, isMap := typeUnder(eg.pass.TypesInfo.TypeOf(ix.X)).(*types.Map); !isMap {
		return false
	}
	v := baseVarOf(eg.pass, ix.X)
	return v != nil && own[v]
}

// callsAppendHelper reports whether call invokes an appendsParam helper
// (mustAppend with a non-constant kind still appends).
func (eg *effectGraph) callsAppendHelper(call *ast.CallExpr) bool {
	callee := calleeFunc(eg.pass, call)
	return callee != nil && eg.ap.appendsParam[callee]
}

// isRetransmittableHandler reports whether fn is an RPC handler for a
// request type that embeds wire.ReqCommon.
func isRetransmittableHandler(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if !strings.HasPrefix(fn.Name.Name, "handle") || fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		st, isStruct := typeUnder(t).(*types.Struct)
		if !isStruct {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if n, isNamed := ft.(*types.Named); isNamed &&
				n.Obj().Name() == "ReqCommon" &&
				n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == conf.WirePackage {
				return true
			}
		}
	}
	return false
}

func runIdempotent(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.SimPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	files := filesOf(pass)
	r := newReporter(pass)
	g := newSendGraph(pass, files)
	ap := newAppendGraph(pass, files)
	eg := newEffectGraph(pass, files, ap)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, f := range files {
		for _, d := range f.Decls {
			fn, isFn := d.(*ast.FuncDecl)
			if !isFn || fn.Body == nil || !isRetransmittableHandler(pass, fn) {
				continue
			}
			obj, isObj := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !isObj || !eg.mutates[obj] {
				continue // read-only handler: duplicate replies are harmless
			}
			checkIdempotent(pass, r, g, eg, cfgs.FuncDecl(fn), fn)
		}
	}
	return nil, nil
}

// checkIdempotent verifies one mutating handler's CFG: every effect must be
// dominated by a dedup-check call.
func checkIdempotent(pass *analysis.Pass, r *reporter, g *sendGraph, eg *effectGraph,
	graph *cfg.CFG, fn *ast.FuncDecl) {

	own := ownedRoots(pass, fn)

	// Collect top-level effect sites and dedup-check calls. Nested literals
	// run on their own schedule (the Spawn that starts them is the effect
	// here); deferred calls run after the check on every complete path.
	type site struct {
		pos     token.Pos
		isCheck bool
	}
	var sites []site
	haveCheck := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false
			case *ast.AssignStmt:
				if m.Tok == token.ASSIGN {
					for _, lhs := range m.Lhs {
						if eg.ownedMapIndex(lhs, own) {
							sites = append(sites, site{pos: lhs.Pos()})
						}
					}
				}
				return true
			case *ast.CallExpr:
				if callee := calleeFunc(pass, m); callee != nil && eg.dedupCheck[callee] {
					sites = append(sites, site{pos: m.Pos(), isCheck: true})
					haveCheck = true
					return true
				}
				if eg.nodeMutates(m, own) || g.callEmits(m) {
					sites = append(sites, site{pos: m.Pos()})
				}
				return true
			}
			return true
		})
	}
	walk(fn.Body)

	if !haveCheck {
		r.reportf(fn.Name.Pos(),
			"%s mutates state for a retransmittable RPC but never consults the dedup cache: a duplicate request re-executes the mutation (PR 2/4 re-execution class); call a //detlint:dedup-check helper first",
			fn.Name.Name)
		return
	}

	// Blocks reachable from entry without passing a check, as in walorder.
	blockOf := make(map[token.Pos]*cfg.Block)
	checkPos := make(map[*cfg.Block][]token.Pos)
	for _, b := range graph.Blocks {
		for _, n := range b.Nodes {
			for _, s := range sites {
				if n.Pos() <= s.pos && s.pos < n.End() {
					blockOf[s.pos] = b
					if s.isCheck {
						checkPos[b] = append(checkPos[b], s.pos)
					}
				}
			}
		}
	}
	reachableNoCheck := make(map[*cfg.Block]bool)
	if len(graph.Blocks) > 0 {
		work := []*cfg.Block{graph.Blocks[0]}
		reachableNoCheck[graph.Blocks[0]] = true
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			if len(checkPos[b]) > 0 {
				continue
			}
			for _, s := range b.Succs {
				if !reachableNoCheck[s] {
					reachableNoCheck[s] = true
					work = append(work, s)
				}
			}
		}
	}

	var worst token.Pos
	for _, s := range sites {
		if s.isCheck {
			continue
		}
		b, located := blockOf[s.pos]
		if !located || !reachableNoCheck[b] {
			continue
		}
		dominated := false
		for _, p := range checkPos[b] {
			if p < s.pos {
				dominated = true
				break
			}
		}
		if !dominated && (worst == token.NoPos || s.pos < worst) {
			worst = s.pos
		}
	}
	if worst != token.NoPos {
		r.reportf(worst,
			"side effect reachable before the dedup-cache check in %s: a retransmitted RPC re-executes it (PR 2/4 re-execution class); consult the //detlint:dedup-check helper on every path first",
			fn.Name.Name)
	}
}
