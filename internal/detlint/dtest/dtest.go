// Package dtest is a minimal, offline replacement for
// golang.org/x/tools/go/analysis/analysistest. The upstream harness depends
// on go/packages, which this repository does not vendor (the build must work
// with no module network access), so dtest loads GOPATH-style testdata
// trees with go/parser + go/types directly.
//
// Layout and conventions match analysistest: sources live under
// <testdata>/src/<import path>/, and expectations are `// want "regex"`
// comments on the line a diagnostic is reported at. Imports resolve against
// the testdata tree first — stub packages there may shadow the standard
// library (the suites stub time, math/rand, sync and sort so runs stay
// hermetic and fast) — and fall back to compiling the real standard library
// from source.
package dtest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the package at <testdata>/src/<pkgPath> with a (running its
// Requires transitively first) and compares the diagnostics against the
// `// want` expectations in the package's sources. Testdata dependency
// packages are analyzed first against the same fact store, so analyzers
// with cross-package facts (dettaint) see their dependencies' exports just
// as they do under go vet; dependency diagnostics are discarded.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	pi, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("dtest: loading %s: %v", pkgPath, err)
	}
	facts := &factStore{}
	for _, dep := range l.order { // load order is topological
		if dep == pi || dep.info == nil {
			continue
		}
		if _, err := execute(l, dep, a, facts); err != nil {
			t.Fatalf("dtest: running %s on dependency %s: %v", a.Name, dep.pkg.Path(), err)
		}
	}
	diags, err := execute(l, pi, a, facts)
	if err != nil {
		t.Fatalf("dtest: running %s on %s: %v", a.Name, pkgPath, err)
	}
	matchWants(t, l.fset, pi.files, diags)
}

// pkgInfo is one loaded package. Packages delegated to the standard-library
// importer carry only pkg; testdata packages also carry syntax and types.
type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset   *token.FileSet
	srcDir string
	std    types.ImporterFrom
	pkgs   map[string]*pkgInfo
	// order records testdata packages in completion order: every package
	// follows its imports (load recurses through the type-checker).
	order []*pkgInfo
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcDir: srcDir,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   make(map[string]*pkgInfo),
	}
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		pkg, err := l.std.ImportFrom(path, l.srcDir, 0)
		if err != nil {
			return nil, err
		}
		pi := &pkgInfo{pkg: pkg}
		l.pkgs[path] = pi
		return pi, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	l.order = append(l.order, pi)
	return pi, nil
}

// Import / ImportFrom make the loader usable as the type-checker's importer,
// resolving against the testdata tree before the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	pi, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pi.pkg, nil
}

// execute runs target and its Requires DAG over one package, returning the
// target's diagnostics. Facts live in the caller's in-memory store, shared
// across the packages of one Run (no serialization).
func execute(l *loader, pi *pkgInfo, target *analysis.Analyzer, facts *factStore) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]any)
	visited := make(map[*analysis.Analyzer]bool)
	var diags []analysis.Diagnostic

	var run func(a *analysis.Analyzer) error
	run = func(a *analysis.Analyzer) error {
		if visited[a] {
			return nil
		}
		visited[a] = true
		for _, req := range a.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   make(map[*analysis.Analyzer]any),
			Report: func(d analysis.Diagnostic) {
				if a == target {
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  facts.importObjectFact,
			ExportObjectFact:  facts.exportObjectFact,
			ImportPackageFact: facts.importPackageFact,
			ExportPackageFact: func(f analysis.Fact) { facts.exportPackageFact(pi.pkg, f) },
			AllObjectFacts:    facts.allObjectFacts,
			AllPackageFacts:   facts.allPackageFacts,
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	return diags, run(target)
}

// factStore is the in-memory fact table shared by one execute call.
type factStore struct {
	obj []analysis.ObjectFact
	pkg []analysis.PackageFact
}

func sameFactType(a, b analysis.Fact) bool {
	return reflect.TypeOf(a) == reflect.TypeOf(b)
}

func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

func (s *factStore) importObjectFact(obj types.Object, f analysis.Fact) bool {
	for _, of := range s.obj {
		if of.Object == obj && sameFactType(of.Fact, f) {
			copyFact(f, of.Fact)
			return true
		}
	}
	return false
}

func (s *factStore) exportObjectFact(obj types.Object, f analysis.Fact) {
	for i, of := range s.obj {
		if of.Object == obj && sameFactType(of.Fact, f) {
			s.obj[i].Fact = f
			return
		}
	}
	s.obj = append(s.obj, analysis.ObjectFact{Object: obj, Fact: f})
}

func (s *factStore) importPackageFact(pkg *types.Package, f analysis.Fact) bool {
	for _, pf := range s.pkg {
		if pf.Package == pkg && sameFactType(pf.Fact, f) {
			copyFact(f, pf.Fact)
			return true
		}
	}
	return false
}

func (s *factStore) exportPackageFact(pkg *types.Package, f analysis.Fact) {
	for i, pf := range s.pkg {
		if pf.Package == pkg && sameFactType(pf.Fact, f) {
			s.pkg[i].Fact = f
			return
		}
	}
	s.pkg = append(s.pkg, analysis.PackageFact{Package: pkg, Fact: f})
}

func (s *factStore) allObjectFacts() []analysis.ObjectFact {
	return append([]analysis.ObjectFact(nil), s.obj...)
}
func (s *factStore) allPackageFacts() []analysis.PackageFact {
	return append([]analysis.PackageFact(nil), s.pkg...)
}

// expectation is one parsed `// want "regex"` marker.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

const wantMarker = "// want "

// matchWants pairs diagnostics with expectations one-to-one: every
// diagnostic must land on a want of its line whose regex matches, and every
// want must be consumed by exactly one diagnostic.
func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, wantMarker)
				if i < 0 {
					continue
				}
				p := fset.Position(c.Pos())
				for rest := strings.TrimSpace(text[i+len(wantMarker):]); rest != ""; {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s:%d: malformed want pattern %q", p.Filename, p.Line, rest)
						break
					}
					unq, _ := strconv.Unquote(q)
					rx, err := regexp.Compile(unq)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, unq, err)
						break
					}
					wants = append(wants, &expectation{file: p.Filename, line: p.Line, rx: rx, raw: unq})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
