package detlint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Directives understood by the suite:
//
//	//detlint:ignore <analyzer>[,<analyzer>...] -- <reason>
//	    Suppresses matching diagnostics reported on the same line or on the
//	    line immediately below the comment. The reason is mandatory: a
//	    suppression without one is itself a diagnostic (detdirective).
//
//	//detlint:wal-before-send <record> [via=<fn>[,<fn>...]]
//	    On a function declaration: every packet emission in the function
//	    (or, with via=, every call to the named emitters) must be dominated
//	    by a WAL append of <record>. Checked by walorder on the CFG.
//
//	//detlint:lock-escapes <reason>
//	    On a function declaration: the function intentionally returns or
//	    hands off a lock it acquired (lockTxnKeys, Cond.Wait); lockpair
//	    skips it. The reason is mandatory.
//
//	//detlint:dedup-check
//	    On a function declaration: calling this function consults the
//	    at-least-once dedup cache (replayIfDuplicate, begin). The
//	    idempotent analyzer requires such a call before a mutating
//	    handler's first side effect.
const (
	directivePrefix     = "//detlint:"
	directiveIgnore     = "ignore"
	directiveWalSend    = "wal-before-send"
	directiveLockEscape = "lock-escapes"
	directiveDedupCheck = "dedup-check"
)

// analyzerNames is the set of valid targets for //detlint:ignore.
var analyzerNames = map[string]bool{
	"maprange":     true,
	"wallclock":    true,
	"rawgo":        true,
	"walorder":     true,
	"detdirective": true,
	"lockpair":     true,
	"sendalias":    true,
	"idempotent":   true,
	"dettaint":     true,
}

// ignoreDirective is one parsed //detlint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	analyzers []string
	reason    string
	malformed string // non-empty: why the directive is invalid
}

// parseIgnore parses the text after "//detlint:ignore".
func parseIgnore(pos token.Pos, rest string) ignoreDirective {
	d := ignoreDirective{pos: pos}
	names, reason, ok := strings.Cut(rest, "--")
	d.reason = strings.TrimSpace(reason)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		d.analyzers = append(d.analyzers, n)
		if !analyzerNames[n] {
			d.malformed = "unknown analyzer " + quote(n)
		}
	}
	if len(d.analyzers) == 0 {
		d.malformed = "no analyzer named"
	}
	if !ok || d.reason == "" {
		d.malformed = "missing reason (want `//detlint:ignore <analyzer> -- <reason>`)"
	}
	return d
}

func quote(s string) string { return "\"" + s + "\"" }

// ignoreIndex maps (file, line) to the ignore directives that govern that
// line. A directive on line N governs diagnostics on lines N and N+1, so it
// can trail the offending statement or sit on its own line above it.
type ignoreIndex struct {
	fset *token.FileSet
	m    map[string]map[int][]*ignoreDirective
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, m: make(map[string]map[int][]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutDirective(c.Text, directiveIgnore)
				if !ok {
					continue
				}
				d := parseIgnore(c.Pos(), rest)
				p := fset.Position(c.Pos())
				byLine := idx.m[p.Filename]
				if byLine == nil {
					byLine = make(map[int][]*ignoreDirective)
					idx.m[p.Filename] = byLine
				}
				byLine[p.Line] = append(byLine[p.Line], &d)
				byLine[p.Line+1] = append(byLine[p.Line+1], &d)
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from analyzer at pos is covered by
// a well-formed ignore directive.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	for _, d := range idx.m[p.Filename][p.Line] {
		if d.malformed != "" {
			continue
		}
		for _, a := range d.analyzers {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// cutDirective returns the text after "//detlint:<name>" when the comment is
// that directive (name terminated by end-of-comment or whitespace).
func cutDirective(comment, name string) (rest string, ok bool) {
	if !strings.HasPrefix(comment, directivePrefix) {
		return "", false
	}
	body := comment[len(directivePrefix):]
	if body == name {
		return "", true
	}
	if strings.HasPrefix(body, name) && (body[len(name)] == ' ' || body[len(name)] == '\t') {
		return strings.TrimSpace(body[len(name):]), true
	}
	return "", false
}

// reporter wraps pass.Reportf with ignore-directive filtering.
type reporter struct {
	pass *analysis.Pass
	idx  *ignoreIndex
}

func newReporter(pass *analysis.Pass) *reporter {
	return &reporter{pass: pass, idx: buildIgnoreIndex(pass.Fset, filesOf(pass))}
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	if r.idx.suppressed(r.pass.Analyzer.Name, pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// filesOf returns the pass's syntax trees minus test files.
func filesOf(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			out = append(out, f)
		}
	}
	return out
}

// walSendDirective is one parsed //detlint:wal-before-send annotation.
type walSendDirective struct {
	pos    token.Pos
	record string
	via    []string
	bad    string // non-empty: parse problem
}

// parseWalSend parses the text after "//detlint:wal-before-send".
func parseWalSend(pos token.Pos, rest string) walSendDirective {
	d := walSendDirective{pos: pos}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.bad = "missing record name (want `//detlint:wal-before-send <record> [via=<fn>,...]`)"
		return d
	}
	d.record = fields[0]
	for _, f := range fields[1:] {
		if v, ok := strings.CutPrefix(f, "via="); ok && v != "" {
			d.via = append(d.via, strings.Split(v, ",")...)
			continue
		}
		d.bad = "unrecognized argument " + quote(f)
	}
	return d
}

// funcWalSendDirectives extracts wal-before-send annotations from a function
// declaration's doc comment.
func funcWalSendDirectives(fn *ast.FuncDecl) []walSendDirective {
	if fn.Doc == nil {
		return nil
	}
	var out []walSendDirective
	for _, c := range fn.Doc.List {
		if rest, ok := cutDirective(c.Text, directiveWalSend); ok {
			out = append(out, parseWalSend(c.Pos(), rest))
		}
	}
	return out
}

// funcLockEscapes reports whether fn's doc comment carries a lock-escapes
// annotation. The returned reason may be empty (malformed); detdirective
// reports that, lockpair still honours the escape so one problem yields one
// diagnostic.
func funcLockEscapes(fn *ast.FuncDecl) (reason string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if rest, found := cutDirective(c.Text, directiveLockEscape); found {
			return directiveArg(rest), true
		}
	}
	return "", false
}

// directiveArg trims a directive's argument text, dropping any nested
// comment (`// …`): a reason cannot contain one, and the dtest suites hang
// their `// want` markers there.
func directiveArg(rest string) string {
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest)
}

// funcIsDedupCheck reports whether fn's doc comment marks it as a dedup-cache
// consultation point for the idempotent analyzer.
func funcIsDedupCheck(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if _, found := cutDirective(c.Text, directiveDedupCheck); found {
			return true
		}
	}
	return false
}
