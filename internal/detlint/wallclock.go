package detlint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Wallclock forbids wall-clock reads, wall-clock timers and globally-seeded
// randomness in packages the deterministic simulator executes. Protocol code
// must take time from env.Env.Now / Proc.Now, delays from Proc.Sleep /
// env.After, and randomness from an explicitly seeded rand.Rand — otherwise
// two runs with the same seed diverge and the byte-for-byte determinism
// gates (chaos-smoke, lincheck-smoke, bench -compare) turn red.
//
// Any mention of the forbidden functions is flagged, including passing one
// as a value. Constructing a seeded generator (rand.New, rand.NewSource,
// rand.NewPCG) stays legal; only the package-global convenience functions
// and the wall-clock readers are banned. The Real runtime's implementation
// file is allowlisted in detlint.json — via config, not comments.
var Wallclock = &analysis.Analyzer{
	Name:     "wallclock",
	Doc:      "forbid wall-clock time and global randomness in simulator-visible packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWallclock,
}

func init() {
	addListFlag(&Wallclock.Flags, &conf.SimPackages, "packages",
		"comma-separated import paths the analyzer governs")
	addListFlag(&Wallclock.Flags, &conf.WallclockAllowFiles, "allow-files",
		"comma-separated file suffixes exempt from the check")
}

// forbiddenWallclock maps package path -> function name -> replacement hint.
var forbiddenWallclock = map[string]map[string]string{
	"time": {
		"Now":       "env.Env.Now / Proc.Now",
		"Since":     "Proc.Now arithmetic",
		"Until":     "Proc.Now arithmetic",
		"Sleep":     "Proc.Sleep",
		"After":     "env.Env.After",
		"AfterFunc": "env.Env.After",
		"Tick":      "env.Env.After rearmed",
		"NewTimer":  "env.Env.After",
		"NewTicker": "env.Env.After rearmed",
	},
	"math/rand":    globalRandFuncs,
	"math/rand/v2": globalRandFuncs,
}

// globalRandFuncs are the process-globally seeded convenience functions of
// math/rand and math/rand/v2. The seeded constructors (New, NewSource,
// NewPCG, NewChaCha8, NewZipf) are deliberately absent.
var globalRandFuncs = map[string]string{
	"Int": "a seeded *rand.Rand", "Intn": "a seeded *rand.Rand",
	"IntN": "a seeded *rand.Rand", "Int31": "a seeded *rand.Rand",
	"Int31n": "a seeded *rand.Rand", "Int32": "a seeded *rand.Rand",
	"Int32N": "a seeded *rand.Rand", "Int63": "a seeded *rand.Rand",
	"Int63n": "a seeded *rand.Rand", "Int64": "a seeded *rand.Rand",
	"Int64N": "a seeded *rand.Rand", "Uint32": "a seeded *rand.Rand",
	"Uint32N": "a seeded *rand.Rand", "Uint64": "a seeded *rand.Rand",
	"Uint64N": "a seeded *rand.Rand", "UintN": "a seeded *rand.Rand",
	"Uint": "a seeded *rand.Rand", "N": "a seeded *rand.Rand",
	"Float32": "a seeded *rand.Rand", "Float64": "a seeded *rand.Rand",
	"ExpFloat64": "a seeded *rand.Rand", "NormFloat64": "a seeded *rand.Rand",
	"Perm": "a seeded *rand.Rand", "Shuffle": "a seeded *rand.Rand",
	"Seed": "a seeded *rand.Rand", "Read": "a seeded *rand.Rand",
}

func runWallclock(pass *analysis.Pass) (any, error) {
	if !pkgMatch(conf.SimPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	r := newReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		filename := pass.Fset.Position(sel.Pos()).Filename
		if isTestFile(filename) || fileAllowed(conf.WallclockAllowFiles, filename) {
			return
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return
		}
		if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
		}
		byName := forbiddenWallclock[obj.Pkg().Path()]
		if byName == nil {
			return
		}
		if hint, bad := byName[obj.Name()]; bad {
			r.reportf(sel.Pos(), "%s.%s in a simulator-visible package breaks seeded determinism; use %s",
				obj.Pkg().Path(), obj.Name(), hint)
		}
	})
	return nil, nil
}
