package env

// Costs is the calibrated service-time model used under Sim. Every cost is
// the CPU time one software section occupies a server core (via
// Proc.Compute), calibrated so that single-client operation latencies land in
// the same few-microsecond regime the paper's DPDK testbed reports (Fig. 2b,
// Fig. 13). Under Real all costs are zero: real code paths cost what they
// cost.
//
// The reproduction targets shapes, not absolute microseconds; these constants
// set the scale, and the protocol (hop counts, lock scopes, KV-operation
// counts) sets the shape.
type Costs struct {
	// Parse is the cost of parsing a request or building a response.
	Parse Duration
	// KVGet / KVPut / KVDel are single key-value store operations
	// (RocksDB-class, in-memory memtable, async WAL — §7.1).
	KVGet Duration
	KVPut Duration
	KVDel Duration
	// KVScanEntry is the per-entry cost of an entry-list prefix scan.
	KVScanEntry Duration
	// WALAppend persists one record to the write-ahead log.
	WALAppend Duration
	// LockOp is the bookkeeping cost of one lock acquire or release.
	LockOp Duration
	// LogAppend appends one change-log entry (§5.3).
	LogAppend Duration
	// LogApplyEntry applies one compacted change-log operation at the owner.
	LogApplyEntry Duration
	// TxnOverhead is the extra commit bookkeeping of a local transaction;
	// distributed transactions additionally pay network RTTs.
	TxnOverhead Duration
	// SwitchPipe is the switch pipeline traversal for packets carrying a
	// dirty-set operation (sub-RTT, §4.1).
	SwitchPipe Duration
	// ClientOp is the client-side library cost per operation.
	ClientOp Duration
	// CacheLookup is one client metadata-cache probe per path component.
	CacheLookup Duration
	// DirTxn is the directory-transaction commit overhead the synchronous
	// baselines pay per double-inode operation (lock manager, transaction
	// log, index maintenance on the hot directory) — calibrated against the
	// paper's E-InfiniFS create latency (Fig. 2b: ~13 µs vs ~5 µs stat).
	DirTxn Duration
	// HeavyStack is the per-op software overhead of the modeled CephFS
	// (§7.2.1 observation 4: CephFS stays below 100 Kops/s because of its
	// heavy software stack).
	HeavyStack Duration
	// DataIO is the data-node service time per small-file read/write in the
	// end-to-end workloads (§7.6, files mostly under 256 KB).
	DataIO Duration
	// WALReplay is the per-record redo cost during crash recovery (§7.7:
	// ~5.8 s for ~2.5 M records on the paper's testbed).
	WALReplay Duration
}

// DefaultCosts returns the calibration used by all figure benchmarks.
func DefaultCosts() Costs {
	return Costs{
		Parse:         300 * Nanosecond,
		KVGet:         500 * Nanosecond,
		KVPut:         800 * Nanosecond,
		KVDel:         700 * Nanosecond,
		KVScanEntry:   60 * Nanosecond,
		WALAppend:     700 * Nanosecond,
		LockOp:        80 * Nanosecond,
		LogAppend:     200 * Nanosecond,
		LogApplyEntry: 350 * Nanosecond,
		TxnOverhead:   900 * Nanosecond,
		DirTxn:        4500 * Nanosecond,
		SwitchPipe:    400 * Nanosecond,
		ClientOp:      250 * Nanosecond,
		CacheLookup:   40 * Nanosecond,
		HeavyStack:    550 * Microsecond,
		DataIO:        120 * Microsecond,
		WALReplay:     2300 * Nanosecond,
	}
}

// ZeroCosts disables service-time modeling (Real mode).
func ZeroCosts() Costs { return Costs{} }
