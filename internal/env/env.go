// Package env provides the dual-mode runtime SwitchFS protocol code runs on.
//
// The same server, client, switch, and baseline implementations execute on
// two environments:
//
//   - Sim: a deterministic discrete-event simulator with a virtual clock.
//     Nodes have a configurable number of CPU cores (FIFO resources), links
//     have configurable latency, jitter, loss and duplication, and all
//     randomness is seeded. Benchmarks reproduce the paper's figures under
//     Sim, because protocol-induced costs (RTT counts, lock serialization,
//     per-op service time) are what the paper measures — and because virtual
//     time can express "16 servers × 4 cores" on any host.
//
//   - Real: goroutines, channels and the wall clock. Examples and the UDP
//     daemons run on Real.
//
// Protocol code is written against Proc (a lightweight process) and the
// blocking primitives Future, Mutex, Cond and Semaphore, which behave
// identically in both modes.
package env

import (
	"fmt"
	"sync/atomic"
)

// Time is a clock reading in nanoseconds (virtual under Sim, monotonic wall
// time under Real).
type Time = int64

// Duration is a span of nanoseconds.
type Duration = int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// NodeID names a node (client, metadata server, switch, data node) on the
// simulated L2 network — the moral equivalent of a MAC address.
type NodeID uint32

// TraceCtx is a causal tracing context: the trace a unit of work belongs to
// and the span it currently executes under. It lives here (not in
// internal/trace) so wire packets can carry it and Proc can hold an ambient
// copy without env importing the recorder. A zero TraceCtx means "not
// traced" and costs nothing to propagate.
type TraceCtx struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a live trace.
func (t TraceCtx) Valid() bool { return t.TraceID != 0 }

// Handler processes one message delivered to a node. It runs on a fresh Proc
// and may block on primitives, sleep, compute, and send messages.
type Handler func(p *Proc, from NodeID, msg any)

// NodeConfig configures a node at registration time.
type NodeConfig struct {
	// Cores is the number of CPU cores: the maximum number of concurrently
	// executing Compute sections. Zero means unlimited (no CPU modeling) —
	// used for client nodes, whose CPU is never the bottleneck in the paper.
	Cores int
	// Handler receives inbound messages. A nil handler drops them.
	Handler Handler
}

// Env is the runtime interface shared by Sim and Real.
type Env interface {
	// Now returns the current clock reading.
	Now() Time
	// AddNode registers a node. Registering an existing id replaces its
	// handler and core count (used when a crashed server restarts).
	AddNode(id NodeID, cfg NodeConfig) *Node
	// Node returns a registered node, or nil.
	Node(id NodeID) *Node
	// Spawn starts a process bound to the given node.
	Spawn(node NodeID, fn func(*Proc))
	// After schedules fn to run once after d. fn runs in a non-process
	// context and must not block on primitives.
	After(d Duration, fn func()) *Timer
	// Net returns the network fault/latency configuration.
	Net() *NetConfig

	// unexported hooks used by Proc and the primitives.
	now() Time
	sched(d Duration, fn func()) *Timer
	unpark(p *Proc)
	deliver(from, to NodeID, msg any, extraDelay Duration)
	newProc(node *Node, fn func(*Proc))
	randFloat() float64
	randJitter(j Duration) Duration
}

// Node is a registered network endpoint with its CPU resource.
type Node struct {
	ID    NodeID
	cores *Semaphore // nil when Cores == 0
	env   Env
	h     Handler
	down  bool
}

// SetDown marks the node crashed (true) or alive (false). Messages to and
// from a crashed node are dropped, and its handler is not invoked — the
// volatile-state loss itself is the owning subsystem's business.
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports the crash flag.
func (n *Node) Down() bool { return n.down }

// SetHandler replaces the node's message handler (server restart).
func (n *Node) SetHandler(h Handler) { n.h = h }

// SetCores resizes the node's CPU resource in place (gray failure: core
// degradation). Sections already computing finish on the old budget; the
// new limit governs as their cores free up. A node registered with
// unlimited cores (Cores == 0) stays unlimited.
func (n *Node) SetCores(k int) {
	if n.cores == nil || k <= 0 {
		return
	}
	n.cores.SetLimit(k)
}

// Proc is a lightweight process: protocol code's execution context. Procs
// are cooperatively scheduled under Sim (exactly one runs at a time) and are
// plain goroutines under Real.
type Proc struct {
	env    Env
	node   *Node
	resume chan struct{}
	// timedOut communicates Future/acquire timeout state between the timer
	// callback and the resumed process.
	timedOut bool
	// twGen numbers this process's Future waits under Sim; a queued expiry
	// event whose generation no longer matches is a cancelled timeout.
	twGen uint64
	// killed is set by Sim.Shutdown to unwind the process.
	killed bool
	// state tracks the Sim scheduler lifecycle (idle/dispatched/running/
	// parked); the scheduler asserts its invariants on every transition.
	state int
	// tctx is the ambient tracing context: the span this process currently
	// executes under. Handlers set it from the inbound packet's TraceCtx and
	// nested spans push/restore it; the Sim scheduler clears it when a pooled
	// worker is re-dispatched so contexts never leak across handler bodies.
	tctx TraceCtx
}

// Env returns the runtime this process runs on.
func (p *Proc) Env() Env { return p.env }

// Self returns the node this process is bound to.
func (p *Proc) Self() NodeID { return p.node.ID }

// Now returns the current clock reading.
func (p *Proc) Now() Time { return p.env.now() }

// Send transmits a message to another node, subject to the network's
// latency, loss and duplication configuration. Send never blocks.
func (p *Proc) Send(to NodeID, msg any) {
	p.env.deliver(p.node.ID, to, msg, 0)
}

// Spawn starts a sibling process on the same node.
func (p *Proc) Spawn(fn func(*Proc)) { p.env.newProc(p.node, fn) }

// TraceCtx returns the ambient tracing context (zero when untraced).
func (p *Proc) TraceCtx() TraceCtx { return p.tctx }

// SetTraceCtx replaces the ambient tracing context. Span helpers save and
// restore the previous value around nested sections.
func (p *Proc) SetTraceCtx(t TraceCtx) { p.tctx = t }

// String aids debugging.
func (p *Proc) String() string { return fmt.Sprintf("proc@%d", p.node.ID) }

// Timer is a cancellable scheduled callback.
type Timer struct {
	cancelled atomic.Bool
	fn        func()
	// real-mode backing timer; nil under Sim.
	stop func()
}

// Cancel prevents the callback from firing if it has not fired yet.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	t.cancelled.Store(true)
	if t.stop != nil {
		t.stop()
	}
}

func (t *Timer) fire() {
	if !t.cancelled.Load() && t.fn != nil {
		t.fn()
	}
}
