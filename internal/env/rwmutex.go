package env

import "sync"

// RWMutex is a FIFO reader–writer lock for processes. Waiters are served in
// arrival order (a writer blocks later readers), so writers cannot starve —
// the discipline of the paper's per-inode locks, where directory reads share
// while updates and aggregations exclude (§5.2.2).
type RWMutex struct {
	mu      sync.Mutex
	readers int  // active readers
	writer  bool // active writer
	q       []rwWaiter
}

type rwWaiter struct {
	p     *Proc
	write bool
}

// RLock blocks p until a shared read lock is held.
func (m *RWMutex) RLock(p *Proc) {
	m.mu.Lock()
	if !m.writer && len(m.q) == 0 {
		m.readers++
		m.mu.Unlock()
		return
	}
	m.q = append(m.q, rwWaiter{p: p, write: false})
	m.mu.Unlock()
	p.park()
}

// RUnlock releases a read lock.
func (m *RWMutex) RUnlock() {
	m.mu.Lock()
	m.readers--
	if m.readers < 0 {
		m.mu.Unlock()
		panic("env: RUnlock without RLock")
	}
	wake := m.promote()
	m.mu.Unlock()
	for _, w := range wake {
		w.env.unpark(w)
	}
}

// Lock blocks p until the exclusive lock is held.
func (m *RWMutex) Lock(p *Proc) {
	m.mu.Lock()
	if !m.writer && m.readers == 0 && len(m.q) == 0 {
		m.writer = true
		m.mu.Unlock()
		return
	}
	m.q = append(m.q, rwWaiter{p: p, write: true})
	m.mu.Unlock()
	p.park()
}

// Unlock releases the exclusive lock.
func (m *RWMutex) Unlock() {
	m.mu.Lock()
	if !m.writer {
		m.mu.Unlock()
		panic("env: Unlock without Lock")
	}
	m.writer = false
	wake := m.promote()
	m.mu.Unlock()
	for _, w := range wake {
		w.env.unpark(w)
	}
}

// promote grants the lock to the head of the queue: one writer, or the
// maximal run of readers. Caller holds m.mu; returns procs to unpark.
func (m *RWMutex) promote() []*Proc {
	if m.writer || len(m.q) == 0 {
		return nil
	}
	var wake []*Proc
	if m.q[0].write {
		if m.readers == 0 {
			m.writer = true
			wake = append(wake, m.q[0].p)
			m.q = m.q[1:]
		}
		return wake
	}
	for len(m.q) > 0 && !m.q[0].write {
		m.readers++
		wake = append(wake, m.q[0].p)
		m.q = m.q[1:]
	}
	return wake
}
