package env

import (
	"math/rand"
	"sync"
	"time"
)

// Real is the wall-clock environment: processes are goroutines, timers are
// time.AfterFunc, and messages are delivered through goroutines with optional
// injected latency. Examples and the UDP daemons run on Real; the figure
// benchmarks run on Sim.
type Real struct {
	start time.Time
	mu    sync.Mutex
	nodes map[NodeID]*Node
	net   NetConfig
	rnd   *rand.Rand
	wg    sync.WaitGroup
}

// NewReal creates a wall-clock environment. By default the network adds no
// artificial latency: channel/goroutine scheduling is the network.
func NewReal() *Real {
	return &Real{
		start: time.Now(),
		nodes: make(map[NodeID]*Node),
		rnd:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Now returns nanoseconds since environment creation (monotonic).
func (r *Real) Now() Time { return Time(time.Since(r.start)) }
func (r *Real) now() Time { return r.Now() }

// Net returns the mutable network configuration.
func (r *Real) Net() *NetConfig { return &r.net }

// AddNode registers (or re-registers) a node.
func (r *Real) AddNode(id NodeID, cfg NodeConfig) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.nodes[id]
	if n == nil {
		n = &Node{ID: id, env: r}
		r.nodes[id] = n
	}
	n.h = cfg.Handler
	if cfg.Cores > 0 {
		n.cores = NewSemaphore(cfg.Cores)
	} else {
		n.cores = nil
	}
	n.down = false
	return n
}

// Node returns a registered node or nil.
func (r *Real) Node(id NodeID) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[id]
}

// Spawn starts a goroutine-backed process on the node.
func (r *Real) Spawn(node NodeID, fn func(*Proc)) {
	n := r.Node(node)
	if n == nil {
		panic("env: Spawn on unregistered node")
	}
	r.newProc(n, fn)
}

// After schedules a callback on the wall clock.
func (r *Real) After(d Duration, fn func()) *Timer { return r.sched(d, fn) }

func (r *Real) sched(d Duration, fn func()) *Timer {
	t := &Timer{fn: fn}
	at := time.AfterFunc(time.Duration(d), t.fire)
	t.stop = func() { at.Stop() }
	return t
}

func (r *Real) randFloat() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rnd.Float64()
}

func (r *Real) randJitter(j Duration) Duration {
	if j <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Duration(r.rnd.Int63n(int64(j)))
}

func (r *Real) deliver(from, to NodeID, msg any, extraDelay Duration) {
	src := r.Node(from)
	if src != nil && src.down {
		return
	}
	drop, dup, delay := r.net.decide(from, to, msg, r)
	if drop {
		return
	}
	n := 1
	if dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		d := delay + extraDelay
		dispatch := func() {
			dst := r.Node(to)
			if dst == nil || dst.down || dst.h == nil {
				return
			}
			r.newProc(dst, func(p *Proc) { dst.h(p, from, msg) })
		}
		if d > 0 {
			r.sched(d, dispatch)
		} else {
			dispatch()
		}
	}
}

func (r *Real) newProc(node *Node, fn func(*Proc)) {
	p := &Proc{env: r, node: node, resume: make(chan struct{}, 1)}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn(p)
	}()
}

// unpark wakes a goroutine blocked in park.
func (r *Real) unpark(p *Proc) { p.resume <- struct{}{} }
