package env

import (
	"testing"
)

// twoNodes registers a sender and a counting receiver and returns the
// delivery recorder.
func twoNodes(s *Sim) (src, dst NodeID, got *[]Time) {
	src, dst = NodeID(1), NodeID(2)
	times := &[]Time{}
	s.AddNode(src, NodeConfig{})
	s.AddNode(dst, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) {
		*times = append(*times, p.Now())
	}})
	return src, dst, times
}

func TestLinkRuleCut(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	src, dst, got := twoNodes(s)
	s.Net().SetLink(src, dst, LinkRule{Cut: true})
	s.Spawn(src, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Send(dst, i)
		}
	})
	s.Run()
	if len(*got) != 0 {
		t.Errorf("cut link delivered %d messages", len(*got))
	}
	if s.Dropped != 5 {
		t.Errorf("Dropped=%d, want 5", s.Dropped)
	}
	// The reverse direction is unaffected (asymmetric by construction).
	if r := s.Net().Link(dst, src); !r.IsZero() {
		t.Errorf("reverse link has rule %+v", r)
	}
}

func TestLinkRuleHeal(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	src, dst, got := twoNodes(s)
	s.Net().SetLink(src, dst, LinkRule{Cut: true})
	s.Net().SetLink(src, dst, LinkRule{}) // zero rule removes
	if s.Net().LinkRules() != 0 {
		t.Fatalf("LinkRules=%d after heal", s.Net().LinkRules())
	}
	s.Spawn(src, func(p *Proc) { p.Send(dst, "x") })
	s.Run()
	if len(*got) != 1 {
		t.Errorf("healed link delivered %d messages, want 1", len(*got))
	}
}

func TestLinkRuleDupAndDelay(t *testing.T) {
	s := NewSim(3)
	defer s.Shutdown()
	src, dst, got := twoNodes(s)
	s.Net().Jitter = 0
	s.Net().SetLink(src, dst, LinkRule{Dup: 1.0, Delay: 10 * Microsecond})
	s.Spawn(src, func(p *Proc) { p.Send(dst, "x") })
	s.Run()
	if len(*got) != 2 {
		t.Fatalf("Dup=1.0 delivered %d copies, want 2", len(*got))
	}
	if (*got)[0] < 10*Microsecond+s.Net().Latency {
		t.Errorf("first delivery at %d, want >= Delay+Latency", (*got)[0])
	}
}

func TestLinkRuleDropProbabilistic(t *testing.T) {
	s := NewSim(42)
	defer s.Shutdown()
	src, dst, got := twoNodes(s)
	s.Net().SetLink(src, dst, LinkRule{Drop: 0.5})
	s.Spawn(src, func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Send(dst, i)
		}
	})
	s.Run()
	if n := len(*got); n < 50 || n > 150 {
		t.Errorf("Drop=0.5 delivered %d of 200", n)
	}
}

func TestLinkRuleJitterReorders(t *testing.T) {
	s := NewSim(11)
	defer s.Shutdown()
	src, dst := NodeID(1), NodeID(2)
	var order []int
	s.AddNode(src, NodeConfig{})
	s.AddNode(dst, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) {
		order = append(order, msg.(int))
	}})
	s.Net().Jitter = 0
	s.Net().SetLink(src, dst, LinkRule{Jitter: 20 * Microsecond})
	s.Spawn(src, func(p *Proc) {
		for i := 0; i < 40; i++ {
			p.Send(dst, i)
		}
	})
	s.Run()
	if len(order) != 40 {
		t.Fatalf("delivered %d, want 40", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("per-link jitter produced no reordering across 40 packets")
	}
}

func TestLinkRulesDeterministic(t *testing.T) {
	run := func() []Time {
		s := NewSim(7)
		defer s.Shutdown()
		src, dst, got := twoNodes(s)
		s.Net().SetLink(src, dst, LinkRule{Drop: 0.2, Dup: 0.2, Jitter: 5 * Microsecond})
		s.Spawn(src, func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Send(dst, i)
			}
		})
		s.Run()
		return *got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at t=%d vs t=%d", i, a[i], b[i])
		}
	}
}

// TestSetCoresShrinkGrow drives a node's core count down below the in-flight
// compute level and back up, checking the over-commit deficit drains before
// new capacity is honored.
func TestSetCoresShrinkGrow(t *testing.T) {
	s := NewSim(5)
	defer s.Shutdown()
	id := NodeID(9)
	n := s.AddNode(id, NodeConfig{Cores: 4, Handler: nil})
	doneAt := make([]Time, 0, 8)
	for i := 0; i < 8; i++ {
		s.Spawn(id, func(p *Proc) {
			p.Compute(10 * Microsecond)
			doneAt = append(doneAt, p.Now())
		})
	}
	// Halve the cores while the first wave computes.
	s.After(1*Microsecond, func() { n.SetCores(1) })
	s.Run()
	if len(doneAt) != 8 {
		t.Fatalf("%d sections completed, want 8", len(doneAt))
	}
	// 4 sections finish at 10µs on the original cores; the rest serialize on
	// the single remaining core: 20, 30, 40, 50µs.
	if doneAt[3] != 10*Microsecond {
		t.Errorf("first wave finished at %d", doneAt[3])
	}
	if doneAt[7] != 50*Microsecond {
		t.Errorf("last serialized section finished at %dµs, want 50", doneAt[7]/Microsecond)
	}

	// Restore capacity: a fresh wave overlaps again.
	n.SetCores(4)
	start := s.Now()
	cnt := 0
	for i := 0; i < 4; i++ {
		s.Spawn(id, func(p *Proc) {
			p.Compute(10 * Microsecond)
			cnt++
		})
	}
	s.Run()
	if cnt != 4 {
		t.Fatalf("second wave: %d done", cnt)
	}
	if got := s.Now() - start; got != 10*Microsecond {
		t.Errorf("restored cores took %dµs for 4 parallel sections, want 10", got/Microsecond)
	}
}
