package env

import "testing"

// TestSpawnAfterRunsAtTime checks the continuation fires on the right node
// at the right virtual time.
func TestSpawnAfterRunsAtTime(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var at Time
	var node NodeID
	s.SpawnAfter(1, 250*Microsecond, func(p *Proc) {
		at = p.Now()
		node = p.Self()
	})
	s.Run()
	if at != 250*Microsecond || node != 1 {
		t.Fatalf("fired at %d on node %d", at, node)
	}
}

// TestSpawnAfterIdleSessionsShareWorkers is the O(1)-memory property: many
// sessions that each re-queue their next step via SpawnAfter (instead of
// sleeping on a parked goroutine) must be served by a handful of pooled
// workers, not one goroutine per session.
func TestSpawnAfterIdleSessionsShareWorkers(t *testing.T) {
	s := NewSim(3)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	const sessions = 5000
	const steps = 4
	done := 0
	for i := 0; i < sessions; i++ {
		var step func(*Proc)
		remaining := steps
		step = func(p *Proc) {
			p.Compute(Microsecond)
			remaining--
			if remaining == 0 {
				done++
				return
			}
			// Think for much longer than the body runs: the idle-session
			// shape.
			p.Env().(*Sim).SpawnAfter(1, Duration(sessions)*Microsecond, step)
		}
		// Arrivals one body-length apart, so only a handful of bodies ever
		// run concurrently even though thousands of sessions are live.
		s.SpawnAfter(1, Duration(i)*Microsecond, step)
	}
	s.Run()
	if done != sessions {
		t.Fatalf("completed %d sessions, want %d", done, sessions)
	}
	// Live sessions spend their time as queued events, not parked
	// goroutines, so the worker pool must stay tiny relative to the session
	// count.
	if wc := s.WorkerCount(); wc > 64 {
		t.Fatalf("worker pool grew to %d for %d event-queued sessions", wc, sessions)
	}
}

// TestSpawnAfterDownNodeDropsContinuation mirrors delivery semantics: a
// continuation destined for a crashed node is dropped.
func TestSpawnAfterDownNodeDropsContinuation(t *testing.T) {
	s := NewSim(5)
	defer s.Shutdown()
	n := s.AddNode(1, NodeConfig{})
	ran := false
	s.SpawnAfter(1, 10, func(p *Proc) { ran = true })
	n.SetDown(true)
	s.Run()
	if ran {
		t.Fatal("continuation ran on a down node")
	}
}

// TestSpawnAfterDeterministic interleaves SpawnAfter continuations with
// regular processes and messages; two same-seed runs must match exactly.
func TestSpawnAfterDeterministic(t *testing.T) {
	run := func() []Time {
		s := NewSim(11)
		defer s.Shutdown()
		s.Net().Jitter = 300
		var times []Time
		s.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) {
			times = append(times, p.Now())
		}})
		s.AddNode(1, NodeConfig{})
		for i := 0; i < 16; i++ {
			var step func(*Proc)
			n := 3
			step = func(p *Proc) {
				p.Send(2, n)
				n--
				if n > 0 {
					p.Env().(*Sim).SpawnAfter(1, 700, step)
				}
			}
			s.SpawnAfter(1, Duration(i*13), step)
		}
		s.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != 48 || len(b) != 48 {
		t.Fatalf("deliveries %d/%d, want 48", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
