package env

import "math/bits"

// The simulator's event queue is a two-level calendar ("ladder") queue
// indexed by time bucket, replacing a single global binary heap. Events in
// the current bucket live in a small typed min-heap; events within the near
// window are appended O(1) to their time bucket; events beyond the window
// overflow into a typed far heap and migrate into the ring as virtual time
// advances. An occupancy bitmap finds the next populated bucket with a
// handful of word scans instead of walking empty slots.
//
// The structure pops events in exactly (at, seq) order — the same total
// order the old global heap produced — because bucket ordinals partition
// time: every event in bucket b fires strictly before any event in bucket
// b+1, and the now-heap orders events sharing a bucket. evqueue_test.go
// checks this against a reference model on randomized schedules.
//
// Why it is faster than one big heap: the common events (message deliveries
// ~1.5 µs out, process wakeups at the current instant) index into the ring
// or the small now-heap, while long-lived retransmission timeouts (~2 ms
// out, almost always stale by the time they fire) park in their buckets
// without inflating the comparison depth of every hot push/pop.

// Event kinds. The tagged union avoids allocating a closure + Timer + heap
// interface box per scheduled event — the dominant allocation source of the
// previous engine.
const (
	// evTimer fires a cancellable Timer callback (After / sched).
	evTimer uint8 = iota
	// evWake makes proc p runnable; aux holds the scheduler state the proc
	// must be in (stateDispatched or stateParked).
	evWake
	// evDeliver hands message msg from node `from` to node `to`.
	evDeliver
	// evTimeout expires a Future wait for p when p's timeout generation
	// still equals aux (stale generations are cancelled timeouts).
	evTimeout
	// evSpawn starts msg (a func(*Proc)) on node `to` when it fires: a
	// parked-to-heap continuation. Until then the pending session costs one
	// queued event — no goroutine, no stack.
	evSpawn
)

// event is one scheduled simulator action. msg multiplexes the payload —
// the delivered message for evDeliver, the *Timer for evTimer, the *Future
// for evTimeout — keeping the struct at 64 bytes; events are copied by
// value through the queue, so size is speed.
type event struct {
	at   Time
	seq  uint64
	aux  uint64
	p    *Proc
	msg  any
	from NodeID
	to   NodeID
	kind uint8
}

// before orders events by (time, schedule sequence).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a typed binary min-heap ordered by (at, seq); no interface
// boxing on push/pop.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release pointers for GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q[l].before(&q[min]) {
			min = l
		}
		if r < n && q[r].before(&q[min]) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

const (
	// bucketShift sets the bucket granularity: 512 ns per bucket, a
	// fraction of the 1.5 µs default link latency.
	bucketShift = 9
	// ringBits sets the near window: 8192 buckets ≈ 4.2 ms, covering the
	// 2 ms RPC retransmission timeout that dominates long-lived events.
	ringBits = 13
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// eventQueue is the ladder queue.
type eventQueue struct {
	n   int
	cur int64 // bucket ordinal all popped events precede-or-share
	// now holds events of bucket ordinal `cur`.
	now eventHeap
	// ring[o&ringMask] holds events of ordinal o for o in (cur, cur+ringSize).
	ring  [ringSize][]event
	nRing int
	// occ is the ring occupancy bitmap: bit s set ⇔ ring[s] non-empty.
	occ [ringSize / 64]uint64
	// far holds events at or beyond ordinal cur+ringSize.
	far eventHeap
}

func ordinalOf(t Time) int64 { return int64(uint64(t) >> bucketShift) }

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return q.n }

// push enqueues ev; ev.at must be ≥ the time of the last popped event.
func (q *eventQueue) push(ev event) {
	q.n++
	o := ordinalOf(ev.at)
	switch {
	case o <= q.cur:
		q.now.push(ev)
	case o < q.cur+ringSize:
		s := o & ringMask
		q.ring[s] = append(q.ring[s], ev)
		if len(q.ring[s]) == 1 {
			q.occ[s>>6] |= 1 << uint(s&63)
			q.nRing++
		}
	default:
		q.far.push(ev)
	}
}

// pop dequeues the (at, seq)-minimal event. Call only when Len() > 0.
func (q *eventQueue) pop() event {
	if len(q.now) == 0 {
		q.advance()
	}
	q.n--
	return q.now.pop()
}

// advance moves cur to the next populated bucket and loads it into the now
// heap, migrating far events that the new window reaches.
func (q *eventQueue) advance() {
	for len(q.now) == 0 {
		if q.nRing > 0 {
			o := q.nextRingOrdinal()
			q.loadBucket(o)
		} else {
			// Jump straight to the earliest far event's bucket.
			q.cur = ordinalOf(q.far[0].at)
		}
		q.migrateFar()
	}
}

// nextRingOrdinal scans the occupancy bitmap for the first populated bucket
// after cur.
func (q *eventQueue) nextRingOrdinal() int64 {
	for d := int64(1); d < ringSize; {
		s := (q.cur + d) & ringMask
		w := q.occ[s>>6] >> uint(s&63)
		if w != 0 {
			return q.cur + d + int64(bits.TrailingZeros64(w))
		}
		d += 64 - int64(s&63) // next word boundary
	}
	panic("env: event ring occupancy out of sync")
}

// loadBucket makes ordinal o current and heapifies its events into now.
func (q *eventQueue) loadBucket(o int64) {
	q.cur = o
	s := o & ringMask
	evs := q.ring[s]
	if len(evs) == 0 {
		return
	}
	q.occ[s>>6] &^= 1 << uint(s&63)
	q.nRing--
	for i := range evs {
		q.now.push(evs[i])
		evs[i] = event{}
	}
	q.ring[s] = evs[:0] // keep the bucket's capacity for reuse
}

// migrateFar pulls far events that now fall inside the ring window.
func (q *eventQueue) migrateFar() {
	limit := q.cur + ringSize
	for len(q.far) > 0 && ordinalOf(q.far[0].at) < limit {
		ev := q.far.pop()
		o := ordinalOf(ev.at)
		if o <= q.cur {
			q.now.push(ev)
			continue
		}
		s := o & ringMask
		q.ring[s] = append(q.ring[s], ev)
		if len(q.ring[s]) == 1 {
			q.occ[s>>6] |= 1 << uint(s&63)
			q.nRing++
		}
	}
}
