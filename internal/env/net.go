package env

// Verdict is a fault-injection decision for one message.
type Verdict int

// Verdicts returned by a Filter.
const (
	// Pass delivers the message normally (still subject to probabilities).
	Pass Verdict = iota
	// Drop discards the message.
	Drop
	// Dup delivers the message twice.
	Dup
)

// LinkRule is a per-(src,dst) fault rule. The global NetConfig knobs model a
// uniformly bad fabric; link rules model localized failures — a flaky cable,
// a partitioned rack, an overloaded uplink. Rules compose with the global
// probabilities (both are consulted), and an asymmetric fault is simply a
// rule installed in one direction only.
type LinkRule struct {
	// Cut drops every message on the link (a partition edge).
	Cut bool
	// Drop and Dup are per-message probabilities on this link.
	Drop float64
	Dup  float64
	// Delay adds a fixed extra one-way delay; Jitter adds a uniform random
	// [0, Jitter) on top, reordering packets that share the link.
	Delay  Duration
	Jitter Duration
}

// IsZero reports a rule with no effect.
func (r LinkRule) IsZero() bool { return r == LinkRule{} }

// linkKey addresses one directed link.
type linkKey struct{ from, to NodeID }

// NetConfig models the datacenter network connecting clients, servers and
// the switch. SwitchFS runs over UDP (§5.4.1), so loss, duplication and
// reordering are first-class behaviours the protocol must tolerate; tests
// exercise them through these knobs.
type NetConfig struct {
	// Latency is the one-way propagation+processing delay per hop.
	Latency Duration
	// Jitter adds a uniform random [0, Jitter) to each delivery; any nonzero
	// jitter yields reordering between independent packets.
	Jitter Duration
	// DropProb and DupProb are per-message probabilities.
	DropProb float64
	DupProb  float64
	// Filter, when set, can override the fate of individual messages —
	// targeted fault injection ("drop the first aggregation ack").
	Filter func(from, to NodeID, msg any) Verdict

	// links holds the per-directed-link fault rules (fault injection).
	links map[linkKey]LinkRule
}

// SetLink installs (or, for a zero rule, removes) the fault rule of the
// directed link from→to.
func (c *NetConfig) SetLink(from, to NodeID, r LinkRule) {
	if r.IsZero() {
		delete(c.links, linkKey{from, to})
		return
	}
	if c.links == nil {
		c.links = make(map[linkKey]LinkRule)
	}
	c.links[linkKey{from, to}] = r
}

// Link returns the directed link's fault rule (zero when none installed).
func (c *NetConfig) Link(from, to NodeID) LinkRule {
	return c.links[linkKey{from, to}]
}

// ClearLinks removes every per-link fault rule (a full heal).
func (c *NetConfig) ClearLinks() { c.links = nil }

// LinkRules reports the number of installed per-link rules (diagnostics).
func (c *NetConfig) LinkRules() int { return len(c.links) }

// DefaultNetConfig reflects the paper's testbed: ~1.5 µs one-way latency on
// 100 GbE with kernel-bypass networking (the paper reports an RTT of ~3 µs
// in §7.3.3), no loss.
func DefaultNetConfig() NetConfig {
	return NetConfig{Latency: 1500 * Nanosecond, Jitter: 200 * Nanosecond}
}

// decide applies the filter, the link rule, and the global probabilities, in
// that order. Random draws happen in a fixed order so identical seeds yield
// identical executions regardless of which knobs are set.
func (c *NetConfig) decide(from, to NodeID, msg any, e Env) (drop, dup bool, delay Duration) {
	delay = c.Latency + e.randJitter(c.Jitter)
	if c.Filter != nil {
		switch c.Filter(from, to, msg) {
		case Drop:
			return true, false, 0
		case Dup:
			return false, true, delay
		}
	}
	if len(c.links) > 0 {
		if r, ok := c.links[linkKey{from, to}]; ok {
			if r.Cut {
				return true, false, 0
			}
			if r.Drop > 0 && e.randFloat() < r.Drop {
				return true, false, 0
			}
			if r.Dup > 0 && e.randFloat() < r.Dup {
				dup = true
			}
			delay += r.Delay + e.randJitter(r.Jitter)
		}
	}
	if c.DropProb > 0 && e.randFloat() < c.DropProb {
		return true, false, 0
	}
	if !dup && c.DupProb > 0 && e.randFloat() < c.DupProb {
		dup = true
	}
	return false, dup, delay
}
