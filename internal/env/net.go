package env

// Verdict is a fault-injection decision for one message.
type Verdict int

// Verdicts returned by a Filter.
const (
	// Pass delivers the message normally (still subject to probabilities).
	Pass Verdict = iota
	// Drop discards the message.
	Drop
	// Dup delivers the message twice.
	Dup
)

// NetConfig models the datacenter network connecting clients, servers and
// the switch. SwitchFS runs over UDP (§5.4.1), so loss, duplication and
// reordering are first-class behaviours the protocol must tolerate; tests
// exercise them through these knobs.
type NetConfig struct {
	// Latency is the one-way propagation+processing delay per hop.
	Latency Duration
	// Jitter adds a uniform random [0, Jitter) to each delivery; any nonzero
	// jitter yields reordering between independent packets.
	Jitter Duration
	// DropProb and DupProb are per-message probabilities.
	DropProb float64
	DupProb  float64
	// Filter, when set, can override the fate of individual messages —
	// targeted fault injection ("drop the first aggregation ack").
	Filter func(from, to NodeID, msg any) Verdict
}

// DefaultNetConfig reflects the paper's testbed: ~1.5 µs one-way latency on
// 100 GbE with kernel-bypass networking (the paper reports an RTT of ~3 µs
// in §7.3.3), no loss.
func DefaultNetConfig() NetConfig {
	return NetConfig{Latency: 1500 * Nanosecond, Jitter: 200 * Nanosecond}
}

// decide applies the filter and probabilities.
func (c *NetConfig) decide(from, to NodeID, msg any, e Env) (drop, dup bool, delay Duration) {
	delay = c.Latency + e.randJitter(c.Jitter)
	if c.Filter != nil {
		switch c.Filter(from, to, msg) {
		case Drop:
			return true, false, 0
		case Dup:
			return false, true, delay
		}
	}
	if c.DropProb > 0 && e.randFloat() < c.DropProb {
		return true, false, 0
	}
	if c.DupProb > 0 && e.randFloat() < c.DupProb {
		return false, true, delay
	}
	return false, false, delay
}
