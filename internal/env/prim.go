package env

import "sync"

// The blocking primitives below behave identically under Sim and Real: FIFO
// wakeup order, lock handoff to the head waiter, and timeout support where
// the protocol needs it. Under Sim only one process runs at a time, so the
// internal sync.Mutex fields are uncontended; under Real they provide the
// actual mutual exclusion.

// Future is a one-shot mailbox: at most one process waits for a value that
// is completed at most once (duplicate completions are ignored — exactly what
// a retransmitting RPC layer needs).
type Future struct {
	mu     sync.Mutex
	done   bool
	val    any
	waiter *Proc
}

// NewFuture allocates an incomplete future.
func NewFuture() *Future { return &Future{} }

// Complete delivers the value and wakes the waiter, if any. Later calls are
// no-ops.
func (f *Future) Complete(v any) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.val = v
	w := f.waiter
	f.waiter = nil
	f.mu.Unlock()
	if w != nil {
		w.env.unpark(w)
	}
}

// Done reports completion without blocking.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Wait blocks p until the future completes and returns the value.
func (f *Future) Wait(p *Proc) any {
	f.mu.Lock()
	if f.done {
		v := f.val
		f.mu.Unlock()
		return v
	}
	f.waiter = p
	f.mu.Unlock()
	p.park()
	f.mu.Lock()
	v := f.val
	f.mu.Unlock()
	return v
}

// WaitTimeout blocks p until completion or until d elapses. ok is false on
// timeout.
func (f *Future) WaitTimeout(p *Proc, d Duration) (v any, ok bool) {
	f.mu.Lock()
	if f.done {
		v = f.val
		f.mu.Unlock()
		return v, true
	}
	f.waiter = p
	f.mu.Unlock()
	if s, sim := p.env.(*Sim); sim {
		// Under Sim the expiry is a plain queue event guarded by the
		// proc's timeout generation — no Timer or closure per wait.
		p.twGen++
		s.schedTimeout(p, f, d, p.twGen)
		p.park()
		p.twGen++ // cancel: a pending expiry event is now stale
	} else {
		t := p.env.sched(d, func() {
			f.mu.Lock()
			if f.done || f.waiter != p {
				f.mu.Unlock()
				return
			}
			f.waiter = nil
			f.mu.Unlock()
			p.timedOut = true
			p.env.unpark(p)
		})
		p.park()
		t.Cancel()
	}
	if p.timedOut {
		p.timedOut = false
		return nil, false
	}
	f.mu.Lock()
	v = f.val
	f.mu.Unlock()
	return v, true
}

// Mutex is a FIFO lock with handoff semantics: Unlock passes ownership to the
// longest-waiting process. This models the lock queues of the paper's
// servers (and is exactly the service discipline the simulator needs for
// faithful contention behaviour).
type Mutex struct {
	mu sync.Mutex
	// held and the FIFO wait queue. The queue dequeues by advancing head —
	// shifting the slice per handoff cost O(queue) per unlock, which went
	// quadratic under the deep lock queues the simulation exists to model.
	held bool
	q    []*Proc
	head int
}

// popWaiter dequeues the head of a proc FIFO in amortized O(1).
func popWaiter(q []*Proc, head int) (*Proc, []*Proc, int) {
	w := q[head]
	q[head] = nil
	head++
	if head == len(q) {
		q = q[:0]
		head = 0
	} else if head >= 64 && head*2 >= len(q) {
		n := copy(q, q[head:])
		q = q[:n]
		head = 0
	}
	return w, q, head
}

// Lock blocks p until the lock is acquired.
func (m *Mutex) Lock(p *Proc) {
	m.mu.Lock()
	if !m.held {
		m.held = true
		m.mu.Unlock()
		return
	}
	m.q = append(m.q, p)
	m.mu.Unlock()
	p.park()
}

// TryLock acquires the lock if it is free.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the lock, handing it to the head waiter if any. Unlock may
// be called from a different process than the one that locked — the protocol
// uses this when a switch multicast tells the committing server to release
// its locks (§5.2.1 step 7b).
func (m *Mutex) Unlock() {
	m.mu.Lock()
	if len(m.q) > m.head {
		var w *Proc
		w, m.q, m.head = popWaiter(m.q, m.head)
		m.mu.Unlock()
		w.env.unpark(w)
		return
	}
	if !m.held {
		m.mu.Unlock()
		panic("env: Unlock of unlocked Mutex")
	}
	m.held = false
	m.mu.Unlock()
}

// Held reports whether the mutex is currently held (diagnostics only).
func (m *Mutex) Held() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.held
}

// Cond is a condition variable usable with Mutex.
type Cond struct {
	mu sync.Mutex
	q  []*Proc
}

// Wait atomically releases m, blocks p, and re-acquires m before returning.
//
//detlint:lock-escapes the condition-variable contract returns with m re-acquired; the caller releases it
func (c *Cond) Wait(p *Proc, m *Mutex) {
	c.mu.Lock()
	c.q = append(c.q, p)
	c.mu.Unlock()
	m.Unlock()
	p.park()
	m.Lock(p)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	c.mu.Lock()
	q := c.q
	c.q = nil
	c.mu.Unlock()
	for _, w := range q {
		w.env.unpark(w)
	}
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	c.mu.Lock()
	var w *Proc
	if len(c.q) > 0 {
		w = c.q[0]
		c.q = c.q[1:]
	}
	c.mu.Unlock()
	if w != nil {
		w.env.unpark(w)
	}
}

// Semaphore is a counting resource with FIFO queuing: the model of a
// server's CPU cores (§7.1 "each metadata server uses four cores").
type Semaphore struct {
	mu    sync.Mutex
	avail int
	limit int
	q     []*Proc
	head  int
}

// NewSemaphore returns a semaphore with n permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n, limit: n} }

// SetLimit resizes the permit count to n (gray failures: a degraded node
// loses cores mid-run, then gets them back). Shrinking below the number of
// permits currently held drives avail negative; subsequent Releases are
// absorbed until the deficit clears. Growing wakes queued waiters.
func (s *Semaphore) SetLimit(n int) {
	s.mu.Lock()
	s.avail += n - s.limit
	s.limit = n
	var wake []*Proc
	for s.avail > 0 && len(s.q) > s.head {
		var w *Proc
		w, s.q, s.head = popWaiter(s.q, s.head)
		wake = append(wake, w)
		s.avail--
	}
	s.mu.Unlock()
	for _, w := range wake {
		w.env.unpark(w)
	}
}

// Acquire takes one permit, blocking FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	s.mu.Lock()
	if s.avail > 0 {
		s.avail--
		s.mu.Unlock()
		return
	}
	s.q = append(s.q, p)
	s.mu.Unlock()
	p.park()
}

// Release returns one permit, handing it to the head waiter if any. While a
// SetLimit shrink is over-committed (avail < 0) the permit is absorbed to pay
// the deficit down instead of being handed off.
func (s *Semaphore) Release() {
	s.mu.Lock()
	if s.avail >= 0 && len(s.q) > s.head {
		var w *Proc
		w, s.q, s.head = popWaiter(s.q, s.head)
		s.mu.Unlock()
		w.env.unpark(w)
		return
	}
	s.avail++
	s.mu.Unlock()
}

// Sleep suspends the process for d without consuming CPU.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	if s, ok := p.env.(*Sim); ok {
		// Schedule the wakeup directly: no Timer, no closure, and — when
		// no other event intervenes — no goroutine switch either.
		s.schedWake(p, d, stateParked)
		p.park()
		return
	}
	p.env.sched(d, func() { p.env.unpark(p) })
	p.park()
}

// Compute occupies one CPU core of the process's node for d: the modeled
// service time of a software section (request parsing, KV accesses, WAL
// appends). On nodes with Cores == 0 it is a pure delay; with d == 0 it is a
// no-op. CPU cores queue FIFO, which is what makes per-core throughput
// saturation and head-of-line blocking emerge in the simulation.
func (p *Proc) Compute(d Duration) {
	if d <= 0 {
		return
	}
	if p.node.cores == nil {
		p.Sleep(d)
		return
	}
	p.node.cores.Acquire(p)
	p.Sleep(d)
	p.node.cores.Release()
}

// Peek returns the value without blocking; ok is false if incomplete. Used
// by harness code inspecting results after a simulation drained.
func (f *Future) Peek() (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.done
}
