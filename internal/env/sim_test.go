package env

import (
	"testing"
)

func TestSimClockAdvancesWithSleep(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var woke Time
	s.Spawn(1, func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	s.Run()
	if woke != 5*Microsecond {
		t.Fatalf("woke at %d, want %d", woke, 5*Microsecond)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewSim(42)
		defer s.Shutdown()
		s.Net().Jitter = 500
		var times []Time
		s.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) {
			times = append(times, p.Now())
		}})
		s.AddNode(1, NodeConfig{})
		s.Spawn(1, func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Send(2, i)
				p.Sleep(100)
			}
		})
		s.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("deliveries: %d and %d, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSimMessageLatency(t *testing.T) {
	s := NewSim(7)
	defer s.Shutdown()
	s.Net().Latency = 1500
	s.Net().Jitter = 0
	var at Time
	s.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) { at = p.Now() }})
	s.AddNode(1, NodeConfig{})
	s.Spawn(1, func(p *Proc) { p.Send(2, "hi") })
	s.Run()
	if at != 1500 {
		t.Fatalf("delivered at %d, want 1500", at)
	}
}

func TestSimDropAndFilter(t *testing.T) {
	s := NewSim(7)
	defer s.Shutdown()
	got := 0
	s.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) { got++ }})
	s.AddNode(1, NodeConfig{})
	s.Net().Filter = func(from, to NodeID, msg any) Verdict {
		if v, ok := msg.(int); ok && v%2 == 0 {
			return Drop
		}
		return Pass
	}
	s.Spawn(1, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Send(2, i)
		}
	})
	s.Run()
	if got != 5 {
		t.Fatalf("delivered %d, want 5 (evens dropped)", got)
	}
}

func TestSimDuplication(t *testing.T) {
	s := NewSim(7)
	defer s.Shutdown()
	got := 0
	s.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) { got++ }})
	s.AddNode(1, NodeConfig{})
	s.Net().Filter = func(from, to NodeID, msg any) Verdict { return Dup }
	s.Spawn(1, func(p *Proc) { p.Send(2, "x") })
	s.Run()
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

func TestSimDownNodeDropsTraffic(t *testing.T) {
	s := NewSim(7)
	defer s.Shutdown()
	got := 0
	n2 := s.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) { got++ }})
	s.AddNode(1, NodeConfig{})
	n2.SetDown(true)
	s.Spawn(1, func(p *Proc) { p.Send(2, "x") })
	s.Run()
	if got != 0 {
		t.Fatalf("crashed node received %d messages", got)
	}
	n2.SetDown(false)
	s.Spawn(1, func(p *Proc) { p.Send(2, "x") })
	s.Run()
	if got != 1 {
		t.Fatalf("recovered node received %d messages, want 1", got)
	}
}

func TestFutureCompleteBeforeWait(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	f := NewFuture()
	f.Complete(99)
	f.Complete(100) // duplicate ignored
	var got any
	s.Spawn(1, func(p *Proc) { got = f.Wait(p) })
	s.Run()
	if got != 99 {
		t.Fatalf("got %v, want 99", got)
	}
}

func TestFutureWaitThenComplete(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	f := NewFuture()
	var got any
	var at Time
	s.Spawn(1, func(p *Proc) {
		got = f.Wait(p)
		at = p.Now()
	})
	s.Spawn(1, func(p *Proc) {
		p.Sleep(10 * Microsecond)
		f.Complete("done")
	})
	s.Run()
	if got != "done" || at != 10*Microsecond {
		t.Fatalf("got %v at %d", got, at)
	}
}

func TestFutureTimeout(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	f := NewFuture()
	var ok bool
	var at Time
	s.Spawn(1, func(p *Proc) {
		_, ok = f.WaitTimeout(p, 3*Microsecond)
		at = p.Now()
	})
	s.Run()
	if ok || at != 3*Microsecond {
		t.Fatalf("ok=%v at=%d, want timeout at 3µs", ok, at)
	}
}

func TestFutureTimeoutBeatenByComplete(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	f := NewFuture()
	var got any
	var ok bool
	s.Spawn(1, func(p *Proc) { got, ok = f.WaitTimeout(p, 10*Microsecond) })
	s.Spawn(1, func(p *Proc) {
		p.Sleep(2 * Microsecond)
		f.Complete(7)
	})
	s.Run()
	if !ok || got != 7 {
		t.Fatalf("got %v ok=%v, want 7 true", got, ok)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m Mutex
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn(1, func(p *Proc) {
			p.Sleep(Duration(i) * 10) // arrive in index order
			m.Lock(p)
			order = append(order, i)
			p.Sleep(Microsecond)
			m.Unlock()
		})
	}
	s.Run()
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want FIFO %v", order, want)
		}
	}
}

func TestMutexSerializesCriticalSections(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 10; i++ {
		s.Spawn(1, func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Microsecond)
			inside--
			m.Unlock()
		})
	}
	end := s.Run()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d", maxInside)
	}
	if end < 10*Microsecond {
		t.Fatalf("10 serialized 1µs sections finished in %d", end)
	}
}

func TestSemaphoreLimitsParallelism(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{Cores: 2})
	// 8 × 1 µs of compute on 2 cores must take 4 µs of virtual time.
	for i := 0; i < 8; i++ {
		s.Spawn(1, func(p *Proc) { p.Compute(Microsecond) })
	}
	end := s.Run()
	if end != 4*Microsecond {
		t.Fatalf("8×1µs on 2 cores ended at %d, want 4µs", end)
	}
}

func TestComputeUnlimitedCores(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{}) // Cores == 0: pure delay
	for i := 0; i < 8; i++ {
		s.Spawn(1, func(p *Proc) { p.Compute(Microsecond) })
	}
	if end := s.Run(); end != Microsecond {
		t.Fatalf("parallel compute ended at %d, want 1µs", end)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m Mutex
	var c Cond
	ready := false
	woke := 0
	for i := 0; i < 4; i++ {
		s.Spawn(1, func(p *Proc) {
			m.Lock(p)
			for !ready {
				c.Wait(p, &m)
			}
			woke++
			m.Unlock()
		})
	}
	s.Spawn(1, func(p *Proc) {
		p.Sleep(5 * Microsecond)
		m.Lock(p)
		ready = true
		m.Unlock()
		c.Broadcast()
	})
	s.Run()
	if woke != 4 {
		t.Fatalf("woke %d waiters, want 4", woke)
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	fired := false
	tm := s.After(Microsecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunFor(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	ticks := 0
	s.Spawn(1, func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			ticks++
		}
	})
	// RunFor stops at the scheduled horizon; the wakeup at exactly t=10µs was
	// scheduled after the stop event and does not run.
	s.RunFor(10 * Microsecond)
	if ticks != 9 {
		t.Fatalf("ticks=%d, want 9", ticks)
	}
}

func TestShutdownKillsParkedProcs(t *testing.T) {
	s := NewSim(1)
	s.AddNode(1, NodeConfig{})
	f := NewFuture()
	for i := 0; i < 50; i++ {
		s.Spawn(1, func(p *Proc) { f.Wait(p) }) // parked forever
	}
	s.Run()
	s.Shutdown() // must not hang
}

func TestRealEnvBasics(t *testing.T) {
	r := NewReal()
	r.AddNode(1, NodeConfig{})
	done := make(chan Time, 1)
	r.AddNode(2, NodeConfig{Handler: func(p *Proc, from NodeID, msg any) {
		if msg != "ping" || from != 1 {
			t.Errorf("got %v from %d", msg, from)
		}
		done <- p.Now()
	}})
	r.Spawn(1, func(p *Proc) { p.Send(2, "ping") })
	<-done
}

func TestRealEnvFutureAndMutex(t *testing.T) {
	r := NewReal()
	r.AddNode(1, NodeConfig{})
	f := NewFuture()
	var m Mutex
	got := make(chan any, 1)
	r.Spawn(1, func(p *Proc) {
		m.Lock(p)
		v := f.Wait(p)
		m.Unlock()
		got <- v
	})
	r.Spawn(1, func(p *Proc) {
		p.Sleep(Millisecond)
		f.Complete(123)
	})
	if v := <-got; v != 123 {
		t.Fatalf("got %v", v)
	}
}
