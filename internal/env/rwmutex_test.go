package env

import "testing"

func TestRWMutexReadersShare(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m RWMutex
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		s.Spawn(1, func(p *Proc) {
			m.RLock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Microsecond)
			inside--
			m.RUnlock()
		})
	}
	if end := s.Run(); end != Microsecond {
		t.Fatalf("readers serialized: 5×1µs took %d", end)
	}
	if maxInside != 5 {
		t.Fatalf("max concurrent readers = %d", maxInside)
	}
}

func TestRWMutexWriterExcludes(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m RWMutex
	var order []string
	s.Spawn(1, func(p *Proc) {
		m.Lock(p)
		order = append(order, "w1-in")
		p.Sleep(2 * Microsecond)
		order = append(order, "w1-out")
		m.Unlock()
	})
	s.Spawn(1, func(p *Proc) {
		p.Sleep(Microsecond)
		m.RLock(p)
		order = append(order, "r")
		m.RUnlock()
	})
	s.Run()
	want := []string{"w1-in", "w1-out", "r"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestRWMutexWriterNotStarved(t *testing.T) {
	// FIFO queue: a writer arriving amid a reader stream blocks later
	// readers, so it cannot starve.
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m RWMutex
	var got []string
	// Reader R1 holds the lock; writer W queues; reader R2 arrives later and
	// must wait behind W.
	s.Spawn(1, func(p *Proc) {
		m.RLock(p)
		p.Sleep(3 * Microsecond)
		m.RUnlock()
	})
	s.Spawn(1, func(p *Proc) {
		p.Sleep(Microsecond)
		m.Lock(p)
		got = append(got, "W")
		m.Unlock()
	})
	s.Spawn(1, func(p *Proc) {
		p.Sleep(2 * Microsecond)
		m.RLock(p)
		got = append(got, "R2")
		m.RUnlock()
	})
	s.Run()
	if len(got) != 2 || got[0] != "W" || got[1] != "R2" {
		t.Fatalf("order %v, want [W R2]", got)
	}
}

func TestRWMutexReaderBatchAfterWriter(t *testing.T) {
	s := NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, NodeConfig{})
	var m RWMutex
	concurrent := 0
	peak := 0
	s.Spawn(1, func(p *Proc) {
		m.Lock(p)
		p.Sleep(Microsecond)
		m.Unlock()
	})
	for i := 0; i < 4; i++ {
		s.Spawn(1, func(p *Proc) {
			p.Sleep(100) // queue behind the writer
			m.RLock(p)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			p.Sleep(Microsecond)
			concurrent--
			m.RUnlock()
		})
	}
	s.Run()
	if peak != 4 {
		t.Fatalf("queued readers not granted as a batch: peak=%d", peak)
	}
}

func TestRWMutexMisuse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock without RLock did not panic")
		}
	}()
	var m RWMutex
	m.RUnlock()
}
