package env

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering drives the ladder queue with randomized interleaved
// push/pop schedules and checks every pop against a reference model sorted
// by (at, seq) — the total order the simulator's determinism rests on.
func TestEventQueueOrdering(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		var ref []event
		var cur Time
		var seq uint64
		// Delay mix mirroring the simulator: immediate wakeups, link-latency
		// deliveries, retransmission timeouts beyond the ring window, and
		// occasional far-future timers.
		delays := []Duration{0, 0, 0, 1, 100, 1500, 1700, 2 * Millisecond,
			2 * Millisecond, 5 * Millisecond, 40 * Millisecond, 300 * Millisecond}
		for step := 0; step < 4000; step++ {
			if q.Len() != len(ref) {
				t.Fatalf("trial %d step %d: Len=%d want %d", trial, step, q.Len(), len(ref))
			}
			if q.Len() == 0 || rnd.Intn(3) != 0 {
				d := delays[rnd.Intn(len(delays))]
				if rnd.Intn(8) == 0 {
					d += Duration(rnd.Int63n(int64(10 * Millisecond)))
				}
				seq++
				ev := event{at: cur + d, seq: seq, aux: seq}
				q.push(ev)
				ref = append(ref, ev)
				continue
			}
			sort.Slice(ref, func(i, j int) bool { return ref[i].before(&ref[j]) })
			want := ref[0]
			ref = ref[1:]
			got := q.pop()
			if got.at != want.at || got.seq != want.seq || got.aux != want.aux {
				t.Fatalf("trial %d step %d: popped (at=%d seq=%d), want (at=%d seq=%d)",
					trial, step, got.at, got.seq, want.at, want.seq)
			}
			if got.at < cur {
				t.Fatalf("trial %d step %d: time went backwards (%d < %d)", trial, step, got.at, cur)
			}
			cur = got.at
		}
		// Drain: the remainder must come out in exact (at, seq) order.
		sort.Slice(ref, func(i, j int) bool { return ref[i].before(&ref[j]) })
		for i := 0; q.Len() > 0; i++ {
			got := q.pop()
			if got.at != ref[i].at || got.seq != ref[i].seq {
				t.Fatalf("trial %d drain %d: popped (at=%d seq=%d), want (at=%d seq=%d)",
					trial, i, got.at, got.seq, ref[i].at, ref[i].seq)
			}
			cur = got.at
		}
	}
}

// TestEventQueueSparseJumps exercises large time gaps that skip far past the
// ring window in one hop (idle simulations with a lone recovery timer).
func TestEventQueueSparseJumps(t *testing.T) {
	var q eventQueue
	var seq uint64
	at := []Time{0, 100, 3 * Millisecond, 600 * Millisecond, 601 * Millisecond,
		10 * Second, 10*Second + 1}
	for _, a := range at {
		seq++
		q.push(event{at: a, seq: seq})
	}
	for i, want := range at {
		got := q.pop()
		if got.at != want {
			t.Fatalf("pop %d: at=%d want %d", i, got.at, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}
