package env

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Sim is the deterministic discrete-event environment. All processes are
// cooperatively scheduled: exactly one process (or event callback) executes
// at any moment, events fire in (time, insertion) order, and every random
// decision comes from a single seeded generator — identical configurations
// produce identical executions.
type Sim struct {
	cur   Time
	seq   uint64
	pq    eventQueue
	nodes map[NodeID]*Node
	net   NetConfig
	rnd   *rand.Rand

	yield   chan struct{}
	stopped bool

	free []*simProcState // pooled worker goroutines
	all  []*simProcState // every live worker, for Shutdown

	// Stats observable by harnesses.
	Delivered uint64
	Dropped   uint64
	// lastBusy is the virtual time of the last real work (a process ran);
	// cancelled-timer no-ops do not advance it.
	lastBusy Time
}

type simProcState struct {
	p      *Proc
	fn     func(*Proc)
	exited bool
}

// NewSim creates a simulator seeded for deterministic execution.
func NewSim(seed int64) *Sim {
	s := &Sim{
		nodes: make(map[NodeID]*Node),
		rnd:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		net:   DefaultNetConfig(),
	}
	return s
}

// Now returns the virtual clock.
func (s *Sim) Now() Time { return s.cur }
func (s *Sim) now() Time { return s.cur }

// Net returns the mutable network configuration.
func (s *Sim) Net() *NetConfig { return &s.net }

// AddNode registers (or re-registers) a node.
func (s *Sim) AddNode(id NodeID, cfg NodeConfig) *Node {
	n := s.nodes[id]
	if n == nil {
		n = &Node{ID: id, env: s}
		s.nodes[id] = n
	}
	n.h = cfg.Handler
	if cfg.Cores > 0 {
		n.cores = NewSemaphore(cfg.Cores)
	} else {
		n.cores = nil
	}
	n.down = false
	return n
}

// Node returns a registered node or nil.
func (s *Sim) Node(id NodeID) *Node { return s.nodes[id] }

// Spawn starts a process on the given node at the current virtual time.
func (s *Sim) Spawn(node NodeID, fn func(*Proc)) {
	n := s.nodes[node]
	if n == nil {
		panic("env: Spawn on unregistered node")
	}
	s.newProc(n, fn)
}

// After schedules a callback.
func (s *Sim) After(d Duration, fn func()) *Timer { return s.sched(d, fn) }

func (s *Sim) sched(d Duration, fn func()) *Timer {
	t := &Timer{fn: fn}
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.pq, event{at: s.cur + d, seq: s.seq, fn: t.fire})
	return t
}

func (s *Sim) randFloat() float64 { return s.rnd.Float64() }

func (s *Sim) randJitter(j Duration) Duration {
	if j <= 0 {
		return 0
	}
	return Duration(s.rnd.Int63n(int64(j)))
}

// deliver sends a message through the simulated network.
func (s *Sim) deliver(from, to NodeID, msg any, extraDelay Duration) {
	src := s.nodes[from]
	if src != nil && src.down {
		return // a crashed node emits nothing
	}
	drop, dup, delay := s.net.decide(from, to, msg, s)
	if drop {
		s.Dropped++
		return
	}
	n := 1
	if dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		d := delay + extraDelay
		if i > 0 {
			d += s.randJitter(s.net.Latency) // duplicates trail the original
		}
		s.sched(d, func() {
			dst := s.nodes[to]
			if dst == nil || dst.down || dst.h == nil {
				s.Dropped++
				return
			}
			s.Delivered++
			s.newProc(dst, func(p *Proc) { dst.h(p, from, msg) })
		})
	}
}

// newProc dispatches fn on a pooled worker goroutine, scheduled immediately.
func (s *Sim) newProc(node *Node, fn func(*Proc)) {
	var st *simProcState
	if k := len(s.free); k > 0 {
		st = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		st = &simProcState{p: &Proc{env: s, resume: make(chan struct{}, 1)}}
		s.all = append(s.all, st)
		go s.workerLoop(st)
	}
	st.p.node = node
	st.fn = fn
	st.p.state = stateDispatched
	s.sched(0, func() { s.runProc(st.p, stateDispatched) })
}

// Proc lifecycle states (diagnostics for the scheduler invariants).
const (
	stateIdle = iota
	stateDispatched
	stateRunning
	stateParked
)

// workerLoop is the body of a pooled worker goroutine.
func (s *Sim) workerLoop(st *simProcState) {
	defer func() {
		// A killed worker unwinds with killSentinel; anything else is a real
		// bug and must crash the test/benchmark loudly.
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				st.exited = true
				s.yield <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	for {
		<-st.p.resume
		if st.p.killed {
			panic(killSentinel{})
		}
		if st.p.state != stateRunning {
			panic(fmt.Sprintf("env: worker woke with stale token (state %d)", st.p.state))
		}
		if st.fn == nil {
			panic("env: worker dispatched with no function (stale token)")
		}
		st.fn(st.p)
		st.fn = nil
		st.p.state = stateIdle
		s.free = append(s.free, st)
		s.yield <- struct{}{}
	}
}

type killSentinel struct{}

// runProc transfers control to p until it parks, finishes, or dies.
func (s *Sim) runProc(p *Proc, want int) {
	s.lastBusy = s.cur
	if p.state != want {
		panic(fmt.Sprintf("env: scheduling a proc in state %d, want %d", p.state, want))
	}
	p.state = stateRunning
	select {
	case p.resume <- struct{}{}:
	default:
		panic("env: double unpark — a process was made runnable twice for one park")
	}
	<-s.yield
}

// park is called from a running process to hand control back to the
// scheduler until unparked.
func (p *Proc) park() {
	if s, ok := p.env.(*Sim); ok {
		p.state = stateParked
		s.yield <- struct{}{}
		<-p.resume
		if p.killed {
			panic(killSentinel{})
		}
		if p.state != stateRunning {
			panic(fmt.Sprintf("env: park woke with stale token (state %d)", p.state))
		}
		return
	}
	<-p.resume
}

// unpark makes a parked process runnable at the current virtual time.
func (s *Sim) unpark(p *Proc) {
	s.sched(0, func() { s.runProc(p, stateParked) })
}

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time reached. A Stop from an earlier Run does not carry over.
func (s *Sim) Run() Time {
	s.stopped = false
	for !s.stopped && s.pq.Len() > 0 {
		ev := heap.Pop(&s.pq).(event)
		if ev.at > s.cur {
			s.cur = ev.at
		}
		ev.fn()
	}
	return s.cur
}

// RunFor executes events for d of virtual time, then stops (leaving pending
// events queued). It returns the virtual time reached.
func (s *Sim) RunFor(d Duration) Time {
	s.sched(d, func() { s.stopped = true })
	return s.Run()
}

// Stop halts Run after the current event.
func (s *Sim) Stop() { s.stopped = true }

// LastBusy returns the virtual time of the most recent process execution —
// the drain point of background work, ignoring trailing cancelled timers.
func (s *Sim) LastBusy() Time { return s.lastBusy }

// Shutdown kills every live process so the worker goroutines exit. The
// simulation must not be Run again afterwards. Benchmarks call Shutdown after
// every configuration so parked processes do not accumulate across runs.
func (s *Sim) Shutdown() {
	s.stopped = true
	for _, st := range s.all {
		if st.exited {
			continue
		}
		st.p.killed = true
		st.p.resume <- struct{}{}
		<-s.yield
	}
	s.free = nil
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
