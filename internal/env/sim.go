package env

import (
	"fmt"
	"math/rand"
)

// Sim is the deterministic discrete-event environment. All processes are
// cooperatively scheduled: exactly one process (or event callback) executes
// at any moment, events fire in (time, insertion) order, and every random
// decision comes from a single seeded generator — identical configurations
// produce identical executions.
//
// The engine is built for throughput: events are plain values in a calendar
// queue (no allocation per message delivery, wakeup, sleep or RPC timeout),
// and the scheduler is a token passed between goroutines — whichever
// goroutine holds the token drains the event queue, handing the token
// directly to the next runnable process. A process whose own wakeup is the
// next event (an uncontended Compute or Sleep) resumes without any goroutine
// switch at all.
type Sim struct {
	cur   Time
	seq   uint64
	pq    eventQueue
	nodes map[NodeID]*Node
	net   NetConfig
	rnd   *rand.Rand

	// drivers is the stack of active Run invocations' wake channels. Run may
	// be entered re-entrantly (a session body driving a nested session), so
	// a holder observing drain/stop hands the token to the innermost driver.
	drivers []chan struct{}
	// yield returns control to Shutdown from unwinding killed workers.
	yield   chan struct{}
	stopped bool

	free []*simProcState // pooled worker goroutines
	all  []*simProcState // every live worker, for Shutdown

	// Stats observable by harnesses.
	Delivered uint64
	Dropped   uint64
	// lastBusy is the virtual time of the last real work (a process ran);
	// cancelled-timer no-ops do not advance it.
	lastBusy Time
}

type simProcState struct {
	p  *Proc
	fn func(*Proc)
	// Message deliveries dispatch through the node's handler with the
	// from/msg pair stored here, avoiding a closure per packet.
	hnode  *Node
	hfrom  NodeID
	hmsg   any
	exited bool
}

// NewSim creates a simulator seeded for deterministic execution.
func NewSim(seed int64) *Sim {
	s := &Sim{
		nodes: make(map[NodeID]*Node),
		rnd:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		net:   DefaultNetConfig(),
	}
	return s
}

// Now returns the virtual clock.
func (s *Sim) Now() Time { return s.cur }
func (s *Sim) now() Time { return s.cur }

// Net returns the mutable network configuration.
func (s *Sim) Net() *NetConfig { return &s.net }

// AddNode registers (or re-registers) a node.
func (s *Sim) AddNode(id NodeID, cfg NodeConfig) *Node {
	n := s.nodes[id]
	if n == nil {
		n = &Node{ID: id, env: s}
		s.nodes[id] = n
	}
	n.h = cfg.Handler
	if cfg.Cores > 0 {
		n.cores = NewSemaphore(cfg.Cores)
	} else {
		n.cores = nil
	}
	n.down = false
	return n
}

// Node returns a registered node or nil.
func (s *Sim) Node(id NodeID) *Node { return s.nodes[id] }

// Spawn starts a process on the given node at the current virtual time.
func (s *Sim) Spawn(node NodeID, fn func(*Proc)) {
	n := s.nodes[node]
	if n == nil {
		panic("env: Spawn on unregistered node")
	}
	s.newProc(n, fn)
}

// After schedules a callback.
func (s *Sim) After(d Duration, fn func()) *Timer { return s.sched(d, fn) }

// SpawnAfter schedules fn to start on node after d of virtual time without
// holding a goroutine in the meantime: the continuation is carried by a
// queued event and dispatches on a pooled worker when it fires. This is the
// O(1)-memory idle-session shape — a session that would otherwise sleep on a
// parked goroutine between operations re-queues its next step instead, so a
// million idle clients cost a million queued events, not a million stacks.
// The pool only ever grows to the number of *concurrently running* bodies.
// If the node is down when the event fires, the continuation is dropped
// (the session dies with its node, like a delivery to a crashed node).
func (s *Sim) SpawnAfter(node NodeID, d Duration, fn func(*Proc)) {
	if s.nodes[node] == nil {
		panic("env: SpawnAfter on unregistered node")
	}
	s.push(d, event{kind: evSpawn, to: node, msg: fn})
}

// WorkerCount reports how many pooled worker goroutines have been created so
// far: the peak concurrent-body count of the run, and the figure harnesses'
// witness that parked sessions are not holding stacks.
func (s *Sim) WorkerCount() int { return len(s.all) }

// push enqueues ev at cur+d with the next insertion sequence number.
func (s *Sim) push(d Duration, ev event) {
	if d < 0 {
		d = 0
	}
	ev.at = s.cur + d
	s.seq++
	ev.seq = s.seq
	s.pq.push(ev)
}

func (s *Sim) sched(d Duration, fn func()) *Timer {
	t := &Timer{fn: fn}
	s.push(d, event{kind: evTimer, msg: t})
	return t
}

// schedWake schedules proc p (currently transitioning to state `want`) to
// run after d, with no allocation.
func (s *Sim) schedWake(p *Proc, d Duration, want int) {
	s.push(d, event{kind: evWake, p: p, aux: uint64(want)})
}

// schedTimeout schedules a Future-wait expiry for p; gen guards staleness.
func (s *Sim) schedTimeout(p *Proc, f *Future, d Duration, gen uint64) {
	s.push(d, event{kind: evTimeout, p: p, msg: f, aux: gen})
}

func (s *Sim) randFloat() float64 { return s.rnd.Float64() }

func (s *Sim) randJitter(j Duration) Duration {
	if j <= 0 {
		return 0
	}
	return Duration(s.rnd.Int63n(int64(j)))
}

// deliver sends a message through the simulated network.
func (s *Sim) deliver(from, to NodeID, msg any, extraDelay Duration) {
	src := s.nodes[from]
	if src != nil && src.down {
		return // a crashed node emits nothing
	}
	drop, dup, delay := s.net.decide(from, to, msg, s)
	if drop {
		s.Dropped++
		return
	}
	n := 1
	if dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		d := delay + extraDelay
		if i > 0 {
			d += s.randJitter(s.net.Latency) // duplicates trail the original
		}
		s.push(d, event{kind: evDeliver, from: from, to: to, msg: msg})
	}
}

// dispatchDeliver hands a delivered message to the destination's handler on
// a pooled process.
func (s *Sim) dispatchDeliver(ev *event) {
	dst := s.nodes[ev.to]
	if dst == nil || dst.down || dst.h == nil {
		s.Dropped++
		return
	}
	s.Delivered++
	st := s.takeWorker()
	st.p.node = dst
	st.p.tctx = TraceCtx{} // pooled worker: no ambient trace leaks across dispatches
	st.hnode = dst
	st.hfrom = ev.from
	st.hmsg = ev.msg
	st.p.state = stateDispatched
	s.schedWake(st.p, 0, stateDispatched)
}

// newProc dispatches fn on a pooled worker goroutine, scheduled immediately.
func (s *Sim) newProc(node *Node, fn func(*Proc)) {
	st := s.takeWorker()
	st.p.node = node
	st.p.tctx = TraceCtx{}
	st.fn = fn
	st.p.state = stateDispatched
	s.schedWake(st.p, 0, stateDispatched)
}

// takeWorker pops a pooled worker or starts a fresh one.
func (s *Sim) takeWorker() *simProcState {
	if k := len(s.free); k > 0 {
		st := s.free[k-1]
		s.free = s.free[:k-1]
		return st
	}
	st := &simProcState{p: &Proc{env: s, resume: make(chan struct{}, 1)}}
	s.all = append(s.all, st)
	go s.workerLoop(st)
	return st
}

// Proc lifecycle states (diagnostics for the scheduler invariants).
const (
	stateIdle = iota
	stateDispatched
	stateRunning
	stateParked
)

// workerLoop is the body of a pooled worker goroutine.
func (s *Sim) workerLoop(st *simProcState) {
	defer func() {
		// A killed worker unwinds with killSentinel; anything else is a real
		// bug and must crash the test/benchmark loudly.
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				st.exited = true
				s.yield <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	<-st.p.resume
	// The worker now holds the scheduler token; it keeps it between
	// dispatches, driving the event loop itself after each body returns.
	for {
		if st.p.killed {
			panic(killSentinel{})
		}
		if st.p.state != stateRunning {
			panic(fmt.Sprintf("env: worker woke with stale token (state %d)", st.p.state))
		}
		switch {
		case st.hnode != nil:
			n, from, msg := st.hnode, st.hfrom, st.hmsg
			st.hnode, st.hmsg = nil, nil
			if n.h != nil {
				n.h(st.p, from, msg)
			}
		case st.fn != nil:
			fn := st.fn
			st.fn = nil
			fn(st.p)
		default:
			panic("env: worker dispatched with no function (stale token)")
		}
		st.p.state = stateIdle
		s.free = append(s.free, st)
		// Still holding the token: keep the simulation moving until this
		// worker is dispatched again.
		s.loop(st.p)
	}
}

type killSentinel struct{}

// runLoop is the driver side of the scheduler: it drains the event queue
// until the simulation stops or runs dry. Each Run invocation (they nest
// when a session body drives a nested session) registers a wake channel;
// whichever token holder observes drain/stop hands the token to the
// innermost driver.
func (s *Sim) runLoop() {
	ch := make(chan struct{})
	s.drivers = append(s.drivers, ch)
	defer func() { s.drivers = s.drivers[:len(s.drivers)-1] }()
	for {
		if s.stopped || s.pq.Len() == 0 {
			return
		}
		ev := s.pq.pop()
		if ev.at > s.cur {
			s.cur = ev.at
		}
		if s.exec(&ev) {
			// Token handed to a process; it comes back on drain/stop.
			<-ch
		}
	}
}

// loop is the process side: it drains events while `me` (parking, or a
// pooled worker awaiting redispatch) holds the token, and returns as soon
// as me is made runnable again — inline, with no goroutine switch, when
// me's own wakeup is popped by this holder; otherwise after handing the
// token away and sleeping until it returns.
func (s *Sim) loop(me *Proc) {
	for {
		if s.stopped || s.pq.Len() == 0 {
			// Hand the token to the innermost driver and wait to be woken
			// like any parked process.
			s.drivers[len(s.drivers)-1] <- struct{}{}
			s.await(me)
			return
		}
		ev := s.pq.pop()
		if ev.at > s.cur {
			s.cur = ev.at
		}
		if ev.kind == evWake && ev.p == me {
			s.lastBusy = s.cur
			if me.state != int(ev.aux) {
				panic(fmt.Sprintf("env: scheduling a proc in state %d, want %d", me.state, ev.aux))
			}
			me.state = stateRunning
			return // token stays here; the park/dispatch completes inline
		}
		if s.exec(&ev) {
			s.await(me)
			return
		}
	}
}

// exec performs one event. It returns true when the event transferred the
// scheduler token to another goroutine (the caller must wait), false when
// it completed inline.
func (s *Sim) exec(ev *event) bool {
	switch ev.kind {
	case evTimer:
		ev.msg.(*Timer).fire()
	case evTimeout:
		s.fireTimeout(ev)
	case evDeliver:
		s.dispatchDeliver(ev)
	case evSpawn:
		if n := s.nodes[ev.to]; n != nil && !n.down {
			s.newProc(n, ev.msg.(func(*Proc)))
		}
	case evWake:
		p := ev.p
		s.lastBusy = s.cur
		if p.state != int(ev.aux) {
			panic(fmt.Sprintf("env: scheduling a proc in state %d, want %d", p.state, ev.aux))
		}
		p.state = stateRunning
		select {
		case p.resume <- struct{}{}:
		default:
			panic("env: double unpark — a process was made runnable twice for one park")
		}
		return true
	}
	return false
}

// await blocks until the token is handed to p (its wakeup was dispatched by
// another holder), then validates the transfer.
func (s *Sim) await(p *Proc) {
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	if p.state != stateRunning {
		panic(fmt.Sprintf("env: park woke with stale token (state %d)", p.state))
	}
}

// fireTimeout expires a Future wait unless the wait already completed (the
// generation is stale or the future found its value).
func (s *Sim) fireTimeout(ev *event) {
	p, f := ev.p, ev.msg.(*Future)
	if p.twGen != ev.aux {
		return // the wait already ended; this timeout was cancelled
	}
	f.mu.Lock()
	if f.done || f.waiter != p {
		f.mu.Unlock()
		return
	}
	f.waiter = nil
	f.mu.Unlock()
	p.timedOut = true
	s.unpark(p)
}

// park is called from a running process to hand control back to the
// scheduler until unparked. Under Sim the parking process itself drives the
// event loop, so an immediately-runnable successor (or its own wakeup)
// proceeds without a goroutine round trip.
func (p *Proc) park() {
	if s, ok := p.env.(*Sim); ok {
		p.state = stateParked
		s.loop(p)
		return
	}
	<-p.resume
}

// unpark makes a parked process runnable at the current virtual time.
func (s *Sim) unpark(p *Proc) {
	s.schedWake(p, 0, stateParked)
}

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time reached. A Stop from an earlier Run does not carry over.
func (s *Sim) Run() Time {
	s.stopped = false
	s.runLoop()
	return s.cur
}

// RunFor executes events for d of virtual time, then stops (leaving pending
// events queued). It returns the virtual time reached.
func (s *Sim) RunFor(d Duration) Time {
	s.sched(d, func() { s.stopped = true })
	return s.Run()
}

// Stop halts Run after the current event.
func (s *Sim) Stop() { s.stopped = true }

// LastBusy returns the virtual time of the most recent process execution —
// the drain point of background work, ignoring trailing cancelled timers.
func (s *Sim) LastBusy() Time { return s.lastBusy }

// Shutdown kills every live process so the worker goroutines exit. The
// simulation must not be Run again afterwards. Benchmarks call Shutdown after
// every configuration so parked processes do not accumulate across runs.
func (s *Sim) Shutdown() {
	s.stopped = true
	for _, st := range s.all {
		if st.exited {
			continue
		}
		st.p.killed = true
		st.p.resume <- struct{}{}
		<-s.yield
	}
	s.free = nil
}
