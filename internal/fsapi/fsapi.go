// Package fsapi defines the operation surface shared by SwitchFS and the
// emulated baseline systems, so workloads and figure harnesses drive every
// system under comparison through one interface (the paper's evaluation
// methodology, §7.1).
package fsapi

import (
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// FS is one client's view of a filesystem under test. Operations block the
// calling process until completion. Read-style operations return typed
// results so harnesses can verify what the evaluation actually reads back,
// not just that the call completed.
type FS interface {
	Create(p *env.Proc, path string) error
	Delete(p *env.Proc, path string) error
	Mkdir(p *env.Proc, path string) error
	Rmdir(p *env.Proc, path string) error
	// Stat returns the file's attribute block.
	Stat(p *env.Proc, path string) (core.Attr, error)
	// Open returns the file's attribute block captured at open time.
	Open(p *env.Proc, path string) (core.Attr, error)
	Close(p *env.Proc, path string) error
	Chmod(p *env.Proc, path string, perm core.Perm) error
	// StatDir returns the directory's attributes; Attr.Size is the entry
	// count after aggregating deferred updates.
	StatDir(p *env.Proc, path string) (core.Attr, error)
	// ReadDir returns the directory's entry list.
	ReadDir(p *env.Proc, path string) ([]core.DirEntry, error)
	Rename(p *env.Proc, src, dst string) error
	// Link creates a hard link dst pointing at src's file (§5.5).
	Link(p *env.Proc, src, dst string) error
	// Data models a small-file content access on a data node (§7.6).
	Data(p *env.Proc, shard int, write bool, bytes int64) error
}

// System builds per-worker FS handles and stands up namespaces.
type System interface {
	// Name labels result rows.
	Name() string
	// ClientFS returns the FS bound to client i (mod the client pool).
	ClientFS(i int) FS
	// Preload installs a namespace without going through the protocol:
	// filesPerDir files named f0..fN-1 in each listed directory.
	Preload(dirs []string, filesPerDir int)
	// Drain applies all deferred background work immediately (change-log
	// flushes), so sustained-throughput measurements charge systems for the
	// work their operations deferred. Synchronous systems are already
	// drained.
	Drain(p *env.Proc)
}
