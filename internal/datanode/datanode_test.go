package datanode_test

import (
	"errors"
	"fmt"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// deploy stands up a cluster with a data plane on a fresh simulation.
func deploy(t *testing.T, seed int64, nodes, r int) (*env.Sim, *cluster.Cluster) {
	t.Helper()
	sim := env.NewSim(seed)
	t.Cleanup(sim.Shutdown)
	c := cluster.New(sim, cluster.Options{
		Servers: 2, Clients: 2, DataNodes: nodes, DataReplication: r,
		SwitchIndexBits: 8, Costs: env.DefaultCosts(),
	})
	return sim, c
}

// TestWriteReplicatesBeforeAck: an acknowledged write is on every replica —
// crash the primary immediately after the ack and the backup must still
// serve (and re-seed) the acked version.
func TestWriteReplicatesBeforeAck(t *testing.T) {
	_, c := deploy(t, 1, 4, 2)
	chunk := wire.ChunkKey{File: 7, Stripe: 3}
	var ver uint64
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		v, err := cl.WriteChunk(p, c.DataNodes[0], chunk, 4096)
		if err != nil {
			t.Errorf("write: %v", err)
		}
		ver = v
	})
	// The ack implies both replicas applied — synchronously, not eventually.
	if got := c.DataServers[0].ChunkVer(chunk); got != ver {
		t.Errorf("primary holds version %d, acked %d", got, ver)
	}
	if got := c.DataServers[1].ChunkVer(chunk); got != ver {
		t.Errorf("backup holds version %d, acked %d (ack before replication?)", got, ver)
	}
}

// TestLinkRuleDupReorderPreservesDedup mirrors the metadata-side tests in
// internal/cluster and internal/baseline: duplication and reorder on every
// client↔data link must not re-execute chunk writes. The old inline data
// stub had no (client, RPC) dedup, so every duplicated DataReq re-executed
// — with versioned chunks that bug is visible as a version above the write
// count.
func TestLinkRuleDupReorderPreservesDedup(t *testing.T) {
	sim, c := deploy(t, 3, 4, 2)
	rule := env.LinkRule{Dup: 0.3, Jitter: 4 * env.Microsecond}
	for _, dn := range c.DataNodes {
		sim.Net().SetLink(c.ClientID(0), dn, rule)
		sim.Net().SetLink(dn, c.ClientID(0), rule)
	}
	const writes = 30
	chunk := wire.ChunkKey{File: 9, Stripe: 0}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for i := 0; i < writes; i++ {
			ver, err := cl.WriteChunk(p, c.DataNodes[2], chunk, 512)
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if ver != uint64(i+1) {
				t.Errorf("write %d acked version %d (duplication re-executed a write)", i, ver)
				return
			}
		}
		ver, _, err := cl.ReadChunk(p, c.DataNodes[2], chunk)
		if err != nil || ver != writes {
			t.Errorf("final read ver=%d err=%v, want %d", ver, err, writes)
		}
	})
}

// TestCrashRecoveryReplicates: a fail-stopped data node loses its volatile
// store; recovery must pull every chunk it is a replica of back from its
// peers before serving, so no acknowledged version regresses.
func TestCrashRecoveryReplicates(t *testing.T) {
	sim, c := deploy(t, 5, 4, 2)
	acked := map[wire.ChunkKey]uint64{}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for f := 0; f < 8; f++ {
			for s := 0; s < 2; s++ {
				chunk := wire.ChunkKey{File: uint32(f), Stripe: uint32(s)}
				node := c.DataNodes[f%len(c.DataNodes)]
				ver, err := cl.WriteChunk(p, node, chunk, 1024)
				if err != nil {
					t.Fatalf("write %v: %v", chunk, err)
				}
				acked[chunk] = ver
			}
		}
	})
	crash := 1
	before := c.DataServers[crash].Chunks()
	if before == 0 {
		t.Fatal("crash target holds no chunks; placement broken")
	}
	c.CrashDataNode(crash)
	fut := c.RecoverDataNode(crash)
	sim.Run()
	if v, ok := fut.Peek(); !ok {
		t.Fatal("recovery never completed")
	} else if err, isErr := v.(error); isErr {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := c.DataServers[crash].Chunks(); got != before {
		t.Errorf("recovered node holds %d chunks, crashed with %d", got, before)
	}
	if c.DataNodesDown() != 0 {
		t.Errorf("DataNodesDown=%d after recovery", c.DataNodesDown())
	}
	// Every acked version is readable again, wherever it lives.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for f := 0; f < 8; f++ {
			for s := 0; s < 2; s++ {
				chunk := wire.ChunkKey{File: uint32(f), Stripe: uint32(s)}
				node := c.DataNodes[f%len(c.DataNodes)]
				ver, _, err := cl.ReadChunk(p, node, chunk)
				if err != nil || ver != acked[chunk] {
					t.Errorf("chunk %v: ver=%d err=%v, acked %d", chunk, ver, err, acked[chunk])
				}
			}
		}
	})
}

// TestWriteUnackedWhileBackupDown: with a backup fail-stopped, writes whose
// replica set includes it must NOT be acknowledged (they time out) — the
// durability contract says an ack implies r copies. After recovery the same
// write path succeeds again.
func TestWriteUnackedWhileBackupDown(t *testing.T) {
	sim, c := deploy(t, 7, 2, 2)
	chunk := wire.ChunkKey{File: 1, Stripe: 0}
	c.CrashDataNode(1) // backup of everything primary-ed on node 0
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		_, err := cl.WriteChunk(p, c.DataNodes[0], chunk, 64)
		if !errors.Is(err, core.ErrTimeout) {
			t.Errorf("write with backup down: err=%v, want timeout (unacked)", err)
		}
	})
	fut := c.RecoverDataNode(1)
	sim.Run()
	if _, ok := fut.Peek(); !ok {
		t.Fatal("recovery never completed")
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		ver, err := cl.WriteChunk(p, c.DataNodes[0], chunk, 64)
		if err != nil {
			t.Errorf("post-recovery write: %v", err)
		}
		if got := c.DataServers[1].ChunkVer(chunk); got != ver {
			t.Errorf("backup holds %d, acked %d", got, ver)
		}
	})
}

// TestRecoveringNodeDoesNotServeStaleReads: between restart and the end of
// the re-replication pull the node's store is part-empty; serving a read
// then would return version 0 for an acked chunk — a lost acknowledged
// write. The node must drop client requests until recovery completes.
func TestRecoveringNodeDoesNotServeStaleReads(t *testing.T) {
	sim, c := deploy(t, 11, 4, 2)
	chunk := wire.ChunkKey{File: 2, Stripe: 0}
	var acked uint64
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		v, err := cl.WriteChunk(p, c.DataNodes[2], chunk, 256)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		acked = v
	})
	c.CrashDataNode(2)
	// Issue the read concurrently with the recovery: the client retries
	// until the node serves again, and must then see the acked version.
	fut := c.RecoverDataNode(2)
	done := false
	sim.Spawn(c.ClientID(0), func(p *env.Proc) {
		cl := c.Client(0)
		ver, _, err := cl.ReadChunk(p, c.DataNodes[2], chunk)
		if err != nil {
			t.Errorf("read during recovery: %v", err)
		} else if ver != acked {
			t.Errorf("read during recovery saw version %d, acked %d (served a stale store)", ver, acked)
		}
		done = true
	})
	sim.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if _, ok := fut.Peek(); !ok {
		t.Fatal("recovery never completed")
	}
}

// TestReplicationFactorCapped: r larger than the deployed node count is
// capped, and single-node deployments still ack writes.
func TestReplicationFactorCapped(t *testing.T) {
	_, c := deploy(t, 13, 1, 3)
	if c.Opts.DataReplication != 1 {
		t.Fatalf("replication=%d, want capped to 1", c.Opts.DataReplication)
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for i := 1; i <= 3; i++ {
			ver, err := cl.WriteChunk(p, c.DataNodes[0], wire.ChunkKey{File: 1}, 64)
			if err != nil || ver != uint64(i) {
				t.Errorf("write %d: ver=%d err=%v", i, ver, err)
			}
		}
	})
}

// TestDataRetryHonorsConfiguredTimeout: the client's data retransmission
// budget scales from the configured RetryTimeout (20× per try, 8 tries)
// instead of a hardcoded 8×40ms — the session's WithRetryTimeout governs
// the data path like every metadata op.
func TestDataRetryHonorsConfiguredTimeout(t *testing.T) {
	for _, rt := range []env.Duration{500 * env.Microsecond, 2 * env.Millisecond} {
		t.Run(fmt.Sprintf("rt=%dus", rt/env.Microsecond), func(t *testing.T) {
			sim := env.NewSim(17)
			defer sim.Shutdown()
			c := cluster.New(sim, cluster.Options{
				Servers: 2, Clients: 1, DataNodes: 2,
				SwitchIndexBits: 8, Costs: env.DefaultCosts(),
				RetryTimeout: rt,
			})
			c.CrashDataNode(0)
			var elapsed env.Duration
			c.Run(0, func(p *env.Proc, cl *client.Client) {
				t0 := p.Now()
				_, err := cl.WriteChunk(p, c.DataNodes[0], wire.ChunkKey{File: 1}, 64)
				elapsed = p.Now() - t0
				if !errors.Is(err, core.ErrTimeout) {
					t.Errorf("err=%v, want timeout", err)
				}
			})
			want := 8 * 20 * rt
			if elapsed != want {
				t.Errorf("gave up after %dus, want 8 tries x 20x%dus = %dus",
					elapsed/env.Microsecond, rt/env.Microsecond, want/env.Microsecond)
			}
		})
	}
}

// TestReadServesOnlyCommitted: a write applied on the primary but stuck
// replicating (backup down) must stay invisible to readers — surfacing it
// would let a reader observe content that a single fail-stop then erases.
func TestReadServesOnlyCommitted(t *testing.T) {
	sim, c := deploy(t, 19, 2, 2)
	chunk := wire.ChunkKey{File: 4, Stripe: 0}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if _, err := cl.WriteChunk(p, c.DataNodes[0], chunk, 100); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	})
	c.CrashDataNode(1)
	// Writer parks in replication; a concurrent reader must still see the
	// last committed version (1), not the pending apply (2).
	sim.Spawn(c.ClientID(0), func(p *env.Proc) {
		cl := c.Client(0)
		if _, err := cl.WriteChunk(p, c.DataNodes[0], chunk, 200); !errors.Is(err, core.ErrTimeout) {
			t.Errorf("write with backup down: err=%v, want timeout", err)
		}
	})
	readDone := false
	sim.Spawn(c.ClientID(1), func(p *env.Proc) {
		cl := c.Client(1)
		p.Sleep(50 * env.Microsecond) // land mid-replication-stall
		ver, _, err := cl.ReadChunk(p, c.DataNodes[0], chunk)
		if err != nil {
			t.Errorf("read: %v", err)
		} else if ver != 1 {
			t.Errorf("read saw version %d, want committed 1 (dirty read of an unreplicated write)", ver)
		}
		readDone = true
	})
	sim.Run()
	if !readDone {
		t.Fatal("reader never completed")
	}
}

// TestRecoveryFailsWithNoPeers: a recovery pull that reaches no peer must
// fail (not serve an empty store as success) and leave the node
// fail-stopped so a post-heal retry can succeed.
func TestRecoveryFailsWithNoPeers(t *testing.T) {
	sim, c := deploy(t, 23, 2, 2)
	chunk := wire.ChunkKey{File: 5, Stripe: 0}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if _, err := cl.WriteChunk(p, c.DataNodes[0], chunk, 100); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	})
	c.CrashDataNode(0)
	c.CrashDataNode(1)
	fut := c.RecoverDataNode(0)
	sim.Run()
	v, ok := fut.Peek()
	if !ok {
		t.Fatal("recovery never completed")
	}
	if _, isErr := v.(error); !isErr {
		t.Fatalf("recovery with every peer down returned %v, want an error", v)
	}
	if !c.DataServers[0].Node().Down() {
		t.Error("failed recovery left the node up")
	}
	if c.DataNodesDown() != 2 {
		t.Errorf("DataNodesDown=%d, want 2 (failed recovery still counts)", c.DataNodesDown())
	}
	// Post-heal retry: both recover concurrently and answer each other's
	// pulls (the chaos harness's post-run path).
	f0 := c.RecoverDataNode(0)
	f1 := c.RecoverDataNode(1)
	sim.Run()
	for i, f := range []*env.Future{f0, f1} {
		v, ok := f.Peek()
		if !ok {
			t.Fatalf("retry recovery %d never completed", i)
		}
		if err, isErr := v.(error); isErr {
			t.Fatalf("retry recovery %d failed: %v", i, err)
		}
	}
	if c.DataNodesDown() != 0 {
		t.Errorf("DataNodesDown=%d after retries", c.DataNodesDown())
	}
}
