// Package datanode implements the SwitchFS data-plane server: the nodes the
// end-to-end workloads (§7.6) route file content to. Content is modeled as
// versioned chunks — one chunk per (file, stripe) — striped across the data
// nodes by the DataLoc slots the metadata server assigns at create time.
//
// Each chunk lives on r replicas (its primary plus the next r−1 placement
// slots in ring order). A write is addressed to the chunk's primary, which
// assigns the next version, applies locally, replicates to the backups, and
// acknowledges the client only after every backup applied — the durability
// contract the chaos data oracle checks: an acknowledged write must survive
// any ≤ r−1 data-node fail-stops.
//
// Data nodes have no WAL: a fail-stop loses the volatile chunk store, and
// durability comes from replication alone. Recovery pulls the records the
// restarted node is a replica of back from its peers (re-replication of
// under-replicated stripes) before the node serves again.
//
// Client requests are deduplicated per (client, RPC) exactly like the
// metadata servers (§5.4.1): a retransmitted DataReq replays the cached
// response instead of re-executing, so duplicated or reordered packets
// cannot bump a chunk's version twice. Replication packets need no cache —
// backups apply by version comparison, which is idempotent.
package datanode

import (
	"fmt"
	"sort"
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/trace"
	"switchfs/internal/wire"
)

// Config parameterizes one data node.
type Config struct {
	ID env.NodeID
	// Slot is this node's placement slot index in [0, Nodes).
	Slot int
	// Nodes is the deployed data-node count (the placement ring size).
	Nodes int
	// Replication is r: a chunk lives on its primary plus r−1 backups.
	Replication int
	Cores       int
	Costs       env.Costs
	// NodeOf maps a placement slot to a node id.
	NodeOf func(slot int) env.NodeID
	// RetryTimeout paces replication and recovery-pull retransmissions.
	RetryTimeout env.Duration
	// Trace records handler and replication spans (nil: tracing off).
	Trace *trace.Recorder
}

// Defaults fills zero fields.
func (c *Config) Defaults() {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Replication == 0 {
		c.Replication = 2
	}
	if c.Replication > c.Nodes && c.Nodes > 0 {
		c.Replication = c.Nodes
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 2 * env.Millisecond
	}
}

// maxRepRetries bounds a primary's replication retransmissions: a backup
// that stays down past the budget leaves the write unacknowledged (the
// client has long timed out) and the in-flight dedup marker is released so
// a later retransmission can re-execute.
const maxRepRetries = 200

// maxPullRetries bounds recovery-pull retransmissions per peer. An
// unreachable peer is skipped: its records are only at risk if every other
// replica is also down, which the chaos harness classifies as a wipe.
const maxPullRetries = 8

// chunkRec is one stored chunk: the highest applied version, the highest
// COMMITTED (fully replicated) version — the only one reads may serve — the
// modeled length of each, and the primary slot whose stripe set the record
// belongs to.
type chunkRec struct {
	ver       uint64
	bytes     int64
	committed uint64
	cbytes    int64
	primary   uint32
}

type dedupKey struct {
	client env.NodeID
	rpc    uint64
}

// repState tracks one in-flight replication round on the primary.
type repState struct {
	need map[env.NodeID]bool
	done *env.Future
}

// Stats counts data-plane activity (deterministic under Sim).
type Stats struct {
	Reads        uint64
	Writes       uint64
	Replicated   uint64 // backup-side applies
	RepRounds    uint64 // primary-side replication rounds completed
	Retries      uint64
	DedupHits    uint64
	PulledChunks uint64 // records installed during recovery
}

// Server is one data node.
type Server struct {
	cfg  Config
	env  env.Env
	node *env.Node

	mu       sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the chunk store index; leaf section, never held across a park
	store    map[wire.ChunkKey]chunkRec
	dedup    map[dedupKey]wire.Msg
	dedupLog []dedupKey
	repWait  map[uint64]*repState
	ctlWait  map[uint64]*env.Future
	nextSeq  uint64
	nextCtl  uint64

	serving bool
	// dead marks a fail-stopped incarnation: its in-flight processes must
	// unwind without replying or acking (a restarted successor owns the
	// node id).
	dead bool

	Stats Stats
}

const dedupWindow = 4096

// New builds a data node and registers it with the environment.
func New(e env.Env, cfg Config) *Server {
	cfg.Defaults()
	s := &Server{
		cfg:     cfg,
		env:     e,
		store:   make(map[wire.ChunkKey]chunkRec),
		dedup:   make(map[dedupKey]wire.Msg),
		repWait: make(map[uint64]*repState),
		ctlWait: make(map[uint64]*env.Future),
		serving: true,
	}
	// Seed per-origin counters from the clock so a restarted incarnation
	// never reuses its predecessor's sequence space (the same discipline as
	// the metadata servers).
	base := uint64(e.Now())
	s.nextSeq = base
	s.nextCtl = base
	s.node = e.AddNode(cfg.ID, env.NodeConfig{Cores: cfg.Cores, Handler: s.handle})
	return s
}

// ID returns the node id.
func (s *Server) ID() env.NodeID { return s.cfg.ID }

// Node returns the env node.
func (s *Server) Node() *env.Node { return s.node }

// Slot returns the placement slot.
func (s *Server) Slot() int { return s.cfg.Slot }

// Chunks reports the stored chunk count (diagnostics and tests).
func (s *Server) Chunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.store)
}

// ChunkVer returns the stored version of a chunk (0 when absent).
func (s *Server) ChunkVer(k wire.ChunkKey) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store[k].ver
}

// Crash simulates a fail-stop: the node drops off the network and the
// volatile chunk store is lost with this incarnation. Restart builds the
// successor.
func (s *Server) Crash() {
	s.serving = false
	s.dead = true
	s.node.SetDown(true)
}

// Restart builds a fresh (empty) data node over the same id. The caller
// then runs Recover on a process to re-replicate before it serves.
func Restart(e env.Env, cfg Config) *Server {
	s := New(e, cfg)
	s.serving = false
	return s
}

// Recover re-replicates this node's stripes: every peer is asked for the
// chunk records whose replica set includes this slot, newest version wins.
// Unreachable peers are skipped after a bounded retry budget — their
// records are only lost if every replica was down at once — but a pull that
// reaches NO peer fails the recovery outright. Serving resumes when the
// pull completes, so a half-recovered store is never read.
func (s *Server) Recover(p *env.Proc) error {
	s.serving = false
	reached := 0
	for slot := 0; slot < s.cfg.Nodes; slot++ {
		if slot == s.cfg.Slot {
			continue
		}
		peer := s.cfg.NodeOf(slot)
		v, err := s.ctlCall(p, peer, func(ctl uint64) wire.Msg {
			return &wire.DataPullReq{Ctl: ctl, From: s.cfg.ID, Slot: uint32(s.cfg.Slot)}
		})
		if err != nil {
			continue // peer down; replication covers unless wiped
		}
		reached++
		resp := v.(*wire.DataPullResp)
		s.mu.Lock()
		for _, rec := range resp.Chunks {
			if rec.Ver > s.store[rec.Chunk].ver {
				s.store[rec.Chunk] = chunkRec{ver: rec.Ver, bytes: rec.Bytes,
					committed: rec.Ver, cbytes: rec.Bytes, primary: rec.Primary}
				s.Stats.PulledChunks++
			}
		}
		s.mu.Unlock()
	}
	if s.cfg.Nodes > 1 && reached == 0 {
		// No peer answered: nothing was re-replicated, and serving an empty
		// store would read acked chunks as version 0. Recovery fails; the
		// caller re-fail-stops the node and a later attempt retries.
		return fmt.Errorf("datanode %d: recovery pull reached no peer", s.cfg.Slot)
	}
	s.serving = true
	return nil
}

// replicaSlots returns the placement slots holding a chunk whose primary
// sits at slot p: p and the next r−1 slots in ring order.
func replicaSlots(p uint32, nodes, r int) []int {
	if r > nodes {
		r = nodes
	}
	out := make([]int, 0, r)
	for i := 0; i < r; i++ {
		out = append(out, (int(p)+i)%nodes)
	}
	return out
}

// holdsSlot reports whether slot is in the replica set of a chunk with the
// given primary slot.
func holdsSlot(primary uint32, nodes, r, slot int) bool {
	for _, sl := range replicaSlots(primary, nodes, r) {
		if sl == slot {
			return true
		}
	}
	return false
}

// PrimarySlot maps a chunk key to its default primary placement slot — the
// hash used when no DataLoc placement is available (harnesses, legacy
// shard-addressed accesses).
func PrimarySlot(chunk wire.ChunkKey, nodes int) int {
	if nodes <= 0 {
		return 0
	}
	h := uint64(chunk.File)*0x9E3779B1 + uint64(chunk.Stripe)*0x85EBCA77
	return int(h % uint64(nodes))
}

// StripeSlot maps stripe s of a file with DataLoc placement loc onto a data
// slot: loc[s mod len(loc)], clamped into the deployed ring. This is THE
// striping rule — File.Write and the figure harnesses share it.
func StripeSlot(loc []uint32, stripe, nodes int) int {
	if nodes <= 0 || len(loc) == 0 {
		return 0
	}
	return int(loc[stripe%len(loc)]) % nodes
}

// handle dispatches inbound packets.
func (s *Server) handle(p *env.Proc, from env.NodeID, msg any) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		return
	}
	switch b := pkt.Body.(type) {
	case *wire.DataReq:
		if !s.serving {
			// A recovering node must not serve reads of a half-pulled
			// store (a wiped chunk would read as version 0 — a lost
			// acknowledged write). Dropping makes the client retry.
			return
		}
		sp := s.cfg.Trace.StartSpan(p, pkt.Trace, "data:io", "data")
		s.handleData(p, b)
		sp.End()
	case *wire.DataRepReq:
		// Replication flows even while recovering: applies are idempotent
		// by version and keep the store converging.
		sp := s.cfg.Trace.StartSpan(p, pkt.Trace, "data:rep", "data")
		s.handleRep(p, b)
		sp.End()
	case *wire.DataRepAck:
		s.handleRepAck(b)
	case *wire.DataPullReq:
		s.handlePull(p, b)
	case *wire.DataPullResp:
		s.completeCtl(b.Ctl, b)
	}
}

// handleData serves one client chunk access with (client, RPC) dedup.
func (s *Server) handleData(p *env.Proc, req *wire.DataReq) {
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	if !s.begin(&req.ReqCommon) {
		return // another delivery of this RPC is executing; it will answer
	}
	p.Compute(s.cfg.Costs.DataIO)
	resp := &wire.DataResp{RespCommon: wire.RespCommon{RPC: req.RPC}}
	switch req.Op {
	case core.OpRead:
		// Reads serve the committed version only: an applied-but-not-yet-
		// replicated write is still at the mercy of a single fail-stop, and
		// surfacing it would let a reader observe content that then
		// vanishes under <= r-1 failures.
		s.mu.Lock()
		rec := s.store[req.Chunk]
		s.Stats.Reads++
		s.mu.Unlock()
		resp.Ver, resp.Bytes = rec.committed, rec.cbytes
	case core.OpWrite:
		s.mu.Lock()
		rec := s.store[req.Chunk]
		ver := rec.ver + 1
		rec.ver, rec.bytes, rec.primary = ver, req.Bytes, uint32(s.cfg.Slot)
		s.store[req.Chunk] = rec
		s.Stats.Writes++
		s.mu.Unlock()
		if err := s.replicate(p, req.Chunk, ver, req.Bytes); err != nil {
			// Not durably replicated: never acknowledge (and never serve —
			// the committed watermark stays put). Release the in-flight
			// marker so a post-heal retransmission re-executes
			// (at-least-once; the fresh attempt assigns a newer version).
			s.forget(&req.ReqCommon)
			return
		}
		s.commit(req.Chunk, ver, req.Bytes)
		resp.Ver = ver
	default:
		resp.Err = core.ErrnoOf(core.ErrInvalid)
	}
	s.remember(req.Client, req.RPC, resp)
	s.reply(p, req.Client, resp)
}

// commit advances a chunk's committed watermark after replication.
func (s *Server) commit(chunk wire.ChunkKey, ver uint64, bytes int64) {
	s.mu.Lock()
	rec := s.store[chunk]
	if ver > rec.committed {
		rec.committed, rec.cbytes = ver, bytes
		s.store[chunk] = rec
	}
	s.mu.Unlock()
}

// replicate ships one chunk version to the backups and waits for every ack,
// retransmitting to the stragglers.
func (s *Server) replicate(p *env.Proc, chunk wire.ChunkKey, ver uint64, bytes int64) error {
	r := s.cfg.Replication
	if r <= 1 || s.cfg.Nodes <= 1 {
		return nil
	}
	rsp := s.cfg.Trace.Start(p, "data:replicate", "data")
	defer rsp.End()
	st := &repState{need: make(map[env.NodeID]bool), done: env.NewFuture()}
	backups := replicaSlots(uint32(s.cfg.Slot), s.cfg.Nodes, r)[1:]
	for _, slot := range backups {
		st.need[s.cfg.NodeOf(slot)] = true
	}
	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.repWait[seq] = st
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.repWait, seq)
		s.mu.Unlock()
	}()
	for try := 0; try < maxRepRetries && !s.dead; try++ {
		s.mu.Lock()
		pending := make([]env.NodeID, 0, len(st.need))
		for n := range st.need {
			pending = append(pending, n)
		}
		if len(pending) == 0 {
			s.Stats.RepRounds++
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
		for _, n := range pending {
			s.reply(p, n, &wire.DataRepReq{
				Seq: seq, From: s.cfg.ID, Primary: uint32(s.cfg.Slot),
				Chunk: chunk, Ver: ver, Bytes: bytes,
			})
		}
		if _, ok := st.done.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			s.mu.Lock()
			s.Stats.RepRounds++
			s.mu.Unlock()
			return nil
		}
		s.mu.Lock()
		s.Stats.Retries++
		s.mu.Unlock()
	}
	return core.ErrTimeout
}

// handleRep applies a replicated chunk version on a backup (idempotent by
// version) and always acks, so the primary unblocks even on duplicates.
func (s *Server) handleRep(p *env.Proc, req *wire.DataRepReq) {
	s.mu.Lock()
	if req.Ver > s.store[req.Chunk].ver {
		s.mu.Unlock()
		p.Compute(s.cfg.Costs.DataIO)
		s.mu.Lock()
		if req.Ver > s.store[req.Chunk].ver {
			// A replica copy is commit-grade: the primary only ships
			// versions it is about to ack, and a pulled copy must be
			// servable after the puller becomes primary again.
			s.store[req.Chunk] = chunkRec{ver: req.Ver, bytes: req.Bytes,
				committed: req.Ver, cbytes: req.Bytes, primary: req.Primary}
			s.Stats.Replicated++
		}
	}
	s.mu.Unlock()
	s.reply(p, req.From, &wire.DataRepAck{Seq: req.Seq, From: s.cfg.ID})
}

// handleRepAck marks one backup done for a pending replication round.
func (s *Server) handleRepAck(ack *wire.DataRepAck) {
	s.mu.Lock()
	st := s.repWait[ack.Seq]
	var done bool
	if st != nil && st.need[ack.From] {
		delete(st.need, ack.From)
		done = len(st.need) == 0
	}
	s.mu.Unlock()
	if done {
		st.done.Complete(nil)
	}
}

// handlePull answers a recovery pull: every stored record whose replica set
// includes the requester's slot, sorted for determinism.
func (s *Server) handlePull(p *env.Proc, req *wire.DataPullReq) {
	s.mu.Lock()
	var recs []wire.ChunkRec
	for k, rec := range s.store {
		if rec.committed == 0 {
			continue // an uncommitted apply is not durable state to copy
		}
		if holdsSlot(rec.primary, s.cfg.Nodes, s.cfg.Replication, int(req.Slot)) {
			recs = append(recs, wire.ChunkRec{Chunk: k, Ver: rec.committed, Bytes: rec.cbytes, Primary: rec.primary})
		}
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Chunk.File != recs[j].Chunk.File {
			return recs[i].Chunk.File < recs[j].Chunk.File
		}
		return recs[i].Chunk.Stripe < recs[j].Chunk.Stripe
	})
	// Transfer cost scales with the volume re-replicated.
	p.Compute(env.Duration(len(recs)) * s.cfg.Costs.DataIO / 8)
	s.reply(p, req.From, &wire.DataPullResp{Ctl: req.Ctl, From: s.cfg.ID, Chunks: recs})
}

// ctlCall performs one retried control round trip (recovery pull).
func (s *Server) ctlCall(p *env.Proc, to env.NodeID, build func(ctl uint64) wire.Msg) (wire.Msg, error) {
	s.mu.Lock()
	s.nextCtl++
	ctl := uint64(s.cfg.ID)<<24 | (s.nextCtl & (1<<24 - 1))
	fut := env.NewFuture()
	s.ctlWait[ctl] = fut
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.ctlWait, ctl)
		s.mu.Unlock()
	}()
	msg := build(ctl)
	for try := 0; try < maxPullRetries && !s.dead; try++ {
		s.reply(p, to, msg)
		if v, ok := fut.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			return v.(wire.Msg), nil
		}
		s.mu.Lock()
		s.Stats.Retries++
		s.mu.Unlock()
	}
	return nil, core.ErrTimeout
}

func (s *Server) completeCtl(ctl uint64, v wire.Msg) {
	s.mu.Lock()
	fut := s.ctlWait[ctl]
	s.mu.Unlock()
	if fut != nil {
		fut.Complete(v)
	}
}

// reply sends a packet unless this incarnation fail-stopped.
func (s *Server) reply(p *env.Proc, to env.NodeID, body wire.Msg) {
	if s.dead {
		return
	}
	p.Send(to, &wire.Packet{Dst: to, Origin: s.cfg.ID, Trace: p.TraceCtx(), Body: body})
}

// replayIfDuplicate answers a retransmitted RPC from the dedup cache. A nil
// cached response marks an execution in progress; the duplicate is dropped.
//
//detlint:dedup-check
func (s *Server) replayIfDuplicate(p *env.Proc, req *wire.ReqCommon) bool {
	k := dedupKey{client: req.Client, rpc: req.RPC}
	s.mu.Lock()
	resp, ok := s.dedup[k]
	if ok {
		s.Stats.DedupHits++
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	if resp != nil {
		s.reply(p, req.Client, resp)
	}
	return true
}

// begin marks (client, rpc) in flight so concurrent deliveries of the same
// RPC execute at most once.
//
//detlint:dedup-check
func (s *Server) begin(req *wire.ReqCommon) bool {
	k := dedupKey{client: req.Client, rpc: req.RPC}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dedup[k]; ok {
		return false
	}
	s.dedup[k] = nil
	s.dedupLog = append(s.dedupLog, k)
	if len(s.dedupLog) > dedupWindow {
		old := s.dedupLog[0]
		s.dedupLog = s.dedupLog[1:]
		delete(s.dedup, old)
	}
	return true
}

// remember caches the response for retransmission replay.
func (s *Server) remember(client env.NodeID, rpc uint64, resp wire.Msg) {
	s.mu.Lock()
	s.dedup[dedupKey{client: client, rpc: rpc}] = resp
	s.mu.Unlock()
}

// forget releases an in-flight marker whose execution gave up unacked. The
// dedupLog slot goes with it: a stale slot would otherwise evict a
// re-execution's cached response one full window early, re-opening the
// duplicate-write hole.
func (s *Server) forget(req *wire.ReqCommon) {
	k := dedupKey{client: req.Client, rpc: req.RPC}
	s.mu.Lock()
	delete(s.dedup, k)
	for i, q := range s.dedupLog {
		if q == k {
			s.dedupLog = append(s.dedupLog[:i], s.dedupLog[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}
