// Package trace implements deterministic causal tracing over virtual time.
//
// A traced operation is a tree of spans. The root span opens at a client op
// entry point; every hop the op takes — switch pipe traversal, server handler
// execution, WAL appends, aggregation waits, 2PC rounds, data-plane
// replication — opens a child span linked through env.TraceCtx, which
// travels in wire packet headers and in each Proc's ambient slot. All
// timestamps are virtual (env.Time), so a trace is a pure function of the
// simulation seed: two same-seed runs export byte-identical trace files,
// and CI gates on exactly that (trace-smoke).
//
// Memory is bounded by tail-based sampling: a trace's spans buffer while the
// op is in flight, and when the root span ends the trace is kept only if it
// is among the Keep slowest ops seen so far or was explicitly flagged
// (client-observed errors, oracle taints); everything else is discarded.
// Late spans of a discarded trace (straggling retransmissions) are dropped
// silently. The export format is Chrome trace-event JSON (load it in
// Perfetto / chrome://tracing), plus a critical-path summary that attributes
// each slow op's virtual time to the span names it was spent under.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"switchfs/internal/env"
)

// Span is one timed section of a traced operation.
type Span struct {
	Trace  uint64     // trace this span belongs to
	ID     uint64     // unique span id (never reused within a Recorder)
	Parent uint64     // parent span id; 0 for the root
	Name   string     // e.g. "op:rename", "switch:query", "wal:txn-prepare"
	Cat    string     // plane: "client", "switch", "server", "data"
	Node   env.NodeID // node the span executed on
	Start  env.Time   // virtual open time
	End    env.Time   // virtual close time
}

// Dur returns the span's virtual duration.
func (s Span) Dur() env.Duration { return s.End - s.Start }

// Config tunes a Recorder.
type Config struct {
	// Keep is the number of slowest root ops retained (tail sampling).
	// Flagged traces are kept in addition. Default 32.
	Keep int
	// MaxActive bounds concurrently in-flight traces; roots beyond it are
	// not traced (counted in DroppedTraces). Default 65536.
	MaxActive int
}

// maxSpansPerTrace caps one trace's buffer so a pathological retry storm
// cannot hold unbounded memory; spans beyond the cap are dropped (the drop
// point is deterministic, so exports stay byte-identical).
const maxSpansPerTrace = 8192

// traceBuf accumulates one trace's spans while it is in flight or kept.
type traceBuf struct {
	id      uint64
	rootID  uint64
	spans   []Span
	flagged string // non-empty: keep regardless of duration
	done    bool
	dur     env.Duration
}

// Recorder collects spans and tail-samples finished traces.
type Recorder struct {
	mu        sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the span tables; leaf section, never held across a park
	cfg       Config
	nextTrace uint64
	nextSpan  uint64
	active    map[uint64]*traceBuf
	kept      map[uint64]*traceBuf
	slow      []*traceBuf // kept-by-duration subset, unordered

	// DroppedTraces counts roots refused because MaxActive was reached.
	DroppedTraces uint64
}

// New builds a Recorder. A nil *Recorder is a valid no-op recorder: every
// method (and every handle it returns) is nil-safe, so call sites need no
// enabled-checks.
func New(cfg Config) *Recorder {
	if cfg.Keep <= 0 {
		cfg.Keep = 32
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 65536
	}
	return &Recorder{
		cfg:    cfg,
		active: make(map[uint64]*traceBuf),
		kept:   make(map[uint64]*traceBuf),
	}
}

// Handle is an open span. End closes it, records it, and restores the
// proc's previous ambient context. A nil handle is a no-op.
type Handle struct {
	r    *Recorder
	p    *env.Proc
	s    Span
	prev env.TraceCtx
}

// Ctx returns the context naming this span (stamp it into outbound packets
// so remote work nests under it).
func (h *Handle) Ctx() env.TraceCtx {
	if h == nil {
		return env.TraceCtx{}
	}
	return env.TraceCtx{TraceID: h.s.Trace, SpanID: h.s.ID}
}

// TraceID returns the trace the span belongs to (0 for a no-op handle).
func (h *Handle) TraceID() uint64 {
	if h == nil {
		return 0
	}
	return h.s.Trace
}

// End closes the span at the current virtual time and records it.
func (h *Handle) End() {
	if h == nil {
		return
	}
	h.s.End = h.p.Now()
	h.p.SetTraceCtx(h.prev)
	h.r.record(h.s)
}

// StartRoot opens a new trace rooted at the calling proc and makes it the
// ambient context.
func (r *Recorder) StartRoot(p *env.Proc, name, cat string) *Handle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if len(r.active) >= r.cfg.MaxActive {
		r.DroppedTraces++
		r.mu.Unlock()
		return nil
	}
	r.nextTrace++
	r.nextSpan++
	tid, sid := r.nextTrace, r.nextSpan
	r.active[tid] = &traceBuf{id: tid, rootID: sid}
	r.mu.Unlock()
	return r.open(p, Span{Trace: tid, ID: sid, Name: name, Cat: cat})
}

// StartSpan opens a child of the given context (typically a packet's). It
// returns nil — and records nothing — when the context is invalid.
func (r *Recorder) StartSpan(p *env.Proc, ctx env.TraceCtx, name, cat string) *Handle {
	if r == nil || !ctx.Valid() {
		return nil
	}
	r.mu.Lock()
	r.nextSpan++
	sid := r.nextSpan
	r.mu.Unlock()
	return r.open(p, Span{Trace: ctx.TraceID, ID: sid, Parent: ctx.SpanID, Name: name, Cat: cat})
}

// Start opens a child of the proc's ambient context (the usual in-handler
// annotation: WAL append, lock wait, prepare round).
func (r *Recorder) Start(p *env.Proc, name, cat string) *Handle {
	if r == nil {
		return nil
	}
	return r.StartSpan(p, p.TraceCtx(), name, cat)
}

// StartAuto opens a child of the ambient context when one is live and a new
// root otherwise (client op entry points, which may themselves be nested —
// e.g. path resolution inside a mutation).
func (r *Recorder) StartAuto(p *env.Proc, name, cat string) *Handle {
	if r == nil {
		return nil
	}
	if p.TraceCtx().Valid() {
		return r.StartSpan(p, p.TraceCtx(), name, cat)
	}
	return r.StartRoot(p, name, cat)
}

func (r *Recorder) open(p *env.Proc, s Span) *Handle {
	s.Node = p.Self()
	s.Start = p.Now()
	h := &Handle{r: r, p: p, s: s, prev: p.TraceCtx()}
	p.SetTraceCtx(env.TraceCtx{TraceID: s.Trace, SpanID: s.ID})
	return h
}

// Flag marks a trace as must-keep (client-observed error, oracle taint).
// Flagging an already-discarded trace is a silent no-op.
func (r *Recorder) Flag(traceID uint64, reason string) {
	if r == nil || traceID == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.active[traceID]; b != nil {
		if b.flagged == "" {
			b.flagged = reason
		}
		return
	}
	if b := r.kept[traceID]; b != nil && b.flagged == "" {
		b.flagged = reason
	}
}

// record files a closed span, finishing the trace when it is the root.
func (r *Recorder) record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.active[s.Trace]
	if b == nil {
		b = r.kept[s.Trace] // late span of a kept trace (straggler)
	}
	if b == nil {
		return // trace was sampled out; drop
	}
	if len(b.spans) < maxSpansPerTrace {
		b.spans = append(b.spans, s)
	}
	if !b.done && s.ID == b.rootID {
		b.done = true
		b.dur = s.End - s.Start
		delete(r.active, s.Trace)
		r.sample(b)
	}
}

// sample applies the tail-sampling policy to a finished trace. Caller holds
// the lock.
func (r *Recorder) sample(b *traceBuf) {
	if b.flagged != "" {
		r.kept[b.id] = b
		return
	}
	if len(r.slow) < r.cfg.Keep {
		r.slow = append(r.slow, b)
		r.kept[b.id] = b
		return
	}
	// Evict the current fastest if the newcomer is strictly slower; ties
	// keep the incumbent — both rules are deterministic.
	min := 0
	for i, s := range r.slow {
		if s.dur < r.slow[min].dur || (s.dur == r.slow[min].dur && s.id > r.slow[min].id) {
			min = i
		}
	}
	if b.dur > r.slow[min].dur {
		delete(r.kept, r.slow[min].id)
		r.slow[min] = b
		r.kept[b.id] = b
	}
}

// Spans returns every kept span in deterministic order (trace id, start
// time, span id).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Span
	for _, b := range r.kept {
		out = append(out, b.spans...)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return spanLess(out[i], out[j]) })
	return out
}

// KeptTraces returns the kept trace ids in ascending order.
func (r *Recorder) KeptTraces() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]uint64, 0, len(r.kept))
	for id := range r.kept {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortSpans(s []Span) {
	sort.Slice(s, func(i, j int) bool { return spanLess(s[i], s[j]) })
}

// spanLess is the canonical span order: trace id, start time, span id.
func spanLess(a, b Span) bool {
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.ID < b.ID
}

// --- Chrome trace-event export ----------------------------------------------

// jsonEvent is one complete ("ph":"X") event in the Chrome trace format.
// Timestamps and durations are microseconds; we emit virtual nanoseconds at
// 3-digit precision so nothing is lost.
type jsonEvent struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  float64  `json:"dur"`
	Pid  uint32   `json:"pid"`
	Tid  uint64   `json:"tid"`
	Args jsonArgs `json:"args"`
}

type jsonArgs struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
}

type jsonFile struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteJSON exports the kept spans as Chrome trace-event JSON. The output is
// a deterministic function of the kept spans: same seed, same bytes.
func (r *Recorder) WriteJSON(w io.Writer) error {
	return WriteJSON(w, r.Spans())
}

// WriteJSON exports spans (already or not yet sorted) in the Chrome
// trace-event format.
func WriteJSON(w io.Writer, spans []Span) error {
	sortSpans(spans)
	f := jsonFile{TraceEvents: make([]jsonEvent, 0, len(spans)), DisplayTimeUnit: "ns"}
	for _, s := range spans {
		f.TraceEvents = append(f.TraceEvents, jsonEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  uint32(s.Node),
			Tid:  s.Trace,
			Args: jsonArgs{Trace: s.Trace, Span: s.ID, Parent: s.Parent},
		})
	}
	b, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ParseJSON reads a trace file written by WriteJSON back into spans.
func ParseJSON(rd io.Reader) ([]Span, error) {
	var f jsonFile
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	spans := make([]Span, 0, len(f.TraceEvents))
	for i, e := range f.TraceEvents {
		if e.Ph != "X" {
			return nil, fmt.Errorf("event %d: phase %q, want %q", i, e.Ph, "X")
		}
		if e.Name == "" || e.Cat == "" {
			return nil, fmt.Errorf("event %d: empty name or cat", i)
		}
		if e.Args.Trace == 0 || e.Args.Span == 0 {
			return nil, fmt.Errorf("event %d: zero trace or span id", i)
		}
		start := env.Time(math.Round(e.Ts * 1e3))
		spans = append(spans, Span{
			Trace:  e.Args.Trace,
			ID:     e.Args.Span,
			Parent: e.Args.Parent,
			Name:   e.Name,
			Cat:    e.Cat,
			Node:   env.NodeID(e.Pid),
			Start:  start,
			End:    start + env.Duration(math.Round(e.Dur*1e3)),
		})
	}
	return spans, nil
}

// Validate checks structural well-formedness: spans non-empty, ids unique,
// and every non-root parent resolvable within its own trace (no orphan
// spans). It is the shape gate trace-smoke runs in CI.
func Validate(spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("trace: no spans")
	}
	byTrace := make(map[uint64]map[uint64]bool)
	seen := make(map[uint64]bool)
	for _, s := range spans {
		if seen[s.ID] {
			return fmt.Errorf("trace %d: duplicate span id %d", s.Trace, s.ID)
		}
		seen[s.ID] = true
		m := byTrace[s.Trace]
		if m == nil {
			m = make(map[uint64]bool)
			byTrace[s.Trace] = m
		}
		m[s.ID] = true
		if s.End < s.Start {
			return fmt.Errorf("trace %d span %d: negative duration", s.Trace, s.ID)
		}
	}
	for _, s := range spans {
		if s.Parent != 0 && !byTrace[s.Trace][s.Parent] {
			return fmt.Errorf("trace %d span %d (%s): orphan parent %d", s.Trace, s.ID, s.Name, s.Parent)
		}
	}
	return nil
}

// --- Critical-path summary ---------------------------------------------------

// Summary renders the critical-path breakdown of the kept traces.
func (r *Recorder) Summary(topN int) string {
	return Summarize(r.Spans(), topN)
}

// Summarize attributes each kept trace's virtual time to span names by
// self-time (a span's duration minus its children's) and renders the topN
// slowest traces, slowest first.
func Summarize(spans []Span, topN int) string {
	if len(spans) == 0 {
		return "trace: no spans kept\n"
	}
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	type traceSum struct {
		id   uint64
		root Span
		self map[string]env.Duration // "cat:name" -> self time
		n    int
	}
	var sums []traceSum
	for id, ss := range byTrace {
		childDur := make(map[uint64]env.Duration)
		var root Span
		for _, s := range ss {
			if s.Parent == 0 {
				root = s
			} else {
				childDur[s.Parent] += s.Dur()
			}
		}
		ts := traceSum{id: id, root: root, self: make(map[string]env.Duration), n: len(ss)}
		for _, s := range ss {
			self := s.Dur() - childDur[s.ID]
			if self < 0 {
				self = 0
			}
			ts.self[s.Cat+":"+s.Name] += self
		}
		sums = append(sums, ts)
	}
	sort.Slice(sums, func(i, j int) bool {
		di, dj := sums[i].root.Dur(), sums[j].root.Dur()
		if di != dj {
			return di > dj
		}
		return sums[i].id < sums[j].id
	})
	if topN > 0 && len(sums) > topN {
		sums = sums[:topN]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path of the %d slowest kept ops (virtual time)\n", len(sums))
	for _, ts := range sums {
		fmt.Fprintf(&b, "trace %d  %-16s %10.1fµs  (%d spans)\n",
			ts.id, ts.root.Name, float64(ts.root.Dur())/1e3, ts.n)
		type kv struct {
			name string
			d    env.Duration
		}
		var parts []kv
		for name, d := range ts.self {
			parts = append(parts, kv{name, d})
		}
		sort.Slice(parts, func(i, j int) bool {
			if parts[i].d != parts[j].d {
				return parts[i].d > parts[j].d
			}
			return parts[i].name < parts[j].name
		})
		for _, p := range parts {
			if p.d == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-28s %10.1fµs\n", p.name, float64(p.d)/1e3)
		}
	}
	return b.String()
}
