package trace

import (
	"bytes"
	"fmt"
	"testing"

	"switchfs/internal/env"
)

// runSpans drives fn on a one-node sim and returns the recorder.
func runSpans(seed int64, cfg Config, fn func(p *env.Proc, r *Recorder)) *Recorder {
	r := New(cfg)
	s := env.NewSim(seed)
	defer s.Shutdown()
	s.AddNode(1, env.NodeConfig{})
	s.Spawn(1, func(p *env.Proc) { fn(p, r) })
	s.Run()
	return r
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	s := env.NewSim(1)
	defer s.Shutdown()
	s.AddNode(1, env.NodeConfig{})
	s.Spawn(1, func(p *env.Proc) {
		h := r.StartRoot(p, "op", "t")
		h2 := r.Start(p, "child", "t")
		h3 := r.StartAuto(p, "auto", "t")
		h3.End()
		h2.End()
		h.End()
		r.Flag(1, "x")
	})
	s.Run()
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestTailSamplingKeepsSlowestAndFlagged(t *testing.T) {
	// 10 ops with durations 1..10µs, Keep=3 → 8,9,10µs survive; op 1 (the
	// fastest) is flagged and must survive regardless.
	r := runSpans(1, Config{Keep: 3}, func(p *env.Proc, r *Recorder) {
		for i := 1; i <= 10; i++ {
			h := r.StartRoot(p, fmt.Sprintf("op%d", i), "t")
			if i == 1 {
				r.Flag(h.TraceID(), "taint")
			}
			p.Sleep(env.Duration(i) * env.Microsecond)
			h.End()
		}
	})
	kept := r.KeptTraces()
	if len(kept) != 4 {
		t.Fatalf("kept %d traces (%v), want 4 (3 slowest + 1 flagged)", len(kept), kept)
	}
	names := map[string]bool{}
	for _, s := range r.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"op1", "op8", "op9", "op10"} {
		if !names[want] {
			t.Errorf("trace %s not kept (kept: %v)", want, names)
		}
	}
}

func TestSpanTreeNesting(t *testing.T) {
	// Start() nests under the ambient context and End() restores it.
	r := runSpans(1, Config{}, func(p *env.Proc, r *Recorder) {
		root := r.StartRoot(p, "root", "t")
		a := r.Start(p, "a", "t")
		aa := r.Start(p, "aa", "t")
		aa.End()
		a.End()
		b := r.Start(p, "b", "t")
		b.End()
		root.End()
	})
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %d", byName["root"].Parent)
	}
	if byName["a"].Parent != byName["root"].ID {
		t.Errorf("a.parent=%d, want root %d", byName["a"].Parent, byName["root"].ID)
	}
	if byName["aa"].Parent != byName["a"].ID {
		t.Errorf("aa.parent=%d, want a %d", byName["aa"].Parent, byName["a"].ID)
	}
	if byName["b"].Parent != byName["root"].ID {
		t.Errorf("b.parent=%d, want root %d (sibling must not nest under a)", byName["b"].Parent, byName["root"].ID)
	}
	if err := Validate(spans); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestStartSpanInvalidCtxRecordsNothing(t *testing.T) {
	r := runSpans(1, Config{}, func(p *env.Proc, r *Recorder) {
		h := r.StartSpan(p, env.TraceCtx{}, "orphan", "t")
		h.End()
		// Start with no ambient context is equally a no-op: this is what
		// keeps spawned background procs (pushes, redrives) span-free.
		h2 := r.Start(p, "ambientless", "t")
		h2.End()
	})
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("invalid-context spans recorded: %d", got)
	}
}

func TestJSONRoundTripAndDeterminism(t *testing.T) {
	gen := func() *Recorder {
		return runSpans(7, Config{Keep: 8}, func(p *env.Proc, r *Recorder) {
			for i := 0; i < 12; i++ {
				h := r.StartRoot(p, fmt.Sprintf("op%d", i), "client")
				c := r.Start(p, "child", "server")
				p.Sleep(env.Duration(i%5+1) * env.Microsecond)
				c.End()
				h.End()
			}
		})
	}
	var b1, b2 bytes.Buffer
	if err := gen().WriteJSON(&b1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := gen().WriteJSON(&b2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-seed trace exports differ byte-for-byte")
	}

	spans, err := ParseJSON(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate(round-trip): %v", err)
	}
	want := gen().Spans()
	if len(spans) != len(want) {
		t.Fatalf("round-trip %d spans, want %d", len(spans), len(want))
	}
	for i := range spans {
		if spans[i] != want[i] {
			t.Fatalf("span %d changed in round-trip:\n got %+v\nwant %+v", i, spans[i], want[i])
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("Validate(empty) passed")
	}
	ok := []Span{
		{Trace: 1, ID: 1, Name: "r", Cat: "t", Start: 0, End: 10},
		{Trace: 1, ID: 2, Parent: 1, Name: "c", Cat: "t", Start: 1, End: 9},
	}
	if err := Validate(ok); err != nil {
		t.Errorf("Validate(ok): %v", err)
	}
	orphan := append(ok[:1:1], Span{Trace: 1, ID: 3, Parent: 99, Name: "o", Cat: "t"})
	if err := Validate(orphan); err == nil {
		t.Error("Validate missed the orphan parent")
	}
	dup := []Span{ok[0], ok[0]}
	if err := Validate(dup); err == nil {
		t.Error("Validate missed the duplicate span id")
	}
	crossTrace := append(ok[:1:1], Span{Trace: 2, ID: 4, Parent: 1, Name: "x", Cat: "t"})
	if err := Validate(crossTrace); err == nil {
		t.Error("Validate missed the cross-trace parent")
	}
}

func TestMaxActiveDropsDeterministically(t *testing.T) {
	r := runSpans(1, Config{Keep: 4, MaxActive: 2}, func(p *env.Proc, r *Recorder) {
		// Three overlapping roots: the third must be refused.
		h1 := r.StartRoot(p, "a", "t")
		h2 := r.StartRoot(p, "b", "t")
		h3 := r.StartRoot(p, "c", "t")
		h3.End()
		h2.End()
		h1.End()
	})
	if r.DroppedTraces != 1 {
		t.Errorf("DroppedTraces=%d, want 1", r.DroppedTraces)
	}
	if got := len(r.KeptTraces()); got != 2 {
		t.Errorf("kept %d traces, want 2", got)
	}
}
