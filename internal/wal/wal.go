// Package wal implements the per-server write-ahead log used for crash
// recovery (paper §5.2, §5.4.2). The log records the sequence of committed
// operations and marks whether each asynchronous update has been applied to
// the remote directory inode; recovery replays unmarked records.
//
// Two backends exist: an in-memory log (crash simulation under Sim, where
// "persistence" means surviving a modeled crash) and a file-backed log with
// length+CRC framing for the real daemons.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// LSN is a log sequence number: the position of a record, starting at 1.
type LSN uint64

// Record is one log entry.
type Record struct {
	LSN     LSN
	Kind    uint8
	Payload []byte
	// Applied marks asynchronous updates whose remote application has been
	// acknowledged; recovery skips them (§5.4.2).
	Applied bool
}

// Log is the interface both backends implement.
type Log interface {
	// Append durably adds a record and returns its LSN.
	Append(kind uint8, payload []byte) (LSN, error)
	// MarkApplied durably marks the record at lsn as applied.
	MarkApplied(lsn LSN) error
	// Replay streams every record in order.
	Replay(fn func(r Record) error) error
	// Len returns the number of records.
	Len() int
	// Close releases resources.
	Close() error
}

// --- In-memory backend ---------------------------------------------------

// Mem is the in-memory log. It survives simulated crashes (the server's
// volatile structures are cleared; the Mem log is handed back to the
// restarted server), which models stable storage.
type Mem struct {
	mu      sync.Mutex
	records []Record
}

// NewMem creates an empty in-memory log.
func NewMem() *Mem { return &Mem{} }

// Append implements Log.
func (m *Mem) Append(kind uint8, payload []byte) (LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lsn := LSN(len(m.records) + 1)
	m.records = append(m.records, Record{
		LSN:     lsn,
		Kind:    kind,
		Payload: append([]byte(nil), payload...),
	})
	return lsn, nil
}

// MarkApplied implements Log.
func (m *Mem) MarkApplied(lsn LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lsn == 0 || int(lsn) > len(m.records) {
		return fmt.Errorf("wal: MarkApplied(%d) out of range (%d records)", lsn, len(m.records))
	}
	m.records[lsn-1].Applied = true
	return nil
}

// Replay implements Log.
func (m *Mem) Replay(fn func(r Record) error) error {
	m.mu.Lock()
	recs := make([]Record, len(m.records))
	copy(recs, m.records)
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Len implements Log.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// Close implements Log.
func (m *Mem) Close() error { return nil }

// --- File backend ---------------------------------------------------------

// File is the file-backed log used by the UDP daemons. Records are framed as
//
//	u32 length | u8 kind | payload | u32 crc32(kind+payload)
//
// and applied-markers are separate marker frames (kind = markKind) carrying
// the LSN they mark, so marking needs no in-place rewrites.
type File struct {
	mu   sync.Mutex
	f    *os.File
	n    int
	path string
}

// markKind is reserved for applied markers; user kinds must stay below it.
const markKind = 0xFF

// MaxUserKind is the largest record kind callers may use.
const MaxUserKind = 0xFE

// OpenFile opens (creating if needed) a file-backed log.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &File{f: f, path: path}
	// Count existing records so new LSNs continue the sequence.
	err = w.replayRaw(func(kind uint8, payload []byte) error {
		if kind != markKind {
			w.n++
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append implements Log.
func (w *File) Append(kind uint8, payload []byte) (LSN, error) {
	if kind >= markKind {
		return 0, fmt.Errorf("wal: record kind %#x is reserved", kind)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.writeFrame(kind, payload); err != nil {
		return 0, err
	}
	w.n++
	return LSN(w.n), nil
}

// MarkApplied implements Log.
func (w *File) MarkApplied(lsn LSN) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(lsn))
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeFrame(markKind, buf[:])
}

func (w *File) writeFrame(kind uint8, payload []byte) error {
	frame := make([]byte, 0, 9+len(payload))
	frame = binary.BigEndian.AppendUint32(frame, uint32(1+len(payload)))
	frame = append(frame, kind)
	frame = append(frame, payload...)
	crc := crc32.ChecksumIEEE(frame[4:])
	frame = binary.BigEndian.AppendUint32(frame, crc)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	return w.f.Sync()
}

// Replay implements Log: it reconstructs records and their applied flags.
func (w *File) Replay(fn func(r Record) error) error {
	var recs []Record
	err := w.replayRaw(func(kind uint8, payload []byte) error {
		if kind == markKind {
			if len(payload) != 8 {
				return fmt.Errorf("wal: malformed applied marker")
			}
			lsn := LSN(binary.BigEndian.Uint64(payload))
			if lsn >= 1 && int(lsn) <= len(recs) {
				recs[lsn-1].Applied = true
			}
			return nil
		}
		recs = append(recs, Record{
			LSN:     LSN(len(recs) + 1),
			Kind:    kind,
			Payload: append([]byte(nil), payload...),
		})
		return nil
	})
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// replayRaw scans frames from the start of the file. A truncated or corrupt
// tail frame ends the scan cleanly (torn final write after a crash).
func (w *File) replayRaw(fn func(kind uint8, payload []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	defer w.f.Seek(0, io.SeekEnd)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return nil // torn tail
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > 1<<24 {
			return nil // corrupt tail
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(w.f, body); err != nil {
			return nil // torn tail
		}
		want := binary.BigEndian.Uint32(body[n:])
		if crc32.ChecksumIEEE(body[:n]) != want {
			return nil // corrupt tail
		}
		if err := fn(body[0], body[1:n]); err != nil {
			return err
		}
	}
}

// Len implements Log.
func (w *File) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Close implements Log.
func (w *File) Close() error { return w.f.Close() }

var _ Log = (*Mem)(nil)
var _ Log = (*File)(nil)
