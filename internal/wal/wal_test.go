package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func testLog(t *testing.T, l Log) {
	t.Helper()
	lsn1, err := l.Append(1, []byte("op-1"))
	if err != nil || lsn1 != 1 {
		t.Fatalf("Append: lsn=%d err=%v", lsn1, err)
	}
	lsn2, _ := l.Append(2, []byte("op-2"))
	lsn3, _ := l.Append(1, []byte("op-3"))
	if lsn2 != 2 || lsn3 != 3 {
		t.Fatalf("lsns %d %d", lsn2, lsn3)
	}
	if err := l.MarkApplied(lsn2); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := l.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	if string(got[0].Payload) != "op-1" || got[0].Kind != 1 || got[0].Applied {
		t.Fatalf("record 1: %+v", got[0])
	}
	if !got[1].Applied {
		t.Fatal("record 2 not marked applied")
	}
	if got[2].Applied {
		t.Fatal("record 3 wrongly applied")
	}
	if l.Len() != 3 {
		t.Fatalf("Len=%d", l.Len())
	}
}

func TestMemLog(t *testing.T) { testLog(t, NewMem()) }

func TestFileLog(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLog(t, l)
}

func TestFileLogReopenContinuesLSNs(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("a"))
	l.Append(1, []byte("b"))
	l.MarkApplied(1)
	l.Close()

	l2, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Fatalf("reopened Len=%d", l2.Len())
	}
	lsn, _ := l2.Append(1, []byte("c"))
	if lsn != 3 {
		t.Fatalf("lsn after reopen = %d, want 3", lsn)
	}
	var applied []bool
	l2.Replay(func(r Record) error {
		applied = append(applied, r.Applied)
		return nil
	})
	if len(applied) != 3 || !applied[0] || applied[1] || applied[2] {
		t.Fatalf("applied flags %v", applied)
	}
}

func TestFileLogTornTailIgnored(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal")
	l, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("good"))
	l.Close()
	// Simulate a torn final write: append garbage that is not a full frame.
	f, _ := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{0, 0, 0, 9, 1, 2})
	f.Close()

	l2, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(r Record) error { n++; return nil })
	if n != 1 || l2.Len() != 1 {
		t.Fatalf("replayed %d records (Len=%d), want 1", n, l2.Len())
	}
}

func TestFileLogCorruptTailIgnored(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFile(p)
	l.Append(1, []byte("good"))
	l.Append(1, []byte("will-corrupt"))
	l.Close()
	// Flip a byte in the last frame's payload.
	data, _ := os.ReadFile(p)
	data[len(data)-6] ^= 0xFF
	os.WriteFile(p, data, 0o644)

	l2, err := OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(r Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replayed %d records, want 1 (corrupt tail dropped)", n)
	}
}

func TestMarkAppliedOutOfRange(t *testing.T) {
	m := NewMem()
	if err := m.MarkApplied(5); err == nil {
		t.Fatal("expected error for out-of-range LSN")
	}
}

func TestReservedKindRejected(t *testing.T) {
	p := filepath.Join(t.TempDir(), "wal")
	l, _ := OpenFile(p)
	defer l.Close()
	if _, err := l.Append(0xFF, nil); err == nil {
		t.Fatal("reserved kind accepted")
	}
}
