package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"switchfs/internal/stats"
)

func sample() *Result {
	return &Result{
		Schema: SchemaVersion,
		Tool:   "fsbench",
		Scale:  "tiny",
		Figures: []Figure{
			{
				ID:     "Fig12a",
				Title:  "single large directory: throughput (Kops/s)",
				Header: []string{"op", "servers", "SwitchFS"},
				Rows: [][]string{
					{"create", "4", "2648.8"},
					{"create", "8", "3283.9"},
				},
				Counters: []stats.Counters{
					{Ops: 960, PacketsDelivered: 12000},
					{Ops: 960, PacketsDelivered: 14000},
				},
				WallSeconds: 1.5,
			},
			{
				ID:          "Fig13",
				Title:       "operation latency (µs), single client, 8 servers",
				Header:      []string{"op", "SwitchFS"},
				Rows:        [][]string{{"stat", "5.1"}},
				WallSeconds: 0.2,
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Scale != "tiny" || len(got.Figures) != 2 {
		t.Fatalf("round trip mangled header: %+v", got)
	}
	if got.Figures[0].Rows[1][2] != "3283.9" {
		t.Fatalf("round trip mangled cells: %+v", got.Figures[0].Rows)
	}
	if got.Figures[0].Counters[1].PacketsDelivered != 14000 {
		t.Fatalf("round trip mangled counters: %+v", got.Figures[0].Counters)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Result)
		want   string
	}{
		{"wrong schema", func(r *Result) { r.Schema = 99 }, "schema"},
		{"no figures", func(r *Result) { r.Figures = nil }, "no figures"},
		{"empty id", func(r *Result) { r.Figures[0].ID = "" }, "no id"},
		{"duplicate id", func(r *Result) { r.Figures[1].ID = "Fig12a" }, "duplicate"},
		{"ragged row", func(r *Result) { r.Figures[0].Rows[0] = []string{"create"} }, "cells"},
		{"counter misalignment", func(r *Result) {
			r.Figures[0].Counters = r.Figures[0].Counters[:1]
		}, "counter"},
	}
	for _, tc := range cases {
		r := sample()
		tc.break_(r)
		err := r.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDirectionOf(t *testing.T) {
	if DirectionOf("stat throughput (Mops/s)") != HigherBetter {
		t.Error("Mops/s should be higher-better")
	}
	if DirectionOf("operation latency (µs)") != LowerBetter {
		t.Error("µs should be lower-better")
	}
	if DirectionOf("crash recovery time (virtual ms)") != LowerBetter {
		t.Error("virtual ms should be lower-better")
	}
	if DirectionOf("mystery metric") != Neutral {
		t.Error("unknown units should be neutral")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old, new_ := sample(), sample()
	// Throughput drop beyond threshold: regression.
	new_.Figures[0].Rows[0][2] = "2000.0" // 2648.8 -> 2000 (-24%)
	// Throughput gain: a delta, not a regression.
	new_.Figures[0].Rows[1][2] = "4000.0"
	// Latency rise beyond threshold: regression.
	new_.Figures[1].Rows[0][1] = "9.9"
	cmp := Compare(old, new_, CompareOpts{ThresholdPct: 10})
	regs := cmp.Regressions()
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %d: %+v", len(regs), regs)
	}
	if regs[0].Figure != "Fig12a" || regs[0].Pct > -10 {
		t.Errorf("bad throughput regression: %+v", regs[0])
	}
	if regs[1].Figure != "Fig13" || regs[1].Pct < 10 {
		t.Errorf("bad latency regression: %+v", regs[1])
	}
	if len(cmp.Deltas) != 3 {
		t.Errorf("want 3 deltas, got %d", len(cmp.Deltas))
	}
	if regs[0].Label != "create/4/SwitchFS" {
		t.Errorf("label = %q", regs[0].Label)
	}
}

func TestCompareCounterDrift(t *testing.T) {
	old, new_ := sample(), sample()
	new_.Figures[0].Counters[0].Ops = 959
	cmp := Compare(old, new_, CompareOpts{CheckCounters: true})
	if len(cmp.Drift) != 1 || cmp.Drift[0].Figure != "Fig12a" || cmp.Drift[0].Row != 0 {
		t.Fatalf("drift = %+v", cmp.Drift)
	}
	// Without the flag, drift goes unreported.
	if d := Compare(old, new_, CompareOpts{}); len(d.Drift) != 0 {
		t.Fatalf("unexpected drift report: %+v", d.Drift)
	}
}

func TestCompareMissingFigure(t *testing.T) {
	old, new_ := sample(), sample()
	new_.Figures = new_.Figures[:1]
	cmp := Compare(old, new_, CompareOpts{})
	if len(cmp.MissingFigures) != 1 || cmp.MissingFigures[0] != "Fig13" {
		t.Fatalf("missing = %v", cmp.MissingFigures)
	}
	if !cmp.ShapeChanges() {
		t.Fatal("missing figure should count as a shape change")
	}
}

func TestCompareAddedFigure(t *testing.T) {
	old, new_ := sample(), sample()
	old.Figures = old.Figures[:1]
	cmp := Compare(old, new_, CompareOpts{})
	if len(cmp.AddedFigures) != 1 || cmp.AddedFigures[0] != "Fig13" {
		t.Fatalf("added = %v", cmp.AddedFigures)
	}
	if !cmp.ShapeChanges() {
		t.Fatal("added figure should count as a shape change")
	}
}

// TestCompareRowShape pins the bugfix: rows present in only one file used to
// be silently skipped by the min-length loop; they must be reported as
// added/removed so a baseline refresh cannot hide a dropped sweep row.
func TestCompareRowShape(t *testing.T) {
	old, new_ := sample(), sample()
	// New run dropped Fig12a's second row.
	new_.Figures[0].Rows = new_.Figures[0].Rows[:1]
	new_.Figures[0].Counters = new_.Figures[0].Counters[:1]
	cmp := Compare(old, new_, CompareOpts{})
	if len(cmp.RowsRemoved) != 1 {
		t.Fatalf("rows removed = %+v", cmp.RowsRemoved)
	}
	rc := cmp.RowsRemoved[0]
	if rc.Figure != "Fig12a" || rc.Row != 1 || rc.Label != "create/8" {
		t.Fatalf("row change = %+v", rc)
	}
	if !cmp.ShapeChanges() {
		t.Fatal("removed row should count as a shape change")
	}

	// And the symmetric case: new run grew a row.
	cmp = Compare(new_, old, CompareOpts{})
	if len(cmp.RowsAdded) != 1 || cmp.RowsAdded[0].Row != 1 {
		t.Fatalf("rows added = %+v", cmp.RowsAdded)
	}
	if len(cmp.RowsRemoved) != 0 {
		t.Fatalf("unexpected removals: %+v", cmp.RowsRemoved)
	}

	// Identical shapes report nothing.
	if c := Compare(old, old, CompareOpts{}); c.ShapeChanges() {
		t.Fatalf("identical runs report shape changes: %+v", c)
	}
}

func TestCompareMemColumns(t *testing.T) {
	old, new_ := sample(), sample()
	old.Figures[0].MemBytesPerOp = 1000
	old.Figures[0].MemAllocsPerOp = 10
	// +50% bytes/op: regression past the 25% default. Allocs within bounds.
	new_.Figures[0].MemBytesPerOp = 1500
	new_.Figures[0].MemAllocsPerOp = 11
	cmp := Compare(old, new_, CompareOpts{})
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Label != "figure/bytes/op" {
		t.Fatalf("regs = %+v", regs)
	}
	if len(cmp.Deltas) != 2 {
		t.Fatalf("want 2 mem deltas, got %+v", cmp.Deltas)
	}

	// A zero side means accounting was off — no gate, no delta.
	new_.Figures[0].MemBytesPerOp = 0
	new_.Figures[0].MemAllocsPerOp = 10
	cmp = Compare(old, new_, CompareOpts{})
	if len(cmp.Deltas) != 0 {
		t.Fatalf("accounting-off run should not be gated: %+v", cmp.Deltas)
	}

	// Improvement is a delta, never a regression.
	new_.Figures[0].MemBytesPerOp = 400
	new_.Figures[0].MemAllocsPerOp = 10
	cmp = Compare(old, new_, CompareOpts{})
	if len(cmp.Regressions()) != 0 || len(cmp.Deltas) != 1 {
		t.Fatalf("improvement misclassified: %+v", cmp.Deltas)
	}
}

func TestDirectionOfMemUnits(t *testing.T) {
	for _, h := range []string{"bytes/op", "allocs/op", "sim B/op", "ns B/entry"} {
		if DirectionOf(h) != LowerBetter {
			t.Errorf("%q should be lower-better", h)
		}
	}
}
