// Package bench defines the machine-readable benchmark result format the
// figure harnesses emit (`fsbench -format json`) and CI gates on. A result
// file (`BENCH_<fig>.json` trajectory) carries a schema version, the run
// configuration, every figure's table cells, per-row deterministic counters
// (op and packet counts), and wall-clock cost — enough to diff two runs
// cell by cell and flag regressions.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"switchfs/internal/stats"
)

// SchemaVersion identifies the result-file layout. Bump on incompatible
// changes; Load rejects files from other major layouts.
const SchemaVersion = 1

// Result is one benchmark run: a set of figures generated at one scale.
type Result struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Tool names the producer ("fsbench").
	Tool string `json:"tool"`
	// Scale is the scale preset the figures ran at (tiny/quick/paper).
	Scale string `json:"scale"`
	// GoVersion records the toolchain for cross-run context.
	GoVersion string `json:"go_version,omitempty"`
	// CreatedAt is an RFC3339 timestamp (informational only; comparisons
	// never read it).
	CreatedAt string `json:"created_at,omitempty"`
	// Figures holds one entry per generated figure, in generation order.
	Figures []Figure `json:"figures"`
}

// Figure is one figure's table plus its measurement cost.
type Figure struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Counters carries per-row deterministic op/packet counts, aligned
	// with Rows (absent for legacy producers).
	Counters []stats.Counters `json:"counters,omitempty"`
	// WallSeconds is the wall-clock time generating the figure took.
	WallSeconds float64 `json:"wall_seconds"`
	// MemBytesPerOp / MemAllocsPerOp are the harness process's allocator
	// cost of generating the figure, normalized by the figure's total op
	// count: simulator overhead, not simulated-system performance. Zero when
	// memory accounting is off (determinism smoke runs disable it — the
	// allocator totals are runtime-scheduling sensitive).
	MemBytesPerOp  float64 `json:"mem_bytes_per_op,omitempty"`
	MemAllocsPerOp float64 `json:"mem_allocs_per_op,omitempty"`
	// Metrics is the deterministic metrics-registry delta attributed to this
	// figure (internal/metrics snapshots taken around its generation):
	// per-server op/aggregation/retry tallies, switch pipe totals, hot
	// directory counts. Additive — absent for legacy producers — and, like
	// Counters, a pure function of the seed, so comparisons may diff it
	// exactly. encoding/json sorts map keys, keeping serialization
	// deterministic.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// Validate checks structural invariants: schema version, non-empty figure
// ids, rectangular rows, and counter alignment.
func (r *Result) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("bench: schema %d, want %d", r.Schema, SchemaVersion)
	}
	if len(r.Figures) == 0 {
		return fmt.Errorf("bench: no figures")
	}
	seen := map[string]bool{}
	for i := range r.Figures {
		f := &r.Figures[i]
		if f.ID == "" {
			return fmt.Errorf("bench: figure %d has no id", i)
		}
		if seen[f.ID] {
			return fmt.Errorf("bench: duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Header) == 0 {
			return fmt.Errorf("bench: figure %s has no header", f.ID)
		}
		for j, row := range f.Rows {
			if len(row) != len(f.Header) {
				return fmt.Errorf("bench: figure %s row %d has %d cells, header has %d",
					f.ID, j, len(row), len(f.Header))
			}
		}
		if len(f.Counters) != 0 && len(f.Counters) != len(f.Rows) {
			return fmt.Errorf("bench: figure %s has %d counter rows for %d rows",
				f.ID, len(f.Counters), len(f.Rows))
		}
	}
	return nil
}

// Write validates r and writes it as indented JSON via a temp-file rename,
// so a crashed run never leaves a half-written result.
func Write(path string, r *Result) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Marshal renders r as indented JSON (stdout emission).
func Marshal(r *Result) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Load reads and validates a result file.
func Load(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Direction classifies what "worse" means for a figure's numeric cells.
type Direction int

// Cell-metric directions.
const (
	// HigherBetter marks throughput-style figures.
	HigherBetter Direction = iota
	// LowerBetter marks latency/time-style figures.
	LowerBetter
	// Neutral marks figures whose direction could not be inferred; deltas
	// are reported but never flagged as regressions.
	Neutral
)

// DirectionOf infers a metric direction from a title or column header's
// units ("(Kops/s)", "mean µs", "recovery ms", ...).
func DirectionOf(title string) Direction {
	t := strings.ToLower(title)
	switch {
	case strings.Contains(t, "ops/s") || strings.Contains(t, "throughput") ||
		strings.Contains(t, "avail"):
		return HigherBetter
	case strings.Contains(t, "µs") || strings.Contains(t, "latency") ||
		strings.Contains(t, " ms") || strings.Contains(t, "seconds"):
		return LowerBetter
	case strings.Contains(t, "bytes/op") || strings.Contains(t, "allocs/op") ||
		strings.Contains(t, "b/op") || strings.Contains(t, "b/entry"):
		// Memory-accounting columns: allocator cost, smaller is better.
		return LowerBetter
	default:
		return Neutral
	}
}

// columnDirection resolves the direction of one cell column: the column
// header's own units win (figures like Fig14 mix Kops/s and µs columns in
// one table), falling back to the figure title.
func columnDirection(f *Figure, col int, titleDir Direction) Direction {
	if col < len(f.Header) {
		if d := DirectionOf(f.Header[col]); d != Neutral {
			return d
		}
	}
	return titleDir
}

// Delta is one compared cell.
type Delta struct {
	Figure string  `json:"figure"`
	Row    int     `json:"row"`
	Col    int     `json:"col"`
	Label  string  `json:"label"` // row labels + column header
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Pct is the relative change in percent ((new-old)/old).
	Pct float64 `json:"pct"`
	// Regression is true when the change exceeds the threshold in the
	// figure's worse direction.
	Regression bool `json:"regression"`
}

// CompareOpts tunes Compare.
type CompareOpts struct {
	// ThresholdPct flags cells whose metric moved more than this many
	// percent in the worse direction (default 10).
	ThresholdPct float64
	// CheckCounters additionally reports rows whose deterministic op or
	// packet counters differ at all — configuration drift, not noise.
	CheckCounters bool
	// MemThresholdPct flags figure-level bytes/op or allocs/op growth beyond
	// this many percent (default 25 — allocator totals carry more run-to-run
	// noise than simulated-time cells). Figures where either side reports 0
	// (accounting off) are skipped.
	MemThresholdPct float64
}

// CounterDrift is a row whose deterministic counters changed between runs.
type CounterDrift struct {
	Figure string         `json:"figure"`
	Row    int            `json:"row"`
	Label  string         `json:"label"`
	Old    stats.Counters `json:"old"`
	New    stats.Counters `json:"new"`
}

// MetricDrift is a figure-level metrics-registry key whose deterministic
// value changed between runs (absent on either side reads as 0).
type MetricDrift struct {
	Figure string `json:"figure"`
	Key    string `json:"key"`
	Old    uint64 `json:"old"`
	New    uint64 `json:"new"`
}

// RowChange identifies a row present in only one of the compared runs.
type RowChange struct {
	Figure string `json:"figure"`
	Row    int    `json:"row"`
	Label  string `json:"label"`
}

// Comparison is the outcome of Compare.
type Comparison struct {
	Deltas []Delta        `json:"deltas"`
	Drift  []CounterDrift `json:"drift,omitempty"`
	// MetricsDrift lists figure-level metrics keys that changed. Like
	// counter drift it is deterministic state, so any difference is
	// configuration drift or nondeterminism — but it is only checked when
	// BOTH runs carry metrics for the figure, so legacy baselines and
	// metrics-off runs compare clean.
	MetricsDrift []MetricDrift `json:"metrics_drift,omitempty"`
	// MissingFigures lists old figures absent from the new run.
	MissingFigures []string `json:"missing_figures,omitempty"`
	// AddedFigures lists new figures absent from the old run.
	AddedFigures []string `json:"added_figures,omitempty"`
	// RowsRemoved / RowsAdded list rows present in only the old / only the
	// new run. At a fixed scale and seed generation is deterministic, so any
	// entry here is a shape change — a dropped or grown sweep — and gates
	// the comparison rather than being silently skipped.
	RowsRemoved []RowChange `json:"rows_removed,omitempty"`
	RowsAdded   []RowChange `json:"rows_added,omitempty"`
}

// ShapeChanges reports whether the two runs disagree on which figures or
// rows exist at all.
func (c *Comparison) ShapeChanges() bool {
	return len(c.MissingFigures) > 0 || len(c.AddedFigures) > 0 ||
		len(c.RowsRemoved) > 0 || len(c.RowsAdded) > 0
}

// Regressions returns only the cells flagged as regressions.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two runs figure by figure and cell by cell. Figures match
// by ID, rows by index (generation is deterministic at a fixed scale), and
// only cells parsing as numbers in both runs are compared.
func Compare(old, new_ *Result, opts CompareOpts) *Comparison {
	if opts.ThresholdPct <= 0 {
		opts.ThresholdPct = 10
	}
	if opts.MemThresholdPct <= 0 {
		opts.MemThresholdPct = 25
	}
	newByID := map[string]*Figure{}
	for i := range new_.Figures {
		newByID[new_.Figures[i].ID] = &new_.Figures[i]
	}
	oldByID := map[string]bool{}
	for i := range old.Figures {
		oldByID[old.Figures[i].ID] = true
	}
	cmp := &Comparison{}
	for i := range new_.Figures {
		if !oldByID[new_.Figures[i].ID] {
			cmp.AddedFigures = append(cmp.AddedFigures, new_.Figures[i].ID)
		}
	}
	for i := range old.Figures {
		of := &old.Figures[i]
		nf := newByID[of.ID]
		if nf == nil {
			cmp.MissingFigures = append(cmp.MissingFigures, of.ID)
			continue
		}
		dir := DirectionOf(of.Title)
		rows := len(of.Rows)
		if len(nf.Rows) < rows {
			rows = len(nf.Rows)
		}
		for r := rows; r < len(of.Rows); r++ {
			cmp.RowsRemoved = append(cmp.RowsRemoved, RowChange{
				Figure: of.ID, Row: r, Label: rowLabel(of, r),
			})
		}
		for r := rows; r < len(nf.Rows); r++ {
			cmp.RowsAdded = append(cmp.RowsAdded, RowChange{
				Figure: nf.ID, Row: r, Label: rowLabel(nf, r),
			})
		}
		compareMem(cmp, of, nf, opts.MemThresholdPct)
		if opts.CheckCounters && len(of.Metrics) > 0 && len(nf.Metrics) > 0 {
			compareMetrics(cmp, of, nf)
		}
		for r := 0; r < rows; r++ {
			label := rowLabel(of, r)
			if opts.CheckCounters && r < len(of.Counters) && r < len(nf.Counters) &&
				!of.Counters[r].Equal(nf.Counters[r]) {
				cmp.Drift = append(cmp.Drift, CounterDrift{
					Figure: of.ID, Row: r, Label: label,
					Old: of.Counters[r], New: nf.Counters[r],
				})
			}
			cols := len(of.Rows[r])
			if len(nf.Rows[r]) < cols {
				cols = len(nf.Rows[r])
			}
			for c := 0; c < cols; c++ {
				ov, oerr := strconv.ParseFloat(of.Rows[r][c], 64)
				nv, nerr := strconv.ParseFloat(nf.Rows[r][c], 64)
				if oerr != nil || nerr != nil {
					continue
				}
				if ov == nv {
					continue
				}
				pct := 0.0
				if ov != 0 {
					pct = (nv - ov) / ov * 100
				}
				worse := false
				switch columnDirection(of, c, dir) {
				case HigherBetter:
					worse = pct < -opts.ThresholdPct
				case LowerBetter:
					worse = pct > opts.ThresholdPct
				}
				cmp.Deltas = append(cmp.Deltas, Delta{
					Figure: of.ID, Row: r, Col: c,
					Label: label + "/" + headerOf(of, c),
					Old:   ov, New: nv, Pct: pct,
					Regression: worse,
				})
			}
		}
	}
	return cmp
}

// compareMem gates the figure-level allocator columns. Both sides must
// report a value — a zero means accounting was off for that run, not that
// generation was free — and only growth past memThreshold in the worse
// (higher) direction flags a regression.
func compareMem(cmp *Comparison, of, nf *Figure, memThreshold float64) {
	pairs := []struct {
		label    string
		old, new float64
	}{
		{"bytes/op", of.MemBytesPerOp, nf.MemBytesPerOp},
		{"allocs/op", of.MemAllocsPerOp, nf.MemAllocsPerOp},
	}
	for _, p := range pairs {
		if p.old == 0 || p.new == 0 || p.old == p.new {
			continue
		}
		pct := (p.new - p.old) / p.old * 100
		cmp.Deltas = append(cmp.Deltas, Delta{
			Figure: of.ID, Row: -1, Col: -1,
			Label: "figure/" + p.label,
			Old:   p.old, New: p.new, Pct: pct,
			Regression: pct > memThreshold,
		})
	}
}

// compareMetrics diffs the deterministic figure-level metrics maps key by
// key (union of both sides, sorted; a key absent on one side reads as 0).
func compareMetrics(cmp *Comparison, of, nf *Figure) {
	keys := make([]string, 0, len(of.Metrics)+len(nf.Metrics))
	for k := range of.Metrics {
		keys = append(keys, k)
	}
	for k := range nf.Metrics {
		if _, ok := of.Metrics[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if of.Metrics[k] != nf.Metrics[k] {
			cmp.MetricsDrift = append(cmp.MetricsDrift, MetricDrift{
				Figure: of.ID, Key: k, Old: of.Metrics[k], New: nf.Metrics[k],
			})
		}
	}
}

// rowLabel joins a row's leading label cells — op names and integer config
// columns (servers, cores, bursts). Measurement cells are always formatted
// with a decimal point, so the label ends at the first dotted number.
func rowLabel(f *Figure, r int) string {
	var parts []string
	for _, cell := range f.Rows[r] {
		if _, err := strconv.ParseFloat(cell, 64); err == nil && strings.Contains(cell, ".") {
			break
		}
		parts = append(parts, cell)
	}
	if len(parts) == 0 && len(f.Rows[r]) > 0 {
		parts = append(parts, f.Rows[r][0])
	}
	return strings.Join(parts, "/")
}

func headerOf(f *Figure, c int) string {
	if c < len(f.Header) {
		return f.Header[c]
	}
	return strconv.Itoa(c)
}
