package baseline

import (
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
)

// bclient is one baseline LibFS instance: path resolution over a
// path→directory-id cache, synchronous request/response with retransmission.
type bclient struct {
	c  *Cluster
	id env.NodeID

	mu    sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the resolution cache; leaf section, never held across a park
	cache map[string]core.DirID
	calls map[uint64]*env.Future
	rpcs  uint64
}

var _ fsapi.FS = (*bclient)(nil)

func (cl *bclient) handle(p *env.Proc, from env.NodeID, msg any) {
	r, ok := msg.(*bresp)
	if !ok {
		return
	}
	cl.mu.Lock()
	fut := cl.calls[r.RPC]
	cl.mu.Unlock()
	if fut != nil {
		fut.Complete(r)
	}
}

func (cl *bclient) call(p *env.Proc, to env.NodeID, build func(rpc uint64) any) (*bresp, error) {
	cl.mu.Lock()
	cl.rpcs++
	rpc := uint64(cl.id)<<40 | cl.rpcs
	fut := env.NewFuture()
	cl.calls[rpc] = fut
	cl.mu.Unlock()
	defer func() {
		cl.mu.Lock()
		delete(cl.calls, rpc)
		cl.mu.Unlock()
	}()
	msg := build(rpc)
	for try := 0; try < 64; try++ {
		p.Send(to, msg)
		if v, ok := fut.WaitTimeout(p, cl.c.Opts.RetryTimeout); ok {
			return v.(*bresp), nil
		}
	}
	return nil, core.ErrTimeout
}

// resolve walks a path's directories, returning the parent's id, the leaf
// name, and the parent's path (for subtree routing).
func (cl *bclient) resolve(p *env.Proc, path string) (core.DirID, string, string, error) {
	comps, err := core.SplitPath(path)
	if err != nil {
		return core.DirID{}, "", "", err
	}
	if len(comps) == 0 {
		return core.DirID{}, "", "", core.ErrInvalid
	}
	p.Compute(cl.c.Opts.Costs.ClientOp)
	cur := core.RootDirID
	walked := ""
	for _, comp := range comps[:len(comps)-1] {
		walked += "/" + comp
		p.Compute(cl.c.Opts.Costs.CacheLookup)
		cl.mu.Lock()
		id, hit := cl.cache[walked]
		cl.mu.Unlock()
		if hit {
			cur = id
			continue
		}
		owner := cl.c.ownerForDirID(cur, parentPath(walked))
		resp, err := cl.call(p, owner.id, func(rpc uint64) any {
			return &breq{RPC: rpc, From: cl.id, Op: core.OpLookup, Dir: cur,
				DirPath: parentPath(walked), Name: comp}
		})
		if err != nil {
			return core.DirID{}, "", "", err
		}
		if resp.Err != core.ErrnoOK {
			return core.DirID{}, "", "", resp.Err.Err()
		}
		cl.mu.Lock()
		cl.cache[walked] = resp.Dir
		cl.mu.Unlock()
		cur = resp.Dir
	}
	dirPath := "/" + joinPath(comps[:len(comps)-1])
	return cur, comps[len(comps)-1], dirPath, nil
}

func joinPath(comps []string) string {
	out := ""
	for i, c := range comps {
		if i > 0 {
			out += "/"
		}
		out += c
	}
	return out
}

// do routes one operation and returns its error.
func (cl *bclient) do(p *env.Proc, op core.Op, path string) (*bresp, error) {
	if (op == core.OpStatDir || op == core.OpReadDir) && path == "/" {
		// The root needs no resolution (it is pre-cached as "/").
		owner := cl.c.ownerForDirID(core.RootDirID, "/")
		resp, err := cl.call(p, owner.id, func(rpc uint64) any {
			return &breq{RPC: rpc, From: cl.id, Op: op, Dir: core.RootDirID, DirPath: "/"}
		})
		if err != nil {
			return nil, err
		}
		return resp, resp.Err.Err()
	}
	dir, name, dirPath, err := cl.resolve(p, path)
	if err != nil {
		return nil, err
	}
	var owner *bserver
	switch op {
	case core.OpStatDir, core.OpReadDir:
		// Directory reads address the directory itself.
		cl.mu.Lock()
		id, ok := cl.cache[path]
		cl.mu.Unlock()
		if !ok {
			o := cl.c.ownerForDirID(dir, dirPath)
			resp, err := cl.call(p, o.id, func(rpc uint64) any {
				return &breq{RPC: rpc, From: cl.id, Op: core.OpLookup, Dir: dir,
					DirPath: dirPath, Name: name}
			})
			if err != nil {
				return nil, err
			}
			if resp.Err != core.ErrnoOK {
				return nil, resp.Err.Err()
			}
			id = resp.Dir
			cl.mu.Lock()
			cl.cache[path] = id
			cl.mu.Unlock()
		}
		owner = cl.c.ownerForDirID(id, path)
		resp, err := cl.call(p, owner.id, func(rpc uint64) any {
			return &breq{RPC: rpc, From: cl.id, Op: op, Dir: id, DirPath: path}
		})
		if err != nil {
			return nil, err
		}
		return resp, resp.Err.Err()
	case core.OpMkdir:
		newID := cl.c.nextID()
		owner = cl.c.ownerForDirID(dir, dirPath)
		resp, err := cl.call(p, owner.id, func(rpc uint64) any {
			return &breq{RPC: rpc, From: cl.id, Op: op, Dir: dir, DirPath: dirPath,
				Name: name, NewDir: newID}
		})
		if err != nil {
			return nil, err
		}
		if resp.Err == core.ErrnoOK {
			cl.mu.Lock()
			cl.cache[path] = resp.Dir
			cl.mu.Unlock()
		}
		return resp, resp.Err.Err()
	case core.OpRmdir:
		owner = cl.c.ownerForDirID(dir, dirPath)
	case core.OpCreate, core.OpDelete:
		owner = cl.c.fileServerForPath(dir, name, dirPath)
	default: // stat/open/close/chmod
		owner = cl.c.fileServerForPath(dir, name, dirPath)
	}
	resp, err := cl.call(p, owner.id, func(rpc uint64) any {
		return &breq{RPC: rpc, From: cl.id, Op: op, Dir: dir, DirPath: dirPath, Name: name}
	})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err.Err()
}

// --- fsapi.FS -----------------------------------------------------------------

func (cl *bclient) Create(p *env.Proc, path string) error {
	_, err := cl.do(p, core.OpCreate, path)
	return err
}

func (cl *bclient) Delete(p *env.Proc, path string) error {
	_, err := cl.do(p, core.OpDelete, path)
	return err
}

func (cl *bclient) Mkdir(p *env.Proc, path string) error {
	_, err := cl.do(p, core.OpMkdir, path)
	return err
}

func (cl *bclient) Rmdir(p *env.Proc, path string) error {
	_, err := cl.do(p, core.OpRmdir, path)
	if err == nil {
		cl.invalidatePrefix(path)
	}
	return err
}

// invalidatePrefix drops every cached resolution at or under path: after a
// rmdir or rename, a recreated or moved directory gets a different id, and a
// stale hit would route operations to the old one.
func (cl *bclient) invalidatePrefix(path string) {
	cl.mu.Lock()
	for k := range cl.cache {
		if k == path || (len(k) > len(path)+1 && k[:len(path)] == path && k[len(path)] == '/') {
			delete(cl.cache, k)
		}
	}
	cl.mu.Unlock()
}

// statAttr builds the attribute block for a stat/open response from the
// type the server read off the store. The baseline stores record only
// existence and type, so the mode is the type's default (enough for
// harness assertions).
func statAttr(resp *bresp) core.Attr {
	a := core.Attr{Type: resp.Type, Perm: core.DefaultFilePerm, Nlink: 1}
	if a.Type == 0 {
		a.Type = core.TypeRegular
	}
	if a.Type == core.TypeDir {
		a.Perm = core.DefaultDirPerm
	}
	return a
}

func (cl *bclient) Stat(p *env.Proc, path string) (core.Attr, error) {
	resp, err := cl.do(p, core.OpStat, path)
	if err != nil {
		return core.Attr{}, err
	}
	return statAttr(resp), nil
}

func (cl *bclient) Open(p *env.Proc, path string) (core.Attr, error) {
	resp, err := cl.do(p, core.OpOpen, path)
	if err != nil {
		return core.Attr{}, err
	}
	return statAttr(resp), nil
}

func (cl *bclient) Close(p *env.Proc, path string) error {
	_, err := cl.do(p, core.OpClose, path)
	return err
}

func (cl *bclient) Chmod(p *env.Proc, path string, perm core.Perm) error {
	_, err := cl.do(p, core.OpChmod, path)
	return err
}

func (cl *bclient) StatDir(p *env.Proc, path string) (core.Attr, error) {
	resp, err := cl.do(p, core.OpStatDir, path)
	if err != nil {
		return core.Attr{}, err
	}
	return core.Attr{Type: core.TypeDir, Perm: resp.Perm, Size: resp.Size}, nil
}

func (cl *bclient) ReadDir(p *env.Proc, path string) ([]core.DirEntry, error) {
	resp, err := cl.do(p, core.OpReadDir, path)
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// twoPath routes rename and link to the source's server.
func (cl *bclient) twoPath(p *env.Proc, op core.Op, src, dst string) error {
	sdir, sname, sdirPath, err := cl.resolve(p, src)
	if err != nil {
		return err
	}
	ddir, dname, ddirPath, err := cl.resolve(p, dst)
	if err != nil {
		return err
	}
	owner := cl.c.fileServerForPath(sdir, sname, sdirPath)
	resp, err := cl.call(p, owner.id, func(rpc uint64) any {
		return &breq{RPC: rpc, From: cl.id, Op: op,
			Dir: sdir, DirPath: sdirPath, Name: sname,
			Dir2: ddir, Dir2Path: ddirPath, Name2: dname}
	})
	if err != nil {
		return err
	}
	return resp.Err.Err()
}

func (cl *bclient) Rename(p *env.Proc, src, dst string) error {
	err := cl.twoPath(p, core.OpRename, src, dst)
	if err == nil {
		// A renamed directory's descendants are cached under the old path.
		cl.invalidatePrefix(src)
	}
	return err
}

func (cl *bclient) Link(p *env.Proc, src, dst string) error {
	return cl.twoPath(p, core.OpLink, src, dst)
}

func (cl *bclient) Data(p *env.Proc, shard int, write bool, bytes int64) error {
	if cl.c.Opts.DataNodes == 0 {
		return nil
	}
	node := dataBase + env.NodeID(shard%cl.c.Opts.DataNodes)
	cl.mu.Lock()
	cl.rpcs++
	rpc := uint64(cl.id)<<40 | cl.rpcs
	fut := env.NewFuture()
	cl.calls[rpc] = fut
	cl.mu.Unlock()
	defer func() {
		cl.mu.Lock()
		delete(cl.calls, rpc)
		cl.mu.Unlock()
	}()
	for try := 0; try < 8; try++ {
		p.Send(node, &bdata{RPC: rpc, From: cl.id, Bytes: bytes})
		if _, ok := fut.WaitTimeout(p, 40*env.Millisecond); ok {
			return nil
		}
	}
	return core.ErrTimeout
}

// ClientFS implements fsapi.System.
func (c *Cluster) ClientFS(i int) fsapi.FS { return c.clients[i%len(c.clients)] }

// SpawnClient runs fn as a process on client i's node (workload workers).
func (c *Cluster) SpawnClient(i int, fn func(p *env.Proc)) {
	c.EnvH.Spawn(c.clients[i%len(c.clients)].id, fn)
}

// Drain implements fsapi.System: baseline updates are synchronous, so there
// is no deferred work to apply.
func (c *Cluster) Drain(p *env.Proc) {}
