package baseline

import (
	"errors"
	"fmt"
	"testing"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
)

func deployTest(t *testing.T, mode Mode) (*env.Sim, *Cluster) {
	t.Helper()
	sim := env.NewSim(9)
	c := New(sim, Options{Mode: mode, Servers: 4, Clients: 1, Costs: env.DefaultCosts()})
	t.Cleanup(sim.Shutdown)
	return sim, c
}

// run executes fn on client 0 and drives the simulation.
func run(sim *env.Sim, c *Cluster, fn func(p *env.Proc, fs fsapi.FS)) {
	fs := c.ClientFS(0)
	c.SpawnClient(0, func(p *env.Proc) { fn(p, fs) })
	sim.Run()
}

func testBasicOps(t *testing.T, mode Mode) {
	sim, c := deployTest(t, mode)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		if err := fs.Mkdir(p, "/d"); err != nil {
			t.Errorf("%v mkdir: %v", mode, err)
			return
		}
		for i := 0; i < 8; i++ {
			if err := fs.Create(p, fmt.Sprintf("/d/f%d", i)); err != nil {
				t.Errorf("%v create: %v", mode, err)
				return
			}
		}
		if err := fs.Create(p, "/d/f0"); !errors.Is(err, core.ErrExist) {
			t.Errorf("%v duplicate create: %v", mode, err)
		}
		if a, err := fs.Stat(p, "/d/f3"); err != nil || a.Type != core.TypeRegular {
			t.Errorf("%v stat: attr=%+v err=%v", mode, a, err)
		}
		if a, err := fs.StatDir(p, "/d"); err != nil || a.Size != 8 {
			t.Errorf("%v statdir: size=%d err=%v, want 8", mode, a.Size, err)
		}
		if es, err := fs.ReadDir(p, "/d"); err != nil || len(es) != 8 {
			t.Errorf("%v readdir: %d entries err=%v, want 8", mode, len(es), err)
		}
		if err := fs.Delete(p, "/d/f3"); err != nil {
			t.Errorf("%v delete: %v", mode, err)
		}
		if _, err := fs.Stat(p, "/d/f3"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("%v stat after delete: %v", mode, err)
		}
	})
}

func TestInfiniFSBasicOps(t *testing.T) { testBasicOps(t, InfiniFS) }
func TestCFSBasicOps(t *testing.T)      { testBasicOps(t, CFS) }
func TestCephBasicOps(t *testing.T)     { testBasicOps(t, Ceph) }
func TestIndexFSBasicOps(t *testing.T)  { testBasicOps(t, IndexFS) }

func TestDirSizeTracking(t *testing.T) {
	for _, mode := range []Mode{InfiniFS, CFS} {
		sim, c := deployTest(t, mode)
		run(sim, c, func(p *env.Proc, fs fsapi.FS) {
			fs.Mkdir(p, "/d")
			for i := 0; i < 5; i++ {
				fs.Create(p, fmt.Sprintf("/d/f%d", i))
			}
			fs.Delete(p, "/d/f0")
			a, err := fs.StatDir(p, "/d")
			if err != nil || a.Size != 4 {
				t.Errorf("%v: size=%d err=%v, want 4", mode, a.Size, err)
			}
		})
	}
}

func TestRmdirSemantics(t *testing.T) {
	sim, c := deployTest(t, CFS)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		fs.Mkdir(p, "/p")
		fs.Mkdir(p, "/p/q")
		fs.Create(p, "/p/q/f")
		if err := fs.Rmdir(p, "/p/q"); !errors.Is(err, core.ErrNotEmpty) {
			t.Errorf("rmdir non-empty: %v", err)
		}
		fs.Delete(p, "/p/q/f")
		if err := fs.Rmdir(p, "/p/q"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
	})
}

func TestIndexFSRmdirUnsupported(t *testing.T) {
	sim, c := deployTest(t, IndexFS)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		fs.Mkdir(p, "/p")
		fs.Mkdir(p, "/p/q")
		if err := fs.Rmdir(p, "/p/q"); err == nil {
			t.Error("IndexFS rmdir should be unsupported (§7.2.1)")
		}
	})
}

func TestRenameMovesFile(t *testing.T) {
	for _, mode := range []Mode{InfiniFS, CFS} {
		sim, c := deployTest(t, mode)
		run(sim, c, func(p *env.Proc, fs fsapi.FS) {
			fs.Mkdir(p, "/a")
			fs.Mkdir(p, "/b")
			fs.Create(p, "/a/f")
			if err := fs.Rename(p, "/a/f", "/b/g"); err != nil {
				t.Errorf("%v rename: %v", mode, err)
				return
			}
			if _, err := fs.Stat(p, "/a/f"); !errors.Is(err, core.ErrNotExist) {
				t.Errorf("%v src survived rename: %v", mode, err)
			}
			if _, err := fs.Stat(p, "/b/g"); err != nil {
				t.Errorf("%v dst missing: %v", mode, err)
			}
		})
	}
}

func TestPreloadVisibleToClients(t *testing.T) {
	for _, mode := range []Mode{InfiniFS, CFS, Ceph} {
		sim, c := deployTest(t, mode)
		c.Preload([]string{"/data/a", "/data/b"}, 20)
		run(sim, c, func(p *env.Proc, fs fsapi.FS) {
			if _, err := fs.Stat(p, "/data/a/f7"); err != nil {
				t.Errorf("%v stat preloaded: %v", mode, err)
			}
			a, err := fs.StatDir(p, "/data/b")
			if err != nil || a.Size != 20 {
				t.Errorf("%v statdir preloaded: size=%d err=%v", mode, a.Size, err)
			}
		})
	}
}

// TestPlacementShapesMatchTab1 verifies Tab. 1's structural claims: under
// grouping, a directory's children colocate with the directory; under
// separation, children spread across servers.
func TestPlacementShapesMatchTab1(t *testing.T) {
	simG := env.NewSim(9)
	g := New(simG, Options{Mode: InfiniFS, Servers: 8, Clients: 1, Costs: env.ZeroCosts()})
	simG.Shutdown()
	simS := env.NewSim(9)
	s := New(simS, Options{Mode: CFS, Servers: 8, Clients: 1, Costs: env.ZeroCosts()})
	simS.Shutdown()

	pid := g.nextID()
	groupServers := map[*bserver]bool{}
	sepServers := map[*bserver]bool{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("f%d", i)
		groupServers[g.fileServer(pid, name)] = true
		sepServers[s.fileServer(pid, name)] = true
	}
	if len(groupServers) != 1 {
		t.Errorf("grouping spread one directory's files over %d servers", len(groupServers))
	}
	if len(sepServers) < 4 {
		t.Errorf("separation used only %d servers for 200 files", len(sepServers))
	}
}

func TestCephSubtreePinning(t *testing.T) {
	sim := env.NewSim(9)
	defer sim.Shutdown()
	c := New(sim, Options{Mode: Ceph, Servers: 8, Clients: 1, Costs: env.ZeroCosts()})
	// Everything under one top-level directory shares a server.
	s1 := c.subtreeOf("/top/a/b")
	s2 := c.subtreeOf("/top/x")
	s3 := c.subtreeOf("/top")
	if s1 != s2 || s2 != s3 {
		t.Error("subtree pinning split one subtree")
	}
}

func TestDirRecordRoundTrip(t *testing.T) {
	r := &dirRecord{Perm: 0o755, Size: 42, Mtime: 9999, Subtree: 3}
	got := decodeDir(encodeDir(r))
	if *got != *r {
		t.Fatalf("got %+v want %+v", got, r)
	}
}
