// Package baseline implements the emulated comparison systems of the paper's
// evaluation (§7.1): Emulated-InfiniFS (parent/children grouping via
// per-directory hashing), Emulated-CFS (parent/children separation via
// per-file hashing with cross-server transactions), a modeled CephFS
// (subtree partitioning plus a heavy per-operation software stack), and a
// modeled IndexFS (grouping, no rmdir). All baselines use synchronous
// metadata updates and share the storage (kv), CPU (env cores) and network
// framework with SwitchFS, mirroring the paper's fair-comparison setup.
package baseline

import (
	"fmt"
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/kv"
)

// Mode selects the emulated system.
type Mode int

// Baseline systems.
const (
	// InfiniFS: P/C grouping; double-inode file ops local; mkdir/rmdir
	// cross-server (Tab. 1).
	InfiniFS Mode = iota
	// CFS: P/C separation; all double-inode ops cross-server.
	CFS
	// Ceph: subtree partitioning (first path component) + heavy software
	// stack per op.
	Ceph
	// IndexFS: grouping variant without rmdir support.
	IndexFS
)

func (m Mode) String() string {
	switch m {
	case InfiniFS:
		return "Emulated-InfiniFS"
	case CFS:
		return "Emulated-CFS"
	case Ceph:
		return "CephFS"
	case IndexFS:
		return "IndexFS"
	default:
		return "baseline?"
	}
}

// Options configures a baseline cluster.
type Options struct {
	Mode           Mode
	Servers        int
	CoresPerServer int
	Clients        int
	DataNodes      int
	Costs          env.Costs
	RetryTimeout   env.Duration
}

// Node id layout, disjoint from the SwitchFS cluster's.
const (
	serverBase env.NodeID = 30000
	clientBase env.NodeID = 40000
	dataBase   env.NodeID = 50000
)

// Cluster is a deployed baseline system.
type Cluster struct {
	EnvH    env.Env
	Opts    Options
	servers []*bserver
	clients []*bclient
	idgen   *core.IDGen
	idmu    sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the id generator; leaf section, never held across a park
}

// New deploys a baseline cluster.
func New(e env.Env, opts Options) *Cluster {
	if opts.Servers == 0 {
		opts.Servers = 8
	}
	if opts.CoresPerServer == 0 {
		opts.CoresPerServer = 4
	}
	if opts.Clients == 0 {
		opts.Clients = 1
	}
	if opts.RetryTimeout == 0 {
		opts.RetryTimeout = 2 * env.Millisecond
	}
	c := &Cluster{EnvH: e, Opts: opts, idgen: core.NewIDGen(0xBA5E)}
	for i := 0; i < opts.Servers; i++ {
		s := &bserver{
			c:        c,
			id:       serverBase + env.NodeID(i),
			kv:       kv.New(),
			locks:    make(map[core.DirID]*env.RWMutex),
			calls:    make(map[uint64]*env.Future),
			inflight: make(map[reqKey]bool),
			served:   make(map[reqKey]any),
		}
		e.AddNode(s.id, env.NodeConfig{Cores: opts.CoresPerServer, Handler: s.handle})
		c.servers = append(c.servers, s)
	}
	for i := 0; i < opts.Clients; i++ {
		cl := &bclient{
			c:     c,
			id:    clientBase + env.NodeID(i),
			cache: map[string]core.DirID{"/": core.RootDirID},
			calls: make(map[uint64]*env.Future),
		}
		e.AddNode(cl.id, env.NodeConfig{Handler: cl.handle})
		c.clients = append(c.clients, cl)
	}
	for i := 0; i < opts.DataNodes; i++ {
		id := dataBase + env.NodeID(i)
		cost := opts.Costs.DataIO
		e.AddNode(id, env.NodeConfig{Cores: 4, Handler: func(p *env.Proc, from env.NodeID, msg any) {
			req, ok := msg.(*bdata)
			if !ok {
				return
			}
			p.Compute(cost)
			p.Send(req.From, &bresp{RPC: req.RPC})
		}})
	}
	// Root directory lives on its owner.
	root := c.dirServer(core.RootDirID)
	root.kv.Put(dirKey(core.RootDirID), encodeDir(&dirRecord{Perm: core.DefaultDirPerm}))
	return c
}

// Name implements fsapi.System.
func (c *Cluster) Name() string { return c.Opts.Mode.String() }

// ServerNode returns server i's node id (fault-injection targeting).
func (c *Cluster) ServerNode(i int) env.NodeID { return c.servers[i].id }

// ClientNode returns client i's node id (fault-injection targeting).
func (c *Cluster) ClientNode(i int) env.NodeID { return c.clients[i%len(c.clients)].id }

// PerServerOps returns each server's executed client-request count, indexed
// by server number (the per-server tallies figures carry).
func (c *Cluster) PerServerOps() []uint64 {
	out := make([]uint64, len(c.servers))
	for i, s := range c.servers {
		s.mu.Lock()
		out[i] = s.ops
		s.mu.Unlock()
	}
	return out
}

// nextID allocates a directory id.
func (c *Cluster) nextID() core.DirID {
	c.idmu.Lock()
	defer c.idmu.Unlock()
	return c.idgen.Next()
}

// dirServer places a directory's metadata (inode, dentries, child file
// inodes under grouping). InfiniFS/IndexFS hash the directory id; Ceph pins
// whole subtrees (approximated by the directory id of the top-level
// ancestor, carried in the id's low bits at Preload/creation time — see
// subtreeOf); CFS also hashes the directory id for the directory's own
// metadata.
func (c *Cluster) dirServer(id core.DirID) *bserver {
	h := id[0] ^ id[1]*0x9E37 ^ id[3]
	return c.servers[int(h%uint64(len(c.servers)))]
}

// fileServer places a file inode: grouping modes colocate with the parent
// directory; CFS hashes (pid, name).
func (c *Cluster) fileServer(pid core.DirID, name string) *bserver {
	switch c.Opts.Mode {
	case CFS:
		return c.servers[int(core.Hash64(pid, name)%uint64(len(c.servers)))]
	default:
		return c.dirServer(pid)
	}
}

// subtree pinning for Ceph: every directory carries the server index it was
// pinned to at creation; we store it in the directory record.

// --- storage records ---------------------------------------------------------

// dirRecord is a directory's metadata in a baseline store.
type dirRecord struct {
	Perm    core.Perm
	Size    int64
	Mtime   int64
	Subtree int32 // Ceph: pinned server index
}

func dirKey(id core.DirID) []byte {
	b := make([]byte, 0, 33)
	b = append(b, 'D')
	return id.AppendBinary(b)
}

func fileKey(pid core.DirID, name string) []byte {
	b := make([]byte, 0, 34+len(name))
	b = append(b, 'F')
	b = pid.AppendBinary(b)
	b = append(b, '/')
	return append(b, name...)
}

func entKey(pid core.DirID, name string) []byte {
	b := make([]byte, 0, 34+len(name))
	b = append(b, 'E')
	b = pid.AppendBinary(b)
	b = append(b, '/')
	return append(b, name...)
}

func encodeDir(r *dirRecord) []byte {
	b := make([]byte, 0, 24)
	b = append(b, byte(r.Perm>>8), byte(r.Perm))
	for _, v := range []int64{r.Size, r.Mtime, int64(r.Subtree)} {
		for i := 56; i >= 0; i -= 8 {
			b = append(b, byte(uint64(v)>>uint(i)))
		}
	}
	return b
}

func decodeDir(b []byte) *dirRecord {
	if len(b) < 26 {
		return &dirRecord{}
	}
	rd := func(o int) int64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v = v<<8 | uint64(b[o+i])
		}
		return int64(v)
	}
	return &dirRecord{
		Perm:    core.Perm(uint16(b[0])<<8 | uint16(b[1])),
		Size:    rd(2),
		Mtime:   rd(10),
		Subtree: int32(rd(18)),
	}
}

// Preload implements fsapi.System: installs directories and files directly.
func (c *Cluster) Preload(dirs []string, filesPerDir int) {
	for _, d := range dirs {
		id := c.preloadDir(d)
		srv := c.ownerForDirID(id, d)
		for i := 0; i < filesPerDir; i++ {
			name := fmt.Sprintf("f%d", i)
			fs := c.fileServerForPath(id, name, d)
			fs.kv.Put(fileKey(id, name), []byte{1})
			srv.kv.Put(entKey(id, name), []byte{1})
		}
		raw, _ := srv.kv.Get(dirKey(id))
		r := decodeDir(raw)
		r.Size += int64(filesPerDir)
		srv.kv.Put(dirKey(id), encodeDir(r))
	}
}

// ownerForDirID returns the server holding a directory's metadata, honoring
// Ceph subtree pinning by path.
func (c *Cluster) ownerForDirID(id core.DirID, path string) *bserver {
	if c.Opts.Mode == Ceph {
		return c.servers[c.subtreeOf(path)]
	}
	return c.dirServer(id)
}

func (c *Cluster) fileServerForPath(pid core.DirID, name, dirPath string) *bserver {
	if c.Opts.Mode == Ceph {
		return c.servers[c.subtreeOf(dirPath)]
	}
	return c.fileServer(pid, name)
}

// subtreeOf pins a path's subtree to a server: CephFS partitions the tree at
// coarse grain, so everything under one top-level directory shares a server.
func (c *Cluster) subtreeOf(path string) int {
	comps, err := core.SplitPath(path)
	if err != nil || len(comps) == 0 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(comps[0]); i++ {
		h = (h ^ uint64(comps[0][i])) * 1099511628211
	}
	return int(h % uint64(len(c.servers)))
}

// preloadDir ensures a directory path exists and returns its id.
func (c *Cluster) preloadDir(path string) core.DirID {
	cl := c.clients[0]
	cl.mu.Lock()
	if id, ok := cl.cache[path]; ok {
		cl.mu.Unlock()
		return id
	}
	cl.mu.Unlock()
	comps, err := core.SplitPath(path)
	if err != nil {
		panic(err)
	}
	cur := core.RootDirID
	walked := ""
	for _, comp := range comps {
		walked += "/" + comp
		cl.mu.Lock()
		id, ok := cl.cache[walked]
		cl.mu.Unlock()
		if ok {
			cur = id
			continue
		}
		id = c.nextID()
		parentSrv := c.ownerForDirID(cur, parentPath(walked))
		dirSrv := c.ownerForDirID(id, walked)
		dirSrv.kv.Put(dirKey(id), encodeDir(&dirRecord{Perm: core.DefaultDirPerm}))
		parentSrv.kv.Put(entKey(cur, comp), []byte{2})
		parentSrv.kv.Put(fileKey(cur, comp), append([]byte{2}, dirKey(id)...))
		raw, _ := parentSrv.kv.Get(dirKey(cur))
		r := decodeDir(raw)
		r.Size++
		parentSrv.kv.Put(dirKey(cur), encodeDir(r))
		// Share the resolved id with every client cache.
		for _, cc := range c.clients {
			cc.mu.Lock()
			cc.cache[walked] = id
			cc.mu.Unlock()
		}
		cur = id
	}
	return cur
}

func parentPath(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
