package baseline

import (
	"errors"
	"testing"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/fsapi"
)

// Regression tests for the POSIX-shape divergences the lincheck differential
// harness held the baseline to. Before these fixes the emulated systems
// disagreed with SwitchFS (and POSIX) on every case below, so no
// differential comparison of the full API was possible.

func checkErr(t *testing.T, what string, err, sentinel error) {
	t.Helper()
	if !errors.Is(err, sentinel) {
		t.Errorf("%s: got %v, want %v", what, err, sentinel)
	}
}

func TestSemanticsErrors(t *testing.T) {
	sim, c := deployTest(t, InfiniFS)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		if err := fs.Mkdir(p, "/d"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := fs.Create(p, "/f"); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Deleting a directory is rmdir's job.
		checkErr(t, "delete of dir", fs.Delete(p, "/d"), core.ErrIsDir)
		// Rmdir of a regular file.
		checkErr(t, "rmdir of file", fs.Rmdir(p, "/f"), core.ErrNotDir)
		// A file used as a path component is ENOTDIR, not ENOENT.
		checkErr(t, "lookup through file", fs.Create(p, "/f/x"), core.ErrNotDir)
		// Missing intermediate component stays ENOENT.
		checkErr(t, "lookup through missing", fs.Create(p, "/nope/x"), core.ErrNotExist)
		// The directory must still be intact after the failed delete.
		if _, err := fs.StatDir(p, "/d"); err != nil {
			t.Errorf("statdir after rejected delete: %v", err)
		}
	})
}

func TestSemanticsRename(t *testing.T) {
	sim, c := deployTest(t, InfiniFS)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		for _, err := range []error{
			fs.Mkdir(p, "/d"), fs.Create(p, "/d/f"), fs.Create(p, "/g"),
		} {
			if err != nil {
				t.Errorf("setup: %v", err)
				return
			}
		}
		// Missing source (and no phantom destination may appear).
		checkErr(t, "rename missing", fs.Rename(p, "/nope", "/x"), core.ErrNotExist)
		if _, err := fs.Stat(p, "/x"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("rename of missing source created destination: %v", err)
		}
		// Rename to itself is a no-op success.
		if err := fs.Rename(p, "/g", "/g"); err != nil {
			t.Errorf("self-rename: %v", err)
		}
		// Existing destination (file and dir) is EEXIST — before the fix the
		// baseline silently overwrote it.
		checkErr(t, "rename onto file", fs.Rename(p, "/g", "/d/f"), core.ErrExist)
		checkErr(t, "rename onto dir", fs.Rename(p, "/g", "/d"), core.ErrExist)
		// A directory cannot move under its own subtree.
		checkErr(t, "rename into own subtree", fs.Rename(p, "/d", "/d/sub"), core.ErrLoop)

		// A renamed directory keeps its identity: children resolve through
		// the new path, the old path is dead (client caches invalidated),
		// and the moved record keeps its type — before the fix the pointer
		// record was rewritten as a regular file, stranding the subtree.
		if err := fs.Rename(p, "/d", "/e"); err != nil {
			t.Errorf("dir rename: %v", err)
			return
		}
		if a, err := fs.Stat(p, "/e"); err != nil || a.Type != core.TypeDir {
			t.Errorf("renamed dir type=%v err=%v", a.Type, err)
		}
		if _, err := fs.Stat(p, "/e/f"); err != nil {
			t.Errorf("child through renamed dir: %v", err)
		}
		if _, err := fs.Stat(p, "/d/f"); !errors.Is(err, core.ErrNotExist) {
			t.Errorf("child through old dir path: %v, want ErrNotExist", err)
		}
		if a, err := fs.StatDir(p, "/e"); err != nil || a.Size != 1 {
			t.Errorf("renamed dir size=%d err=%v, want 1", a.Size, err)
		}
	})
}

func TestSemanticsLink(t *testing.T) {
	sim, c := deployTest(t, InfiniFS)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		if err := fs.Mkdir(p, "/d"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := fs.Create(p, "/d/f"); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		checkErr(t, "link missing", fs.Link(p, "/nope", "/l"), core.ErrNotExist)
		checkErr(t, "link of dir", fs.Link(p, "/d", "/l"), core.ErrIsDir)
		if err := fs.Link(p, "/d/f", "/l"); err != nil {
			t.Errorf("link: %v", err)
			return
		}
		checkErr(t, "link onto existing", fs.Link(p, "/d/f", "/l"), core.ErrExist)
		// Both references resolve; deleting one leaves the other.
		if err := fs.Delete(p, "/d/f"); err != nil {
			t.Errorf("delete source ref: %v", err)
		}
		if _, err := fs.Stat(p, "/l"); err != nil {
			t.Errorf("surviving reference: %v", err)
		}
	})
}

func TestSemanticsRootReads(t *testing.T) {
	sim, c := deployTest(t, InfiniFS)
	run(sim, c, func(p *env.Proc, fs fsapi.FS) {
		if err := fs.Mkdir(p, "/d"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := fs.Create(p, "/f"); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Root statdir/readdir work without resolution (they used to fail
		// with ErrInvalid, making a full-tree walk impossible).
		a, err := fs.StatDir(p, "/")
		if err != nil || a.Size != 2 {
			t.Errorf("root statdir size=%d err=%v, want 2", a.Size, err)
		}
		es, err := fs.ReadDir(p, "/")
		if err != nil || len(es) != 2 {
			t.Errorf("root readdir %d entries err=%v, want 2", len(es), err)
		}
	})
}
