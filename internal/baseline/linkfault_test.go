package baseline

import (
	"fmt"
	"testing"

	"switchfs/internal/env"
	"switchfs/internal/fsapi"
)

// TestLinkRuleDupReorderPreservesDedup mirrors the SwitchFS-side test in
// internal/cluster: per-link duplication and reorder on every client↔server
// link must not re-execute mutations on the baseline servers (their
// inflight/served RPC cache provides exactly-once effects).
func TestLinkRuleDupReorderPreservesDedup(t *testing.T) {
	for _, mode := range []Mode{InfiniFS, CFS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sim, c := deployTest(t, mode)
			rule := env.LinkRule{Dup: 0.3, Jitter: 4 * env.Microsecond}
			for i := 0; i < c.Opts.Servers; i++ {
				sim.Net().SetLink(c.ClientNode(0), c.ServerNode(i), rule)
				sim.Net().SetLink(c.ServerNode(i), c.ClientNode(0), rule)
			}
			run(sim, c, func(p *env.Proc, fs fsapi.FS) {
				if err := fs.Mkdir(p, "/d"); err != nil {
					t.Errorf("mkdir: %v", err)
					return
				}
				for i := 0; i < 30; i++ {
					if err := fs.Create(p, fmt.Sprintf("/d/f%d", i)); err != nil {
						t.Errorf("create %d: %v", i, err)
						return
					}
					if i%3 == 0 {
						if err := fs.Delete(p, fmt.Sprintf("/d/f%d", i)); err != nil {
							t.Errorf("delete %d: %v", i, err)
							return
						}
					}
				}
				want := int64(30 - 10)
				attr, err := fs.StatDir(p, "/d")
				if err != nil || attr.Size != want {
					t.Errorf("size=%d err=%v, want %d (duplication re-executed a mutation)",
						attr.Size, err, want)
				}
				es, err := fs.ReadDir(p, "/d")
				if err != nil || int64(len(es)) != want {
					t.Errorf("readdir %d entries err=%v, want %d", len(es), err, want)
				}
			})
		})
	}
}
