package baseline

import (
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/kv"
)

// Baseline message types (the baselines share the env network but speak
// their own compact protocol).

// breq is a client request.
type breq struct {
	RPC      uint64
	From     env.NodeID
	Op       core.Op
	Dir      core.DirID // parent (double-inode ops, file ops) or target dir
	DirPath  string     // Ceph subtree routing
	Name     string
	NewDir   core.DirID // mkdir: preallocated directory id
	Dir2     core.DirID // rename destination parent
	Dir2Path string
	Name2    string
	Perm     core.Perm
}

// bresp answers a client request.
type bresp struct {
	RPC  uint64
	Err  core.Errno
	Dir  core.DirID
	Size int64
	Perm core.Perm
	// Type is the target's file type for stat/open responses (the stores
	// record it as the value's marker byte).
	Type core.FileType
	// Entries carries the listing for readdir responses.
	Entries []core.DirEntry
}

// bsub is a server-to-server sub-operation of a synchronous multi-server
// update (the cross-server coordination SwitchFS hides, §3.2 Challenge #1).
type bsub struct {
	RPC  uint64
	From env.NodeID
	Kind subKind
	Dir  core.DirID
	Name string
	Put  bool // parent update: insert (true) or remove (false)
	Type core.FileType
	// Raw is the record body for subPutFile (rename/link move records
	// verbatim so markers and directory pointers survive).
	Raw []byte
}

type subKind uint8

const (
	// subParentApply applies a dentry insert/remove + attribute update on
	// the directory's owner under its exclusive lock.
	subParentApply subKind = iota + 1
	// subCreateDir installs a new directory inode.
	subCreateDir
	// subDeleteDirIfEmpty validates emptiness and removes a directory inode.
	subDeleteDirIfEmpty
	// subPutFile / subDelFile / subGetFile manipulate a remote file inode
	// (CFS rename legs).
	subPutFile
	subDelFile
	subGetFile
)

// bsubResp answers a sub-operation.
type bsubResp struct {
	RPC uint64
	Err core.Errno
	Raw []byte
}

// bdata is a data-node access.
type bdata struct {
	RPC   uint64
	From  env.NodeID
	Bytes int64
}

// bserver is one baseline metadata server.
type bserver struct {
	c  *Cluster
	id env.NodeID
	kv *kv.Store

	mu    sync.Mutex //detlint:ignore rawgo -- Real-mode guard for the lock/call tables; leaf section, never held across a park
	locks map[core.DirID]*env.RWMutex
	calls map[uint64]*env.Future
	rpcs  uint64
	// inflight/served dedup client retransmissions, like the real systems'
	// RPC stacks (and SwitchFS's §5.4.1 cache): a duplicate of a request
	// still executing is dropped (the original's response answers it), and
	// a duplicate of an answered request replays the cached response.
	// Without this, a contended directory turns retransmission rounds into
	// extra serialized work: the queue (and the parked-process population)
	// grows without bound and the run crawls.
	inflight map[reqKey]bool
	served   map[reqKey]any
	servedQ  []reqKey
	// ops counts executed (non-duplicate) client requests, for the
	// per-server tallies figures carry (guarded by mu).
	ops uint64
}

// reqKey identifies a client request across retransmissions.
type reqKey struct {
	from env.NodeID
	rpc  uint64
}

// servedWindow bounds the served-request memory per server.
const servedWindow = 4096

// beginReq registers a request execution. It returns (nil, false) for a
// fresh request, (resp, true) for a duplicate of an answered one (the
// caller replays resp — this keeps clients alive under response loss),
// and (nil, true) for a duplicate still in flight (dropped).
func (s *bserver) beginReq(k reqKey) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if resp, ok := s.served[k]; ok {
		return resp, true
	}
	if s.inflight[k] {
		return nil, true
	}
	s.inflight[k] = true
	return nil, false
}

// endReq retires an execution and its response into the served window.
func (s *bserver) endReq(k reqKey, resp any) {
	s.mu.Lock()
	delete(s.inflight, k)
	s.served[k] = resp
	s.servedQ = append(s.servedQ, k)
	if len(s.servedQ) > servedWindow {
		delete(s.served, s.servedQ[0])
		s.servedQ = s.servedQ[1:]
	}
	s.mu.Unlock()
}

func (s *bserver) lockOf(id core.DirID) *env.RWMutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[id]
	if l == nil {
		l = &env.RWMutex{}
		s.locks[id] = l
	}
	return l
}

// call performs a retried server-to-server RPC.
func (s *bserver) call(p *env.Proc, to env.NodeID, build func(rpc uint64) any) *bsubResp {
	s.mu.Lock()
	s.rpcs++
	rpc := uint64(s.id)<<40 | s.rpcs
	fut := env.NewFuture()
	s.calls[rpc] = fut
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.calls, rpc)
		s.mu.Unlock()
	}()
	msg := build(rpc)
	for try := 0; try < 64; try++ {
		p.Send(to, msg)
		if v, ok := fut.WaitTimeout(p, s.c.Opts.RetryTimeout); ok {
			return v.(*bsubResp)
		}
	}
	return &bsubResp{RPC: rpc, Err: core.ErrnoUnavailable}
}

// handle dispatches baseline messages.
func (s *bserver) handle(p *env.Proc, from env.NodeID, msg any) {
	switch m := msg.(type) {
	case *breq:
		// Deduplicate before charging any CPU: a duplicate would otherwise
		// queue on the cores and the directory lock behind the original.
		k := reqKey{from: m.From, rpc: m.RPC}
		if cached, dup := s.beginReq(k); dup {
			if cached != nil {
				p.Send(m.From, cached)
			}
			return
		}
		s.mu.Lock()
		s.ops++
		s.mu.Unlock()
		resp := &bresp{RPC: m.RPC}
		s.handleReq(p, m, resp)
		s.endReq(k, resp)
	case *bsub:
		k := reqKey{from: m.From, rpc: m.RPC}
		if cached, dup := s.beginReq(k); dup {
			if cached != nil {
				p.Send(m.From, cached)
			}
			return
		}
		resp := &bsubResp{RPC: m.RPC}
		s.handleSub(p, m, resp)
		s.endReq(k, resp)
	case *bsubResp:
		s.mu.Lock()
		fut := s.calls[m.RPC]
		s.mu.Unlock()
		if fut != nil {
			fut.Complete(m)
		}
	}
}

// stack charges the per-request software cost; the modeled CephFS pays its
// heavy stack here (§7.2.1 observation 4).
func (s *bserver) stack(p *env.Proc) {
	c := &s.c.Opts.Costs
	p.Compute(c.Parse)
	if s.c.Opts.Mode == Ceph {
		p.Compute(c.HeavyStack)
	}
}

func (s *bserver) handleReq(p *env.Proc, m *breq, resp *bresp) {
	s.stack(p)
	c := &s.c.Opts.Costs
	fail := func(err core.Errno) {
		resp.Err = err
		p.Send(m.From, resp)
	}
	switch m.Op {
	case core.OpLookup:
		l := s.lockOf(m.Dir)
		l.RLock(p)
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
		l.RUnlock()
		if !ok || len(raw) < 1 {
			fail(core.ErrnoNotExist)
			return
		}
		if raw[0] != 2 {
			// Path component exists but is not a directory: ENOTDIR, as in
			// the real systems (and SwitchFS's lookup).
			fail(core.ErrnoNotDir)
			return
		}
		resp.Dir = core.DirIDFromBytes(raw[2:]) // skip marker + 'D'
		p.Send(m.From, resp)

	case core.OpStat, core.OpOpen, core.OpClose:
		l := s.lockOf(m.Dir)
		l.RLock(p)
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
		l.RUnlock()
		if !ok {
			fail(core.ErrnoNotExist)
			return
		}
		resp.Type = core.TypeRegular
		if len(raw) > 0 {
			resp.Type = core.FileType(raw[0])
		}
		p.Send(m.From, resp)

	case core.OpChmod:
		l := s.lockOf(m.Dir)
		l.Lock(p)
		p.Compute(c.KVGet + c.WALAppend + c.KVPut)
		raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
		if ok {
			s.kv.Put(fileKey(m.Dir, m.Name), raw)
		}
		l.Unlock()
		if !ok {
			fail(core.ErrnoNotExist)
			return
		}
		p.Send(m.From, resp)

	case core.OpStatDir, core.OpReadDir:
		l := s.lockOf(m.Dir)
		l.RLock(p)
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(dirKey(m.Dir))
		if ok && m.Op == core.OpReadDir {
			prefix := entKey(m.Dir, "")
			s.kv.Scan(prefix, func(k, v []byte) bool {
				e := core.DirEntry{Name: string(k[len(prefix):]), Type: core.TypeRegular}
				if len(v) > 0 {
					e.Type = core.FileType(v[0])
				}
				resp.Entries = append(resp.Entries, e)
				return true
			})
			p.Compute(env.Duration(len(resp.Entries)) * c.KVScanEntry)
		}
		l.RUnlock()
		if !ok {
			fail(core.ErrnoNotExist)
			return
		}
		rec := decodeDir(raw)
		resp.Size = rec.Size
		resp.Perm = rec.Perm
		p.Send(m.From, resp)

	case core.OpCreate, core.OpDelete:
		s.createDelete(p, m, resp)

	case core.OpMkdir:
		s.mkdir(p, m, resp)

	case core.OpRmdir:
		s.rmdir(p, m, resp)

	case core.OpRename:
		s.rename(p, m, resp)

	case core.OpLink:
		s.link(p, m, resp)

	default:
		fail(core.ErrnoInvalid)
	}
}

// createDelete executes the synchronous double-inode file operations. Under
// grouping the file inode, the dentry, and the parent attributes are all
// local (one server, one directory lock). Under separation the file inode is
// local but the parent update is a cross-server transaction — the extra
// round trip and serialization SwitchFS removes (§3.2).
func (s *bserver) createDelete(p *env.Proc, m *breq, resp *bresp) {
	c := &s.c.Opts.Costs
	put := m.Op == core.OpCreate
	parentSrv := s.c.ownerForDirID(m.Dir, m.DirPath)

	p.Compute(c.KVGet)
	raw, exists := s.kv.GetView(fileKey(m.Dir, m.Name))
	if put && exists {
		resp.Err = core.ErrnoExist
		p.Send(m.From, resp)
		return
	}
	if !put && !exists {
		resp.Err = core.ErrnoNotExist
		p.Send(m.From, resp)
		return
	}
	if !put && len(raw) > 0 && raw[0] == 2 {
		// Unlinking a directory is rmdir's job: EISDIR (deleting the pointer
		// record here would strand the directory inode and its entries).
		resp.Err = core.ErrnoIsDir
		p.Send(m.From, resp)
		return
	}

	if parentSrv == s {
		// Local transaction under the parent's exclusive lock.
		l := s.lockOf(m.Dir)
		l.Lock(p)
		p.Compute(c.WALAppend + c.TxnOverhead)
		s.applyParent(p, m.Dir, m.Name, put, core.TypeRegular)
		if put {
			p.Compute(c.KVPut)
			s.kv.Put(fileKey(m.Dir, m.Name), []byte{1})
		} else {
			p.Compute(c.KVDel)
			s.kv.Delete(fileKey(m.Dir, m.Name))
		}
		l.Unlock()
		p.Send(m.From, resp)
		return
	}

	// Cross-server: prepare locally, update the parent remotely, commit.
	p.Compute(c.WALAppend + c.TxnOverhead)
	sub := s.call(p, parentSrv.id, func(rpc uint64) any {
		return &bsub{RPC: rpc, From: s.id, Kind: subParentApply,
			Dir: m.Dir, Name: m.Name, Put: put, Type: core.TypeRegular}
	})
	if sub.Err != core.ErrnoOK {
		resp.Err = sub.Err
		p.Send(m.From, resp)
		return
	}
	p.Compute(c.TxnOverhead)
	if put {
		p.Compute(c.KVPut)
		s.kv.Put(fileKey(m.Dir, m.Name), []byte{1})
	} else {
		p.Compute(c.KVDel)
		s.kv.Delete(fileKey(m.Dir, m.Name))
	}
	p.Send(m.From, resp)
}

// mkdir updates the parent (locally — the request is routed to the parent's
// owner) and installs the new directory inode on its own server, which is a
// cross-server step in every baseline (Tab. 1).
func (s *bserver) mkdir(p *env.Proc, m *breq, resp *bresp) {
	c := &s.c.Opts.Costs
	p.Compute(c.KVGet)
	if s.kv.Has(fileKey(m.Dir, m.Name)) {
		resp.Err = core.ErrnoExist
		p.Send(m.From, resp)
		return
	}
	dirSrv := s.c.ownerForDirID(m.NewDir, m.DirPath+"/"+m.Name)
	l := s.lockOf(m.Dir)
	l.Lock(p)
	p.Compute(c.WALAppend + c.TxnOverhead)
	s.applyParent(p, m.Dir, m.Name, true, core.TypeDir)
	p.Compute(c.KVPut)
	s.kv.Put(fileKey(m.Dir, m.Name), append([]byte{2}, dirKey(m.NewDir)...))
	if dirSrv == s {
		p.Compute(c.KVPut)
		s.kv.Put(dirKey(m.NewDir), encodeDir(&dirRecord{Perm: core.DefaultDirPerm}))
	} else {
		sub := s.call(p, dirSrv.id, func(rpc uint64) any {
			return &bsub{RPC: rpc, From: s.id, Kind: subCreateDir, Dir: m.NewDir}
		})
		if sub.Err != core.ErrnoOK {
			l.Unlock()
			resp.Err = sub.Err
			p.Send(m.From, resp)
			return
		}
	}
	l.Unlock()
	resp.Dir = m.NewDir
	p.Send(m.From, resp)
}

// rmdir validates emptiness at the directory's server and removes it, then
// updates the parent.
func (s *bserver) rmdir(p *env.Proc, m *breq, resp *bresp) {
	c := &s.c.Opts.Costs
	if s.c.Opts.Mode == IndexFS {
		// The paper notes IndexFS's rmdir is incomplete; results omit it.
		resp.Err = core.ErrnoInvalid
		p.Send(m.From, resp)
		return
	}
	p.Compute(c.KVGet)
	raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
	if !ok || len(raw) < 1 {
		resp.Err = core.ErrnoNotExist
		p.Send(m.From, resp)
		return
	}
	if raw[0] != 2 {
		resp.Err = core.ErrnoNotDir
		p.Send(m.From, resp)
		return
	}
	target := core.DirIDFromBytes(raw[2:])
	dirSrv := s.c.ownerForDirID(target, m.DirPath+"/"+m.Name)
	l := s.lockOf(m.Dir)
	l.Lock(p)
	if dirSrv == s {
		if s.deleteDirIfEmpty(p, target) != core.ErrnoOK {
			l.Unlock()
			resp.Err = core.ErrnoNotEmpty
			p.Send(m.From, resp)
			return
		}
	} else {
		sub := s.call(p, dirSrv.id, func(rpc uint64) any {
			return &bsub{RPC: rpc, From: s.id, Kind: subDeleteDirIfEmpty, Dir: target}
		})
		if sub.Err != core.ErrnoOK {
			l.Unlock()
			resp.Err = sub.Err
			p.Send(m.From, resp)
			return
		}
	}
	p.Compute(c.WALAppend + c.TxnOverhead + c.KVDel)
	s.kv.Delete(fileKey(m.Dir, m.Name))
	s.applyParent(p, m.Dir, m.Name, false, core.TypeDir)
	l.Unlock()
	p.Send(m.From, resp)
}

// joinFull assembles a full path from a parent directory path and a leaf
// name (dirPath is "/" for root children).
func joinFull(dirPath, name string) string {
	if dirPath == "/" || dirPath == "" {
		return "/" + name
	}
	return dirPath + "/" + name
}

// dstExists checks the destination record of a two-path op at its server.
func (s *bserver) dstExists(p *env.Proc, m *breq) (bool, core.Errno) {
	dstSrv := s.c.fileServerForPath(m.Dir2, m.Name2, m.Dir2Path)
	if dstSrv == s {
		p.Compute(s.c.Opts.Costs.KVGet)
		return s.kv.Has(fileKey(m.Dir2, m.Name2)), core.ErrnoOK
	}
	sub := s.call(p, dstSrv.id, func(rpc uint64) any {
		return &bsub{RPC: rpc, From: s.id, Kind: subGetFile, Dir: m.Dir2, Name: m.Name2}
	})
	switch sub.Err {
	case core.ErrnoOK:
		return true, core.ErrnoOK
	case core.ErrnoNotExist:
		return false, core.ErrnoOK
	default:
		return false, sub.Err
	}
}

// putDst installs a record (preserving its marker byte and any directory
// pointer) at the destination's server.
func (s *bserver) putDst(p *env.Proc, m *breq, raw []byte) {
	c := &s.c.Opts.Costs
	dstSrv := s.c.fileServerForPath(m.Dir2, m.Name2, m.Dir2Path)
	if dstSrv == s {
		p.Compute(c.WALAppend + c.KVPut)
		s.kv.Put(fileKey(m.Dir2, m.Name2), append([]byte(nil), raw...))
		return
	}
	s.call(p, dstSrv.id, func(rpc uint64) any {
		return &bsub{RPC: rpc, From: s.id, Kind: subPutFile,
			Dir: m.Dir2, Name: m.Name2, Raw: append([]byte(nil), raw...)}
	})
}

// applyParentAt routes a dentry insert/remove to the named directory's owner.
func (s *bserver) applyParentAt(p *env.Proc, dir core.DirID, dirPath, name string,
	put bool, t core.FileType) {

	c := &s.c.Opts.Costs
	owner := s.c.ownerForDirID(dir, dirPath)
	if owner == s {
		l := s.lockOf(dir)
		l.Lock(p)
		p.Compute(c.WALAppend + c.TxnOverhead)
		s.applyParent(p, dir, name, put, t)
		l.Unlock()
		return
	}
	s.call(p, owner.id, func(rpc uint64) any {
		return &bsub{RPC: rpc, From: s.id, Kind: subParentApply,
			Dir: dir, Name: name, Put: put, Type: t}
	})
}

// rename moves a file or directory: synchronous multi-inode update with the
// POSIX-shaped checks SwitchFS applies — missing source is ENOENT, an
// existing destination is EEXIST, a directory renamed under its own subtree
// is ELOOP, and renaming an object to itself is a no-op. The moved record
// keeps its marker byte, so a renamed directory's pointer (and therefore its
// id and children) survives the move.
func (s *bserver) rename(p *env.Proc, m *breq, resp *bresp) {
	c := &s.c.Opts.Costs
	p.Compute(c.KVGet)
	raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
	if !ok || len(raw) < 1 {
		resp.Err = core.ErrnoNotExist
		p.Send(m.From, resp)
		return
	}
	if m.Dir == m.Dir2 && m.Name == m.Name2 {
		p.Send(m.From, resp) // rename to itself: no-op success
		return
	}
	typ := core.FileType(raw[0])
	srcFull := joinFull(m.DirPath, m.Name)
	dstFull := joinFull(m.Dir2Path, m.Name2)
	if typ == core.TypeDir &&
		(dstFull == srcFull || len(dstFull) > len(srcFull)+1 &&
			dstFull[:len(srcFull)] == srcFull && dstFull[len(srcFull)] == '/') {
		resp.Err = core.ErrnoLoop
		p.Send(m.From, resp)
		return
	}
	exists, errno := s.dstExists(p, m)
	if errno != core.ErrnoOK {
		resp.Err = errno
		p.Send(m.From, resp)
		return
	}
	if exists {
		resp.Err = core.ErrnoExist
		p.Send(m.From, resp)
		return
	}

	// Remove source (local: the request is routed to the source's server).
	moved := append([]byte(nil), raw...)
	l := s.lockOf(m.Dir)
	l.Lock(p)
	p.Compute(c.WALAppend + 2*c.TxnOverhead + c.KVDel)
	s.kv.Delete(fileKey(m.Dir, m.Name))
	l.Unlock()
	s.applyParentAt(p, m.Dir, m.DirPath, m.Name, false, typ)
	// Install destination with the preserved record.
	s.putDst(p, m, moved)
	s.applyParentAt(p, m.Dir2, m.Dir2Path, m.Name2, true, typ)
	p.Send(m.From, resp)
}

// link creates a hard link: the baselines store no shared attribute object,
// so observably the link is a second reference record with the same type.
func (s *bserver) link(p *env.Proc, m *breq, resp *bresp) {
	c := &s.c.Opts.Costs
	p.Compute(c.KVGet)
	raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
	if !ok || len(raw) < 1 {
		resp.Err = core.ErrnoNotExist
		p.Send(m.From, resp)
		return
	}
	if raw[0] == 2 {
		resp.Err = core.ErrnoIsDir
		p.Send(m.From, resp)
		return
	}
	exists, errno := s.dstExists(p, m)
	if errno != core.ErrnoOK {
		resp.Err = errno
		p.Send(m.From, resp)
		return
	}
	if exists {
		resp.Err = core.ErrnoExist
		p.Send(m.From, resp)
		return
	}
	s.putDst(p, m, raw)
	s.applyParentAt(p, m.Dir2, m.Dir2Path, m.Name2, true, core.FileType(raw[0]))
	p.Send(m.From, resp)
}

// applyParent performs the dentry + attribute update of a directory on this
// server. Callers hold the directory's exclusive lock.
func (s *bserver) applyParent(p *env.Proc, dir core.DirID, name string, put bool, t core.FileType) {
	c := &s.c.Opts.Costs
	// The serialized hot-directory transaction: lock-manager bookkeeping,
	// transaction log, and index maintenance on top of the attribute
	// read-modify-write (calibrated to Fig. 2b).
	p.Compute(c.DirTxn + c.KVGet + c.KVPut)
	raw, _ := s.kv.GetView(dirKey(dir))
	r := decodeDir(raw)
	if put {
		r.Size++
	} else if r.Size > 0 {
		r.Size--
	}
	r.Mtime = p.Now()
	s.kv.Put(dirKey(dir), encodeDir(r))
	p.Compute(c.KVPut)
	if put {
		s.kv.Put(entKey(dir, name), []byte{byte(t)})
	} else {
		s.kv.Delete(entKey(dir, name))
	}
}

func (s *bserver) deleteDirIfEmpty(p *env.Proc, dir core.DirID) core.Errno {
	c := &s.c.Opts.Costs
	p.Compute(c.KVGet)
	raw, ok := s.kv.GetView(dirKey(dir))
	if !ok {
		return core.ErrnoNotExist
	}
	if decodeDir(raw).Size != 0 {
		return core.ErrnoNotEmpty
	}
	p.Compute(c.WALAppend + c.KVDel)
	s.kv.Delete(dirKey(dir))
	return core.ErrnoOK
}

// handleSub serves server-to-server sub-operations.
func (s *bserver) handleSub(p *env.Proc, m *bsub, resp *bsubResp) {
	s.stack(p)
	c := &s.c.Opts.Costs
	switch m.Kind {
	case subParentApply:
		l := s.lockOf(m.Dir)
		l.Lock(p)
		p.Compute(c.TxnOverhead + c.WALAppend)
		s.applyParent(p, m.Dir, m.Name, m.Put, m.Type)
		l.Unlock()
	case subCreateDir:
		p.Compute(c.WALAppend + c.KVPut)
		s.kv.Put(dirKey(m.Dir), encodeDir(&dirRecord{Perm: core.DefaultDirPerm}))
	case subDeleteDirIfEmpty:
		resp.Err = s.deleteDirIfEmpty(p, m.Dir)
	case subPutFile:
		p.Compute(c.WALAppend + c.KVPut)
		raw := m.Raw
		if len(raw) == 0 {
			raw = []byte{1}
		}
		s.kv.Put(fileKey(m.Dir, m.Name), raw)
	case subDelFile:
		p.Compute(c.WALAppend + c.KVDel)
		s.kv.Delete(fileKey(m.Dir, m.Name))
	case subGetFile:
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(fileKey(m.Dir, m.Name))
		if !ok {
			resp.Err = core.ErrnoNotExist
		} else {
			// The view crosses the wire inside a message: copy it out.
			resp.Raw = append([]byte(nil), raw...)
		}
	}
	p.Send(m.From, resp)
}
