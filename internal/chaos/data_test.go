package chaos

import (
	"reflect"
	"strings"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// dataGeometry is the data-plane deployment the data plans run against.
func dataGeometry() Geometry {
	return Geometry{Servers: 4, Clients: 2, Switches: 1, DataNodes: 4, DataReplication: 2}
}

func deployData(t *testing.T, seed int64) (*env.Sim, *cluster.Cluster) {
	t.Helper()
	g := dataGeometry()
	sim := env.NewSim(seed)
	t.Cleanup(sim.Shutdown)
	c := cluster.New(sim, cluster.Options{
		Servers: g.Servers, Clients: g.Clients, Switches: g.Switches,
		DataNodes: g.DataNodes, DataReplication: g.DataReplication,
		SwitchIndexBits: 8, Costs: env.DefaultCosts(),
	})
	return sim, c
}

// TestDataPlansRunClean: every data-fault plan (and every metadata plan run
// against a cluster WITH a data plane) completes with zero violations — in
// particular, no acknowledged content write is lost under ≤ r−1 data-node
// failures.
func TestDataPlansRunClean(t *testing.T) {
	for _, plan := range BuiltinPlans(dataGeometry()) {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			sim, c := deployData(t, 42)
			rep := Run(sim, c, plan, Options{Workers: 6, Seed: 3})
			for _, v := range rep.Checker.Violations() {
				t.Errorf("violation: %s", v)
			}
			for _, iss := range rep.Issues {
				t.Errorf("issue: %s", iss)
			}
			if len(rep.Checker.Chunks()) == 0 {
				t.Error("no data chunks exercised despite a deployed data plane")
			}
		})
	}
}

// TestDataPlanDeterministic: same plan, same seeds, byte-identical rows —
// the property chaos-smoke gates with data-fault plans included.
func TestDataPlanDeterministic(t *testing.T) {
	run := func() *Report {
		sim, c := deployData(t, 7)
		plan, ok := BuiltinPlan(dataGeometry(), "data-crash")
		if !ok {
			t.Fatal("data-crash plan missing")
		}
		return Run(sim, c, plan, Options{Workers: 6, Seed: 5})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("timelines differ:\n%+v\n%+v", a.Rows, b.Rows)
	}
	if a.Checker.Ops != b.Checker.Ops || a.Checker.Ambiguous != b.Checker.Ambiguous {
		t.Fatalf("oracle accounting differs: %s vs %s", a.Checker.Summary(), b.Checker.Summary())
	}
}

// TestCheckerCatchesLostDataWrite proves the data oracle can fail: after a
// clean run, an acknowledged chunk is destroyed on every replica behind the
// protocol's back and the audit must flag the lost acknowledged content.
func TestCheckerCatchesLostDataWrite(t *testing.T) {
	sim, c := deployData(t, 13)
	k := NewChecker()
	chunk := wire.ChunkKey{File: 0xBAD, Stripe: 0}
	node := c.DataNodes[0]
	var acked uint64
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		v, err := cl.WriteChunk(p, node, chunk, 128)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		acked = v
		k.ApplyDataWrite(chunk, v, err)
	})
	// Simulated storage bug: the chunk's whole replica set (primary slot 0,
	// backup slot 1) fail-stops at once, so both volatile copies are gone
	// and the recoveries rebuild from peers that never held it.
	c.CrashDataNode(0)
	c.CrashDataNode(1)
	fut0 := c.RecoverDataNode(0)
	sim.Run()
	fut1 := c.RecoverDataNode(1)
	sim.Run()
	if _, ok := fut0.Peek(); !ok {
		t.Fatal("recovery 0 incomplete")
	}
	if _, ok := fut1.Peek(); !ok {
		t.Fatal("recovery 1 incomplete")
	}
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		ver, _, err := cl.ReadChunk(p, node, chunk)
		if ver == acked {
			t.Fatal("chunk survived a full replica-set wipe; test premise broken")
		}
		k.ApplyDataRead(chunk, ver, err)
	})
	found := false
	for _, v := range k.Violations() {
		if strings.Contains(v, "lost acked content write") {
			found = true
		}
	}
	if !found {
		t.Errorf("oracle missed the lost acknowledged content write; violations: %v", k.Violations())
	}
}

// TestCheckerDataUnitTransitions drives the chunk model directly.
func TestCheckerDataUnitTransitions(t *testing.T) {
	k := NewChecker()
	ch := wire.ChunkKey{File: 1, Stripe: 2}

	k.ApplyDataWrite(ch, 1, nil)
	k.ApplyDataRead(ch, 1, nil)
	if n := len(k.Violations()); n != 0 {
		t.Fatalf("clean history flagged: %v", k.Violations())
	}
	// Version regression on a read = lost acked write.
	k.ApplyDataRead(ch, 0, nil)
	if n := len(k.Violations()); n != 1 {
		t.Fatalf("regressed read not flagged (violations %v)", k.Violations())
	}
	// Version above acked = phantom (re-executed retransmission).
	k.ApplyDataRead(ch, 5, nil)
	if n := len(k.Violations()); n != 2 {
		t.Fatalf("phantom read not flagged (violations %v)", k.Violations())
	}
	// A timed-out write taints: neither lower nor higher reads flag.
	k.ApplyDataWrite(ch, 0, errTimeout())
	k.ApplyDataRead(ch, 0, nil)
	k.ApplyDataRead(ch, 9, nil)
	if n := len(k.Violations()); n != 2 {
		t.Fatalf("tainted chunk still flagged: %v", k.Violations())
	}
	// Acked writes must keep growing on an untainted chunk.
	ch2 := wire.ChunkKey{File: 2}
	k.ApplyDataWrite(ch2, 3, nil)
	k.ApplyDataWrite(ch2, 3, nil)
	if n := len(k.Violations()); n != 3 {
		t.Fatalf("non-monotonic ack not flagged: %v", k.Violations())
	}
	// TaintAllData covers existing and future chunks.
	k2 := NewChecker()
	k2.ApplyDataWrite(wire.ChunkKey{File: 7}, 4, nil)
	k2.TaintAllData()
	k2.ApplyDataRead(wire.ChunkKey{File: 7}, 0, nil)
	k2.ApplyDataRead(wire.ChunkKey{File: 8}, 11, nil)
	if n := len(k2.Violations()); n != 0 {
		t.Fatalf("wiped oracle still flagged: %v", k2.Violations())
	}
}

// TestRandomPlanDataFaultsSerialized: generated data-node crash windows
// never overlap, keeping concurrent data failures at r−1 so acked content
// must always survive.
func TestRandomPlanDataFaultsSerialized(t *testing.T) {
	g := dataGeometry()
	sawData := false
	for seed := int64(1); seed <= 64; seed++ {
		p := RandomPlan(seed, g, 8*ms)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		type win struct{ from, to env.Duration }
		var wins []win
		open := map[int]env.Duration{}
		for _, ev := range p.Sorted() {
			switch ev.Kind {
			case KindCrashDataNode:
				open[ev.Data] = ev.At
			case KindRecoverDataNode:
				wins = append(wins, win{open[ev.Data], ev.At})
				delete(open, ev.Data)
			}
		}
		if len(wins) > 0 {
			sawData = true
		}
		for i := 0; i < len(wins); i++ {
			for j := i + 1; j < len(wins); j++ {
				a, b := wins[i], wins[j]
				if a.from < b.to && b.from < a.to {
					t.Errorf("seed %d: overlapping data-crash windows %+v %+v", seed, a, b)
				}
			}
		}
	}
	if !sawData {
		t.Error("64 seeds generated no data faults at all")
	}
}

func errTimeout() error { return core.ErrTimeout }
