package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
)

// testGeometry is the small deployment every plan runs against here.
func testGeometry() Geometry { return Geometry{Servers: 4, Clients: 2, Switches: 1} }

func deploy(t *testing.T, seed int64) (*env.Sim, *cluster.Cluster) {
	t.Helper()
	g := testGeometry()
	sim := env.NewSim(seed)
	t.Cleanup(sim.Shutdown)
	c := cluster.New(sim, cluster.Options{
		Servers: g.Servers, Clients: g.Clients, Switches: g.Switches,
		SwitchIndexBits: 8, Costs: env.DefaultCosts(),
	})
	return sim, c
}

func TestBuiltinPlansValidate(t *testing.T) {
	for _, p := range BuiltinPlans(DefaultGeometry()) {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %s: %v", p.Name, err)
		}
		if p.Timeline() == "" {
			t.Errorf("plan %s renders an empty timeline", p.Name)
		}
	}
	if _, ok := BuiltinPlan(DefaultGeometry(), "server-crash"); !ok {
		t.Error("BuiltinPlan lookup failed")
	}
}

func TestPlanValidateRejectsBroken(t *testing.T) {
	cases := []Plan{
		{Name: "no-horizon"},
		{Name: "unhealed", Horizon: 8 * ms, Events: []Event{
			Partition(1*ms, "p", NodeSel{Servers: []int{0}}, NodeSel{Servers: []int{1}}, false),
		}},
		{Name: "unrecovered", Horizon: 8 * ms, Events: []Event{CrashServer(1*ms, 0)}},
		{Name: "late", Horizon: 8 * ms, Events: []Event{CrashServer(9*ms, 0), RecoverServer(9500*env.Microsecond, 0)}},
		{Name: "unknown-heal", Horizon: 8 * ms, Events: []Event{Heal(1*ms, "nope")}},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %s validated but is broken", p.Name)
		}
	}
}

// TestBuiltinPlansRunClean is the core acceptance check: every curated plan
// runs to completion with zero checker violations and zero harness issues.
func TestBuiltinPlansRunClean(t *testing.T) {
	for _, plan := range BuiltinPlans(testGeometry()) {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			sim, c := deploy(t, 42)
			rep := Run(sim, c, plan, Options{Workers: 6, Seed: 3})
			for _, v := range rep.Checker.Violations() {
				t.Errorf("violation: %s", v)
			}
			for _, iss := range rep.Issues {
				t.Errorf("issue: %s", iss)
			}
			total := 0
			for _, row := range rep.Rows {
				total += row.Ok + row.Errs
			}
			if total == 0 {
				t.Error("harness completed no operations")
			}
			t.Logf("%s: %d ops, availability %.1f%%, %s",
				plan.Name, total, rep.Availability(), rep.Checker.Summary())
		})
	}
}

// TestRunDeterministic runs the same plan on the same seeds twice and
// requires byte-identical timelines (rows and counters) — the property the
// chaos-smoke CI job gates on.
func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		sim, c := deploy(t, 7)
		plan, _ := BuiltinPlan(testGeometry(), "server-crash")
		return Run(sim, c, plan, Options{Workers: 6, Seed: 5})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("timelines differ:\n%+v\n%+v", a.Rows, b.Rows)
	}
	if !reflect.DeepEqual(a.Checker.Violations(), b.Checker.Violations()) {
		t.Fatal("violation sets differ across identical runs")
	}
	if a.Checker.Ops != b.Checker.Ops || a.Checker.Ambiguous != b.Checker.Ambiguous {
		t.Fatalf("oracle accounting differs: %s vs %s", a.Checker.Summary(), b.Checker.Summary())
	}
}

// TestRandomPlanDeterministicAndClean checks the seeded generator: the same
// seed yields the same plan, the plan validates, and running it produces no
// violations.
func TestRandomPlanDeterministicAndClean(t *testing.T) {
	g := testGeometry()
	for seed := int64(1); seed <= 4; seed++ {
		p1 := RandomPlan(seed, g, 8*ms)
		p2 := RandomPlan(seed, g, 8*ms)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		if err := p1.Validate(); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
	}
	sim, c := deploy(t, 11)
	rep := Run(sim, c, RandomPlan(2, g, 8*ms), Options{Workers: 4, Seed: 9})
	for _, v := range rep.Checker.Violations() {
		t.Errorf("violation: %s", v)
	}
	for _, iss := range rep.Issues {
		t.Errorf("issue: %s", iss)
	}
}

// TestCheckerCatchesLostAck proves the oracle can fail: after a clean run,
// an acknowledged write is destroyed behind the protocol's back (the
// simulated storage bug of a lost durable update) and the audit must flag
// it as a lost acknowledged write.
func TestCheckerCatchesLostAck(t *testing.T) {
	_, c := deploy(t, 13)
	k := NewChecker()
	k.RegisterDir("/victim")
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		if err := cl.Mkdir(p, "/victim", 0); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("f%d", i)
			err := cl.Create(p, "/victim/"+name, 0)
			k.Apply(core.OpCreate, "/victim", name, false, err)
		}
	})
	if len(k.Violations()) != 0 {
		t.Fatalf("pre-corruption violations: %v", k.Violations())
	}

	// Destroy f3's inode record on whichever server stores it.
	removed := 0
	for _, srv := range c.Servers {
		var keys [][]byte
		srv.KV().Scan(nil, func(kb, v []byte) bool {
			if key, err := core.DecodeKey(kb); err == nil && key.Name == "f3" {
				keys = append(keys, append([]byte(nil), kb...))
			}
			return true
		})
		for _, kb := range keys {
			srv.KV().Delete(kb)
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("found no durable record to destroy")
	}

	// The audit replays reads through the oracle: the lost write must flag.
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, name := range k.Names("/victim") {
			_, err := cl.Stat(p, "/victim/"+name)
			k.Apply(core.OpStat, "/victim", name, false, err)
		}
	})
	found := false
	for _, v := range k.Violations() {
		if strings.Contains(v, "lost acknowledged write") {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the injected lost ack; violations: %v", k.Violations())
	}
}

// TestCheckerUnitTransitions exercises the oracle's three-valued semantics
// without a cluster.
func TestCheckerUnitTransitions(t *testing.T) {
	k := NewChecker()
	k.RegisterDir("/d")

	// Acked create → definitely present; stat ENOENT must flag.
	k.Apply(core.OpCreate, "/d", "a", false, nil)
	k.Apply(core.OpStat, "/d", "a", false, core.ErrNotExist)
	if n := len(k.Violations()); n != 1 {
		t.Fatalf("lost-ack stat produced %d violations, want 1", n)
	}
	if !strings.Contains(k.Violations()[0], "lost acknowledged write") {
		t.Fatalf("unexpected violation: %s", k.Violations()[0])
	}

	// Timed-out create → unknown: neither stat outcome flags.
	k2 := NewChecker()
	k2.RegisterDir("/d")
	k2.Apply(core.OpCreate, "/d", "b", true, core.ErrTimeout)
	k2.Apply(core.OpStat, "/d", "b", false, nil)
	k2.Apply(core.OpStat, "/d", "b", false, core.ErrNotExist)
	if n := len(k2.Violations()); n != 0 {
		t.Fatalf("ambiguous entry produced %d violations: %v", n, k2.Violations())
	}
	if k2.Ambiguous != 1 {
		t.Fatalf("Ambiguous=%d, want 1", k2.Ambiguous)
	}

	// statdir bounds: one definite, one unknown → size must be 1 or 2.
	k3 := NewChecker()
	k3.RegisterDir("/d")
	k3.Apply(core.OpCreate, "/d", "x", false, nil)
	k3.Apply(core.OpCreate, "/d", "y", true, core.ErrTimeout)
	k3.ApplyStatDir("/d", 1, nil)
	k3.ApplyStatDir("/d", 2, nil)
	if n := len(k3.Violations()); n != 0 {
		t.Fatalf("in-bounds statdir flagged: %v", k3.Violations())
	}
	k3.ApplyStatDir("/d", 0, nil) // below the definite floor
	k3.ApplyStatDir("/d", 3, nil) // above the possible ceiling
	if n := len(k3.Violations()); n != 2 {
		t.Fatalf("out-of-bounds statdir produced %d violations, want 2", n)
	}

	// Retried create surfacing its own effect: EEXIST over absent is
	// accepted (and pins the entry present) only when resent.
	k4 := NewChecker()
	k4.RegisterDir("/d")
	k4.Apply(core.OpCreate, "/d", "r", true, core.ErrExist)
	if n := len(k4.Violations()); n != 0 {
		t.Fatalf("resent EEXIST flagged: %v", k4.Violations())
	}
	k4.Apply(core.OpStat, "/d", "r", false, core.ErrNotExist) // now it IS lost
	if n := len(k4.Violations()); n != 1 {
		t.Fatalf("lost resent-create produced %d violations, want 1", n)
	}
	k5 := NewChecker()
	k5.RegisterDir("/d")
	k5.Apply(core.OpCreate, "/d", "s", false, core.ErrExist) // not resent: impossible
	if n := len(k5.Violations()); n != 1 {
		t.Fatalf("impossible EEXIST produced %d violations, want 1", n)
	}

	// readdir: missing definite entry and listed definite-absent entry.
	k6 := NewChecker()
	k6.RegisterDir("/d")
	k6.Apply(core.OpCreate, "/d", "p", false, nil)
	k6.Apply(core.OpDelete, "/d", "q", false, core.ErrNotExist)
	k6.ApplyReadDir("/d", []string{"p"}, nil)
	if n := len(k6.Violations()); n != 0 {
		t.Fatalf("consistent readdir flagged: %v", k6.Violations())
	}
	k6.ApplyReadDir("/d", []string{"q"}, nil)
	if n := len(k6.Violations()); n != 2 {
		t.Fatalf("inconsistent readdir produced %d violations, want 2: %v", n, k6.Violations())
	}
}

// TestInjectorHealRestoresFabric applies a partition plan and verifies the
// injector's bookkeeping installs and removes exactly the faulted edges.
func TestInjectorHealRestoresFabric(t *testing.T) {
	sim, c := deploy(t, 21)
	plan := Plan{
		Name: "p", Desc: "partition then heal", Horizon: 4 * ms,
		Events: []Event{
			Partition(1*ms, "cut", NodeSel{Servers: []int{0}}, NodeSel{Servers: []int{1}}, false),
			Heal(2*ms, "cut"),
		},
	}
	Apply(sim, c, plan)
	sim.RunFor(1500 * env.Microsecond)
	if n := sim.Net().LinkRules(); n != 2 {
		t.Fatalf("after partition: %d rules installed, want 2", n)
	}
	if r := sim.Net().Link(c.ServerID(0), c.ServerID(1)); !r.Cut {
		t.Fatal("forward edge not cut")
	}
	sim.RunFor(1 * ms)
	if n := sim.Net().LinkRules(); n != 0 {
		t.Fatalf("after heal: %d rules remain", n)
	}
}
