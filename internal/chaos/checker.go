package chaos

import (
	"errors"
	"fmt"
	"sort"

	"switchfs/internal/core"
	"switchfs/internal/wire"
)

// Checker is the model-based invariant oracle. The harness feeds it every
// completed client operation (in completion order — workers own disjoint
// directories, so each directory's history is sequential) and it replays
// them against an in-memory namespace model, flagging outcomes no
// linearization of the history can produce.
//
// UDP at-least-once delivery makes timed-out operations genuinely ambiguous:
// the request (or a retransmission still in flight) may be executed long
// after the client gave up. The model is therefore three-valued — an entry
// is Present, Absent, or Unknown — and a name any mutation ever timed out on
// is "tainted": late ghost executions may flip it at any point, so the
// checker stops pinning its state and only range-checks reads against it.
// What must NEVER happen, taint or no taint:
//
//   - a lost acknowledged write: an entry whose create was acked (and that
//     was never deleted or tainted) failing a read;
//   - a resurrection: an entry whose delete was acked (and that was never
//     recreated or tainted) appearing in a read;
//   - an impossible error: create over definitely-absent reporting EEXIST,
//     delete of definitely-present reporting ENOENT, and the like;
//   - a directory count outside [definitely-present, present+unknown].
type Checker struct {
	dirs map[string]*dirModel
	// chunks is the data-plane oracle: per content chunk, the highest
	// acknowledged write version. An acked chunk write must survive any
	// ≤ r−1 data-node failures — a read observing a lower version (or a
	// never-written chunk) is a lost acknowledged content write, exactly
	// as three-valued as the namespace model: a timed-out write taints its
	// chunk (the ghost may land later), and a wipe (≥ r concurrent
	// data-node failures) taints every chunk.
	chunks    map[wire.ChunkKey]*chunkModel
	dataWiped bool
	// violations accumulate in detection order (deterministic under Sim).
	violations []string
	// Ops counts operations replayed into the model.
	Ops int
	// Ambiguous counts operations that timed out (outcome unknown).
	Ambiguous int
}

// chunkModel is the oracle state of one content chunk.
type chunkModel struct {
	// acked is the highest version any acknowledged write returned.
	acked uint64
	// tainted marks a chunk a write ever timed out on: a late ghost
	// execution may bump its version at any point, so only existence — not
	// the exact version — remains checkable.
	tainted bool
}

type entryState uint8

const (
	stAbsent entryState = iota
	stPresent
	stUnknown
)

type entry struct {
	st      entryState
	tainted bool
}

type dirModel struct {
	entries map[string]*entry
}

// NewChecker builds an empty oracle.
func NewChecker() *Checker {
	return &Checker{
		dirs:   make(map[string]*dirModel),
		chunks: make(map[wire.ChunkKey]*chunkModel),
	}
}

// RegisterDir declares a harness-owned directory (created before the plan
// starts, never removed).
func (k *Checker) RegisterDir(dir string) {
	if k.dirs[dir] == nil {
		k.dirs[dir] = &dirModel{entries: make(map[string]*entry)}
	}
}

// Dirs returns the registered directories, sorted.
func (k *Checker) Dirs() []string {
	out := make([]string, 0, len(k.dirs))
	for d := range k.dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Names returns the entry names ever touched under dir, sorted.
func (k *Checker) Names(dir string) []string {
	dm := k.dirs[dir]
	if dm == nil {
		return nil
	}
	out := make([]string, 0, len(dm.entries))
	for n := range dm.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (k *Checker) violatef(format string, args ...any) {
	k.violations = append(k.violations, fmt.Sprintf(format, args...))
}

// Violations returns every invariant violation detected so far.
func (k *Checker) Violations() []string { return k.violations }

func (k *Checker) entryOf(dir, name string) *entry {
	dm := k.dirs[dir]
	if dm == nil {
		k.RegisterDir(dir)
		dm = k.dirs[dir]
	}
	e := dm.entries[name]
	if e == nil {
		e = &entry{st: stAbsent}
		dm.entries[name] = e
	}
	return e
}

// Apply replays one completed namespace operation on dir/name. err is the
// client-visible result (nil for success); resent reports whether the
// client retransmitted the request. A retried mutation is at-least-once: a
// server crash between tries discards the RPC dedup cache, so the retry
// re-executes and can observe the operation's own earlier effect — EEXIST
// from a create that did apply, ENOENT from a delete that did. Either
// reading leaves the entry in the same final state, so those outcomes
// resolve definitely rather than flagging.
func (k *Checker) Apply(op core.Op, dir, name string, resent bool, err error) {
	k.Ops++
	e := k.entryOf(dir, name)
	timeout := errors.Is(err, core.ErrTimeout)
	if timeout {
		k.Ambiguous++
	}
	switch op {
	case core.OpCreate, core.OpMkdir:
		switch {
		case err == nil:
			if e.st == stPresent && !e.tainted {
				k.violatef("%s %s/%s succeeded over a definitely-present entry", op, dir, name)
			}
			if e.tainted {
				e.st = stUnknown // a late ghost delete may still land
			} else {
				e.st = stPresent
			}
		case errors.Is(err, core.ErrExist):
			if e.st == stAbsent && !e.tainted && !resent {
				k.violatef("%s %s/%s reported EEXIST over a definitely-absent entry", op, dir, name)
			}
			if !e.tainted {
				// Genuine EEXIST or the retried create's own effect: either
				// way the entry is now definitely present.
				e.st = stPresent
			}
		case timeout:
			if e.st != stPresent || e.tainted {
				// The create may be executed late; the entry's fate is no
				// longer decidable from this history.
				e.st = stUnknown
				e.tainted = true
			}
			// A definitely-present entry is immune: the late create can only
			// fail with EEXIST.
		default:
			k.violatef("%s %s/%s: unexpected error %v", op, dir, name, err)
		}
	case core.OpDelete, core.OpRmdir:
		switch {
		case err == nil:
			if e.st == stAbsent && !e.tainted {
				k.violatef("%s %s/%s succeeded on a definitely-absent entry", op, dir, name)
			}
			if e.tainted {
				e.st = stUnknown // a late ghost create may resurrect it
			} else {
				e.st = stAbsent
			}
		case errors.Is(err, core.ErrNotExist):
			if e.st == stPresent && !e.tainted && !resent {
				k.violatef("lost acknowledged write: %s %s/%s reported ENOENT on a definitely-present entry",
					op, dir, name)
			}
			if !e.tainted {
				// Genuine ENOENT or the retried delete's own effect: either
				// way the entry is now definitely absent.
				e.st = stAbsent
			}
		case timeout:
			if e.st != stAbsent || e.tainted {
				e.st = stUnknown
				e.tainted = true
			}
			// Deleting a definitely-absent entry can only fail; no taint.
		default:
			k.violatef("%s %s/%s: unexpected error %v", op, dir, name, err)
		}
	case core.OpStat, core.OpOpen:
		switch {
		case err == nil:
			if e.st == stAbsent && !e.tainted {
				k.violatef("resurrection: stat %s/%s succeeded on a definitely-absent entry", dir, name)
			}
		case errors.Is(err, core.ErrNotExist):
			if e.st == stPresent && !e.tainted {
				k.violatef("lost acknowledged write: stat %s/%s reported ENOENT on a definitely-present entry",
					dir, name)
			}
		case timeout:
			// No information.
		default:
			k.violatef("stat %s/%s: unexpected error %v", dir, name, err)
		}
	default:
		k.violatef("checker: unsupported op %v on %s/%s", op, dir, name)
	}
}

// bounds returns the definite and possible live-entry counts of dir.
func (k *Checker) bounds(dir string) (definite, possible int) {
	dm := k.dirs[dir]
	if dm == nil {
		return 0, 0
	}
	for _, e := range dm.entries {
		switch e.st {
		case stPresent:
			definite++
			possible++
		case stUnknown:
			possible++
		}
	}
	return definite, possible
}

// ApplyStatDir checks a directory-size observation against the model.
func (k *Checker) ApplyStatDir(dir string, size int64, err error) {
	k.Ops++
	switch {
	case err == nil:
		lo, hi := k.bounds(dir)
		if size < int64(lo) || size > int64(hi) {
			k.violatef("statdir %s: size %d outside model bounds [%d, %d]", dir, size, lo, hi)
		}
	case errors.Is(err, core.ErrTimeout):
		k.Ambiguous++
	case errors.Is(err, core.ErrNotExist):
		k.violatef("statdir %s: harness directory reported ENOENT", dir)
	default:
		k.violatef("statdir %s: unexpected error %v", dir, err)
	}
}

// ApplyReadDir checks an entry-list observation against the model: every
// definitely-present entry must be listed, and no definitely-absent entry
// may appear.
func (k *Checker) ApplyReadDir(dir string, names []string, err error) {
	k.Ops++
	switch {
	case err == nil:
		dm := k.dirs[dir]
		if dm == nil {
			return
		}
		listed := make(map[string]bool, len(names))
		for _, n := range names {
			listed[n] = true
			if e := dm.entries[n]; e != nil && e.st == stAbsent && !e.tainted {
				k.violatef("resurrection: readdir %s lists definitely-absent entry %q", dir, n)
			}
		}
		for _, n := range k.Names(dir) {
			if e := dm.entries[n]; e.st == stPresent && !e.tainted && !listed[n] {
				k.violatef("lost acknowledged write: readdir %s is missing definitely-present entry %q", dir, n)
			}
		}
	case errors.Is(err, core.ErrTimeout):
		k.Ambiguous++
	default:
		k.violatef("readdir %s: unexpected error %v", dir, err)
	}
}

// --- Data oracle -------------------------------------------------------------

func (k *Checker) chunkOf(c wire.ChunkKey) *chunkModel {
	m := k.chunks[c]
	if m == nil {
		m = &chunkModel{}
		k.chunks[c] = m
	}
	return m
}

// Chunks returns every content chunk the oracle has seen, sorted (final
// audit order).
func (k *Checker) Chunks() []wire.ChunkKey {
	out := make([]wire.ChunkKey, 0, len(k.chunks))
	for c := range k.chunks {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Stripe < out[j].Stripe
	})
	return out
}

// TaintAllData marks every chunk's state undecidable: ≥ r data nodes were
// down at once, so some chunk's whole replica set may have been wiped and
// no read observation is checkable against acked history anymore.
func (k *Checker) TaintAllData() {
	k.dataWiped = true
	for _, m := range k.chunks {
		m.tainted = true
	}
}

// ApplyDataWrite replays one completed chunk write: ver is the version the
// primary acknowledged (0 on error). Chunks are worker-private, so each
// chunk's write history is sequential and acked versions must grow.
func (k *Checker) ApplyDataWrite(chunk wire.ChunkKey, ver uint64, err error) {
	k.Ops++
	m := k.chunkOf(chunk)
	if k.dataWiped {
		m.tainted = true
	}
	switch {
	case err == nil:
		if !m.tainted && ver <= m.acked {
			k.violatef("lost acked content write: chunk %d/%d write acked version %d, but %d was already acknowledged",
				chunk.File, chunk.Stripe, ver, m.acked)
		}
		if ver > m.acked {
			m.acked = ver
		}
	case errors.Is(err, core.ErrTimeout):
		// The write (or a retransmission still queued) may execute late and
		// bump the version at any point — the chunk's exact version is no
		// longer decidable.
		m.tainted = true
		k.Ambiguous++
	default:
		k.violatef("chunk %d/%d write: unexpected error %v", chunk.File, chunk.Stripe, err)
	}
}

// ApplyDataRead replays one completed chunk read: ver is the version the
// primary reported (0 for a never-written chunk).
func (k *Checker) ApplyDataRead(chunk wire.ChunkKey, ver uint64, err error) {
	k.Ops++
	m := k.chunkOf(chunk)
	if k.dataWiped {
		m.tainted = true
	}
	switch {
	case err == nil:
		if m.tainted {
			return // ghost writes may have moved the version either way
		}
		if ver < m.acked {
			k.violatef("lost acked content write: chunk %d/%d read version %d, but %d was acknowledged",
				chunk.File, chunk.Stripe, ver, m.acked)
		}
		if ver > m.acked {
			// No un-acked, un-timed-out write exists in a sequential
			// history: a higher version means a retransmission re-executed
			// (the duplicate-bump bug class).
			k.violatef("phantom content write: chunk %d/%d read version %d above acknowledged %d",
				chunk.File, chunk.Stripe, ver, m.acked)
		}
	case errors.Is(err, core.ErrTimeout):
		k.Ambiguous++
	default:
		k.violatef("chunk %d/%d read: unexpected error %v", chunk.File, chunk.Stripe, err)
	}
}

// Summary renders the oracle's accounting for logs.
func (k *Checker) Summary() string {
	return fmt.Sprintf("checker: %d ops replayed, %d ambiguous, %d violations",
		k.Ops, k.Ambiguous, len(k.violations))
}
