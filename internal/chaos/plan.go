// Package chaos is the declarative fault-injection subsystem: typed fault
// events scheduled at virtual times (a Plan), executed deterministically
// against a cluster (Apply), a model-based invariant checker replaying the
// completed client operations against an in-memory namespace oracle
// (Checker), and an availability/latency timeline harness (Run) that the
// FigChaos figure family and the chaos-smoke CI job drive.
//
// The paper demonstrates recovery for a handful of hand-written scenarios
// (§5.4, §7.7); this package turns those scenarios into data. A plan is a
// value — it can be listed, pretty-printed, generated from a seed, and run
// twice to byte-identical results.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"switchfs/internal/env"
)

// Kind is the type of one fault event.
type Kind uint8

// Fault-event kinds.
const (
	// KindCrashServer fail-stops a server (volatile state lost, WAL kept).
	KindCrashServer Kind = iota
	// KindRecoverServer restarts a crashed server and runs §5.4.2 recovery.
	KindRecoverServer
	// KindCrashSwitch reboots the switches: all dirty-set state is lost.
	KindCrashSwitch
	// KindRecoverSwitch restores switch consistency by flushing change-logs.
	KindRecoverSwitch
	// KindPartition cuts every link between two node groups (one-way when
	// asymmetric), named so a later Heal can remove exactly these edges.
	KindPartition
	// KindLinkFault installs loss/duplication/delay/reorder rules on every
	// link between two node groups.
	KindLinkFault
	// KindHeal removes the link rules installed under the event's name.
	KindHeal
	// KindDegradeServer caps a server's usable cores (gray failure).
	KindDegradeServer
	// KindRestoreServer restores a degraded server's configured cores.
	KindRestoreServer
	// KindSlowSwitch adds pipeline delay to a switch (gray failure).
	KindSlowSwitch
	// KindRestoreSwitch removes a switch's gray-failure delay.
	KindRestoreSwitch
	// KindReconfigure resizes the metadata cluster (§5.5) — scheduled like
	// any fault so plans can race it against crashes and partitions.
	KindReconfigure
	// KindCrashDataNode fail-stops a data node: its volatile chunk store is
	// lost and surviving replicas carry the durability.
	KindCrashDataNode
	// KindRecoverDataNode restarts a crashed data node and re-replicates
	// its stripes from the peers before it serves again.
	KindRecoverDataNode
	// KindRebalance runs one hot-directory balancer pass (§5.5): if the
	// per-server load spread warrants it, the hottest fingerprint group
	// migrates off the most-loaded server through the live gate-and-drain
	// protocol — scheduled like any fault so plans can race it against
	// crashes and partitions.
	KindRebalance
)

var kindNames = [...]string{
	"crash-server", "recover-server", "crash-switch", "recover-switch",
	"partition", "link-fault", "heal", "degrade-server", "restore-server",
	"slow-switch", "restore-switch", "reconfigure",
	"crash-datanode", "recover-datanode", "rebalance",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule is the fault intensity of a link-fault event, mirrored onto
// env.LinkRule for every selected link.
type Rule struct {
	// Drop and Dup are per-message probabilities.
	Drop float64
	Dup  float64
	// Delay adds fixed one-way latency; Jitter adds uniform random latency
	// in [0, Jitter) — nonzero jitter reorders packets sharing the link.
	Delay  env.Duration
	Jitter env.Duration
}

// NodeSel selects cluster nodes declaratively, by role and index. Indices
// out of range for the deployed geometry are skipped, so plans written for
// the paper's eight-server setup degrade gracefully on smaller clusters.
type NodeSel struct {
	Servers   []int
	Clients   []int
	Switches  []int
	DataNodes []int
	// AllServers / AllClients / AllSwitches / AllDataNodes select the
	// whole role.
	AllServers   bool
	AllClients   bool
	AllSwitches  bool
	AllDataNodes bool
}

func (s NodeSel) String() string {
	var parts []string
	role := func(all bool, name string, idx []int) {
		switch {
		case all:
			parts = append(parts, name+"[*]")
		case len(idx) > 0:
			cells := make([]string, len(idx))
			for i, v := range idx {
				cells[i] = fmt.Sprintf("%d", v)
			}
			parts = append(parts, name+"["+strings.Join(cells, ",")+"]")
		}
	}
	role(s.AllServers, "srv", s.Servers)
	role(s.AllClients, "cli", s.Clients)
	role(s.AllSwitches, "sw", s.Switches)
	role(s.AllDataNodes, "dn", s.DataNodes)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Event is one scheduled fault (or repair) of a plan.
type Event struct {
	// At is the virtual-time offset from the plan's start.
	At env.Duration
	// Kind selects the action; the remaining fields parameterize it.
	Kind Kind
	// Name labels a link fault or partition so Heal can target it.
	Name string
	// Server / Switch / Data are role indices for the single-node kinds.
	Server int
	Switch int
	Data   int
	// Cores is the degraded core count of KindDegradeServer.
	Cores int
	// Delay is the extra pipeline delay of KindSlowSwitch.
	Delay env.Duration
	// NewServers is the target size of KindReconfigure.
	NewServers int
	// From and To are the endpoint groups of partitions and link faults.
	From, To NodeSel
	// OneWay limits the fault to the From→To direction (asymmetric faults).
	OneWay bool
	// Rule is the link-fault intensity.
	Rule Rule
}

// String renders one event for timelines.
func (e Event) String() string {
	at := fmt.Sprintf("%8.2fms", float64(e.At)/1e6)
	switch e.Kind {
	case KindCrashServer, KindRecoverServer:
		return fmt.Sprintf("%s  %-14s server %d", at, e.Kind, e.Server)
	case KindCrashDataNode, KindRecoverDataNode:
		return fmt.Sprintf("%s  %-16s data node %d", at, e.Kind, e.Data)
	case KindCrashSwitch, KindRecoverSwitch:
		return fmt.Sprintf("%s  %-14s all switches", at, e.Kind)
	case KindPartition:
		dir := "<->"
		if e.OneWay {
			dir = "-->"
		}
		return fmt.Sprintf("%s  %-14s %q %s %s %s", at, e.Kind, e.Name, e.From, dir, e.To)
	case KindLinkFault:
		dir := "<->"
		if e.OneWay {
			dir = "-->"
		}
		return fmt.Sprintf("%s  %-14s %q %s %s %s drop=%.2f dup=%.2f delay=%dµs jitter=%dµs",
			at, e.Kind, e.Name, e.From, dir, e.To,
			e.Rule.Drop, e.Rule.Dup, e.Rule.Delay/env.Microsecond, e.Rule.Jitter/env.Microsecond)
	case KindHeal:
		return fmt.Sprintf("%s  %-14s %q", at, e.Kind, e.Name)
	case KindDegradeServer:
		return fmt.Sprintf("%s  %-14s server %d to %d cores", at, e.Kind, e.Server, e.Cores)
	case KindRestoreServer:
		return fmt.Sprintf("%s  %-14s server %d", at, e.Kind, e.Server)
	case KindSlowSwitch:
		return fmt.Sprintf("%s  %-14s switch %d +%dµs/packet", at, e.Kind, e.Switch, e.Delay/env.Microsecond)
	case KindRestoreSwitch:
		return fmt.Sprintf("%s  %-14s switch %d", at, e.Kind, e.Switch)
	case KindReconfigure:
		return fmt.Sprintf("%s  %-14s to %d servers", at, e.Kind, e.NewServers)
	case KindRebalance:
		return fmt.Sprintf("%s  %-14s balancer pass", at, e.Kind)
	default:
		return fmt.Sprintf("%s  %s", at, e.Kind)
	}
}

// Plan is a named, declarative fault schedule over one run.
type Plan struct {
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Horizon is the load window: workers issue operations for this long
	// (virtual time); every event fires inside it.
	Horizon env.Duration
	Events  []Event
}

// Sorted returns the events ordered by time (stable, so same-time events
// keep their authoring order).
func (p Plan) Sorted() []Event {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Timeline renders the plan's event schedule for fsctl.
func (p Plan) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s — %s (horizon %.0fms, %d events)\n",
		p.Name, p.Desc, float64(p.Horizon)/1e6, len(p.Events))
	for _, ev := range p.Sorted() {
		b.WriteString("  ")
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate rejects structurally broken plans: events outside the horizon,
// heals of names never installed, unhealed link faults (which would leave
// the post-run audit running against a broken fabric), and crashes without
// recovery.
func (p Plan) Validate() error {
	if p.Horizon <= 0 {
		return fmt.Errorf("chaos: plan %s has no horizon", p.Name)
	}
	installed := map[string]bool{}
	healed := map[string]bool{}
	crashed := map[int]int{}
	dataCrashed := map[int]int{}
	switchDown := 0
	for _, ev := range p.Sorted() {
		if ev.At < 0 || ev.At > p.Horizon {
			return fmt.Errorf("chaos: plan %s: event %q at %.2fms outside horizon",
				p.Name, ev.Kind.String(), float64(ev.At)/1e6)
		}
		switch ev.Kind {
		case KindPartition, KindLinkFault:
			if ev.Name == "" {
				return fmt.Errorf("chaos: plan %s: unnamed %s cannot be healed", p.Name, ev.Kind)
			}
			installed[ev.Name] = true
		case KindHeal:
			if !installed[ev.Name] {
				return fmt.Errorf("chaos: plan %s: heal of unknown fault %q", p.Name, ev.Name)
			}
			healed[ev.Name] = true
		case KindCrashServer:
			if crashed[ev.Server] > 0 {
				return fmt.Errorf("chaos: plan %s: server %d crashed twice without recovery", p.Name, ev.Server)
			}
			crashed[ev.Server]++
		case KindRecoverServer:
			if crashed[ev.Server] == 0 {
				return fmt.Errorf("chaos: plan %s: recovery of server %d, which is not crashed", p.Name, ev.Server)
			}
			crashed[ev.Server]--
		case KindCrashSwitch:
			switchDown++
		case KindRecoverSwitch:
			if switchDown == 0 {
				return fmt.Errorf("chaos: plan %s: switch recovery without a preceding crash", p.Name)
			}
			switchDown--
		case KindCrashDataNode:
			if dataCrashed[ev.Data] > 0 {
				return fmt.Errorf("chaos: plan %s: data node %d crashed twice without recovery", p.Name, ev.Data)
			}
			dataCrashed[ev.Data]++
		case KindRecoverDataNode:
			if dataCrashed[ev.Data] == 0 {
				return fmt.Errorf("chaos: plan %s: recovery of data node %d, which is not crashed", p.Name, ev.Data)
			}
			dataCrashed[ev.Data]--
		}
	}
	for name := range installed {
		if !healed[name] {
			return fmt.Errorf("chaos: plan %s: fault %q is never healed", p.Name, name)
		}
	}
	for srv, n := range crashed {
		if n > 0 {
			return fmt.Errorf("chaos: plan %s: server %d is crashed and never recovered", p.Name, srv)
		}
	}
	for dn, n := range dataCrashed {
		if n > 0 {
			return fmt.Errorf("chaos: plan %s: data node %d is crashed and never recovered", p.Name, dn)
		}
	}
	if switchDown > 0 {
		return fmt.Errorf("chaos: plan %s: switches crash and never recover", p.Name)
	}
	return nil
}

// --- event constructors -----------------------------------------------------

// CrashServer fail-stops server i at offset at.
func CrashServer(at env.Duration, i int) Event {
	return Event{At: at, Kind: KindCrashServer, Server: i}
}

// RecoverServer restarts server i at offset at.
func RecoverServer(at env.Duration, i int) Event {
	return Event{At: at, Kind: KindRecoverServer, Server: i}
}

// CrashSwitch reboots the switches at offset at.
func CrashSwitch(at env.Duration) Event { return Event{At: at, Kind: KindCrashSwitch} }

// RecoverSwitch restores switch consistency at offset at.
func RecoverSwitch(at env.Duration) Event { return Event{At: at, Kind: KindRecoverSwitch} }

// Partition cuts all links between a and b (one-way when oneWay).
func Partition(at env.Duration, name string, a, b NodeSel, oneWay bool) Event {
	return Event{At: at, Kind: KindPartition, Name: name, From: a, To: b, OneWay: oneWay}
}

// LinkFault degrades all links between a and b with rule r.
func LinkFault(at env.Duration, name string, a, b NodeSel, r Rule) Event {
	return Event{At: at, Kind: KindLinkFault, Name: name, From: a, To: b, Rule: r}
}

// Heal removes the named partition or link fault.
func Heal(at env.Duration, name string) Event {
	return Event{At: at, Kind: KindHeal, Name: name}
}

// DegradeServer caps server i to the given core count.
func DegradeServer(at env.Duration, i, cores int) Event {
	return Event{At: at, Kind: KindDegradeServer, Server: i, Cores: cores}
}

// RestoreServer restores server i's configured cores.
func RestoreServer(at env.Duration, i int) Event {
	return Event{At: at, Kind: KindRestoreServer, Server: i}
}

// SlowSwitch adds d of pipeline delay to switch i.
func SlowSwitch(at env.Duration, i int, d env.Duration) Event {
	return Event{At: at, Kind: KindSlowSwitch, Switch: i, Delay: d}
}

// RestoreSwitch removes switch i's gray-failure delay.
func RestoreSwitch(at env.Duration, i int) Event {
	return Event{At: at, Kind: KindRestoreSwitch, Switch: i}
}

// Reconfigure resizes the cluster to n servers at offset at.
func Reconfigure(at env.Duration, n int) Event {
	return Event{At: at, Kind: KindReconfigure, NewServers: n}
}

// RebalancePass runs one hot-directory balancer pass at offset at.
func RebalancePass(at env.Duration) Event {
	return Event{At: at, Kind: KindRebalance}
}

// CrashDataNode fail-stops data node i at offset at.
func CrashDataNode(at env.Duration, i int) Event {
	return Event{At: at, Kind: KindCrashDataNode, Data: i}
}

// RecoverDataNode restarts data node i at offset at.
func RecoverDataNode(at env.Duration, i int) Event {
	return Event{At: at, Kind: KindRecoverDataNode, Data: i}
}
