package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/datanode"
	"switchfs/internal/env"
	"switchfs/internal/stats"
	"switchfs/internal/wire"
)

// Options sizes a harness run.
type Options struct {
	// Workers is the number of closed-loop clients driving load across the
	// plan (default 8). Each owns a private directory, keeping per-directory
	// histories sequential so the oracle is exact.
	Workers int
	// Windows is the number of availability/latency buckets the horizon is
	// split into (default 8).
	Windows int
	// NamesPerDir is each worker's entry-name pool; a small pool makes
	// creates, deletes and stats collide on the same names (default 12).
	NamesPerDir int
	// Seed drives the workload mix (the simulation has its own seed).
	Seed int64
	// Skewed picks every worker directory's name so its fingerprint group
	// starts on server SkewServer: all directory-group traffic (statdir,
	// readdir, change-log pushes, aggregations) concentrates there — the
	// hot-spot workload the rebalance scenarios need. Per-directory
	// histories stay sequential, so the oracle stays exact.
	Skewed     bool
	SkewServer int
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Windows <= 0 {
		o.Windows = 8
	}
	if o.NamesPerDir <= 0 {
		o.NamesPerDir = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// WindowRow is one bucket of the availability/latency timeline.
type WindowRow struct {
	// Start is the bucket's offset from the plan start.
	Start env.Duration
	// Ok counts operations completing with a definite outcome; Errs counts
	// operations whose retry budget expired (ErrTimeout) — the
	// unavailability signal.
	Ok   int
	Errs int
	// P99 is the 99th-percentile operation latency in nanoseconds
	// (operations completing in this bucket).
	P99 float64
	// Counters carries the bucket's deterministic op and packet counts.
	Counters stats.Counters
}

// Report is the outcome of one plan run.
type Report struct {
	Plan    Plan
	Rows    []WindowRow
	Checker *Checker
	// Issues are harness-level failures outside the oracle: recoveries that
	// never completed, change-log entries surviving the final drain,
	// entry-list/size disagreement.
	Issues []string
}

// Failed reports whether the run violated any invariant.
func (r *Report) Failed() bool {
	return len(r.Issues) > 0 || len(r.Checker.Violations()) > 0
}

// Availability returns ok/(ok+errs) over the whole run, in percent.
func (r *Report) Availability() float64 {
	ok, errs := 0, 0
	for _, w := range r.Rows {
		ok += w.Ok
		errs += w.Errs
	}
	if ok+errs == 0 {
		return 100
	}
	return 100 * float64(ok) / float64(ok+errs)
}

// Run drives a closed-loop workload across the plan on an already-built
// cluster, then heals, drains, and audits. The same cluster/seed/plan always
// produces an identical Report (rows, counters, violations).
func Run(sim *env.Sim, c *cluster.Cluster, plan Plan, o Options) *Report {
	o.defaults()
	rep := &Report{Plan: plan, Checker: NewChecker()}
	if err := plan.Validate(); err != nil {
		rep.Issues = append(rep.Issues, err.Error())
		return rep
	}

	// Pre-plan setup: every worker's private directory exists and is known
	// to the oracle before any fault fires.
	dirs := make([]string, o.Workers)
	for w := range dirs {
		name := fmt.Sprintf("cw%03d", w)
		if o.Skewed {
			// Scan candidate names until one's root-child fingerprint group
			// is owned by the skew target (deterministic: the initial ring
			// is a pure function of the geometry).
			for i := 0; ; i++ {
				cand := fmt.Sprintf("hw%03d-%d", w, i)
				if int(c.Ring.OwnerOfFile(core.RootDirID, cand)) == o.SkewServer {
					name = cand
					break
				}
			}
		}
		dirs[w] = "/" + name
		rep.Checker.RegisterDir(dirs[w])
	}
	var preloadErr error
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, d := range dirs {
			if err := cl.Mkdir(p, d, 0); err != nil {
				preloadErr = fmt.Errorf("preloading %s: %w", d, err)
				return
			}
		}
	})
	if preloadErr != nil {
		// A dirty cluster (e.g. Run called twice on it) is a caller error,
		// reported like every other harness failure.
		rep.Issues = append(rep.Issues, preloadErr.Error())
		return rep
	}

	base := sim.Now()
	winDur := plan.Horizon / env.Duration(o.Windows)
	if winDur <= 0 {
		winDur = env.Millisecond
	}

	// Packet counters sampled at each bucket boundary (cumulative).
	snap := func() stats.Counters {
		return stats.Counters{PacketsDelivered: sim.Delivered, PacketsDropped: sim.Dropped}
	}
	samples := make([]stats.Counters, o.Windows+1)
	fired := make([]bool, o.Windows+1)
	samples[0] = snap()
	fired[0] = true
	for w := 1; w < o.Windows; w++ {
		w := w
		sim.After(winDur*env.Duration(w), func() { samples[w], fired[w] = snap(), true })
	}

	inj := Apply(sim, c, plan)
	// Data-node geometry: workers exercise the data plane when the cluster
	// has one. A crash storm taking >= r data nodes down at once may wipe a
	// chunk's whole replica set — the oracle must stop pinning versions.
	dataNodes := len(c.DataNodes)
	if dataNodes > 0 {
		inj.OnDataWipe = rep.Checker.TaintAllData
	}

	// Closed-loop workers. Completion order is the oracle's replay order;
	// under Sim exactly one process runs at a time, so the shared recorders
	// are totally ordered.
	oks := make([]int, o.Windows)
	errs := make([]int, o.Windows)
	hists := make([]stats.Hist, o.Windows)
	bucketOf := func(t env.Time) int {
		b := int((t - base) / winDur)
		if b < 0 {
			b = 0
		}
		if b >= o.Windows {
			b = o.Windows - 1
		}
		return b
	}
	record := func(t0, t1 env.Time, err error) {
		b := bucketOf(t1)
		if errors.Is(err, core.ErrTimeout) {
			errs[b]++
		} else {
			oks[b]++
		}
		hists[b].Add(float64(t1 - t0))
	}
	for w := 0; w < o.Workers; w++ {
		w := w
		dir := dirs[w]
		cl := c.Client(w)
		rnd := rand.New(rand.NewSource(o.Seed + int64(w)*6151))
		// Each worker owns a private chunk set so per-chunk write histories
		// are sequential and the data oracle is exact.
		chunkFile := uint32(0xD0000000) + uint32(w)
		opSpace := 10
		if dataNodes > 0 {
			opSpace = 13 // cases 10..12: chunk write ×2, chunk read
		}
		sim.Spawn(cl.ID(), func(p *env.Proc) {
			for p.Now()-base < plan.Horizon {
				name := fmt.Sprintf("f%d", rnd.Intn(o.NamesPerDir))
				path := dir + "/" + name
				t0 := p.Now()
				op := rnd.Intn(opSpace)
				if o.Skewed && op < 10 {
					// Skewed mix: mostly directory-group operations (statdir,
					// readdir), which route to the worker dir's owner — the
					// heat signal the balancer acts on. 3:1:3:3
					// create:delete:statdir:readdir.
					switch {
					case op <= 2:
						op = 0 // create
					case op == 3:
						op = 4 // delete
					case op <= 6:
						op = 8 // statdir
					default:
						op = 9 // readdir
					}
				}
				if op >= 10 {
					chunk := wire.ChunkKey{File: chunkFile, Stripe: uint32(rnd.Intn(4))}
					node := c.DataNodes[datanode.PrimarySlot(chunk, dataNodes)]
					if op < 12 {
						ver, err := cl.WriteChunk(p, node, chunk, 4096)
						record(t0, p.Now(), err)
						rep.Checker.ApplyDataWrite(chunk, ver, err)
					} else {
						ver, _, err := cl.ReadChunk(p, node, chunk)
						record(t0, p.Now(), err)
						rep.Checker.ApplyDataRead(chunk, ver, err)
					}
					continue
				}
				switch op {
				case 0, 1, 2, 3:
					resent, err := cl.CreateR(p, path, 0)
					record(t0, p.Now(), err)
					rep.Checker.Apply(core.OpCreate, dir, name, resent, err)
				case 4, 5:
					resent, err := cl.DeleteR(p, path)
					record(t0, p.Now(), err)
					rep.Checker.Apply(core.OpDelete, dir, name, resent, err)
				case 6, 7:
					_, err := cl.Stat(p, path)
					record(t0, p.Now(), err)
					rep.Checker.Apply(core.OpStat, dir, name, false, err)
				case 8:
					attr, err := cl.StatDir(p, dir)
					record(t0, p.Now(), err)
					rep.Checker.ApplyStatDir(dir, attr.Size, err)
				default:
					es, err := cl.ReadDir(p, dir)
					record(t0, p.Now(), err)
					names := make([]string, len(es))
					for i, e := range es {
						names[i] = e.Name
					}
					rep.Checker.ApplyReadDir(dir, names, err)
				}
			}
		})
	}
	sim.Run()
	samples[o.Windows] = snap()
	// Boundary samplers that never fired (a caller stopping the simulation
	// early would leave trailing timers queued) inherit the final totals.
	for w := 1; w < o.Windows; w++ {
		if !fired[w] {
			samples[w] = samples[o.Windows]
		}
	}

	// Heal whatever the plan left behind and bring every server back before
	// the audit (validated plans recover their own crashes; this is defense
	// against hand-written ones).
	rep.Issues = append(rep.Issues, inj.HealAndRecover(sim)...)

	// Drain deferred work, then check change-log/dirty-set consistency: a
	// healed, drained cluster holds no pending change-log entries.
	c.Run(0, func(p *env.Proc, cl *client.Client) { c.Drain(p) })
	for i, srv := range c.Servers {
		if n := srv.PendingClogEntries(); n > 0 {
			rep.Issues = append(rep.Issues,
				fmt.Sprintf("server %d holds %d change-log entries after heal+drain", i, n))
		}
	}

	// Final audit through the normal read path (leftover dirty fingerprints
	// force real aggregations here).
	c.Run(0, func(p *env.Proc, cl *client.Client) {
		for _, dir := range rep.Checker.Dirs() {
			attr, err := cl.StatDir(p, dir)
			rep.Checker.ApplyStatDir(dir, attr.Size, err)
			es, rerr := cl.ReadDir(p, dir)
			names := make([]string, len(es))
			for i, e := range es {
				names[i] = e.Name
			}
			rep.Checker.ApplyReadDir(dir, names, rerr)
			if err == nil && rerr == nil && attr.Size != int64(len(es)) {
				rep.Issues = append(rep.Issues,
					fmt.Sprintf("%s: statdir size %d != %d listed entries", dir, attr.Size, len(es)))
			}
			for _, name := range rep.Checker.Names(dir) {
				_, serr := cl.Stat(p, dir+"/"+name)
				rep.Checker.Apply(core.OpStat, dir, name, false, serr)
			}
		}
		// Data audit: with every data node healed and re-replicated, each
		// chunk's acknowledged version must still be readable — lost acked
		// content under ≤ r−1 failures is a violation.
		for _, chunk := range rep.Checker.Chunks() {
			node := c.DataNodes[datanode.PrimarySlot(chunk, len(c.DataNodes))]
			ver, _, err := cl.ReadChunk(p, node, chunk)
			rep.Checker.ApplyDataRead(chunk, ver, err)
		}
	})

	// Assemble the timeline.
	for w := 0; w < o.Windows; w++ {
		ctr := samples[w+1].Sub(samples[w])
		ctr.Ops = uint64(oks[w] + errs[w])
		ctr.Errs = uint64(errs[w])
		rep.Rows = append(rep.Rows, WindowRow{
			Start:    winDur * env.Duration(w),
			Ok:       oks[w],
			Errs:     errs[w],
			P99:      hists[w].Percentile(0.99),
			Counters: ctr,
		})
	}
	return rep
}
