package chaos

import (
	"fmt"

	"switchfs/internal/cluster"
	"switchfs/internal/env"
)

// directedLink is one fault-rule installation, remembered for Heal.
type directedLink struct{ from, to env.NodeID }

// Injector executes a plan against a cluster on virtual-time timers. All
// event application is deterministic: timers fire in (time, insertion)
// order and every random decision downstream comes from the simulation's
// seeded generator.
type Injector struct {
	c *cluster.Cluster
	e env.Env
	// active maps fault name → installed directed link rules, for Heal.
	active map[string][]directedLink
	// pending collects futures of recoveries and reconfigurations the plan
	// started; AwaitClean verifies they completed.
	pending []pendingOp
	// errs records apply-time problems (bad targets, double heal).
	errs []string
	// OnDataWipe fires when a data-node crash takes the cluster to >= r
	// concurrent data-node failures: some chunk's whole replica set may be
	// gone, so acked content is no longer guaranteed (the harness taints
	// the data oracle).
	OnDataWipe func()
}

type pendingOp struct {
	what string
	fut  *env.Future
}

// Apply schedules every event of the plan relative to the current virtual
// time and returns the injector tracking its side effects.
func Apply(e env.Env, c *cluster.Cluster, p Plan) *Injector {
	inj := &Injector{c: c, e: e, active: make(map[string][]directedLink)}
	for _, ev := range p.Sorted() {
		ev := ev
		e.After(ev.At, func() { inj.exec(ev) })
	}
	return inj
}

// resolve expands a selector against the deployed geometry. Out-of-range
// indices are dropped.
func (inj *Injector) resolve(s NodeSel) []env.NodeID {
	var out []env.NodeID
	if s.AllServers {
		for i := range inj.c.Servers {
			out = append(out, inj.c.ServerID(i))
		}
	} else {
		for _, i := range s.Servers {
			if i >= 0 && i < len(inj.c.Servers) {
				out = append(out, inj.c.ServerID(i))
			}
		}
	}
	if s.AllClients {
		for i := range inj.c.Clients {
			out = append(out, inj.c.Clients[i].ID())
		}
	} else {
		for _, i := range s.Clients {
			if i >= 0 && i < len(inj.c.Clients) {
				out = append(out, inj.c.Clients[i].ID())
			}
		}
	}
	if s.AllSwitches {
		for i := range inj.c.Switches {
			out = append(out, inj.c.SwitchID(i))
		}
	} else {
		for _, i := range s.Switches {
			if i >= 0 && i < len(inj.c.Switches) {
				out = append(out, inj.c.SwitchID(i))
			}
		}
	}
	if s.AllDataNodes {
		out = append(out, inj.c.DataNodes...)
	} else {
		for _, i := range s.DataNodes {
			if i >= 0 && i < len(inj.c.DataNodes) {
				out = append(out, inj.c.DataNodes[i])
			}
		}
	}
	return out
}

// exec applies one event. It runs in timer context (no blocking); event
// kinds that need a process (recovery, reconfiguration) spawn one via the
// cluster hooks and are tracked as pending.
func (inj *Injector) exec(ev Event) {
	c := inj.c
	switch ev.Kind {
	case KindCrashServer:
		if ev.Server >= 0 && ev.Server < len(c.Servers) {
			c.CrashServer(ev.Server)
		}
	case KindRecoverServer:
		if ev.Server >= 0 && ev.Server < len(c.Servers) && c.Servers[ev.Server].Node().Down() {
			// Recovering a live server would restart a fresh incarnation on
			// top of a still-running one; only crashed nodes recover.
			inj.track(fmt.Sprintf("recover-server %d", ev.Server), c.RecoverServer(ev.Server))
		}
	case KindCrashSwitch:
		c.CrashSwitch()
	case KindRecoverSwitch:
		inj.track("recover-switch", c.RecoverSwitch())
	case KindPartition:
		inj.installLinks(ev, env.LinkRule{Cut: true})
	case KindLinkFault:
		inj.installLinks(ev, env.LinkRule{
			Drop: ev.Rule.Drop, Dup: ev.Rule.Dup,
			Delay: ev.Rule.Delay, Jitter: ev.Rule.Jitter,
		})
	case KindHeal:
		links, ok := inj.active[ev.Name]
		if !ok {
			inj.errs = append(inj.errs, fmt.Sprintf("heal of unknown fault %q", ev.Name))
			return
		}
		for _, l := range links {
			inj.e.Net().SetLink(l.from, l.to, env.LinkRule{})
		}
		delete(inj.active, ev.Name)
	case KindDegradeServer:
		if ev.Server >= 0 && ev.Server < len(c.Servers) && ev.Cores > 0 {
			c.SetServerCores(ev.Server, ev.Cores)
		}
	case KindRestoreServer:
		if ev.Server >= 0 && ev.Server < len(c.Servers) {
			c.SetServerCores(ev.Server, c.Servers[ev.Server].Cores())
		}
	case KindSlowSwitch:
		if ev.Switch >= 0 && ev.Switch < len(c.Switches) {
			c.SlowSwitch(ev.Switch, ev.Delay)
		}
	case KindRestoreSwitch:
		if ev.Switch >= 0 && ev.Switch < len(c.Switches) {
			c.SlowSwitch(ev.Switch, 0)
		}
	case KindReconfigure:
		if ev.NewServers > 0 {
			inj.track(fmt.Sprintf("reconfigure to %d", ev.NewServers), c.Reconfigure(ev.NewServers))
		}
	case KindRebalance:
		inj.track("rebalance", c.Rebalance())
	case KindCrashDataNode:
		if ev.Data >= 0 && ev.Data < len(c.DataServers) && !c.DataServers[ev.Data].Node().Down() {
			c.CrashDataNode(ev.Data)
			if c.DataNodesDown() >= c.Opts.DataReplication && inj.OnDataWipe != nil {
				inj.OnDataWipe()
			}
		}
	case KindRecoverDataNode:
		if ev.Data >= 0 && ev.Data < len(c.DataServers) && c.DataServers[ev.Data].Node().Down() {
			inj.track(fmt.Sprintf("recover-datanode %d", ev.Data), c.RecoverDataNode(ev.Data))
		}
	}
}

// installLinks sets the rule on every From→To link (and To→From unless
// one-way) and remembers the edges under the event's name.
func (inj *Injector) installLinks(ev Event, rule env.LinkRule) {
	if _, dup := inj.active[ev.Name]; dup {
		inj.errs = append(inj.errs, fmt.Sprintf("fault %q installed twice without heal", ev.Name))
		return
	}
	from := inj.resolve(ev.From)
	to := inj.resolve(ev.To)
	var links []directedLink
	add := func(a, b env.NodeID) {
		inj.e.Net().SetLink(a, b, rule)
		links = append(links, directedLink{a, b})
	}
	for _, a := range from {
		for _, b := range to {
			if a == b {
				continue
			}
			add(a, b)
			if !ev.OneWay {
				add(b, a)
			}
		}
	}
	inj.active[ev.Name] = links
}

func (inj *Injector) track(what string, fut *env.Future) {
	inj.pending = append(inj.pending, pendingOp{what: what, fut: fut})
}

// AwaitClean verifies (after the simulation drained) that every recovery and
// reconfiguration the plan started ran to completion without error, and that
// no apply-time problems were recorded. It returns the list of issues.
func (inj *Injector) AwaitClean() []string {
	issues := append([]string(nil), inj.errs...)
	for _, op := range inj.pending {
		v, ok := op.fut.Peek()
		if !ok {
			issues = append(issues, fmt.Sprintf("%s never completed", op.what))
			continue
		}
		if err, isErr := v.(error); isErr {
			issues = append(issues, fmt.Sprintf("%s failed: %v", op.what, err))
		}
	}
	return issues
}

// ForceHeal clears every still-installed link rule (plans are validated to
// heal themselves; this is the harness's defense before the final audit).
func (inj *Injector) ForceHeal() {
	inj.e.Net().ClearLinks()
	inj.active = make(map[string][]directedLink)
	for i := range inj.c.Servers {
		inj.c.SetServerCores(i, inj.c.Servers[i].Cores())
	}
	for i := range inj.c.Switches {
		inj.c.SlowSwitch(i, 0)
	}
}

// HealAndRecover is the shared post-run epilogue of the checking harnesses
// (chaos.Run, lincheck): collect the plan's completion issues, force-heal
// whatever it left behind, restart every still-crashed server and data node,
// and drive the simulation until those recoveries finish. Validated plans
// recover their own crashes — this is defense against hand-written plans and
// the precondition for a final audit over a healthy cluster.
func (inj *Injector) HealAndRecover(sim *env.Sim) []string {
	issues := inj.AwaitClean()
	inj.ForceHeal()
	recovering := false
	for i := range inj.c.Servers {
		if inj.c.Servers[i].Node().Down() {
			inj.track(fmt.Sprintf("post-run recover-server %d", i), inj.c.RecoverServer(i))
			recovering = true
		}
	}
	for i := range inj.c.DataServers {
		if inj.c.DataServers[i].Node().Down() {
			inj.track(fmt.Sprintf("post-run recover-datanode %d", i), inj.c.RecoverDataNode(i))
			recovering = true
		}
	}
	if recovering {
		sim.Run()
		issues = append(issues, inj.AwaitClean()...)
	}
	return issues
}
