package chaos

import (
	"testing"

	"switchfs/internal/cluster"
	"switchfs/internal/env"
	"switchfs/internal/trace"
)

// TestTraceShapeUnderChaosPlan runs fault plans with causal tracing wired
// through the cluster and asserts the span trees stay well-shaped: a crash
// mid-op, lost packets, and recovery replay must never produce orphan spans,
// duplicate span ids, or traces with several roots.
func TestTraceShapeUnderChaosPlan(t *testing.T) {
	for _, name := range []string{"server-crash", "flaky-links"} {
		t.Run(name, func(t *testing.T) {
			g := testGeometry()
			sim := env.NewSim(42)
			t.Cleanup(sim.Shutdown)
			rec := trace.New(trace.Config{Keep: 32})
			c := cluster.New(sim, cluster.Options{
				Servers: g.Servers, Clients: g.Clients, Switches: g.Switches,
				SwitchIndexBits: 8, Costs: env.DefaultCosts(), Trace: rec,
			})
			plan, ok := BuiltinPlan(g, name)
			if !ok {
				t.Fatalf("unknown plan %s", name)
			}
			rep := Run(sim, c, plan, Options{Workers: 6, Seed: 3})
			for _, v := range rep.Checker.Violations() {
				t.Errorf("violation: %s", v)
			}

			spans := rec.Spans()
			if len(spans) == 0 {
				t.Fatal("chaos run recorded no spans")
			}
			if err := trace.Validate(spans); err != nil {
				t.Fatalf("trace validation under %s: %v", name, err)
			}
			roots := map[uint64]int{}
			for _, s := range spans {
				if s.Parent == 0 {
					roots[s.Trace]++
				}
			}
			for id, n := range roots {
				if n != 1 {
					t.Errorf("trace %d has %d roots, want 1", id, n)
				}
			}
		})
	}
}
